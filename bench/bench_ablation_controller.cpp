// Controller ablation: host-local reaction vs the centralized adaptive
// control plane (DESIGN.md §5j), on both engines, under a plane flap and
// under a mid-run traffic shift.
//
// Eight custom-engine cells — {packet, fsim} x {host-local, centralized} x
// {flap, shift}:
//
//   flap   A permutation of long bulk flows runs on a 4-plane homogeneous
//          Jellyfish P-Net; mid-run plane 0 dies and later recovers. Under
//          host-local control the packet engine reacts through the
//          HealthMonitor's transport repath (the paper's mechanism) while
//          the fluid engine — which has no transport — leaves the dead
//          plane's flows frozen at rate 0 until recovery. Centralized adds
//          the control::Controller: it confirms the outage off the
//          LinkStateBus after detect_delay, masks the plane, evacuates
//          live flows, and rebalances with inverse-load weights.
//   shift  No faults: a first wave of finite ECMP flows is followed by a
//          second wave mid-run. Host-local placement stays uniform hash;
//          the centralized controller biases the second wave toward the
//          planes the first wave left cool and repins the hottest plane's
//          laggards, shrinking the plane-load imbalance and the makespan.
//
// Every cell records the controller's decision counters (ctl/* metrics)
// and the per-plane byte imbalance, so the committed JSON report is the
// ablation table. Reports are byte-identical across --threads and
// --sim-threads values: controller ticks are simulation events (control
// queue / fluid event loop), never wall-clock ones.
//
// Usage: bench_ablation_controller [--hosts=16] [--seed=1]
//                                  [--controller-cadence=1]
//                                  [--controller-detect-delay=1]
// Run with --help for the shared flag set.
#include <memory>

#include "common.hpp"
#include "control/controller.hpp"
#include "control/dataplanes.hpp"
#include "control/link_state_bus.hpp"
#include "core/health_monitor.hpp"
#include "sim/faults.hpp"

using namespace pnet;

namespace {

struct Scenario {
  int hosts = 16;
  std::uint64_t seed = 1;

  // Flap timeline: plane 0 down for [flap_at, flap_at + flap_down).
  SimTime horizon = 60 * units::kMillisecond;
  SimTime flap_at = 20 * units::kMillisecond;
  SimTime flap_down = 15 * units::kMillisecond;
  SimTime bucket = 2 * units::kMillisecond;

  // Shift timeline: wave 2 launches mid-run, after the controller has
  // sampled wave 1's plane loads for a few cadences.
  std::uint64_t shift_bytes = 2'000'000;
  SimTime shift_at = 5 * units::kMillisecond;
};

topo::NetworkSpec flap_topo(const Scenario& sc, std::uint64_t seed) {
  auto spec = bench::make_spec(topo::TopoKind::kJellyfish,
                               topo::NetworkType::kParallelHomogeneous,
                               sc.hosts, 4, seed);
  // Pin a small non-complete Jellyfish (see bench_fault_recovery): the
  // default shape derivation would clamp small runs to the complete graph.
  spec.jf_switches = 8;
  spec.jf_degree = 5;
  spec.jf_hosts_per_switch = 2;
  return spec;
}

/// max/min per-plane delivered bytes — 1.0 is a perfectly even fabric.
double imbalance(const std::vector<double>& plane_bytes) {
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t p = 0; p < plane_bytes.size(); ++p) {
    const double b = plane_bytes[p];
    if (p == 0 || b < lo) lo = b;
    if (p == 0 || b > hi) hi = b;
  }
  return lo > 0.0 ? hi / lo : 0.0;
}

void fold_controller_metrics(const control::Controller* controller,
                             exp::TrialResult& r) {
  if (controller == nullptr) return;
  r.metrics["ctl/ticks"] = static_cast<double>(controller->ticks());
  r.metrics["ctl/repins"] = static_cast<double>(controller->repins());
  r.metrics["ctl/plane_events"] =
      static_cast<double>(controller->plane_events());
  r.metrics["ctl/churn_skips"] =
      static_cast<double>(controller->churn_skips());
}

// ------------------------------------------------------------ packet cells

exp::TrialResult packet_trial(const Scenario& sc,
                              const control::ControllerConfig& cc, bool flap,
                              const exp::TrialContext& ctx) {
  core::PolicyConfig policy;
  policy.policy = flap ? core::RoutingPolicy::kRoundRobin
                       : core::RoutingPolicy::kEcmp;

  telemetry::Config tcfg = ctx.telemetry;
  if (tcfg.sample_every <= 0) tcfg.sample_every = sc.bucket;
  const auto tel = std::make_shared<telemetry::Telemetry>(tcfg);

  // Private route cache: the flap cells mutate link fault state, which a
  // cell-shared cache must never see (determinism contract).
  core::SimHarness h({.spec = flap_topo(sc, ctx.seed),
                      .policy = policy,
                      .telemetry = tel.get(),
                      .sim_threads = ctx.sim_threads});
  h.selector().enable_repath(h.factory());

  // Host-local reaction (the paper's mechanism) runs in BOTH modes; the
  // centralized controller is strictly additive, so the ablation isolates
  // its contribution.
  core::HealthMonitor monitor(h.events(), {.detect_delay = cc.detect_delay});
  monitor.add_selector(h.selector());
  monitor.set_factory(h.factory());
  sim::FaultInjector injector(h.events(), h.network());
  control::LinkStateBus bus;
  bus.subscribe_health_monitor(monitor);
  bus.attach(injector);

  std::unique_ptr<control::PacketDataplane> dataplane;
  std::unique_ptr<control::Controller> controller;
  std::unique_ptr<control::ControlDriver> driver;
  if (cc.centralized()) {
    dataplane = std::make_unique<control::PacketDataplane>(h);
    controller = std::make_unique<control::Controller>(cc, *dataplane);
    controller->observe(bus);
    driver = std::make_unique<control::ControlDriver>(h.events(), *controller,
                                                      cc.cadence);
    if (sim::ShardSet* shards = h.shards(); shards != nullptr) {
      driver->set_more_work([shards] { return shards->busy(); });
    }
    driver->start(h.events().now());
  }

  exp::TrialResult r;
  Rng rng(mix64(ctx.seed + 7));
  if (flap) {
    sim::FaultPlan plan;
    plan.flap_plane(sc.flap_at, sc.flap_down, 0);
    injector.arm(plan);
    // Long bulk flows that outlive the horizon: the cell measures fabric
    // goodput through the outage, not flow arrivals.
    for (const auto& [src, dst] :
         workload::permutation_pairs(h.net().num_hosts(), rng)) {
      ++r.flows_started;
      h.starter()(src, dst, 100 * units::kGB, 0, {});
    }
    h.run_until(sc.horizon);
  } else {
    // Two finite waves; the second launches after the controller has seen
    // the first wave's plane loads.
    for (int wave = 0; wave < 2; ++wave) {
      const SimTime at = wave == 0 ? 0 : sc.shift_at;
      for (const auto& [src, dst] :
           workload::permutation_pairs(h.net().num_hosts(), rng)) {
        ++r.flows_started;
        h.starter()(src, dst, sc.shift_bytes, at,
                    [&r](const sim::FlowRecord& rec) {
                      r.fct_us.push_back(
                          units::to_microseconds(rec.end - rec.start));
                      ++r.flows_finished;
                    });
      }
    }
    h.run();
  }
  h.finalize(h.events().now());

  std::vector<double> plane_bytes;
  for (int p = 0; p < h.net().num_planes(); ++p) {
    plane_bytes.push_back(
        static_cast<double>(h.network().plane_forwarded_bytes(p)));
  }
  r.metrics["plane_imbalance"] = imbalance(plane_bytes);
  r.delivered_bytes =
      static_cast<double>(h.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(h.events().now());
  r.events = h.dispatched();
  fold_controller_metrics(controller.get(), r);
  exp::fold_telemetry(tel, r);
  return r;
}

// ------------------------------------------------------------- fluid cells

exp::TrialResult fluid_trial(const Scenario& sc,
                             const control::ControllerConfig& cc, bool flap,
                             const exp::TrialContext& ctx) {
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kEcmp;
  const auto net = topo::build_network(flap_topo(sc, ctx.seed));
  // Private cache for the same reason as the packet cells: fabric faults
  // invalidate entries, which must stay invisible to sibling trials.
  fsim::FluidSimulator fluid(net, exp::to_fsim_config(policy),
                             std::make_shared<routing::RouteCache>());
  fluid.enable_plane_accounting();

  control::LinkStateBus bus;
  bus.attach(fluid);

  std::unique_ptr<control::FluidDataplane> dataplane;
  std::unique_ptr<control::Controller> controller;
  if (cc.centralized()) {
    dataplane = std::make_unique<control::FluidDataplane>(fluid);
    controller = std::make_unique<control::Controller>(cc, *dataplane);
    controller->observe(bus);
    controller->start(fluid.now());
    control::Controller* ctl = controller.get();
    fluid.set_control(cc.cadence, [ctl](SimTime t) { ctl->tick(t); });
  }
  // Host-local mode has no fluid-engine analog (there is no transport to
  // repath): the dead plane's flows freeze at rate 0 until recovery. That
  // IS the ablation baseline the centralized evacuation is measured
  // against.

  exp::TrialResult r;
  Rng rng(mix64(ctx.seed + 7));
  if (flap) {
    fluid.fail_plane(sc.flap_at, sc.flap_at + sc.flap_down, 0);
    for (const auto& [src, dst] :
         workload::permutation_pairs(net.num_hosts(), rng)) {
      ++r.flows_started;
      fluid.add_flow({src, dst, 100 * units::kGB, 0});
    }
    fluid.run_until(sc.horizon);
  } else {
    for (int wave = 0; wave < 2; ++wave) {
      const SimTime at = wave == 0 ? 0 : sc.shift_at;
      for (const auto& [src, dst] :
           workload::permutation_pairs(net.num_hosts(), rng)) {
        ++r.flows_started;
        fluid.add_flow({src, dst, sc.shift_bytes, at});
      }
    }
    fluid.run();
  }

  for (double fct : fluid.fct_us()) r.fct_us.push_back(fct);
  r.flows_finished = fluid.results().size();
  std::vector<double> plane_bytes;
  for (int p = 0; p < net.num_planes(); ++p) {
    plane_bytes.push_back(fluid.plane_delivered_bytes(p));
  }
  r.metrics["plane_imbalance"] = imbalance(plane_bytes);
  r.delivered_bytes = fluid.delivered_bytes();
  r.sim_seconds = units::to_seconds(fluid.now());
  r.events = fluid.events();
  fold_controller_metrics(controller.get(), r);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Controller ablation: host-local vs centralized, flap + traffic shift",
      flags,
      "bench_ablation_controller: the adaptive control plane's contribution\n"
      "\n"
      "  --hosts=N         hosts in every network (default 16)\n"
      "  --seed=N          seed for the Jellyfish wiring and the workload\n"
      "                    permutation draws (default 1)\n"
      "\n"
      "The shared --controller-cadence / --controller-detect-delay flags\n"
      "tune the loop; --controller itself is ignored here (every cell pins\n"
      "its own mode — that is the ablation).\n");

  Scenario sc;
  sc.hosts = flags.get_int("hosts", 16);
  sc.seed = static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  // The cells pin their own modes; the shared flags only set the loop's
  // timing, so one binary sweeps cadence/delay without a rebuild.
  control::ControllerConfig base = bench::parse_controller(flags);

  struct CellDef {
    const char* scenario;
    const char* engine;
    control::ControllerMode mode;
    bool flap;
    bool packet;
  };
  const CellDef defs[] = {
      {"flap", "packet", control::ControllerMode::kHostLocal, true, true},
      {"flap", "packet", control::ControllerMode::kCentralized, true, true},
      {"flap", "fsim", control::ControllerMode::kHostLocal, true, false},
      {"flap", "fsim", control::ControllerMode::kCentralized, true, false},
      {"shift", "packet", control::ControllerMode::kHostLocal, false, true},
      {"shift", "packet", control::ControllerMode::kCentralized, false, true},
      {"shift", "fsim", control::ControllerMode::kHostLocal, false, false},
      {"shift", "fsim", control::ControllerMode::kCentralized, false, false},
  };

  bench::Experiment experiment(flags, "ablation_controller");
  for (const CellDef& def : defs) {
    control::ControllerConfig cc = base;
    cc.mode = def.mode;
    exp::ExperimentSpec spec;
    spec.name = std::string(def.scenario) + "/" + def.engine + "/" +
                control::to_string(def.mode);
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = sc.seed;
    spec.controller = cc;  // recorded in the report's spec block
    const bool flap = def.flap;
    const bool packet = def.packet;
    experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
      return packet ? packet_trial(sc, cc, flap, ctx)
                    : fluid_trial(sc, cc, flap, ctx);
    });
  }
  const auto results = experiment.run();

  std::printf("plane 0 down %.0f-%.0f ms (flap cells); wave 2 at %.0f ms "
              "(shift cells); cadence %.1f ms, detect delay %.1f ms\n\n",
              units::to_milliseconds(sc.flap_at),
              units::to_milliseconds(sc.flap_at + sc.flap_down),
              units::to_milliseconds(sc.shift_at),
              units::to_milliseconds(base.cadence),
              units::to_milliseconds(base.detect_delay));

  TextTable table("Controller ablation",
                  {"cell", "delivered GB", "imbalance", "finished",
                   "ctl ticks", "ctl repins", "plane events"});
  for (const auto& cell : results) {
    table.add_row(cell.spec.name,
                  {cell.delivered_bytes() / 1e9,
                   cell.metric("plane_imbalance").mean,
                   static_cast<double>(cell.flows_finished()),
                   cell.metric("ctl/ticks").mean,
                   cell.metric("ctl/repins").mean,
                   cell.metric("ctl/plane_events").mean},
                  2);
  }
  table.print();

  std::printf(
      "\nUnder the flap the centralized controller evacuates the dead\n"
      "plane's flows after its detection delay — on the fluid engine (no\n"
      "transport repath) that is the difference between frozen flows and\n"
      "continued delivery. Under the traffic shift it biases second-wave\n"
      "placement toward cool planes and repins laggards, shrinking the\n"
      "per-plane byte imbalance at equal delivered bytes.\n");
  return experiment.finish();
}
