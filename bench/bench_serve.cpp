// Closed-loop load harness for the pnet-serve query service.
//
// Drives an in-process serve::Service (the daemon minus the sockets — the
// same admission queue, dedup, result cache, and engine pool the wire
// clients hit) with N closed-loop client threads issuing a hot/cold spec
// mix: a small pool of hot specs requested repeatedly (the cache + dedup
// path) and cold specs unique per request (the engine path). Reports
// queries/sec, cache hit rate, dedup joins, and client-observed p50/p99
// latency, and asserts the determinism contract along the way: every
// response for a given spec hash must be byte-identical.
//
//   ./bench_serve --clients=4 --queries=50 --json=BENCH_serve.json

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "exp/json.hpp"
#include "serve/service.hpp"
#include "util/parallel.hpp"

using namespace pnet;

namespace {

constexpr const char kUsage[] =
    "  --clients N     closed-loop client threads (default 4)\n"
    "  --queries N     queries per client (default 50)\n"
    "  --hot N         hot-spec pool size (default 8)\n"
    "  --hot-frac F    fraction of queries drawn from the hot pool "
    "(default 0.8)\n"
    "  --workers N     service engine-pool threads (default 2)\n"
    "  --hosts N       topology size per query (default 16)\n"
    "  --engine E      packet|fsim (default fsim)\n"
    "  --seed S        base seed (default 1)\n"
    "  --json PATH     write the results JSON here\n";

exp::ExperimentSpec make_query(exp::EngineKind engine, int hosts,
                               std::uint64_t seed) {
  exp::ExperimentSpec spec;
  spec.name = "serve-load-" + std::to_string(seed);
  spec.engine = engine;
  spec.seed = seed;
  spec.trials = 1;
  spec.topo.hosts = hosts;
  spec.topo.parallelism = 2;
  spec.workload.pattern = exp::WorkloadSpec::Pattern::kPermutation;
  spec.workload.flow_bytes = 100'000;
  spec.workload.rounds = 1;
  return spec;
}

struct ClientStats {
  std::vector<double> latency_ms;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("pnet-serve closed-loop load harness", flags, kUsage);

  const int clients = flags.get_int("clients", 4);
  const int queries = flags.get_int("queries", 50);
  const int hot_pool = flags.get_int("hot", 8);
  const double hot_frac = flags.get_double("hot-frac", 0.8);
  const int hosts = flags.get_int("hosts", 16);
  const auto engine = bench::parse_engine_or(flags, exp::EngineKind::kFsim);
  const std::uint64_t seed = static_cast<std::uint64_t>(
      flags.get_i64("seed", 1));

  serve::ServiceOptions options;
  options.workers = flags.get_int("workers", 2);
  // Closed-loop clients bound the concurrency, so the queue never needs to
  // be deeper than the client count.
  options.queue_limit = static_cast<std::size_t>(clients) + 4;
  serve::Service service(options);

  // Pre-render request lines: hot specs shared by all clients, cold specs
  // unique per (client, query index). The canonical spec JSON is itself a
  // valid request line — the wire format round-trips.
  std::vector<std::string> hot_lines;
  hot_lines.reserve(static_cast<std::size_t>(hot_pool));
  for (int h = 0; h < hot_pool; ++h) {
    hot_lines.push_back(
        make_query(engine, hosts, seed + static_cast<std::uint64_t>(h))
            .canonical_json());
  }

  // Determinism audit: every response observed for a request line must be
  // byte-identical across clients, cache hits, and dedup joins.
  std::mutex audit_mutex;
  std::map<std::string, std::string> first_body;
  std::uint64_t mismatches = 0;

  std::vector<ClientStats> stats(static_cast<std::size_t>(clients));
  const bench::WallClock clock;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientStats& my = stats[static_cast<std::size_t>(c)];
      std::uint64_t rng =
          util::job_seed(seed, 1000 + c);  // deterministic per client
      for (int q = 0; q < queries; ++q) {
        rng = mix64(rng + 0x9E3779B97F4A7C15ULL);
        const bool hot =
            hot_pool > 0 &&
            static_cast<double>(rng % 1000) < hot_frac * 1000.0;
        std::string cold_line;
        const std::string* line = nullptr;
        if (hot) {
          line = &hot_lines[rng % static_cast<std::uint64_t>(hot_pool)];
        } else {
          // Unique seed far outside the hot range: always an engine run.
          cold_line = make_query(
                          engine, hosts,
                          seed + 100000 +
                              static_cast<std::uint64_t>(c) * 10000 +
                              static_cast<std::uint64_t>(q))
                          .canonical_json();
          line = &cold_line;
        }
        const bench::WallClock t0;
        const std::string body = service.handle_line(*line);
        my.latency_ms.push_back(t0.seconds() * 1e3);
        if (body.rfind("{\"ok\":true", 0) == 0) {
          ++my.ok;
        } else {
          ++my.errors;
        }
        const std::lock_guard<std::mutex> lock(audit_mutex);
        const auto [it, inserted] = first_body.emplace(*line, body);
        if (!inserted && it->second != body) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s = clock.seconds();

  std::vector<double> latency_ms;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  for (const auto& s : stats) {
    latency_ms.insert(latency_ms.end(), s.latency_ms.begin(),
                      s.latency_ms.end());
    ok += s.ok;
    errors += s.errors;
  }
  const auto pcts = percentiles(latency_ms, {50.0, 90.0, 99.0});
  const double total = static_cast<double>(latency_ms.size());
  const double qps = elapsed_s > 0.0 ? total / elapsed_s : 0.0;

  const auto snap = service.registry().snapshot();
  const auto counter = [&](const char* name) {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? std::uint64_t{0} : it->second;
  };
  const std::uint64_t engine_runs = counter("engine_runs");
  const std::uint64_t dedup_joins = counter("dedup_joins");
  const std::uint64_t probes = ok + errors;
  // Every query that neither ran an engine nor joined an in-flight run was
  // a result-cache hit.
  const std::uint64_t cache_hit_count =
      probes >= engine_runs + dedup_joins
          ? probes - engine_runs - dedup_joins
          : 0;
  const double hit_rate =
      probes > 0 ? static_cast<double>(cache_hit_count) /
                       static_cast<double>(probes)
                 : 0.0;

  TextTable table("pnet-serve closed loop",
                  {"clients", "queries", "qps", "hit_rate", "p50_ms",
                   "p99_ms"});
  table.add_row(std::to_string(clients),
                {total, qps, hit_rate, pcts[0], pcts[2]}, 3);
  table.print();
  std::printf("engine_runs=%llu dedup_joins=%llu cache_hits=%llu "
              "errors=%llu byte_mismatches=%llu\n",
              static_cast<unsigned long long>(engine_runs),
              static_cast<unsigned long long>(dedup_joins),
              static_cast<unsigned long long>(cache_hit_count),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(mismatches));

  if (const std::string path = flags.get("json", ""); !path.empty()) {
    exp::JsonWriter w;
    w.begin_object();
    w.field("bench", "serve");
    w.field("schema", 1);
    w.key("config").begin_object();
    w.field("clients", clients);
    w.field("queries_per_client", queries);
    w.field("hot_pool", hot_pool);
    w.field("hot_frac", hot_frac);
    w.field("workers", service.workers());
    w.field("hosts", hosts);
    w.field("engine", exp::to_string(engine));
    w.field("seed", seed);
    w.end_object();
    w.key("results").begin_object();
    w.field("queries", static_cast<std::uint64_t>(probes));
    w.field("ok", ok);
    w.field("errors", errors);
    w.field("elapsed_s", elapsed_s);
    w.field("qps", qps);
    w.field("engine_runs", engine_runs);
    w.field("dedup_joins", dedup_joins);
    w.field("cache_hits", cache_hit_count);
    w.field("cache_hit_rate", hit_rate);
    w.field("byte_mismatches", mismatches);
    w.key("latency_ms").begin_object();
    w.field("p50", pcts[0]);
    w.field("p90", pcts[1]);
    w.field("p99", pcts[2]);
    w.end_object();
    w.end_object();
    w.end_object();
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
  }

  if (mismatches > 0) {
    std::fprintf(stderr,
                 "bench_serve: %llu byte-identity violation(s) — the "
                 "cache/dedup layer returned differing bodies for one spec\n",
                 static_cast<unsigned long long>(mismatches));
    return 1;
  }
  if (errors > 0) {
    std::fprintf(stderr, "bench_serve: %llu error response(s)\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  return 0;
}
