// google-benchmark microbenchmarks for the packet simulator: raw event
// throughput, queue+pipe forwarding, and end-to-end simulated-bytes-per-
// wall-second for a TCP transfer — the numbers that bound how large an
// experiment the harness can run.
//
// The telemetry overhead budget lives here too: BM_TcpTransfer10MB is the
// disabled-path baseline (telemetry pointer null, trace macros test a
// pointer), BM_TcpTransfer10MBTelemetry the fully-enabled run (100 us
// sampling grid + tracing). The disabled path must stay within ~2% of a
// build without the telemetry wiring; compare against a pre-telemetry
// checkout when touching the hot paths.
//
// Besides the default google-benchmark mode, `--json[=PATH]` switches to a
// self-contained report mode measuring the data-plane hot path end to end:
// a raw queue+pipe forwarding loop (packets/sec) and a fixed permutation
// TCP scenario (events/sec and bytes/event), plus the slab/arena footprint
// behind them, plus a sharded-engine scaling sweep (packet_sim_mt: the
// same permutation scenario on a wider multi-plane fabric at
// --sim-threads 1/2/4/8, asserting the dispatched-event count is
// identical across shard worker counts). The result is one JSON document,
// committed as BENCH_micro_sim.json at the repo root; CI's micro-sim-perf
// job re-runs it and fails on a >15% events/sec regression of the serial
// row, and checks the mt rows still agree on events. Report-mode flags:
// --hosts, --planes, --bytes, --repeat, --mt-hosts, --mt-planes,
// --mt-bytes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "core/harness.hpp"
#include "exp/json.hpp"
#include "routing/shortest.hpp"
#include "sim/network.hpp"
#include "telemetry/telemetry.hpp"
#include "util/flags.hpp"

namespace {

using namespace pnet;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  class Nop : public sim::EventSource {
   public:
    void do_next_event() override {}
  };
  Nop nop;
  sim::EventQueue events;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      events.schedule_in((i * 37) % 1000, &nop);
    }
    events.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_QueuePipeForwarding(benchmark::State& state) {
  sim::EventQueue events;
  sim::PacketPool pool;
  class Sink : public sim::PacketSink {
   public:
    explicit Sink(sim::PacketPool& pool) : pool_(pool) {}
    void receive(sim::Packet& packet) override { pool_.free(&packet); }

   private:
    sim::PacketPool& pool_;
  };
  Sink sink(pool);
  sim::Queue queue(events, pool, 100e9, 1 << 20);
  sim::Pipe pipe(events, units::kMicrosecond);
  sim::OwnedRoute route({&queue, &pipe, &sink});
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      sim::Packet* p = pool.allocate();
      p->size_bytes = 1500;
      p->route = &route;
      p->next_hop = 0;
      p->forward();
    }
    events.run();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_QueuePipeForwarding);

void BM_TcpTransfer10MB(benchmark::State& state) {
  for (auto _ : state) {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kFatTree;
    spec.hosts = 16;
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kShortestPlane;
    core::SimHarness harness({.spec = spec, .policy = policy});
    harness.starter()(HostId{0}, HostId{15}, 10'000'000, 0, {});
    harness.run();
  }
  state.SetBytesProcessed(state.iterations() * 10'000'000);
}
BENCHMARK(BM_TcpTransfer10MB)->Unit(benchmark::kMillisecond);

// Same transfer with telemetry fully on: sampling every 100 us of
// simulated time plus flow/fault tracing. The delta over BM_TcpTransfer10MB
// is the enabled-mode cost (sampler probes walk every queue at each grid
// point, so it scales with topology size and grid density).
void BM_TcpTransfer10MBTelemetry(benchmark::State& state) {
  for (auto _ : state) {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kFatTree;
    spec.hosts = 16;
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kShortestPlane;
    telemetry::Telemetry tel(
        {.sample_every = 100 * units::kMicrosecond, .trace = true});
    core::SimHarness harness(
        {.spec = spec, .policy = policy, .telemetry = &tel});
    harness.starter()(HostId{0}, HostId{15}, 10'000'000, 0, {});
    harness.run();
    benchmark::DoNotOptimize(tel.sampler.times().size());
  }
  state.SetBytesProcessed(state.iterations() * 10'000'000);
}
BENCHMARK(BM_TcpTransfer10MBTelemetry)->Unit(benchmark::kMillisecond);

void BM_MptcpTransfer10MB(benchmark::State& state) {
  for (auto _ : state) {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kFatTree;
    spec.hosts = 16;
    spec.parallelism = 4;
    spec.type = topo::NetworkType::kParallelHomogeneous;
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kKspMultipath;
    policy.k = 4;
    core::SimHarness harness({.spec = spec, .policy = policy});
    harness.starter()(HostId{0}, HostId{15}, 10'000'000, 0, {});
    harness.run();
  }
  state.SetBytesProcessed(state.iterations() * 10'000'000);
}
BENCHMARK(BM_MptcpTransfer10MB)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------- --json report

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One permutation-workload run: every host sends `bytes` to the host half
/// a ring away over a parallel fat tree. Returns {events, wall_s,
/// delivered_bytes, ...} via out-params on the writer caller's stack.
struct SimRun {
  std::uint64_t events = 0;
  double wall_s = 0;
  double delivered = 0;
  std::size_t routes = 0;
  std::size_t route_dedup_hits = 0;
  std::size_t route_arena_bytes = 0;
  std::size_t pool_allocated = 0;
  std::size_t pool_slabs = 0;
  std::size_t pool_slab_bytes = 0;
  std::uint64_t heap_regrowths = 0;
};

SimRun run_permutation(int hosts, int planes, std::uint64_t bytes,
                       int sim_threads = 0) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = hosts;
  spec.parallelism = planes;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  core::SimHarness harness(
      {.spec = spec, .policy = policy, .sim_threads = sim_threads});
  const int n = harness.net().num_hosts();
  const auto t0 = std::chrono::steady_clock::now();
  for (int h = 0; h < n; ++h) {
    harness.starter()(HostId{h}, HostId{(h + n / 2) % n}, bytes, 0, {});
  }
  harness.run();
  SimRun run;
  run.wall_s = seconds_since(t0);
  run.events = harness.dispatched();  // == events().dispatched() when serial
  run.delivered =
      static_cast<double>(harness.factory().total_delivered_bytes());
  run.routes = harness.network().routes().num_routes();
  run.route_dedup_hits = harness.network().routes().dedup_hits();
  run.route_arena_bytes = harness.network().routes().arena_bytes();
  // Pool introspection goes through the harness-owned pool indirectly:
  // approximate with the event-heap stats we can reach; the pool numbers
  // come from the standalone forwarding section instead.
  run.heap_regrowths = harness.events().regrowths();
  return run;
}

int run_json_report(const Flags& flags) {
  const std::string path = flags.get("json", "-");
  const int hosts = flags.get_int("hosts", 16);
  const int planes = flags.get_int("planes", 2);
  const auto bytes =
      static_cast<std::uint64_t>(flags.get_int("bytes", 2'000'000));
  const int repeat = flags.get_int("repeat", 3);

  exp::JsonWriter w;
  w.begin_object();
  w.field("bench", "micro_sim");
  w.key("config").begin_object();
  w.field("hosts", hosts);
  w.field("planes", planes);
  w.field("bytes", bytes);
  w.field("repeat", repeat);
  w.end_object();

  // Raw data-plane loop: allocate -> queue -> pipe -> free, no transport.
  // Exercises the slab pool, intrusive FIFOs, and batched dispatch alone.
  {
    sim::EventQueue events;
    sim::PacketPool pool;
    struct Sink : sim::PacketSink {
      explicit Sink(sim::PacketPool& pool) : pool_(pool) {}
      void receive(sim::Packet& packet) override { pool_.free(&packet); }
      sim::PacketPool& pool_;
    } sink(pool);
    sim::Queue queue(events, pool, 100e9, 1 << 20);
    sim::Pipe pipe(events, units::kMicrosecond);
    sim::OwnedRoute route({&queue, &pipe, &sink});
    constexpr int kBurst = 256;
    constexpr int kIters = 8192;
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < kIters; ++it) {
      for (int i = 0; i < kBurst; ++i) {
        sim::Packet* p = pool.allocate();
        p->size_bytes = 1500;
        p->route = &route;
        p->next_hop = 0;
        p->forward();
      }
      events.run();
    }
    const double wall_s = seconds_since(t0);
    w.key("forwarding").begin_object();
    w.field("packets", static_cast<std::uint64_t>(kBurst) * kIters);
    w.field("wall_s", wall_s);
    w.field("packets_per_sec",
            wall_s > 0 ? kBurst * static_cast<double>(kIters) / wall_s : 0.0);
    w.field("pool_allocated", pool.allocated());
    w.field("pool_slabs", pool.slabs());
    w.field("pool_slab_bytes", pool.slab_bytes());
    w.end_object();
  }

  // End-to-end permutation scenario; best-of-`repeat` to damp scheduler
  // noise, since CI compares events_per_sec against the committed baseline.
  {
    SimRun best;
    for (int r = 0; r < repeat; ++r) {
      SimRun run = run_permutation(hosts, planes, bytes);
      if (best.wall_s == 0 ||
          static_cast<double>(run.events) / run.wall_s >
              static_cast<double>(best.events) / best.wall_s) {
        best = run;
      }
    }
    const double eps =
        best.wall_s > 0 ? static_cast<double>(best.events) / best.wall_s : 0.0;
    w.key("packet_sim").begin_object();
    w.field("events", best.events);
    w.field("wall_s", best.wall_s);
    w.field("events_per_sec", eps);
    w.field("bytes_per_event",
            best.events > 0 ? best.delivered /
                                  static_cast<double>(best.events)
                            : 0.0);
    w.field("delivered_bytes", best.delivered);
    w.field("routes_interned", best.routes);
    w.field("route_dedup_hits", best.route_dedup_hits);
    w.field("route_arena_bytes", best.route_arena_bytes);
    w.field("event_heap_regrowths", best.heap_regrowths);
    w.end_object();
  }

  // Sharded-engine scaling sweep: the same permutation scenario on a wider
  // multi-plane fabric, at shard worker counts 1/2/4/8. Dispatched-event
  // counts must agree across every row (the sharded engine's determinism
  // contract); speedup is relative to the 1-worker sharded row and is only
  // meaningful when host_cpus covers the worker count.
  {
    const int mt_hosts = flags.get_int("mt-hosts", 32);
    const int mt_planes = flags.get_int("mt-planes", 8);
    const auto mt_bytes =
        static_cast<std::uint64_t>(flags.get_int("mt-bytes", 2'000'000));
    const int worker_counts[] = {1, 2, 4, 8};
    w.key("packet_sim_mt").begin_object();
    w.field("hosts", mt_hosts);
    w.field("planes", mt_planes);
    w.field("bytes", mt_bytes);
    w.field("host_cpus",
            static_cast<int>(std::thread::hardware_concurrency()));
    w.key("rows").begin_array();
    std::uint64_t base_events = 0;
    double base_eps = 0.0;
    bool events_agree = true;
    for (const int workers : worker_counts) {
      SimRun best;
      for (int r = 0; r < repeat; ++r) {
        SimRun run = run_permutation(mt_hosts, mt_planes, mt_bytes, workers);
        if (best.wall_s == 0 ||
            static_cast<double>(run.events) / run.wall_s >
                static_cast<double>(best.events) / best.wall_s) {
          best = run;
        }
      }
      const double eps = best.wall_s > 0
                             ? static_cast<double>(best.events) / best.wall_s
                             : 0.0;
      if (workers == 1) {
        base_events = best.events;
        base_eps = eps;
      } else if (best.events != base_events) {
        events_agree = false;
      }
      w.begin_object();
      w.field("sim_threads", workers);
      w.field("events", best.events);
      w.field("wall_s", best.wall_s);
      w.field("events_per_sec", eps);
      w.field("speedup", base_eps > 0 ? eps / base_eps : 0.0);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!events_agree) {
      std::fprintf(stderr,
                   "packet_sim_mt: dispatched-event counts diverge across "
                   "sim_threads rows (determinism breach)\n");
      return 1;
    }
  }

  w.end_object();
  const std::string text = w.str() + "\n";
  if (path == "-" || path == "1") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0) {
      return run_json_report(Flags(argc, argv));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
