// google-benchmark microbenchmarks for the packet simulator: raw event
// throughput, queue+pipe forwarding, and end-to-end simulated-bytes-per-
// wall-second for a TCP transfer — the numbers that bound how large an
// experiment the harness can run.
//
// The telemetry overhead budget lives here too: BM_TcpTransfer10MB is the
// disabled-path baseline (telemetry pointer null, trace macros test a
// pointer), BM_TcpTransfer10MBTelemetry the fully-enabled run (100 us
// sampling grid + tracing). The disabled path must stay within ~2% of a
// build without the telemetry wiring; compare against a pre-telemetry
// checkout when touching the hot paths.
#include <benchmark/benchmark.h>

#include "core/harness.hpp"
#include "routing/shortest.hpp"
#include "sim/network.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace pnet;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  class Nop : public sim::EventSource {
   public:
    void do_next_event() override {}
  };
  Nop nop;
  sim::EventQueue events;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      events.schedule_in((i * 37) % 1000, &nop);
    }
    events.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_QueuePipeForwarding(benchmark::State& state) {
  sim::EventQueue events;
  sim::PacketPool pool;
  class Sink : public sim::PacketSink {
   public:
    explicit Sink(sim::PacketPool& pool) : pool_(pool) {}
    void receive(sim::Packet& packet) override { pool_.free(&packet); }

   private:
    sim::PacketPool& pool_;
  };
  Sink sink(pool);
  sim::Queue queue(events, pool, 100e9, 1 << 20);
  sim::Pipe pipe(events, units::kMicrosecond);
  sim::Route route;
  route.sinks = {&queue, &pipe, &sink};
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      sim::Packet* p = pool.allocate();
      p->size_bytes = 1500;
      p->route = &route;
      p->next_hop = 0;
      p->forward();
    }
    events.run();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_QueuePipeForwarding);

void BM_TcpTransfer10MB(benchmark::State& state) {
  for (auto _ : state) {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kFatTree;
    spec.hosts = 16;
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kShortestPlane;
    core::SimHarness harness({.spec = spec, .policy = policy});
    harness.starter()(HostId{0}, HostId{15}, 10'000'000, 0, {});
    harness.run();
  }
  state.SetBytesProcessed(state.iterations() * 10'000'000);
}
BENCHMARK(BM_TcpTransfer10MB)->Unit(benchmark::kMillisecond);

// Same transfer with telemetry fully on: sampling every 100 us of
// simulated time plus flow/fault tracing. The delta over BM_TcpTransfer10MB
// is the enabled-mode cost (sampler probes walk every queue at each grid
// point, so it scales with topology size and grid density).
void BM_TcpTransfer10MBTelemetry(benchmark::State& state) {
  for (auto _ : state) {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kFatTree;
    spec.hosts = 16;
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kShortestPlane;
    telemetry::Telemetry tel(
        {.sample_every = 100 * units::kMicrosecond, .trace = true});
    core::SimHarness harness(
        {.spec = spec, .policy = policy, .telemetry = &tel});
    harness.starter()(HostId{0}, HostId{15}, 10'000'000, 0, {});
    harness.run();
    benchmark::DoNotOptimize(tel.sampler.times().size());
  }
  state.SetBytesProcessed(state.iterations() * 10'000'000);
}
BENCHMARK(BM_TcpTransfer10MBTelemetry)->Unit(benchmark::kMillisecond);

void BM_MptcpTransfer10MB(benchmark::State& state) {
  for (auto _ : state) {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kFatTree;
    spec.hosts = 16;
    spec.parallelism = 4;
    spec.type = topo::NetworkType::kParallelHomogeneous;
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kKspMultipath;
    policy.k = 4;
    core::SimHarness harness({.spec = spec, .policy = policy});
    harness.starter()(HostId{0}, HostId{15}, 10'000'000, 0, {});
    harness.run();
  }
  state.SetBytesProcessed(state.iterations() * 10'000'000);
}
BENCHMARK(BM_MptcpTransfer10MB)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
