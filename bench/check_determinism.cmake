# ctest harness for the bench-report determinism contract: the same spec
# and seed must produce a byte-identical timing-free JSON report at any
# --threads value, for both engines, and with the shared route cache on or
# off (PNET_ROUTE_CACHE=off forces pass-through recomputes — the cache must
# be an optimization, never a behavior change). Invoked by the
# bench_report_determinism test with -DBENCH=<bench_fig9 path>
# -DWORKDIR=<scratch dir>.
set(args --hosts=16 --planes=2 --maxsize=1000000 --rounds=1 --trials=2
         --json-timing=0)

foreach(engine packet fsim)
  set(outputs "")
  foreach(threads 1 4)
    foreach(cache on off)
      set(json ${WORKDIR}/fig9_${engine}_t${threads}_cache-${cache}.json)
      execute_process(
        COMMAND ${CMAKE_COMMAND} -E env PNET_ROUTE_CACHE=${cache}
                ${BENCH} ${args} --engine=${engine} --threads=${threads}
                --json=${json}
        RESULT_VARIABLE rc OUTPUT_QUIET)
      if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${BENCH} --engine=${engine} "
                            "--threads=${threads} (route cache ${cache}) "
                            "exited ${rc}")
      endif()
      list(APPEND outputs ${json})
    endforeach()
  endforeach()
  list(GET outputs 0 first)
  foreach(other ${outputs})
    if(other STREQUAL first)
      continue()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            ${first} ${other}
                    RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR "engine=${engine}: JSON report differs between "
                          "${first} and ${other} — the determinism "
                          "contract (threads x route-cache) is broken")
    endif()
  endforeach()
endforeach()
