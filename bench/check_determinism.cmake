# ctest harness for the bench-report determinism contract: the same spec
# and seed must produce a byte-identical timing-free JSON report at any
# --threads value, for both engines, and with the shared route cache on or
# off (PNET_ROUTE_CACHE=off forces pass-through recomputes — the cache must
# be an optimization, never a behavior change). A second section checks the
# sharded packet engine: reports must be byte-identical at every
# --sim-threads value >= 1 (the shard layout is pinned to the plane count;
# the worker count is only a pool size). Invoked by the
# bench_report_determinism test with -DBENCH=<bench_fig9 path>
# -DFAULT_BENCH=<bench_fault_recovery path> -DWORKDIR=<scratch dir>.
set(args --hosts=16 --planes=2 --maxsize=1000000 --rounds=1 --trials=2
         --json-timing=0)

foreach(engine packet fsim)
  set(outputs "")
  foreach(threads 1 4)
    foreach(cache on off)
      set(json ${WORKDIR}/fig9_${engine}_t${threads}_cache-${cache}.json)
      execute_process(
        COMMAND ${CMAKE_COMMAND} -E env PNET_ROUTE_CACHE=${cache}
                ${BENCH} ${args} --engine=${engine} --threads=${threads}
                --json=${json}
        RESULT_VARIABLE rc OUTPUT_QUIET)
      if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${BENCH} --engine=${engine} "
                            "--threads=${threads} (route cache ${cache}) "
                            "exited ${rc}")
      endif()
      list(APPEND outputs ${json})
    endforeach()
  endforeach()
  list(GET outputs 0 first)
  foreach(other ${outputs})
    if(other STREQUAL first)
      continue()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            ${first} ${other}
                    RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR "engine=${engine}: JSON report differs between "
                          "${first} and ${other} — the determinism "
                          "contract (threads x route-cache) is broken")
    endif()
  endforeach()
endforeach()

# Sharded-engine determinism: sharded rows compare only against each other,
# never against --sim-threads=0 — same-instant cross-shard ties merge in
# (shard, seq) order under the sharded engine, so legacy and sharded bytes
# legitimately differ while every sharded worker count agrees exactly.
function(check_sharded case_name case_bench)
  set(case_args ${ARGN})
  set(outputs "")
  foreach(sim_threads 1 2 4)
    set(json ${WORKDIR}/${case_name}_simt${sim_threads}.json)
    execute_process(
      COMMAND ${case_bench} ${case_args} --sim-threads=${sim_threads}
              --json=${json}
      RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "${case_bench} --sim-threads=${sim_threads} "
                          "exited ${rc}")
    endif()
    list(APPEND outputs ${json})
  endforeach()
  list(GET outputs 0 first)
  foreach(other ${outputs})
    if(other STREQUAL first)
      continue()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            ${first} ${other}
                    RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR "${case_name}: JSON report differs between "
                          "${first} and ${other} — the sharded engine is "
                          "not byte-identical across --sim-threads values")
    endif()
  endforeach()
endfunction()

check_sharded(fig9 ${BENCH} ${args} --engine=packet --threads=2)
if(FAULT_BENCH)
  check_sharded(fault_recovery ${FAULT_BENCH}
                --hosts=16 --threads=2 --json-timing=0)
endif()

# Controller-enabled determinism: the adaptive control plane's ticks are
# simulation events (control-queue barriers / fluid event loop), so a
# --controller=centralized run obeys the exact same contracts — reports
# byte-identical across --threads for both engines, and across every
# --sim-threads value >= 1 for the sharded packet engine.
foreach(engine packet fsim)
  set(outputs "")
  foreach(threads 1 4)
    set(json ${WORKDIR}/fig9_ctl_${engine}_t${threads}.json)
    execute_process(
      COMMAND ${BENCH} ${args} --controller=centralized --engine=${engine}
              --threads=${threads} --json=${json}
      RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "${BENCH} --controller=centralized "
                          "--engine=${engine} --threads=${threads} "
                          "exited ${rc}")
    endif()
    list(APPEND outputs ${json})
  endforeach()
  list(GET outputs 0 first)
  list(GET outputs 1 second)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          ${first} ${second}
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "engine=${engine}: controller-enabled JSON report "
                        "differs between ${first} and ${second} — the "
                        "control loop leaked thread-dependent state")
  endif()
endforeach()

check_sharded(fig9_ctl ${BENCH} ${args} --controller=centralized
              --engine=packet --threads=2)
