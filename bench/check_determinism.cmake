# ctest harness for the bench-report determinism contract: the same spec
# and seed must produce a byte-identical timing-free JSON report at any
# --threads value, for both engines. Invoked by the bench_report_determinism
# test with -DBENCH=<bench_fig9 path> -DWORKDIR=<scratch dir>.
set(args --hosts=16 --planes=2 --maxsize=1000000 --rounds=1 --trials=2
         --json-timing=0)

foreach(engine packet fsim)
  set(outputs "")
  foreach(threads 1 4)
    set(json ${WORKDIR}/fig9_${engine}_t${threads}.json)
    execute_process(
      COMMAND ${BENCH} ${args} --engine=${engine} --threads=${threads}
              --json=${json}
      RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "${BENCH} --engine=${engine} --threads=${threads} "
                          "exited ${rc}")
    endif()
    list(APPEND outputs ${json})
  endforeach()
  list(GET outputs 0 first)
  list(GET outputs 1 second)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          ${first} ${second}
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "engine=${engine}: JSON report differs between "
                        "--threads=1 and --threads=4 (${first} vs "
                        "${second}) — the determinism contract is broken")
  endif()
endforeach()
