// Figure 10 + Table 2: 1500 B (MTU-sized) RPC request completion time on
// Jellyfish networks, single-path routing, N = 4 dataplanes.
//
// Each host ping-pongs MTU-sized RPCs with random servers. The completion
// time distribution steps with the hop-count distribution; parallel
// heterogeneous networks answer from whichever plane has the shortest path
// (the §3.4 "low-latency" interface), cutting the median to ~80% of serial
// in the paper. Serial high-bw only shaves serialization delay (90 ns/hop
// at 400G), which is small next to the ~1 us/hop propagation.
//
// One custom-engine cell per network type; the RPC completion times are
// the cell's FCT sample set in the JSON report.
//
// Usage: bench_fig10_table2 [--hosts=96] [--planes=4] [--rounds=100]
//        [--seed=1]  (--scale=paper: 686 hosts, 1000 rounds)
#include "common.hpp"
#include "workload/apps.hpp"

using namespace pnet;

namespace {

exp::TrialResult run_rpcs(topo::NetworkType type, int hosts, int planes,
                          std::uint64_t rpc_bytes, int rounds,
                          const exp::TrialContext& ctx) {
  const auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type,
                                     hosts, planes, ctx.seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;  // single path
  core::SimHarness harness({.spec = spec, .policy = policy});

  workload::ClosedLoopApp::Config config;
  config.concurrent_per_host = 1;
  config.response_bytes = rpc_bytes;
  config.rounds_per_worker = rounds;
  config.seed = mix64(ctx.seed);
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [rpc_bytes](Rng&) { return rpc_bytes; });
  app.start(0);
  harness.run();

  exp::TrialResult r;
  r.fct_us = app.completion_times_us();
  r.flows_started = static_cast<std::uint64_t>(harness.net().num_hosts()) *
                    static_cast<std::uint64_t>(rounds);
  r.flows_finished = r.fct_us.size();
  r.delivered_bytes =
      static_cast<double>(harness.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(harness.events().now());
  r.events = harness.events().dispatched();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Figure 10 + Table 2: 1500B RPC completion time, single-path routing",
      flags,
      "bench_fig10_table2: 1500B RPC completion times\n"
      "\n"
      "  --hosts=N    hosts (default 96; paper 686)\n"
      "  --planes=N   dataplanes (default 4)\n"
      "  --rounds=N   RPCs per host (default 100; paper 1000)\n"
      "  --seed=N     base seed (default 1)\n");
  const bool paper = flags.paper_scale();
  const int hosts = flags.get_int("hosts", paper ? 686 : 96);
  const int planes = flags.get_int("planes", 4);
  const int rounds = flags.get_int("rounds", paper ? 1000 : 100);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  bench::Experiment experiment(flags, "fig10_table2");
  for (auto type : bench::kAllTypes) {
    exp::ExperimentSpec spec;
    spec.name = topo::to_string(type);
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    spec.trials = experiment.trials(1);
    experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
      return run_rpcs(type, hosts, planes, 1500, rounds, ctx);
    });
  }
  const auto results = experiment.run();

  // Fig 10: CDFs (stepping with the hop-count distribution).
  for (const auto& cell : results) {
    bench::print_cdf("Fig 10 CDF: " + cell.spec.name,
                     Cdf::from_samples(cell.merged_fct_us()),
                     "completion time (us)");
  }

  // Table 2: statistics relative to serial low-bw.
  const auto base = results.front().fct();
  TextTable table("Table 2: 1500B RPC completion time, % of serial low-bw "
                  "(paper: het 80.1/86.6/90.4, high-bw ~98)",
                  {"network", "median %", "average %", "99%-tile %"});
  for (const auto& cell : results) {
    const auto s = cell.fct();
    table.add_row(cell.spec.name, {100.0 * s.median / base.median,
                                   100.0 * s.mean / base.mean,
                                   100.0 * s.p99 / base.p99},
                  1);
  }
  table.print();
  return experiment.finish();
}
