// Figure 10 + Table 2: 1500 B (MTU-sized) RPC request completion time on
// Jellyfish networks, single-path routing, N = 4 dataplanes.
//
// Each host ping-pongs MTU-sized RPCs with random servers. The completion
// time distribution steps with the hop-count distribution; parallel
// heterogeneous networks answer from whichever plane has the shortest path
// (the §3.4 "low-latency" interface), cutting the median to ~80% of serial
// in the paper. Serial high-bw only shaves serialization delay (90 ns/hop
// at 400G), which is small next to the ~1 us/hop propagation.
//
// Usage: bench_fig10_table2 [--hosts=96] [--planes=4] [--rounds=100]
//        [--seed=1]  (--scale=paper: 686 hosts, 1000 rounds)
#include "common.hpp"
#include "workload/apps.hpp"

using namespace pnet;

namespace {

std::vector<double> run_rpcs(topo::NetworkType type, int hosts, int planes,
                             std::uint64_t rpc_bytes, int rounds,
                             std::uint64_t seed) {
  const auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type,
                                     hosts, planes, seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;  // single path
  core::SimHarness harness(spec, policy);

  workload::ClosedLoopApp::Config config;
  config.concurrent_per_host = 1;
  config.response_bytes = rpc_bytes;
  config.rounds_per_worker = rounds;
  config.seed = seed * 71 + 3;
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [rpc_bytes](Rng&) { return rpc_bytes; });
  app.start(0);
  harness.run();
  return app.completion_times_us();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Figure 10 + Table 2: 1500B RPC completion time, single-path routing",
      flags,
      "bench_fig10_table2: 1500B RPC completion times\n"
      "\n"
      "  --hosts=N    hosts (default 96; paper 686)\n"
      "  --planes=N   dataplanes (default 4)\n"
      "  --rounds=N   RPCs per host (default 100; paper 1000)\n"
      "  --seed=N     base seed (default 1)\n");
  const bool paper = flags.paper_scale();
  const int hosts = flags.get_int("hosts", paper ? 686 : 96);
  const int planes = flags.get_int("planes", 4);
  const int rounds = flags.get_int("rounds", paper ? 1000 : 100);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  std::vector<std::pair<std::string, std::vector<double>>> results;
  for (auto type : bench::kAllTypes) {
    results.emplace_back(topo::to_string(type),
                         run_rpcs(type, hosts, planes, 1500, rounds, seed));
  }

  // Fig 10: CDFs (stepping with the hop-count distribution).
  for (const auto& [name, samples] : results) {
    bench::print_cdf("Fig 10 CDF: " + name, Cdf::from_samples(samples),
                     "completion time (us)");
  }

  // Table 2: statistics relative to serial low-bw.
  const auto base = bench::summarize(results.front().second);
  TextTable table("Table 2: 1500B RPC completion time, % of serial low-bw "
                  "(paper: het 80.1/86.6/90.4, high-bw ~98)",
                  {"network", "median %", "average %", "99%-tile %"});
  for (const auto& [name, samples] : results) {
    const auto s = bench::summarize(samples);
    table.add_row(name, {100.0 * s.median / base.median,
                         100.0 * s.mean / base.mean,
                         100.0 * s.p99 / base.p99},
                  1);
  }
  table.print();
  return 0;
}
