// Figure 9: small-flow FCT vs flow size on Jellyfish P-Nets (packet sim).
//
// Permutation traffic, four network types, N = 4 dataplanes. As in the
// paper's best-of configuration (§5.1.2), serial networks use single-path
// routing and parallel networks use 4-way KSP + MPTCP. The paper's shape:
// parallel networks win for small flows (they slow-start over more paths,
// finishing before queues fill), the advantage narrows around ~100 MB
// (MPTCP probes slowly), and grows again for bulk flows.
//
// Usage: bench_fig9 [--hosts=96] [--planes=4] [--rounds=5] [--seed=1]
//        [--maxsize=10000000]   (--scale=paper: 686 hosts, up to 1 GB)
#include "common.hpp"

using namespace pnet;

namespace {

core::PolicyConfig policy_for(topo::NetworkType type, int planes) {
  core::PolicyConfig policy;
  const bool parallel = type == topo::NetworkType::kParallelHomogeneous ||
                        type == topo::NetworkType::kParallelHeterogeneous;
  if (parallel) {
    policy.policy = core::RoutingPolicy::kKspMultipath;
    policy.k = planes;  // 4-way KSP gives the lowest FCTs on P-Nets (§5.1.2)
  } else {
    policy.policy = core::RoutingPolicy::kShortestPlane;  // single path
  }
  return policy;
}

bench::Summary run_packet(topo::NetworkType type, int hosts, int planes,
                          std::uint64_t flow_bytes, int rounds,
                          std::uint64_t seed) {
  auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type, hosts,
                               planes, seed);
  // Bulk-transfer experiments use deeper per-port buffers (400 MTUs), as
  // htsim TCP studies do; the shallow 100-packet default is kept for the
  // RPC experiments where drop behaviour is the point (Fig 11).
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;
  core::SimHarness harness(spec, policy_for(type, planes), sim_config);

  Rng rng(seed * 33 + 1);
  std::vector<double> fcts;
  for (int round = 0; round < rounds; ++round) {
    const auto pairs =
        workload::permutation_pairs(harness.net().num_hosts(), rng);
    const SimTime start = harness.events().now();
    int remaining = static_cast<int>(pairs.size());
    for (const auto& [src, dst] : pairs) {
      // A few microseconds of start jitter, as in any real deployment.
      const SimTime jittered =
          start + static_cast<SimTime>(rng.next_below(10 * units::kMicrosecond));
      harness.starter()(src, dst, flow_bytes, jittered,
                        [&](const sim::FlowRecord& r) {
                          fcts.push_back(
                              units::to_microseconds(r.end - r.start));
                          --remaining;
                        });
    }
    harness.run();
    if (remaining != 0) {
      std::fprintf(stderr, "warning: %d flows unfinished\n", remaining);
    }
  }
  return bench::summarize(fcts);
}

/// Fluid-engine twin of run_packet: same topology, permutations, jitter and
/// policy intent, two orders of magnitude faster (no slow start or queueing
/// delay; see DESIGN.md for the fidelity envelope).
bench::Summary run_fsim(topo::NetworkType type, int hosts, int planes,
                        std::uint64_t flow_bytes, int rounds,
                        std::uint64_t seed) {
  auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type, hosts,
                               planes, seed);
  const auto net = topo::build_network(spec);
  const auto config = bench::to_fsim_config(policy_for(type, planes));

  Rng rng(seed * 33 + 1);
  std::vector<double> fcts;
  for (int round = 0; round < rounds; ++round) {
    fsim::FluidSimulator fluid(net, config);
    for (const auto& [src, dst] :
         workload::permutation_pairs(net.num_hosts(), rng)) {
      const SimTime jittered =
          static_cast<SimTime>(rng.next_below(10 * units::kMicrosecond));
      fluid.add_flow({src, dst, flow_bytes, jittered});
    }
    fluid.run();
    for (double fct : fluid.fct_us()) fcts.push_back(fct);
  }
  return bench::summarize(fcts);
}

bench::Summary run_one(bench::Engine engine, topo::NetworkType type,
                       int hosts, int planes, std::uint64_t flow_bytes,
                       int rounds, std::uint64_t seed) {
  return engine == bench::Engine::kPacket
             ? run_packet(type, hosts, planes, flow_bytes, rounds, seed)
             : run_fsim(type, hosts, planes, flow_bytes, rounds, seed);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 9: small flow FCT vs flow size (permutation)",
                      flags,
                      "bench_fig9: FCT vs flow size on Jellyfish P-Nets\n"
                      "\n"
                      "  --hosts=N        hosts (default 96; paper 686)\n"
                      "  --planes=N       dataplanes (default 4)\n"
                      "  --rounds=N       permutation rounds (default 3)\n"
                      "  --maxsize=N      largest flow size in bytes\n"
                      "  --engine=E       packet (default) or fsim "
                      "(flow-level fluid model)\n"
                      "  --seed=N         base seed (default 1)\n");
  const auto engine = bench::parse_engine(flags);
  const bool paper = flags.paper_scale();
  const int hosts = flags.get_int("hosts", paper ? 686 : 96);
  const int planes = flags.get_int("planes", 4);
  const int rounds = flags.get_int("rounds", paper ? 5 : 3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));
  const std::uint64_t max_size = static_cast<std::uint64_t>(
      flags.get_i64("maxsize", paper ? 1'000'000'000 : 10'000'000));

  std::vector<std::uint64_t> sizes = {100'000, 1'000'000, 10'000'000,
                                      100'000'000, 1'000'000'000};
  std::erase_if(sizes, [&](std::uint64_t s) { return s > max_size; });

  TextTable table(std::string("Fig 9: mean FCT (us) with stddev, by flow "
                              "size [engine=") +
                      bench::to_string(engine) + "]",
                  {"flow size", "serial low-bw", "sd", "par hom", "sd",
                   "par het", "sd", "serial high-bw", "sd"});
  for (std::uint64_t size : sizes) {
    std::vector<double> row;
    for (auto type : bench::kAllTypes) {
      const auto s = run_one(engine, type, hosts, planes, size, rounds, seed);
      row.push_back(s.mean);
      row.push_back(s.stddev);
    }
    table.add_row(format_double(static_cast<double>(size) / 1e6, 1) + " MB",
                  row, 1);
  }
  table.print();

  std::printf("\nExpected shape (paper): parallel networks at or below\n"
              "serial high-bw for flows <= 10 MB; the parallel advantage\n"
              "over serial low-bw narrows near 100 MB and grows again for\n"
              "1 GB bulk flows.\n");
  return 0;
}
