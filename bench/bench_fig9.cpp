// Figure 9: small-flow FCT vs flow size on Jellyfish P-Nets.
//
// Permutation traffic, four network types, N = 4 dataplanes. As in the
// paper's best-of configuration (§5.1.2), serial networks use single-path
// routing and parallel networks use 4-way KSP + MPTCP. The paper's shape:
// parallel networks win for small flows (they slow-start over more paths,
// finishing before queues fill), the advantage narrows around ~100 MB
// (MPTCP probes slowly), and grows again for bulk flows.
//
// Every (flow size, network type) pair is one ExperimentSpec cell; the
// whole grid fans out through exp::Runner in a single pass, so --threads
// parallelizes across cells and --json captures the structured report.
//
// Usage: bench_fig9 [--hosts=96] [--planes=4] [--rounds=5] [--seed=1]
//        [--maxsize=10000000]   (--scale=paper: 686 hosts, up to 1 GB)
#include "common.hpp"

using namespace pnet;

namespace {

core::PolicyConfig policy_for(topo::NetworkType type, int planes) {
  core::PolicyConfig policy;
  const bool parallel = type == topo::NetworkType::kParallelHomogeneous ||
                        type == topo::NetworkType::kParallelHeterogeneous;
  if (parallel) {
    policy.policy = core::RoutingPolicy::kKspMultipath;
    policy.k = planes;  // 4-way KSP gives the lowest FCTs on P-Nets (§5.1.2)
  } else {
    policy.policy = core::RoutingPolicy::kShortestPlane;  // single path
  }
  return policy;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 9: small flow FCT vs flow size (permutation)",
                      flags,
                      "bench_fig9: FCT vs flow size on Jellyfish P-Nets\n"
                      "\n"
                      "  --hosts=N        hosts (default 96; paper 686)\n"
                      "  --planes=N       dataplanes (default 4)\n"
                      "  --rounds=N       permutation rounds (default 3)\n"
                      "  --maxsize=N      largest flow size in bytes\n"
                      "  --seed=N         base seed (default 1)\n");
  const auto engine = bench::parse_engine(flags);
  const bool paper = flags.paper_scale();
  const int hosts = flags.get_int("hosts", paper ? 686 : 96);
  const int planes = flags.get_int("planes", 4);
  const int rounds = flags.get_int("rounds", paper ? 5 : 3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));
  const std::uint64_t max_size = static_cast<std::uint64_t>(
      flags.get_i64("maxsize", paper ? 1'000'000'000 : 10'000'000));

  std::vector<std::uint64_t> sizes = {100'000, 1'000'000, 10'000'000,
                                      100'000'000, 1'000'000'000};
  std::erase_if(sizes, [&](std::uint64_t s) { return s > max_size; });

  bench::Experiment experiment(flags, "fig9");
  for (std::uint64_t size : sizes) {
    for (auto type : bench::kAllTypes) {
      exp::ExperimentSpec spec;
      spec.name = format_double(static_cast<double>(size) / 1e6, 1) +
                  "MB/" + topo::to_string(type);
      spec.topo = bench::make_spec(topo::TopoKind::kJellyfish, type, hosts,
                                   planes, seed);
      spec.policy = policy_for(type, planes);
      spec.engine = engine;
      // Bulk-transfer experiments use deeper per-port buffers (400 MTUs),
      // as htsim TCP studies do; the shallow 100-packet default is kept
      // for the RPC experiments where drop behaviour is the point (Fig 11).
      spec.sim.queue_buffer_bytes = 400 * 1500;
      spec.workload.flow_bytes = size;
      spec.workload.rounds = rounds;
      spec.seed = seed;
      spec.trials = experiment.trials(1);
      experiment.add(std::move(spec));
    }
  }
  const auto results = experiment.run();

  TextTable table(std::string("Fig 9: mean FCT (us) with stddev, by flow "
                              "size [engine=") +
                      bench::to_string(engine) + "]",
                  {"flow size", "serial low-bw", "sd", "par hom", "sd",
                   "par het", "sd", "serial high-bw", "sd"});
  const std::size_t num_types = std::size(bench::kAllTypes);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<double> row;
    for (std::size_t j = 0; j < num_types; ++j) {
      const auto s = results[i * num_types + j].fct();
      row.push_back(s.mean);
      row.push_back(s.stddev);
    }
    table.add_row(
        format_double(static_cast<double>(sizes[i]) / 1e6, 1) + " MB", row,
        1);
  }
  table.print();

  // With --sample-every, the built-in engines record a goodput timeline
  // per trial through telemetry::Sampler; surface the largest flow size's
  // curves as a companion table (time axis from the serial low-bw cell —
  // cells whose grid downsampled differently just truncate).
  if (flags.get_double("sample-every", 0.0) > 0 && !sizes.empty()) {
    TextTable curves("Fig 9 companion: sampler goodput timeline at the "
                     "largest flow size (Gb/s)",
                     {"t (ms)", "serial low-bw", "par hom", "par het",
                      "serial high-bw"});
    const std::size_t base = (sizes.size() - 1) * num_types;
    const auto& axis = results[base].trials.front().samples;
    const auto t_it = axis.find("tm/t_us");
    const std::size_t points =
        t_it == axis.end() ? 0 : t_it->second.size();
    const std::size_t stride = points > 24 ? points / 24 : 1;
    for (std::size_t b = 0; b < points; b += stride) {
      std::vector<double> row;
      for (std::size_t j = 0; j < num_types; ++j) {
        const auto& samples = results[base + j].trials.front().samples;
        const auto g = samples.find("tm/goodput_bps");
        row.push_back(g != samples.end() && b < g->second.size()
                          ? g->second[b] / units::kGbps
                          : 0.0);
      }
      curves.add_row(format_double(t_it->second[b] / 1000.0, 2), row, 2);
    }
    curves.print();
  }

  std::printf("\nExpected shape (paper): parallel networks at or below\n"
              "serial high-bw for flows <= 10 MB; the parallel advantage\n"
              "over serial low-bw narrows near 100 MB and grows again for\n"
              "1 GB bulk flows.\n");
  return experiment.finish();
}
