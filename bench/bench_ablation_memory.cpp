// Ablation: switch forwarding-state footprint — §3.4's argument that
// end-host routing avoids "the limited memory constraint on commodity
// switches in order to support routing over multiple dataplanes".
//
// Compares the per-switch ECMP table entries a conventional table-driven
// deployment would install on a serial network vs an N-plane P-Net of the
// same capacity (each plane only knows its own ToRs), and prints 0 for the
// source-routed P-Net host stack this library simulates. One custom-engine
// cell per network configuration.
//
// Usage: bench_ablation_memory [--hosts=256] [--seed=1]
#include "common.hpp"
#include "routing/forwarding.hpp"

using namespace pnet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Ablation: forwarding-table state per switch", flags,
                      "bench_ablation_memory: forwarding-table state per "
                      "switch\n"
                      "\n"
                      "  --hosts=N    hosts per network (default 256)\n"
                      "  --seed=N     topology seed (default 1)\n");
  const int hosts = flags.get_int("hosts", 256);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  const std::vector<std::tuple<std::string, topo::NetworkType, int>>
      configs = {
          {"serial low-bw", topo::NetworkType::kSerialLow, 1},
          {"parallel x2", topo::NetworkType::kParallelHeterogeneous, 2},
          {"parallel x4", topo::NetworkType::kParallelHeterogeneous, 4},
          {"parallel x8", topo::NetworkType::kParallelHeterogeneous, 8}};

  bench::Experiment experiment(flags, "ablation_memory");
  for (const auto& [label, type, planes] : configs) {
    exp::ExperimentSpec spec;
    spec.name = label;
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    const auto t = type;
    const int p = planes;
    experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
      const auto net = topo::build_network(bench::make_spec(
          topo::TopoKind::kJellyfish, t, hosts, p, ctx.seed));
      const auto footprint = routing::forwarding_footprint(net);
      exp::TrialResult r;
      r.metrics["switches"] = static_cast<double>(footprint.switches);
      r.metrics["total_entries"] =
          static_cast<double>(footprint.total_entries);
      r.metrics["max_entries_per_switch"] =
          static_cast<double>(footprint.max_entries_per_switch);
      r.metrics["mean_entries_per_switch"] =
          footprint.mean_entries_per_switch;
      return r;
    });
  }
  const auto results = experiment.run();

  TextTable table("ECMP (destination, next-hop) entries",
                  {"network", "switches", "total entries",
                   "max per switch", "mean per switch"});
  for (const auto& cell : results) {
    table.add_row(cell.spec.name,
                  {cell.metric("switches").mean,
                   cell.metric("total_entries").mean,
                   cell.metric("max_entries_per_switch").mean,
                   cell.metric("mean_entries_per_switch").mean},
                  1);
  }
  table.print();
  std::printf(
      "Per-switch state stays flat as planes multiply (each plane's\n"
      "switches route only that plane), and the P-Net host stack this\n"
      "library models needs ZERO in-fabric ECMP state: hosts source-route\n"
      "over paths they compute themselves (§3.4).\n");
  return experiment.finish();
}
