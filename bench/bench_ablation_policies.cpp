// Ablation: the five path-selection policies head-to-head on one 4-plane
// heterogeneous Jellyfish P-Net, for a latency workload (20 kB RPC-sized
// flows) and a bandwidth workload (16 MB bulk flows).
//
// This quantifies the paper's policy narrative in one table: naive ECMP
// wastes planes on sparse traffic, round-robin load-balances, the
// shortest-plane interface wins latency, KSP multipath wins bulk, and the
// size-threshold policy gets both by dispatching on flow size (§5.1.2).
//
// One custom-engine cell per (workload, policy); exp::Runner fans the
// 10-cell grid over --threads.
//
// Usage: bench_ablation_policies [--hosts=64] [--planes=4] [--rounds=10]
#include "common.hpp"
#include "workload/apps.hpp"

using namespace pnet;

namespace {

exp::TrialResult run_policy(core::RoutingPolicy policy_kind, int hosts,
                            int planes, std::uint64_t flow_bytes, int rounds,
                            const exp::TrialContext& ctx) {
  const auto spec =
      bench::make_spec(topo::TopoKind::kJellyfish,
                       topo::NetworkType::kParallelHeterogeneous, hosts,
                       planes, ctx.seed);
  core::PolicyConfig policy;
  policy.policy = policy_kind;
  policy.k = planes;
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;
  core::SimHarness harness({.spec = spec, .policy = policy, .sim_config = sim_config});

  workload::ClosedLoopApp::Config config;
  config.concurrent_per_host = 2;
  config.rounds_per_worker = rounds;
  config.seed = mix64(ctx.seed);
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [flow_bytes](Rng&) { return flow_bytes; });
  app.start(0);
  harness.run();

  exp::TrialResult r;
  r.fct_us = app.completion_times_us();
  r.flows_started = static_cast<std::uint64_t>(harness.net().num_hosts()) *
                    2ULL * static_cast<std::uint64_t>(rounds);
  r.flows_finished = r.fct_us.size();
  r.delivered_bytes =
      static_cast<double>(harness.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(harness.events().now());
  r.events = harness.events().dispatched();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Ablation: path-selection policies "
                      "(4-plane heterogeneous Jellyfish)",
                      flags,
                      "bench_ablation_policies: path-selection policy "
                      "shoot-out\n"
                      "\n"
                      "  --hosts=N    hosts per network (default 64)\n"
                      "  --planes=N   dataplanes (default 4)\n"
                      "  --rounds=N   RPC rounds per worker (default 10)\n"
                      "  --seed=N     topology/workload seed (default 1)\n");
  const int hosts = flags.get_int("hosts", 64);
  const int planes = flags.get_int("planes", 4);
  const int rounds = flags.get_int("rounds", 10);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  const core::RoutingPolicy policies[] = {
      core::RoutingPolicy::kEcmp, core::RoutingPolicy::kRoundRobin,
      core::RoutingPolicy::kShortestPlane,
      core::RoutingPolicy::kKspMultipath,
      core::RoutingPolicy::kSizeThreshold};
  const std::vector<std::pair<std::string, std::uint64_t>> workloads = {
      {"latency workload: 20 kB flows", 20'000},
      {"bandwidth workload: 16 MB flows", 16'000'000}};

  bench::Experiment experiment(flags, "ablation_policies");
  for (const auto& [label, bytes] : workloads) {
    for (auto p : policies) {
      exp::ExperimentSpec spec;
      spec.name = std::string(core::to_string(p)) + "/" +
                  std::to_string(bytes) + "B";
      spec.engine = exp::EngineKind::kCustom;
      spec.seed = seed;
      spec.trials = experiment.trials(1);
      const std::uint64_t b = bytes;
      experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
        return run_policy(p, hosts, planes, b, rounds, ctx);
      });
    }
  }
  const auto results = experiment.run();
  const std::size_t num_policies = std::size(policies);

  for (std::size_t w = 0; w < workloads.size(); ++w) {
    TextTable table("FCT (us) by policy — " + workloads[w].first,
                    {"policy", "median", "p90", "p99", "mean"});
    for (std::size_t i = 0; i < num_policies; ++i) {
      const auto s = results[w * num_policies + i].fct();
      table.add_row(core::to_string(policies[i]),
                    {s.median, s.p90, s.p99, s.mean}, 1);
    }
    table.print();
  }
  std::printf(
      "Reading: single-path policies — shortest-plane leads ecmp/rr on\n"
      "latency; ksp-multipath leads the bandwidth table; size-threshold\n"
      "tracks shortest-plane for small flows and ksp for bulk. (In this\n"
      "simulator ksp-multipath also does well on tiny flows because\n"
      "subflows cost nothing to set up; the paper's §5.1.2 caveat about\n"
      "MPTCP hurting short flows concerns real stacks under load.)\n");
  return experiment.finish();
}
