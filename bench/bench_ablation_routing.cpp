// Ablation: two internal design choices of the routing/transport stack.
//
// (1) KSP tie-breaking. Yen's algorithm with deterministic lexicographic
//     tie-breaks concentrates every flow's K paths on the same corner of an
//     equal-cost-rich fabric; the library jitters the metric per flow. This
//     table shows the LP permutation throughput both ways on a fat tree —
//     the deterministic variant wastes roughly half the fabric.
//
// (2) MPTCP coupling. RFC 6356 Linked Increases is fair at shared
//     bottlenecks but ramps conservatively on disjoint planes; uncoupled
//     subflows are the aggressive opposite. The table shows bulk-transfer
//     completion on 2 disjoint planes and the bottleneck share against a
//     single TCP flow, for both modes.
//
// Four custom-engine cells (2 tie-break modes + 2 coupling modes), fanned
// out by exp::Runner.
//
// Usage: bench_ablation_routing [--hosts=128] [--seed=1]
#include "common.hpp"
#include "routing/shortest.hpp"

using namespace pnet;
using bench::LpScheme;

namespace {

double ksp_throughput(bool jitter, int hosts, std::uint64_t seed) {
  const auto net = topo::build_network(
      bench::make_spec(topo::TopoKind::kFatTree,
                       topo::NetworkType::kSerialLow, hosts, 1, seed));
  const lp::LinkIndex index(net);
  Rng rng(seed);
  const auto pairs = workload::permutation_pairs(net.num_hosts(), rng);
  std::vector<lp::Commodity> commodities;
  std::uint64_t flow_id = 0;
  for (const auto& [src, dst] : pairs) {
    lp::Commodity c;
    c.demand = 100e9;
    for (const auto& p : routing::ksp_across_planes(
             net, src, dst, 8, jitter ? mix64(flow_id + 99) : 0)) {
      c.paths.push_back(index.to_global(p));
    }
    commodities.push_back(std::move(c));
    ++flow_id;
  }
  const auto result = lp::max_total_flow(index.capacity(), commodities);
  return result.total_throughput /
         (static_cast<double>(net.num_hosts()) * 100e9);
}

exp::TrialResult run_coupling(sim::Coupling coupling) {
  exp::TrialResult result;
  // Disjoint planes: 50 MB over a 2-plane P-Net.
  {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kFatTree;
    spec.type = topo::NetworkType::kParallelHomogeneous;
    spec.hosts = 16;
    spec.parallelism = 2;
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kKspMultipath;
    policy.k = 2;
    policy.coupling = coupling;
    core::SimHarness h({.spec = spec, .policy = policy});
    h.starter()(HostId{0}, HostId{15}, 50'000'000, 0, {});
    h.run();
    result.metrics["disjoint_fct_ms"] = h.logger().fct_us().front() / 1000.0;
    result.events += h.events().dispatched();
  }
  // Shared bottleneck: 2-subflow MPTCP vs 1 TCP into the same host.
  {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kFatTree;
    spec.hosts = 16;
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kShortestPlane;
    core::SimHarness h({.spec = spec, .policy = policy});
    auto path_a = routing::shortest_path(h.net().plane(0).graph,
                                         h.net().host_node(0, HostId{0}),
                                         h.net().host_node(0, HostId{15}));
    auto path_b = routing::shortest_path(h.net().plane(0).graph,
                                         h.net().host_node(0, HostId{4}),
                                         h.net().host_node(0, HostId{15}));
    auto& conn = h.factory().mptcp_flow(
        HostId{0}, HostId{15}, {*path_a, *path_a}, 1'000'000'000'000ULL, 0,
        {}, coupling);
    auto& tcp = h.factory().tcp_flow(HostId{4}, HostId{15}, *path_b,
                                     1'000'000'000'000ULL, 0);
    h.run_until(60 * units::kMillisecond);
    double mptcp_bytes = 0;
    for (int i = 0; i < conn.num_subflows(); ++i) {
      mptcp_bytes += static_cast<double>(conn.subflow(i).acked_bytes());
    }
    result.metrics["shared_share"] =
        mptcp_bytes /
        (mptcp_bytes + static_cast<double>(tcp.acked_bytes()));
    result.events += h.events().dispatched();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Ablation: KSP tie-breaking and MPTCP coupling",
                      flags,
                      "bench_ablation_routing: KSP tie-breaking and MPTCP "
                      "coupling\n"
                      "\n"
                      "  --hosts=N    hosts per network (default 128)\n"
                      "  --seed=N     topology/workload seed (default 1)\n");
  const int hosts = flags.get_int("hosts", 128);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  bench::Experiment experiment(flags, "ablation_routing");
  for (bool jitter : {false, true}) {
    exp::ExperimentSpec spec;
    spec.name = jitter ? "ksp/jittered" : "ksp/lexicographic";
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
      exp::TrialResult r;
      r.metrics["norm_tput"] = ksp_throughput(jitter, hosts, ctx.seed);
      return r;
    });
  }
  for (auto mode : {sim::Coupling::kLia, sim::Coupling::kUncoupled}) {
    exp::ExperimentSpec spec;
    spec.name = mode == sim::Coupling::kLia ? "coupling/lia"
                                            : "coupling/uncoupled";
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    experiment.add(std::move(spec),
                   [=](const exp::TrialContext&) { return run_coupling(mode); });
  }
  const auto results = experiment.run();

  TextTable tiebreak("8-way KSP permutation throughput on a serial fat tree "
                     "(fraction of saturation)",
                     {"tie-break", "throughput"});
  tiebreak.add_row("lexicographic (biased)",
                   {results[0].metric("norm_tput").mean});
  tiebreak.add_row("per-flow jittered", {results[1].metric("norm_tput").mean});
  tiebreak.print();

  TextTable coupling("MPTCP coupling: 50 MB over 2 disjoint planes, and "
                     "share vs 1 TCP at a shared bottleneck",
                     {"coupling", "disjoint FCT (ms)",
                      "shared-bottleneck share"});
  for (std::size_t i = 2; i < 4; ++i) {
    coupling.add_row(i == 2 ? "LIA (RFC 6356)" : "uncoupled",
                     {results[i].metric("disjoint_fct_ms").mean,
                      results[i].metric("shared_share").mean},
                     3);
  }
  coupling.print();
  std::printf("LIA trades disjoint-path ramp speed for bottleneck fairness\n"
              "(~0.5 share); uncoupled is faster on disjoint planes but\n"
              "grabs ~2/3 at shared bottlenecks like two parallel TCPs.\n");
  return experiment.finish();
}
