// Figure 14: fault tolerance — average shortest-path hop count across all
// rack pairs as random link failures grow from 0% to 40%.
//
// Jellyfish with 686 hosts (paper-exact), serial vs parallel homogeneous vs
// parallel heterogeneous (N = 4). Failures strike each plane independently.
// Paper numbers: at 40% failures serial inflates ~22%, homogeneous P-Net
// only ~3%; heterogeneous starts lower but loses its shortest paths faster,
// remaining best overall.
//
// Usage: bench_fig14 [--hosts=686] [--planes=4] [--trials=5] [--seed=1]
#include "analysis/failures.hpp"
#include "common.hpp"

using namespace pnet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 14: average hop count under link failures",
                      flags,
                      "bench_fig14: hop count vs link failure rate\n"
                      "\n"
                      "  --hosts=N    hosts (default 686)\n"
                      "  --planes=N   dataplanes (default 4)\n"
                      "  --trials=N   failure draws per rate (default 5)\n"
                      "  --seed=N     base seed (default 1)\n");
  const int hosts = flags.get_int("hosts", 686);
  const int planes = flags.get_int("planes", 4);
  const int trials = flags.get_int("trials", 5);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  const std::vector<double> failure_rates = {0.0, 0.1, 0.2, 0.3, 0.4};

  struct SeriesDef {
    const char* name;
    topo::NetworkType type;
    int planes;
  };
  const SeriesDef series[] = {
      {"serial (low/high-bw)", topo::NetworkType::kSerialLow, planes},
      {"parallel homogeneous", topo::NetworkType::kParallelHomogeneous,
       planes},
      {"parallel heterogeneous", topo::NetworkType::kParallelHeterogeneous,
       planes},
  };

  TextTable table("Fig 14: mean rack-pair hop count (switch hops), "
                  "mean +- stddev over trials",
                  {"failure %", "serial", "sd", "par hom", "sd", "par het",
                   "sd"});
  std::vector<double> healthy(3, 0.0);
  std::vector<std::vector<double>> at_worst(3);
  for (double rate : failure_rates) {
    std::vector<double> row;
    for (std::size_t s = 0; s < 3; ++s) {
      RunningStats stats;
      for (int t = 0; t < trials; ++t) {
        const auto net = topo::build_network(
            bench::make_spec(topo::TopoKind::kJellyfish, series[s].type,
                             hosts, series[s].planes,
                             seed + 1000 * static_cast<std::uint64_t>(t)));
        const auto r = analysis::hop_count_under_failures(
            net, rate, seed + 17 * static_cast<std::uint64_t>(t) + 3);
        stats.add(r.mean_hops);
      }
      row.push_back(stats.mean());
      row.push_back(stats.stddev());
      if (rate == 0.0) healthy[s] = stats.mean();
      if (rate == failure_rates.back()) at_worst[s].push_back(stats.mean());
    }
    table.add_row(format_double(rate * 100, 0), row, 3);
  }
  table.print();

  TextTable inflation("Hop-count inflation at 40% failures vs healthy "
                      "(paper: serial +22%, homogeneous +3%)",
                      {"network", "inflation %"});
  for (std::size_t s = 0; s < 3; ++s) {
    inflation.add_row(series[s].name,
                      {100.0 * (at_worst[s].front() / healthy[s] - 1.0)}, 1);
  }
  inflation.print();
  return 0;
}
