// Figure 14: fault tolerance — average shortest-path hop count across all
// rack pairs as random link failures grow from 0% to 40%.
//
// Jellyfish with 686 hosts (paper-exact), serial vs parallel homogeneous vs
// parallel heterogeneous (N = 4). Failures strike each plane independently.
// Paper numbers: at 40% failures serial inflates ~22%, homogeneous P-Net
// only ~3%; heterogeneous starts lower but loses its shortest paths faster,
// remaining best overall.
//
// One custom-engine cell per (failure rate, series); each trial is one
// independent failure draw, fanned over --threads by exp::Runner.
//
// Usage: bench_fig14 [--hosts=686] [--planes=4] [--trials=5] [--seed=1]
#include "analysis/failures.hpp"
#include "common.hpp"

using namespace pnet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 14: average hop count under link failures",
                      flags,
                      "bench_fig14: hop count vs link failure rate\n"
                      "\n"
                      "  --hosts=N    hosts (default 686)\n"
                      "  --planes=N   dataplanes (default 4)\n"
                      "  --seed=N     base seed (default 1)\n");
  const int hosts = flags.get_int("hosts", 686);
  const int planes = flags.get_int("planes", 4);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  const std::vector<double> failure_rates = {0.0, 0.1, 0.2, 0.3, 0.4};

  struct SeriesDef {
    const char* name;
    topo::NetworkType type;
  };
  const SeriesDef series[] = {
      {"serial (low/high-bw)", topo::NetworkType::kSerialLow},
      {"parallel homogeneous", topo::NetworkType::kParallelHomogeneous},
      {"parallel heterogeneous", topo::NetworkType::kParallelHeterogeneous},
  };

  bench::Experiment experiment(flags, "fig14");
  const int trials = experiment.trials(5);
  for (double rate : failure_rates) {
    for (const auto& def : series) {
      const auto type = def.type;
      exp::ExperimentSpec spec;
      spec.name = "fail=" + format_double(rate * 100, 0) + "%/" +
                  topo::to_string(type);
      spec.engine = exp::EngineKind::kCustom;
      spec.seed = seed;
      spec.trials = trials;
      experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
        const auto net = topo::build_network(bench::make_spec(
            topo::TopoKind::kJellyfish, type, hosts, planes, ctx.seed));
        const auto r = analysis::hop_count_under_failures(
            net, rate, mix64(ctx.seed));
        exp::TrialResult result;
        result.metrics["mean_hops"] = r.mean_hops;
        return result;
      });
    }
  }
  const auto results = experiment.run();

  TextTable table("Fig 14: mean rack-pair hop count (switch hops), "
                  "mean +- stddev over trials",
                  {"failure %", "serial", "sd", "par hom", "sd", "par het",
                   "sd"});
  std::vector<double> healthy(3, 0.0);
  std::vector<double> at_worst(3, 0.0);
  std::size_t next = 0;
  for (double rate : failure_rates) {
    std::vector<double> row;
    for (std::size_t s = 0; s < 3; ++s) {
      const auto stats = results[next++].metric("mean_hops");
      row.push_back(stats.mean);
      row.push_back(stats.stddev);
      if (rate == 0.0) healthy[s] = stats.mean;
      if (rate == failure_rates.back()) at_worst[s] = stats.mean;
    }
    table.add_row(format_double(rate * 100, 0), row, 3);
  }
  table.print();

  TextTable inflation("Hop-count inflation at 40% failures vs healthy "
                      "(paper: serial +22%, homogeneous +3%)",
                      {"network", "inflation %"});
  for (std::size_t s = 0; s < 3; ++s) {
    inflation.add_row(series[s].name,
                      {100.0 * (at_worst[s] / healthy[s] - 1.0)}, 1);
  }
  inflation.print();
  return experiment.finish();
}
