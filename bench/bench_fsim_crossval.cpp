// Cross-validation of the flow-level fluid simulator (src/fsim) against
// the packet simulator (src/sim) and the LP throughput solver (src/lp),
// plus the scale demo the fluid model exists for.
//
// Part 1 pins the *same* single ECMP path per permutation flow into all
// three engines on small fat trees. Steady state, the fluid max-min
// minimum rate must equal the LP max-concurrent-flow alpha (they solve the
// same problem when every commodity has one fixed path), and the fluid
// mean FCT must track the packet sim to within the slow-start/queueing
// envelope (a few percent on 50 MB flows where links are genuinely
// shared; see DESIGN.md for the saturated-link caveat). Both engines'
// wall-clocks are printed; the fluid engine is typically 100x+ faster.
//
// Part 2 runs a k=16 fat tree (1024 hosts) with 10k+ flows through the
// fluid engine alone — a size the packet simulator cannot touch — and
// prints the wall-clock.
//
// Part 3 sweeps seeds across OS threads with fsim::run_sweep (one
// independent simulation per job; results are bit-identical for any
// --threads value).
//
// Usage: bench_fsim_crossval [--hosts=16] [--planes=4] [--seed=1]
//        [--bytes_mb=50] [--bighosts=1024] [--bigrounds=10] [--threads=0]
//        [--skip_big=0] [--eps=0.02]
#include "common.hpp"
#include "fsim/sweep.hpp"

using namespace pnet;

namespace {

struct CrossResult {
  double lp_alpha = 0.0;
  double fsim_min_frac = 0.0;   // steady-state min rate / plane link rate
  double fsim_mean_fct_us = 0.0;
  double packet_mean_fct_us = 0.0;
  double fsim_wall_s = 0.0;
  double packet_wall_s = 0.0;
};

/// One permutation of `bytes`-sized flows on a fat tree, same pinned
/// single ECMP path per flow in all three engines.
CrossResult cross_validate(topo::NetworkType type, int hosts, int planes,
                           std::uint64_t bytes, double epsilon,
                           std::uint64_t seed) {
  const auto spec = bench::make_spec(topo::TopoKind::kFatTree, type, hosts,
                                     planes, seed);
  const auto net = topo::build_network(spec);
  fsim::FsimConfig config;
  config.scheme = fsim::RouteScheme::kEcmpPlaneHash;

  Rng rng(seed);
  const auto pairs = workload::permutation_pairs(net.num_hosts(), rng);
  std::vector<std::vector<routing::Path>> paths;
  std::vector<SimTime> starts;
  paths.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    paths.push_back(fsim::choose_paths(net, config, pairs[i].first,
                                       pairs[i].second,
                                       static_cast<std::uint64_t>(i)));
    // A few microseconds of start jitter, as in any real deployment (and
    // as bench_fig9 does): fully synchronized starts make the packet sim's
    // slow-start overshoots collide into retransmission timeouts.
    starts.push_back(
        static_cast<SimTime>(rng.next_below(10 * units::kMicrosecond)));
  }

  CrossResult result;

  // --- LP: max concurrent flow over the pinned paths -------------------
  {
    const lp::LinkIndex index(net);
    std::vector<lp::Commodity> commodities;
    commodities.reserve(pairs.size());
    for (const auto& flow_paths : paths) {
      lp::Commodity commodity;
      commodity.demand = net.plane(0).link_rate_bps;
      for (const auto& path : flow_paths) {
        commodity.paths.push_back(index.to_global(path));
      }
      commodities.push_back(std::move(commodity));
    }
    lp::McfOptions options;
    options.epsilon = epsilon;
    result.lp_alpha =
        lp::max_concurrent_flow(index.capacity(), commodities, options).alpha;
  }

  // --- fluid: steady-state min rate, then run to completion -------------
  {
    bench::WallClock wall;
    fsim::FluidSimulator fluid(net, config);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      fluid.add_flow({pairs[i].first, pairs[i].second, bytes, starts[i]},
                     paths[i]);
    }
    // Settle just past the jitter window: every flow admitted, none done.
    fluid.run_until(10 * units::kMicrosecond);
    result.fsim_min_frac =
        fluid.min_rate_bps() / net.plane(0).link_rate_bps;
    fluid.run();
    result.fsim_mean_fct_us = bench::summarize(fluid.fct_us()).mean;
    result.fsim_wall_s = wall.seconds();
  }

  // --- packet: same paths, bulk-transfer buffers ------------------------
  {
    bench::WallClock wall;
    core::PolicyConfig policy;  // unused: paths are pinned via the factory
    sim::SimConfig sim_config;
    sim_config.queue_buffer_bytes = 400 * 1500;
    core::SimHarness harness(spec, policy, sim_config);
    std::vector<double> fcts;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      harness.factory().tcp_flow(pairs[i].first, pairs[i].second,
                                 paths[i].front(), bytes, starts[i],
                                 [&fcts](const sim::FlowRecord& r) {
                                   fcts.push_back(
                                       units::to_microseconds(r.end -
                                                              r.start));
                                 });
    }
    harness.run();
    result.packet_mean_fct_us = bench::summarize(fcts).mean;
    result.packet_wall_s = wall.seconds();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "fsim cross-validation: fluid vs packet sim vs LP", flags,
      "bench_fsim_crossval: fluid-engine cross-validation + scale demo\n"
      "\n"
      "  --hosts=N      hosts for the validation fat trees (default 16)\n"
      "  --planes=N     dataplanes for the parallel configs (default 4)\n"
      "  --bytes_mb=N   flow size for the FCT comparison (default 50)\n"
      "  --eps=F        LP approximation accuracy (default 0.02)\n"
      "  --bighosts=N   hosts for the fluid-only scale demo (default 1024,\n"
      "                 a k=16 fat tree)\n"
      "  --bigrounds=N  permutation rounds in the scale demo (default 10)\n"
      "  --skip_big=1   skip the scale demo (smoke-test runs)\n"
      "  --threads=N    sweep worker threads, 0 = all cores (default 0)\n"
      "  --seed=N       base seed (default 1)\n");
  const int hosts = flags.get_int("hosts", 16);
  const int planes = flags.get_int("planes", 4);
  const std::uint64_t bytes = static_cast<std::uint64_t>(
      flags.get_i64("bytes_mb", 50)) * 1'000'000ULL;
  const double epsilon = flags.get_double("eps", 0.02);
  const int big_hosts = flags.get_int("bighosts", 1024);
  const int big_rounds = flags.get_int("bigrounds", 10);
  const bool skip_big = flags.get_int("skip_big", 0) != 0;
  const int threads = flags.get_int("threads", 0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  // --- Part 1: three-engine cross-validation ---------------------------
  struct Config {
    const char* name;
    topo::NetworkType type;
    int planes;
  };
  const Config configs[] = {
      {"serial fat tree (N=1)", topo::NetworkType::kSerialLow, 1},
      {"parallel hom fat tree", topo::NetworkType::kParallelHomogeneous,
       planes},
  };

  TextTable table("Permutation cross-check (single pinned ECMP path per "
                  "flow; min-rate and alpha as fraction of plane link "
                  "rate)",
                  {"config", "LP alpha", "fsim min", "fsim FCT us",
                   "pkt FCT us", "FCT ratio", "fsim s", "pkt s",
                   "speedup"});
  double total_fsim_s = 0.0;
  double total_packet_s = 0.0;
  for (const auto& config : configs) {
    const auto r = cross_validate(config.type, hosts, config.planes, bytes,
                                  epsilon, seed);
    total_fsim_s += r.fsim_wall_s;
    total_packet_s += r.packet_wall_s;
    table.add_row(config.name,
                  {r.lp_alpha, r.fsim_min_frac, r.fsim_mean_fct_us,
                   r.packet_mean_fct_us,
                   r.fsim_mean_fct_us / r.packet_mean_fct_us,
                   r.fsim_wall_s, r.packet_wall_s,
                   r.packet_wall_s / std::max(r.fsim_wall_s, 1e-9)},
                  3);
  }
  table.print();
  std::printf("engine wall-clock: fsim %.3f s, packet %.3f s -> %.0fx "
              "speedup\n"
              "(On the parallel config most flows run their path at 100%%;\n"
              "the packet sim then pays ACK-path overload and loss-recovery\n"
              "costs the fluid model omits, so its FCTs run 20-30%% higher.\n"
              "Where links are shared the engines agree to a few percent —\n"
              "the serial row, and tests/fsim_test.cpp.)\n\n",
              total_fsim_s, total_packet_s,
              total_packet_s / std::max(total_fsim_s, 1e-9));

  // --- Part 2: fluid-only scale demo -----------------------------------
  if (!skip_big) {
    bench::WallClock wall;
    const auto spec = bench::make_spec(
        topo::TopoKind::kFatTree, topo::NetworkType::kParallelHomogeneous,
        big_hosts, planes, seed);
    const auto net = topo::build_network(spec);
    fsim::FsimConfig config;
    config.scheme = fsim::RouteScheme::kEcmpPlaneHash;
    fsim::FluidSimulator fluid(net, config);
    Rng rng(seed * 17 + 1);
    int flows = 0;
    for (int round = 0; round < big_rounds; ++round) {
      const SimTime base = round * 200 * units::kMicrosecond;
      for (const auto& [src, dst] :
           workload::permutation_pairs(net.num_hosts(), rng)) {
        const SimTime jittered = base + static_cast<SimTime>(
            rng.next_below(100 * units::kMicrosecond));
        fluid.add_flow({src, dst, 1'000'000, jittered});
        ++flows;
      }
    }
    fluid.run();
    const auto s = bench::summarize(fluid.fct_us());
    std::printf("scale demo: %d hosts (k=%d fat tree), %d planes, %d "
                "flows\n"
                "  completed in %.2f s wall-clock; mean FCT %.1f us, p99 "
                "%.1f us\n"
                "  allocator: %d full solves, %d fast-path updates\n\n",
                net.num_hosts(), topo::fat_tree_k_for_hosts(big_hosts),
                planes, flows, wall.seconds(), s.mean, s.p99,
                fluid.allocator().full_solves(),
                fluid.allocator().fast_paths());
  }

  // --- Part 3: multithreaded seed sweep --------------------------------
  {
    std::vector<std::uint64_t> jobs;
    for (std::uint64_t i = 0; i < 16; ++i) jobs.push_back(i);
    bench::WallClock wall;
    const auto means = fsim::run_sweep(
        jobs,
        [&](std::uint64_t job) {
          const auto spec = bench::make_spec(
              topo::TopoKind::kFatTree,
              topo::NetworkType::kParallelHomogeneous, hosts, planes,
              fsim::sweep_seed(seed, job));
          const auto net = topo::build_network(spec);
          fsim::FluidSimulator fluid(net, {});
          Rng rng(fsim::sweep_seed(seed, job));
          for (const auto& [src, dst] :
               workload::permutation_pairs(net.num_hosts(), rng)) {
            fluid.add_flow({src, dst, 1'000'000,
                            static_cast<SimTime>(
                                rng.next_below(10 * units::kMicrosecond))});
          }
          fluid.run();
          return bench::summarize(fluid.fct_us()).mean;
        },
        threads);
    RunningStats stats;
    for (double m : means) stats.add(m);
    std::printf("seed sweep: %zu independent runs in %.3f s "
                "(--threads=%d); mean FCT %.1f +- %.1f us across seeds\n",
                jobs.size(), wall.seconds(), threads, stats.mean(),
                stats.stddev());
  }
  return 0;
}
