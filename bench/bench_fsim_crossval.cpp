// Cross-validation of the flow-level fluid simulator (src/fsim) against
// the packet simulator (src/sim) and the LP throughput solver (src/lp),
// plus the scale demo the fluid model exists for.
//
// Part 1 pins the *same* single ECMP path per permutation flow into all
// three engines on small fat trees. Steady state, the fluid max-min
// minimum rate must equal the LP max-concurrent-flow alpha (they solve the
// same problem when every commodity has one fixed path), and the fluid
// mean FCT must track the packet sim to within the slow-start/queueing
// envelope (a few percent on 50 MB flows where links are genuinely
// shared; see DESIGN.md for the saturated-link caveat). Both engines'
// wall-clocks land in the trial's runtime block; the fluid engine is
// typically 100x+ faster.
//
// Part 2 runs a k=16 fat tree (1024 hosts) with 10k+ flows through the
// fluid engine alone — a size the packet simulator cannot touch — and
// prints the wall-clock.
//
// Part 3 is a 16-trial built-in fluid-engine cell: exp::Runner fans the
// trials over OS threads (one independent simulation per trial, workload
// draws reseeded per trial; results are bit-identical for any --threads).
//
// Usage: bench_fsim_crossval [--hosts=16] [--planes=4] [--seed=1]
//        [--bytes_mb=50] [--bighosts=1024] [--bigrounds=10] [--threads=0]
//        [--skip_big=0] [--eps=0.02]
#include "common.hpp"

using namespace pnet;

namespace {

/// One permutation of `bytes`-sized flows on a fat tree, same pinned
/// single ECMP path per flow in all three engines.
exp::TrialResult cross_validate(topo::NetworkType type, int hosts,
                                int planes, std::uint64_t bytes,
                                double epsilon,
                                const exp::TrialContext& ctx) {
  const auto spec = bench::make_spec(topo::TopoKind::kFatTree, type, hosts,
                                     planes, ctx.seed);
  const auto net = topo::build_network(spec);
  fsim::FsimConfig config;
  config.scheme = fsim::RouteScheme::kEcmpPlaneHash;

  Rng rng(ctx.seed);
  const auto pairs = workload::permutation_pairs(net.num_hosts(), rng);
  std::vector<std::vector<routing::Path>> paths;
  std::vector<SimTime> starts;
  paths.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    paths.push_back(fsim::choose_paths(net, config, pairs[i].first,
                                       pairs[i].second,
                                       static_cast<std::uint64_t>(i)));
    // A few microseconds of start jitter, as in any real deployment (and
    // as bench_fig9 does): fully synchronized starts make the packet sim's
    // slow-start overshoots collide into retransmission timeouts.
    starts.push_back(
        static_cast<SimTime>(rng.next_below(10 * units::kMicrosecond)));
  }

  exp::TrialResult r;
  r.flows_started = 2 * pairs.size();  // fluid + packet engines

  // --- LP: max concurrent flow over the pinned paths -------------------
  {
    const lp::LinkIndex index(net);
    std::vector<lp::Commodity> commodities;
    commodities.reserve(pairs.size());
    for (const auto& flow_paths : paths) {
      lp::Commodity commodity;
      commodity.demand = net.plane(0).link_rate_bps;
      for (const auto& path : flow_paths) {
        commodity.paths.push_back(index.to_global(path));
      }
      commodities.push_back(std::move(commodity));
    }
    lp::McfOptions options;
    options.epsilon = epsilon;
    r.metrics["lp_alpha"] =
        lp::max_concurrent_flow(index.capacity(), commodities, options).alpha;
  }

  // --- fluid: steady-state min rate, then run to completion -------------
  {
    bench::WallClock wall;
    fsim::FluidSimulator fluid(net, config);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      fluid.add_flow({pairs[i].first, pairs[i].second, bytes, starts[i]},
                     paths[i]);
    }
    // Settle just past the jitter window: every flow admitted, none done.
    fluid.run_until(10 * units::kMicrosecond);
    r.metrics["fsim_min_frac"] =
        fluid.min_rate_bps() / net.plane(0).link_rate_bps;
    fluid.run();
    r.metrics["fsim_mean_fct_us"] = bench::summarize(fluid.fct_us()).mean;
    r.flows_finished += fluid.results().size();
    r.delivered_bytes += fluid.delivered_bytes();
    r.sim_seconds += units::to_seconds(fluid.now());
    r.events += fluid.events();
    r.runtime["fsim_wall_s"] = wall.seconds();
  }

  // --- packet: same paths, bulk-transfer buffers ------------------------
  {
    bench::WallClock wall;
    core::PolicyConfig policy;  // unused: paths are pinned via the factory
    sim::SimConfig sim_config;
    sim_config.queue_buffer_bytes = 400 * 1500;
    core::SimHarness harness({.spec = spec, .policy = policy, .sim_config = sim_config});
    std::vector<double> fcts;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      harness.factory().tcp_flow(pairs[i].first, pairs[i].second,
                                 paths[i].front(), bytes, starts[i],
                                 [&fcts](const sim::FlowRecord& rec) {
                                   fcts.push_back(
                                       units::to_microseconds(rec.end -
                                                              rec.start));
                                 });
    }
    harness.run();
    r.metrics["packet_mean_fct_us"] = bench::summarize(fcts).mean;
    r.fct_us = fcts;
    r.flows_finished += fcts.size();
    r.delivered_bytes +=
        static_cast<double>(harness.factory().total_delivered_bytes());
    r.sim_seconds += units::to_seconds(harness.events().now());
    r.events += harness.events().dispatched();
    r.runtime["packet_wall_s"] = wall.seconds();
  }
  return r;
}

/// Fluid-only scale demo: a k=16 fat tree the packet simulator cannot
/// touch.
exp::TrialResult scale_demo(int big_hosts, int planes, int big_rounds,
                            const exp::TrialContext& ctx) {
  bench::WallClock wall;
  const auto spec = bench::make_spec(
      topo::TopoKind::kFatTree, topo::NetworkType::kParallelHomogeneous,
      big_hosts, planes, ctx.seed);
  const auto net = topo::build_network(spec);
  fsim::FsimConfig config;
  config.scheme = fsim::RouteScheme::kEcmpPlaneHash;
  fsim::FluidSimulator fluid(net, config);
  Rng rng(mix64(ctx.seed + 17));
  exp::TrialResult r;
  for (int round = 0; round < big_rounds; ++round) {
    const SimTime base = round * 200 * units::kMicrosecond;
    for (const auto& [src, dst] :
         workload::permutation_pairs(net.num_hosts(), rng)) {
      const SimTime jittered = base + static_cast<SimTime>(
          rng.next_below(100 * units::kMicrosecond));
      fluid.add_flow({src, dst, 1'000'000, jittered});
      ++r.flows_started;
    }
  }
  fluid.run();
  r.fct_us = fluid.fct_us();
  r.flows_finished = fluid.results().size();
  r.delivered_bytes = fluid.delivered_bytes();
  r.sim_seconds = units::to_seconds(fluid.now());
  r.events = fluid.events();
  r.metrics["hosts"] = static_cast<double>(net.num_hosts());
  r.metrics["full_solves"] =
      static_cast<double>(fluid.allocator().full_solves());
  r.metrics["fast_paths"] =
      static_cast<double>(fluid.allocator().fast_paths());
  r.runtime["wall_s"] = wall.seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "fsim cross-validation: fluid vs packet sim vs LP", flags,
      "bench_fsim_crossval: fluid-engine cross-validation + scale demo\n"
      "\n"
      "  --hosts=N      hosts for the validation fat trees (default 16)\n"
      "  --planes=N     dataplanes for the parallel configs (default 4)\n"
      "  --bytes_mb=N   flow size for the FCT comparison (default 50)\n"
      "  --eps=F        LP approximation accuracy (default 0.02)\n"
      "  --bighosts=N   hosts for the fluid-only scale demo (default 1024,\n"
      "                 a k=16 fat tree)\n"
      "  --bigrounds=N  permutation rounds in the scale demo (default 10)\n"
      "  --skip_big=1   skip the scale demo (smoke-test runs)\n"
      "  --threads=N    runner worker threads, 0 = all cores (default 0)\n"
      "  --seed=N       base seed (default 1)\n");
  const int hosts = flags.get_int("hosts", 16);
  const int planes = flags.get_int("planes", 4);
  const std::uint64_t bytes = static_cast<std::uint64_t>(
      flags.get_i64("bytes_mb", 50)) * 1'000'000ULL;
  const double epsilon = flags.get_double("eps", 0.02);
  const int big_hosts = flags.get_int("bighosts", 1024);
  const int big_rounds = flags.get_int("bigrounds", 10);
  const bool skip_big = flags.get_int("skip_big", 0) != 0;
  const int threads = flags.get_int("threads", 0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  struct Config {
    const char* name;
    topo::NetworkType type;
    int planes;
  };
  const Config configs[] = {
      {"serial fat tree (N=1)", topo::NetworkType::kSerialLow, 1},
      {"parallel hom fat tree", topo::NetworkType::kParallelHomogeneous,
       planes},
  };

  bench::Experiment experiment(flags, "fsim_crossval");
  for (const auto& config : configs) {
    exp::ExperimentSpec spec;
    spec.name = std::string("crossval/") + topo::to_string(config.type);
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    const auto ty = config.type;
    const int pl = config.planes;
    experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
      return cross_validate(ty, hosts, pl, bytes, epsilon, ctx);
    });
  }
  if (!skip_big) {
    exp::ExperimentSpec spec;
    spec.name = "scale/" + std::to_string(big_hosts) + "hosts";
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
      return scale_demo(big_hosts, planes, big_rounds, ctx);
    });
  }
  // Part 3's seed sweep: one built-in fluid-engine cell, 16 trials, each
  // an independent simulation fanned over the runner's threads.
  {
    exp::ExperimentSpec spec;
    spec.name = "sweep/par-hom";
    spec.engine = exp::EngineKind::kFsim;
    spec.topo = bench::make_spec(topo::TopoKind::kFatTree,
                                 topo::NetworkType::kParallelHomogeneous,
                                 hosts, planes, seed);
    spec.policy.policy = core::RoutingPolicy::kEcmp;
    spec.workload.pattern = exp::WorkloadSpec::Pattern::kPermutation;
    spec.workload.flow_bytes = 1'000'000;
    spec.workload.rounds = 1;
    spec.workload.start_jitter = 10 * units::kMicrosecond;
    spec.seed = seed;
    spec.trials = experiment.trials(16);
    experiment.add(std::move(spec));
  }
  const auto results = experiment.run();

  // --- Part 1: three-engine cross-validation ---------------------------
  TextTable table("Permutation cross-check (single pinned ECMP path per "
                  "flow; min-rate and alpha as fraction of plane link "
                  "rate)",
                  {"config", "LP alpha", "fsim min", "fsim FCT us",
                   "pkt FCT us", "FCT ratio", "fsim s", "pkt s",
                   "speedup"});
  double total_fsim_s = 0.0;
  double total_packet_s = 0.0;
  for (std::size_t i = 0; i < std::size(configs); ++i) {
    const auto& trial = results[i].trials.front();
    const double fsim_s = trial.runtime.at("fsim_wall_s");
    const double packet_s = trial.runtime.at("packet_wall_s");
    total_fsim_s += fsim_s;
    total_packet_s += packet_s;
    const double fsim_fct = results[i].metric("fsim_mean_fct_us").mean;
    const double packet_fct = results[i].metric("packet_mean_fct_us").mean;
    table.add_row(configs[i].name,
                  {results[i].metric("lp_alpha").mean,
                   results[i].metric("fsim_min_frac").mean, fsim_fct,
                   packet_fct, fsim_fct / packet_fct, fsim_s, packet_s,
                   packet_s / std::max(fsim_s, 1e-9)},
                  3);
  }
  table.print();
  std::printf("engine wall-clock: fsim %.3f s, packet %.3f s -> %.0fx "
              "speedup\n"
              "(On the parallel config most flows run their path at 100%%;\n"
              "the packet sim then pays ACK-path overload and loss-recovery\n"
              "costs the fluid model omits, so its FCTs run 20-30%% higher.\n"
              "Where links are shared the engines agree to a few percent —\n"
              "the serial row, and tests/fsim_test.cpp.)\n\n",
              total_fsim_s, total_packet_s,
              total_packet_s / std::max(total_fsim_s, 1e-9));

  // --- Part 2: fluid-only scale demo -----------------------------------
  std::size_t next = std::size(configs);
  if (!skip_big) {
    const auto& cell = results[next++];
    const auto s = cell.fct();
    std::printf("scale demo: %d hosts (k=%d fat tree), %d planes, %llu "
                "flows\n"
                "  completed in %.2f s wall-clock; mean FCT %.1f us, p99 "
                "%.1f us\n"
                "  allocator: %d full solves, %d fast-path updates\n\n",
                static_cast<int>(cell.metric("hosts").mean),
                topo::fat_tree_k_for_hosts(big_hosts), planes,
                static_cast<unsigned long long>(cell.flows_started()),
                cell.trials.front().runtime.at("wall_s"), s.mean, s.p99,
                static_cast<int>(cell.metric("full_solves").mean),
                static_cast<int>(cell.metric("fast_paths").mean));
  }

  // --- Part 3: multithreaded seed sweep --------------------------------
  {
    const auto& cell = results[next++];
    RunningStats stats;
    for (const auto& trial : cell.trials) {
      stats.add(bench::summarize(trial.fct_us).mean);
    }
    std::printf("seed sweep: %zu independent runs, %.3f s of trial "
                "wall-clock (--threads=%d); mean FCT %.1f +- %.1f us "
                "across seeds\n",
                cell.trials.size(), cell.wall_s(), threads, stats.mean(),
                stats.stddev());
  }
  return experiment.finish();
}
