// Shared plumbing for the per-figure bench binaries: flag handling, network
// construction, the LP throughput runners used by Figs 6-8, and FCT summary
// helpers. Every bench normalizes exactly as the paper does (against the
// serial low-bandwidth network unless stated otherwise) and prints each
// figure's series as a TextTable.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "lp/mcf.hpp"
#include "routing/ecmp.hpp"
#include "routing/plane_paths.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"

namespace pnet::bench {

inline const topo::NetworkType kAllTypes[] = {
    topo::NetworkType::kSerialLow,
    topo::NetworkType::kParallelHomogeneous,
    topo::NetworkType::kParallelHeterogeneous,
    topo::NetworkType::kSerialHigh,
};

inline topo::NetworkSpec make_spec(topo::TopoKind kind,
                                   topo::NetworkType type, int hosts,
                                   int parallelism, std::uint64_t seed) {
  topo::NetworkSpec spec;
  spec.topo = kind;
  spec.type = type;
  spec.hosts = hosts;
  spec.parallelism = parallelism;
  spec.seed = seed;
  return spec;
}

/// Routing schemes for the LP experiments of section 5.1.1.
enum class LpScheme {
  /// Host hashes each flow onto one plane; inside the plane the flow may
  /// split over all equal-cost shortest paths (ideal switch ECMP).
  kEcmp,
  /// MPTCP + K globally-shortest paths across planes.
  kKsp,
};

struct LpRun {
  double total_throughput_bps = 0.0;
  double alpha = 0.0;
};

/// Ideal throughput with computed routes (Figs 6a/6b/8a/8b and the
/// multipath sweeps 6c/8c): maximum total throughput subject to the
/// computed routes, the paper's "constrain the flows in the LP solver to
/// use the routes computed by ECMP or KSP".
///
/// ECMP: the host hashes each flow onto one plane; inside the plane the
/// flow may use any of its equal-cost shortest paths (what switch-level
/// hashing achieves in aggregate). KSP: the flow may use its K globally-
/// shortest paths across all planes (MPTCP subflows). KSP tie-breaks are
/// randomized per flow so equal-cost-rich fabrics (fat trees) do not
/// collapse onto one corner of the fabric.
inline LpRun lp_throughput(const topo::ParallelNetwork& net,
                           const std::vector<workload::HostPair>& pairs,
                           LpScheme scheme, int k, double epsilon) {
  const lp::LinkIndex index(net);
  std::vector<lp::Commodity> commodities;
  commodities.reserve(pairs.size());
  std::uint64_t flow_id = 0;
  for (const auto& [src, dst] : pairs) {
    lp::Commodity commodity;
    commodity.demand = net.host_uplink_bps();
    std::vector<routing::Path> paths;
    if (scheme == LpScheme::kEcmp) {
      const int plane = routing::ecmp_pick(
          mix64(flow_id * 0x9E3779B9ULL + 1), net.num_planes());
      paths = routing::ecmp_paths_in_plane(net, plane, src, dst, 64);
    } else {
      paths = routing::ksp_across_planes(net, src, dst, k,
                                         mix64(flow_id + 0xABCD));
    }
    for (const auto& path : paths) {
      commodity.paths.push_back(index.to_global(path));
    }
    commodities.push_back(std::move(commodity));
    ++flow_id;
  }
  lp::McfOptions options;
  options.epsilon = epsilon;
  const auto result =
      lp::max_total_flow(index.capacity(), commodities, options);
  return {result.total_throughput, result.alpha};
}

/// The physical saturation throughput of the serial low-bandwidth network
/// with the same host count: the normalization denominator used by every
/// LP figure (serial low-bw == 1.0, N planes saturate at N).
inline double serial_low_capacity_bps(const topo::ParallelNetwork& net) {
  return static_cast<double>(net.num_hosts()) * net.spec().base_rate_bps;
}

/// Summary statistics of a sample, for figure series with error bars.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

inline Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  RunningStats stats;
  for (double x : samples) stats.add(x);
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  const auto ps = percentiles(samples, {50, 90, 99});
  s.median = ps[0];
  s.p90 = ps[1];
  s.p99 = ps[2];
  return s;
}

/// Prints a CDF as x/y rows, downsampled for readability.
inline void print_cdf(const std::string& title, const Cdf& cdf,
                      const std::string& x_label, std::size_t points = 15) {
  TextTable table(title, {x_label, "cdf"});
  for (const auto& [x, p] : cdf.resampled(points).points) {
    table.add_row(format_double(x, 2), {p}, 3);
  }
  table.print();
}

inline void print_header(const std::string& what, const Flags& flags) {
  std::printf("# %s\n# scale=%s (use --scale=paper or PNET_SCALE=paper for "
              "paper-size runs)\n\n",
              what.c_str(), flags.paper_scale() ? "paper" : "default");
}

}  // namespace pnet::bench
