// Shared plumbing for the per-figure bench binaries: flag handling, network
// construction, the LP throughput runners used by Figs 6-8, and the
// bench::Experiment adapter that funnels every bench through the
// src/exp stack (ExperimentSpec -> exp::Runner -> exp::Report). Every
// bench normalizes exactly as the paper does (against the serial
// low-bandwidth network unless stated otherwise), prints each figure's
// series as a TextTable, and can emit the structured JSON report with
// --json=PATH.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "control/controller.hpp"
#include "core/harness.hpp"
#include "exp/runner.hpp"
#include "fsim/fluid.hpp"
#include "lp/mcf.hpp"
#include "routing/ecmp.hpp"
#include "routing/plane_paths.hpp"
#include "util/audit.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"

namespace pnet::bench {

inline const topo::NetworkType kAllTypes[] = {
    topo::NetworkType::kSerialLow,
    topo::NetworkType::kParallelHomogeneous,
    topo::NetworkType::kParallelHeterogeneous,
    topo::NetworkType::kSerialHigh,
};

inline topo::NetworkSpec make_spec(topo::TopoKind kind,
                                   topo::NetworkType type, int hosts,
                                   int parallelism, std::uint64_t seed) {
  topo::NetworkSpec spec;
  spec.topo = kind;
  spec.type = type;
  spec.hosts = hosts;
  spec.parallelism = parallelism;
  spec.seed = seed;
  return spec;
}

/// Routing schemes for the LP experiments of section 5.1.1.
enum class LpScheme {
  /// Host hashes each flow onto one plane; inside the plane the flow may
  /// split over all equal-cost shortest paths (ideal switch ECMP).
  kEcmp,
  /// MPTCP + K globally-shortest paths across planes.
  kKsp,
};

struct LpRun {
  double total_throughput_bps = 0.0;
  double alpha = 0.0;
};

/// Ideal throughput with computed routes (Figs 6a/6b/8a/8b and the
/// multipath sweeps 6c/8c): maximum total throughput subject to the
/// computed routes, the paper's "constrain the flows in the LP solver to
/// use the routes computed by ECMP or KSP".
///
/// ECMP: the host hashes each flow onto one plane; inside the plane the
/// flow may use any of its equal-cost shortest paths (what switch-level
/// hashing achieves in aggregate). KSP: the flow may use its K globally-
/// shortest paths across all planes (MPTCP subflows). KSP tie-breaks are
/// randomized per flow so equal-cost-rich fabrics (fat trees) do not
/// collapse onto one corner of the fabric.
inline LpRun lp_throughput(const topo::ParallelNetwork& net,
                           const std::vector<workload::HostPair>& pairs,
                           LpScheme scheme, int k, double epsilon) {
  const lp::LinkIndex index(net);
  std::vector<lp::Commodity> commodities;
  commodities.reserve(pairs.size());
  std::uint64_t flow_id = 0;
  for (const auto& [src, dst] : pairs) {
    lp::Commodity commodity;
    commodity.demand = net.host_uplink_bps();
    std::vector<routing::Path> paths;
    if (scheme == LpScheme::kEcmp) {
      const int plane = routing::ecmp_pick(
          mix64(flow_id * 0x9E3779B9ULL + 1), net.num_planes());
      paths = routing::ecmp_paths_in_plane(net, plane, src, dst, 64);
    } else {
      paths = routing::ksp_across_planes(net, src, dst, k,
                                         mix64(flow_id + 0xABCD));
    }
    for (const auto& path : paths) {
      commodity.paths.push_back(index.to_global(path));
    }
    commodities.push_back(std::move(commodity));
    ++flow_id;
  }
  lp::McfOptions options;
  options.epsilon = epsilon;
  const auto result =
      lp::max_total_flow(index.capacity(), commodities, options);
  return {result.total_throughput, result.alpha};
}

/// The physical saturation throughput of the serial low-bandwidth network
/// with the same host count: the normalization denominator used by every
/// LP figure (serial low-bw == 1.0, N planes saturate at N).
inline double serial_low_capacity_bps(const topo::ParallelNetwork& net) {
  return static_cast<double>(net.num_hosts()) * net.spec().base_rate_bps;
}

// Summary statistics now live in the experiment layer; the bench names
// stay for the figure code.
using exp::Summary;
using exp::summarize;

/// Prints a CDF as x/y rows, downsampled for readability.
inline void print_cdf(const std::string& title, const Cdf& cdf,
                      const std::string& x_label, std::size_t points = 15) {
  TextTable table(title, {x_label, "cdf"});
  for (const auto& [x, p] : cdf.resampled(points).points) {
    table.add_row(format_double(x, 2), {p}, 3);
  }
  table.print();
}

/// Standard bench prologue, shared by every bench binary: --help prints
/// `usage` (plus the common-flag epilogue) and exits; a flag not named in
/// `usage` aborts instead of silently falling back to its default; then
/// the figure header line is printed.
inline void print_header(const std::string& what, const Flags& flags,
                         const char* usage) {
  flags.handle_usage(usage == nullptr ? std::string_view{} : usage);
  std::printf("# %s\n# scale=%s (use --scale=paper or PNET_SCALE=paper for "
              "paper-size runs)\n\n",
              what.c_str(), flags.paper_scale() ? "paper" : "default");
}

// --------------------------------------------------------------- engines

/// Which simulation engine a bench drives: the packet-level simulator
/// (src/sim, exact but small-scale) or the flow-level fluid simulator
/// (src/fsim, max-min rates, 100x+ faster). Selected with --engine.
using EngineKind = exp::EngineKind;
using exp::to_string;
using exp::to_fsim_config;

inline EngineKind parse_engine_or(const Flags& flags, EngineKind def) {
  const auto value = flags.get("engine", exp::to_string(def));
  if (const auto engine = exp::engine_from_string(value);
      engine.has_value() && *engine != EngineKind::kCustom) {
    return *engine;
  }
  std::fprintf(stderr, "%s: unknown --engine '%s' (valid: %s)\n",
               flags.program().c_str(), value.c_str(),
               exp::engine_names().c_str());
  std::exit(2);
}

inline EngineKind parse_engine(const Flags& flags) {
  return parse_engine_or(flags, EngineKind::kPacket);
}

/// The --controller flags, shared by every bench (they ride the common-flag
/// whitelist): --controller=off|host-local|centralized picks the mode,
/// --controller-cadence / --controller-detect-delay (simulated ms) tune the
/// loop. Unknown mode names fail fast listing control::mode_names().
inline control::ControllerConfig parse_controller(const Flags& flags) {
  control::ControllerConfig config;
  const auto value = flags.get("controller", "off");
  const auto mode = control::mode_from_string(value);
  if (!mode.has_value()) {
    std::fprintf(stderr, "%s: unknown --controller '%s' (valid: %s)\n",
                 flags.program().c_str(), value.c_str(),
                 control::mode_names().c_str());
    std::exit(2);
  }
  config.mode = *mode;
  config.cadence = static_cast<SimTime>(
      flags.get_double("controller-cadence", 1.0) * units::kMillisecond);
  config.detect_delay = static_cast<SimTime>(
      flags.get_double("controller-detect-delay", 1.0) *
      units::kMillisecond);
  return config;
}

/// Wall-clock stopwatch for engine speedup comparisons.
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// ------------------------------------------------------------ experiment

/// The adapter every bench runs its cells through. Reads the common
/// runner flags (--trials, --threads, --sim-threads, --json,
/// --json-timing, --require-complete, --trace, --sample-every, plus the
/// resilience knobs --trial-timeout, --run-deadline, --retries,
/// --checkpoint, --audit), queues cells, fans them out through
/// exp::Runner, and on
/// finish() writes the structured JSON report (and the --trace export),
/// reports trial errors, and enforces --require-complete.
///
/// Typical shape:
///   Experiment experiment(flags, "fig9");
///   experiment.add(spec);                      // built-in engine cell
///   experiment.add(spec2, my_trial_fn);        // custom trial body
///   const auto results = experiment.run();     // one parallel pass
///   ... print TextTables from results ...
///   return experiment.finish();
class Experiment {
 public:
  Experiment(const Flags& flags, std::string name)
      : report_(std::move(name)),
        runner_(flags.get_int("threads", 0)),
        json_path_(flags.get("json", "")),
        trace_path_(flags.get("trace", "")),
        json_timing_(flags.get_bool("json-timing", true)),
        require_complete_(flags.get_bool("require-complete", false)),
        trials_override_(flags.get_int("trials", 0)) {
    telemetry::Config cfg;
    cfg.sample_every = static_cast<SimTime>(
        flags.get_double("sample-every", 0.0) * units::kMillisecond);
    cfg.trace = !trace_path_.empty();
    runner_.set_telemetry(cfg);
    runner_.set_trial_timeout(flags.get_double("trial-timeout", 0.0));
    runner_.set_run_deadline(flags.get_double("run-deadline", 0.0));
    runner_.set_retries(flags.get_int("retries", 0));
    runner_.set_checkpoint(flags.get("checkpoint", ""));
    runner_.set_audit(flags.get_bool("audit", false) ||
                      util::Audit::env_enabled());
    // Packet-engine shard workers: 0 (default) keeps the serial engine;
    // >= 1 runs the plane-sharded engine, byte-identical across values.
    runner_.set_sim_threads(flags.get_int("sim-threads", 0));
    // Control plane: --controller=off leaves every cell byte-identical to
    // the seed; other modes merge into cells that did not set their own.
    runner_.set_controller(parse_controller(flags));
  }

  /// The bench's trial count: --trials when given, else `def`.
  [[nodiscard]] int trials(int def) const {
    return trials_override_ > 0 ? trials_override_ : def;
  }

  [[nodiscard]] const exp::Runner& runner() const { return runner_; }
  [[nodiscard]] exp::Report& report() { return report_; }

  /// Queues one cell (run later by run()). Returns its index within the
  /// pending batch. With no fn the spec's engine must be kPacket or kFsim.
  std::size_t add(exp::ExperimentSpec spec, exp::TrialFn fn = {}) {
    cells_.push_back({std::move(spec), std::move(fn)});
    return cells_.size() - 1;
  }

  /// Runs every cell queued since the last run() through one exp::Runner
  /// pass (all trials of all cells fan out together), appends the results
  /// to the report, and returns them index-aligned with the add() calls.
  std::vector<exp::CellResult> run() {
    const WallClock clock;
    auto results = runner_.run(cells_);
    report_.record_runtime(clock.seconds(), runner_.threads(),
                           runner_.sim_threads());
    cells_.clear();
    for (const auto& cell : results) report_.add(cell);
    return results;
  }

  /// Single-cell convenience: queue, run, return.
  exp::CellResult run_one(exp::ExperimentSpec spec, exp::TrialFn fn = {}) {
    add(std::move(spec), std::move(fn));
    return std::move(run().front());
  }

  /// Bench epilogue: writes the --json report (runtime block included
  /// unless --json-timing=0), warns about unfinished flows and failed
  /// trials, and returns the process exit code — nonzero when
  /// --require-complete is set and any flow was left unfinished or any
  /// trial errored, or the report could not be written.
  [[nodiscard]] int finish() const {
    bool ok = true;
    if (!json_path_.empty()) {
      ok = report_.write_json(json_path_, json_timing_);
    }
    if (!trace_path_.empty()) {
      ok = report_.write_trace(trace_path_) && ok;
    }
    bool incomplete = false;
    const std::uint64_t unfinished = report_.total_unfinished_flows();
    if (unfinished > 0) {
      incomplete = true;
      std::fprintf(stderr, "%s: %llu flow(s) unfinished%s\n",
                   report_.bench().c_str(),
                   static_cast<unsigned long long>(unfinished),
                   require_complete_ ? " (--require-complete: failing)" : "");
    }
    if (report_.total_trial_errors() > 0) {
      incomplete = true;
      for (const auto& cell : report_.cells()) {
        for (const auto& error : cell.errors) {
          std::fprintf(stderr, "%s: cell '%s' trial %d failed (%s): %s\n",
                       report_.bench().c_str(), cell.spec.name.c_str(),
                       error.trial, exp::to_string(error.kind),
                       error.what.c_str());
        }
      }
      if (require_complete_) {
        std::fprintf(stderr, "%s: %llu trial error(s) "
                     "(--require-complete: failing)\n",
                     report_.bench().c_str(),
                     static_cast<unsigned long long>(
                         report_.total_trial_errors()));
      }
    }
    if (incomplete && require_complete_) return 1;
    return ok ? 0 : 1;
  }

 private:
  exp::Report report_;
  exp::Runner runner_;
  std::string json_path_;
  std::string trace_path_;
  bool json_timing_;
  bool require_complete_;
  int trials_override_;
  std::vector<exp::Cell> cells_;
};

}  // namespace pnet::bench
