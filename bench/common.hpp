// Shared plumbing for the per-figure bench binaries: flag handling, network
// construction, the LP throughput runners used by Figs 6-8, and FCT summary
// helpers. Every bench normalizes exactly as the paper does (against the
// serial low-bandwidth network unless stated otherwise) and prints each
// figure's series as a TextTable.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "fsim/fluid.hpp"
#include "lp/mcf.hpp"
#include "routing/ecmp.hpp"
#include "routing/plane_paths.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"

namespace pnet::bench {

inline const topo::NetworkType kAllTypes[] = {
    topo::NetworkType::kSerialLow,
    topo::NetworkType::kParallelHomogeneous,
    topo::NetworkType::kParallelHeterogeneous,
    topo::NetworkType::kSerialHigh,
};

inline topo::NetworkSpec make_spec(topo::TopoKind kind,
                                   topo::NetworkType type, int hosts,
                                   int parallelism, std::uint64_t seed) {
  topo::NetworkSpec spec;
  spec.topo = kind;
  spec.type = type;
  spec.hosts = hosts;
  spec.parallelism = parallelism;
  spec.seed = seed;
  return spec;
}

/// Routing schemes for the LP experiments of section 5.1.1.
enum class LpScheme {
  /// Host hashes each flow onto one plane; inside the plane the flow may
  /// split over all equal-cost shortest paths (ideal switch ECMP).
  kEcmp,
  /// MPTCP + K globally-shortest paths across planes.
  kKsp,
};

struct LpRun {
  double total_throughput_bps = 0.0;
  double alpha = 0.0;
};

/// Ideal throughput with computed routes (Figs 6a/6b/8a/8b and the
/// multipath sweeps 6c/8c): maximum total throughput subject to the
/// computed routes, the paper's "constrain the flows in the LP solver to
/// use the routes computed by ECMP or KSP".
///
/// ECMP: the host hashes each flow onto one plane; inside the plane the
/// flow may use any of its equal-cost shortest paths (what switch-level
/// hashing achieves in aggregate). KSP: the flow may use its K globally-
/// shortest paths across all planes (MPTCP subflows). KSP tie-breaks are
/// randomized per flow so equal-cost-rich fabrics (fat trees) do not
/// collapse onto one corner of the fabric.
inline LpRun lp_throughput(const topo::ParallelNetwork& net,
                           const std::vector<workload::HostPair>& pairs,
                           LpScheme scheme, int k, double epsilon) {
  const lp::LinkIndex index(net);
  std::vector<lp::Commodity> commodities;
  commodities.reserve(pairs.size());
  std::uint64_t flow_id = 0;
  for (const auto& [src, dst] : pairs) {
    lp::Commodity commodity;
    commodity.demand = net.host_uplink_bps();
    std::vector<routing::Path> paths;
    if (scheme == LpScheme::kEcmp) {
      const int plane = routing::ecmp_pick(
          mix64(flow_id * 0x9E3779B9ULL + 1), net.num_planes());
      paths = routing::ecmp_paths_in_plane(net, plane, src, dst, 64);
    } else {
      paths = routing::ksp_across_planes(net, src, dst, k,
                                         mix64(flow_id + 0xABCD));
    }
    for (const auto& path : paths) {
      commodity.paths.push_back(index.to_global(path));
    }
    commodities.push_back(std::move(commodity));
    ++flow_id;
  }
  lp::McfOptions options;
  options.epsilon = epsilon;
  const auto result =
      lp::max_total_flow(index.capacity(), commodities, options);
  return {result.total_throughput, result.alpha};
}

/// The physical saturation throughput of the serial low-bandwidth network
/// with the same host count: the normalization denominator used by every
/// LP figure (serial low-bw == 1.0, N planes saturate at N).
inline double serial_low_capacity_bps(const topo::ParallelNetwork& net) {
  return static_cast<double>(net.num_hosts()) * net.spec().base_rate_bps;
}

/// Summary statistics of a sample, for figure series with error bars.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

inline Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  RunningStats stats;
  for (double x : samples) stats.add(x);
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  const auto ps = percentiles(samples, {50, 90, 99});
  s.median = ps[0];
  s.p90 = ps[1];
  s.p99 = ps[2];
  return s;
}

/// Prints a CDF as x/y rows, downsampled for readability.
inline void print_cdf(const std::string& title, const Cdf& cdf,
                      const std::string& x_label, std::size_t points = 15) {
  TextTable table(title, {x_label, "cdf"});
  for (const auto& [x, p] : cdf.resampled(points).points) {
    table.add_row(format_double(x, 2), {p}, 3);
  }
  table.print();
}

/// Standard bench prologue, shared by every bench binary: --help prints
/// `usage` (plus the common-flag epilogue) and exits; a flag not named in
/// `usage` aborts instead of silently falling back to its default; then
/// the figure header line is printed.
inline void print_header(const std::string& what, const Flags& flags,
                         const char* usage) {
  flags.handle_usage(usage == nullptr ? std::string_view{} : usage);
  std::printf("# %s\n# scale=%s (use --scale=paper or PNET_SCALE=paper for "
              "paper-size runs)\n\n",
              what.c_str(), flags.paper_scale() ? "paper" : "default");
}

// --------------------------------------------------------------- engines

/// Which simulation engine a bench drives: the packet-level simulator
/// (src/sim, exact but small-scale) or the flow-level fluid simulator
/// (src/fsim, max-min rates, 100x+ faster). Selected with --engine.
enum class Engine { kPacket, kFsim };

inline const char* to_string(Engine engine) {
  return engine == Engine::kPacket ? "packet" : "fsim";
}

inline Engine parse_engine(const Flags& flags) {
  const auto value = flags.get("engine", "packet");
  if (value == "packet") return Engine::kPacket;
  if (value == "fsim") return Engine::kFsim;
  std::fprintf(stderr, "%s: --engine must be 'packet' or 'fsim', got '%s'\n",
               flags.program().c_str(), value.c_str());
  std::exit(2);
}

/// The fluid-engine scheme matching a packet-sim routing policy, so a
/// bench's --engine=fsim run models the same path choices its packet run
/// simulates. (kEcmp and kRoundRobin both pin one plane per flow; the
/// fluid model approximates round-robin by the ECMP plane hash, which has
/// the same per-plane load in expectation. kSizeThreshold maps per flow.)
inline fsim::FsimConfig to_fsim_config(const core::PolicyConfig& policy,
                                       std::uint64_t flow_bytes = 0) {
  fsim::FsimConfig config;
  config.k = policy.k;
  config.ecmp_path_cap = policy.ecmp_path_cap;
  switch (policy.policy) {
    case core::RoutingPolicy::kEcmp:
    case core::RoutingPolicy::kRoundRobin:
      config.scheme = fsim::RouteScheme::kEcmpPlaneHash;
      break;
    case core::RoutingPolicy::kShortestPlane:
      config.scheme = fsim::RouteScheme::kShortestPlane;
      break;
    case core::RoutingPolicy::kKspMultipath:
      config.scheme = fsim::RouteScheme::kKspMultipath;
      break;
    case core::RoutingPolicy::kSizeThreshold:
      config.scheme = flow_bytes > policy.multipath_cutoff_bytes
                          ? fsim::RouteScheme::kKspMultipath
                          : fsim::RouteScheme::kShortestPlane;
      break;
  }
  return config;
}

/// Wall-clock stopwatch for engine speedup comparisons.
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pnet::bench
