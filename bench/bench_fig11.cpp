// Figure 11: concurrent 100 kB RPC completion times (median / 90th / 99th
// percentile) as the number of outstanding RPCs per host grows from 1 to
// 10. Jellyfish, N = 4, single-path routing, shallow 100-packet buffers.
//
// The paper's shape: serial low-bw suffers most (limited bandwidth to drain
// queues and few paths to dodge collisions; its p99 explodes with drops and
// 10 ms retransmission timeouts — note the broken axis in Fig 11c); serial
// high-bw only drains faster; parallel networks spread the requests over
// 4x the paths and queues, keeping all percentiles mild.
//
// Usage: bench_fig11 [--hosts=64] [--planes=4] [--rounds=30] [--seed=1]
#include "common.hpp"
#include "workload/apps.hpp"

using namespace pnet;

namespace {

struct RpcResult {
  bench::Summary summary;
  std::uint64_t drops = 0;
  int timeouts = 0;
};

RpcResult run_rpcs(topo::NetworkType type, int hosts, int planes,
                   int concurrent, int rounds, std::uint64_t seed) {
  const auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type,
                                     hosts, planes, seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  core::SimHarness harness(spec, policy);

  workload::ClosedLoopApp::Config config;
  config.concurrent_per_host = concurrent;
  config.response_bytes = 1500;  // small ack-sized reply
  config.rounds_per_worker = rounds;
  config.seed = seed * 131 + 7;
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [](Rng&) { return std::uint64_t{100'000}; });
  app.start(0);
  harness.run();

  RpcResult result;
  result.summary = bench::summarize(app.completion_times_us());
  result.drops = harness.network().total_drops();
  result.timeouts = harness.logger().total_timeouts();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Figure 11: concurrent 100kB RPC completion time percentiles", flags,
      "bench_fig11: concurrent 100kB RPC percentiles\n"
      "\n"
      "  --hosts=N    hosts (default 64; paper 686)\n"
      "  --planes=N   dataplanes (default 4)\n"
      "  --rounds=N   RPC rounds per worker (default 30; paper 100)\n"
      "  --seed=N     base seed (default 1)\n");
  const bool paper = flags.paper_scale();
  const int hosts = flags.get_int("hosts", paper ? 686 : 64);
  const int planes = flags.get_int("planes", 4);
  const int rounds = flags.get_int("rounds", paper ? 100 : 30);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  const std::vector<int> concurrency = {1, 2, 4, 6, 8, 10};
  const char* titles[] = {"Fig 11a: median (us)", "Fig 11b: 90%-tile (us)",
                          "Fig 11c: 99%-tile (us) [serial-low explodes via "
                          "drops + 10ms RTOs: the paper's broken axis]"};

  // Run the grid once, then print the three percentile tables.
  std::vector<std::vector<bench::Summary>> grid;      // [conc][type]
  std::vector<std::vector<std::uint64_t>> drop_grid;  // [conc][type]
  for (int c : concurrency) {
    std::vector<bench::Summary> row;
    std::vector<std::uint64_t> drops;
    for (auto type : bench::kAllTypes) {
      const auto r = run_rpcs(type, hosts, planes, c, rounds, seed);
      row.push_back(r.summary);
      drops.push_back(r.drops);
    }
    grid.push_back(std::move(row));
    drop_grid.push_back(std::move(drops));
  }

  for (int which = 0; which < 3; ++which) {
    TextTable table(titles[which],
                    {"RPCs/host", "serial low-bw", "par hom", "par het",
                     "serial high-bw"});
    for (std::size_t i = 0; i < concurrency.size(); ++i) {
      std::vector<double> row;
      for (const auto& s : grid[i]) {
        row.push_back(which == 0 ? s.median : which == 1 ? s.p90 : s.p99);
      }
      table.add_row(std::to_string(concurrency[i]), row, 1);
    }
    table.print();
  }

  TextTable drops("Packet drops during the run (drives the p99 tail)",
                  {"RPCs/host", "serial low-bw", "par hom", "par het",
                   "serial high-bw"});
  for (std::size_t i = 0; i < concurrency.size(); ++i) {
    std::vector<double> row;
    for (auto d : drop_grid[i]) row.push_back(static_cast<double>(d));
    drops.add_row(std::to_string(concurrency[i]), row, 0);
  }
  drops.print();
  return 0;
}
