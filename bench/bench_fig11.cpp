// Figure 11: concurrent 100 kB RPC completion times (median / 90th / 99th
// percentile) as the number of outstanding RPCs per host grows from 1 to
// 10. Jellyfish, N = 4, single-path routing, shallow 100-packet buffers.
//
// The paper's shape: serial low-bw suffers most (limited bandwidth to drain
// queues and few paths to dodge collisions; its p99 explodes with drops and
// 10 ms retransmission timeouts — note the broken axis in Fig 11c); serial
// high-bw only drains faster; parallel networks spread the requests over
// 4x the paths and queues, keeping all percentiles mild.
//
// One custom-engine cell per (concurrency, network type) grid point, all
// fanned out together by exp::Runner; drops and timeouts ride in the
// cell's extra metrics.
//
// Usage: bench_fig11 [--hosts=64] [--planes=4] [--rounds=30] [--seed=1]
#include "common.hpp"
#include "workload/apps.hpp"

using namespace pnet;

namespace {

exp::TrialResult run_rpcs(topo::NetworkType type, int hosts, int planes,
                          int concurrent, int rounds,
                          const exp::TrialContext& ctx) {
  const auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type,
                                     hosts, planes, ctx.seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  core::SimHarness harness({.spec = spec, .policy = policy});

  workload::ClosedLoopApp::Config config;
  config.concurrent_per_host = concurrent;
  config.response_bytes = 1500;  // small ack-sized reply
  config.rounds_per_worker = rounds;
  config.seed = mix64(ctx.seed);
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [](Rng&) { return std::uint64_t{100'000}; });
  app.start(0);
  harness.run();

  exp::TrialResult r;
  r.fct_us = app.completion_times_us();
  r.flows_started = static_cast<std::uint64_t>(harness.net().num_hosts()) *
                    static_cast<std::uint64_t>(concurrent) *
                    static_cast<std::uint64_t>(rounds);
  r.flows_finished = r.fct_us.size();
  r.delivered_bytes =
      static_cast<double>(harness.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(harness.events().now());
  r.events = harness.events().dispatched();
  r.metrics["drops"] = static_cast<double>(harness.network().total_drops());
  r.metrics["timeouts"] =
      static_cast<double>(harness.logger().total_timeouts());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Figure 11: concurrent 100kB RPC completion time percentiles", flags,
      "bench_fig11: concurrent 100kB RPC percentiles\n"
      "\n"
      "  --hosts=N    hosts (default 64; paper 686)\n"
      "  --planes=N   dataplanes (default 4)\n"
      "  --rounds=N   RPC rounds per worker (default 30; paper 100)\n"
      "  --seed=N     base seed (default 1)\n");
  const bool paper = flags.paper_scale();
  const int hosts = flags.get_int("hosts", paper ? 686 : 64);
  const int planes = flags.get_int("planes", 4);
  const int rounds = flags.get_int("rounds", paper ? 100 : 30);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  const std::vector<int> concurrency = {1, 2, 4, 6, 8, 10};
  const char* titles[] = {"Fig 11a: median (us)", "Fig 11b: 90%-tile (us)",
                          "Fig 11c: 99%-tile (us) [serial-low explodes via "
                          "drops + 10ms RTOs: the paper's broken axis]"};

  bench::Experiment experiment(flags, "fig11");
  for (int c : concurrency) {
    for (auto type : bench::kAllTypes) {
      exp::ExperimentSpec spec;
      spec.name = "conc=" + std::to_string(c) + "/" + topo::to_string(type);
      spec.engine = exp::EngineKind::kCustom;
      spec.seed = seed;
      spec.trials = experiment.trials(1);
      experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
        return run_rpcs(type, hosts, planes, c, rounds, ctx);
      });
    }
  }
  const auto results = experiment.run();
  const std::size_t num_types = std::size(bench::kAllTypes);

  for (int which = 0; which < 3; ++which) {
    TextTable table(titles[which],
                    {"RPCs/host", "serial low-bw", "par hom", "par het",
                     "serial high-bw"});
    for (std::size_t i = 0; i < concurrency.size(); ++i) {
      std::vector<double> row;
      for (std::size_t j = 0; j < num_types; ++j) {
        const auto s = results[i * num_types + j].fct();
        row.push_back(which == 0 ? s.median : which == 1 ? s.p90 : s.p99);
      }
      table.add_row(std::to_string(concurrency[i]), row, 1);
    }
    table.print();
  }

  TextTable drops("Packet drops during the run (drives the p99 tail)",
                  {"RPCs/host", "serial low-bw", "par hom", "par het",
                   "serial high-bw"});
  for (std::size_t i = 0; i < concurrency.size(); ++i) {
    std::vector<double> row;
    for (std::size_t j = 0; j < num_types; ++j) {
      row.push_back(results[i * num_types + j].metric("drops").mean);
    }
    drops.add_row(std::to_string(concurrency[i]), row, 0);
  }
  drops.print();
  return experiment.finish();
}
