// google-benchmark microbenchmarks for the routing substrate: BFS, ECMP
// enumeration, Yen KSP, cross-plane KSP merge, the compiled RouteTable
// arena, and the shared RouteCache (cold miss vs warm hit). These quantify
// the cost of the path computations the experiments lean on.
//
// Besides the default google-benchmark mode, `--json[=PATH]` switches to a
// self-contained report mode that measures what the route cache buys the
// experiment stack — cold vs warm lookup latency, cache hit rate, arena
// footprint, and the fsim KSP sweep (route 10k flows at k=16) with the
// cache enabled vs in pass-through mode — and writes one JSON document
// (committed as BENCH_routing.json at the repo root). Report-mode flags:
// --flows, --k, --hosts, --planes, --pairs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/path_selector.hpp"
#include "exp/json.hpp"
#include "fsim/fluid.hpp"
#include "routing/ecmp.hpp"
#include "routing/plane_paths.hpp"
#include "routing/route_cache.hpp"
#include "routing/shortest.hpp"
#include "routing/yen.hpp"
#include "topo/parallel.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace {

using namespace pnet;

const topo::ParallelNetwork& jellyfish4() {
  static const auto net = [] {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kJellyfish;
    spec.type = topo::NetworkType::kParallelHeterogeneous;
    spec.hosts = 256;
    spec.parallelism = 4;
    return topo::build_network(spec);
  }();
  return net;
}

const topo::FatTree& fat_tree16() {
  static const auto ft = [] {
    topo::FatTreeConfig config;
    config.k = 16;
    return topo::build_fat_tree(config);
  }();
  return ft;
}

void BM_BfsFatTree(benchmark::State& state) {
  const auto& ft = fat_tree16();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::bfs_hops(ft.graph, ft.host_nodes.front()));
  }
}
BENCHMARK(BM_BfsFatTree);

void BM_EcmpEnumerateFatTree(benchmark::State& state) {
  const auto& ft = fat_tree16();
  const auto cap = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::enumerate_shortest_paths(
        ft.graph, ft.host_nodes.front(), ft.host_nodes.back(), cap));
  }
}
BENCHMARK(BM_EcmpEnumerateFatTree)->Arg(8)->Arg(64);

void BM_YenJellyfish(benchmark::State& state) {
  const auto& net = jellyfish4();
  const auto k = static_cast<int>(state.range(0));
  const topo::Graph& g = net.plane(0).graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::k_shortest_paths(
        g, net.host_node(0, HostId{0}), net.host_node(0, HostId{200}), k));
  }
}
BENCHMARK(BM_YenJellyfish)->Arg(4)->Arg(8)->Arg(32);

void BM_KspAcrossPlanes(benchmark::State& state) {
  const auto& net = jellyfish4();
  const auto k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::ksp_across_planes(net, HostId{0}, HostId{200}, k));
  }
}
BENCHMARK(BM_KspAcrossPlanes)->Arg(8)->Arg(16);

void BM_PathSelectorCached(benchmark::State& state) {
  const auto& net = jellyfish4();
  core::PolicyConfig config;
  config.policy = core::RoutingPolicy::kShortestPlane;
  core::PathSelector selector(net, config);
  (void)selector.select(HostId{0}, HostId{200}, 1000, 0);  // warm the cache
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        selector.select(HostId{0}, HostId{200}, 1000, ++key));
  }
}
BENCHMARK(BM_PathSelectorCached);

// Interning one path into a warm RouteTable: the marginal cost a cache
// miss pays on top of the compute (hash + dedup probe + slab copy).
void BM_RouteTableIntern(benchmark::State& state) {
  const auto& net = jellyfish4();
  const auto paths =
      routing::ksp_across_planes(net, HostId{0}, HostId{200}, 64);
  routing::RouteTable table;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = paths[i++ % paths.size()];
    benchmark::DoNotOptimize(table.intern(p.plane, p.links));
  }
}
BENCHMARK(BM_RouteTableIntern);

// A cold RouteCache lookup: full KSP compute + intern. Each iteration uses
// a distinct destination so every lookup misses.
void BM_RouteCacheColdKsp(benchmark::State& state) {
  const auto& net = jellyfish4();
  routing::RouteCache cache(/*enabled=*/true);
  std::int32_t dst = 0;
  std::uint64_t salt = 0;
  for (auto _ : state) {
    dst = (dst + 1) % 255;
    // A fresh tie-break seed each wrap keeps later laps cold too.
    if (dst == 0) ++salt;
    benchmark::DoNotOptimize(cache.lookup(
        net, routing::RouteQuery::ksp(HostId{255}, HostId{dst}, 8, salt)));
  }
}
BENCHMARK(BM_RouteCacheColdKsp);

// A warm RouteCache lookup: shard lock + hash probe + epoch check.
void BM_RouteCacheWarmKsp(benchmark::State& state) {
  const auto& net = jellyfish4();
  routing::RouteCache cache(/*enabled=*/true);
  const auto q = routing::RouteQuery::ksp(HostId{0}, HostId{200}, 8, 7);
  (void)cache.lookup(net, q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(net, q));
  }
}
BENCHMARK(BM_RouteCacheWarmKsp);

// --------------------------------------------------------- --json report

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Routes `flows` KSP-multipath flows through a FluidSimulator backed by
/// `cache`, returning the wall-clock seconds spent routing (add_flow).
double route_flows(const topo::ParallelNetwork& net,
                   const fsim::FsimConfig& config,
                   std::shared_ptr<routing::RouteCache> cache, int flows,
                   std::uint64_t seed) {
  fsim::FluidSimulator fluid(net, config, std::move(cache));
  Rng rng(seed);
  const auto hosts = static_cast<std::uint64_t>(net.num_hosts());
  std::vector<fsim::FlowSpec> specs;
  specs.reserve(static_cast<std::size_t>(flows));
  for (int i = 0; i < flows; ++i) {
    const HostId src{static_cast<std::int32_t>(rng.next_below(hosts))};
    HostId dst{static_cast<std::int32_t>(rng.next_below(hosts))};
    if (dst == src) dst = HostId{(dst.v + 1) % net.num_hosts()};
    specs.push_back({src, dst, 1'000'000, 0});
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& spec : specs) fluid.add_flow(spec);
  return seconds_since(t0);
}

int run_json_report(const Flags& flags) {
  const std::string path = flags.get("json", "-");
  // 32 hosts -> 992 (src, dst) pairs, so 10k flows revisit each pair ~10
  // times: the regime the per-cell shared cache targets (many flows, few
  // pairs). --hosts=64 shows the low-reuse end instead.
  const int hosts = flags.get_int("hosts", 32);
  const int planes = flags.get_int("planes", 2);
  const int flows = flags.get_int("flows", 10'000);
  const int k = flags.get_int("k", 16);
  const int pairs = flags.get_int("pairs", 512);

  exp::JsonWriter w;
  w.begin_object();
  w.field("bench", "micro_routing");
  w.key("config").begin_object();
  w.field("hosts", hosts);
  w.field("planes", planes);
  w.field("flows", flows);
  w.field("k", k);
  w.field("pairs", pairs);
  w.end_object();

  // Cold vs warm lookup latency over `pairs` distinct jellyfish pairs.
  {
    const auto& net = jellyfish4();
    routing::RouteCache cache(/*enabled=*/true);
    std::vector<routing::RouteQuery> queries;
    Rng rng(17);
    for (int i = 0; i < pairs; ++i) {
      const HostId src{static_cast<std::int32_t>(rng.next_below(256))};
      HostId dst{static_cast<std::int32_t>(rng.next_below(256))};
      if (dst == src) dst = HostId{(dst.v + 1) % 256};
      queries.push_back(routing::RouteQuery::ksp(src, dst, 8, 7));
    }
    const auto t_cold = std::chrono::steady_clock::now();
    for (const auto& q : queries) (void)cache.lookup(net, q);
    const double cold_s = seconds_since(t_cold);
    const auto t_warm = std::chrono::steady_clock::now();
    for (const auto& q : queries) (void)cache.lookup(net, q);
    const double warm_s = seconds_since(t_warm);
    const auto stats = cache.stats();

    w.key("route_cache").begin_object();
    w.field("cold_lookup_ns_mean", cold_s * 1e9 / pairs);
    w.field("warm_lookup_ns_mean", warm_s * 1e9 / pairs);
    w.field("cold_over_warm", warm_s > 0 ? cold_s / warm_s : 0.0);
    w.field("hits", stats.hits);
    w.field("misses", stats.misses);
    w.field("hit_rate", static_cast<double>(stats.hits) /
                            static_cast<double>(stats.hits + stats.misses));
    w.field("entries", stats.entries);
    w.field("paths", stats.paths);
    w.field("arena_bytes", stats.arena_bytes);
    w.field("compute_ns", stats.compute_ns);
    w.end_object();
  }

  // The fsim KSP sweep: route `flows` k-shortest-path multipath flows with
  // the shared cache enabled vs forced pass-through (PNET_ROUTE_CACHE=off
  // equivalent). The candidate KSP pools are per-pair, so the cached run
  // computes each pair once and the speedup approaches flows / pairs.
  {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kFatTree;
    spec.type = topo::NetworkType::kParallelHomogeneous;
    spec.hosts = hosts;
    spec.parallelism = planes;
    const auto net = topo::build_network(spec);

    fsim::FsimConfig config;
    config.scheme = fsim::RouteScheme::kKspMultipath;
    config.k = k;

    const auto cached = std::make_shared<routing::RouteCache>(true);
    const double cached_s = route_flows(net, config, cached, flows, 23);
    const double uncached_s = route_flows(
        net, config, std::make_shared<routing::RouteCache>(false), flows,
        23);
    const auto stats = cached->stats();

    w.key("fsim_ksp_sweep").begin_object();
    w.field("engine", "fsim");
    w.field("scheme", "ksp_multipath");
    // The fat-tree builder rounds the host count up to the next radix.
    w.field("built_hosts", net.num_hosts());
    w.field("cached_s", cached_s);
    w.field("uncached_s", uncached_s);
    w.field("speedup", cached_s > 0 ? uncached_s / cached_s : 0.0);
    w.field("hits", stats.hits);
    w.field("misses", stats.misses);
    w.field("hit_rate", static_cast<double>(stats.hits) /
                            static_cast<double>(stats.hits + stats.misses));
    w.field("arena_bytes", stats.arena_bytes);
    w.end_object();
  }

  w.end_object();
  const std::string text = w.str() + "\n";
  if (path == "-" || path == "1") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0) {
      return run_json_report(Flags(argc, argv));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
