// google-benchmark microbenchmarks for the routing substrate: BFS, ECMP
// enumeration, Yen KSP, cross-plane KSP merge, and the path-selector cache.
// These quantify the cost of the path computations the experiments lean on.
#include <benchmark/benchmark.h>

#include "core/path_selector.hpp"
#include "routing/ecmp.hpp"
#include "routing/plane_paths.hpp"
#include "routing/shortest.hpp"
#include "routing/yen.hpp"
#include "topo/parallel.hpp"

namespace {

using namespace pnet;

const topo::ParallelNetwork& jellyfish4() {
  static const auto net = [] {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kJellyfish;
    spec.type = topo::NetworkType::kParallelHeterogeneous;
    spec.hosts = 256;
    spec.parallelism = 4;
    return topo::build_network(spec);
  }();
  return net;
}

const topo::FatTree& fat_tree16() {
  static const auto ft = [] {
    topo::FatTreeConfig config;
    config.k = 16;
    return topo::build_fat_tree(config);
  }();
  return ft;
}

void BM_BfsFatTree(benchmark::State& state) {
  const auto& ft = fat_tree16();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::bfs_hops(ft.graph, ft.host_nodes.front()));
  }
}
BENCHMARK(BM_BfsFatTree);

void BM_EcmpEnumerateFatTree(benchmark::State& state) {
  const auto& ft = fat_tree16();
  const auto cap = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::enumerate_shortest_paths(
        ft.graph, ft.host_nodes.front(), ft.host_nodes.back(), cap));
  }
}
BENCHMARK(BM_EcmpEnumerateFatTree)->Arg(8)->Arg(64);

void BM_YenJellyfish(benchmark::State& state) {
  const auto& net = jellyfish4();
  const auto k = static_cast<int>(state.range(0));
  const topo::Graph& g = net.plane(0).graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::k_shortest_paths(
        g, net.host_node(0, HostId{0}), net.host_node(0, HostId{200}), k));
  }
}
BENCHMARK(BM_YenJellyfish)->Arg(4)->Arg(8)->Arg(32);

void BM_KspAcrossPlanes(benchmark::State& state) {
  const auto& net = jellyfish4();
  const auto k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::ksp_across_planes(net, HostId{0}, HostId{200}, k));
  }
}
BENCHMARK(BM_KspAcrossPlanes)->Arg(8)->Arg(16);

void BM_PathSelectorCached(benchmark::State& state) {
  const auto& net = jellyfish4();
  core::PolicyConfig config;
  config.policy = core::RoutingPolicy::kShortestPlane;
  core::PathSelector selector(net, config);
  (void)selector.select(HostId{0}, HostId{200}, 1000, 0);  // warm the cache
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        selector.select(HostId{0}, HostId{200}, 1000, ++key));
  }
}
BENCHMARK(BM_PathSelectorCached);

}  // namespace

BENCHMARK_MAIN();
