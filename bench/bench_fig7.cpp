// Figure 7: ideal throughput under NO path constraint on Jellyfish,
// rack-level all-to-all traffic (the LP solver's max concurrent flow with a
// true shortest-path oracle over every plane).
//
// The paper's headline: parallel heterogeneous Jellyfish reaches up to
// ~60% MORE total throughput than the serial high-bandwidth network built
// from the same capacity, because each rack pair can route over whichever
// plane instantiation offers the shortest path, consuming less capacity per
// bit. Parallel homogeneous equals serial high-bw (identical planes) and is
// printed once to confirm, as the paper notes before omitting it.
//
// Each (network type, plane count) point is one custom-engine cell whose
// trial function performs a single oracle LP solve; exp::Runner fans every
// (point, trial) pair over --threads.
//
// Usage: bench_fig7 [--racks=24] [--degree=8] [--eps=0.06] [--trials=3]
//        [--seed=1]   (--scale=paper: 128 racks as in the paper)
#include <map>

#include "common.hpp"

using namespace pnet;

namespace {

double oracle_throughput(const topo::ParallelNetwork& net, double eps) {
  const lp::LinkIndex index(net);
  std::vector<lp::OracleCommodity> commodities;
  const int racks = static_cast<int>(net.plane(0).switch_nodes.size());
  for (int a = 0; a < racks; ++a) {
    for (int b = 0; b < racks; ++b) {
      if (a == b) continue;
      lp::OracleCommodity commodity;
      commodity.demand = net.spec().base_rate_bps;
      for (int p = 0; p < net.num_planes(); ++p) {
        commodity.endpoints.emplace_back(
            net.plane(p).switch_nodes[static_cast<std::size_t>(a)],
            net.plane(p).switch_nodes[static_cast<std::size_t>(b)]);
      }
      commodities.push_back(std::move(commodity));
    }
  }
  lp::McfOptions options;
  options.epsilon = eps;
  return lp::max_concurrent_flow_oracle(net, index, commodities, options)
      .total_throughput;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Figure 7: Jellyfish ideal throughput, rack-level all-to-all, no "
      "path constraint",
      flags,
      "bench_fig7: Jellyfish ideal throughput, no path constraint (LP)\n"
      "\n"
      "  --racks=N    racks (default 24; paper 128)\n"
      "  --degree=N   switch network degree (default 8)\n"
      "  --eps=X      LP approximation epsilon (default 0.06)\n"
      "  --seed=N     base seed (default 1)\n");
  const int racks = flags.get_int("racks", flags.paper_scale() ? 128 : 24);
  const int degree = flags.get_int("degree", 8);
  const double eps = flags.get_double("eps", 0.06);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  bench::Experiment experiment(flags, "fig7");
  const int trials = experiment.trials(flags.paper_scale() ? 5 : 3);

  auto add_cell = [&](const std::string& name, topo::NetworkType type,
                      int planes) {
    exp::ExperimentSpec spec;
    spec.name = name;
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    spec.trials = trials;
    return experiment.add(
        std::move(spec), [=](const exp::TrialContext& ctx) {
          auto tspec = bench::make_spec(topo::TopoKind::kJellyfish, type,
                                        racks, planes, ctx.seed);
          tspec.jf_switches = racks;
          tspec.jf_degree = degree;
          tspec.jf_hosts_per_switch = 1;  // hosts unused: rack commodities
          exp::TrialResult r;
          r.metrics["tput_bps"] =
              oracle_throughput(topo::build_network(tspec), eps);
          return r;
        });
  };

  const std::vector<int> plane_counts = {1, 2, 4, 8};
  const std::size_t serial_low =
      add_cell("serial-low", topo::NetworkType::kSerialLow, 1);
  std::map<int, std::size_t> het_cells;
  std::map<int, std::size_t> high_cells;
  for (int n : plane_counts) {
    if (n > 1) {
      het_cells[n] = add_cell("het/planes=" + std::to_string(n),
                              topo::NetworkType::kParallelHeterogeneous, n);
    }
    high_cells[n] = add_cell("high/planes=" + std::to_string(n),
                             topo::NetworkType::kSerialHigh, n);
  }
  const std::size_t hom4 =
      add_cell("hom/planes=4", topo::NetworkType::kParallelHomogeneous, 4);

  const auto results = experiment.run();
  const double serial_low_mean = results[serial_low].metric("tput_bps").mean;

  TextTable table("Fig 7: throughput normalized to serial low-bw "
                  "(parallel homogeneous == serial high-bw, shown once)",
                  {"planes", "serial high-bw", "parallel heterogeneous",
                   "het stddev", "het / serial-high"});
  for (int n : plane_counts) {
    const auto het = results[n == 1 ? serial_low : het_cells[n]]
                         .metric("tput_bps");
    const auto high = results[high_cells[n]].metric("tput_bps");
    const double high_norm = high.mean / serial_low_mean;
    const double het_norm = het.mean / serial_low_mean;
    table.add_row(std::to_string(n),
                  {high_norm, het_norm, het.stddev / serial_low_mean,
                   het_norm / high_norm});
  }
  table.print();

  // Confirmation row the paper mentions: homogeneous == serial high-bw.
  TextTable check("Check: parallel homogeneous matches serial high-bw "
                  "(paper omits the curve for this reason)",
                  {"planes", "parallel homogeneous", "serial high-bw"});
  check.add_row("4", {results[hom4].metric("tput_bps").mean / serial_low_mean,
                      results[high_cells[4]].metric("tput_bps").mean /
                          serial_low_mean});
  check.print();
  return experiment.finish();
}
