// Figure 7: ideal throughput under NO path constraint on Jellyfish,
// rack-level all-to-all traffic (the LP solver's max concurrent flow with a
// true shortest-path oracle over every plane).
//
// The paper's headline: parallel heterogeneous Jellyfish reaches up to
// ~60% MORE total throughput than the serial high-bandwidth network built
// from the same capacity, because each rack pair can route over whichever
// plane instantiation offers the shortest path, consuming less capacity per
// bit. Parallel homogeneous equals serial high-bw (identical planes) and is
// printed once to confirm, as the paper notes before omitting it.
//
// Usage: bench_fig7 [--racks=24] [--degree=8] [--eps=0.06] [--trials=3]
//        [--seed=1]   (--scale=paper: 128 racks as in the paper)
#include "common.hpp"

using namespace pnet;

namespace {

double oracle_throughput(const topo::ParallelNetwork& net, double eps) {
  const lp::LinkIndex index(net);
  std::vector<lp::OracleCommodity> commodities;
  const int racks = static_cast<int>(net.plane(0).switch_nodes.size());
  for (int a = 0; a < racks; ++a) {
    for (int b = 0; b < racks; ++b) {
      if (a == b) continue;
      lp::OracleCommodity commodity;
      commodity.demand = net.spec().base_rate_bps;
      for (int p = 0; p < net.num_planes(); ++p) {
        commodity.endpoints.emplace_back(
            net.plane(p).switch_nodes[static_cast<std::size_t>(a)],
            net.plane(p).switch_nodes[static_cast<std::size_t>(b)]);
      }
      commodities.push_back(std::move(commodity));
    }
  }
  lp::McfOptions options;
  options.epsilon = eps;
  return lp::max_concurrent_flow_oracle(net, index, commodities, options)
      .total_throughput;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Figure 7: Jellyfish ideal throughput, rack-level all-to-all, no "
      "path constraint",
      flags,
      "bench_fig7: Jellyfish ideal throughput, no path constraint (LP)\n"
      "\n"
      "  --racks=N    racks (default 24; paper 128)\n"
      "  --degree=N   switch network degree (default 8)\n"
      "  --eps=X      LP approximation epsilon (default 0.06)\n"
      "  --trials=N   seeds per point (default 3)\n"
      "  --seed=N     base seed (default 1)\n");
  const int racks = flags.get_int("racks", flags.paper_scale() ? 128 : 24);
  const int degree = flags.get_int("degree", 8);
  const double eps = flags.get_double("eps", 0.06);
  const int trials = flags.get_int("trials", flags.paper_scale() ? 5 : 3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  auto spec_for = [&](topo::NetworkType type, int planes,
                      std::uint64_t s) {
    auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type,
                                 racks, planes, s);
    spec.jf_switches = racks;
    spec.jf_degree = degree;
    spec.jf_hosts_per_switch = 1;  // hosts unused: rack-level commodities
    return spec;
  };

  auto run = [&](topo::NetworkType type, int planes) {
    RunningStats stats;
    for (int t = 0; t < trials; ++t) {
      const auto net =
          topo::build_network(spec_for(type, planes, seed + 31 * t));
      stats.add(oracle_throughput(net, eps));
    }
    return stats;
  };

  const double serial_low =
      run(topo::NetworkType::kSerialLow, 1).mean();

  TextTable table("Fig 7: throughput normalized to serial low-bw "
                  "(parallel homogeneous == serial high-bw, shown once)",
                  {"planes", "serial high-bw", "parallel heterogeneous",
                   "het stddev", "het / serial-high"});
  for (int n : {1, 2, 4, 8}) {
    const auto het =
        n == 1 ? run(topo::NetworkType::kSerialLow, 1)
               : run(topo::NetworkType::kParallelHeterogeneous, n);
    const auto high = run(topo::NetworkType::kSerialHigh, n);
    const double high_norm = high.mean() / serial_low;
    const double het_norm = het.mean() / serial_low;
    table.add_row(std::to_string(n),
                  {high_norm, het_norm, het.stddev() / serial_low,
                   het_norm / high_norm});
  }
  table.print();

  // Confirmation row the paper mentions: homogeneous == serial high-bw.
  const auto hom = run(topo::NetworkType::kParallelHomogeneous, 4);
  const auto high4 = run(topo::NetworkType::kSerialHigh, 4);
  TextTable check("Check: parallel homogeneous matches serial high-bw "
                  "(paper omits the curve for this reason)",
                  {"planes", "parallel homogeneous", "serial high-bw"});
  check.add_row("4", {hom.mean() / serial_low, high4.mean() / serial_low});
  check.print();
  return 0;
}
