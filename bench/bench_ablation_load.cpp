// Ablation: open-loop latency-vs-load curves for the four network types.
//
// Poisson arrivals of 100 kB flows at a configured fraction of the edge
// bandwidth; the classic hockey-stick: latency is flat until the offered
// load approaches the fabric's usable capacity, then the knee. A P-Net's
// knee sits close to the serial high-bandwidth network's, far beyond
// serial low-bw — the throughput claim of the paper in open-loop form.
//
// Usage: bench_ablation_load [--hosts=48] [--flows=400] [--seed=1]
#include "common.hpp"
#include "workload/open_loop.hpp"

using namespace pnet;

namespace {

bench::Summary run_load(topo::NetworkType type, double load, int hosts,
                        int flows, std::uint64_t seed) {
  const auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type,
                                     hosts, 4, seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;
  core::SimHarness harness(spec, policy, sim_config);

  workload::OpenLoopApp::Config config;
  // Load is defined against the SERIAL edge bandwidth so the same x-axis
  // stresses every network type equally (parallel types have N x capacity
  // headroom at equal offered load).
  config.load = load;
  config.max_flows = flows;
  config.seed = seed * 37 + 5;
  workload::OpenLoopApp app(
      harness.events(), harness.starter(), harness.all_hosts(),
      /*host_uplink_bps=*/100e9, /*mean_flow_bytes=*/100'000.0, config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [](Rng&) { return std::uint64_t{100'000}; });
  app.start(0);
  harness.run_until(5 * units::kSecond);
  return bench::summarize(app.completion_times_us());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Ablation: open-loop latency vs offered load "
                      "(100 kB Poisson flows)",
                      flags,
                      "bench_ablation_load: open-loop latency vs offered "
                      "load\n"
                      "\n"
                      "  --hosts=N    hosts per network (default 48)\n"
                      "  --flows=N    Poisson flows per load point "
                      "(default 400)\n"
                      "  --seed=N     topology/arrival seed (default 1)\n");
  const int hosts = flags.get_int("hosts", 48);
  const int flows = flags.get_int("flows", 400);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  for (const char* metric : {"median", "p99"}) {
    TextTable table(std::string("FCT ") + metric +
                        " (us) vs offered load (fraction of 1x100G edge)",
                    {"load", "serial low-bw", "par hom", "par het",
                     "serial high-bw"});
    for (double load : {0.1, 0.3, 0.5, 0.7, 0.9, 1.2}) {
      std::vector<double> row;
      for (auto type : bench::kAllTypes) {
        const auto s = run_load(type, load, hosts, flows, seed);
        row.push_back(metric[0] == 'm' ? s.median : s.p99);
      }
      table.add_row(format_double(load, 1), row, 1);
    }
    table.print();
  }
  std::printf("The serial low-bw curve knees first (its capacity IS the\n"
              "x-axis unit); the P-Nets track the 4x serial high-bw curve.\n");
  return 0;
}
