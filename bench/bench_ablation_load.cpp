// Ablation: open-loop latency-vs-load curves for the four network types.
//
// Poisson arrivals of 100 kB flows at a configured fraction of the edge
// bandwidth; the classic hockey-stick: latency is flat until the offered
// load approaches the fabric's usable capacity, then the knee. A P-Net's
// knee sits close to the serial high-bandwidth network's, far beyond
// serial low-bw — the throughput claim of the paper in open-loop form.
//
// One custom-engine cell per (load, network type); the whole grid fans out
// through exp::Runner.
//
// Usage: bench_ablation_load [--hosts=48] [--flows=400] [--seed=1]
#include "common.hpp"
#include "workload/open_loop.hpp"

using namespace pnet;

namespace {

exp::TrialResult run_load(topo::NetworkType type, double load, int hosts,
                          int flows, const exp::TrialContext& ctx) {
  const auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type,
                                     hosts, 4, ctx.seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;
  core::SimHarness harness({.spec = spec, .policy = policy, .sim_config = sim_config});

  workload::OpenLoopApp::Config config;
  // Load is defined against the SERIAL edge bandwidth so the same x-axis
  // stresses every network type equally (parallel types have N x capacity
  // headroom at equal offered load).
  config.load = load;
  config.max_flows = flows;
  config.seed = mix64(ctx.seed);
  workload::OpenLoopApp app(
      harness.events(), harness.starter(), harness.all_hosts(),
      /*host_uplink_bps=*/100e9, /*mean_flow_bytes=*/100'000.0, config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [](Rng&) { return std::uint64_t{100'000}; });
  app.start(0);
  harness.run_until(5 * units::kSecond);

  exp::TrialResult r;
  r.fct_us = app.completion_times_us();
  r.flows_started = static_cast<std::uint64_t>(flows);
  r.flows_finished = r.fct_us.size();
  r.delivered_bytes =
      static_cast<double>(harness.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(harness.events().now());
  r.events = harness.events().dispatched();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Ablation: open-loop latency vs offered load "
                      "(100 kB Poisson flows)",
                      flags,
                      "bench_ablation_load: open-loop latency vs offered "
                      "load\n"
                      "\n"
                      "  --hosts=N    hosts per network (default 48)\n"
                      "  --flows=N    Poisson flows per load point "
                      "(default 400)\n"
                      "  --seed=N     topology/arrival seed (default 1)\n");
  const int hosts = flags.get_int("hosts", 48);
  const int flows = flags.get_int("flows", 400);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  const std::vector<double> loads = {0.1, 0.3, 0.5, 0.7, 0.9, 1.2};
  bench::Experiment experiment(flags, "ablation_load");
  for (double load : loads) {
    for (auto type : bench::kAllTypes) {
      exp::ExperimentSpec spec;
      spec.name = "load=" + format_double(load, 1) + "/" +
                  topo::to_string(type);
      spec.engine = exp::EngineKind::kCustom;
      spec.seed = seed;
      spec.trials = experiment.trials(1);
      experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
        return run_load(type, load, hosts, flows, ctx);
      });
    }
  }
  const auto results = experiment.run();
  const std::size_t num_types = std::size(bench::kAllTypes);

  for (const char* metric : {"median", "p99"}) {
    TextTable table(std::string("FCT ") + metric +
                        " (us) vs offered load (fraction of 1x100G edge)",
                    {"load", "serial low-bw", "par hom", "par het",
                     "serial high-bw"});
    for (std::size_t i = 0; i < loads.size(); ++i) {
      std::vector<double> row;
      for (std::size_t j = 0; j < num_types; ++j) {
        const auto s = results[i * num_types + j].fct();
        row.push_back(metric[0] == 'm' ? s.median : s.p99);
      }
      table.add_row(format_double(loads[i], 1), row, 1);
    }
    table.print();
  }
  std::printf("The serial low-bw curve knees first (its capacity IS the\n"
              "x-axis unit); the P-Nets track the 4x serial high-bw curve.\n");
  return experiment.finish();
}
