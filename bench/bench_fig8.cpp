// Figure 8: parallel Jellyfish ideal throughput with computed routes.
//   (a) all-to-all, default 8-way KSP    — saturates the planes;
//   (b) permutation, default 8-way KSP   — stuck well below the combined
//       bandwidth (~60% in the paper) once planes multiply;
//   (c) permutation, K sweep             — saturation again needs K ~ 8*N.
// Normalized to the serial low-bandwidth Jellyfish saturation throughput.
//
// Each figure point is one custom-engine cell (one LP solve per trial)
// fanned over --threads by exp::Runner.
//
// Usage: bench_fig8 [--hosts=98] [--eps=0.05] [--seed=1] [--trials=3]
//        (--scale=paper: 1024 hosts)
#include <map>

#include "common.hpp"

using namespace pnet;
using bench::LpScheme;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 8: Jellyfish ideal throughput (8-way KSP + "
                      "multipath sweep)",
                      flags,
                      "bench_fig8: Jellyfish ideal throughput, KSP (LP)\n"
                      "\n"
                      "  --hosts=N    hosts (default 98; paper 1024)\n"
                      "  --eps=X      LP approximation epsilon "
                      "(default 0.05)\n"
                      "  --seed=N     base seed (default 1)\n");
  const int hosts = flags.get_int("hosts", flags.paper_scale() ? 1024 : 98);
  const double eps = flags.get_double("eps", 0.05);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  bench::Experiment experiment(flags, "fig8");
  const int trials = experiment.trials(flags.paper_scale() ? 5 : 3);

  auto add_cell = [&](const std::string& name, int planes, bool all_to_all,
                      int k) {
    const auto type = planes == 1
                          ? topo::NetworkType::kSerialLow
                          : topo::NetworkType::kParallelHeterogeneous;
    exp::ExperimentSpec spec;
    spec.name = name;
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    spec.trials = trials;
    return experiment.add(
        std::move(spec), [=](const exp::TrialContext& ctx) {
          const auto net = topo::build_network(bench::make_spec(
              topo::TopoKind::kJellyfish, type, hosts, planes, ctx.seed));
          Rng rng(mix64(ctx.seed));
          const auto pairs =
              all_to_all ? workload::rack_all_to_all_pairs(net)
                         : workload::permutation_pairs(net.num_hosts(), rng);
          const double active_hosts = static_cast<double>(
              all_to_all ? net.num_racks() : net.num_hosts());
          const auto run =
              bench::lp_throughput(net, pairs, LpScheme::kKsp, k, eps);
          exp::TrialResult r;
          r.metrics["norm_tput"] = run.total_throughput_bps /
                                   (active_hosts * net.spec().base_rate_bps);
          return r;
        });
  };

  const std::vector<int> plane_counts = {1, 2, 4, 8};
  const std::vector<int> ks = {1, 2, 4, 8, 16, 32};

  for (const bool all_to_all : {true, false}) {
    for (int n : plane_counts) {
      add_cell(std::string(all_to_all ? "a2a" : "perm") + "/ksp8/planes=" +
                   std::to_string(n),
               n, all_to_all, 8);
    }
  }
  for (int k : ks) {
    for (int n : {1, 2, 4}) {
      add_cell("perm/ksp/k=" + std::to_string(k) +
                   "/planes=" + std::to_string(n),
               n, false, k);
    }
  }

  const auto results = experiment.run();
  std::size_t next = 0;

  // --- (a) all-to-all + 8-way KSP, (b) permutation + 8-way KSP ---------
  for (const bool all_to_all : {true, false}) {
    TextTable table(
        std::string("Fig 8") + (all_to_all ? "a" : "b") + ": " +
            (all_to_all ? "all-to-all" : "permutation") +
            " throughput, 8-way KSP (normalized to serial low-bw)",
        {"planes", "parallel heterogeneous", "stddev",
         "serial high-bw (ideal)"});
    for (int n : plane_counts) {
      const auto s = results[next++].metric("norm_tput");
      table.add_row(std::to_string(n),
                    {s.mean, s.stddev, static_cast<double>(n)});
    }
    table.print();
  }

  // --- (c) permutation, multipath sweep --------------------------------
  TextTable sweep(
      "Fig 8c: permutation throughput vs multipath level K "
      "(normalized to serial low-bw; circled = first K saturating N planes)",
      {"K", "serial (N=1)", "parallel N=2", "parallel N=4"});
  std::map<int, int> saturation_k;
  for (int k : ks) {
    std::vector<double> row;
    for (int n : {1, 2, 4}) {
      const double mean = results[next++].metric("norm_tput").mean;
      row.push_back(mean);
      if (!saturation_k.contains(n) && mean >= 0.9 * n) {
        saturation_k[n] = k;
      }
    }
    sweep.add_row(std::to_string(k), row);
  }
  sweep.print();

  TextTable circles("Saturation multipath level (K grows with N)",
                    {"planes", "first K reaching 90% of N"});
  for (const auto& [n, k] : saturation_k) {
    circles.add_row(std::to_string(n), {static_cast<double>(k)}, 0);
  }
  circles.print();
  return experiment.finish();
}
