// Figure 13: published datacenter flow traces.
//   (a) flow-size CDFs of the five traces (websearch, datamining,
//       webserver, cache, hadoop);
//   (b) Datamining FCT distribution on Jellyfish, 100/400G;
//   (c) Websearch FCT distribution on Jellyfish, 100/400G.
//
// Setup mirrors §5.3: four concurrent closed-loop flows per host, sizes
// drawn from the trace, single-path routing, four network types. Expected
// shape: short-flow traces (datamining) get lower latency on P-Nets —
// especially heterogeneous — via shorter paths and better tolerance of
// concurrent flows; throughput-bound traces (websearch) see P-Nets close
// most of the gap to serial high-bw.
//
// Part (a) is pure distribution sampling and stays inline; parts (b)/(c)
// are one custom-engine cell per (trace, network type), fanned over
// --threads by exp::Runner.
//
// Usage: bench_fig13 [--hosts=64] [--planes=4] [--rounds=8] [--seed=1]
//        [--cap_mb=16]  (--scale=paper: 686 hosts, more rounds, no cap)
#include "common.hpp"
#include "workload/apps.hpp"
#include "workload/traces.hpp"

using namespace pnet;

namespace {

exp::TrialResult run_trace(topo::NetworkType type, workload::Trace trace,
                           int hosts, int planes, int rounds,
                           std::uint64_t cap_bytes,
                           const exp::TrialContext& ctx) {
  const auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type,
                                     hosts, planes, ctx.seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;  // single path, §5.3
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;
  core::SimHarness harness({.spec = spec, .policy = policy, .sim_config = sim_config});

  const auto& dist = workload::FlowSizeDistribution::of(trace);
  workload::ClosedLoopApp::Config config;
  config.concurrent_per_host = 4;  // saturating closed loop, §5.3
  config.rounds_per_worker = rounds;
  config.seed = mix64(ctx.seed);
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [&dist, cap_bytes](Rng& rng) { return dist.sample(rng, cap_bytes); });
  app.start(0);
  harness.run();

  exp::TrialResult r;
  r.fct_us = app.completion_times_us();
  r.flows_started = static_cast<std::uint64_t>(harness.net().num_hosts()) *
                    4ULL * static_cast<std::uint64_t>(rounds);
  r.flows_finished = r.fct_us.size();
  r.delivered_bytes =
      static_cast<double>(harness.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(harness.events().now());
  r.events = harness.events().dispatched();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 13: published DC flow traces", flags,
                      "bench_fig13: trace-driven closed-loop FCTs\n"
                      "\n"
                      "  --hosts=N    hosts (default 64; paper 686)\n"
                      "  --planes=N   dataplanes (default 4)\n"
                      "  --rounds=N   trace rounds (default 8; paper 40)\n"
                      "  --cap_mb=N   cap trace flow sizes at N MB, "
                      "0 = uncapped\n"
                      "  --seed=N     base seed (default 1)\n");
  const bool paper = flags.paper_scale();
  const int hosts = flags.get_int("hosts", paper ? 686 : 64);
  const int planes = flags.get_int("planes", 4);
  const int rounds = flags.get_int("rounds", paper ? 40 : 8);
  const std::uint64_t cap =
      static_cast<std::uint64_t>(flags.get_i64("cap_mb", paper ? 0 : 16)) *
      1'000'000ULL;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  // --- (a) flow size CDFs ----------------------------------------------
  TextTable sizes("Fig 13a: flow size CDF anchors (bytes at percentile)",
                  {"trace", "p10", "p50", "p90", "p99", "mean"});
  for (auto trace : workload::kAllTraces) {
    const auto& dist = workload::FlowSizeDistribution::of(trace);
    Rng rng(1);
    std::vector<double> samples;
    for (int i = 0; i < 50000; ++i) {
      samples.push_back(static_cast<double>(dist.sample(rng)));
    }
    const auto ps = percentiles(samples, {10, 50, 90, 99});
    sizes.add_row(workload::to_string(trace),
                  {ps[0], ps[1], ps[2], ps[3], dist.mean_bytes()}, 0);
  }
  sizes.print();

  // --- (b)/(c) FCT distributions on Jellyfish 100/400G ------------------
  const workload::Trace traces[] = {workload::Trace::kDataMining,
                                    workload::Trace::kWebSearch};
  bench::Experiment experiment(flags, "fig13");
  for (auto trace : traces) {
    for (auto type : bench::kAllTypes) {
      exp::ExperimentSpec spec;
      spec.name = std::string(workload::to_string(trace)) + "/" +
                  topo::to_string(type);
      spec.engine = exp::EngineKind::kCustom;
      spec.seed = seed;
      spec.trials = experiment.trials(1);
      experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
        return run_trace(type, trace, hosts, planes, rounds, cap, ctx);
      });
    }
  }
  const auto results = experiment.run();
  const std::size_t num_types = std::size(bench::kAllTypes);

  for (std::size_t t = 0; t < std::size(traces); ++t) {
    const char* label = traces[t] == workload::Trace::kDataMining
                            ? "Fig 13b" : "Fig 13c";
    TextTable table(std::string(label) + ": " +
                        workload::to_string(traces[t]) +
                        " FCT (us) on Jellyfish, single-path closed loop",
                    {"network", "median", "p90", "p99", "mean"});
    for (std::size_t j = 0; j < num_types; ++j) {
      const auto s = results[t * num_types + j].fct();
      table.add_row(topo::to_string(bench::kAllTypes[j]),
                    {s.median, s.p90, s.p99, s.mean}, 1);
    }
    table.print();
    for (std::size_t j = 0; j < num_types; ++j) {
      bench::print_cdf(
          std::string(label) + " CDF: " +
              topo::to_string(bench::kAllTypes[j]),
          Cdf::from_samples(results[t * num_types + j].merged_fct_us()),
          "FCT (us)", 12);
    }
  }
  return experiment.finish();
}
