// Figure 13: published datacenter flow traces.
//   (a) flow-size CDFs of the five traces (websearch, datamining,
//       webserver, cache, hadoop);
//   (b) Datamining FCT distribution on Jellyfish, 100/400G;
//   (c) Websearch FCT distribution on Jellyfish, 100/400G.
//
// Setup mirrors §5.3: four concurrent closed-loop flows per host, sizes
// drawn from the trace, single-path routing, four network types. Expected
// shape: short-flow traces (datamining) get lower latency on P-Nets —
// especially heterogeneous — via shorter paths and better tolerance of
// concurrent flows; throughput-bound traces (websearch) see P-Nets close
// most of the gap to serial high-bw.
//
// Usage: bench_fig13 [--hosts=64] [--planes=4] [--rounds=8] [--seed=1]
//        [--cap_mb=16]  (--scale=paper: 686 hosts, more rounds, no cap)
#include "common.hpp"
#include "workload/apps.hpp"
#include "workload/traces.hpp"

using namespace pnet;

namespace {

std::vector<double> run_trace(topo::NetworkType type, workload::Trace trace,
                              int hosts, int planes, int rounds,
                              std::uint64_t cap_bytes, std::uint64_t seed) {
  const auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type,
                                     hosts, planes, seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;  // single path, §5.3
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;
  core::SimHarness harness(spec, policy, sim_config);

  const auto& dist = workload::FlowSizeDistribution::of(trace);
  workload::ClosedLoopApp::Config config;
  config.concurrent_per_host = 4;  // saturating closed loop, §5.3
  config.rounds_per_worker = rounds;
  config.seed = seed * 0x51 + 3;
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [&dist, cap_bytes](Rng& rng) { return dist.sample(rng, cap_bytes); });
  app.start(0);
  harness.run();
  return app.completion_times_us();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 13: published DC flow traces", flags,
                      "bench_fig13: trace-driven closed-loop FCTs\n"
                      "\n"
                      "  --hosts=N    hosts (default 64; paper 686)\n"
                      "  --planes=N   dataplanes (default 4)\n"
                      "  --rounds=N   trace rounds (default 8; paper 40)\n"
                      "  --cap_mb=N   cap trace flow sizes at N MB, "
                      "0 = uncapped\n"
                      "  --seed=N     base seed (default 1)\n");
  const bool paper = flags.paper_scale();
  const int hosts = flags.get_int("hosts", paper ? 686 : 64);
  const int planes = flags.get_int("planes", 4);
  const int rounds = flags.get_int("rounds", paper ? 40 : 8);
  const std::uint64_t cap =
      static_cast<std::uint64_t>(flags.get_i64("cap_mb", paper ? 0 : 16)) *
      1'000'000ULL;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  // --- (a) flow size CDFs ----------------------------------------------
  TextTable sizes("Fig 13a: flow size CDF anchors (bytes at percentile)",
                  {"trace", "p10", "p50", "p90", "p99", "mean"});
  for (auto trace : workload::kAllTraces) {
    const auto& dist = workload::FlowSizeDistribution::of(trace);
    Rng rng(1);
    std::vector<double> samples;
    for (int i = 0; i < 50000; ++i) {
      samples.push_back(static_cast<double>(dist.sample(rng)));
    }
    const auto ps = percentiles(samples, {10, 50, 90, 99});
    sizes.add_row(workload::to_string(trace),
                  {ps[0], ps[1], ps[2], ps[3], dist.mean_bytes()}, 0);
  }
  sizes.print();

  // --- (b)/(c) FCT distributions on Jellyfish 100/400G ------------------
  for (auto trace : {workload::Trace::kDataMining,
                     workload::Trace::kWebSearch}) {
    const char* label =
        trace == workload::Trace::kDataMining ? "Fig 13b" : "Fig 13c";
    TextTable table(std::string(label) + ": " + workload::to_string(trace) +
                        " FCT (us) on Jellyfish, single-path closed loop",
                    {"network", "median", "p90", "p99", "mean"});
    std::vector<std::pair<std::string, std::vector<double>>> cdfs;
    for (auto type : bench::kAllTypes) {
      auto samples =
          run_trace(type, trace, hosts, planes, rounds, cap, seed);
      const auto s = bench::summarize(samples);
      table.add_row(topo::to_string(type),
                    {s.median, s.p90, s.p99, s.mean}, 1);
      cdfs.emplace_back(topo::to_string(type), std::move(samples));
    }
    table.print();
    for (auto& [name, samples] : cdfs) {
      bench::print_cdf(std::string(label) + " CDF: " + name,
                       Cdf::from_samples(std::move(samples)), "FCT (us)",
                       12);
    }
  }
  return 0;
}
