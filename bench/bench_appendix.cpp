// Appendix A (Figs 16-20): FCT distributions for all five published traces
// at two speed grades (10/40G and 100/400G) on both topologies (fat tree
// and Jellyfish), four network types each.
//
// The paper's appendix findings: at 10/40G, P-Nets cut latency on most
// flows (better load balancing across planes); at 100/400G the
// heterogeneous path-length advantage lets short flows beat even the ideal
// 400G serial network. Fat trees have no heterogeneous variant, so those
// cells are skipped, as in the paper.
//
// One custom-engine cell per (trace, grade, topology, type); the whole
// grid fans out through exp::Runner.
//
// Usage: bench_appendix [--hosts=48] [--rounds=4] [--seed=1] [--cap_mb=8]
#include "common.hpp"
#include "workload/apps.hpp"
#include "workload/traces.hpp"

using namespace pnet;

namespace {

exp::TrialResult run_config(topo::TopoKind kind, topo::NetworkType type,
                            workload::Trace trace, int hosts,
                            double base_rate, int rounds,
                            std::uint64_t cap_bytes,
                            const exp::TrialContext& ctx) {
  auto spec = bench::make_spec(kind, type, hosts, 4, ctx.seed);
  spec.base_rate_bps = base_rate;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;
  core::SimHarness harness({.spec = spec, .policy = policy, .sim_config = sim_config});

  const auto& dist = workload::FlowSizeDistribution::of(trace);
  workload::ClosedLoopApp::Config config;
  config.concurrent_per_host = 2;
  config.rounds_per_worker = rounds;
  config.seed = mix64(ctx.seed);
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [&dist, cap_bytes](Rng& rng) { return dist.sample(rng, cap_bytes); });
  app.start(0);
  harness.run();

  exp::TrialResult r;
  r.fct_us = app.completion_times_us();
  r.flows_started = static_cast<std::uint64_t>(harness.net().num_hosts()) *
                    2ULL * static_cast<std::uint64_t>(rounds);
  r.flows_finished = r.fct_us.size();
  r.delivered_bytes =
      static_cast<double>(harness.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(harness.events().now());
  r.events = harness.events().dispatched();
  return r;
}

bool skip_cell(topo::TopoKind kind, topo::NetworkType type) {
  // Fat trees have no heterogeneous instantiation (paper note).
  return kind == topo::TopoKind::kFatTree &&
         type == topo::NetworkType::kParallelHeterogeneous;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Appendix A (Figs 16-20): trace FCTs x {10/40G, 100/400G} x "
      "{fat tree, Jellyfish}",
      flags,
      "bench_appendix: appendix A trace FCT grid\n"
      "\n"
      "  --hosts=N    hosts per network (default 48; paper 250)\n"
      "  --rounds=N   trace rounds (default 4; paper 20)\n"
      "  --cap_mb=N   cap trace flow sizes at N MB, 0 = uncapped\n"
      "  --seed=N     topology/trace seed (default 1)\n");
  const bool paper = flags.paper_scale();
  const int hosts = flags.get_int("hosts", paper ? 250 : 48);
  const int rounds = flags.get_int("rounds", paper ? 20 : 4);
  const std::uint64_t cap =
      static_cast<std::uint64_t>(flags.get_i64("cap_mb", paper ? 0 : 8)) *
      1'000'000ULL;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  // Paper order: websearch (16), webserver (17), cache (18), hadoop (19),
  // datamining (20).
  const workload::Trace order[] = {
      workload::Trace::kWebSearch, workload::Trace::kWebServer,
      workload::Trace::kCache, workload::Trace::kHadoop,
      workload::Trace::kDataMining};
  const double rates[] = {10e9, 100e9};
  const topo::TopoKind kinds[] = {topo::TopoKind::kFatTree,
                                  topo::TopoKind::kJellyfish};

  bench::Experiment experiment(flags, "appendix");
  for (auto trace : order) {
    for (double base_rate : rates) {
      for (auto kind : kinds) {
        for (auto type : bench::kAllTypes) {
          if (skip_cell(kind, type)) continue;
          exp::ExperimentSpec spec;
          spec.name = std::string(workload::to_string(trace)) + "/" +
                      (base_rate == 10e9 ? "10G" : "100G") + "/" +
                      topo::to_string(kind) + "/" + topo::to_string(type);
          spec.engine = exp::EngineKind::kCustom;
          spec.seed = seed;
          spec.trials = experiment.trials(1);
          experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
            return run_config(kind, type, trace, hosts, base_rate, rounds,
                              cap, ctx);
          });
        }
      }
    }
  }
  const auto results = experiment.run();

  const int figure_base = 16;
  int figure = figure_base;
  std::size_t next = 0;
  for (auto trace : order) {
    for (double base_rate : rates) {
      for (auto kind : kinds) {
        const std::string grade =
            base_rate == 10e9 ? "10/40G" : "100/400G";
        TextTable table("Fig " + std::to_string(figure) + " (" +
                            workload::to_string(trace) + ", " + grade +
                            ", " + topo::to_string(kind) + "): FCT (us)",
                        {"network", "median", "p90", "p99"});
        for (auto type : bench::kAllTypes) {
          if (skip_cell(kind, type)) continue;
          const auto s = results[next++].fct();
          table.add_row(topo::to_string(type), {s.median, s.p90, s.p99}, 1);
        }
        table.print();
      }
    }
    ++figure;
  }
  return experiment.finish();
}
