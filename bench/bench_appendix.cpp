// Appendix A (Figs 16-20): FCT distributions for all five published traces
// at two speed grades (10/40G and 100/400G) on both topologies (fat tree
// and Jellyfish), four network types each.
//
// The paper's appendix findings: at 10/40G, P-Nets cut latency on most
// flows (better load balancing across planes); at 100/400G the
// heterogeneous path-length advantage lets short flows beat even the ideal
// 400G serial network. Fat trees have no heterogeneous variant, so that
// column prints the homogeneous P-Net twice less one row, as in the paper.
//
// Usage: bench_appendix [--hosts=48] [--rounds=4] [--seed=1] [--cap_mb=8]
#include "common.hpp"
#include "workload/apps.hpp"
#include "workload/traces.hpp"

using namespace pnet;

namespace {

std::vector<double> run_config(topo::TopoKind kind, topo::NetworkType type,
                               workload::Trace trace, int hosts,
                               double base_rate, int rounds,
                               std::uint64_t cap_bytes, std::uint64_t seed) {
  auto spec = bench::make_spec(kind, type, hosts, 4, seed);
  spec.base_rate_bps = base_rate;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;
  core::SimHarness harness(spec, policy, sim_config);

  const auto& dist = workload::FlowSizeDistribution::of(trace);
  workload::ClosedLoopApp::Config config;
  config.concurrent_per_host = 2;
  config.rounds_per_worker = rounds;
  config.seed = seed * 29 + 11;
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [&dist, cap_bytes](Rng& rng) { return dist.sample(rng, cap_bytes); });
  app.start(0);
  harness.run();
  return app.completion_times_us();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Appendix A (Figs 16-20): trace FCTs x {10/40G, 100/400G} x "
      "{fat tree, Jellyfish}",
      flags,
      "bench_appendix: appendix A trace FCT grid\n"
      "\n"
      "  --hosts=N    hosts per network (default 48; paper 250)\n"
      "  --rounds=N   trace rounds (default 4; paper 20)\n"
      "  --cap_mb=N   cap trace flow sizes at N MB, 0 = uncapped\n"
      "  --seed=N     topology/trace seed (default 1)\n");
  const bool paper = flags.paper_scale();
  const int hosts = flags.get_int("hosts", paper ? 250 : 48);
  const int rounds = flags.get_int("rounds", paper ? 20 : 4);
  const std::uint64_t cap =
      static_cast<std::uint64_t>(flags.get_i64("cap_mb", paper ? 0 : 8)) *
      1'000'000ULL;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  const int figure_base = 16;
  int figure = figure_base;
  // Paper order: websearch (16), webserver (17), cache (18), hadoop (19),
  // datamining (20).
  const workload::Trace order[] = {
      workload::Trace::kWebSearch, workload::Trace::kWebServer,
      workload::Trace::kCache, workload::Trace::kHadoop,
      workload::Trace::kDataMining};

  for (auto trace : order) {
    for (double base_rate : {10e9, 100e9}) {
      for (auto kind :
           {topo::TopoKind::kFatTree, topo::TopoKind::kJellyfish}) {
        const std::string grade =
            base_rate == 10e9 ? "10/40G" : "100/400G";
        TextTable table("Fig " + std::to_string(figure) + " (" +
                            workload::to_string(trace) + ", " + grade +
                            ", " + topo::to_string(kind) + "): FCT (us)",
                        {"network", "median", "p90", "p99"});
        for (auto type : bench::kAllTypes) {
          // Fat trees have no heterogeneous instantiation (paper note).
          if (kind == topo::TopoKind::kFatTree &&
              type == topo::NetworkType::kParallelHeterogeneous) {
            continue;
          }
          const auto samples = run_config(kind, type, trace, hosts,
                                          base_rate, rounds, cap, seed);
          const auto s = bench::summarize(samples);
          table.add_row(topo::to_string(type), {s.median, s.p90, s.p99}, 1);
        }
        table.print();
      }
    }
    ++figure;
  }
  return 0;
}
