// Dynamic fault recovery: goodput timelines through a mid-run plane flap
// and a lossy-cable episode, serial vs parallel P-Nets (§3.4).
//
// A Jellyfish permutation workload of long bulk flows runs on the serial
// low-bandwidth network (N=1) and on 4-plane homogeneous/heterogeneous
// P-Nets. Mid-run, plane 0 (the only plane, for serial) dies and comes
// back; later a handful of cables run at a packet loss rate for a while.
// End hosts detect the plane outage after a link-status propagation delay
// and repath live flows onto surviving planes — so the P-Nets dip by
// roughly 1/N and close the gap within the detection delay, while the
// serial network collapses to zero for the whole outage. A detection-delay
// sweep at the end shows time-to-recover tracking the delay.
//
// Seven custom-engine cells (3 timeline networks + 4 sweep delays), fanned
// out by exp::Runner. The goodput timeline comes from the harness's
// telemetry::Sampler ("goodput_bps" series, exported in the report's
// telemetry block); the recovery report becomes cell metrics. The
// bulk flows intentionally outlive the horizon (the timeline measures the
// fabric, not flow arrivals), so the cells report no started/finished
// flow counts.
//
// With --inject-trial-faults the bench doubles as the resilience layer's
// end-to-end exercise: three extra cells host a trial that throws once
// (healed by --retries), a trial that always throws, and a trial that
// hangs until the --trial-timeout watchdog fires — so the committed JSON
// sample carries a populated `errors` block with deterministic taxonomy
// entries next to the healthy timeline cells.
//
// Usage: bench_fault_recovery [--hosts=16] [--seed=1] [--fail-rate=0.05]
//                             [--flap-period=20] [--detect-delay=1]
//                             [--inject-trial-faults]
// Run with --help for flag semantics.
#include <atomic>
#include <chrono>
#include <memory>

#include "analysis/recovery.hpp"
#include "common.hpp"
#include "control/link_state_bus.hpp"
#include "core/health_monitor.hpp"
#include "sim/faults.hpp"

using namespace pnet;

namespace {

struct Scenario {
  int hosts = 16;
  bool paper_scale = false;
  double fail_rate = 0.05;
  SimTime flap_down = 20 * units::kMillisecond;
  SimTime detect_delay = units::kMillisecond;

  SimTime horizon = 100 * units::kMillisecond;
  SimTime bucket = 2 * units::kMillisecond;
  SimTime flap_at = 40 * units::kMillisecond;
  SimTime lossy_at = 70 * units::kMillisecond;
  SimTime lossy_duration = 15 * units::kMillisecond;
  int lossy_cables = 3;
};

exp::TrialResult run_network(topo::NetworkType type, const Scenario& sc,
                             SimTime detect_delay,
                             const exp::TrialContext& ctx) {
  auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type, sc.hosts, 4,
                               ctx.seed);
  if (!sc.paper_scale) {
    // Pin a small non-complete Jellyfish (5-regular on 8 switches). The
    // default shape derivation clamps small runs to an 11-switch 10-regular
    // graph — the complete graph, where every seed wires identically and
    // heterogeneous planes degenerate to homogeneous ones.
    spec.jf_switches = 8;
    spec.jf_degree = 5;
    spec.jf_hosts_per_switch = 2;
  }
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;

  // This bench's figure IS a telemetry series: the sampler always runs,
  // on the --sample-every grid when given, else on the scenario's bucket
  // width (the grid the old GoodputProbe used).
  telemetry::Config tcfg = ctx.telemetry;
  if (tcfg.sample_every <= 0) tcfg.sample_every = sc.bucket;
  const auto tel = std::make_shared<telemetry::Telemetry>(tcfg);

  core::SimHarness h({.spec = spec,
                      .policy = policy,
                      .telemetry = tel.get(),
                      .sample_route_cache = true,
                      .sim_threads = ctx.sim_threads});

  core::HealthMonitor monitor(h.events(), {.detect_delay = detect_delay});
  monitor.add_selector(h.selector());
  monitor.set_factory(h.factory());
  monitor.set_trace(&tel->trace);
  h.selector().enable_repath(h.factory());
  sim::FaultInjector injector(h.events(), h.network());
  // Fabric events fan out through the LinkStateBus (DESIGN.md §5j) — the
  // same wiring monitor.observe(injector) used to make directly, now one
  // observer API shared with route caches and the adaptive controller.
  control::LinkStateBus bus;
  bus.subscribe_health_monitor(monitor);
  bus.attach(injector);

  sim::FaultPlan plan;
  plan.flap_plane(sc.flap_at, sc.flap_down, 0);
  plan.merge(sim::FaultPlan::random_degraded_links(
      h.net(), sc.lossy_cables, sc.lossy_at, sc.lossy_duration, sc.fail_rate,
      1.0, mix64(ctx.seed + 17)));
  injector.arm(plan);

  // Long bulk flows (one per permutation pair) that outlive the horizon,
  // so the timeline measures the fabric, not flow arrivals/departures.
  Rng rng(mix64(ctx.seed + 7));
  for (const auto& [src, dst] :
       workload::permutation_pairs(h.net().num_hosts(), rng)) {
    h.starter()(src, dst, 100 * units::kGB, 0, {});
  }
  h.run_until(sc.horizon);

  exp::TrialResult r;
  // The goodput timeline comes straight off the harness sampler (the
  // "goodput_bps" rate series over delivered bytes); repackage its grid as
  // GoodputProbe samples for the episode analysis.
  const std::vector<double>* goodput = tel->sampler.find("goodput_bps");
  std::vector<analysis::GoodputProbe::Sample> samples;
  if (goodput != nullptr) {
    for (std::size_t i = 0; i < tel->sampler.times().size(); ++i) {
      samples.push_back({tel->sampler.times()[i], (*goodput)[i]});
    }
  }
  const auto episodes =
      analysis::plane_episodes(injector.applied(), monitor.detections());
  // Judge the episode against steady-state buckets only: the slow-start
  // ramp right after t=0 would otherwise drag the baseline down and make
  // any dip look "recovered" immediately.
  std::vector<analysis::GoodputProbe::Sample> steady;
  for (const auto& s : samples) {
    if (s.t_end > sc.flap_at / 2) steady.push_back(s);
  }
  const auto flap = analysis::analyze_episode(steady, episodes.front(),
                                              /*recovered_fraction=*/0.8);
  r.metrics["baseline_gbps"] = flap.baseline_goodput_bps / units::kGbps;
  r.metrics["dip_gbps"] = flap.dip_goodput_bps / units::kGbps;
  r.metrics["detect_ms"] = units::to_milliseconds(flap.time_to_detect);
  r.metrics["recover_ms"] = units::to_milliseconds(flap.time_to_recover);
  r.metrics["packets_lost"] = static_cast<double>(flap.packets_lost);
  int repaths = 0;
  int timeouts = 0;
  for (const auto* src : h.factory().incomplete_tcp_flows()) {
    repaths += src->repaths();
    timeouts += src->timeouts();
  }
  r.metrics["repaths"] = static_cast<double>(repaths);
  r.metrics["timeouts"] = static_cast<double>(timeouts);
  r.delivered_bytes =
      static_cast<double>(h.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(h.events().now());
  r.events = h.dispatched();  // control queue + all shards
  exp::fold_telemetry(tel, r);
  return r;
}

/// The --inject-trial-faults cells: one flaky trial healed by --retries,
/// one deterministic failure, one hang caught by --trial-timeout. Error
/// `what` strings carry no wall-clock values, so the resulting report
/// (with --json-timing=0) stays byte-identical across runs and threads.
void add_injected_fault_cells(bench::Experiment& experiment,
                              std::uint64_t seed) {
  const auto cell_spec = [seed](const char* name) {
    exp::ExperimentSpec spec;
    spec.name = std::string("inject/") + name;
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    return spec;
  };
  const auto healthy = [](const exp::TrialContext& ctx) {
    exp::TrialResult r;
    r.flows_started = 1;
    r.flows_finished = 1;
    r.metrics["seed_lo"] = static_cast<double>(ctx.seed & 0xFFFF);
    return r;
  };

  // Throws on its first attempt only: with --retries >= 1 the rerun (same
  // seed) succeeds, so this cell proves the retry path and contributes a
  // clean trial to the report.
  auto attempts = std::make_shared<std::atomic<int>>(0);
  experiment.add(cell_spec("flaky-retried"),
                 [=](const exp::TrialContext& ctx) {
                   if (attempts->fetch_add(1) == 0) {
                     throw std::runtime_error(
                         "injected transient fault (first attempt)");
                   }
                   return healthy(ctx);
                 });

  // Always throws: lands in the errors block as kind=exception even with
  // retries (every attempt fails the same way).
  experiment.add(cell_spec("always-throws"),
                 [](const exp::TrialContext&) -> exp::TrialResult {
                   throw std::runtime_error("injected permanent fault");
                 });

  // Spins until the per-trial watchdog fires: lands as kind=timeout. The
  // wall cap keeps the bench finite if run without --trial-timeout.
  experiment.add(cell_spec("hangs-until-timeout"),
                 [=](const exp::TrialContext& ctx) {
                   const auto start = std::chrono::steady_clock::now();
                   while (!ctx.cancel.cancelled() &&
                          std::chrono::steady_clock::now() - start <
                              std::chrono::seconds(10)) {
                   }
                   exp::throw_if_cancelled(ctx.cancel);
                   return healthy(ctx);  // no watchdog armed: wall cap hit
                 });
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Fault recovery: plane flap + lossy-cable episode, serial vs P-Net",
      flags,
      "bench_fault_recovery: goodput dip-and-recover under dynamic faults\n"
      "\n"
      "  --hosts=N         hosts in every network (default 16; 64 with\n"
      "                    --scale=paper)\n"
      "  --seed=N          seed for the Jellyfish wiring, the permutation\n"
      "                    workload, and the lossy-cable draw (default 1)\n"
      "  --fail-rate=F     packet loss probability per degraded cable\n"
      "                    during the lossy episode, 0..1 (default 0.05)\n"
      "  --flap-period=MS  how long plane 0 stays down in the mid-run flap,\n"
      "                    milliseconds (default 20)\n"
      "  --detect-delay=MS link-status propagation delay before hosts react\n"
      "                    to a plane transition; 0 = instantaneous oracle\n"
      "                    (default 1). The sweep at the end varies this.\n"
      "  --inject-trial-faults  add three fault-injection cells (a flaky\n"
      "                    trial healed by --retries, a permanent throw,\n"
      "                    and a hang caught by --trial-timeout) so the\n"
      "                    JSON report exercises the errors block\n");

  Scenario sc;
  sc.paper_scale = flags.paper_scale();
  sc.hosts = flags.get_int("hosts", sc.paper_scale ? 64 : 16);
  sc.fail_rate = flags.get_double("fail-rate", 0.05);
  sc.flap_down = static_cast<SimTime>(
      flags.get_double("flap-period", 20.0) * units::kMillisecond);
  sc.detect_delay = static_cast<SimTime>(
      flags.get_double("detect-delay", 1.0) * units::kMillisecond);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  const topo::NetworkType types[] = {
      topo::NetworkType::kSerialLow,
      topo::NetworkType::kParallelHomogeneous,
      topo::NetworkType::kParallelHeterogeneous,
  };
  const char* names[] = {"serial-low", "par-hom", "par-het"};
  const double sweep_delays_ms[] = {0.0, 1.0, 5.0, 20.0};

  bench::Experiment experiment(flags, "fault_recovery");
  for (std::size_t i = 0; i < std::size(types); ++i) {
    exp::ExperimentSpec spec;
    spec.name = std::string("timeline/") + names[i];
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    const auto type = types[i];
    experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
      return run_network(type, sc, sc.detect_delay, ctx);
    });
  }
  for (const double delay_ms : sweep_delays_ms) {
    exp::ExperimentSpec spec;
    spec.name = "sweep/detect=" + format_double(delay_ms, 1) + "ms";
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
      return run_network(
          topo::NetworkType::kParallelHomogeneous, sc,
          static_cast<SimTime>(delay_ms * units::kMillisecond), ctx);
    });
  }
  const bool inject = flags.get_bool("inject-trial-faults", false);
  if (inject) add_injected_fault_cells(experiment, seed);
  const auto results = experiment.run();

  std::printf("plane 0 down %.0f-%.0f ms; %d cables at %.0f%% loss "
              "%.0f-%.0f ms; detect delay %.1f ms\n\n",
              units::to_milliseconds(sc.flap_at),
              units::to_milliseconds(sc.flap_at + sc.flap_down),
              sc.lossy_cables, sc.fail_rate * 100.0,
              units::to_milliseconds(sc.lossy_at),
              units::to_milliseconds(sc.lossy_at + sc.lossy_duration),
              units::to_milliseconds(sc.detect_delay));

  TextTable timeline("Goodput timeline (Gb/s per bucket)",
                     {"t (ms)", "serial-low", "par-hom", "par-het"});
  const auto t_us = results[0].merged_samples("tm/t_us");
  for (std::size_t b = 1; b < t_us.size(); b += 2) {
    std::vector<double> row;
    for (std::size_t i = 0; i < std::size(types); ++i) {
      row.push_back(results[i].merged_samples("tm/goodput_bps")[b] /
                    units::kGbps);
    }
    timeline.add_row(format_double(t_us[b] / 1000.0, 0), row, 1);
  }
  timeline.print();

  TextTable report("Plane-flap episode recovery",
                   {"network", "baseline Gb/s", "dip Gb/s", "detect (ms)",
                    "recover (ms)", "pkts lost", "repaths"});
  for (std::size_t i = 0; i < std::size(types); ++i) {
    const auto& cell = results[i];
    report.add_row(names[i],
                   {cell.metric("baseline_gbps").mean,
                    cell.metric("dip_gbps").mean,
                    cell.metric("detect_ms").mean,
                    cell.metric("recover_ms").mean,
                    cell.metric("packets_lost").mean,
                    cell.metric("repaths").mean},
                   1);
  }
  report.print();

  TextTable sweep("Detection-delay sweep (par-hom, same flap)",
                  {"detect delay (ms)", "recover (ms)"});
  for (std::size_t i = 0; i < std::size(sweep_delays_ms); ++i) {
    sweep.add_row(format_double(sweep_delays_ms[i], 1),
                  {results[std::size(types) + i].metric("recover_ms").mean},
                  1);
  }
  sweep.print();

  if (inject) {
    TextTable injected("Injected-fault cells (resilience exercise)",
                       {"cell", "ok trials", "errors", "first error"});
    for (std::size_t i = std::size(types) + std::size(sweep_delays_ms);
         i < results.size(); ++i) {
      const auto& cell = results[i];
      injected.add_row(
          {cell.spec.name, std::to_string(cell.trials.size()),
           std::to_string(cell.errors.size()),
           cell.errors.empty() ? "-"
                               : exp::to_string(cell.errors.front().kind)});
    }
    injected.print();
  }

  std::printf(
      "The P-Nets lose ~1/4 of their goodput for about the detection delay\n"
      "and recover by repathing live flows onto the surviving planes; the\n"
      "serial network has nowhere to go and delivers ~0 for the entire\n"
      "outage (plus RTO-backoff tail after recovery). The lossy episode\n"
      "only dents goodput: retransmissions ride the same or other planes.\n");
  return experiment.finish();
}
