// Dynamic fault recovery: goodput timelines through a mid-run plane flap
// and a lossy-cable episode, serial vs parallel P-Nets (§3.4).
//
// A Jellyfish permutation workload of long bulk flows runs on the serial
// low-bandwidth network (N=1) and on 4-plane homogeneous/heterogeneous
// P-Nets. Mid-run, plane 0 (the only plane, for serial) dies and comes
// back; later a handful of cables run at a packet loss rate for a while.
// End hosts detect the plane outage after a link-status propagation delay
// and repath live flows onto surviving planes — so the P-Nets dip by
// roughly 1/N and close the gap within the detection delay, while the
// serial network collapses to zero for the whole outage. A detection-delay
// sweep at the end shows time-to-recover tracking the delay.
//
// Usage: bench_fault_recovery [--hosts=16] [--seed=1] [--fail-rate=0.05]
//                             [--flap-period=20] [--detect-delay=1]
// Run with --help for flag semantics.
#include "analysis/recovery.hpp"
#include "common.hpp"
#include "core/health_monitor.hpp"
#include "sim/faults.hpp"

using namespace pnet;

namespace {

struct Scenario {
  int hosts = 16;
  bool paper_scale = false;
  std::uint64_t seed = 1;
  double fail_rate = 0.05;
  SimTime flap_down = 20 * units::kMillisecond;
  SimTime detect_delay = units::kMillisecond;

  SimTime horizon = 100 * units::kMillisecond;
  SimTime bucket = 2 * units::kMillisecond;
  SimTime flap_at = 40 * units::kMillisecond;
  SimTime lossy_at = 70 * units::kMillisecond;
  SimTime lossy_duration = 15 * units::kMillisecond;
  int lossy_cables = 3;
};

struct RunResult {
  std::vector<analysis::GoodputProbe::Sample> samples;
  analysis::RecoveryReport flap;
  int repaths = 0;
  int timeouts = 0;
};

RunResult run_network(topo::NetworkType type, const Scenario& sc,
                      SimTime detect_delay) {
  auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type, sc.hosts, 4,
                               sc.seed);
  if (!sc.paper_scale) {
    // Pin a small non-complete Jellyfish (5-regular on 8 switches). The
    // default shape derivation clamps small runs to an 11-switch 10-regular
    // graph — the complete graph, where every seed wires identically and
    // heterogeneous planes degenerate to homogeneous ones.
    spec.jf_switches = 8;
    spec.jf_degree = 5;
    spec.jf_hosts_per_switch = 2;
  }
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;
  core::SimHarness h(spec, policy);

  core::HealthMonitor monitor(h.events(), {.detect_delay = detect_delay});
  monitor.add_selector(h.selector());
  monitor.set_factory(h.factory());
  h.selector().enable_repath(h.factory());
  sim::FaultInjector injector(h.events(), h.network());
  monitor.observe(injector);

  sim::FaultPlan plan;
  plan.flap_plane(sc.flap_at, sc.flap_down, 0);
  plan.merge(sim::FaultPlan::random_degraded_links(
      h.net(), sc.lossy_cables, sc.lossy_at, sc.lossy_duration, sc.fail_rate,
      1.0, sc.seed * 17 + 3));
  injector.arm(plan);

  analysis::GoodputProbe probe(
      h.events(), [&h] { return h.factory().total_delivered_bytes(); },
      sc.bucket, sc.horizon);
  probe.start(0);

  // Long bulk flows (one per permutation pair) that outlive the horizon,
  // so the timeline measures the fabric, not flow arrivals/departures.
  Rng rng(sc.seed * 7 + 5);
  for (const auto& [src, dst] :
       workload::permutation_pairs(h.net().num_hosts(), rng)) {
    h.starter()(src, dst, 100 * units::kGB, 0, {});
  }
  h.run_until(sc.horizon);

  RunResult result;
  result.samples = probe.samples();
  const auto episodes =
      analysis::plane_episodes(injector.applied(), monitor.detections());
  // Judge the episode against steady-state buckets only: the slow-start
  // ramp right after t=0 would otherwise drag the baseline down and make
  // any dip look "recovered" immediately.
  std::vector<analysis::GoodputProbe::Sample> steady;
  for (const auto& s : result.samples) {
    if (s.t_end > sc.flap_at / 2) steady.push_back(s);
  }
  result.flap = analysis::analyze_episode(steady, episodes.front(),
                                          /*recovered_fraction=*/0.8);
  for (const auto* src : h.factory().incomplete_tcp_flows()) {
    result.repaths += src->repaths();
    result.timeouts += src->timeouts();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Fault recovery: plane flap + lossy-cable episode, serial vs P-Net",
      flags,
      "bench_fault_recovery: goodput dip-and-recover under dynamic faults\n"
      "\n"
      "  --hosts=N         hosts in every network (default 16; 64 with\n"
      "                    --scale=paper)\n"
      "  --seed=N          seed for the Jellyfish wiring, the permutation\n"
      "                    workload, and the lossy-cable draw (default 1)\n"
      "  --fail-rate=F     packet loss probability per degraded cable\n"
      "                    during the lossy episode, 0..1 (default 0.05)\n"
      "  --flap-period=MS  how long plane 0 stays down in the mid-run flap,\n"
      "                    milliseconds (default 20)\n"
      "  --detect-delay=MS link-status propagation delay before hosts react\n"
      "                    to a plane transition; 0 = instantaneous oracle\n"
      "                    (default 1). The sweep at the end varies this.\n");

  Scenario sc;
  sc.paper_scale = flags.paper_scale();
  sc.hosts = flags.get_int("hosts", sc.paper_scale ? 64 : 16);
  sc.seed = static_cast<std::uint64_t>(flags.get_i64("seed", 1));
  sc.fail_rate = flags.get_double("fail-rate", 0.05);
  sc.flap_down = static_cast<SimTime>(
      flags.get_double("flap-period", 20.0) * units::kMillisecond);
  sc.detect_delay = static_cast<SimTime>(
      flags.get_double("detect-delay", 1.0) * units::kMillisecond);

  const topo::NetworkType types[] = {
      topo::NetworkType::kSerialLow,
      topo::NetworkType::kParallelHomogeneous,
      topo::NetworkType::kParallelHeterogeneous,
  };
  std::vector<RunResult> results;
  for (const auto type : types) {
    results.push_back(run_network(type, sc, sc.detect_delay));
  }

  std::printf("plane 0 down %.0f-%.0f ms; %d cables at %.0f%% loss "
              "%.0f-%.0f ms; detect delay %.1f ms\n\n",
              units::to_milliseconds(sc.flap_at),
              units::to_milliseconds(sc.flap_at + sc.flap_down),
              sc.lossy_cables, sc.fail_rate * 100.0,
              units::to_milliseconds(sc.lossy_at),
              units::to_milliseconds(sc.lossy_at + sc.lossy_duration),
              units::to_milliseconds(sc.detect_delay));

  TextTable timeline("Goodput timeline (Gb/s per bucket)",
                     {"t (ms)", "serial-low", "par-hom", "par-het"});
  for (std::size_t b = 1; b < results.front().samples.size(); b += 2) {
    std::vector<double> row;
    for (const auto& r : results) {
      row.push_back(r.samples[b].goodput_bps / units::kGbps);
    }
    timeline.add_row(
        format_double(units::to_milliseconds(results[0].samples[b].t_end), 0),
        row, 1);
  }
  timeline.print();

  TextTable report("Plane-flap episode recovery",
                   {"network", "baseline Gb/s", "dip Gb/s", "detect (ms)",
                    "recover (ms)", "pkts lost", "repaths"});
  const char* names[] = {"serial-low", "par-hom", "par-het"};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& flap = results[i].flap;
    report.add_row(names[i],
                   {flap.baseline_goodput_bps / units::kGbps,
                    flap.dip_goodput_bps / units::kGbps,
                    units::to_milliseconds(flap.time_to_detect),
                    units::to_milliseconds(flap.time_to_recover),
                    static_cast<double>(flap.packets_lost),
                    static_cast<double>(results[i].repaths)},
                   1);
  }
  report.print();

  TextTable sweep("Detection-delay sweep (par-hom, same flap)",
                  {"detect delay (ms)", "recover (ms)"});
  for (const double delay_ms : {0.0, 1.0, 5.0, 20.0}) {
    const auto r = run_network(
        topo::NetworkType::kParallelHomogeneous, sc,
        static_cast<SimTime>(delay_ms * units::kMillisecond));
    sweep.add_row(format_double(delay_ms, 1),
                  {units::to_milliseconds(r.flap.time_to_recover)}, 1);
  }
  sweep.print();

  std::printf(
      "The P-Nets lose ~1/4 of their goodput for about the detection delay\n"
      "and recover by repathing live flows onto the surviving planes; the\n"
      "serial network has nowhere to go and delivers ~0 for the entire\n"
      "outage (plus RTO-backoff tail after recovery). The lossy episode\n"
      "only dents goodput: retransmissions ride the same or other planes.\n");
  return 0;
}
