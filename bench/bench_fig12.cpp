// Figure 12: simulated Hadoop-sort per-worker completion time per stage
// (read input / shuffle / write output), single-path routing, four network
// types, N = 4 dataplanes.
//
// Paper setup: 250-host cluster, 32 mappers + 32 reducers sorting 100 GB in
// 128 MB blocks, 4 concurrent blocks per worker; the shuffle is 32x32 equal
// flows. Default run scales the data down (EXPERIMENTS.md records the
// exact parameters); --scale=paper restores the full job.
//
// Expected shape: sparse stages (read/write) benefit from parallel planes
// and heterogeneous short paths; the dense shuffle brings parallel networks
// close to serial high-bw, with no extra heterogeneous win (flows collide
// on the popular short paths, §5.2.2).
//
// Usage: bench_fig12 [--hosts=100] [--mappers=16] [--reducers=16]
//        [--gb=2] [--block_mb=32] [--seed=1]
#include <array>

#include "common.hpp"
#include "workload/apps.hpp"

using namespace pnet;

namespace {

std::array<std::vector<double>, 3> run_job(topo::NetworkType type, int hosts,
                                           const workload::HadoopJob::Config&
                                               job_config,
                                           std::uint64_t seed) {
  const auto spec =
      bench::make_spec(topo::TopoKind::kJellyfish, type, hosts, 4, seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;  // single path
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;  // bulk-transfer buffers
  core::SimHarness harness(spec, policy, sim_config);

  workload::HadoopJob job(harness.starter(), harness.all_hosts(),
                          job_config);
  job.start(0);
  harness.run();
  if (!job.finished()) {
    std::fprintf(stderr, "warning: hadoop job did not finish\n");
  }
  return {job.stage_worker_times_s(0), job.stage_worker_times_s(1),
          job.stage_worker_times_s(2)};
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 12: Hadoop-like sort, per-worker stage "
                      "completion times",
                      flags,
                      "bench_fig12: Hadoop-like sort stage times\n"
                      "\n"
                      "  --hosts=N     cluster hosts (default 100)\n"
                      "  --mappers=N   map workers (default 16)\n"
                      "  --reducers=N  reduce workers (default 16)\n"
                      "  --gb=N        total sort gigabytes (default 2)\n"
                      "  --seed=N      placement seed (default 1)\n");
  const bool paper = flags.paper_scale();
  const int hosts = flags.get_int("hosts", paper ? 250 : 100);

  workload::HadoopJob::Config job_config;
  job_config.num_mappers = flags.get_int("mappers", paper ? 32 : 16);
  job_config.num_reducers = flags.get_int("reducers", paper ? 32 : 16);
  job_config.total_bytes =
      static_cast<std::uint64_t>(flags.get_i64("gb", paper ? 100 : 2)) *
      1'000'000'000ULL;
  job_config.block_bytes = static_cast<std::uint64_t>(
      flags.get_i64("block_mb", paper ? 128 : 32)) * 1'000'000ULL;
  job_config.concurrent_blocks = 4;
  job_config.seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1)) * 13 + 5;

  const char* stage_names[] = {"read input", "shuffle", "write output"};
  std::vector<std::array<std::vector<double>, 3>> per_type;
  for (auto type : bench::kAllTypes) {
    per_type.push_back(
        run_job(type, hosts, job_config, job_config.seed));
  }

  for (int stage = 0; stage < 3; ++stage) {
    TextTable table(std::string("Fig 12, stage ") + std::to_string(stage + 1) +
                        " (" + stage_names[stage] +
                        "): per-worker completion time (s)",
                    {"network", "median", "mean", "p90", "max"});
    for (std::size_t t = 0; t < per_type.size(); ++t) {
      const auto& samples = per_type[t][static_cast<std::size_t>(stage)];
      const auto s = bench::summarize(samples);
      double max_v = 0;
      for (double v : samples) max_v = std::max(max_v, v);
      table.add_row(topo::to_string(bench::kAllTypes[t]),
                    {s.median, s.mean, s.p90, max_v}, 4);
    }
    table.print();
  }
  return 0;
}
