// Figure 12: simulated Hadoop-sort per-worker completion time per stage
// (read input / shuffle / write output), single-path routing, four network
// types, N = 4 dataplanes.
//
// Paper setup: 250-host cluster, 32 mappers + 32 reducers sorting 100 GB in
// 128 MB blocks, 4 concurrent blocks per worker; the shuffle is 32x32 equal
// flows. Default run scales the data down (EXPERIMENTS.md records the
// exact parameters); --scale=paper restores the full job.
//
// Expected shape: sparse stages (read/write) benefit from parallel planes
// and heterogeneous short paths; the dense shuffle brings parallel networks
// close to serial high-bw, with no extra heterogeneous win (flows collide
// on the popular short paths, §5.2.2).
//
// One custom-engine cell per network type; the three stage timelines ride
// in the cell's named sample sets (stage1/stage2/stage3, seconds).
//
// Usage: bench_fig12 [--hosts=100] [--mappers=16] [--reducers=16]
//        [--gb=2] [--block_mb=32] [--seed=1]
#include "common.hpp"
#include "workload/apps.hpp"

using namespace pnet;

namespace {

exp::TrialResult run_job(topo::NetworkType type, int hosts,
                         workload::HadoopJob::Config job_config,
                         const exp::TrialContext& ctx) {
  const auto spec =
      bench::make_spec(topo::TopoKind::kJellyfish, type, hosts, 4, ctx.seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;  // single path
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;  // bulk-transfer buffers
  core::SimHarness harness({.spec = spec, .policy = policy, .sim_config = sim_config});

  job_config.seed = mix64(ctx.seed);
  workload::HadoopJob job(harness.starter(), harness.all_hosts(),
                          job_config);
  job.start(0);
  harness.run();

  exp::TrialResult r;
  r.samples["stage1_s"] = job.stage_worker_times_s(0);
  r.samples["stage2_s"] = job.stage_worker_times_s(1);
  r.samples["stage3_s"] = job.stage_worker_times_s(2);
  // Surface an unfinished job through the flow counters.
  r.flows_started = 1;
  r.flows_finished = job.finished() ? 1 : 0;
  r.delivered_bytes =
      static_cast<double>(harness.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(harness.events().now());
  r.events = harness.events().dispatched();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 12: Hadoop-like sort, per-worker stage "
                      "completion times",
                      flags,
                      "bench_fig12: Hadoop-like sort stage times\n"
                      "\n"
                      "  --hosts=N     cluster hosts (default 100)\n"
                      "  --mappers=N   map workers (default 16)\n"
                      "  --reducers=N  reduce workers (default 16)\n"
                      "  --gb=N        total sort gigabytes (default 2)\n"
                      "  --block_mb=N  block size in MB (default 32)\n"
                      "  --seed=N      placement seed (default 1)\n");
  const bool paper = flags.paper_scale();
  const int hosts = flags.get_int("hosts", paper ? 250 : 100);

  workload::HadoopJob::Config job_config;
  job_config.num_mappers = flags.get_int("mappers", paper ? 32 : 16);
  job_config.num_reducers = flags.get_int("reducers", paper ? 32 : 16);
  job_config.total_bytes =
      static_cast<std::uint64_t>(flags.get_i64("gb", paper ? 100 : 2)) *
      1'000'000'000ULL;
  job_config.block_bytes = static_cast<std::uint64_t>(
      flags.get_i64("block_mb", paper ? 128 : 32)) * 1'000'000ULL;
  job_config.concurrent_blocks = 4;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  bench::Experiment experiment(flags, "fig12");
  for (auto type : bench::kAllTypes) {
    exp::ExperimentSpec spec;
    spec.name = topo::to_string(type);
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    spec.trials = experiment.trials(1);
    experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
      return run_job(type, hosts, job_config, ctx);
    });
  }
  const auto results = experiment.run();

  const char* stage_names[] = {"read input", "shuffle", "write output"};
  for (int stage = 0; stage < 3; ++stage) {
    const std::string key = "stage" + std::to_string(stage + 1) + "_s";
    TextTable table(std::string("Fig 12, stage ") + std::to_string(stage + 1) +
                        " (" + stage_names[stage] +
                        "): per-worker completion time (s)",
                    {"network", "median", "mean", "p90", "max"});
    for (const auto& cell : results) {
      const auto s = exp::summarize(cell.merged_samples(key));
      table.add_row(cell.spec.name, {s.median, s.mean, s.p90, s.max}, 4);
    }
    table.print();
  }
  return experiment.finish();
}
