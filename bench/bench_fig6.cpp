// Figure 6: parallel fat tree ideal throughput (LP with computed routes).
//   (a) all-to-all traffic under ECMP    — saturates every plane count;
//   (b) permutation traffic under ECMP   — barely improves with planes;
//   (c) permutation, MPTCP + K-shortest-path sweep — saturation needs
//       K ~ 8 * N subflows (circled points in the paper).
// Throughput is normalized against the serial low-bandwidth fat tree's
// saturation throughput (active hosts x 100G), exactly as in the paper
// where the serial low-bw series sits at 1.
//
// Usage: bench_fig6 [--hosts=128] [--eps=0.05] [--seed=1] [--trials=3]
//        (--scale=paper runs the 1024-host setup of the paper)
#include <map>

#include "common.hpp"

using namespace pnet;
using bench::LpScheme;

namespace {

struct Series {
  double mean = 0.0;
  double stddev = 0.0;
};

Series run_trials(topo::NetworkType type, int hosts, int planes,
                  bool all_to_all, LpScheme scheme, int k, double eps,
                  int trials, std::uint64_t seed) {
  RunningStats stats;
  for (int t = 0; t < trials; ++t) {
    const auto net = topo::build_network(bench::make_spec(
        topo::TopoKind::kFatTree, type, hosts, planes, seed + 100 * t));
    Rng rng(seed + 7 * t);
    const auto pairs =
        all_to_all ? workload::rack_all_to_all_pairs(net)
                   : workload::permutation_pairs(net.num_hosts(), rng);
    const double active_hosts = static_cast<double>(
        all_to_all ? net.num_racks() : net.num_hosts());
    const auto run = bench::lp_throughput(net, pairs, scheme, k, eps);
    stats.add(run.total_throughput_bps /
              (active_hosts * net.spec().base_rate_bps));
  }
  return {stats.mean(), stats.stddev()};
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 6: fat tree ideal throughput (ECMP + KSP)",
                      flags,
                      "bench_fig6: fat tree ideal throughput (LP)\n"
                      "\n"
                      "  --hosts=N    hosts (default 128; paper 1024)\n"
                      "  --eps=X      LP approximation epsilon "
                      "(default 0.05)\n"
                      "  --trials=N   seeds per point (default 3)\n"
                      "  --seed=N     base seed (default 1)\n");
  const int hosts = flags.get_int("hosts", flags.paper_scale() ? 1024 : 128);
  const double eps = flags.get_double("eps", 0.05);
  const int trials = flags.get_int("trials", flags.paper_scale() ? 5 : 3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  const std::vector<int> plane_counts = {1, 2, 4, 8};

  // --- (a) all-to-all + ECMP, (b) permutation + ECMP ------------------
  for (const bool all_to_all : {true, false}) {
    TextTable table(std::string("Fig 6") + (all_to_all ? "a" : "b") + ": " +
                        (all_to_all ? "all-to-all" : "permutation") +
                        " throughput, ECMP (normalized to serial low-bw)",
                    {"planes", "parallel fat tree", "stddev",
                     "serial high-bw (ideal)"});
    for (int n : plane_counts) {
      const auto s = run_trials(
          n == 1 ? topo::NetworkType::kSerialLow
                 : topo::NetworkType::kParallelHomogeneous,
          hosts, n, all_to_all, LpScheme::kEcmp, 0, eps, trials, seed);
      table.add_row(std::to_string(n),
                    {s.mean, s.stddev, static_cast<double>(n)});
    }
    table.print();
  }

  // --- (c) permutation, multipath sweep --------------------------------
  TextTable sweep(
      "Fig 6c: permutation throughput vs multipath level K "
      "(normalized to serial low-bw; circled = first K saturating N planes)",
      {"K", "serial (N=1)", "parallel N=2", "parallel N=4"});
  const std::vector<int> ks = {1, 2, 4, 8, 16, 32};
  std::map<int, int> saturation_k;
  for (int k : ks) {
    std::vector<double> row;
    for (int n : {1, 2, 4}) {
      const auto s = run_trials(
          n == 1 ? topo::NetworkType::kSerialLow
                 : topo::NetworkType::kParallelHomogeneous,
          hosts, n, false, LpScheme::kKsp, k, eps, trials, seed);
      row.push_back(s.mean);
      if (!saturation_k.contains(n) && s.mean >= 0.9 * n) {
        saturation_k[n] = k;
      }
    }
    sweep.add_row(std::to_string(k), row);
  }
  sweep.print();

  TextTable circles("Saturation multipath level (the paper's circles: "
                    "K grows in proportion to the plane count N)",
                    {"planes", "first K reaching 90% of N"});
  for (const auto& [n, k] : saturation_k) {
    circles.add_row(std::to_string(n), {static_cast<double>(k)}, 0);
  }
  circles.print();
  return 0;
}
