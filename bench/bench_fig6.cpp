// Figure 6: parallel fat tree ideal throughput (LP with computed routes).
//   (a) all-to-all traffic under ECMP    — saturates every plane count;
//   (b) permutation traffic under ECMP   — barely improves with planes;
//   (c) permutation, MPTCP + K-shortest-path sweep — saturation needs
//       K ~ 8 * N subflows (circled points in the paper).
// Throughput is normalized against the serial low-bandwidth fat tree's
// saturation throughput (active hosts x 100G), exactly as in the paper
// where the serial low-bw series sits at 1.
//
// Each figure point is one custom-engine ExperimentSpec cell whose trial
// function performs a single LP solve; exp::Runner fans every
// (point, trial) pair over --threads.
//
// Usage: bench_fig6 [--hosts=128] [--eps=0.05] [--seed=1] [--trials=3]
//        (--scale=paper runs the 1024-host setup of the paper)
#include <map>

#include "common.hpp"

using namespace pnet;
using bench::LpScheme;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 6: fat tree ideal throughput (ECMP + KSP)",
                      flags,
                      "bench_fig6: fat tree ideal throughput (LP)\n"
                      "\n"
                      "  --hosts=N    hosts (default 128; paper 1024)\n"
                      "  --eps=X      LP approximation epsilon "
                      "(default 0.05)\n"
                      "  --seed=N     base seed (default 1)\n");
  const int hosts = flags.get_int("hosts", flags.paper_scale() ? 1024 : 128);
  const double eps = flags.get_double("eps", 0.05);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  bench::Experiment experiment(flags, "fig6");
  const int trials = experiment.trials(flags.paper_scale() ? 5 : 3);

  auto add_cell = [&](const std::string& name, topo::NetworkType type,
                      int planes, bool all_to_all, LpScheme scheme, int k) {
    exp::ExperimentSpec spec;
    spec.name = name;
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    spec.trials = trials;
    return experiment.add(
        std::move(spec), [=](const exp::TrialContext& ctx) {
          const auto net = topo::build_network(bench::make_spec(
              topo::TopoKind::kFatTree, type, hosts, planes, ctx.seed));
          Rng rng(mix64(ctx.seed));
          const auto pairs =
              all_to_all ? workload::rack_all_to_all_pairs(net)
                         : workload::permutation_pairs(net.num_hosts(), rng);
          const double active_hosts = static_cast<double>(
              all_to_all ? net.num_racks() : net.num_hosts());
          const auto run = bench::lp_throughput(net, pairs, scheme, k, eps);
          exp::TrialResult r;
          r.metrics["norm_tput"] = run.total_throughput_bps /
                                   (active_hosts * net.spec().base_rate_bps);
          r.metrics["alpha"] = run.alpha;
          return r;
        });
  };

  auto type_for = [](int planes) {
    return planes == 1 ? topo::NetworkType::kSerialLow
                       : topo::NetworkType::kParallelHomogeneous;
  };

  const std::vector<int> plane_counts = {1, 2, 4, 8};
  const std::vector<int> ks = {1, 2, 4, 8, 16, 32};

  // --- (a) all-to-all + ECMP, (b) permutation + ECMP ------------------
  for (const bool all_to_all : {true, false}) {
    for (int n : plane_counts) {
      add_cell(std::string(all_to_all ? "a2a" : "perm") + "/ecmp/planes=" +
                   std::to_string(n),
               type_for(n), n, all_to_all, LpScheme::kEcmp, 0);
    }
  }
  // --- (c) permutation, multipath sweep --------------------------------
  for (int k : ks) {
    for (int n : {1, 2, 4}) {
      add_cell("perm/ksp/k=" + std::to_string(k) +
                   "/planes=" + std::to_string(n),
               type_for(n), n, false, LpScheme::kKsp, k);
    }
  }

  const auto results = experiment.run();
  std::size_t next = 0;

  for (const bool all_to_all : {true, false}) {
    TextTable table(std::string("Fig 6") + (all_to_all ? "a" : "b") + ": " +
                        (all_to_all ? "all-to-all" : "permutation") +
                        " throughput, ECMP (normalized to serial low-bw)",
                    {"planes", "parallel fat tree", "stddev",
                     "serial high-bw (ideal)"});
    for (int n : plane_counts) {
      const auto s = results[next++].metric("norm_tput");
      table.add_row(std::to_string(n),
                    {s.mean, s.stddev, static_cast<double>(n)});
    }
    table.print();
  }

  TextTable sweep(
      "Fig 6c: permutation throughput vs multipath level K "
      "(normalized to serial low-bw; circled = first K saturating N planes)",
      {"K", "serial (N=1)", "parallel N=2", "parallel N=4"});
  std::map<int, int> saturation_k;
  for (int k : ks) {
    std::vector<double> row;
    for (int n : {1, 2, 4}) {
      const double mean = results[next++].metric("norm_tput").mean;
      row.push_back(mean);
      if (!saturation_k.contains(n) && mean >= 0.9 * n) {
        saturation_k[n] = k;
      }
    }
    sweep.add_row(std::to_string(k), row);
  }
  sweep.print();

  TextTable circles("Saturation multipath level (the paper's circles: "
                    "K grows in proportion to the plane count N)",
                    {"planes", "first K reaching 90% of N"});
  for (const auto& [n, k] : saturation_k) {
    circles.add_row(std::to_string(n), {static_cast<double>(k)}, 0);
  }
  circles.print();
  return experiment.finish();
}
