// Ablation: incast and the DCTCP extension (§6.5 of the paper defers
// incast to "future studies that might involve incast-aware transports
// like DCTCP" — this bench runs that study).
//
// Fan-in sweep: F senders each push 200 kB to one receiver through shallow
// 100-packet buffers. NewReno overflow-drops whole windows and eats 10 ms
// RTOs; DCTCP's ECN marking keeps queues short and the tail flat. P-Nets
// help both by spreading the fan-in over N separate downlink queues.
//
// Usage: bench_ablation_dctcp [--hosts=64] [--trials=5] [--seed=1]
#include "common.hpp"

using namespace pnet;

namespace {

struct Outcome {
  double p99_ms = 0.0;
  int timeouts = 0;
};

enum class Transport { kReno, kDctcp, kTrim };

Outcome run_incast(topo::NetworkType type, Transport transport, int fan_in,
                   int hosts, int trials, std::uint64_t seed) {
  std::vector<double> fct_ms;
  int timeouts = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type,
                                       hosts, 4, seed + 100 * trial);
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kRoundRobin;
    sim::SimConfig sim_config;
    sim_config.queue_buffer_bytes = 100 * 1500;
    if (transport == Transport::kDctcp) {
      sim_config.ecn_threshold_bytes = 20 * 1500;
      sim_config.tcp.dctcp = true;
    } else if (transport == Transport::kTrim) {
      sim_config.trim_to_header = true;
    }
    core::SimHarness harness(spec, policy, sim_config);
    Rng rng(seed + 7 * trial);
    const int dst = rng.next_int(0, harness.net().num_hosts());
    int senders = 0;
    for (int i = 0; senders < fan_in && i < harness.net().num_hosts();
         ++i) {
      if (i == dst) continue;
      ++senders;
      harness.starter()(HostId{i}, HostId{dst}, 200'000, 0,
                        [&](const sim::FlowRecord& r) {
                          fct_ms.push_back(
                              units::to_milliseconds(r.end - r.start));
                        });
    }
    harness.run_until(2 * units::kSecond);
    timeouts += harness.logger().total_timeouts();
  }
  Outcome o;
  if (!fct_ms.empty()) o.p99_ms = percentile(fct_ms, 99);
  o.timeouts = timeouts;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Ablation: incast fan-in, NewReno vs DCTCP, serial vs "
                      "P-Net",
                      flags,
                      "bench_ablation_dctcp: incast fan-in, NewReno vs DCTCP\n"
                      "\n"
                      "  --hosts=N    hosts per network (default 64)\n"
                      "  --trials=N   incast trials per config (default 5)\n"
                      "  --seed=N     topology/workload seed (default 1)\n");
  const int hosts = flags.get_int("hosts", 64);
  const int trials = flags.get_int("trials", 5);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  TextTable table("200 kB incast: p99 FCT (ms) [RTO count]",
                  {"fan-in", "serial reno", "serial dctcp", "serial trim",
                   "pnet reno", "pnet dctcp", "pnet trim"});
  for (int fan_in : {2, 4, 8, 16, 32}) {
    std::vector<std::string> cells = {std::to_string(fan_in)};
    for (const auto& [type, transport] :
         std::vector<std::pair<topo::NetworkType, Transport>>{
             {topo::NetworkType::kSerialLow, Transport::kReno},
             {topo::NetworkType::kSerialLow, Transport::kDctcp},
             {topo::NetworkType::kSerialLow, Transport::kTrim},
             {topo::NetworkType::kParallelHomogeneous, Transport::kReno},
             {topo::NetworkType::kParallelHomogeneous, Transport::kDctcp},
             {topo::NetworkType::kParallelHomogeneous, Transport::kTrim}}) {
      const auto o =
          run_incast(type, transport, fan_in, hosts, trials, seed);
      cells.push_back(format_double(o.p99_ms, 2) + " [" +
                      std::to_string(o.timeouts) + "]");
    }
    table.add_row(cells);
  }
  table.print();
  std::printf(
      "DCTCP removes the RTO tail by keeping queues short; NDP-style\n"
      "trimming removes it at any fan-in by never losing a packet\n"
      "silently; the P-Net's 4 separate downlink queues push the collapse\n"
      "point ~4x further for all transports.\n");
  return 0;
}
