// Ablation: incast and the DCTCP extension (§6.5 of the paper defers
// incast to "future studies that might involve incast-aware transports
// like DCTCP" — this bench runs that study).
//
// Fan-in sweep: F senders each push 200 kB to one receiver through shallow
// 100-packet buffers. NewReno overflow-drops whole windows and eats 10 ms
// RTOs; DCTCP's ECN marking keeps queues short and the tail flat. P-Nets
// help both by spreading the fan-in over N separate downlink queues.
//
// One custom-engine cell per (fan-in, network, transport) with --trials
// independent incast draws, all fanned out by exp::Runner.
//
// Usage: bench_ablation_dctcp [--hosts=64] [--trials=5] [--seed=1]
#include <numeric>

#include "common.hpp"

using namespace pnet;

namespace {

enum class Transport { kReno, kDctcp, kTrim };

const char* to_string(Transport t) {
  switch (t) {
    case Transport::kReno: return "reno";
    case Transport::kDctcp: return "dctcp";
    case Transport::kTrim: return "trim";
  }
  return "?";
}

exp::TrialResult run_incast(topo::NetworkType type, Transport transport,
                            int fan_in, int hosts,
                            const exp::TrialContext& ctx) {
  const auto spec = bench::make_spec(topo::TopoKind::kJellyfish, type,
                                     hosts, 4, ctx.seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 100 * 1500;
  if (transport == Transport::kDctcp) {
    sim_config.ecn_threshold_bytes = 20 * 1500;
    sim_config.tcp.dctcp = true;
  } else if (transport == Transport::kTrim) {
    sim_config.trim_to_header = true;
  }
  core::SimHarness harness({.spec = spec, .policy = policy, .sim_config = sim_config});

  exp::TrialResult r;
  Rng rng(mix64(ctx.seed));
  const int dst = rng.next_int(0, harness.net().num_hosts());
  for (int i = 0; r.flows_started <
                      static_cast<std::uint64_t>(fan_in) &&
                  i < harness.net().num_hosts();
       ++i) {
    if (i == dst) continue;
    ++r.flows_started;
    harness.starter()(HostId{i}, HostId{dst}, 200'000, 0,
                      [&r](const sim::FlowRecord& rec) {
                        r.fct_us.push_back(
                            units::to_microseconds(rec.end - rec.start));
                        ++r.flows_finished;
                      });
  }
  harness.run_until(2 * units::kSecond);
  r.metrics["timeouts"] =
      static_cast<double>(harness.logger().total_timeouts());
  r.delivered_bytes =
      static_cast<double>(harness.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(harness.events().now());
  r.events = harness.events().dispatched();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Ablation: incast fan-in, NewReno vs DCTCP, serial vs "
                      "P-Net",
                      flags,
                      "bench_ablation_dctcp: incast fan-in, NewReno vs DCTCP\n"
                      "\n"
                      "  --hosts=N    hosts per network (default 64)\n"
                      "  --seed=N     topology/workload seed (default 1)\n");
  const int hosts = flags.get_int("hosts", 64);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  const std::vector<int> fan_ins = {2, 4, 8, 16, 32};
  const std::vector<std::pair<topo::NetworkType, Transport>> configs = {
      {topo::NetworkType::kSerialLow, Transport::kReno},
      {topo::NetworkType::kSerialLow, Transport::kDctcp},
      {topo::NetworkType::kSerialLow, Transport::kTrim},
      {topo::NetworkType::kParallelHomogeneous, Transport::kReno},
      {topo::NetworkType::kParallelHomogeneous, Transport::kDctcp},
      {topo::NetworkType::kParallelHomogeneous, Transport::kTrim}};

  bench::Experiment experiment(flags, "ablation_dctcp");
  const int trials = experiment.trials(5);
  for (int fan_in : fan_ins) {
    for (const auto& [type, transport] : configs) {
      exp::ExperimentSpec spec;
      spec.name = "fanin=" + std::to_string(fan_in) + "/" +
                  topo::to_string(type) + "/" + to_string(transport);
      spec.engine = exp::EngineKind::kCustom;
      spec.seed = seed;
      spec.trials = trials;
      const auto ty = type;
      const auto tr = transport;
      experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
        return run_incast(ty, tr, fan_in, hosts, ctx);
      });
    }
  }
  const auto results = experiment.run();

  TextTable table("200 kB incast: p99 FCT (ms) [RTO count]",
                  {"fan-in", "serial reno", "serial dctcp", "serial trim",
                   "pnet reno", "pnet dctcp", "pnet trim"});
  std::size_t next = 0;
  for (int fan_in : fan_ins) {
    std::vector<std::string> cells = {std::to_string(fan_in)};
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const auto& cell = results[next++];
      const double p99_ms = cell.fct().p99 / 1000.0;
      const auto timeouts = cell.metric_values("timeouts");
      const double total_timeouts =
          std::accumulate(timeouts.begin(), timeouts.end(), 0.0);
      cells.push_back(format_double(p99_ms, 2) + " [" +
                      std::to_string(static_cast<int>(total_timeouts)) +
                      "]");
    }
    table.add_row(cells);
  }
  table.print();
  std::printf(
      "DCTCP removes the RTO tail by keeping queues short; NDP-style\n"
      "trimming removes it at any fan-in by never losing a packet\n"
      "silently; the P-Net's 4 separate downlink queues push the collapse\n"
      "point ~4x further for all transports.\n");
  return experiment.finish();
}
