// Table 1: component counts for an 8,192-host network built three ways from
// the same 16-port switch chip — serial scale-out fat tree, serial chassis
// fat tree, and the 8x parallel P-Net with deployment optimizations.
//
// The cost model is closed-form arithmetic; each architecture is still one
// custom-engine cell so the counts land in the structured JSON report.
//
// Usage: bench_table1 [--hosts=8192] [--radix=16] [--planes=8]
#include "common.hpp"
#include "core/cost_model.hpp"

using namespace pnet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Table 1: component counts", flags,
                      "bench_table1: component counts per architecture\n"
                      "\n"
                      "  --hosts=N    target host count (default 8192)\n"
                      "  --radix=N    switch chip radix (default 16)\n"
                      "  --planes=N   dataplanes (default 8)\n");

  const std::int64_t hosts = flags.get_i64("hosts", 8192);
  const int radix = flags.get_int("radix", 16);
  const int planes = flags.get_int("planes", 8);

  struct Design {
    std::string name;
    core::ComponentCount count;
  };
  const std::vector<Design> designs = {
      {"serial-scale-out", core::serial_scale_out(hosts, radix)},
      {"serial-chassis", core::serial_chassis(hosts, radix, 128)},
      {"parallel-pnet", core::parallel_pnet(hosts, radix, planes)},
      // Extension (§6.1 discussion): the same parallel design without
      // cable bundling and shared boxes, quantifying what the deployment
      // optimizations save.
      {"parallel-pnet-naive",
       core::parallel_pnet(hosts, radix, planes, /*bundle=*/false,
                           /*shared_boxes=*/false)},
  };

  bench::Experiment experiment(flags, "table1");
  for (const auto& design : designs) {
    exp::ExperimentSpec spec;
    spec.name = design.name;
    spec.engine = exp::EngineKind::kCustom;
    const auto count = design.count;
    experiment.add(std::move(spec), [count](const exp::TrialContext&) {
      exp::TrialResult r;
      r.metrics["tiers"] = count.tiers;
      r.metrics["hops"] = count.hops;
      r.metrics["chips"] = static_cast<double>(count.chips);
      r.metrics["boxes"] = static_cast<double>(count.boxes);
      r.metrics["links"] = static_cast<double>(count.links);
      const auto electrical = core::estimate_deployment(count);
      core::DeploymentAssumptions optical;
      optical.optical_core = true;
      const auto opt = core::estimate_deployment(count, optical);
      r.metrics["fiber_runs"] = static_cast<double>(electrical.fiber_runs);
      r.metrics["transceivers"] =
          static_cast<double>(electrical.transceivers);
      r.metrics["patch_panel_ports"] =
          static_cast<double>(opt.patch_panel_ports);
      r.metrics["power_kw"] = electrical.total_power_kw();
      r.metrics["power_kw_optical"] = opt.total_power_kw();
      return r;
    });
  }
  const auto results = experiment.run();

  TextTable table("Table 1 (" + std::to_string(hosts) + " hosts, " +
                      std::to_string(radix) + "-port chips)",
                  {"Architecture", "Tiers", "Hops", "Chips", "Boxes",
                   "Links"});
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& c = designs[i].count;
    table.add_row({c.architecture, std::to_string(c.tiers),
                   std::to_string(c.hops), std::to_string(c.chips),
                   std::to_string(c.boxes), std::to_string(c.links)});
  }
  table.print();

  TextTable naive("Ablation: parallel P-Net without deployment optimizations",
                  {"Architecture", "Tiers", "Hops", "Chips", "Boxes",
                   "Links"});
  const auto& c = designs[3].count;
  naive.add_row({c.architecture + " (naive)", std::to_string(c.tiers),
                 std::to_string(c.hops), std::to_string(c.chips),
                 std::to_string(c.boxes), std::to_string(c.links)});
  naive.print();

  // Extension (§6.1): deployment estimates — fiber runs, optics, power —
  // with an electrically-switched core and with the optical patch-panel /
  // OCS core the paper advocates.
  TextTable deploy("Deployment estimate (electrical core vs optical core)",
                   {"Architecture", "Fibers", "Optics", "Panel ports",
                    "Power kW", "Power kW (optical core)"});
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& cell = results[i];
    deploy.add_row(
        {designs[i].count.architecture,
         std::to_string(
             static_cast<std::int64_t>(cell.metric("fiber_runs").mean)),
         std::to_string(
             static_cast<std::int64_t>(cell.metric("transceivers").mean)),
         std::to_string(static_cast<std::int64_t>(
             cell.metric("patch_panel_ports").mean)),
         format_double(cell.metric("power_kw").mean, 1),
         format_double(cell.metric("power_kw_optical").mean, 1)});
  }
  deploy.print();
  return experiment.finish();
}
