// Table 1: component counts for an 8,192-host network built three ways from
// the same 16-port switch chip — serial scale-out fat tree, serial chassis
// fat tree, and the 8x parallel P-Net with deployment optimizations.
//
// Usage: bench_table1 [--hosts=8192] [--radix=16] [--planes=8]
#include "common.hpp"
#include "core/cost_model.hpp"

using namespace pnet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Table 1: component counts", flags,
                      "bench_table1: component counts per architecture\n"
                      "\n"
                      "  --hosts=N    target host count (default 8192)\n"
                      "  --radix=N    switch chip radix (default 16)\n"
                      "  --planes=N   dataplanes (default 8)\n");

  const std::int64_t hosts = flags.get_i64("hosts", 8192);
  const int radix = flags.get_int("radix", 16);
  const int planes = flags.get_int("planes", 8);

  TextTable table("Table 1 (" + std::to_string(hosts) + " hosts, " +
                      std::to_string(radix) + "-port chips)",
                  {"Architecture", "Tiers", "Hops", "Chips", "Boxes",
                   "Links"});
  auto emit = [&](const core::ComponentCount& c) {
    table.add_row({c.architecture, std::to_string(c.tiers),
                   std::to_string(c.hops), std::to_string(c.chips),
                   std::to_string(c.boxes), std::to_string(c.links)});
  };
  emit(core::serial_scale_out(hosts, radix));
  emit(core::serial_chassis(hosts, radix, 128));
  emit(core::parallel_pnet(hosts, radix, planes));
  table.print();

  // Extension (§6.1 discussion): the same parallel design without cable
  // bundling and shared boxes, quantifying what the optimizations save.
  TextTable naive("Ablation: parallel P-Net without deployment optimizations",
                  {"Architecture", "Tiers", "Hops", "Chips", "Boxes",
                   "Links"});
  const auto c = core::parallel_pnet(hosts, radix, planes, /*bundle=*/false,
                                     /*shared_boxes=*/false);
  naive.add_row({c.architecture + " (naive)", std::to_string(c.tiers),
                 std::to_string(c.hops), std::to_string(c.chips),
                 std::to_string(c.boxes), std::to_string(c.links)});
  naive.print();

  // Extension (§6.1): deployment estimates — fiber runs, optics, power —
  // with an electrically-switched core and with the optical patch-panel /
  // OCS core the paper advocates.
  TextTable deploy("Deployment estimate (electrical core vs optical core)",
                   {"Architecture", "Fibers", "Optics", "Panel ports",
                    "Power kW", "Power kW (optical core)"});
  auto emit_deploy = [&](const core::ComponentCount& design) {
    const auto electrical = core::estimate_deployment(design);
    core::DeploymentAssumptions optical;
    optical.optical_core = true;
    const auto opt = core::estimate_deployment(design, optical);
    deploy.add_row({design.architecture, std::to_string(electrical.fiber_runs),
                    std::to_string(electrical.transceivers),
                    std::to_string(opt.patch_panel_ports),
                    format_double(electrical.total_power_kw(), 1),
                    format_double(opt.total_power_kw(), 1)});
  };
  emit_deploy(core::serial_scale_out(hosts, radix));
  emit_deploy(core::serial_chassis(hosts, radix, 128));
  emit_deploy(core::parallel_pnet(hosts, radix, planes));
  deploy.print();
  return 0;
}
