// Ablation: graceful degradation under a whole-plane outage (§3.4: "end
// hosts can quickly detect individual dataplane failures via link status
// and avoid using the broken dataplane(s)").
//
// A 4-plane P-Net runs a closed-loop RPC workload; one plane's links all
// die. With failure-aware selection the workload keeps running on 3/4
// capacity; without it, a quarter of new flows black-hole until their
// senders give up (we count unfinished flows and timeouts).
//
// Usage: bench_ablation_failover [--hosts=64] [--rounds=20] [--seed=1]
// Run with --help for flag semantics.
#include "common.hpp"
#include "workload/apps.hpp"

using namespace pnet;

namespace {

struct Outcome {
  int completed = 0;
  int expected = 0;
  int timeouts = 0;
  double p99_us = 0.0;
};

Outcome run(bool aware, int hosts, int rounds, std::uint64_t seed) {
  const auto spec =
      bench::make_spec(topo::TopoKind::kJellyfish,
                       topo::NetworkType::kParallelHomogeneous, hosts, 4,
                       seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;
  core::SimHarness harness(spec, policy);

  // The outage happens before traffic starts (the steady-state view).
  harness.network().set_plane_failed(2, true);
  if (aware) harness.selector().set_plane_failed(2, true);

  workload::ClosedLoopApp::Config config;
  config.concurrent_per_host = 2;
  config.rounds_per_worker = rounds;
  config.seed = seed * 3 + 1;
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [](Rng&) { return std::uint64_t{100'000}; });
  app.start(0);
  harness.run_until(5 * units::kSecond);

  Outcome outcome;
  outcome.completed = app.requests_completed();
  outcome.expected = harness.net().num_hosts() * 2 * rounds;
  outcome.timeouts = harness.logger().total_timeouts();
  auto v = app.completion_times_us();
  if (!v.empty()) outcome.p99_us = percentile(v, 99);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Ablation: plane failure with/without failure-aware path selection",
      flags,
      "bench_ablation_failover: plane outage with/without failure-aware "
      "selection\n"
      "\n"
      "  --hosts=N       hosts in the 4-plane P-Net (default 64)\n"
      "  --rounds=N      closed-loop RPC rounds per worker, 2 workers per\n"
      "                  host (default 20)\n"
      "  --seed=N        seed for the Jellyfish wiring and the RPC\n"
      "                  destination draws (default 1)\n");
  const int hosts = flags.get_int("hosts", 64);
  const int rounds = flags.get_int("rounds", 20);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  TextTable table("100 kB closed-loop RPCs with plane 2 of 4 dead",
                  {"selection", "completed", "of", "TCP timeouts",
                   "p99 (us)"});
  for (bool aware : {true, false}) {
    const auto o = run(aware, hosts, rounds, seed);
    table.add_row(aware ? "failure-aware (paper §3.4)" : "failure-unaware",
                  {static_cast<double>(o.completed),
                   static_cast<double>(o.expected),
                   static_cast<double>(o.timeouts), o.p99_us},
                  0);
  }
  table.print();
  std::printf("Failure-aware hosts lose capacity, not liveness: every RPC\n"
              "completes on the surviving planes. Unaware hosts keep\n"
              "hashing flows into the dead plane and stall their workers.\n");
  return 0;
}
