// Ablation: graceful degradation under a whole-plane outage (§3.4: "end
// hosts can quickly detect individual dataplane failures via link status
// and avoid using the broken dataplane(s)").
//
// A 4-plane P-Net runs a closed-loop RPC workload; one plane's links all
// die. With failure-aware selection the workload keeps running on 3/4
// capacity; without it, a quarter of new flows black-hole until their
// senders give up (we count unfinished flows and timeouts).
//
// Two custom-engine cells (aware / unaware) run through exp::Runner; the
// black-holed RPCs show up as the unaware cell's unfinished flows in the
// JSON report (and fail the run under --require-complete, by design).
//
// Usage: bench_ablation_failover [--hosts=64] [--rounds=20] [--seed=1]
// Run with --help for flag semantics.
#include "common.hpp"
#include "workload/apps.hpp"

using namespace pnet;

namespace {

exp::TrialResult run(bool aware, int hosts, int rounds,
                     const exp::TrialContext& ctx) {
  const auto spec =
      bench::make_spec(topo::TopoKind::kJellyfish,
                       topo::NetworkType::kParallelHomogeneous, hosts, 4,
                       ctx.seed);
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;
  core::SimHarness harness({.spec = spec, .policy = policy});

  // The outage happens before traffic starts (the steady-state view).
  harness.network().set_plane_failed(2, true);
  if (aware) harness.selector().set_plane_failed(2, true);

  workload::ClosedLoopApp::Config config;
  config.concurrent_per_host = 2;
  config.rounds_per_worker = rounds;
  config.seed = mix64(ctx.seed);
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [](Rng&) { return std::uint64_t{100'000}; });
  app.start(0);
  harness.run_until(5 * units::kSecond);

  exp::TrialResult r;
  r.fct_us = app.completion_times_us();
  r.flows_started = static_cast<std::uint64_t>(harness.net().num_hosts()) *
                    2ULL * static_cast<std::uint64_t>(rounds);
  r.flows_finished = static_cast<std::uint64_t>(app.requests_completed());
  r.metrics["timeouts"] =
      static_cast<double>(harness.logger().total_timeouts());
  r.delivered_bytes =
      static_cast<double>(harness.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(harness.events().now());
  r.events = harness.events().dispatched();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Ablation: plane failure with/without failure-aware path selection",
      flags,
      "bench_ablation_failover: plane outage with/without failure-aware "
      "selection\n"
      "\n"
      "  --hosts=N       hosts in the 4-plane P-Net (default 64)\n"
      "  --rounds=N      closed-loop RPC rounds per worker, 2 workers per\n"
      "                  host (default 20)\n"
      "  --seed=N        seed for the Jellyfish wiring and the RPC\n"
      "                  destination draws (default 1)\n");
  const int hosts = flags.get_int("hosts", 64);
  const int rounds = flags.get_int("rounds", 20);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_i64("seed", 1));

  bench::Experiment experiment(flags, "ablation_failover");
  for (bool aware : {true, false}) {
    exp::ExperimentSpec spec;
    spec.name = aware ? "failure-aware" : "failure-unaware";
    spec.engine = exp::EngineKind::kCustom;
    spec.seed = seed;
    spec.trials = experiment.trials(1);
    experiment.add(std::move(spec), [=](const exp::TrialContext& ctx) {
      return run(aware, hosts, rounds, ctx);
    });
  }
  const auto results = experiment.run();

  TextTable table("100 kB closed-loop RPCs with plane 2 of 4 dead",
                  {"selection", "completed", "of", "TCP timeouts",
                   "p99 (us)"});
  for (const auto& cell : results) {
    const bool aware = cell.spec.name == "failure-aware";
    table.add_row(aware ? "failure-aware (paper §3.4)" : "failure-unaware",
                  {static_cast<double>(cell.flows_finished()),
                   static_cast<double>(cell.flows_started()),
                   cell.metric("timeouts").mean, cell.fct().p99},
                  0);
  }
  table.print();
  std::printf("Failure-aware hosts lose capacity, not liveness: every RPC\n"
              "completes on the surviving planes. Unaware hosts keep\n"
              "hashing flows into the dead plane and stall their workers.\n");
  return experiment.finish();
}
