// One test per qualitative claim of the paper, each at miniature scale:
// the fastest way to check that the reproduction still reproduces after a
// refactor. Quantitative shapes live in the bench binaries; these tests
// pin the *directions*.
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/harness.hpp"
#include "lp/link_index.hpp"
#include "lp/mcf.hpp"
#include "routing/ecmp.hpp"
#include "routing/plane_paths.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"
#include "workload/patterns.hpp"

namespace pnet {
namespace {

topo::NetworkSpec jf_spec(topo::NetworkType type, int planes,
                          int hosts = 48) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kJellyfish;
  spec.type = type;
  spec.hosts = hosts;
  spec.parallelism = planes;
  spec.seed = 3;
  return spec;
}

// §4 / Fig 6b: "approaches like ECMP barely leverage the added physical
// capacity" on sparse (permutation) traffic.
TEST(PaperClaims, EcmpPermutationDoesNotScaleWithPlanes) {
  auto throughput = [&](topo::NetworkType type, int planes) {
    const auto net = topo::build_network(jf_spec(type, planes));
    const lp::LinkIndex index(net);
    Rng rng(5);
    const auto perm = rng.derangement(net.num_hosts());
    std::vector<lp::Commodity> commodities;
    for (int src = 0; src < net.num_hosts(); ++src) {
      lp::Commodity c;
      c.demand = net.host_uplink_bps();
      const int plane = routing::ecmp_pick(
          mix64(static_cast<std::uint64_t>(src) + 1), net.num_planes());
      for (const auto& p : routing::ecmp_paths_in_plane(
               net, plane, HostId{src},
               HostId{perm[static_cast<std::size_t>(src)]}, 32)) {
        c.paths.push_back(index.to_global(p));
      }
      commodities.push_back(std::move(c));
    }
    return lp::max_total_flow(index.capacity(), commodities)
        .total_throughput;
  };
  const double serial = throughput(topo::NetworkType::kSerialLow, 1);
  const double parallel =
      throughput(topo::NetworkType::kParallelHomogeneous, 4);
  // 4x the hardware buys < 1.3x under ECMP: the paper's waste argument.
  EXPECT_LT(parallel, 1.3 * serial);
}

// §4 / Fig 6c: multipath with K scaled to the plane count recovers it.
TEST(PaperClaims, KspMultipathScalesWithPlanes) {
  auto throughput = [&](topo::NetworkType type, int planes, int k) {
    const auto net = topo::build_network(jf_spec(type, planes));
    const lp::LinkIndex index(net);
    Rng rng(5);
    const auto perm = rng.derangement(net.num_hosts());
    std::vector<lp::Commodity> commodities;
    for (int src = 0; src < net.num_hosts(); ++src) {
      lp::Commodity c;
      c.demand = net.host_uplink_bps();
      for (const auto& p : routing::ksp_across_planes(
               net, HostId{src}, HostId{perm[static_cast<std::size_t>(src)]},
               k, mix64(static_cast<std::uint64_t>(src) + 77))) {
        c.paths.push_back(index.to_global(p));
      }
      commodities.push_back(std::move(c));
    }
    return lp::max_total_flow(index.capacity(), commodities)
        .total_throughput;
  };
  const double serial = throughput(topo::NetworkType::kSerialLow, 1, 8);
  const double parallel =
      throughput(topo::NetworkType::kParallelHomogeneous, 4, 32);
  EXPECT_GT(parallel, 3.0 * serial);  // close to the 4x the planes offer
}

// Fig 7: with free path choice, heterogeneous planes beat the serial
// high-bandwidth network built from the same capacity.
TEST(PaperClaims, HeterogeneousBeatsSerialHighUnconstrained) {
  auto throughput = [&](topo::NetworkType type, int planes) {
    auto spec = jf_spec(type, planes);
    spec.jf_switches = 20;
    spec.jf_degree = 8;
    spec.jf_hosts_per_switch = 1;
    const auto net = topo::build_network(spec);
    const lp::LinkIndex index(net);
    std::vector<lp::OracleCommodity> commodities;
    const int racks = static_cast<int>(net.plane(0).switch_nodes.size());
    for (int a = 0; a < racks; ++a) {
      for (int b = 0; b < racks; ++b) {
        if (a == b) continue;
        lp::OracleCommodity c;
        c.demand = 100e9;
        for (int p = 0; p < net.num_planes(); ++p) {
          c.endpoints.emplace_back(
              net.plane(p).switch_nodes[static_cast<std::size_t>(a)],
              net.plane(p).switch_nodes[static_cast<std::size_t>(b)]);
        }
        commodities.push_back(std::move(c));
      }
    }
    return lp::max_concurrent_flow_oracle(net, index, commodities)
        .total_throughput;
  };
  const double high = throughput(topo::NetworkType::kSerialHigh, 4);
  const double het =
      throughput(topo::NetworkType::kParallelHeterogeneous, 4);
  EXPECT_GT(het, 1.05 * high);
}

// §5.2.1 / Table 2: heterogeneous P-Nets cut small-RPC completion time;
// homogeneous ones match serial (same hop distribution).
TEST(PaperClaims, HeterogeneousCutsRpcMedian) {
  auto median_rpc = [&](topo::NetworkType type) {
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kShortestPlane;
    core::SimHarness h({.spec = jf_spec(type, 4, 96), .policy = policy});
    workload::ClosedLoopApp::Config config;
    config.response_bytes = 1500;
    config.rounds_per_worker = 30;
    workload::ClosedLoopApp app(
        h.starter(), h.all_hosts(), config,
        [&](HostId src, Rng& rng) {
          return workload::random_destination(h.net().num_hosts(), src,
                                              rng);
        },
        [](Rng&) { return std::uint64_t{1500}; });
    app.start(0);
    h.run();
    auto v = app.completion_times_us();
    return percentile(v, 50);
  };
  const double serial = median_rpc(topo::NetworkType::kSerialLow);
  const double hom = median_rpc(topo::NetworkType::kParallelHomogeneous);
  const double het = median_rpc(topo::NetworkType::kParallelHeterogeneous);
  EXPECT_LT(het, 0.95 * serial);
  EXPECT_NEAR(hom, serial, 0.1 * serial);
}

// §5.2.1 serialization argument: the serial high-bandwidth network only
// shaves serialization delay, small next to per-hop propagation.
TEST(PaperClaims, HighBandwidthBarelyHelpsMtuRpcs) {
  auto median_rpc = [&](topo::NetworkType type) {
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kShortestPlane;
    core::SimHarness h({.spec = jf_spec(type, 4, 96), .policy = policy});
    workload::ClosedLoopApp::Config config;
    config.response_bytes = 1500;
    config.rounds_per_worker = 20;
    workload::ClosedLoopApp app(
        h.starter(), h.all_hosts(), config,
        [&](HostId src, Rng& rng) {
          return workload::random_destination(h.net().num_hosts(), src,
                                              rng);
        },
        [](Rng&) { return std::uint64_t{1500}; });
    app.start(0);
    h.run();
    auto v = app.completion_times_us();
    return percentile(v, 50);
  };
  const double serial = median_rpc(topo::NetworkType::kSerialLow);
  const double high = median_rpc(topo::NetworkType::kSerialHigh);
  EXPECT_GT(high, 0.85 * serial);  // < 15% gain from 4x the link speed
  EXPECT_LE(high, serial * 1.001);
}

// Fig 11c: under concurrent RPC load, the serial network's tail explodes
// into 10 ms retransmission timeouts; the P-Net's does not.
TEST(PaperClaims, ConcurrentRpcTailExplodesOnlyOnSerial) {
  auto p99 = [&](topo::NetworkType type) {
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kShortestPlane;
    core::SimHarness h({.spec = jf_spec(type, 4, 48), .policy = policy});
    workload::ClosedLoopApp::Config config;
    config.concurrent_per_host = 8;
    config.response_bytes = 1500;
    config.rounds_per_worker = 20;
    config.seed = 11;
    workload::ClosedLoopApp app(
        h.starter(), h.all_hosts(), config,
        [&](HostId src, Rng& rng) {
          return workload::random_destination(h.net().num_hosts(), src,
                                              rng);
        },
        [](Rng&) { return std::uint64_t{100'000}; });
    app.start(0);
    h.run();
    auto v = app.completion_times_us();
    return percentile(v, 99);
  };
  const double serial = p99(topo::NetworkType::kSerialLow);
  const double pnet = p99(topo::NetworkType::kParallelHomogeneous);
  EXPECT_GT(serial, 9'000.0);  // an RTO (>= 10 ms) dominates the tail
  EXPECT_LT(pnet, 2'000.0);
}

// §3.3 / Table 1: P-Nets cut chips, boxes and hops at equal bisection.
TEST(PaperClaims, ParallelCutsChipsBoxesAndHops) {
  const auto scale_out = core::serial_scale_out(8192, 16);
  const auto chassis = core::serial_chassis(8192, 16, 128);
  const auto parallel = core::parallel_pnet(8192, 16, 8);
  EXPECT_LT(parallel.chips, chassis.chips);
  EXPECT_LE(parallel.boxes, chassis.boxes);
  EXPECT_LT(parallel.hops, chassis.hops);
  EXPECT_LT(parallel.hops, scale_out.hops);
}

}  // namespace
}  // namespace pnet
