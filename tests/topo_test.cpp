// Tests for the topology substrate: Graph invariants, fat tree structure,
// Jellyfish regularity, and ParallelNetwork construction semantics.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "topo/fat_tree.hpp"
#include "topo/graph.hpp"
#include "topo/jellyfish.hpp"
#include "topo/parallel.hpp"

namespace pnet::topo {
namespace {

TEST(Graph, DuplexLinksPairUp) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kSwitch);
  const NodeId b = g.add_node(NodeKind::kSwitch);
  const LinkId fwd = g.add_duplex_link(a, b, 100e9, 5);
  const LinkId rev = g.reverse(fwd);
  EXPECT_EQ(g.link(fwd).src, a);
  EXPECT_EQ(g.link(fwd).dst, b);
  EXPECT_EQ(g.link(rev).src, b);
  EXPECT_EQ(g.link(rev).dst, a);
  EXPECT_EQ(g.reverse(rev), fwd);
  EXPECT_EQ(g.num_links(), 2);
  EXPECT_EQ(g.num_cables(), 1);
}

TEST(Graph, AdjacencyTracksOutLinks) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kSwitch);
  const NodeId b = g.add_node(NodeKind::kSwitch);
  const NodeId c = g.add_node(NodeKind::kSwitch);
  g.add_duplex_link(a, b, 1, 1);
  g.add_duplex_link(a, c, 1, 1);
  EXPECT_EQ(g.out_links(a).size(), 2u);
  EXPECT_EQ(g.out_links(b).size(), 1u);
  EXPECT_EQ(g.out_links(c).size(), 1u);
}

TEST(Graph, HostNodesCarryHostIds) {
  Graph g;
  const NodeId h = g.add_node(NodeKind::kHost, HostId{17});
  EXPECT_TRUE(g.is_host(h));
  EXPECT_EQ(g.node(h).host, HostId{17});
  EXPECT_EQ(g.hosts().size(), 1u);
  EXPECT_EQ(g.switches().size(), 0u);
}

class FatTreeStructure : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeStructure, CountsMatchFormulas) {
  const int k = GetParam();
  FatTreeConfig config;
  config.k = k;
  const FatTree ft = build_fat_tree(config);
  EXPECT_EQ(ft.num_hosts(), k * k * k / 4);
  EXPECT_EQ(static_cast<int>(ft.edge_switches.size()), k * k / 2);
  EXPECT_EQ(static_cast<int>(ft.agg_switches.size()), k * k / 2);
  EXPECT_EQ(static_cast<int>(ft.core_switches.size()), k * k / 4);
  // Cables: hosts + edge-agg mesh + agg-core. Each is k^3/4.
  EXPECT_EQ(ft.graph.num_cables(), 3 * k * k * k / 4);
}

TEST_P(FatTreeStructure, SwitchRadixIsK) {
  const int k = GetParam();
  FatTreeConfig config;
  config.k = k;
  const FatTree ft = build_fat_tree(config);
  const Graph& g = ft.graph;
  for (NodeId sw : ft.edge_switches) {
    EXPECT_EQ(static_cast<int>(g.out_links(sw).size()), k);
  }
  for (NodeId sw : ft.agg_switches) {
    EXPECT_EQ(static_cast<int>(g.out_links(sw).size()), k);
  }
  for (NodeId sw : ft.core_switches) {
    EXPECT_EQ(static_cast<int>(g.out_links(sw).size()), k);
  }
  for (NodeId h : ft.host_nodes) {
    EXPECT_EQ(g.out_links(h).size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Radices, FatTreeStructure,
                         ::testing::Values(4, 6, 8, 16));

TEST(FatTree, RejectsOddRadix) {
  FatTreeConfig config;
  config.k = 5;
  EXPECT_THROW(build_fat_tree(config), std::invalid_argument);
}

TEST(FatTree, RackAndPodMapping) {
  FatTreeConfig config;
  config.k = 4;
  const FatTree ft = build_fat_tree(config);
  // k=4: 16 hosts, 2 hosts per rack, 4 hosts per pod.
  EXPECT_EQ(ft.rack_of_host(0), 0);
  EXPECT_EQ(ft.rack_of_host(1), 0);
  EXPECT_EQ(ft.rack_of_host(2), 1);
  EXPECT_EQ(ft.pod_of_host(3), 0);
  EXPECT_EQ(ft.pod_of_host(4), 1);
}

TEST(FatTree, KForHosts) {
  EXPECT_EQ(fat_tree_k_for_hosts(16), 4);
  EXPECT_EQ(fat_tree_k_for_hosts(17), 6);
  EXPECT_EQ(fat_tree_k_for_hosts(128), 8);
  EXPECT_EQ(fat_tree_k_for_hosts(1024), 16);
}

class JellyfishRegularity
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(JellyfishRegularity, IsSimpleAndNearRegular) {
  const auto [n, r, seed] = GetParam();
  JellyfishConfig config;
  config.num_switches = n;
  config.network_degree = r;
  config.hosts_per_switch = 3;
  config.seed = seed;
  const Jellyfish jf = build_jellyfish(config);
  const Graph& g = jf.graph;

  // Count switch-to-switch degrees and check simplicity (no multi-edges,
  // no self-loops).
  std::map<int, int> degree;
  std::set<std::pair<int, int>> seen;
  for (int l = 0; l < g.num_links(); ++l) {
    const Link& link = g.link(LinkId{l});
    if (g.is_host(link.src) || g.is_host(link.dst)) continue;
    EXPECT_NE(link.src, link.dst);
    EXPECT_TRUE(seen.emplace(link.src.v, link.dst.v).second)
        << "duplicate switch link";
    ++degree[link.src.v];
  }
  int total_degree = 0;
  for (NodeId sw : jf.switch_nodes) {
    const int d = degree[sw.v];
    EXPECT_LE(d, r);
    total_degree += d;
  }
  // The construction may leave at most one port unwired overall.
  EXPECT_GE(total_degree, n * r - 2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JellyfishRegularity,
    ::testing::Values(std::tuple{10, 3, 1u}, std::tuple{20, 5, 2u},
                      std::tuple{98, 7, 3u}, std::tuple{64, 8, 4u},
                      std::tuple{128, 11, 5u}));

TEST(Jellyfish, DifferentSeedsGiveDifferentGraphs) {
  JellyfishConfig a;
  a.num_switches = 30;
  a.network_degree = 5;
  a.seed = 1;
  JellyfishConfig b = a;
  b.seed = 2;
  const Jellyfish ja = build_jellyfish(a);
  const Jellyfish jb = build_jellyfish(b);

  auto edge_set = [](const Jellyfish& jf) {
    std::set<std::pair<int, int>> edges;
    for (int l = 0; l < jf.graph.num_links(); ++l) {
      const Link& link = jf.graph.link(LinkId{l});
      if (jf.graph.is_host(link.src) || jf.graph.is_host(link.dst)) continue;
      edges.emplace(link.src.v, link.dst.v);
    }
    return edges;
  };
  EXPECT_NE(edge_set(ja), edge_set(jb));
}

TEST(Jellyfish, SameSeedIsDeterministic) {
  JellyfishConfig config;
  config.num_switches = 30;
  config.network_degree = 5;
  config.seed = 9;
  const Jellyfish a = build_jellyfish(config);
  const Jellyfish b = build_jellyfish(config);
  ASSERT_EQ(a.graph.num_links(), b.graph.num_links());
  for (int l = 0; l < a.graph.num_links(); ++l) {
    EXPECT_EQ(a.graph.link(LinkId{l}).src, b.graph.link(LinkId{l}).src);
    EXPECT_EQ(a.graph.link(LinkId{l}).dst, b.graph.link(LinkId{l}).dst);
  }
}

TEST(Jellyfish, RejectsImpossibleShapes) {
  JellyfishConfig config;
  config.num_switches = 5;
  config.network_degree = 5;  // r >= n
  EXPECT_THROW(build_jellyfish(config), std::invalid_argument);
  config.num_switches = 5;
  config.network_degree = 3;  // n*r odd
  EXPECT_THROW(build_jellyfish(config), std::invalid_argument);
}

TEST(ParallelNetwork, SerialTypesHaveOnePlane) {
  NetworkSpec spec;
  spec.topo = TopoKind::kFatTree;
  spec.hosts = 16;
  spec.parallelism = 4;

  spec.type = NetworkType::kSerialLow;
  const auto low = build_network(spec);
  EXPECT_EQ(low.num_planes(), 1);
  EXPECT_DOUBLE_EQ(low.plane(0).link_rate_bps, 100e9);
  EXPECT_EQ(low.parallelism(), 4);

  spec.type = NetworkType::kSerialHigh;
  const auto high = build_network(spec);
  EXPECT_EQ(high.num_planes(), 1);
  EXPECT_DOUBLE_EQ(high.plane(0).link_rate_bps, 400e9);
}

TEST(ParallelNetwork, ParallelTypesHaveNPlanes) {
  NetworkSpec spec;
  spec.topo = TopoKind::kJellyfish;
  spec.hosts = 63;
  spec.parallelism = 4;
  spec.type = NetworkType::kParallelHomogeneous;
  const auto hom = build_network(spec);
  EXPECT_EQ(hom.num_planes(), 4);
  EXPECT_DOUBLE_EQ(hom.host_uplink_bps(), 400e9);
  EXPECT_EQ(hom.num_hosts(), hom.plane(0).host_nodes.size() > 0
                                 ? static_cast<int>(hom.plane(0).host_nodes.size())
                                 : 0);
}

TEST(ParallelNetwork, HomogeneousPlanesAreIdentical) {
  NetworkSpec spec;
  spec.topo = TopoKind::kJellyfish;
  spec.hosts = 63;
  spec.parallelism = 3;
  spec.type = NetworkType::kParallelHomogeneous;
  const auto net = build_network(spec);
  for (int p = 1; p < net.num_planes(); ++p) {
    ASSERT_EQ(net.plane(p).graph.num_links(), net.plane(0).graph.num_links());
    for (int l = 0; l < net.plane(0).graph.num_links(); ++l) {
      EXPECT_EQ(net.plane(p).graph.link(LinkId{l}).src,
                net.plane(0).graph.link(LinkId{l}).src);
      EXPECT_EQ(net.plane(p).graph.link(LinkId{l}).dst,
                net.plane(0).graph.link(LinkId{l}).dst);
    }
  }
}

TEST(ParallelNetwork, HeterogeneousPlanesDiffer) {
  NetworkSpec spec;
  spec.topo = TopoKind::kJellyfish;
  spec.hosts = 63;
  spec.parallelism = 3;
  spec.type = NetworkType::kParallelHeterogeneous;
  const auto net = build_network(spec);
  bool any_difference = false;
  for (int p = 1; p < net.num_planes() && !any_difference; ++p) {
    if (net.plane(p).graph.num_links() != net.plane(0).graph.num_links()) {
      any_difference = true;
      break;
    }
    for (int l = 0; l < net.plane(0).graph.num_links(); ++l) {
      if (net.plane(p).graph.link(LinkId{l}).src !=
              net.plane(0).graph.link(LinkId{l}).src ||
          net.plane(p).graph.link(LinkId{l}).dst !=
              net.plane(0).graph.link(LinkId{l}).dst) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ParallelNetwork, HostNodeLookupConsistent) {
  NetworkSpec spec;
  spec.topo = TopoKind::kFatTree;
  spec.hosts = 16;
  spec.parallelism = 2;
  spec.type = NetworkType::kParallelHomogeneous;
  const auto net = build_network(spec);
  for (int p = 0; p < net.num_planes(); ++p) {
    for (int h = 0; h < net.num_hosts(); ++h) {
      const NodeId node = net.host_node(p, HostId{h});
      EXPECT_TRUE(net.plane(p).graph.is_host(node));
      EXPECT_EQ(net.plane(p).graph.node(node).host, HostId{h});
    }
  }
}

TEST(ParallelNetwork, RackMapping) {
  NetworkSpec spec;
  spec.topo = TopoKind::kFatTree;
  spec.hosts = 16;  // k=4 -> 2 hosts per rack
  const auto net = build_network(spec);
  EXPECT_EQ(net.hosts_per_rack(), 2);
  EXPECT_EQ(net.num_racks(), 8);
  EXPECT_EQ(net.rack_of_host(HostId{0}), 0);
  EXPECT_EQ(net.rack_of_host(HostId{3}), 1);
}

TEST(ParallelNetwork, TypeNames) {
  EXPECT_EQ(to_string(NetworkType::kSerialLow), "serial-low-bw");
  EXPECT_EQ(to_string(NetworkType::kParallelHeterogeneous),
            "parallel-heterogeneous");
  EXPECT_EQ(to_string(TopoKind::kJellyfish), "jellyfish");
}

}  // namespace
}  // namespace pnet::topo
