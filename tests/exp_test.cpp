// Tests for the experiment layer (src/exp): spec validation, the
// deterministic JSON writer, and the runner's central guarantee — the
// timing-free report is a pure function of (spec, seed), byte-identical
// across repeated runs and across --threads values, for both engines.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/json.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "util/parallel.hpp"
#include "util/units.hpp"

namespace pnet::exp {
namespace {

// ------------------------------------------------------------- validation

ExperimentSpec small_packet_spec(const std::string& name) {
  ExperimentSpec spec;
  spec.name = name;
  spec.engine = EngineKind::kPacket;
  spec.topo.topo = topo::TopoKind::kFatTree;
  spec.topo.type = topo::NetworkType::kParallelHomogeneous;
  spec.topo.hosts = 8;
  spec.topo.parallelism = 2;
  spec.policy.policy = core::RoutingPolicy::kRoundRobin;
  spec.workload.flow_bytes = 200'000;
  spec.workload.rounds = 1;
  spec.seed = 7;
  spec.trials = 2;
  return spec;
}

TEST(ExperimentSpec, ValidSpecPasses) {
  EXPECT_EQ(small_packet_spec("ok").validate(), "");
}

TEST(ExperimentSpec, RejectsBadFields) {
  auto spec = small_packet_spec("bad");
  spec.name = "";
  EXPECT_NE(spec.validate(), "");

  spec = small_packet_spec("bad");
  spec.trials = 0;
  EXPECT_NE(spec.validate(), "");

  spec = small_packet_spec("bad");
  spec.topo.hosts = 1;
  EXPECT_NE(spec.validate(), "");

  spec = small_packet_spec("bad");
  spec.workload.flow_bytes = 0;
  EXPECT_NE(spec.validate(), "");

  // A deadline across drained back-to-back rounds is meaningless.
  spec = small_packet_spec("bad");
  spec.workload.rounds = 2;
  spec.workload.round_gap = 0;
  spec.deadline = units::kMillisecond;
  EXPECT_NE(spec.validate(), "");
}

TEST(ExperimentSpec, CustomEngineSkipsEngineFieldChecks) {
  ExperimentSpec spec;
  spec.name = "custom";
  spec.engine = EngineKind::kCustom;
  spec.topo.hosts = 0;  // would fail for the built-in engines
  EXPECT_EQ(spec.validate(), "");
}

TEST(Runner, ThrowsOnInvalidSpecAndMissingCustomFn) {
  Runner runner(1);
  auto bad = small_packet_spec("bad");
  bad.trials = 0;
  EXPECT_THROW(runner.run_cell({bad, {}}), std::invalid_argument);

  ExperimentSpec custom;
  custom.name = "no-fn";
  custom.engine = EngineKind::kCustom;
  EXPECT_THROW(runner.run_cell({custom, {}}), std::invalid_argument);
}

// ------------------------------------------------------------ JSON writer

TEST(JsonWriter, EmitsBalancedDocuments) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "a\"b\n");
  w.field("count", std::uint64_t{3});
  w.key("list").begin_array();
  w.value(1.5);
  w.value(false);
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a\\\"b\\n\",\"count\":3,\"list\":[1.5,false]}");
}

TEST(JsonWriter, DoublesRoundTripShortest) {
  for (double v : {0.0, -1.0, 0.1, 1e300, 3.14159265358979,
                   123456789.123456789}) {
    const std::string s = json_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  // Integral doubles print without an exponent soup.
  EXPECT_EQ(json_double(42.0), "42");
}

// ------------------------------------------------------------ parallelism

TEST(ParallelMap, ResultsInJobOrderForAnyThreadCount) {
  std::vector<int> jobs;
  for (int i = 0; i < 100; ++i) jobs.push_back(i);
  const auto square = [](const int& v) { return v * v; };
  const auto one = util::parallel_map(jobs, square, 1);
  const auto four = util::parallel_map(jobs, square, 4);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one[99], 99 * 99);
}

TEST(ParallelMap, JobSeedIsStableAndDecorrelated) {
  EXPECT_EQ(util::job_seed(1, 0), util::job_seed(1, 0));
  EXPECT_NE(util::job_seed(1, 0), util::job_seed(1, 1));
  EXPECT_NE(util::job_seed(1, 0), util::job_seed(2, 0));
}

// ------------------------------------------------- determinism contract

std::string run_report_json(const std::vector<Cell>& cells,
                            int threads) {
  Runner runner(threads);
  Report report("determinism");
  for (auto& cell : runner.run(cells)) report.add(std::move(cell));
  return report.to_json(/*with_runtime=*/false);
}

TEST(Runner, PacketEngineReportIsByteIdenticalAcrossThreadsAndRuns) {
  auto spec = small_packet_spec("packet-cell");
  spec.trials = 3;
  const std::vector<Cell> cells = {{spec, {}}};
  const std::string one = run_report_json(cells, 1);
  EXPECT_EQ(one, run_report_json(cells, 4));
  EXPECT_EQ(one, run_report_json(cells, 1));
  EXPECT_NE(one.find("\"unfinished\":0"), std::string::npos);
}

TEST(Runner, FsimEngineReportIsByteIdenticalAcrossThreadsAndRuns) {
  auto spec = small_packet_spec("fsim-cell");
  spec.engine = EngineKind::kFsim;
  spec.trials = 4;
  spec.workload.rounds = 2;
  const std::vector<Cell> cells = {{spec, {}}};
  const std::string one = run_report_json(cells, 1);
  EXPECT_EQ(one, run_report_json(cells, 4));
  EXPECT_EQ(one, run_report_json(cells, 1));
}

TEST(Runner, MixedCellsMergeInSubmissionOrder) {
  auto packet = small_packet_spec("a-packet");
  auto fsim = small_packet_spec("b-fsim");
  fsim.engine = EngineKind::kFsim;
  ExperimentSpec custom;
  custom.name = "c-custom";
  custom.engine = EngineKind::kCustom;
  custom.trials = 2;
  custom.seed = 11;
  const TrialFn fn = [](const TrialContext& ctx) {
    TrialResult r;
    r.metrics["seed_lo"] = static_cast<double>(ctx.seed & 0xFFFF);
    r.flows_started = 1;
    r.flows_finished = 1;
    return r;
  };
  const std::vector<Cell> cells = {{packet, {}}, {fsim, {}},
                                           {custom, fn}};
  const auto results = Runner(4).run(cells);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].spec.name, "a-packet");
  EXPECT_EQ(results[1].spec.name, "b-fsim");
  EXPECT_EQ(results[2].spec.name, "c-custom");
  EXPECT_EQ(results[2].trials.size(), 2u);
}

TEST(Runner, CustomTrialsSeePerTrialJobSeeds) {
  ExperimentSpec spec;
  spec.name = "seeded";
  spec.engine = EngineKind::kCustom;
  spec.seed = 42;
  spec.trials = 3;
  std::atomic<int> calls{0};
  const TrialFn fn = [&calls](const TrialContext& ctx) {
    EXPECT_EQ(ctx.seed, util::job_seed(42, static_cast<std::uint64_t>(
                                               ctx.trial)));
    ++calls;
    TrialResult r;
    r.metrics["trial"] = ctx.trial;
    return r;
  };
  const auto cell = Runner(2).run_cell({spec, fn});
  EXPECT_EQ(calls.load(), 3);
  ASSERT_EQ(cell.trials.size(), 3u);
  // Trials land in trial order regardless of which worker ran them.
  for (int t = 0; t < 3; ++t) {
    EXPECT_DOUBLE_EQ(cell.trials[t].metrics.at("trial"), t);
  }
}

// ------------------------------------------------------ engine interface

TEST(Engine, MakeEngineResolvesEveryKind) {
  EXPECT_NE(make_engine(EngineKind::kPacket), nullptr);
  EXPECT_NE(make_engine(EngineKind::kFsim), nullptr);
  EXPECT_NE(make_engine(EngineKind::kCustom,
                        [](const TrialContext&) { return TrialResult{}; }),
            nullptr);
  EXPECT_THROW(make_engine(EngineKind::kCustom), std::invalid_argument);
  // A fn overrides a built-in kind (the historical Cell{spec, fn} rule).
  auto wrapped = make_engine(EngineKind::kPacket, [](const TrialContext&) {
    TrialResult r;
    r.metrics["wrapped"] = 1.0;
    return r;
  });
  const auto spec = small_packet_spec("wrapped");
  const auto cell = wrapped->run(spec, {});
  ASSERT_EQ(cell.trials.size(), 2u);
  EXPECT_DOUBLE_EQ(cell.trials[0].metrics.at("wrapped"), 1.0);
}

TEST(Engine, DirectRunMatchesRunnerDispatch) {
  // Engine::run (sequential) and the Runner's threaded fan-out must agree
  // for both built-in engines: same trials, same deterministic payloads.
  for (const auto kind : {EngineKind::kPacket, EngineKind::kFsim}) {
    auto spec = small_packet_spec(std::string("direct-") + to_string(kind));
    spec.engine = kind;
    spec.trials = 3;
    const auto direct = make_engine(kind)->run(spec, {});
    const auto via_runner = Runner(3).run_cell({spec, {}});
    ASSERT_EQ(direct.trials.size(), via_runner.trials.size());
    for (std::size_t t = 0; t < direct.trials.size(); ++t) {
      EXPECT_EQ(direct.trials[t].fct_us, via_runner.trials[t].fct_us);
      EXPECT_EQ(direct.trials[t].metrics, via_runner.trials[t].metrics);
      EXPECT_EQ(direct.trials[t].flows_finished,
                via_runner.trials[t].flows_finished);
    }
  }
}

TEST(Engine, TelemetryContextYieldsFoldedSeriesAndTrace) {
  auto spec = small_packet_spec("instrumented");
  spec.trials = 1;
  EngineContext ctx;
  ctx.telemetry = {.sample_every = 100 * units::kMicrosecond,
                   .trace = true};
  const auto cell = PacketEngine().run(spec, ctx);
  ASSERT_EQ(cell.trials.size(), 1u);
  const auto& trial = cell.trials[0];
  EXPECT_NE(trial.samples.find("tm/t_us"), trial.samples.end());
  EXPECT_NE(trial.samples.find("tm/goodput_bps"), trial.samples.end());
  EXPECT_NE(trial.metrics.find("tm/flows_started"), trial.metrics.end());
  ASSERT_NE(trial.trace, nullptr);
  EXPECT_GT(trial.trace->size(), 0u);

  // Disabled context = no telemetry keys, no trace (the zero-cost path).
  const auto plain = PacketEngine().run(spec, {});
  EXPECT_TRUE(plain.trials[0].samples.empty());
  EXPECT_EQ(plain.trials[0].trace, nullptr);
}

// ------------------------------------------------- unfinished accounting

TEST(Runner, DeadlineSurfacesUnfinishedFlowsInReport) {
  auto spec = small_packet_spec("cut-short");
  spec.trials = 1;
  spec.workload.flow_bytes = 50'000'000;  // cannot finish in 50 us
  spec.deadline = 50 * units::kMicrosecond;
  Runner runner(1);
  Report report("unfinished");
  report.add(runner.run_cell({spec, {}}));
  EXPECT_GT(report.total_unfinished_flows(), 0u);
  const std::string json = report.to_json(false);
  EXPECT_EQ(json.find("\"unfinished\":0"), std::string::npos);
  EXPECT_NE(json.find("\"unfinished\":"), std::string::npos);
}

TEST(Report, RuntimeBlockOnlyWithTiming) {
  auto spec = small_packet_spec("timing");
  spec.trials = 1;
  Runner runner(1);
  Report report("timing");
  report.add(runner.run_cell({spec, {}}));
  report.record_runtime(0.5, 2);
  EXPECT_EQ(report.to_json(false).find("runtime"), std::string::npos);
  EXPECT_NE(report.to_json(true).find("runtime"), std::string::npos);
}

}  // namespace
}  // namespace pnet::exp
