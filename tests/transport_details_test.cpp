// White-box transport tests: receiver reassembly under loss/reordering,
// DCTCP window dynamics, RTT estimation, and MPTCP byte accounting —
// exercised through hand-built micro-networks rather than full topologies.
#include <gtest/gtest.h>

#include "core/harness.hpp"
#include "sim/event_queue.hpp"
#include "sim/mptcp.hpp"
#include "sim/network.hpp"
#include "sim/pipe.hpp"
#include "sim/queue.hpp"
#include "sim/tcp.hpp"

namespace pnet::sim {
namespace {

using namespace pnet::units;

/// Two hosts joined by one queue+pipe in each direction.
struct Wire {
  explicit Wire(double rate_bps = 100e9,
                std::uint64_t buffer = 100 * 1500,
                std::uint64_t ecn_threshold = 0)
      : fwd_queue(events, pool, rate_bps, buffer, ecn_threshold),
        fwd_pipe(events, kMicrosecond),
        rev_queue(events, pool, rate_bps, buffer, ecn_threshold),
        rev_pipe(events, kMicrosecond) {}

  /// Builds a TCP connection over the wire; returns the source.
  TcpSrc& connect(std::uint64_t bytes, const TcpParams& params = {}) {
    src = std::make_unique<TcpSrc>(events, pool, FlowId{1}, params);
    sink = std::make_unique<TcpSink>(events, pool, params);
    fwd_route.assign({&fwd_queue, &fwd_pipe, sink.get()}, 1);
    rev_route.assign({&rev_queue, &rev_pipe, src.get()}, 1);
    sink->set_ack_route(&rev_route);
    src->set_flow_size(bytes);
    src->connect(&fwd_route, 0);
    return *src;
  }

  EventQueue events;
  PacketPool pool;
  Queue fwd_queue;
  Pipe fwd_pipe;
  Queue rev_queue;
  Pipe rev_pipe;
  OwnedRoute fwd_route;
  OwnedRoute rev_route;
  std::unique_ptr<TcpSrc> src;
  std::unique_ptr<TcpSink> sink;
};

TEST(TcpDetails, RttEstimateMatchesWireDelay) {
  // Small flow (finishes in slow start, no standing queue): SRTT must land
  // near the 2 us wire RTT. A bulk flow would legitimately measure higher
  // because cwnd overshoot queues behind itself.
  Wire wire;
  auto& src = wire.connect(30'000);
  wire.events.run();
  ASSERT_TRUE(src.complete());
  EXPECT_GT(src.smoothed_rtt(), 2 * kMicrosecond);
  EXPECT_LT(src.smoothed_rtt(), 4 * kMicrosecond);
}

TEST(TcpDetails, BulkFlowMeasuresItsOwnQueueingDelay) {
  Wire wire;
  auto& src = wire.connect(1'000'000);
  wire.events.run();
  ASSERT_TRUE(src.complete());
  // cwnd overshoots the 25 kB bandwidth-delay product; the standing queue
  // inflates the RTT estimate well beyond the 2 us wire.
  EXPECT_GT(src.smoothed_rtt(), 4 * kMicrosecond);
}

TEST(TcpDetails, SinkReassemblesArbitraryInjectionOrder) {
  Wire wire;
  TcpParams params;
  TcpSink sink(wire.events, wire.pool, params);
  // ACK route: count cumulative acks at a capture sink.
  struct Capture : PacketSink {
    explicit Capture(PacketPool& pool) : pool_(pool) {}
    void receive(Packet& p) override {
      last_cum = p.ack_seq;
      pool_.free(&p);
    }
    std::uint64_t last_cum = 0;
    PacketPool& pool_;
  } capture(wire.pool);
  OwnedRoute ack_route({&capture});
  sink.set_ack_route(&ack_route);

  auto inject = [&](std::uint64_t seq, std::uint32_t size) {
    Packet* p = wire.pool.allocate();
    p->seq = seq;
    p->size_bytes = size;
    p->is_ack = false;
    // Deliver straight into the sink.
    sink.receive(*p);
  };
  // Segments 0..4 of 1000 bytes, delivered 3, 1, 4, 0, 2.
  inject(3000, 1000);
  EXPECT_EQ(capture.last_cum, 0u);
  inject(1000, 1000);
  EXPECT_EQ(capture.last_cum, 0u);
  inject(4000, 1000);
  inject(0, 1000);
  EXPECT_EQ(capture.last_cum, 2000u);  // 0 and 1 contiguous
  inject(2000, 1000);
  EXPECT_EQ(capture.last_cum, 5000u);  // everything drains
}

TEST(TcpDetails, DuplicateSegmentsDoNotConfuseReassembly) {
  Wire wire;
  TcpParams params;
  TcpSink sink(wire.events, wire.pool, params);
  struct Capture : PacketSink {
    explicit Capture(PacketPool& pool) : pool_(pool) {}
    void receive(Packet& p) override {
      last_cum = p.ack_seq;
      pool_.free(&p);
    }
    std::uint64_t last_cum = 0;
    PacketPool& pool_;
  } capture(wire.pool);
  OwnedRoute ack_route({&capture});
  sink.set_ack_route(&ack_route);

  auto inject = [&](std::uint64_t seq) {
    Packet* p = wire.pool.allocate();
    p->seq = seq;
    p->size_bytes = 1000;
    sink.receive(*p);
  };
  inject(1000);
  inject(1000);  // duplicate out-of-order segment
  inject(0);
  EXPECT_EQ(capture.last_cum, 2000u);
  inject(0);  // duplicate of delivered data
  EXPECT_EQ(capture.last_cum, 2000u);
}

TEST(TcpDetails, DctcpCutsWindowProportionally) {
  // ECN threshold low enough that a standing queue marks everything: the
  // DCTCP flow must keep cwnd bounded near the threshold region without a
  // single drop, while plain NewReno fills the buffer and drops.
  TcpParams dctcp_params;
  dctcp_params.dctcp = true;
  Wire dctcp_wire(10e9, 100 * 1500, 20 * 1500);
  auto& dctcp_src = dctcp_wire.connect(20'000'000, dctcp_params);
  dctcp_wire.events.run();
  ASSERT_TRUE(dctcp_src.complete());
  EXPECT_EQ(dctcp_wire.fwd_queue.drops(), 0u);
  EXPECT_GT(dctcp_wire.fwd_queue.ecn_marks(), 0u);

  Wire reno_wire(10e9, 100 * 1500, 0);
  auto& reno_src = reno_wire.connect(20'000'000);
  reno_wire.events.run();
  ASSERT_TRUE(reno_src.complete());
  EXPECT_GT(reno_wire.fwd_queue.drops(), 0u);
}

TEST(TcpDetails, DctcpThroughputNotCrippled) {
  TcpParams params;
  params.dctcp = true;
  Wire wire(10e9, 100 * 1500, 20 * 1500);
  auto& src = wire.connect(20'000'000, params);
  wire.events.run();
  const double seconds = units::to_seconds(src.completion_time());
  const double goodput = 20e6 * 8.0 / seconds;
  EXPECT_GT(goodput, 0.8 * 10e9);
}

TEST(MptcpDetails, PullExhaustsExactlyFlowSize) {
  EventQueue events;
  PacketPool pool;
  TcpParams params;
  MptcpConnection conn(events, pool, FlowId{1}, params, 10'000);
  EXPECT_EQ(conn.pull(4000), 4000u);
  EXPECT_EQ(conn.pull(4000), 4000u);
  EXPECT_EQ(conn.pull(4000), 2000u);  // only the remainder
  EXPECT_EQ(conn.pull(4000), 0u);
}

TEST(MptcpDetails, CompletionFiresOnceAtExactBytes) {
  EventQueue events;
  PacketPool pool;
  TcpParams params;
  MptcpConnection conn(events, pool, FlowId{1}, params, 10'000);
  int completions = 0;
  conn.set_completion_callback([&](MptcpConnection&) { ++completions; });
  conn.report_delivered(9'999);
  EXPECT_EQ(completions, 0);
  conn.report_delivered(1);
  EXPECT_EQ(completions, 1);
  conn.report_delivered(5'000);  // straggler duplicates change nothing
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(conn.complete());
}

TEST(MptcpDetails, StaggeredJoinReproducesShortFlowPenalty) {
  // With MP_JOIN staggering on, a sub-RTT flow can only use its primary
  // subflow — multipath stops helping tiny flows, the paper's §5.1.2
  // caveat. Compare against the instant-subflow default.
  auto run = [](bool staggered) {
    pnet::topo::NetworkSpec spec;
    spec.topo = pnet::topo::TopoKind::kFatTree;
    spec.type = pnet::topo::NetworkType::kParallelHomogeneous;
    spec.hosts = 16;
    spec.parallelism = 4;
    pnet::core::PolicyConfig policy;
    policy.policy = pnet::core::RoutingPolicy::kKspMultipath;
    policy.k = 4;
    sim::SimConfig sim_config;
    sim_config.tcp.mptcp_staggered_join = staggered;
    pnet::core::SimHarness h({.spec = spec, .policy = policy, .sim_config = sim_config});
    h.starter()(HostId{0}, HostId{15}, 45'000, 0, {});  // 30 packets
    h.run();
    return h.logger().fct_us().front();
  };
  const double instant = run(false);
  const double staggered = run(true);
  EXPECT_GT(staggered, instant);
}

TEST(MptcpDetails, StaggeredJoinBarelyAffectsBulkFlows) {
  auto run = [](bool staggered) {
    pnet::topo::NetworkSpec spec;
    spec.topo = pnet::topo::TopoKind::kFatTree;
    spec.type = pnet::topo::NetworkType::kParallelHomogeneous;
    spec.hosts = 16;
    spec.parallelism = 2;
    pnet::core::PolicyConfig policy;
    policy.policy = pnet::core::RoutingPolicy::kKspMultipath;
    policy.k = 2;
    sim::SimConfig sim_config;
    sim_config.tcp.mptcp_staggered_join = staggered;
    pnet::core::SimHarness h({.spec = spec, .policy = policy, .sim_config = sim_config});
    h.starter()(HostId{0}, HostId{15}, 50'000'000, 0, {});
    h.run();
    return h.logger().fct_us().front();
  };
  const double instant = run(false);
  const double staggered = run(true);
  EXPECT_NEAR(staggered, instant, 0.05 * instant);
}

TEST(MptcpDetails, LiaAlphaBoundedBySingleFlowIncrease) {
  // With one subflow, LIA must reduce to plain TCP's increase.
  EventQueue events;
  PacketPool pool;
  TcpParams params;
  MptcpConnection conn(events, pool, FlowId{1}, params, 1 << 20);
  MptcpSubflow& sf = conn.add_subflow();
  (void)sf;
  // No RTT samples yet: falls back to the uncoupled increase, which for
  // bytes_acked = mss is at most mss^2/cwnd.
  const auto inc = conn.lia_increase(conn.subflow(0), params.mss);
  EXPECT_LE(inc, static_cast<std::uint64_t>(params.mss));
  EXPECT_GE(inc, 1u);
}

}  // namespace
}  // namespace pnet::sim
