// The pnet-serve service boundary: the strict bounded JSON parser, the
// request decoder, the spec-hash result cache, and the Service pipeline
// (admission, dedup, deadlines, overload, drain). The hostile-input cases
// are the contract the daemon lives by: malformed, truncated, oversized,
// or adversarial spec JSON must produce a structured {"ok":false,...}
// reply — never a crash, never a silent coercion.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "exp/engine.hpp"
#include "serve/cache.hpp"
#include "serve/json_value.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"

namespace pnet::serve {
namespace {

// ------------------------------------------------------------- the parser

std::string parse_error(std::string_view text, ParseLimits limits = {}) {
  JsonValue out;
  std::string error;
  EXPECT_FALSE(parse_json(text, out, error, limits)) << text;
  return error;
}

JsonValue parse_ok(std::string_view text) {
  JsonValue out;
  std::string error;
  EXPECT_TRUE(parse_json(text, out, error)) << error;
  return out;
}

TEST(JsonParser, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").boolean);
  EXPECT_FALSE(parse_ok("false").boolean);
  EXPECT_DOUBLE_EQ(parse_ok("-12.5e2").number, -1250.0);
  EXPECT_EQ(parse_ok("\"hi\\n\"").text, "hi\n");
}

TEST(JsonParser, NestedContainersKeepDocumentOrder) {
  const auto v = parse_ok(R"({"b":[1,2,{"c":true}],"a":null})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members.size(), 2u);
  EXPECT_EQ(v.members[0].first, "b");  // document order, not sorted
  EXPECT_EQ(v.members[1].first, "a");
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_TRUE(b->items[2].find("c")->boolean);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParser, UnicodeEscapes) {
  EXPECT_EQ(parse_ok("\"\\u0041\"").text, "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").text, "\xc3\xa9");          // é
  EXPECT_EQ(parse_ok("\"\\ud83d\\ude00\"").text,
            "\xf0\x9f\x98\x80");                                 // 😀
  EXPECT_NE(parse_error("\"\\ud83d\"").find("surrogate"),
            std::string::npos);  // unpaired high surrogate
  EXPECT_NE(parse_error("\"\\ude00\"").find("surrogate"),
            std::string::npos);  // lone low surrogate
}

TEST(JsonParser, RejectsNonFiniteNumbers) {
  // NaN/Infinity are not JSON tokens; 1e999 overflows to inf and must be
  // rejected rather than entering the spec as a non-finite double.
  EXPECT_FALSE(parse_error("NaN").empty());
  EXPECT_FALSE(parse_error("Infinity").empty());
  EXPECT_FALSE(parse_error("-Infinity").empty());
  EXPECT_NE(parse_error("1e999").find("non-finite"), std::string::npos);
  EXPECT_NE(parse_error("[-1e999]").find("non-finite"), std::string::npos);
}

TEST(JsonParser, RejectsMalformedGrammar) {
  EXPECT_FALSE(parse_error("").empty());
  EXPECT_FALSE(parse_error("{").empty());
  EXPECT_FALSE(parse_error("{\"a\":1,}").empty());
  EXPECT_FALSE(parse_error("[1,]").empty());
  EXPECT_FALSE(parse_error("01").empty());      // leading zero
  EXPECT_FALSE(parse_error(".5").empty());      // bare fraction
  EXPECT_FALSE(parse_error("1.").empty());      // trailing dot
  EXPECT_FALSE(parse_error("'single'").empty());
  EXPECT_FALSE(parse_error("{\"a\" 1}").empty());
  EXPECT_FALSE(parse_error("\"unterminated").empty());
  EXPECT_FALSE(parse_error("\"ctrl\x01char\"").empty());
  EXPECT_FALSE(parse_error("tru").empty());
}

TEST(JsonParser, RejectsTrailingGarbage) {
  EXPECT_NE(parse_error("{} {}").find("trailing"), std::string::npos);
  EXPECT_NE(parse_error("1 2").find("trailing"), std::string::npos);
}

TEST(JsonParser, RejectsDuplicateKeys) {
  EXPECT_NE(parse_error(R"({"a":1,"a":2})").find("duplicate"),
            std::string::npos);
}

TEST(JsonParser, EnforcesDepthAndByteLimits) {
  std::string deep;
  for (int i = 0; i < 40; ++i) deep += "[";
  EXPECT_NE(parse_error(deep).find("nesting too deep"), std::string::npos);
  // Depth exactly at the limit parses.
  std::string ok_deep;
  for (int i = 0; i < 32; ++i) ok_deep += "[";
  for (int i = 0; i < 32; ++i) ok_deep += "]";
  JsonValue out;
  std::string error;
  EXPECT_TRUE(parse_json(ok_deep, out, error)) << error;

  ParseLimits tight;
  tight.max_bytes = 8;
  EXPECT_FALSE(parse_error("[1,2,3,4,5]", tight).empty());
}

// ------------------------------------------------------------ the decoder

std::string decode_error(std::string_view line) {
  Request out;
  RequestError error;
  EXPECT_FALSE(decode_request(line, out, error)) << line;
  return error.code + ": " + error.message;
}

Request decode_ok(std::string_view line) {
  Request out;
  RequestError error;
  EXPECT_TRUE(decode_request(line, out, error))
      << error.code << ": " << error.message;
  return out;
}

constexpr const char kFullSpec[] =
    R"({"name":"t","engine":"fsim","seed":7,"trials":2,"deadline_us":1000,)"
    R"("topo":{"kind":"jellyfish","type":"parallel-homogeneous","hosts":32,)"
    R"("parallelism":4,"base_rate_gbps":40,"seed":9,"jf_switches":16,)"
    R"("jf_degree":8,"jf_hosts_per_switch":2},)"
    R"("policy":{"policy":"ksp-multipath","k":4,"ecmp_path_cap":32,)"
    R"("multipath_cutoff_bytes":50000},)"
    R"("workload":{"pattern":"all_to_all","flow_bytes":200000,"rounds":2,)"
    R"("start_jitter_us":5,"round_gap_us":100},)"
    R"("sim":{"queue_buffer_bytes":400000,"ecn_threshold_bytes":80000,)"
    R"("priority_acks":false,"trim_to_header":true,"dctcp":true}})";

TEST(RequestDecoder, FullSpecRoundTrip) {
  const Request request = decode_ok(kFullSpec);
  ASSERT_EQ(request.kind, Request::Kind::kRun);
  const exp::ExperimentSpec& s = request.spec;
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.engine, exp::EngineKind::kFsim);
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(s.trials, 2);
  EXPECT_EQ(s.deadline, 1000 * units::kMicrosecond);
  EXPECT_EQ(s.topo.topo, topo::TopoKind::kJellyfish);
  EXPECT_EQ(s.topo.type, topo::NetworkType::kParallelHomogeneous);
  EXPECT_EQ(s.topo.hosts, 32);
  EXPECT_EQ(s.topo.jf_degree, 8);
  EXPECT_EQ(s.policy.policy, core::RoutingPolicy::kKspMultipath);
  EXPECT_EQ(s.policy.k, 4);
  EXPECT_EQ(s.workload.pattern, exp::WorkloadSpec::Pattern::kAllToAll);
  EXPECT_EQ(s.workload.round_gap, 100 * units::kMicrosecond);
  EXPECT_TRUE(s.sim.trim_to_header);
  EXPECT_TRUE(s.sim.tcp.dctcp);

  // The wire format round-trips: decoding the canonical form yields the
  // same canonical form (the property the result cache keys on).
  const std::string canonical = s.canonical_json();
  EXPECT_EQ(decode_ok(canonical).spec.canonical_json(), canonical);
  EXPECT_EQ(s.hash(), exp::fnv1a(canonical));
}

TEST(RequestDecoder, MinimalSpecAndDefaults) {
  const Request request = decode_ok(R"({"name":"q"})");
  EXPECT_EQ(request.spec.trials, 1);
  EXPECT_EQ(request.spec.engine, exp::EngineKind::kPacket);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 0.0);
}

TEST(RequestDecoder, DeadlineMsExtension) {
  EXPECT_DOUBLE_EQ(
      decode_ok(R"({"name":"q","deadline_ms":250.5})").deadline_ms, 250.5);
  EXPECT_NE(decode_error(R"({"name":"q","deadline_ms":-1})")
                .find("deadline_ms"),
            std::string::npos);
}

TEST(RequestDecoder, StatsRequest) {
  EXPECT_EQ(decode_ok(R"({"stats":true})").kind, Request::Kind::kStats);
  EXPECT_NE(decode_error(R"({"stats":false})").find("stats"),
            std::string::npos);
  EXPECT_NE(decode_error(R"({"stats":true,"name":"x"})")
                .find("no other fields"),
            std::string::npos);
}

TEST(RequestDecoder, RejectsUnknownFieldsAtEveryLevel) {
  EXPECT_NE(decode_error(R"({"name":"x","bogus":1})")
                .find("unknown field 'spec.bogus'"),
            std::string::npos);
  EXPECT_NE(decode_error(R"({"name":"x","topo":{"hosst":4}})")
                .find("unknown field 'topo.hosst'"),
            std::string::npos);
  EXPECT_NE(decode_error(R"({"name":"x","policy":{"kk":4}})")
                .find("unknown field 'policy.kk'"),
            std::string::npos);
  EXPECT_NE(decode_error(R"({"name":"x","workload":{"flows":1}})")
                .find("unknown field 'workload.flows'"),
            std::string::npos);
  EXPECT_NE(decode_error(R"({"name":"x","sim":{"dctpc":true}})")
                .find("unknown field 'sim.dctpc'"),
            std::string::npos);
}

TEST(RequestDecoder, RejectsWrongTypesAndRanges) {
  EXPECT_NE(decode_error(R"({"name":7})").find("must be a string"),
            std::string::npos);
  EXPECT_NE(decode_error(R"({"name":"x","trials":1.5})")
                .find("must be an integer"),
            std::string::npos);
  EXPECT_NE(decode_error(R"({"name":"x","trials":"3"})")
                .find("must be a number"),
            std::string::npos);
  // Integers past 2^53 would lose precision in the double parse tree.
  EXPECT_NE(decode_error(R"({"name":"x","seed":9007199254740994})")
                .find("out of range"),
            std::string::npos);
  EXPECT_NE(decode_error(R"({"name":"x","topo":{"hosts":4294967296}})")
                .find("out of range"),
            std::string::npos);
  EXPECT_NE(decode_error(R"({"name":"x","topo":7})")
                .find("must be an object"),
            std::string::npos);
  EXPECT_NE(
      decode_error(R"({"name":"x","workload":{"start_jitter_us":-1}})")
          .find("out of range"),
      std::string::npos);
}

TEST(RequestDecoder, RejectsBadEnumStrings) {
  EXPECT_NE(decode_error(R"({"name":"x","engine":"warp"})").find("engine"),
            std::string::npos);
  // "custom" is a valid EngineKind in-process but unservable on the wire.
  EXPECT_NE(
      decode_error(R"({"name":"x","engine":"custom"})").find("cannot be"),
      std::string::npos);
  EXPECT_NE(decode_error(R"({"name":"x","topo":{"kind":"torus"}})")
                .find("topo.kind"),
            std::string::npos);
  EXPECT_NE(decode_error(R"({"name":"x","policy":{"policy":"magic"}})")
                .find("policy.policy"),
            std::string::npos);
  EXPECT_NE(decode_error(R"({"name":"x","workload":{"pattern":"storm"}})")
                .find("workload.pattern"),
            std::string::npos);
}

TEST(RequestDecoder, RequiresName) {
  EXPECT_NE(decode_error(R"({"engine":"fsim"})").find("name"),
            std::string::npos);
  EXPECT_NE(decode_error("{}").find("name"), std::string::npos);
  EXPECT_NE(decode_error("[1,2]").find("object"), std::string::npos);
}

// ------------------------------------------------------------- the cache

TEST(ResultCache, HitMissAndLruEviction) {
  ResultCache cache(100);
  const auto body = [](std::size_t n) {
    return std::make_shared<const std::string>(std::string(n, 'x'));
  };
  EXPECT_EQ(cache.find(1), nullptr);
  cache.insert(1, body(40));
  cache.insert(2, body(40));
  ASSERT_NE(cache.find(1), nullptr);  // refreshes 1: LRU order is now 1, 2
  cache.insert(3, body(40));          // evicts 2, the least recently used
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 80u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 3u);
}

TEST(ResultCache, OversizedBodyIsNotStored) {
  ResultCache cache(10);
  cache.insert(1, std::make_shared<const std::string>(std::string(11, 'x')));
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, ZeroBudgetDisablesCaching) {
  ResultCache cache(0);
  cache.insert(1, std::make_shared<const std::string>("x"));
  EXPECT_EQ(cache.find(1), nullptr);
}

// ------------------------------------------------------------ the service

/// Instant stub engine: a deterministic TrialResult, no simulation. Lets
/// the Service tests exercise admission/cache/dedup without paying for
/// real topology builds.
class InstantEngine : public exp::Engine {
 public:
  exp::TrialResult run_trial(const exp::TrialContext& ctx) override {
    exp::TrialResult r;
    r.fct_us = {static_cast<double>(ctx.seed % 997)};
    r.flows_started = 1;
    r.flows_finished = 1;
    r.delivered_bytes = 100.0;
    r.sim_seconds = 0.001;
    r.events = 1;
    r.metrics["stub"] = 1.0;
    return r;
  }
};

/// Blocks every trial on a shared gate until the test releases it —
/// deterministic concurrency: the test knows a query is mid-engine.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};

  void wait_inside() {
    ++entered;
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return open; });
  }
  void release() {
    const std::lock_guard<std::mutex> lock(mutex);
    open = true;
    cv.notify_all();
  }
  void await_entered(int n) {
    while (entered.load() < n) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

class GatedEngine : public exp::Engine {
 public:
  explicit GatedEngine(Gate* gate) : gate_(gate) {}
  exp::TrialResult run_trial(const exp::TrialContext& ctx) override {
    gate_->wait_inside();
    InstantEngine instant;
    return instant.run_trial(ctx);
  }

 private:
  Gate* gate_;
};

/// Spins until cancelled — the deadline-timeout path.
class SleepyEngine : public exp::Engine {
 public:
  exp::TrialResult run_trial(const exp::TrialContext& ctx) override {
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < give_up) {
      exp::throw_if_cancelled(ctx.cancel);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ADD_FAILURE() << "SleepyEngine was never cancelled";
    return {};
  }
};

ServiceOptions stub_options(int workers = 1) {
  ServiceOptions options;
  options.workers = workers;
  options.engine_factory = [](exp::EngineKind) {
    return std::make_unique<InstantEngine>();
  };
  return options;
}

std::uint64_t counter_of(Service& service, const std::string& name) {
  const auto snap = service.registry().snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

constexpr const char kQuery[] = R"({"name":"q1","engine":"fsim"})";

TEST(Service, ServesAndCachesByteIdentically) {
  Service service(stub_options());
  const std::string first = service.handle_line(kQuery);
  EXPECT_EQ(first.rfind(R"({"ok":true)", 0), 0u) << first;
  const std::string second = service.handle_line(kQuery);
  EXPECT_EQ(first, second);
  EXPECT_EQ(counter_of(service, "engine_runs"), 1u);
  EXPECT_EQ(counter_of(service, "queries_ok"), 1u);  // the hit skipped it

  // The body names the spec hash of the decoded spec.
  Request request;
  RequestError error;
  ASSERT_TRUE(decode_request(kQuery, request, error));
  EXPECT_NE(first.find(hash_hex(request.spec.hash())), std::string::npos);
}

TEST(Service, ConcurrentIdenticalSpecsCoalesceOntoOneExecution) {
  Gate gate;
  ServiceOptions options;
  options.workers = 1;
  options.engine_factory = [&gate](exp::EngineKind) {
    return std::make_unique<GatedEngine>(&gate);
  };
  Service service(options);

  std::string body_a;
  std::thread leader([&] { body_a = service.handle_line(kQuery); });
  gate.await_entered(1);  // the leader is mid-engine

  std::string body_b;
  std::thread follower([&] { body_b = service.handle_line(kQuery); });
  // The follower must register its join before we release the engine.
  while (counter_of(service, "dedup_joins") < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  gate.release();
  leader.join();
  follower.join();

  // The ISSUE acceptance criterion: exactly one engine execution, one
  // dedup join, byte-identical responses.
  EXPECT_EQ(body_a, body_b);
  EXPECT_EQ(gate.entered.load(), 1);
  EXPECT_EQ(counter_of(service, "engine_runs"), 1u);
  EXPECT_EQ(counter_of(service, "dedup_joins"), 1u);
}

TEST(Service, DeadlineReturnsStructuredTimeoutAndServerKeepsServing) {
  ServiceOptions options;
  options.workers = 1;
  int calls = 0;
  options.engine_factory = [&calls](exp::EngineKind) -> std::unique_ptr<exp::Engine> {
    // First engine (packet slot) sleeps; second (fsim slot) is instant.
    if (++calls == 1) return std::make_unique<SleepyEngine>();
    return std::make_unique<InstantEngine>();
  };
  Service service(options);

  const std::string timed_out = service.handle_line(
      R"({"name":"slow","engine":"packet","deadline_ms":50})");
  EXPECT_NE(timed_out.find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(timed_out.find(R"("kind":"timeout")"), std::string::npos);
  EXPECT_NE(timed_out.find(R"("retryable":true)"), std::string::npos);
  EXPECT_EQ(counter_of(service, "errors_timeout"), 1u);

  // Timeouts are wall-clock dependent — never cached.
  EXPECT_EQ(service.handle_line(R"({"stats":true})")
                .find(R"("timeout")"),
            std::string::npos);

  // The worker survived; an instant query on the other engine succeeds.
  const std::string ok = service.handle_line(kQuery);
  EXPECT_EQ(ok.rfind(R"({"ok":true)", 0), 0u) << ok;
}

TEST(Service, OverloadRejectsWithRetryableError) {
  Gate gate;
  ServiceOptions options;
  options.workers = 1;
  options.queue_limit = 1;
  options.engine_factory = [&gate](exp::EngineKind) {
    return std::make_unique<GatedEngine>(&gate);
  };
  Service service(options);

  // Distinct specs so nothing coalesces: one executing, one queued, the
  // third must bounce.
  std::thread running(
      [&] { (void)service.handle_line(R"({"name":"a","engine":"fsim"})"); });
  gate.await_entered(1);
  std::thread queued(
      [&] { (void)service.handle_line(R"({"name":"b","engine":"fsim"})"); });
  while (counter_of(service, "queries_total") < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The queued query may still be between counters; poll until the queue
  // really holds it.
  std::string rejected;
  for (int i = 0; i < 2000; ++i) {
    rejected = service.handle_line(R"({"name":"c","engine":"fsim"})");
    if (rejected.find(R"("kind":"overloaded")") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_NE(rejected.find(R"("kind":"overloaded")"), std::string::npos)
      << rejected;
  EXPECT_NE(rejected.find(R"("retryable":true)"), std::string::npos);

  gate.release();
  running.join();
  queued.join();
}

TEST(Service, DrainRejectsNewRunsButAnswersStats) {
  Service service(stub_options());
  const std::string warm = service.handle_line(kQuery);
  service.drain();
  EXPECT_TRUE(service.draining());

  const std::string rejected =
      service.handle_line(R"({"name":"late","engine":"fsim"})");
  EXPECT_NE(rejected.find(R"("kind":"draining")"), std::string::npos);
  EXPECT_NE(rejected.find(R"("retryable":true)"), std::string::npos);

  // Stats keep answering during/after drain (the final telemetry flush).
  const std::string stats = service.handle_line(R"({"stats":true})");
  EXPECT_NE(stats.find(R"("draining":true)"), std::string::npos);

  // Cached results still serve — no engine needed.
  EXPECT_EQ(service.handle_line(kQuery), warm);
}

TEST(Service, ResourceCapsRejectBeforeExecution) {
  ServiceOptions options = stub_options();
  options.max_hosts = 64;
  options.max_trials = 2;
  Service service(options);
  const std::string too_big =
      service.handle_line(R"({"name":"big","topo":{"hosts":4096}})");
  EXPECT_NE(too_big.find(R"("kind":"invalid_spec")"), std::string::npos);
  EXPECT_NE(too_big.find("cap"), std::string::npos);
  const std::string too_many =
      service.handle_line(R"({"name":"many","trials":50})");
  EXPECT_NE(too_many.find("cap"), std::string::npos);
  EXPECT_EQ(counter_of(service, "engine_runs"), 0u);
}

TEST(Service, OversizedRequestRejectedBeforeParsing) {
  ServiceOptions options = stub_options();
  options.max_request_bytes = 128;
  Service service(options);
  const std::string big(4096, 'x');
  const std::string rejected = service.handle_line(big);
  EXPECT_NE(rejected.find(R"("kind":"oversized")"), std::string::npos);
  EXPECT_EQ(counter_of(service, "rejected_oversized"), 1u);
}

TEST(Service, SemanticallyInvalidSpecIsStructurallyRejected) {
  Service service(stub_options());
  // Parses and decodes fine; ExperimentSpec::validate() must veto it.
  const std::string invalid =
      service.handle_line(R"({"name":"bad","topo":{"hosts":-5}})");
  EXPECT_NE(invalid.find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(invalid.find(R"("kind":"invalid_spec")"), std::string::npos);
  EXPECT_EQ(counter_of(service, "engine_runs"), 0u);
}

// --------------------------------------------- hostile-input corpus loop

TEST(Service, TruncationCorpusNeverCrashesAndAlwaysStructuredErrors) {
  Service service(stub_options());
  const std::string valid(kFullSpec);
  // Every strict prefix of a valid document is invalid JSON; each must
  // yield a structured parse error, never a crash.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const std::string body =
        service.handle_line(std::string_view(valid).substr(0, len));
    ASSERT_EQ(body.rfind(R"({"ok":false)", 0), 0u)
        << "prefix length " << len << ": " << body;
  }
  EXPECT_EQ(counter_of(service, "engine_runs"), 0u);
}

TEST(Service, ByteFlipCorpusNeverCrashes) {
  Service service(stub_options());
  const std::string valid(kFullSpec);
  std::mt19937 rng(0xC0FFEE);  // seeded: the corpus is reproducible
  for (int i = 0; i < 300; ++i) {
    std::string mutated = valid;
    const std::size_t pos = rng() % mutated.size();
    mutated[pos] = static_cast<char>(rng() % 256);
    const std::string body = service.handle_line(mutated);
    // A mutation may still be a valid (different) spec — then it runs on
    // the stub engine. Either way the reply is structured JSON.
    ASSERT_EQ(body.rfind(R"({"ok":)", 0), 0u)
        << "flip at " << pos << " of corpus " << i << ": " << body;
  }
  // The boundary survived the corpus; a good query still works.
  const std::string after = service.handle_line(kQuery);
  EXPECT_EQ(after.rfind(R"({"ok":true)", 0), 0u);
}

TEST(Service, HostileDocumentsGetStructuredErrors) {
  Service service(stub_options());
  const std::vector<std::string> hostile = {
      "",
      "\n",
      "garbage",
      "{\"name\":\"x\",\"seed\":1e999}",                  // inf
      "{\"name\":\"x\",\"trials\":NaN}",                  // NaN token
      R"({"name":"x","name":"y"})",                       // duplicate key
      R"({"name":"x"} trailing)",                         // framing bug
      R"([{"name":"x"}])",                                // array root
      "\"just a string\"",
      R"({"name":""})",                                   // empty name
      std::string(40, '['),                               // depth bomb
  };
  for (const std::string& doc : hostile) {
    const std::string body = service.handle_line(doc);
    ASSERT_EQ(body.rfind(R"({"ok":false)", 0), 0u)
        << "doc: " << doc << " -> " << body;
    ASSERT_NE(body.find(R"("error")"), std::string::npos);
  }
}

// A real end-to-end cell on the true engines: small, but proves the
// service wiring against the actual experiment stack (not just stubs).
TEST(Service, RealFluidEngineEndToEnd) {
  ServiceOptions options;  // default factory = exp::make_engine
  options.workers = 1;
  Service service(options);
  const std::string body = service.handle_line(
      R"({"name":"real","engine":"fsim","trials":1,)"
      R"("topo":{"hosts":16,"parallelism":2},)"
      R"("workload":{"pattern":"permutation","flow_bytes":100000}})");
  ASSERT_EQ(body.rfind(R"({"ok":true)", 0), 0u) << body;
  EXPECT_NE(body.find(R"("flows_started":16)"), std::string::npos) << body;
  EXPECT_NE(body.find(R"("unfinished_flows":0)"), std::string::npos);
  // Identical re-query: byte-identical from cache.
  EXPECT_EQ(service.handle_line(
                R"({"name":"real","engine":"fsim","trials":1,)"
                R"("topo":{"hosts":16,"parallelism":2},)"
                R"("workload":{"pattern":"permutation","flow_bytes":100000}})"),
            body);
}

}  // namespace
}  // namespace pnet::serve
