// Tests for routing::RouteCache: hit/miss accounting, epoch-based
// invalidation (failure AND recovery), selectivity (untouched entries stay
// cached), pass-through mode equivalence, and bit-identical results when
// one cache is shared across threads.
#include <gtest/gtest.h>

#include <thread>

#include "routing/route_cache.hpp"
#include "topo/parallel.hpp"

namespace pnet::routing {
namespace {

topo::ParallelNetwork fat_tree_net(int hosts = 16, int planes = 2) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = hosts;
  spec.parallelism = planes;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  return build_network(spec);
}

std::vector<Path> materialized(const RouteSnapshot& snap) {
  return snap->materialize();
}

TEST(RouteCache, HitsAfterFirstLookup) {
  const auto net = fat_tree_net();
  RouteCache cache(/*enabled=*/true);
  const RouteQuery q = RouteQuery::ksp(HostId{0}, HostId{15}, 4, 0x1234);

  const auto first = cache.lookup(net, q);
  const auto second = cache.lookup(net, q);
  EXPECT_EQ(first.get(), second.get());  // literally the same entry

  const RouteCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_GT(stats.arena_bytes, 0u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(RouteCache, DistinctQueriesDoNotAlias) {
  const auto net = fat_tree_net();
  RouteCache cache(/*enabled=*/true);
  const auto a =
      cache.lookup(net, RouteQuery::ksp(HostId{0}, HostId{15}, 4, 1));
  const auto b =
      cache.lookup(net, RouteQuery::ksp(HostId{0}, HostId{15}, 4, 2));
  const auto c = cache.lookup(
      net, RouteQuery::shortest_per_plane(HostId{0}, HostId{15}));
  EXPECT_NE(a.get(), b.get());  // different tie-break seed
  EXPECT_NE(a.get(), c.get());  // different kind
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(RouteCache, MatchesDirectComputation) {
  const auto net = fat_tree_net();
  RouteCache cache(/*enabled=*/true);

  const auto ksp = materialized(
      cache.lookup(net, RouteQuery::ksp(HostId{0}, HostId{15}, 4, 0xBEEF)));
  EXPECT_EQ(ksp, ksp_across_planes(net, HostId{0}, HostId{15}, 4, 0xBEEF));

  const auto spp = materialized(cache.lookup(
      net, RouteQuery::shortest_per_plane(HostId{0}, HostId{15})));
  EXPECT_EQ(spp, shortest_per_plane(net, HostId{0}, HostId{15}));

  const auto ecmp = materialized(cache.lookup(
      net, RouteQuery::ecmp_plane(HostId{0}, HostId{15}, 1, 64)));
  EXPECT_EQ(ecmp, ecmp_paths_in_plane(net, 1, HostId{0}, HostId{15}, 64));
}

TEST(RouteCache, PassThroughMatchesCachedResults) {
  const auto net = fat_tree_net();
  RouteCache cached(/*enabled=*/true);
  RouteCache passthrough(/*enabled=*/false);
  EXPECT_FALSE(passthrough.enabled());

  const RouteQuery q = RouteQuery::ksp(HostId{0}, HostId{15}, 4, 0xF00D);
  EXPECT_EQ(materialized(cached.lookup(net, q)),
            materialized(passthrough.lookup(net, q)));
  // Pass-through never hits; every lookup is a fresh compute.
  (void)passthrough.lookup(net, q);
  EXPECT_EQ(passthrough.stats().hits, 0u);
  EXPECT_EQ(passthrough.stats().misses, 2u);
  // ...but the returned snapshot is self-contained and stays valid.
  const auto snap = passthrough.lookup(net, q);
  EXPECT_GT(snap->size(), 0u);
  EXPECT_FALSE(snap->view(0).empty());
}

TEST(RouteCache, LinkFailureInvalidatesOnlyTraversingEntries) {
  const auto net = fat_tree_net();
  RouteCache cache(/*enabled=*/true);

  // Two entries: one for a cross-pod pair, one same-rack (host 0 -> 1).
  const RouteQuery cross = RouteQuery::ecmp_plane(HostId{0}, HostId{15}, 0,
                                                  64);
  const RouteQuery local = RouteQuery::ecmp_plane(HostId{0}, HostId{1}, 0,
                                                  64);
  const auto cross_before = cache.lookup(net, cross);
  const auto local_before = cache.lookup(net, local);
  ASSERT_GT(cross_before->size(), 1u);

  // Fail a fabric link on one of the cross-pod paths (beyond the host
  // uplink, which the same-rack pair never touches).
  const LinkId victim = cross_before->view(0).links()[1];
  cache.set_link_state(0, victim, true);

  const auto cross_after = cache.lookup(net, cross);
  const auto local_after = cache.lookup(net, local);
  EXPECT_NE(cross_after.get(), cross_before.get());  // recomputed
  EXPECT_EQ(local_after.get(), local_before.get());  // untouched

  // Recomputed entry routes around the dead cable (both directions).
  for (std::size_t i = 0; i < cross_after->size(); ++i) {
    for (LinkId id : cross_after->view(i).links()) {
      EXPECT_NE(id.v, victim.v);
      EXPECT_NE(id.v, victim.v ^ 1);
    }
  }
  EXPECT_LT(cross_after->size(), cross_before->size());

  const RouteCacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.hits, 1u);  // the local entry's second lookup
}

TEST(RouteCache, LinkRecoveryRestoresOriginalPaths) {
  const auto net = fat_tree_net();
  RouteCache cache(/*enabled=*/true);
  const RouteQuery q = RouteQuery::ecmp_plane(HostId{0}, HostId{15}, 0, 64);

  const auto before = cache.lookup(net, q);
  const LinkId victim = before->view(0).links()[1];
  cache.set_link_state(0, victim, true);
  const auto degraded = cache.lookup(net, q);
  EXPECT_LT(degraded->size(), before->size());

  cache.set_link_state(0, victim, false);
  const auto recovered = cache.lookup(net, q);
  EXPECT_NE(recovered.get(), degraded.get());
  EXPECT_EQ(materialized(recovered), materialized(before));
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(RouteCache, RepeatedLookupsAfterEventRevalidateInO1) {
  const auto net = fat_tree_net();
  RouteCache cache(/*enabled=*/true);
  const RouteQuery q = RouteQuery::shortest_per_plane(HostId{0}, HostId{2});
  const auto before = cache.lookup(net, q);

  // An event on a link the entry does not traverse: entry survives, and
  // every lookup after the first lazy scan is a pure hit.
  const auto far = cache.lookup(
      net, RouteQuery::ecmp_plane(HostId{4}, HostId{15}, 0, 64));
  const LinkId unrelated = far->view(0).links()[1];
  cache.set_link_state(0, unrelated, true);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cache.lookup(net, q).get(), before.get());
  }
  EXPECT_EQ(cache.stats().invalidations, 0u);  // nothing recomputed yet
  // The traversing entry does get recomputed on ITS next lookup.
  const auto far_after = cache.lookup(
      net, RouteQuery::ecmp_plane(HostId{4}, HostId{15}, 0, 64));
  EXPECT_NE(far_after.get(), far.get());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(RouteCache, SharedAcrossThreadsIsDeterministic) {
  const auto net = fat_tree_net(16, 2);

  // Reference: single-threaded, private cache.
  std::vector<std::vector<Path>> expected;
  {
    RouteCache cache(/*enabled=*/true);
    for (int h = 1; h < 16; ++h) {
      expected.push_back(materialized(cache.lookup(
          net, RouteQuery::ksp(HostId{0}, HostId{h}, 4,
                               static_cast<std::uint64_t>(h)))));
    }
  }

  // 4 threads hammering one cache with overlapping queries.
  RouteCache shared(/*enabled=*/true);
  std::vector<std::vector<std::vector<Path>>> got(4);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int h = 1; h < 16; ++h) {
        got[static_cast<std::size_t>(t)].push_back(materialized(
            shared.lookup(net, RouteQuery::ksp(
                                   HostId{0}, HostId{h}, 4,
                                   static_cast<std::uint64_t>(h)))));
      }
    });
  }
  for (auto& w : workers) w.join();

  for (const auto& per_thread : got) EXPECT_EQ(per_thread, expected);
  // Every distinct query computed exactly once; the rest were hits.
  const RouteCacheStats stats = shared.stats();
  EXPECT_EQ(stats.misses, 15u);
  EXPECT_EQ(stats.hits, 45u);
}

TEST(RouteCache, EnvEscapeHatchParses) {
  // Unit test the parser only; the end-to-end off-mode equivalence is
  // covered by PassThroughMatchesCachedResults and the ctest determinism
  // job (PNET_ROUTE_CACHE=off report diff).
  EXPECT_TRUE(RouteCache::enabled_by_env() ||
              !RouteCache::enabled_by_env());  // callable without env set
}

}  // namespace
}  // namespace pnet::routing
