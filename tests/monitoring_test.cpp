// Tests for the deployment-cost estimate (§6.1), the per-plane statistics
// collector (§7 monitoring), and the flow-log CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/plane_stats.hpp"
#include "core/cost_model.hpp"
#include "core/harness.hpp"

namespace pnet {
namespace {

TEST(Deployment, ElectricalCoreCountsTransceivers) {
  const auto design = core::parallel_pnet(8192, 16, 8);
  const auto estimate = core::estimate_deployment(design);
  EXPECT_EQ(estimate.fiber_runs, design.links);
  EXPECT_EQ(estimate.transceivers, 2 * design.links);
  EXPECT_EQ(estimate.patch_panel_ports, 0);
  EXPECT_GT(estimate.switch_power_kw, 0.0);
  EXPECT_GT(estimate.transceiver_power_kw, 0.0);
}

TEST(Deployment, OpticalCoreEliminatesTransceivers) {
  const auto design = core::parallel_pnet(8192, 16, 8);
  core::DeploymentAssumptions assumptions;
  assumptions.optical_core = true;
  const auto estimate = core::estimate_deployment(design, assumptions);
  EXPECT_EQ(estimate.transceivers, 0);
  EXPECT_EQ(estimate.patch_panel_ports, 2 * design.links);
  EXPECT_DOUBLE_EQ(estimate.transceiver_power_kw, 0.0);
}

TEST(Deployment, ParallelBeatsChassisOnPower) {
  // The §3.3 claim: fewer chips (no extra tiers) -> lower power for the
  // same bisection bandwidth.
  const auto chassis = core::serial_chassis(8192, 16, 128);
  const auto parallel = core::parallel_pnet(8192, 16, 8);
  const auto chassis_est = core::estimate_deployment(chassis);
  const auto parallel_est = core::estimate_deployment(parallel);
  EXPECT_LT(parallel_est.switch_power_kw, chassis_est.switch_power_kw);
  EXPECT_NEAR(parallel_est.switch_power_kw / chassis_est.switch_power_kw,
              1536.0 / 3584.0, 1e-9);
}

TEST(Deployment, PowerScalesWithAssumptions) {
  const auto design = core::serial_scale_out(128, 8);
  core::DeploymentAssumptions cheap;
  cheap.watts_per_chip = 100.0;
  core::DeploymentAssumptions pricey;
  pricey.watts_per_chip = 400.0;
  EXPECT_DOUBLE_EQ(
      core::estimate_deployment(design, pricey).switch_power_kw,
      4.0 * core::estimate_deployment(design, cheap).switch_power_kw);
}

core::SimHarness rr_harness(int planes) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = planes > 1 ? topo::NetworkType::kParallelHomogeneous
                         : topo::NetworkType::kSerialLow;
  spec.hosts = 16;
  spec.parallelism = planes;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;
  return core::SimHarness({.spec = spec, .policy = policy});
}

TEST(PlaneStatsTest, CountsForwardedPacketsPerPlane) {
  auto h = rr_harness(4);
  for (int i = 0; i < 8; ++i) {
    h.starter()(HostId{i}, HostId{15 - i}, 100'000, 0, {});
  }
  h.run();
  const auto report = analysis::collect_plane_stats(h.network());
  ASSERT_EQ(report.planes.size(), 4u);
  EXPECT_GT(report.total_forwarded(), 0u);
  // Round-robin across planes: every plane carried something and the load
  // is reasonably even.
  for (const auto& p : report.planes) {
    EXPECT_GT(p.packets_forwarded, 0u);
  }
  EXPECT_LT(report.imbalance(), 2.0);
  EXPECT_GE(report.imbalance(), 1.0);
}

TEST(PlaneStatsTest, IdleNetworkReportsZero) {
  auto h = rr_harness(2);
  const auto report = analysis::collect_plane_stats(h.network());
  EXPECT_EQ(report.total_forwarded(), 0u);
  EXPECT_EQ(report.total_drops(), 0u);
  EXPECT_DOUBLE_EQ(report.imbalance(), 1.0);
}

TEST(PlaneStatsTest, ToStringMentionsEveryPlane) {
  auto h = rr_harness(3);
  const auto report = analysis::collect_plane_stats(h.network());
  const auto s = report.to_string();
  EXPECT_NE(s.find("plane 0"), std::string::npos);
  EXPECT_NE(s.find("plane 2"), std::string::npos);
  EXPECT_NE(s.find("imbalance"), std::string::npos);
}

TEST(CsvExport, WritesHeaderAndRows) {
  auto h = rr_harness(1);
  h.starter()(HostId{0}, HostId{15}, 30'000, 0, {});
  h.starter()(HostId{1}, HostId{14}, 30'000, 0, {});
  h.run();
  std::ostringstream out;
  h.logger().write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("flow,src,dst,bytes"), std::string::npos);
  // Header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find(",30000,"), std::string::npos);
}

}  // namespace
}  // namespace pnet
