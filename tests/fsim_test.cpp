// Tests for the flow-level fluid simulator: max-min allocator properties,
// analytic time-dynamics, cross-validation against lp::max_concurrent_flow
// (the two solve the same problem for single-fixed-path commodities) and
// against the packet simulator's FCTs, and sweep determinism across thread
// counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/harness.hpp"
#include "fsim/fluid.hpp"
#include "fsim/max_min.hpp"
#include "fsim/sweep.hpp"
#include "lp/link_index.hpp"
#include "lp/mcf.hpp"
#include "routing/ecmp.hpp"
#include "routing/plane_paths.hpp"
#include "topo/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"
#include "workload/patterns.hpp"

namespace pnet::fsim {
namespace {

topo::NetworkSpec fat_tree_spec(topo::NetworkType type, int hosts,
                                int planes, std::uint64_t seed = 1) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = type;
  spec.hosts = hosts;
  spec.parallelism = planes;
  spec.seed = seed;
  return spec;
}

// ------------------------------------------------------------ MaxMinAllocator

TEST(MaxMinAllocator, TwoFlowsShareOneLink) {
  MaxMinAllocator alloc({10.0});
  const int a = alloc.add({0});
  const int b = alloc.add({0});
  alloc.solve();
  EXPECT_DOUBLE_EQ(alloc.rate_bps(a), 5.0);
  EXPECT_DOUBLE_EQ(alloc.rate_bps(b), 5.0);
}

TEST(MaxMinAllocator, ClassicChainAllocation) {
  // Links: 0 (cap 10) shared by A and B; 1 (cap 20) shared by B and C.
  // Max-min: A = B = 5 (link 0 bottleneck), C = 15 (what link 1 leaves).
  MaxMinAllocator alloc({10.0, 20.0});
  const int a = alloc.add({0});
  const int b = alloc.add({0, 1});
  const int c = alloc.add({1});
  alloc.solve();
  EXPECT_NEAR(alloc.rate_bps(a), 5.0, 1e-9);
  EXPECT_NEAR(alloc.rate_bps(b), 5.0, 1e-9);
  EXPECT_NEAR(alloc.rate_bps(c), 15.0, 1e-9);
}

TEST(MaxMinAllocator, DisjointAddsTakeFastPath) {
  MaxMinAllocator alloc({4.0, 7.0, 9.0});
  const int a = alloc.add({0});
  const int b = alloc.add({1, 2});
  EXPECT_FALSE(alloc.dirty());  // neither add needed a global solve
  EXPECT_EQ(alloc.fast_paths(), 2);
  EXPECT_EQ(alloc.full_solves(), 0);
  EXPECT_DOUBLE_EQ(alloc.rate_bps(a), 4.0);
  EXPECT_DOUBLE_EQ(alloc.rate_bps(b), 7.0);  // min capacity along the path

  // A third subflow overlapping b's path must dirty the allocator. Link 2
  // (cap 9) is then the shared bottleneck: b and c settle at 4.5 each.
  const int c = alloc.add({2});
  EXPECT_TRUE(alloc.dirty());
  alloc.solve();
  EXPECT_EQ(alloc.full_solves(), 1);
  EXPECT_DOUBLE_EQ(alloc.rate_bps(a), 4.0);
  EXPECT_NEAR(alloc.rate_bps(b), 4.5, 1e-9);
  EXPECT_NEAR(alloc.rate_bps(c), 4.5, 1e-9);
}

TEST(MaxMinAllocator, RemoveReleasesBandwidth) {
  MaxMinAllocator alloc({10.0});
  const int a = alloc.add({0});
  const int b = alloc.add({0});
  alloc.solve();
  EXPECT_DOUBLE_EQ(alloc.rate_bps(a), 5.0);
  alloc.remove(b);
  alloc.solve();
  EXPECT_DOUBLE_EQ(alloc.rate_bps(a), 10.0);
  EXPECT_EQ(alloc.active(), 1);
}

TEST(MaxMinAllocator, MatchesLpMaxMinFairOnRandomInstances) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const int num_links = 3 + static_cast<int>(rng.next_below(6));
    std::vector<double> cap;
    for (int l = 0; l < num_links; ++l) {
      cap.push_back(1.0 + static_cast<double>(rng.next_below(20)));
    }
    std::vector<std::vector<int>> paths;
    const int num_flows = 2 + static_cast<int>(rng.next_below(8));
    for (int f = 0; f < num_flows; ++f) {
      std::vector<int> links;
      for (int l = 0; l < num_links; ++l) {
        if (rng.next_below(2) == 0) links.push_back(l);
      }
      if (links.empty()) links.push_back(0);
      paths.push_back(std::move(links));
    }
    const auto oracle = lp::max_min_fair(cap, paths);
    MaxMinAllocator alloc(cap);
    std::vector<int> ids;
    for (const auto& p : paths) ids.push_back(alloc.add(p));
    alloc.solve();
    for (std::size_t f = 0; f < paths.size(); ++f) {
      EXPECT_NEAR(alloc.rate_bps(ids[f]), oracle[f], 1e-6 * oracle[f])
          << "trial " << trial << " flow " << f;
    }
  }
}

// --------------------------------------------------------- FluidSimulator

TEST(FluidSimulator, StaggeredArrivalsFollowAnalyticSchedule) {
  // Two 100 MB flows pinned to the same single path. B arrives at 4 ms.
  // At 100 Gb/s (12.5 GB/s): A alone drains 50 MB by t=4ms, then each gets
  // 6.25 GB/s; A's remaining 50 MB takes 8 ms (A ends at 12 ms), B then
  // finishes its remaining 50 MB alone in 4 ms (B ends at 16 ms).
  const auto net = topo::build_network(
      fat_tree_spec(topo::NetworkType::kSerialLow, 16, 1));
  ASSERT_DOUBLE_EQ(net.plane(0).link_rate_bps, 100e9);
  FsimConfig config;
  const auto paths = choose_paths(net, config, HostId{0}, HostId{1}, 7);
  ASSERT_EQ(paths.size(), 1u);

  FluidSimulator fluid(net, config);
  const std::uint64_t mb100 = 100'000'000;
  fluid.add_flow({HostId{0}, HostId{1}, mb100, 0}, {paths});
  fluid.add_flow({HostId{0}, HostId{1}, mb100, 4 * units::kMillisecond},
                 {paths});
  fluid.run();

  ASSERT_EQ(fluid.results().size(), 2u);
  const auto& a = fluid.results()[0];
  const auto& b = fluid.results()[1];
  EXPECT_NEAR(units::to_milliseconds(a.end), 12.0, 0.01);
  EXPECT_NEAR(units::to_milliseconds(b.end), 16.0, 0.01);
  EXPECT_NEAR(fluid.delivered_bytes(), 2.0 * mb100, 1.0);
}

TEST(FluidSimulator, ZeroByteAndUnroutableFlowsComplete) {
  const auto net = topo::build_network(
      fat_tree_spec(topo::NetworkType::kSerialLow, 16, 1));
  FluidSimulator fluid(net, {});
  fluid.add_flow({HostId{0}, HostId{1}, 0, units::kMicrosecond});
  // Explicitly pinned to no paths at all: completes with zero duration.
  fluid.add_flow({HostId{2}, HostId{3}, 1000, 0}, {});
  fluid.run();
  ASSERT_EQ(fluid.results().size(), 2u);
  EXPECT_EQ(fluid.results()[0].subflows, 0);
  for (const auto& r : fluid.results()) EXPECT_EQ(r.end, r.start);
}

// The route cache is an optimization, never a behavior change: for every
// scheme, a simulator with the cache enabled, one with the cache in
// pass-through mode (PNET_ROUTE_CACHE=off equivalent), and one fed
// explicitly pinned choose_paths() results must produce byte-identical
// flow results. This pins FluidSimulator::route() to choose_paths().
TEST(FluidSimulator, RouteCacheOnOffAndPinnedPathsAgree) {
  const auto net = topo::build_network(
      fat_tree_spec(topo::NetworkType::kParallelHomogeneous, 16, 2));
  for (const RouteScheme scheme :
       {RouteScheme::kEcmpPlaneHash, RouteScheme::kShortestPlane,
        RouteScheme::kKspMultipath}) {
    FsimConfig config;
    config.scheme = scheme;
    config.k = 4;

    Rng rng(11);
    std::vector<FlowSpec> specs;
    for (int i = 0; i < 200; ++i) {
      const HostId src{static_cast<std::int32_t>(rng.next_below(16))};
      HostId dst{static_cast<std::int32_t>(rng.next_below(16))};
      if (dst == src) dst = HostId{(dst.v + 1) % 16};
      specs.push_back({src, dst, 1'000'000 + 1000 * rng.next_below(64),
                       static_cast<SimTime>(i) * units::kMicrosecond});
    }

    FluidSimulator cached(
        net, config, std::make_shared<routing::RouteCache>(true));
    FluidSimulator uncached(
        net, config, std::make_shared<routing::RouteCache>(false));
    FluidSimulator pinned(net, config);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      cached.add_flow(specs[i]);
      uncached.add_flow(specs[i]);
      pinned.add_flow(specs[i],
                      choose_paths(net, config, specs[i].src, specs[i].dst,
                                   static_cast<std::uint64_t>(i)));
    }
    cached.run();
    uncached.run();
    pinned.run();

    ASSERT_EQ(cached.results().size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto& a = cached.results()[i];
      const auto& b = uncached.results()[i];
      const auto& c = pinned.results()[i];
      EXPECT_EQ(a.end, b.end) << to_string(scheme) << " flow " << i;
      EXPECT_EQ(a.end, c.end) << to_string(scheme) << " flow " << i;
      EXPECT_EQ(a.subflows, b.subflows);
      EXPECT_EQ(a.subflows, c.subflows);
      EXPECT_EQ(a.hops, b.hops);
      EXPECT_EQ(a.hops, c.hops);
    }
    // The cache actually cached: candidate sets are per-pair, so with 200
    // flows over <=240 pairs the enabled cache must see some reuse, and
    // the pass-through cache must see none.
    EXPECT_GT(cached.route_cache().stats().hits, 0u) << to_string(scheme);
    EXPECT_EQ(uncached.route_cache().stats().hits, 0u);
  }
}

// Steady-state permutation: the fluid max-min *minimum* rate must equal
// the LP max-concurrent-flow alpha (same fixed single path per commodity,
// demand = one plane's link rate). GK is an epsilon-approximation, so the
// tolerance is a few percent.
void expect_min_rate_matches_alpha(topo::NetworkType type, int hosts,
                                   int planes) {
  const auto net = topo::build_network(fat_tree_spec(type, hosts, planes));
  FsimConfig config;
  config.scheme = RouteScheme::kEcmpPlaneHash;

  Rng rng(3);
  const auto pairs = workload::permutation_pairs(net.num_hosts(), rng);
  const lp::LinkIndex index(net);
  std::vector<lp::Commodity> commodities;
  FluidSimulator fluid(net, config);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    auto paths = choose_paths(net, config, pairs[i].first, pairs[i].second,
                              static_cast<std::uint64_t>(i));
    ASSERT_EQ(paths.size(), 1u);
    lp::Commodity commodity;
    commodity.demand = net.plane(0).link_rate_bps;
    commodity.paths.push_back(index.to_global(paths.front()));
    commodities.push_back(std::move(commodity));
    fluid.add_flow({pairs[i].first, pairs[i].second, 1'000'000'000, 0},
                   std::move(paths));
  }
  fluid.run_until(0);  // admit everything, settle rates
  ASSERT_EQ(fluid.active_flows(), static_cast<int>(pairs.size()));

  lp::McfOptions options;
  options.epsilon = 0.02;
  const auto lp_result =
      lp::max_concurrent_flow(index.capacity(), commodities, options);
  ASSERT_GT(lp_result.alpha, 0.0);
  ASSERT_LE(lp_result.alpha, 1.0 + 1e-9);

  const double min_frac =
      fluid.min_rate_bps() / net.plane(0).link_rate_bps;
  EXPECT_NEAR(min_frac, lp_result.alpha, 0.05 * lp_result.alpha)
      << topo::to_string(type) << " hosts=" << hosts;
  // Max-min can only improve on the LP's common fraction for the rest of
  // the flows; the total must dominate alpha * total demand.
  EXPECT_GE(fluid.total_rate_bps(),
            lp_result.alpha * net.plane(0).link_rate_bps *
                static_cast<double>(pairs.size()) * (1.0 - 0.05));
}

TEST(FsimCrossLp, PermutationMinRateMatchesAlphaK4Serial) {
  expect_min_rate_matches_alpha(topo::NetworkType::kSerialLow, 16, 1);
}

TEST(FsimCrossLp, PermutationMinRateMatchesAlphaK4Parallel) {
  expect_min_rate_matches_alpha(topo::NetworkType::kParallelHomogeneous, 16,
                                4);
}

TEST(FsimCrossLp, PermutationMinRateMatchesAlphaK8Serial) {
  expect_min_rate_matches_alpha(topo::NetworkType::kSerialLow, 128, 1);
}

TEST(FsimCrossLp, PermutationMinRateMatchesAlphaK8Parallel) {
  expect_min_rate_matches_alpha(topo::NetworkType::kParallelHomogeneous, 128,
                                4);
}

// FCT cross-validation against the packet simulator: identical pinned
// paths and start times in both engines, bulk 50 MB flows (slow start and
// queueing delay are then a small fraction of the FCT). The fluid model
// has no slow start, no ACK-path load and no retransmits, so means diverge
// by several percent; 15% is the documented envelope (DESIGN.md). The
// workloads keep every link below full saturation — when a lone packet-sim
// flow tries to run a link at exactly 100%, foreign ACK streams (~2.7%
// reverse-path load) push it into a loss/RTO cycle no fluid model
// represents; that divergence is documented, not asserted against.
void expect_fct_tracks_packet_sim(
    const topo::NetworkSpec& spec,
    const std::vector<FlowSpec>& specs,
    const std::vector<std::vector<routing::Path>>& paths) {
  const auto net = topo::build_network(spec);
  FluidSimulator fluid(net, {});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    fluid.add_flow(specs[i], paths[i]);
  }
  fluid.run();
  const std::vector<double> fluid_fcts = fluid.fct_us();

  core::PolicyConfig policy;
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;  // bulk-transfer buffers
  core::SimHarness harness({.spec = spec, .policy = policy, .sim_config = sim_config});
  std::vector<double> packet_fcts;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    harness.factory().tcp_flow(
        specs[i].src, specs[i].dst, paths[i].front(), specs[i].bytes,
        specs[i].start, [&packet_fcts](const sim::FlowRecord& r) {
          packet_fcts.push_back(units::to_microseconds(r.end - r.start));
        });
  }
  harness.run();
  ASSERT_EQ(packet_fcts.size(), fluid_fcts.size());

  auto mean = [](const std::vector<double>& v) {
    RunningStats s;
    for (double x : v) s.add(x);
    return s.mean();
  };
  const double fluid_mean = mean(fluid_fcts);
  const double packet_mean = mean(packet_fcts);
  EXPECT_NEAR(fluid_mean, packet_mean, 0.15 * packet_mean)
      << "fluid " << fluid_mean << " us vs packet " << packet_mean << " us";
}

TEST(FsimCrossPacket, PermutationFctTracksPacketSimSerial) {
  // k=4 serial fat tree permutation: single-path ECMP collisions make the
  // fabric links genuine shared bottlenecks.
  const auto spec = fat_tree_spec(topo::NetworkType::kSerialLow, 16, 1);
  const auto net = topo::build_network(spec);
  FsimConfig config;
  Rng rng(5);
  std::vector<FlowSpec> specs;
  std::vector<std::vector<routing::Path>> paths;
  for (const auto& [src, dst] :
       workload::permutation_pairs(net.num_hosts(), rng)) {
    const auto i = static_cast<std::uint64_t>(specs.size());
    paths.push_back(choose_paths(net, config, src, dst, i));
    specs.push_back({src, dst, 50'000'000,
                     static_cast<SimTime>(
                         rng.next_below(10 * units::kMicrosecond))});
  }
  expect_fct_tracks_packet_sim(spec, specs, paths);
}

TEST(FsimCrossPacket, SharedBottleneckFctTracksPacketSimParallel) {
  // 4-plane fat tree, two senders per receiver pinned to the same plane:
  // each receiver's plane downlink is a 2-way shared bottleneck, sender
  // links run at half rate, and every flow exercises the multi-plane path
  // machinery.
  const auto spec =
      fat_tree_spec(topo::NetworkType::kParallelHomogeneous, 16, 4);
  const auto net = topo::build_network(spec);
  Rng rng(7);
  std::vector<FlowSpec> specs;
  std::vector<std::vector<routing::Path>> paths;
  for (int r = 0; r < 8; ++r) {
    for (const int src : {r, (r + 1) % 8}) {
      const auto i = static_cast<std::uint64_t>(specs.size());
      auto ecmp = routing::ecmp_paths_in_plane(net, r % 4, HostId{src},
                                               HostId{8 + r}, 64);
      ASSERT_FALSE(ecmp.empty());
      const int pick = routing::ecmp_pick(mix64(i * 77 + 5),
                                          static_cast<int>(ecmp.size()));
      paths.push_back({ecmp[static_cast<std::size_t>(pick)]});
      specs.push_back({HostId{src}, HostId{8 + r}, 50'000'000,
                       static_cast<SimTime>(
                           rng.next_below(10 * units::kMicrosecond))});
    }
  }
  expect_fct_tracks_packet_sim(spec, specs, paths);
}

// ----------------------------------------------------------------- sweep

TEST(Sweep, SeedsAreDeterministicAndDecorrelated) {
  EXPECT_EQ(sweep_seed(1, 0), sweep_seed(1, 0));
  EXPECT_NE(sweep_seed(1, 0), sweep_seed(1, 1));
  EXPECT_NE(sweep_seed(1, 0), sweep_seed(2, 0));
}

TEST(Sweep, ResultsIdenticalAcrossThreadCounts) {
  std::vector<std::uint64_t> jobs;
  for (std::uint64_t i = 0; i < 8; ++i) jobs.push_back(i);
  auto job_fn = [](const std::uint64_t& job) {
    const auto net = topo::build_network(fat_tree_spec(
        topo::NetworkType::kParallelHomogeneous, 16, 4, sweep_seed(9, job)));
    FluidSimulator fluid(net, {});
    Rng rng(sweep_seed(9, job));
    for (const auto& [src, dst] :
         workload::permutation_pairs(net.num_hosts(), rng)) {
      fluid.add_flow({src, dst, 1'000'000,
                      static_cast<SimTime>(
                          rng.next_below(10 * units::kMicrosecond))});
    }
    fluid.run();
    return fluid.fct_us();
  };
  const auto serial = run_sweep(jobs, job_fn, 1);
  const auto threaded = run_sweep(jobs, job_fn, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].size(), threaded[i].size()) << "job " << i;
    for (std::size_t f = 0; f < serial[i].size(); ++f) {
      EXPECT_EQ(serial[i][f], threaded[i][f]) << "job " << i << " flow " << f;
    }
  }
}

// Scale guard: a k=8 fat tree (128 hosts) with thousands of flows must be
// quick — the whole point of the fluid model. (The k=16 / 10k-flow demo
// lives in bench_fsim_crossval; this is the CI-sized version.)
TEST(FluidSimulator, ThousandsOfFlowsRunQuickly) {
  const auto net = topo::build_network(
      fat_tree_spec(topo::NetworkType::kParallelHomogeneous, 128, 4));
  FluidSimulator fluid(net, {});
  Rng rng(11);
  int flows = 0;
  for (int round = 0; round < 16; ++round) {
    for (const auto& [src, dst] :
         workload::permutation_pairs(net.num_hosts(), rng)) {
      fluid.add_flow({src, dst, 2'000'000,
                      static_cast<SimTime>(round) * 50 * units::kMicrosecond +
                          static_cast<SimTime>(
                              rng.next_below(20 * units::kMicrosecond))});
      ++flows;
    }
  }
  fluid.run();
  EXPECT_EQ(static_cast<int>(fluid.results().size()), flows);
  EXPECT_GE(flows, 2000);
}

}  // namespace
}  // namespace pnet::fsim
