// Tests for traffic patterns, trace distributions, and the application
// drivers (closed loop / RPC / Hadoop), run over a real simulated network.
#include <gtest/gtest.h>

#include <set>

#include "core/harness.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"
#include "workload/patterns.hpp"
#include "workload/traces.hpp"

namespace pnet::workload {
namespace {

TEST(Patterns, PermutationCoversAllHostsOnce) {
  Rng rng(1);
  const auto pairs = permutation_pairs(64, rng);
  ASSERT_EQ(pairs.size(), 64u);
  std::set<int> sources;
  std::set<int> destinations;
  for (const auto& [src, dst] : pairs) {
    EXPECT_NE(src, dst);
    sources.insert(src.v);
    destinations.insert(dst.v);
  }
  EXPECT_EQ(sources.size(), 64u);
  EXPECT_EQ(destinations.size(), 64u);
}

TEST(Patterns, AllToAllCount) {
  const auto pairs = all_to_all_pairs(10);
  EXPECT_EQ(pairs.size(), 90u);
  for (const auto& [src, dst] : pairs) EXPECT_NE(src, dst);
}

TEST(Patterns, RackAllToAllUsesOneHostPerRack) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;  // k=4: 8 racks of 2
  const auto net = topo::build_network(spec);
  const auto pairs = rack_all_to_all_pairs(net);
  EXPECT_EQ(pairs.size(), 56u);  // 8 * 7
  for (const auto& [src, dst] : pairs) {
    EXPECT_NE(net.rack_of_host(src), net.rack_of_host(dst));
    EXPECT_EQ(src.v % net.hosts_per_rack(), 0);
  }
}

TEST(Patterns, RandomDestinationIsUniformAndNeverSelf) {
  Rng rng(3);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 7000; ++i) {
    const HostId dst = random_destination(8, HostId{3}, rng);
    ASSERT_NE(dst.v, 3);
    ASSERT_GE(dst.v, 0);
    ASSERT_LT(dst.v, 8);
    ++counts[static_cast<std::size_t>(dst.v)];
  }
  for (int h = 0; h < 8; ++h) {
    if (h == 3) {
      EXPECT_EQ(counts[static_cast<std::size_t>(h)], 0);
    } else {
      EXPECT_NEAR(counts[static_cast<std::size_t>(h)], 1000, 150);
    }
  }
}

class TraceDistribution : public ::testing::TestWithParam<Trace> {};

TEST_P(TraceDistribution, CdfIsMonotoneAndNormalized) {
  const auto& dist = FlowSizeDistribution::of(GetParam());
  double prev = -1.0;
  for (double x : {1.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}) {
    const double c = dist.cdf(x);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(dist.cdf(1e10), 1.0);
}

TEST_P(TraceDistribution, SamplesMatchCdf) {
  const auto& dist = FlowSizeDistribution::of(GetParam());
  Rng rng(42);
  constexpr int kN = 20000;
  const double probe = dist.points()[dist.points().size() / 2].first;
  const double expected = dist.cdf(probe);
  int below = 0;
  for (int i = 0; i < kN; ++i) {
    if (static_cast<double>(dist.sample(rng)) <= probe) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / kN, expected, 0.02);
}

TEST_P(TraceDistribution, CapTruncatesTail) {
  const auto& dist = FlowSizeDistribution::of(GetParam());
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(dist.sample(rng, 1'000'000), 1'000'000u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTraces, TraceDistribution,
                         ::testing::ValuesIn(kAllTraces),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Traces, HeavyTailOrdering) {
  // Datamining is the heaviest-tailed trace, webserver the lightest: their
  // means must order accordingly (Fig 13a's visual).
  const double dm = FlowSizeDistribution::of(Trace::kDataMining).mean_bytes();
  const double ws = FlowSizeDistribution::of(Trace::kWebServer).mean_bytes();
  const double search =
      FlowSizeDistribution::of(Trace::kWebSearch).mean_bytes();
  EXPECT_GT(dm, ws * 10);
  EXPECT_GT(search, ws);
}

core::SimHarness make_harness(int planes = 1,
                              topo::NetworkType type =
                                  topo::NetworkType::kSerialLow) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  spec.parallelism = planes;
  spec.type = type;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  return core::SimHarness({.spec = spec, .policy = policy});
}

TEST(ClosedLoop, CompletesConfiguredRounds) {
  auto h = make_harness();
  ClosedLoopApp::Config config;
  config.concurrent_per_host = 2;
  config.rounds_per_worker = 5;
  ClosedLoopApp app(
      h.starter(), h.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return random_destination(h.net().num_hosts(), src, rng);
      },
      [](Rng&) { return std::uint64_t{10'000}; });
  app.start(0);
  h.run();
  EXPECT_EQ(app.requests_completed(), 16 * 2 * 5);
  for (double us : app.completion_times_us()) EXPECT_GT(us, 0.0);
}

TEST(ClosedLoop, RpcRoundTripSlowerThanOneWay) {
  auto run = [&](std::uint64_t response_bytes) {
    auto h = make_harness();
    ClosedLoopApp::Config config;
    config.rounds_per_worker = 20;
    config.response_bytes = response_bytes;
    ClosedLoopApp app(
        h.starter(), {HostId{0}}, config,
        [](HostId, Rng&) { return HostId{15}; },
        [](Rng&) { return std::uint64_t{1500}; });
    app.start(0);
    h.run();
    EXPECT_EQ(app.requests_completed(), 20);
    double total = 0;
    for (double us : app.completion_times_us()) total += us;
    return total / 20.0;
  };
  const double one_way = run(0);
  const double rpc = run(1500);
  // The response leg roughly doubles the completion time.
  EXPECT_GT(rpc, 1.7 * one_way);
  EXPECT_LT(rpc, 2.6 * one_way);
}

TEST(ClosedLoop, ConcurrencyIncreasesCompletionTime) {
  auto run = [&](int concurrent) {
    auto h = make_harness();
    ClosedLoopApp::Config config;
    config.concurrent_per_host = concurrent;
    config.rounds_per_worker = 10;
    config.seed = 5;
    ClosedLoopApp app(
        h.starter(), h.all_hosts(), config,
        [&](HostId src, Rng& rng) {
          return random_destination(h.net().num_hosts(), src, rng);
        },
        [](Rng&) { return std::uint64_t{100'000}; });
    app.start(0);
    h.run();
    auto v = app.completion_times_us();
    return pnet::percentile(v, 50);
  };
  // More outstanding RPCs per host => more queueing => higher medians
  // (the Fig 11 effect).
  EXPECT_GT(run(8), 1.5 * run(1));
}

TEST(Hadoop, RunsAllStagesAndRecordsWorkers) {
  auto h = make_harness();
  HadoopJob::Config config;
  config.num_mappers = 4;
  config.num_reducers = 4;
  config.total_bytes = 64'000'000;
  config.block_bytes = 4'000'000;
  config.concurrent_blocks = 2;
  HadoopJob job(h.starter(), h.all_hosts(), config);
  job.start(0);
  h.run();
  ASSERT_TRUE(job.finished());
  EXPECT_EQ(job.stage_worker_times_s(0).size(), 4u);  // mappers
  EXPECT_EQ(job.stage_worker_times_s(1).size(), 4u);  // mappers shuffle
  EXPECT_EQ(job.stage_worker_times_s(2).size(), 4u);  // reducers
  for (int stage = 0; stage < 3; ++stage) {
    for (double s : job.stage_worker_times_s(stage)) {
      EXPECT_GT(s, 0.0);
      EXPECT_LT(s, 10.0);
    }
  }
}

TEST(Hadoop, MoreBandwidthFinishesFaster) {
  auto run = [&](topo::NetworkType type, int planes) {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kFatTree;
    spec.hosts = 16;
    spec.parallelism = planes;
    spec.type = type;
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kRoundRobin;
    core::SimHarness h({.spec = spec, .policy = policy});
    HadoopJob::Config config;
    config.num_mappers = 4;
    config.num_reducers = 4;
    config.total_bytes = 64'000'000;
    config.block_bytes = 4'000'000;
    HadoopJob job(h.starter(), h.all_hosts(), config);
    job.start(0);
    h.run();
    EXPECT_TRUE(job.finished());
    double total = 0.0;
    for (double s : job.stage_worker_times_s(1)) total += s;
    return total;
  };
  const double serial = run(topo::NetworkType::kSerialLow, 1);
  const double parallel =
      run(topo::NetworkType::kParallelHomogeneous, 4);
  EXPECT_LT(parallel, serial);
}

}  // namespace
}  // namespace pnet::workload
