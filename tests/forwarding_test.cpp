// Tests for table-driven forwarding state: correctness of the installed
// ECMP next hops and the memory-footprint accounting.
#include <gtest/gtest.h>

#include "routing/forwarding.hpp"
#include "routing/shortest.hpp"
#include "topo/parallel.hpp"

namespace pnet::routing {
namespace {

topo::ParallelNetwork make_net(topo::TopoKind kind, topo::NetworkType type,
                               int hosts, int planes) {
  topo::NetworkSpec spec;
  spec.topo = kind;
  spec.type = type;
  spec.hosts = hosts;
  spec.parallelism = planes;
  return topo::build_network(spec);
}

TEST(Forwarding, TablesReachEveryPairAtShortestDistance) {
  for (auto kind : {topo::TopoKind::kFatTree, topo::TopoKind::kJellyfish}) {
    const auto net =
        make_net(kind, topo::NetworkType::kSerialLow, 32, 1);
    const auto tables = build_plane_tables(net.plane(0).graph,
                                           net.plane(0).switch_nodes);
    EXPECT_TRUE(tables_cover_all_pairs(net.plane(0).graph,
                                       net.plane(0).switch_nodes, tables))
        << topo::to_string(kind);
  }
}

TEST(Forwarding, FatTreeEdgeSwitchHasMultipleNextHopsToRemotePods) {
  const auto net =
      make_net(topo::TopoKind::kFatTree, topo::NetworkType::kSerialLow, 16,
               1);
  const auto tables = build_plane_tables(net.plane(0).graph,
                                         net.plane(0).switch_nodes);
  // k=4 fat tree: an edge switch reaches a remote pod's edge switch via
  // both of its aggregation uplinks.
  bool found_multi = false;
  for (const auto& table : tables) {
    for (const auto& hops : table.next_hops) {
      if (hops.size() >= 2) found_multi = true;
    }
  }
  EXPECT_TRUE(found_multi);
}

TEST(Forwarding, EntriesCountsAllNextHops) {
  ForwardingTable table;
  table.next_hops = {{LinkId{0}, LinkId{2}}, {}, {LinkId{4}}};
  EXPECT_EQ(table.entries(), 3u);
}

TEST(Forwarding, FootprintGrowsLinearlyWithPlanesNotPerSwitch) {
  const auto serial = forwarding_footprint(
      make_net(topo::TopoKind::kJellyfish, topo::NetworkType::kSerialLow,
               64, 1));
  const auto par4 = forwarding_footprint(
      make_net(topo::TopoKind::kJellyfish,
               topo::NetworkType::kParallelHomogeneous, 64, 4));
  EXPECT_EQ(par4.switches, 4 * serial.switches);
  EXPECT_EQ(par4.total_entries, 4 * serial.total_entries);
  // The paper's memory argument: per-switch state does NOT grow with N.
  EXPECT_EQ(par4.max_entries_per_switch, serial.max_entries_per_switch);
  EXPECT_DOUBLE_EQ(par4.mean_entries_per_switch,
                   serial.mean_entries_per_switch);
}

TEST(Forwarding, HeterogeneousPlanesStillFlatPerSwitch) {
  const auto het = forwarding_footprint(
      make_net(topo::TopoKind::kJellyfish,
               topo::NetworkType::kParallelHeterogeneous, 64, 4));
  const auto serial = forwarding_footprint(
      make_net(topo::TopoKind::kJellyfish, topo::NetworkType::kSerialLow,
               64, 1));
  EXPECT_LT(het.max_entries_per_switch,
            2 * serial.max_entries_per_switch);
}

}  // namespace
}  // namespace pnet::routing
