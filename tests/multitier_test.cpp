// Structural validation of the two serial architectures of Table 1: the
// t-tier scale-out folded Clos and the chassis-based fat tree, built at
// chip granularity and cross-checked against the analytic cost model.
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "routing/shortest.hpp"
#include "topo/multitier.hpp"

namespace pnet::topo {
namespace {

class MultiTierShape
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MultiTierShape, MatchesClosFormulas) {
  const auto [radix, tiers] = GetParam();
  MultiTierConfig config;
  config.radix = radix;
  config.tiers = tiers;
  const auto ft = build_multi_tier_fat_tree(config);

  const int half = radix / 2;
  int half_pow = 1;  // (k/2)^(tiers-1)
  for (int t = 0; t < tiers - 1; ++t) half_pow *= half;

  // hosts = 2 * (k/2)^t; chips = (2t-1) * (k/2)^(t-1).
  EXPECT_EQ(ft.num_hosts(), 2 * half_pow * half);
  EXPECT_EQ(ft.num_chips(), (2 * tiers - 1) * half_pow);
  ASSERT_EQ(static_cast<int>(ft.tier_switches.size()), tiers);
  for (int lvl = 0; lvl + 1 < tiers; ++lvl) {
    EXPECT_EQ(static_cast<int>(
                  ft.tier_switches[static_cast<std::size_t>(lvl)].size()),
              2 * half_pow)
        << "level " << lvl;
  }
  EXPECT_EQ(static_cast<int>(ft.tier_switches.back().size()), half_pow);
}

TEST_P(MultiTierShape, EveryChipUsesFullRadixAndPathsCross2TMinus1Chips) {
  const auto [radix, tiers] = GetParam();
  MultiTierConfig config;
  config.radix = radix;
  config.tiers = tiers;
  const auto ft = build_multi_tier_fat_tree(config);

  for (const auto& tier : ft.tier_switches) {
    for (NodeId sw : tier) {
      EXPECT_EQ(static_cast<int>(ft.graph.out_links(sw).size()), radix);
    }
  }
  // The diameter pair: first and last host live in different top-level
  // pods, so their shortest path crosses all 2t-1 chip levels.
  EXPECT_EQ(chip_hops(ft.graph, ft.host_nodes.front(),
                      ft.host_nodes.back()),
            2 * tiers - 1);
  // Same-edge hosts cross exactly one chip.
  EXPECT_EQ(chip_hops(ft.graph, ft.host_nodes[0], ft.host_nodes[1]), 1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MultiTierShape,
                         ::testing::Values(std::tuple{4, 2},
                                           std::tuple{4, 3},
                                           std::tuple{4, 4},
                                           std::tuple{6, 3},
                                           std::tuple{8, 2},
                                           std::tuple{8, 3}));

TEST(MultiTier, MatchesCostModelAcrossSizes) {
  // The analytic Table-1 generator and the structural builder must agree
  // on chips for every shape we can afford to instantiate.
  for (const auto& [radix, tiers] :
       {std::pair{4, 3}, std::pair{4, 4}, std::pair{8, 3}}) {
    MultiTierConfig config;
    config.radix = radix;
    config.tiers = tiers;
    const auto ft = build_multi_tier_fat_tree(config);
    const auto analytic = core::serial_scale_out(ft.num_hosts(), radix);
    EXPECT_EQ(analytic.tiers, tiers);
    EXPECT_EQ(analytic.chips, ft.num_chips());
    EXPECT_EQ(analytic.hops, chip_hops(ft.graph, ft.host_nodes.front(),
                                       ft.host_nodes.back()));
    // Inter-switch cables: (t-1) * hosts.
    EXPECT_EQ(analytic.links,
              ft.graph.num_cables() - ft.num_hosts());
  }
}

TEST(MultiTier, AllHostsReachable) {
  MultiTierConfig config;
  config.radix = 4;
  config.tiers = 4;
  const auto ft = build_multi_tier_fat_tree(config);
  const auto dist = routing::bfs_hops(ft.graph, ft.host_nodes.front());
  for (NodeId host : ft.host_nodes) {
    EXPECT_NE(dist[static_cast<std::size_t>(host.v)],
              routing::kUnreachable);
  }
}

TEST(MultiTier, RejectsBadConfig) {
  MultiTierConfig config;
  config.radix = 5;
  EXPECT_THROW(build_multi_tier_fat_tree(config), std::invalid_argument);
  config.radix = 4;
  config.tiers = 0;
  EXPECT_THROW(build_multi_tier_fat_tree(config), std::invalid_argument);
}

TEST(MultiTier, SingleTierDegenerate) {
  MultiTierConfig config;
  config.radix = 6;
  config.tiers = 1;
  const auto ft = build_multi_tier_fat_tree(config);
  EXPECT_EQ(ft.num_hosts(), 6);
  EXPECT_EQ(ft.num_chips(), 1);
  EXPECT_EQ(chip_hops(ft.graph, ft.host_nodes.front(),
                      ft.host_nodes.back()),
            1);
}

class ChassisShape
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ChassisShape, MatchesCostModel) {
  const auto [hosts, radix, ports] = GetParam();
  const auto ct = build_chassis_fat_tree(hosts, radix, ports);
  const auto analytic = core::serial_chassis(hosts, radix, ports);
  EXPECT_EQ(ct.num_hosts(), hosts);
  EXPECT_EQ(ct.num_chips(), analytic.chips);
  EXPECT_EQ(ct.num_boxes(), analytic.boxes);
}

TEST_P(ChassisShape, PathsCrossSevenChips) {
  const auto [hosts, radix, ports] = GetParam();
  const auto ct = build_chassis_fat_tree(hosts, radix, ports);
  // Hosts in different aggregation chassis: host -> agg leaf -> agg fabric
  // -> spine ingress -> spine middle -> spine egress -> agg fabric -> agg
  // leaf -> host = 7 chips (the Table 1 "Hops" entry).
  EXPECT_EQ(chip_hops(ct.graph, ct.host_nodes.front(),
                      ct.host_nodes.back()),
            7);
  // Same-leaf hosts cross one chip.
  EXPECT_EQ(chip_hops(ct.graph, ct.host_nodes[0], ct.host_nodes[1]), 1);
}

TEST_P(ChassisShape, AllHostsReachable) {
  const auto [hosts, radix, ports] = GetParam();
  const auto ct = build_chassis_fat_tree(hosts, radix, ports);
  const auto dist = routing::bfs_hops(ct.graph, ct.host_nodes.front());
  for (NodeId host : ct.host_nodes) {
    EXPECT_NE(dist[static_cast<std::size_t>(host.v)],
              routing::kUnreachable);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ChassisShape,
                         ::testing::Values(std::tuple{32, 4, 8},
                                           std::tuple{128, 4, 16},
                                           std::tuple{512, 8, 32}));

TEST(Chassis, Table1InstanceTooBigToBuildStillChecksAnalytically) {
  // 8,192 hosts of 16-port chips in 128-port chassis: the exact Table 1
  // row, verified against the analytic model (building the graph itself
  // is also possible — ~12k nodes — so do it once here).
  const auto ct = build_chassis_fat_tree(8192, 16, 128);
  EXPECT_EQ(ct.num_chips(), 3584);
  EXPECT_EQ(ct.num_boxes(), 192);
  EXPECT_EQ(chip_hops(ct.graph, ct.host_nodes.front(),
                      ct.host_nodes.back()),
            7);
}

TEST(Chassis, RejectsBadConfig) {
  EXPECT_THROW(build_chassis_fat_tree(1 << 20, 16, 128),
               std::invalid_argument);
  EXPECT_THROW(build_chassis_fat_tree(100, 16, 128),
               std::invalid_argument);  // partial chassis
}

}  // namespace
}  // namespace pnet::topo
