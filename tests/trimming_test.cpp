// Tests for NDP-style packet trimming + NACK recovery (§6.5's incast-aware
// fabric direction; the paper's simulator substrate, htsim, is the NDP
// simulator).
#include <gtest/gtest.h>

#include "core/harness.hpp"
#include "sim/queue.hpp"
#include "util/stats.hpp"

namespace pnet::sim {
namespace {

using namespace pnet::units;

TEST(Trimming, QueueTrimsInsteadOfDropping) {
  EventQueue events;
  PacketPool pool;
  struct Collect : PacketSink {
    explicit Collect(PacketPool& pool) : pool_(pool) {}
    void receive(Packet& p) override {
      trimmed += p.trimmed;
      total += 1;
      pool_.free(&p);
    }
    int trimmed = 0;
    int total = 0;
    PacketPool& pool_;
  } sink(pool);
  // Room for exactly 2 full packets; trimming enabled.
  Queue queue(events, pool, 100e9, 3000, 0, false, /*trim=*/true);
  OwnedRoute route({&queue, &sink});
  for (int i = 0; i < 6; ++i) {
    Packet* p = pool.allocate();
    p->seq = static_cast<std::uint64_t>(i) * 1500;
    p->size_bytes = 1500;
    p->route = &route;
    p->next_hop = 0;
    p->forward();
  }
  events.run();
  EXPECT_EQ(sink.total, 6);           // nothing fully lost
  EXPECT_EQ(sink.trimmed, 4);         // 2 fit, 4 were cut to headers
  EXPECT_EQ(queue.drops(), 0u);
  EXPECT_EQ(queue.trims(), 4u);
}

TEST(Trimming, HeadersBypassDataBacklog) {
  EventQueue events;
  PacketPool pool;
  struct Collect : PacketSink {
    explicit Collect(PacketPool& pool) : pool_(pool) {}
    void receive(Packet& p) override {
      order.push_back(p.trimmed);
      pool_.free(&p);
    }
    std::vector<bool> order;
    PacketPool& pool_;
  } sink(pool);
  Queue queue(events, pool, 100e9, 3000, 0, false, true);
  OwnedRoute route({&queue, &sink});
  for (int i = 0; i < 3; ++i) {
    Packet* p = pool.allocate();
    p->size_bytes = 1500;
    p->route = &route;
    p->next_hop = 0;
    p->forward();
  }
  events.run();
  ASSERT_EQ(sink.order.size(), 3u);
  // The trimmed header of packet 3 overtakes the queued full packet 2.
  EXPECT_FALSE(sink.order[0]);
  EXPECT_TRUE(sink.order[1]);
  EXPECT_FALSE(sink.order[2]);
}

core::SimHarness make_harness(bool trim, std::uint64_t buffer_pkts = 16) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  SimConfig config;
  config.queue_buffer_bytes = buffer_pkts * 1500;
  config.trim_to_header = trim;
  return core::SimHarness({.spec = spec, .policy = policy, .sim_config = config});
}

TEST(Trimming, FlowCompletesThroughBrutalBuffers) {
  // 16-packet buffers, 5 MB flow: NewReno suffers retransmission chaos;
  // with trimming every loss is NACKed and repaired in one RTT.
  auto trim = make_harness(true);
  trim.starter()(HostId{0}, HostId{15}, 5'000'000, 0, {});
  trim.run();
  ASSERT_EQ(trim.logger().records().size(), 1u);
  EXPECT_EQ(trim.logger().records().front().timeouts, 0);
}

TEST(Trimming, IncastWithoutTimeouts) {
  // 8-to-1 incast into 16-packet buffers: trimming must finish every flow
  // with zero RTOs; plain NewReno times out.
  auto run = [&](bool trim) {
    auto h = make_harness(trim);
    for (int i = 0; i < 8; ++i) {
      h.starter()(HostId{i}, HostId{15}, 300'000, 0, {});
    }
    h.run_until(2 * units::kSecond);
    return std::pair{h.logger().records().size(),
                     h.logger().total_timeouts()};
  };
  const auto [trim_done, trim_rto] = run(true);
  const auto [reno_done, reno_rto] = run(false);
  EXPECT_EQ(trim_done, 8u);
  EXPECT_EQ(trim_rto, 0);
  EXPECT_GT(reno_rto, 0);
  (void)reno_done;
}

TEST(Trimming, IncastTailFarBelowRtoFloor) {
  auto h = make_harness(true);
  std::vector<double> fct;
  for (int i = 0; i < 12; ++i) {
    h.starter()(HostId{i}, HostId{15}, 200'000, 0,
                [&](const sim::FlowRecord& r) {
                  fct.push_back(units::to_microseconds(r.end - r.start));
                });
  }
  h.run_until(2 * units::kSecond);
  ASSERT_EQ(fct.size(), 12u);
  EXPECT_LT(percentile(fct, 99), 2'000.0);  // 10 ms RTO floor never hit
}

TEST(Trimming, AtLeastAsFastWhenUncontended) {
  // Even a solo flow benefits slightly: its slow-start overshoot losses
  // become one-RTT NACK repairs instead of fast-recovery episodes. It must
  // never be slower, and stays above the physical floor.
  auto run = [&](bool trim) {
    auto h = make_harness(trim, 100);
    h.starter()(HostId{0}, HostId{15}, 10'000'000, 0, {});
    h.run();
    return h.logger().fct_us().front();
  };
  const double with_trim = run(true);
  const double without = run(false);
  const double ideal_us = 10e6 * 8.0 / 100e9 * 1e6;
  EXPECT_LE(with_trim, without * 1.05);
  EXPECT_GT(with_trim, ideal_us);
}

}  // namespace
}  // namespace pnet::sim
