// Tests for routing: BFS/Dijkstra correctness, Yen KSP properties (loopless,
// sorted, distinct, complete vs brute force), ECMP enumeration/hashing, and
// cross-plane path merging.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "routing/ecmp.hpp"
#include "routing/path.hpp"
#include "routing/plane_paths.hpp"
#include "routing/route_table.hpp"
#include "routing/shortest.hpp"
#include "routing/yen.hpp"
#include "topo/fat_tree.hpp"
#include "topo/jellyfish.hpp"
#include "topo/parallel.hpp"

namespace pnet::routing {
namespace {

using topo::Graph;
using topo::NodeKind;

/// A diamond with a long detour:
///   s - a - t,  s - b - t,  s - c - d - t
Graph diamond(std::vector<NodeId>& nodes) {
  Graph g;
  for (int i = 0; i < 6; ++i) nodes.push_back(g.add_node(NodeKind::kSwitch));
  auto [s, a, b, t, c, d] = std::tuple{nodes[0], nodes[1], nodes[2],
                                       nodes[3], nodes[4], nodes[5]};
  g.add_duplex_link(s, a, 1, 1);
  g.add_duplex_link(a, t, 1, 1);
  g.add_duplex_link(s, b, 1, 1);
  g.add_duplex_link(b, t, 1, 1);
  g.add_duplex_link(s, c, 1, 1);
  g.add_duplex_link(c, d, 1, 1);
  g.add_duplex_link(d, t, 1, 1);
  return g;
}

TEST(Bfs, DistancesOnDiamond) {
  std::vector<NodeId> n;
  const Graph g = diamond(n);
  const auto dist = bfs_hops(g, n[0]);
  EXPECT_EQ(dist[static_cast<std::size_t>(n[0].v)], 0);
  EXPECT_EQ(dist[static_cast<std::size_t>(n[1].v)], 1);
  EXPECT_EQ(dist[static_cast<std::size_t>(n[3].v)], 2);
  EXPECT_EQ(dist[static_cast<std::size_t>(n[5].v)], 2);
}

TEST(Bfs, HostsDoNotTransit) {
  // h1 - sw1 - h2: h2 reachable. h1 - h2 - h3 chain: h3 unreachable via h2.
  Graph g;
  const NodeId h1 = g.add_node(NodeKind::kHost, HostId{0});
  const NodeId h2 = g.add_node(NodeKind::kHost, HostId{1});
  const NodeId h3 = g.add_node(NodeKind::kHost, HostId{2});
  g.add_duplex_link(h1, h2, 1, 1);
  g.add_duplex_link(h2, h3, 1, 1);
  const auto dist = bfs_hops(g, h1);
  EXPECT_EQ(dist[static_cast<std::size_t>(h2.v)], 1);
  EXPECT_EQ(dist[static_cast<std::size_t>(h3.v)], kUnreachable);
}

TEST(ShortestPath, FindsTwoHopPath) {
  std::vector<NodeId> n;
  const Graph g = diamond(n);
  const auto path = shortest_path(g, n[0], n[3]);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 2);
  EXPECT_TRUE(is_valid_path(g, *path, n[0], n[3]));
}

TEST(ShortestPath, ReturnsNulloptWhenDisconnected) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kSwitch);
  const NodeId b = g.add_node(NodeKind::kSwitch);
  EXPECT_FALSE(shortest_path(g, a, b).has_value());
}

TEST(Dijkstra, RespectsWeights) {
  std::vector<NodeId> n;
  const Graph g = diamond(n);
  // Penalize the two short branches; the 3-hop detour becomes cheapest.
  LinkWeights w(static_cast<std::size_t>(g.num_links()), 1.0);
  for (int l = 0; l < g.num_links(); ++l) {
    const auto& link = g.link(LinkId{l});
    const bool via_detour = link.src == n[4] || link.dst == n[4] ||
                            link.src == n[5] || link.dst == n[5];
    if (!via_detour) w[static_cast<std::size_t>(l)] = 10.0;
  }
  const auto path = dijkstra(g, n[0], n[3], w);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 3);
}

TEST(Dijkstra, BannedLinksAndNodes) {
  std::vector<NodeId> n;
  const Graph g = diamond(n);
  const LinkWeights unit(static_cast<std::size_t>(g.num_links()), 1.0);
  std::vector<bool> banned_nodes(static_cast<std::size_t>(g.num_nodes()));
  banned_nodes[static_cast<std::size_t>(n[1].v)] = true;  // ban a
  banned_nodes[static_cast<std::size_t>(n[2].v)] = true;  // ban b
  const auto path = dijkstra(g, n[0], n[3], unit, {}, banned_nodes);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 3);  // forced onto the detour

  std::vector<bool> all_banned(static_cast<std::size_t>(g.num_links()), true);
  EXPECT_FALSE(dijkstra(g, n[0], n[3], unit, all_banned).has_value());
}

TEST(Yen, DiamondEnumeratesAllPathsInOrder) {
  std::vector<NodeId> n;
  const Graph g = diamond(n);
  const auto paths = k_shortest_paths(g, n[0], n[3], 10);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].hops(), 2);
  EXPECT_EQ(paths[1].hops(), 2);
  EXPECT_EQ(paths[2].hops(), 3);
  std::set<std::vector<LinkId>> distinct;
  for (const auto& p : paths) {
    EXPECT_TRUE(is_valid_path(g, p, n[0], n[3]));
    EXPECT_TRUE(distinct.insert(p.links).second);
  }
}

TEST(Yen, KBoundsResultCount) {
  std::vector<NodeId> n;
  const Graph g = diamond(n);
  EXPECT_EQ(k_shortest_paths(g, n[0], n[3], 2).size(), 2u);
  EXPECT_EQ(k_shortest_paths(g, n[0], n[3], 0).size(), 0u);
}

/// Brute-force loopless path enumeration for cross-checking Yen.
void enumerate_all(const Graph& g, NodeId at, NodeId dst,
                   std::vector<bool>& visited, Path& current,
                   std::vector<Path>& out) {
  if (at == dst) {
    out.push_back(current);
    return;
  }
  if (g.is_host(at) && !current.links.empty()) return;
  for (LinkId id : g.out_links(at)) {
    const NodeId v = g.link(id).dst;
    if (visited[static_cast<std::size_t>(v.v)]) continue;
    visited[static_cast<std::size_t>(v.v)] = true;
    current.links.push_back(id);
    enumerate_all(g, v, dst, visited, current, out);
    current.links.pop_back();
    visited[static_cast<std::size_t>(v.v)] = false;
  }
}

class YenVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YenVsBruteForce, MatchesOnRandomJellyfish) {
  topo::JellyfishConfig config;
  config.num_switches = 10;
  config.network_degree = 3;
  config.hosts_per_switch = 1;
  config.seed = GetParam();
  const auto jf = build_jellyfish(config);
  const Graph& g = jf.graph;
  const NodeId src = jf.host_nodes.front();
  const NodeId dst = jf.host_nodes.back();

  std::vector<Path> all;
  std::vector<bool> visited(static_cast<std::size_t>(g.num_nodes()), false);
  visited[static_cast<std::size_t>(src.v)] = true;
  Path current;
  enumerate_all(g, src, dst, visited, current, all);
  std::sort(all.begin(), all.end(), [](const Path& a, const Path& b) {
    return a.hops() < b.hops();
  });

  constexpr int kK = 12;
  const auto yen = k_shortest_paths(g, src, dst, kK);
  const std::size_t expect = std::min<std::size_t>(all.size(), kK);
  ASSERT_EQ(yen.size(), expect);
  // Hop-count multiset of the K shortest must match the brute force one.
  for (std::size_t i = 0; i < yen.size(); ++i) {
    EXPECT_EQ(yen[i].hops(), all[i].hops()) << "position " << i;
    EXPECT_TRUE(is_valid_path(g, yen[i], src, dst));
  }
  // All returned paths are distinct.
  std::set<std::vector<LinkId>> distinct;
  for (const auto& p : yen) EXPECT_TRUE(distinct.insert(p.links).second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, YenVsBruteForce,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Ecmp, FatTreeInterPodPathCount) {
  topo::FatTreeConfig config;
  config.k = 4;
  const auto ft = build_fat_tree(config);
  // Hosts in different pods have (k/2)^2 = 4 equal-cost 6-link paths.
  const NodeId src = ft.host_nodes.front();
  const NodeId dst = ft.host_nodes.back();
  const auto paths = enumerate_shortest_paths(ft.graph, src, dst);
  EXPECT_EQ(paths.size(), 4u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.hops(), 6);  // host-edge-agg-core-agg-edge-host
    EXPECT_TRUE(is_valid_path(ft.graph, p, src, dst));
  }
}

TEST(Ecmp, SameRackSinglePath) {
  topo::FatTreeConfig config;
  config.k = 4;
  const auto ft = build_fat_tree(config);
  const auto paths =
      enumerate_shortest_paths(ft.graph, ft.host_nodes[0], ft.host_nodes[1]);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops(), 2);
}

TEST(Ecmp, SamePodPathCount) {
  topo::FatTreeConfig config;
  config.k = 4;
  const auto ft = build_fat_tree(config);
  // Same pod, different rack: k/2 = 2 paths of 4 links.
  const auto paths =
      enumerate_shortest_paths(ft.graph, ft.host_nodes[0], ft.host_nodes[2]);
  EXPECT_EQ(paths.size(), 2u);
  for (const auto& p : paths) EXPECT_EQ(p.hops(), 4);
}

TEST(Ecmp, CapLimitsEnumeration) {
  topo::FatTreeConfig config;
  config.k = 8;
  const auto ft = build_fat_tree(config);
  const auto paths = enumerate_shortest_paths(
      ft.graph, ft.host_nodes.front(), ft.host_nodes.back(), 5);
  EXPECT_EQ(paths.size(), 5u);
}

TEST(Ecmp, PickIsStableAndBalanced) {
  EXPECT_EQ(ecmp_pick(123, 8), ecmp_pick(123, 8));
  std::vector<int> counts(8, 0);
  for (std::uint64_t f = 0; f < 8000; ++f) {
    ++counts[static_cast<std::size_t>(ecmp_pick(f, 8))];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(PlanePaths, KspAcrossPlanesInterleavesHomogeneousPlanes) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  spec.parallelism = 2;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  const auto net = build_network(spec);

  const auto paths = ksp_across_planes(net, HostId{0}, HostId{15}, 8);
  ASSERT_EQ(paths.size(), 8u);
  int in_plane0 = 0;
  int in_plane1 = 0;
  for (const auto& p : paths) {
    (p.plane == 0 ? in_plane0 : in_plane1)++;
    EXPECT_TRUE(is_valid_path(net.plane(p.plane).graph,
                              p, net.host_node(p.plane, HostId{0}),
                              net.host_node(p.plane, HostId{15})));
  }
  // Identical planes, equal hop counts -> perfectly even split.
  EXPECT_EQ(in_plane0, 4);
  EXPECT_EQ(in_plane1, 4);
}

TEST(PlanePaths, KspSortedByHops) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kJellyfish;
  spec.hosts = 42;
  spec.parallelism = 4;
  spec.type = topo::NetworkType::kParallelHeterogeneous;
  const auto net = build_network(spec);
  const auto paths = ksp_across_planes(net, HostId{0}, HostId{41}, 16);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].hops(), paths[i].hops());
  }
}

TEST(PlanePaths, ShortestPerPlaneSortedAndOnePerPlane) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kJellyfish;
  spec.hosts = 42;
  spec.parallelism = 4;
  spec.type = topo::NetworkType::kParallelHeterogeneous;
  const auto net = build_network(spec);
  const auto paths = shortest_per_plane(net, HostId{0}, HostId{41});
  ASSERT_EQ(paths.size(), 4u);
  std::set<int> planes;
  for (const auto& p : paths) planes.insert(p.plane);
  EXPECT_EQ(planes.size(), 4u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].hops(), paths[i].hops());
  }
}

TEST(PlanePaths, HeterogeneousMinHopsNeverWorseThanPlaneZero) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kJellyfish;
  spec.hosts = 98;
  spec.parallelism = 4;
  spec.type = topo::NetworkType::kParallelHeterogeneous;
  const auto net = build_network(spec);
  for (int h = 1; h < 20; ++h) {
    const auto paths = shortest_per_plane(net, HostId{0}, HostId{h * 4});
    ASSERT_FALSE(paths.empty());
    int plane0_hops = -1;
    for (const auto& p : paths) {
      if (p.plane == 0) plane0_hops = p.hops();
    }
    ASSERT_GE(plane0_hops, 0);
    EXPECT_LE(paths.front().hops(), plane0_hops);
  }
}

TEST(PlanePaths, EcmpPathsCarryPlaneIndex) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  spec.parallelism = 2;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  const auto net = build_network(spec);
  const auto paths = ecmp_paths_in_plane(net, 1, HostId{0}, HostId{15});
  ASSERT_FALSE(paths.empty());
  for (const auto& p : paths) EXPECT_EQ(p.plane, 1);
}

TEST(Path, EmptyPathAccessorsAreSafe) {
  // Empty paths occur legitimately (e.g. a partitioned plane after faults);
  // src()/dst() must return the invalid id instead of reading front()/back()
  // of an empty vector.
  std::vector<NodeId> n;
  const Graph g = diamond(n);
  const Path empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.hops(), 0);
  EXPECT_FALSE(empty.src(g).valid());
  EXPECT_FALSE(empty.dst(g).valid());
  EXPECT_EQ(empty.latency(g), 0);

  const PathView view(empty);
  EXPECT_TRUE(view.empty());
  EXPECT_FALSE(view.src(g).valid());
  EXPECT_FALSE(view.dst(g).valid());
  EXPECT_EQ(view.latency(g), 0);
}

TEST(RouteTable, InternDedupsAndViewsMatch) {
  std::vector<NodeId> n;
  const Graph g = diamond(n);
  const auto p1 = shortest_path(g, n[0], n[3]);
  ASSERT_TRUE(p1.has_value());

  RouteTable table;
  const PathRef a = table.intern(*p1);
  const PathRef b = table.intern(*p1);  // identical content
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.num_paths(), 1u);
  EXPECT_EQ(table.links_stored(), p1->links.size());

  const PathView view = table.view(a);
  EXPECT_EQ(view.hops(), p1->hops());
  EXPECT_EQ(view.plane(), p1->plane);
  EXPECT_TRUE(std::equal(view.links().begin(), view.links().end(),
                         p1->links.begin(), p1->links.end()));
  EXPECT_EQ(view.src(g), n[0]);
  EXPECT_EQ(view.dst(g), n[3]);
  EXPECT_EQ(view.latency(g), p1->latency(g));
  EXPECT_EQ(view.materialize(), *p1);
}

TEST(RouteTable, PlaneDistinguishesEqualLinkSequences) {
  Path p;
  p.links = {LinkId{0}, LinkId{2}};
  RouteTable table;
  p.plane = 0;
  const PathRef a = table.intern(p);
  p.plane = 1;
  const PathRef b = table.intern(p);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.num_paths(), 2u);
  EXPECT_EQ(table.view(a).plane(), 0);
  EXPECT_EQ(table.view(b).plane(), 1);
}

TEST(RouteTable, EmptyPathInternsWithoutAllocating) {
  RouteTable table;
  Path empty;
  empty.plane = 3;
  const PathRef ref = table.intern(empty);
  EXPECT_EQ(ref.len, 0u);
  const PathView view = table.view(ref);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.plane(), 3);
  EXPECT_EQ(table.arena_bytes(), 0u);
}

TEST(RouteTable, ManyPathsSurviveSlabGrowth) {
  // Enough distinct paths to cross several 64K-link slabs; earlier refs
  // must stay resolvable (slabs never move).
  RouteTable table;
  std::vector<PathRef> refs;
  Path p;
  for (int i = 0; i < 40'000; ++i) {
    p.links.assign(5, LinkId{i});
    refs.push_back(table.intern(p));
  }
  EXPECT_GT(table.arena_bytes(), std::size_t{64} * 1024 * sizeof(LinkId));
  for (int i = 0; i < 40'000; i += 997) {
    const PathView view = table.view(refs[static_cast<std::size_t>(i)]);
    ASSERT_EQ(view.hops(), 5);
    EXPECT_EQ(view.links().front(), LinkId{i});
  }
}

TEST(BannedLinks, BfsAndShortestPathRouteAround) {
  std::vector<NodeId> n;
  const Graph g = diamond(n);
  // Ban s-a (both directions): s->t must go via b (still 2 hops), and a is
  // only reachable the long way round through t.
  std::vector<bool> banned(static_cast<std::size_t>(g.num_links()), false);
  banned[0] = banned[1] = true;  // first duplex pair: s<->a
  const auto dist = bfs_hops(g, n[0], &banned);
  EXPECT_EQ(dist[static_cast<std::size_t>(n[1].v)], 3);
  EXPECT_EQ(dist[static_cast<std::size_t>(n[3].v)], 2);

  const auto path = shortest_path(g, n[0], n[3], &banned);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 2);
  EXPECT_EQ(g.link(path->links.front()).dst, n[2]);  // via b
}

TEST(BannedLinks, EcmpEnumerationSkipsBannedPaths) {
  std::vector<NodeId> n;
  const Graph g = diamond(n);
  const auto all = enumerate_shortest_paths(g, n[0], n[3]);
  ASSERT_EQ(all.size(), 2u);  // via a and via b

  std::vector<bool> banned(static_cast<std::size_t>(g.num_links()), false);
  banned[0] = banned[1] = true;  // ban s<->a
  const auto constrained =
      enumerate_shortest_paths(g, n[0], n[3], 256, &banned);
  ASSERT_EQ(constrained.size(), 1u);
  EXPECT_EQ(g.link(constrained.front().links.front()).dst, n[2]);
}

TEST(BannedLinks, YenBaseMaskExcludesLinkFromEveryPath) {
  std::vector<NodeId> n;
  const Graph g = diamond(n);
  std::vector<bool> banned(static_cast<std::size_t>(g.num_links()), false);
  banned[0] = banned[1] = true;  // ban s<->a
  const auto paths = k_shortest_paths(g, n[0], n[3], 4, nullptr, &banned);
  // Without the ban: 3 paths (via a, via b, via c-d). With it: 2.
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    for (LinkId id : p.links) {
      EXPECT_FALSE(banned[static_cast<std::size_t>(id.v)]);
    }
  }
}

TEST(BannedLinks, PlaneBansApplyPerPlane) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  spec.parallelism = 2;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  const auto net = build_network(spec);

  const auto base = ecmp_paths_in_plane(net, 0, HostId{0}, HostId{15});
  ASSERT_FALSE(base.empty());
  // Ban plane 0's first path's first fabric link (and its twin) — plane 0
  // loses at least that path while plane 1 is untouched.
  const LinkId victim = base.front().links[1];
  PlaneBans bans(2);
  bans[0].assign(
      static_cast<std::size_t>(net.plane(0).graph.num_links()), false);
  bans[0][static_cast<std::size_t>(victim.v)] = true;
  bans[0][static_cast<std::size_t>(victim.v ^ 1)] = true;

  const auto p0 = ecmp_paths_in_plane(net, 0, HostId{0}, HostId{15}, 256,
                                      &bans);
  EXPECT_LT(p0.size(), base.size());
  for (const auto& p : p0) {
    for (LinkId id : p.links) EXPECT_NE(id, victim);
  }
  const auto p1 = ecmp_paths_in_plane(net, 1, HostId{0}, HostId{15}, 256,
                                      &bans);
  EXPECT_EQ(p1.size(), base.size());  // identical plane, no bans
}

}  // namespace
}  // namespace pnet::routing
