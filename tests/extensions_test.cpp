// Tests for the extension features beyond the paper's core evaluation:
// the Xpander topology, simulated link/plane failures with failure-aware
// path selection (§3.4), DCTCP/ECN (§6.5), and per-plane performance
// isolation (§7).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/harness.hpp"
#include "routing/shortest.hpp"
#include "util/stats.hpp"
#include "topo/xpander.hpp"
#include "workload/apps.hpp"
#include "workload/patterns.hpp"

namespace pnet {
namespace {

// ----------------------------------------------------------------- Xpander

class XpanderShape
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(XpanderShape, IsDRegularSimpleAndGrouped) {
  const auto [d, lift, seed] = GetParam();
  topo::XpanderConfig config;
  config.network_degree = d;
  config.lift = lift;
  config.hosts_per_switch = 2;
  config.seed = seed;
  const auto x = topo::build_xpander(config);
  EXPECT_EQ(x.num_switches(), (d + 1) * lift);
  EXPECT_EQ(x.num_hosts(), (d + 1) * lift * 2);

  // Exact d-regularity over fabric links, simplicity, and no intra-metanode
  // links (a lift of the complete graph has none).
  std::map<int, int> degree;
  std::set<std::pair<int, int>> seen;
  for (int l = 0; l < x.graph.num_links(); ++l) {
    const auto& link = x.graph.link(LinkId{l});
    if (x.graph.is_host(link.src) || x.graph.is_host(link.dst)) continue;
    EXPECT_TRUE(seen.emplace(link.src.v, link.dst.v).second);
    ++degree[link.src.v];
  }
  for (int s = 0; s < x.num_switches(); ++s) {
    EXPECT_EQ(degree[x.switch_nodes[static_cast<std::size_t>(s)].v], d);
  }
  for (const auto& [a, b] : seen) {
    int ia = -1;
    int ib = -1;
    for (int s = 0; s < x.num_switches(); ++s) {
      if (x.switch_nodes[static_cast<std::size_t>(s)].v == a) ia = s;
      if (x.switch_nodes[static_cast<std::size_t>(s)].v == b) ib = s;
    }
    EXPECT_NE(x.metanode_of_switch(ia), x.metanode_of_switch(ib));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, XpanderShape,
                         ::testing::Values(std::tuple{3, 4, 1u},
                                           std::tuple{8, 8, 2u},
                                           std::tuple{5, 10, 3u},
                                           std::tuple{8, 8, 9u}));

TEST(Xpander, ConnectedWithShortPaths) {
  topo::XpanderConfig config;
  config.network_degree = 8;
  config.lift = 8;
  const auto x = topo::build_xpander(config);
  const auto dist = routing::bfs_hops(x.graph, x.switch_nodes.front());
  int max_dist = 0;
  for (NodeId sw : x.switch_nodes) {
    const int d = dist[static_cast<std::size_t>(sw.v)];
    ASSERT_NE(d, routing::kUnreachable);
    max_dist = std::max(max_dist, d);
  }
  EXPECT_LE(max_dist, 3);  // 72 switches at degree 8: expander diameter
}

TEST(Xpander, WorksAsParallelNetworkPlanes) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kXpander;
  spec.type = topo::NetworkType::kParallelHeterogeneous;
  spec.hosts = 96;
  spec.parallelism = 4;
  const auto net = topo::build_network(spec);
  EXPECT_EQ(net.num_planes(), 4);
  EXPECT_GE(net.num_hosts(), 96);
  // Heterogeneous Xpander planes differ (different lifts).
  bool differ = false;
  for (int l = 0; l < net.plane(0).graph.num_links() && !differ; ++l) {
    differ = net.plane(0).graph.link(LinkId{l}).dst !=
             net.plane(1).graph.link(LinkId{l}).dst;
  }
  EXPECT_TRUE(differ);
  // And the heterogeneous min-hop advantage applies to Xpanders too.
  const auto paths = routing::shortest_per_plane(net, HostId{0}, HostId{90});
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_LE(paths.front().hops(), paths.back().hops());
}

// ------------------------------------------------- failures + reselection

core::SimHarness make_parallel_harness(core::RoutingPolicy policy_kind,
                                       int k = 2) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = 16;
  spec.parallelism = 2;
  core::PolicyConfig policy;
  policy.policy = policy_kind;
  policy.k = k;
  return core::SimHarness({.spec = spec, .policy = policy});
}

TEST(Failures, FailedQueueDropsEverything) {
  auto h = make_parallel_harness(core::RoutingPolicy::kShortestPlane);
  h.network().set_plane_failed(1, true);
  // Force a flow onto plane 1 by failing plane 0 in the selector.
  h.selector().set_plane_failed(0, true);
  h.starter()(HostId{0}, HostId{15}, 15000, 0, {});
  h.run_until(5 * units::kMillisecond);
  EXPECT_TRUE(h.logger().records().empty());  // black-holed
  EXPECT_GT(h.network().total_drops(), 0u);
}

TEST(Failures, SelectorAvoidsFailedPlane) {
  auto h = make_parallel_harness(core::RoutingPolicy::kRoundRobin);
  h.network().set_plane_failed(1, true);   // the fabric breaks...
  h.selector().set_plane_failed(1, true);  // ...and the host notices (§3.4)
  for (int i = 0; i < 8; ++i) {
    h.starter()(HostId{i}, HostId{15 - i}, 50'000, 0, {});
  }
  h.run();
  ASSERT_EQ(h.logger().records().size(), 8u);  // all complete on plane 0
  EXPECT_EQ(h.logger().total_timeouts(), 0);
}

TEST(Failures, UnawareSelectorSuffersTimeoutsAwareDoesNot) {
  auto run = [&](bool aware) {
    auto h = make_parallel_harness(core::RoutingPolicy::kRoundRobin);
    h.network().set_plane_failed(1, true);
    if (aware) h.selector().set_plane_failed(1, true);
    for (int i = 0; i < 8; ++i) {
      h.starter()(HostId{i}, HostId{15 - i}, 50'000, 0, {});
    }
    h.run_until(2 * units::kSecond);
    return h.logger().records().size();
  };
  EXPECT_EQ(run(true), 8u);
  EXPECT_LT(run(false), 8u);  // flows routed into the dead plane never finish
}

TEST(Failures, CableFailureOnlyAffectsThatCable) {
  auto h = make_parallel_harness(core::RoutingPolicy::kShortestPlane);
  // Fail one fabric cable in plane 0; the fat tree routes around nothing
  // (source routing), but flows not using that cable are untouched.
  h.network().set_cable_failed(0, LinkId{40}, true);
  h.starter()(HostId{0}, HostId{1}, 15000, 0, {});  // same rack, unaffected
  h.run();
  EXPECT_EQ(h.logger().records().size(), 1u);
}

TEST(Failures, KspSelectorFiltersFailedPlane) {
  auto h = make_parallel_harness(core::RoutingPolicy::kKspMultipath, 4);
  h.selector().set_plane_failed(0, true);
  const auto paths =
      h.selector().select(HostId{0}, HostId{15}, 1 << 20, 123);
  ASSERT_FALSE(paths.empty());
  for (const auto& p : paths) EXPECT_EQ(p.plane, 1);
}

TEST(Failures, PlaneRecoveryRestoresUse) {
  auto h = make_parallel_harness(core::RoutingPolicy::kRoundRobin);
  h.selector().set_plane_failed(1, true);
  h.selector().set_plane_failed(1, false);
  std::set<int> planes;
  for (int i = 0; i < 8; ++i) {
    const auto paths = h.selector().select(HostId{0}, HostId{15}, 1000, 1);
    ASSERT_EQ(paths.size(), 1u);
    planes.insert(paths.front().plane);
  }
  EXPECT_EQ(planes.size(), 2u);
}

// ----------------------------------------------------------------- DCTCP

core::SimHarness make_dctcp_harness(bool dctcp) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 100 * 1500;
  if (dctcp) {
    sim_config.ecn_threshold_bytes = 20 * 1500;  // ~20% of the buffer
    sim_config.tcp.dctcp = true;
  }
  return core::SimHarness({.spec = spec, .policy = policy, .sim_config = sim_config});
}

TEST(Dctcp, MarksAndKeepsQueuesShort) {
  auto reno = make_dctcp_harness(false);
  auto dctcp = make_dctcp_harness(true);
  auto run = [](core::SimHarness& h) {
    // Two bulk flows into one receiver: standing queue at its downlink.
    h.starter()(HostId{0}, HostId{15}, 20'000'000, 0, {});
    h.starter()(HostId{4}, HostId{15}, 20'000'000, 0, {});
    h.run();
  };
  run(reno);
  run(dctcp);
  ASSERT_EQ(dctcp.logger().records().size(), 2u);
  EXPECT_GT(dctcp.network().total_ecn_marks(), 0u);
  EXPECT_EQ(reno.network().total_ecn_marks(), 0u);
  // DCTCP's point: congestion control without drops.
  EXPECT_LT(dctcp.network().total_drops(), reno.network().total_drops());
  EXPECT_EQ(dctcp.logger().total_retransmits(), 0);
}

TEST(Dctcp, ThroughputComparableToReno) {
  auto run = [](bool dctcp_on) {
    auto h = make_dctcp_harness(dctcp_on);
    h.starter()(HostId{0}, HostId{15}, 20'000'000, 0, {});
    h.run();
    return h.logger().fct_us().front();
  };
  const double reno = run(false);
  const double dctcp = run(true);
  EXPECT_LT(dctcp, 1.3 * reno);  // no throughput collapse from marking
}

TEST(Dctcp, IncastTailBeatsReno) {
  // 8-to-1 incast of 200 kB each into shallow buffers: DCTCP should avoid
  // the RTO tail NewReno hits (paper §6.5's motivation).
  auto run = [](bool dctcp_on) {
    auto h = make_dctcp_harness(dctcp_on);
    std::vector<double> fct;
    for (int i = 0; i < 8; ++i) {
      h.starter()(HostId{i}, HostId{15}, 200'000, 0, {});
    }
    h.run_until(units::kSecond);
    return std::pair{h.logger().records().size(),
                     h.logger().total_timeouts()};
  };
  const auto [reno_done, reno_rto] = run(false);
  const auto [dctcp_done, dctcp_rto] = run(true);
  EXPECT_EQ(dctcp_done, 8u);
  EXPECT_LE(dctcp_rto, reno_rto);
}

// ------------------------------------------------------------- isolation

TEST(Isolation, AllowedPlanesRestrictSelection) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = 16;
  spec.parallelism = 4;
  const auto net = topo::build_network(spec);

  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;
  policy.allowed_planes = {1, 3};
  core::PathSelector selector(net, policy);
  std::set<int> used;
  for (int i = 0; i < 12; ++i) {
    const auto paths = selector.select(HostId{0}, HostId{15}, 1000, 5);
    ASSERT_EQ(paths.size(), 1u);
    used.insert(paths.front().plane);
  }
  EXPECT_EQ(used, (std::set<int>{1, 3}));
}

TEST(Isolation, TenantsOnDisjointPlanesDoNotInterfere) {
  // Tenant A (latency RPCs, plane 0) vs tenant B (bulk elephants, planes
  // 1-3) on one 4-plane P-Net: B's load must not move A's completion times.
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = 16;
  spec.parallelism = 4;

  auto run = [&](bool with_bulk) {
    core::PolicyConfig policy_a;
    policy_a.policy = core::RoutingPolicy::kRoundRobin;
    policy_a.allowed_planes = {0};
    core::SimHarness h({.spec = spec, .policy = policy_a});

    core::PolicyConfig policy_b;
    policy_b.policy = core::RoutingPolicy::kRoundRobin;
    policy_b.allowed_planes = {1, 2, 3};
    core::PathSelector selector_b(h.net(), policy_b);
    auto starter_b = selector_b.make_starter(h.factory());
    if (with_bulk) {
      for (int i = 0; i < 8; ++i) {
        starter_b(HostId{i}, HostId{15 - i}, 20'000'000, 0, {});
      }
    }
    std::vector<double> rpc_fct;
    workload::ClosedLoopApp::Config config;
    config.rounds_per_worker = 20;
    workload::ClosedLoopApp app(
        h.starter(), {HostId{0}, HostId{5}}, config,
        [](HostId src, Rng&) { return HostId{src.v == 0 ? 10 : 12}; },
        [](Rng&) { return std::uint64_t{20'000}; });
    app.start(0);
    h.run();
    auto v = app.completion_times_us();
    return percentile(v, 99);
  };

  const double quiet = run(false);
  const double busy = run(true);
  EXPECT_NEAR(busy, quiet, 0.05 * quiet);  // strict isolation
}

}  // namespace
}  // namespace pnet
