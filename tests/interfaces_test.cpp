// Tests for the §3.4 application-facing host interfaces, Jellyfish
// incremental expansion (§6.1), topology DOT export, and CSV CDF loading.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "core/harness.hpp"
#include "routing/shortest.hpp"
#include "core/interfaces.hpp"
#include "topo/export.hpp"
#include "topo/jellyfish.hpp"
#include "workload/traces.hpp"

namespace pnet {
namespace {

// ------------------------------------------------------- HostInterfaces

struct InterfaceHarness {
  InterfaceHarness()
      : net(topo::build_network([] {
          topo::NetworkSpec spec;
          spec.topo = topo::TopoKind::kFatTree;
          spec.type = topo::NetworkType::kParallelHomogeneous;
          spec.hosts = 16;
          spec.parallelism = 2;
          return spec;
        }())),
        network(events, pool, net, {}),
        factory(events, pool, network, logger),
        interfaces(net, factory, 4) {}

  sim::EventQueue events;
  sim::PacketPool pool;
  topo::ParallelNetwork net;
  sim::FlowLogger logger;
  sim::SimNetwork network;
  sim::FlowFactory factory;
  core::HostInterfaces interfaces;
};

TEST(HostInterfaces, LowLatencyIsSinglePath) {
  InterfaceHarness h;
  h.interfaces.send(core::TrafficClass::kLowLatency, HostId{0}, HostId{15},
                    10'000, 0);
  h.events.run();
  ASSERT_EQ(h.logger.records().size(), 1u);
  EXPECT_EQ(h.logger.records().front().subflows, 1);
}

TEST(HostInterfaces, HighThroughputIsMultipath) {
  InterfaceHarness h;
  h.interfaces.send(core::TrafficClass::kHighThroughput, HostId{0},
                    HostId{15}, 1'000'000, 0);
  h.events.run();
  ASSERT_EQ(h.logger.records().size(), 1u);
  EXPECT_EQ(h.logger.records().front().subflows, 4);
}

TEST(HostInterfaces, DefaultDispatchesOnSize) {
  InterfaceHarness h;
  h.interfaces.send(core::TrafficClass::kDefault, HostId{0}, HostId{15},
                    1'000'000, 0);  // small: single path
  h.interfaces.send(core::TrafficClass::kDefault, HostId{1}, HostId{14},
                    200'000'000, 0);  // > 100 MB: multipath
  h.events.run();
  ASSERT_EQ(h.logger.records().size(), 2u);
  std::map<std::uint64_t, int> subflows_by_size;
  for (const auto& r : h.logger.records()) {
    subflows_by_size[r.bytes] = r.subflows;
  }
  EXPECT_EQ(subflows_by_size[1'000'000], 1);
  EXPECT_GT(subflows_by_size[200'000'000], 1);
}

TEST(HostInterfaces, FailurePropagatesToAllClasses) {
  InterfaceHarness h;
  h.interfaces.set_plane_failed(0, true);
  for (auto tc : {core::TrafficClass::kLowLatency,
                  core::TrafficClass::kHighThroughput,
                  core::TrafficClass::kDefault}) {
    const auto paths =
        h.interfaces.selector(tc).select(HostId{0}, HostId{15}, 1000, 7);
    ASSERT_FALSE(paths.empty()) << core::to_string(tc);
    for (const auto& p : paths) EXPECT_EQ(p.plane, 1);
  }
}

TEST(HostInterfaces, ClassNames) {
  EXPECT_EQ(core::to_string(core::TrafficClass::kLowLatency),
            "low-latency");
  EXPECT_EQ(core::to_string(core::TrafficClass::kHighThroughput),
            "high-throughput");
}

// ------------------------------------------------------------ expansion

TEST(JellyfishExpansion, PreservesDegreesAndGrows) {
  topo::JellyfishConfig config;
  config.num_switches = 20;
  config.network_degree = 6;
  config.hosts_per_switch = 2;
  config.seed = 4;
  const auto base = topo::build_jellyfish(config);
  const auto expanded = topo::expand_jellyfish(base, config, 5, 99);

  EXPECT_EQ(expanded.switch_nodes.size(), 25u);
  EXPECT_EQ(expanded.num_hosts(), 50);

  // Every switch's fabric degree is still <= 6, and old switches keep
  // exactly degree 6 (splice preserves degree).
  std::map<int, int> degree;
  for (int l = 0; l < expanded.graph.num_links(); ++l) {
    const auto& link = expanded.graph.link(LinkId{l});
    if (expanded.graph.is_host(link.src) ||
        expanded.graph.is_host(link.dst)) {
      continue;
    }
    ++degree[link.src.v];
  }
  for (std::size_t s = 0; s < expanded.switch_nodes.size(); ++s) {
    const int d = degree[expanded.switch_nodes[s].v];
    if (s < 20) {
      EXPECT_EQ(d, 6) << "existing switch " << s;
    } else {
      EXPECT_GE(d, 2);
      EXPECT_LE(d, 6);
    }
  }
}

TEST(JellyfishExpansion, StaysConnected) {
  topo::JellyfishConfig config;
  config.num_switches = 16;
  config.network_degree = 4;
  config.hosts_per_switch = 1;
  const auto base = topo::build_jellyfish(config);
  const auto expanded = topo::expand_jellyfish(base, config, 8, 7);
  const auto dist =
      routing::bfs_hops(expanded.graph, expanded.switch_nodes.front());
  for (NodeId sw : expanded.switch_nodes) {
    EXPECT_NE(dist[static_cast<std::size_t>(sw.v)], routing::kUnreachable);
  }
}

TEST(JellyfishExpansion, HostIndicesStable) {
  topo::JellyfishConfig config;
  config.num_switches = 10;
  config.network_degree = 4;
  config.hosts_per_switch = 3;
  const auto base = topo::build_jellyfish(config);
  const auto expanded = topo::expand_jellyfish(base, config, 2, 3);
  for (int h = 0; h < base.num_hosts(); ++h) {
    EXPECT_EQ(expanded.graph.node(expanded.host_nodes[
                  static_cast<std::size_t>(h)]).host,
              HostId{h});
  }
}

// ------------------------------------------------------------ DOT export

TEST(DotExport, SinglePlaneContainsNodesAndEdges) {
  topo::FatTreeConfig config;
  config.k = 4;
  const auto ft = topo::build_fat_tree(config);
  const auto dot = topo::to_dot(ft.graph, "ft");
  EXPECT_NE(dot.find("graph ft {"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);     // hosts
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);  // switches
  // One undirected edge per cable.
  const auto edges = std::count(dot.begin(), dot.end(), '-') / 2;
  EXPECT_EQ(edges, ft.graph.num_cables());
}

TEST(DotExport, MultiPlaneColorsPlanes) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kJellyfish;
  spec.type = topo::NetworkType::kParallelHeterogeneous;
  spec.hosts = 12;
  spec.parallelism = 2;
  const auto net = topo::build_network(spec);
  const auto dot = topo::to_dot(net);
  EXPECT_NE(dot.find("cluster_plane0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_plane1"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("color=blue"), std::string::npos);
  // Shared hosts appear once, unprefixed.
  EXPECT_NE(dot.find("  h0 [shape=box"), std::string::npos);
}

// ------------------------------------------------------------ CSV CDFs

TEST(CsvCdf, LoadsAndSamples) {
  std::istringstream csv(
      "# size_bytes,cdf\n"
      "100,0.25\n"
      "1000,0.5\n"
      "\n"
      "10000,1.0\n");
  const auto dist = workload::FlowSizeDistribution::from_csv(csv);
  EXPECT_EQ(dist.points().size(), 3u);
  EXPECT_DOUBLE_EQ(dist.cdf(1000), 0.5);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto s = dist.sample(rng);
    EXPECT_GE(s, 100u);
    EXPECT_LE(s, 10'000u);
  }
}

TEST(CsvCdf, RejectsMalformedInput) {
  std::istringstream missing_comma("100 0.5\n200,1.0\n");
  EXPECT_THROW(workload::FlowSizeDistribution::from_csv(missing_comma),
               std::invalid_argument);
  std::istringstream non_monotone("100,0.9\n200,0.5\n300,1.0\n");
  EXPECT_THROW(workload::FlowSizeDistribution::from_csv(non_monotone),
               std::invalid_argument);
  std::istringstream not_normalized("100,0.5\n200,0.9\n");
  EXPECT_THROW(workload::FlowSizeDistribution::from_csv(not_normalized),
               std::invalid_argument);
}

TEST(CsvCdf, RoundTripsEmbeddedTrace) {
  // Serialize an embedded trace to CSV and reload it; CDFs must agree.
  const auto& original =
      workload::FlowSizeDistribution::of(workload::Trace::kWebSearch);
  std::ostringstream csv;
  for (const auto& [size, prob] : original.points()) {
    csv << size << ',' << prob << '\n';
  }
  std::istringstream in(csv.str());
  const auto reloaded = workload::FlowSizeDistribution::from_csv(in);
  for (double x : {1e4, 1e5, 1e6, 1e7}) {
    EXPECT_NEAR(reloaded.cdf(x), original.cdf(x), 1e-9);
  }
}

}  // namespace
}  // namespace pnet
