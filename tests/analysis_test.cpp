// Tests for failure injection and the hop-count-under-failures study.
#include <gtest/gtest.h>

#include "analysis/failures.hpp"
#include "routing/shortest.hpp"

namespace pnet::analysis {
namespace {

topo::ParallelNetwork jellyfish_net(topo::NetworkType type, int planes,
                                    std::uint64_t seed = 1) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kJellyfish;
  spec.hosts = 98;
  spec.parallelism = planes;
  spec.type = type;
  spec.seed = seed;
  return topo::build_network(spec);
}

TEST(Failures, FractionZeroFailsNothing) {
  const auto net = jellyfish_net(topo::NetworkType::kSerialLow, 1);
  Rng rng(1);
  const auto failed = random_fabric_failures(net.plane(0).graph, 0.0, rng);
  for (bool f : failed) EXPECT_FALSE(f);
}

TEST(Failures, FailsRequestedFractionOfFabricCables) {
  const auto net = jellyfish_net(topo::NetworkType::kSerialLow, 1);
  const topo::Graph& g = net.plane(0).graph;
  Rng rng(2);
  const auto failed = random_fabric_failures(g, 0.25, rng);

  int fabric_cables = 0;
  int failed_cables = 0;
  for (int l = 0; l < g.num_links(); l += 2) {
    const auto& link = g.link(LinkId{l});
    if (g.is_host(link.src) || g.is_host(link.dst)) {
      // Host uplinks never fail.
      EXPECT_FALSE(failed[static_cast<std::size_t>(l)]);
      continue;
    }
    ++fabric_cables;
    const bool fwd = failed[static_cast<std::size_t>(l)];
    const bool rev = failed[static_cast<std::size_t>(l + 1)];
    EXPECT_EQ(fwd, rev);  // duplex pairs fail together
    failed_cables += fwd;
  }
  EXPECT_NEAR(failed_cables, fabric_cables / 4, 1);
}

TEST(Failures, BfsWithFailuresMatchesPlainBfsWhenHealthy) {
  const auto net = jellyfish_net(topo::NetworkType::kSerialLow, 1);
  const topo::Graph& g = net.plane(0).graph;
  const std::vector<bool> none(static_cast<std::size_t>(g.num_links()),
                               false);
  const NodeId src = net.plane(0).switch_nodes.front();
  EXPECT_EQ(bfs_hops_with_failures(g, src, none), routing::bfs_hops(g, src));
}

TEST(Failures, FailedLinksIncreaseDistance) {
  const auto net = jellyfish_net(topo::NetworkType::kSerialLow, 1);
  const auto healthy = hop_count_under_failures(net, 0.0, 1);
  const auto degraded = hop_count_under_failures(net, 0.3, 1);
  EXPECT_DOUBLE_EQ(healthy.connectivity, 1.0);
  EXPECT_GT(degraded.mean_hops, healthy.mean_hops);
}

TEST(Failures, HeterogeneousPlanesShortenPaths) {
  const auto serial = jellyfish_net(topo::NetworkType::kSerialLow, 4);
  const auto het =
      jellyfish_net(topo::NetworkType::kParallelHeterogeneous, 4);
  const auto s = hop_count_under_failures(serial, 0.0, 1);
  const auto h = hop_count_under_failures(het, 0.0, 1);
  // Min over 4 independent instantiations beats any single one (§3.2).
  EXPECT_LT(h.mean_hops, s.mean_hops);
}

TEST(Failures, HomogeneousParallelDegradesGracefully) {
  // The Fig 14 effect: at high failure rates the serial network's hop count
  // inflates far more than a 4-plane homogeneous P-Net's (planes share the
  // topology but fail independently).
  const auto serial = jellyfish_net(topo::NetworkType::kSerialLow, 4);
  const auto hom =
      jellyfish_net(topo::NetworkType::kParallelHomogeneous, 4);
  const double serial_healthy =
      hop_count_under_failures(serial, 0.0, 7).mean_hops;
  const double serial_degraded =
      hop_count_under_failures(serial, 0.4, 7).mean_hops;
  const double hom_healthy = hop_count_under_failures(hom, 0.0, 7).mean_hops;
  const double hom_degraded =
      hop_count_under_failures(hom, 0.4, 7).mean_hops;
  EXPECT_DOUBLE_EQ(hom_healthy, serial_healthy);  // same topology when intact
  const double serial_inflation = serial_degraded / serial_healthy;
  const double hom_inflation = hom_degraded / hom_healthy;
  EXPECT_GT(serial_inflation, 1.10);
  EXPECT_LT(hom_inflation, 1.06);
}

TEST(Failures, ConnectivityDropsOnlyAtExtremeFailure) {
  const auto net = jellyfish_net(topo::NetworkType::kSerialLow, 1);
  const auto moderate = hop_count_under_failures(net, 0.3, 3);
  EXPECT_GT(moderate.connectivity, 0.95);
}

TEST(Failures, DeterministicForFixedSeed) {
  const auto net = jellyfish_net(topo::NetworkType::kParallelHomogeneous, 2);
  const auto a = hop_count_under_failures(net, 0.2, 11);
  const auto b = hop_count_under_failures(net, 0.2, 11);
  EXPECT_DOUBLE_EQ(a.mean_hops, b.mean_hops);
  EXPECT_DOUBLE_EQ(a.connectivity, b.connectivity);
}

}  // namespace
}  // namespace pnet::analysis
