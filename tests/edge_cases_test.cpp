// Edge-case and failure-injection tests across modules: boundary flow
// sizes, degenerate topologies, event-queue clock safety, LP corner cases,
// and selector determinism guarantees.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/harness.hpp"
#include "lp/mcf.hpp"
#include "lp/simplex.hpp"
#include "routing/plane_paths.hpp"
#include "routing/yen.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"
#include "workload/patterns.hpp"

namespace pnet {
namespace {

// ----------------------------------------------------------- event clock

TEST(EventClock, SchedulingInThePastClampsToNow) {
  sim::EventQueue events;
  class Recorder : public sim::EventSource {
   public:
    explicit Recorder(sim::EventQueue& events) : events_(events) {}
    void do_next_event() override { fired_at.push_back(events_.now()); }
    std::vector<SimTime> fired_at;

   private:
    sim::EventQueue& events_;
  };
  Recorder r(events);
  events.schedule_at(1000, &r);
  events.run();
  EXPECT_EQ(events.now(), 1000);
  events.schedule_at(10, &r);  // in the past
  events.run();
  ASSERT_EQ(r.fired_at.size(), 2u);
  EXPECT_EQ(r.fired_at[1], 1000);  // clamped, clock monotone
}

// ------------------------------------------------------------ tiny flows

core::SimHarness tiny_harness() {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  return core::SimHarness({.spec = spec, .policy = policy});
}

class TinyFlowSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TinyFlowSizes, EverySizeCompletesExactly) {
  auto h = tiny_harness();
  h.starter()(HostId{0}, HostId{15}, GetParam(), 0, {});
  h.run();
  ASSERT_EQ(h.logger().records().size(), 1u);
  EXPECT_EQ(h.logger().records().front().bytes, GetParam());
  EXPECT_EQ(h.logger().records().front().retransmits, 0);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, TinyFlowSizes,
                         ::testing::Values(1u, 1499u, 1500u, 1501u, 2999u,
                                           3000u, 14999u, 15000u, 15001u,
                                           100'000u));

TEST(TinyFlows, ManySimultaneousOnePacketFlows) {
  auto h = tiny_harness();
  for (int i = 0; i < 15; ++i) {
    h.starter()(HostId{i}, HostId{15}, 100, 0, {});
  }
  h.run();
  EXPECT_EQ(h.logger().records().size(), 15u);
  EXPECT_EQ(h.logger().total_timeouts(), 0);
}

TEST(TinyFlows, SequentialFlowsBetweenSamePair) {
  auto h = tiny_harness();
  std::vector<double> fcts;
  std::function<void(int)> chain = [&](int remaining) {
    if (remaining == 0) return;
    h.starter()(HostId{0}, HostId{15}, 50'000, h.events().now(),
                [&, remaining](const sim::FlowRecord& r) {
                  fcts.push_back(units::to_microseconds(r.end - r.start));
                  chain(remaining - 1);
                });
  };
  chain(10);
  h.run();
  ASSERT_EQ(fcts.size(), 10u);
  // An idle network: every run of the same transfer behaves identically.
  for (double f : fcts) EXPECT_NEAR(f, fcts.front(), 1.0);
}

// --------------------------------------------------------- LP degeneracy

TEST(LpEdge, SingleLinkSaturates) {
  std::vector<lp::Commodity> commodities(1);
  commodities[0].demand = 5.0;
  commodities[0].paths = {{0}};
  const auto result = lp::max_total_flow({3.0}, commodities);
  EXPECT_NEAR(result.total_throughput, 3.0, 0.1);
}

TEST(LpEdge, DemandCapsMaxTotal) {
  // Plenty of capacity but the commodity only wants 1 unit.
  std::vector<lp::Commodity> commodities(1);
  commodities[0].demand = 1.0;
  commodities[0].paths = {{0}};
  const auto result = lp::max_total_flow({100.0}, commodities);
  EXPECT_LE(result.total_throughput, 1.0 + 1e-9);
}

TEST(LpEdge, DisjointCommoditiesAreIndependent) {
  std::vector<lp::Commodity> commodities(2);
  commodities[0].demand = 10.0;
  commodities[0].paths = {{0}};
  commodities[1].demand = 10.0;
  commodities[1].paths = {{1}};
  const auto result = lp::max_concurrent_flow({4.0, 8.0}, commodities);
  // Concurrent: both limited by the worse link's ratio.
  EXPECT_NEAR(result.alpha, 0.4, 0.02);
}

TEST(LpEdge, SimplexHandlesZeroObjective) {
  lp::LinearProgram lp;
  lp.objective = {0.0, 0.0};
  lp.rows = {{1.0, 1.0}};
  lp.rhs = {5.0};
  const auto solution = lp::solve_simplex(lp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_DOUBLE_EQ(solution->objective_value, 0.0);
}

// ----------------------------------------------------- routing edge cases

TEST(RoutingEdge, KspTotalCapKeepsPerPlaneCandidates) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  spec.parallelism = 2;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  const auto net = topo::build_network(spec);
  const auto capped =
      routing::ksp_across_planes(net, HostId{0}, HostId{15}, 4);
  const auto full =
      routing::ksp_across_planes(net, HostId{0}, HostId{15}, 4, 0, 8);
  EXPECT_EQ(capped.size(), 4u);
  EXPECT_EQ(full.size(), 8u);
  int plane0 = 0;
  for (const auto& p : full) plane0 += p.plane == 0;
  EXPECT_EQ(plane0, 4);  // 4 candidates per plane survive
}

TEST(RoutingEdge, JitteredTieBreakIsDeterministicPerSeed) {
  topo::FatTreeConfig config;
  config.k = 8;
  const auto ft = topo::build_fat_tree(config);
  const auto w1 = routing::jittered_unit_weights(ft.graph, 7);
  const auto w2 = routing::jittered_unit_weights(ft.graph, 7);
  const auto w3 = routing::jittered_unit_weights(ft.graph, 8);
  EXPECT_EQ(w1, w2);
  EXPECT_NE(w1, w3);
  const auto a = routing::k_shortest_paths(ft.graph, ft.host_nodes.front(),
                                           ft.host_nodes.back(), 4, &w1);
  const auto b = routing::k_shortest_paths(ft.graph, ft.host_nodes.front(),
                                           ft.host_nodes.back(), 4, &w2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].links, b[i].links);
  }
}

TEST(RoutingEdge, DifferentJitterSeedsPickDifferentEqualCostPaths) {
  topo::FatTreeConfig config;
  config.k = 8;
  const auto ft = topo::build_fat_tree(config);
  std::set<std::vector<LinkId>> first_paths;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto w = routing::jittered_unit_weights(ft.graph, seed);
    const auto paths = routing::k_shortest_paths(
        ft.graph, ft.host_nodes.front(), ft.host_nodes.back(), 1, &w);
    ASSERT_EQ(paths.size(), 1u);
    first_paths.insert(paths.front().links);
  }
  // k=8 inter-pod pairs have 16 equal-cost paths; 8 seeds should spread.
  EXPECT_GE(first_paths.size(), 4u);
}

// ---------------------------------------------------------- stats corner

TEST(StatsEdge, SingleSamplePercentiles) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 50), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 100), 42.0);
}

TEST(StatsEdge, RunningStatsSingleValue) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(StatsEdge, CdfOfConstantSamples) {
  const auto cdf = Cdf::from_samples({5, 5, 5, 5});
  ASSERT_EQ(cdf.points.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf.points.front().second, 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
}

// ------------------------------------------------------- hadoop edge case

TEST(HadoopEdge, SingleMapperSingleReducer) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  core::SimHarness h({.spec = spec, .policy = policy});
  workload::HadoopJob::Config config;
  config.num_mappers = 1;
  config.num_reducers = 1;
  config.total_bytes = 10'000'000;
  config.block_bytes = 3'000'000;  // non-divisible: last block is partial
  workload::HadoopJob job(h.starter(), h.all_hosts(), config);
  job.start(0);
  h.run();
  ASSERT_TRUE(job.finished());
  EXPECT_EQ(job.stage_worker_times_s(0).size(), 1u);
  EXPECT_EQ(job.stage_worker_times_s(2).size(), 1u);
}

TEST(HadoopEdge, StagesRunInOrderWithBarriers) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  core::SimHarness h({.spec = spec, .policy = policy});
  workload::HadoopJob::Config config;
  config.num_mappers = 2;
  config.num_reducers = 2;
  config.total_bytes = 8'000'000;
  config.block_bytes = 2'000'000;

  // Wrap the starter to record which stage each flow was issued under;
  // global barriers mean the sequence must be non-decreasing.
  std::vector<int> issue_stages;
  workload::HadoopJob* job_ptr = nullptr;
  workload::FlowStarter spy = [&](HostId src, HostId dst,
                                  std::uint64_t bytes, SimTime start,
                                  sim::FlowFactory::FlowCallback cb) {
    issue_stages.push_back(job_ptr->current_stage());
    h.starter()(src, dst, bytes, start, std::move(cb));
  };
  workload::HadoopJob job(spy, h.all_hosts(), config);
  job_ptr = &job;
  job.start(0);
  h.run();
  ASSERT_TRUE(job.finished());
  ASSERT_FALSE(issue_stages.empty());
  EXPECT_TRUE(std::is_sorted(issue_stages.begin(), issue_stages.end()));
  EXPECT_EQ(issue_stages.front(), 0);
  EXPECT_EQ(issue_stages.back(), 2);
}

// ---------------------------------------------------- closed-loop corner

TEST(ClosedLoopEdge, ZeroRoundsIsANoop) {
  auto h = tiny_harness();
  workload::ClosedLoopApp::Config config;
  config.rounds_per_worker = 0;
  workload::ClosedLoopApp app(
      h.starter(), h.all_hosts(), config,
      [](HostId, Rng&) { return HostId{0}; },
      [](Rng&) { return std::uint64_t{100}; });
  app.start(0);
  h.run();
  EXPECT_EQ(app.requests_completed(), 0);
}

}  // namespace
}  // namespace pnet
