// Tests for the packet simulator: event ordering, queue/pipe timing, TCP
// throughput/fairness/loss recovery, MPTCP aggregation and coupling, and
// the flow factory plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "routing/plane_paths.hpp"
#include "routing/shortest.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/packet.hpp"
#include "sim/pipe.hpp"
#include "sim/queue.hpp"
#include "topo/parallel.hpp"

namespace pnet::sim {
namespace {

using namespace pnet::units;

// ------------------------------------------------------------ event queue

class RecordingSource : public EventSource {
 public:
  explicit RecordingSource(EventQueue& events, std::vector<int>& log, int id)
      : events_(events), log_(log), id_(id) {}
  void do_next_event() override {
    log_.push_back(id_);
    fired_at_ = events_.now();
  }
  SimTime fired_at_ = -1;

 private:
  EventQueue& events_;
  std::vector<int>& log_;
  int id_;
};

TEST(EventQueueTest, DispatchesInTimeOrder) {
  EventQueue events;
  std::vector<int> log;
  RecordingSource a(events, log, 1), b(events, log, 2), c(events, log, 3);
  events.schedule_at(30, &c);
  events.schedule_at(10, &a);
  events.schedule_at(20, &b);
  events.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(events.now(), 30);
}

TEST(EventQueueTest, TiesDispatchInScheduleOrder) {
  EventQueue events;
  std::vector<int> log;
  RecordingSource a(events, log, 1), b(events, log, 2);
  events.schedule_at(5, &b);
  events.schedule_at(5, &a);
  events.run();
  EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueueTest, ManyTiesDispatchInScheduleOrderThroughHeapChurn) {
  // Regression for the vector-backed binary heap: sift_up/sift_down swap
  // entries freely, so FIFO order within a timestamp must come from the
  // sequence number, not from insertion position. Interleave three
  // timestamp groups, scheduled out of time order, with enough entries
  // that the heap reshuffles many times.
  EventQueue events;
  events.reserve(96);
  std::vector<int> log;
  std::vector<std::unique_ptr<RecordingSource>> sources;
  // ids 0..31 at t=20, 100..131 at t=10, 200..231 at t=30, round-robin.
  for (int i = 0; i < 32; ++i) {
    for (const auto& [base, when] :
         {std::pair{0, 20}, std::pair{100, 10}, std::pair{200, 30}}) {
      sources.push_back(
          std::make_unique<RecordingSource>(events, log, base + i));
      events.schedule_at(when, sources.back().get());
    }
  }
  events.run();
  ASSERT_EQ(log.size(), 96u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(log[i], 100 + i);       // t=10 group, scheduling order
    EXPECT_EQ(log[32 + i], i);        // t=20 group
    EXPECT_EQ(log[64 + i], 200 + i);  // t=30 group
  }
  EXPECT_EQ(events.dispatched(), 96u);
}

TEST(EventQueueTest, DispatchedCountsAcrossRuns) {
  EventQueue events;
  std::vector<int> log;
  RecordingSource a(events, log, 1);
  events.schedule_at(10, &a);
  events.run();
  events.schedule_at(20, &a);
  events.run();
  EXPECT_EQ(events.dispatched(), 2u);
  EXPECT_TRUE(events.empty());
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue events;
  std::vector<int> log;
  RecordingSource a(events, log, 1), b(events, log, 2);
  events.schedule_at(10, &a);
  events.schedule_at(100, &b);
  events.run_until(50);
  EXPECT_EQ(log, (std::vector<int>{1}));
  EXPECT_EQ(events.now(), 50);
  EXPECT_EQ(events.pending(), 1u);
}

// ------------------------------------------------------------- queue/pipe

class CollectSink : public PacketSink {
 public:
  CollectSink(EventQueue& events, PacketPool& pool)
      : events_(events), pool_(pool) {}
  void receive(Packet& packet) override {
    arrival_times.push_back(events_.now());
    seqs.push_back(packet.seq);
    pool_.free(&packet);
  }
  std::vector<SimTime> arrival_times;
  std::vector<std::uint64_t> seqs;

 private:
  EventQueue& events_;
  PacketPool& pool_;
};

Packet* make_data_packet(PacketPool& pool, const Route* route,
                         std::uint64_t seq, std::uint32_t size) {
  Packet* p = pool.allocate();
  p->seq = seq;
  p->size_bytes = size;
  p->route = route;
  p->next_hop = 0;
  return p;
}

TEST(QueueTest, SerializesBackToBack) {
  EventQueue events;
  PacketPool pool;
  CollectSink sink(events, pool);
  Queue queue(events, pool, 100e9, 1'000'000);
  OwnedRoute route({&queue, &sink});

  for (int i = 0; i < 3; ++i) {
    make_data_packet(pool, &route, i, 1500)->forward();
  }
  events.run();
  // 1500 B at 100 Gb/s = 120 ns per packet, back to back.
  ASSERT_EQ(sink.arrival_times.size(), 3u);
  EXPECT_EQ(sink.arrival_times[0], 120 * kNanosecond);
  EXPECT_EQ(sink.arrival_times[1], 240 * kNanosecond);
  EXPECT_EQ(sink.arrival_times[2], 360 * kNanosecond);
  EXPECT_EQ(sink.seqs, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(queue.forwarded(), 3u);
  EXPECT_EQ(queue.drops(), 0u);
}

TEST(QueueTest, TailDropsWhenFull) {
  EventQueue events;
  PacketPool pool;
  CollectSink sink(events, pool);
  // Room for exactly 2 packets.
  Queue queue(events, pool, 100e9, 3000);
  OwnedRoute route({&queue, &sink});
  for (int i = 0; i < 5; ++i) {
    make_data_packet(pool, &route, i, 1500)->forward();
  }
  events.run();
  EXPECT_EQ(queue.drops(), 3u);
  EXPECT_EQ(sink.seqs, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(pool.live(), 0u);  // drops are returned to the pool
}

TEST(PipeTest, AddsFixedLatencyAndKeepsOrder) {
  EventQueue events;
  PacketPool pool;
  CollectSink sink(events, pool);
  Pipe pipe(events, kMicrosecond);
  OwnedRoute route({&pipe, &sink});
  make_data_packet(pool, &route, 0, 1500)->forward();
  events.run_until(300 * kNanosecond);
  EXPECT_TRUE(sink.arrival_times.empty());  // still in flight
  make_data_packet(pool, &route, 1, 1500)->forward();
  events.run();
  ASSERT_EQ(sink.arrival_times.size(), 2u);
  EXPECT_EQ(sink.arrival_times[0], kMicrosecond);
  EXPECT_EQ(sink.arrival_times[1], kMicrosecond + 300 * kNanosecond);
}

TEST(PacketPoolTest, Recycles) {
  PacketPool pool;
  Packet* a = pool.allocate();
  pool.free(a);
  Packet* b = pool.allocate();
  EXPECT_EQ(a, b);  // free-list reuse
  EXPECT_EQ(pool.allocated(), 1u);
}

// ------------------------------------------------------------- TCP flows

struct Harness {
  explicit Harness(topo::NetworkSpec spec,
                   std::uint64_t buffer_bytes = 100 * 1500)
      : net(topo::build_network(spec)) {
    config.queue_buffer_bytes = buffer_bytes;
    network = std::make_unique<SimNetwork>(events, pool, net, config);
    factory = std::make_unique<FlowFactory>(events, pool, *network, logger);
  }

  routing::Path path(int src, int dst, int plane = 0) const {
    auto p = routing::shortest_path(net.plane(plane).graph,
                                    net.host_node(plane, HostId{src}),
                                    net.host_node(plane, HostId{dst}));
    EXPECT_TRUE(p.has_value());
    p->plane = plane;
    return *p;
  }

  EventQueue events;
  PacketPool pool;
  topo::ParallelNetwork net;
  SimConfig config;
  FlowLogger logger;
  std::unique_ptr<SimNetwork> network;
  std::unique_ptr<FlowFactory> factory;
};

topo::NetworkSpec small_fat_tree(topo::NetworkType type =
                                     topo::NetworkType::kSerialLow,
                                 int parallelism = 1) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  spec.type = type;
  spec.parallelism = parallelism;
  return spec;
}

TEST(Tcp, SingleFlowReachesLinkRate) {
  Harness h(small_fat_tree());
  const std::uint64_t size = 10 * kMB;
  h.factory->tcp_flow(HostId{0}, HostId{15}, h.path(0, 15), size, 0);
  h.events.run();
  ASSERT_EQ(h.logger.records().size(), 1u);
  const auto& record = h.logger.records().front();
  const double fct_s = units::to_seconds(record.end - record.start);
  const double ideal_s = static_cast<double>(size) * 8.0 / 100e9;
  // Slow start, ACK clocking and the tail-drop sawtooth cost something
  // (loss-probing NewReno in 100-packet buffers runs at ~2/3 line rate),
  // but an uncontended flow must stay within that envelope.
  EXPECT_LT(fct_s, ideal_s * 1.60);
  EXPECT_GT(fct_s, ideal_s);
  // Shallow buffers make some probing loss inevitable; it must stay small.
  const double packets = static_cast<double>(size) / 1500.0;
  EXPECT_LT(record.retransmits, 0.06 * packets);
  EXPECT_EQ(record.timeouts, 0);
  EXPECT_EQ(record.hops, 6);  // inter-pod path
}

TEST(Tcp, CompletionDeliversAllBytesExactlyOnce) {
  Harness h(small_fat_tree());
  h.factory->tcp_flow(HostId{0}, HostId{2}, h.path(0, 2), 1'000'000, 0);
  h.events.run();
  ASSERT_EQ(h.logger.records().size(), 1u);
  EXPECT_EQ(h.logger.records().front().bytes, 1'000'000u);
  EXPECT_EQ(h.pool.live(), 0u);  // no leaked packets after drain
}

TEST(Tcp, SubMssFlowCompletes) {
  Harness h(small_fat_tree());
  h.factory->tcp_flow(HostId{0}, HostId{5}, h.path(0, 5), 300, 0);
  h.events.run();
  ASSERT_EQ(h.logger.records().size(), 1u);
  // One segment + ACK round trip; certainly under 50 us on this topology.
  EXPECT_LT(h.logger.fct_us().front(), 50.0);
}

TEST(Tcp, TwoFlowsShareBottleneckFairly) {
  // Long-run goodput shares on a shared 100G downlink. (FCTs of short
  // competing flows are dominated by which flow loses the slow-start
  // overshoot lottery — Fig 11c's phenomenon — so fairness is asserted in
  // steady state.)
  Harness h(small_fat_tree());
  const std::uint64_t huge = 10'000 * kMB;
  auto& a = h.factory->tcp_flow(HostId{0}, HostId{15}, h.path(0, 15), huge,
                                0);
  auto& b = h.factory->tcp_flow(HostId{4}, HostId{15}, h.path(4, 15), huge,
                                0);
  h.events.run_until(60 * kMillisecond);
  const double bytes_a = static_cast<double>(a.acked_bytes());
  const double bytes_b = static_cast<double>(b.acked_bytes());
  const double share = bytes_a / (bytes_a + bytes_b);
  EXPECT_GT(share, 0.35);
  EXPECT_LT(share, 0.65);
  // And together they must fill most of the 100G bottleneck.
  const double capacity_bytes = 100e9 / 8 * 0.060;
  EXPECT_GT(bytes_a + bytes_b, 0.75 * capacity_bytes);
}

TEST(Tcp, RecoversFromTailDrops) {
  // Shallow 8-packet buffers force loss during slow start.
  Harness h(small_fat_tree(), 8 * 1500);
  const std::uint64_t size = 5 * kMB;
  h.factory->tcp_flow(HostId{0}, HostId{15}, h.path(0, 15), size, 0);
  h.factory->tcp_flow(HostId{1}, HostId{15}, h.path(1, 15), size, 0);
  h.events.run();
  ASSERT_EQ(h.logger.records().size(), 2u);  // both complete despite drops
  EXPECT_GT(h.network->total_drops(), 0u);
  EXPECT_GT(h.logger.total_retransmits(), 0);
}

/// Drops the first N data packets it sees, then forwards everything.
class DropFirstN : public PacketSink {
 public:
  DropFirstN(PacketPool& pool, int n) : pool_(pool), remaining_(n) {}
  void receive(Packet& packet) override {
    if (!packet.is_ack && remaining_ > 0) {
      --remaining_;
      pool_.free(&packet);
      return;
    }
    packet.forward();
  }

 private:
  PacketPool& pool_;
  int remaining_;
};

std::unique_ptr<TcpSink> sinks_holder_;
std::unique_ptr<TcpSrc> src_holder_;
std::unique_ptr<OwnedRoute> owned_route_;

/// `base` with `head` spliced in front — the test idiom for interposing a
/// packet mangler before an interned route.
std::vector<PacketSink*> prepend_sink(PacketSink& head, const Route& base) {
  std::vector<PacketSink*> chain{&head};
  chain.insert(chain.end(), base.sinks.begin(), base.sinks.end());
  return chain;
}

TEST(Tcp, RetransmissionTimeoutFiresAtTunedMinimum) {
  // Drop the entire initial window: no dupACKs are possible, so recovery
  // must come from the 10 ms minimum RTO the paper tunes (section 5.1.2).
  Harness h(small_fat_tree());
  DropFirstN dropper(h.pool, 10);

  // Build a route manually with the dropper in front.
  auto path = h.path(0, 15);
  sinks_holder_ = std::make_unique<TcpSink>(h.events, h.pool, h.config.tcp);
  src_holder_ = std::make_unique<TcpSrc>(h.events, h.pool, FlowId{0},
                                         h.config.tcp);
  const Route* base = h.network->make_route(path, *sinks_holder_);
  const Route* rev =
      h.network->make_route(h.network->reverse_path(path), *src_holder_);
  sinks_holder_->set_ack_route(rev);
  src_holder_->set_flow_size(15000);  // exactly the initial window
  SimTime done = -1;
  src_holder_->set_completion_callback(
      [&](TcpSrc& s) { done = s.completion_time(); });
  // The route object must outlive the run.
  owned_route_ = std::make_unique<OwnedRoute>();
  owned_route_->assign(prepend_sink(dropper, *base), base->hop_count);
  src_holder_->connect(owned_route_->get(), 0);
  h.events.run();
  ASSERT_GE(done, 10 * kMillisecond);  // had to wait for the RTO
  EXPECT_LT(done, 25 * kMillisecond);
  EXPECT_EQ(src_holder_->timeouts(), 1);

  sinks_holder_.reset();
  src_holder_.reset();
  owned_route_.reset();
}

// ------------------------------------------------------------ MPTCP

TEST(Mptcp, TwoDisjointPlanesDoubleThroughputUncoupled) {
  Harness parallel(small_fat_tree(topo::NetworkType::kParallelHomogeneous,
                                  2));
  const std::uint64_t size = 20 * kMB;
  std::vector<routing::Path> paths = {parallel.path(0, 15, 0),
                                      parallel.path(0, 15, 1)};
  parallel.factory->mptcp_flow(HostId{0}, HostId{15}, paths, size, 0, {},
                               Coupling::kUncoupled);
  parallel.events.run();
  ASSERT_EQ(parallel.logger.records().size(), 1u);
  const double fct_parallel = parallel.logger.fct_us().front();

  Harness serial(small_fat_tree());
  serial.factory->tcp_flow(HostId{0}, HostId{15}, serial.path(0, 15), size,
                           0);
  serial.events.run();
  const double fct_serial = serial.logger.fct_us().front();

  // Two planes, two independent subflows: close to 2x speedup.
  EXPECT_LT(fct_parallel, 0.62 * fct_serial);
}

TEST(Mptcp, LiaAlsoGainsFromDisjointPlanesOnBulkFlows) {
  // LIA ramps conservatively on disjoint paths (its documented trade-off,
  // and the reason section 5.1.2 of the paper finds flows must be large to
  // benefit from multipath), but a bulk flow must still beat single-path.
  Harness parallel(small_fat_tree(topo::NetworkType::kParallelHomogeneous,
                                  2));
  const std::uint64_t size = 50 * kMB;
  std::vector<routing::Path> paths = {parallel.path(0, 15, 0),
                                      parallel.path(0, 15, 1)};
  parallel.factory->mptcp_flow(HostId{0}, HostId{15}, paths, size, 0);
  parallel.events.run();
  const double fct_parallel = parallel.logger.fct_us().front();

  Harness serial(small_fat_tree());
  serial.factory->tcp_flow(HostId{0}, HostId{15}, serial.path(0, 15), size,
                           0);
  serial.events.run();
  const double fct_serial = serial.logger.fct_us().front();
  EXPECT_LT(fct_parallel, 0.85 * fct_serial);
}

TEST(Mptcp, SubflowCountRecorded) {
  Harness h(small_fat_tree(topo::NetworkType::kParallelHomogeneous, 2));
  std::vector<routing::Path> paths = {h.path(0, 15, 0), h.path(0, 15, 1)};
  h.factory->mptcp_flow(HostId{0}, HostId{15}, paths, kMB, 0);
  h.events.run();
  ASSERT_EQ(h.logger.records().size(), 1u);
  EXPECT_EQ(h.logger.records().front().subflows, 2);
}

TEST(Mptcp, LiaIsNotMoreAggressiveThanTcpOnSharedBottleneck) {
  // MPTCP with 2 subflows on the SAME path competing against one TCP flow
  // over a long window: linked increases must prevent it from grabbing the
  // ~2/3 share two independent TCPs would take, without starving it.
  Harness h(small_fat_tree(), 64 * 1500);
  const std::uint64_t huge = 10'000 * kMB;  // neither flow completes
  std::vector<routing::Path> same = {h.path(0, 15, 0), h.path(0, 15, 0)};
  auto& conn = h.factory->mptcp_flow(HostId{0}, HostId{15}, same, huge, 0);
  auto& tcp = h.factory->tcp_flow(HostId{4}, HostId{15}, h.path(4, 15),
                                  huge, 0);
  h.events.run_until(60 * kMillisecond);
  std::uint64_t mptcp_bytes = 0;
  for (int i = 0; i < conn.num_subflows(); ++i) {
    mptcp_bytes += conn.subflow(i).acked_bytes();
  }
  const auto tcp_bytes = tcp.acked_bytes();
  const double share = static_cast<double>(mptcp_bytes) /
                       static_cast<double>(mptcp_bytes + tcp_bytes);
  EXPECT_LT(share, 0.62);
  EXPECT_GT(share, 0.20);  // it must not starve either
}

TEST(Mptcp, CompletesWhenOneSubflowIsUseless) {
  // Second subflow routed through a dropper that kills everything; the
  // connection must still finish via the healthy subflow.
  Harness h(small_fat_tree(topo::NetworkType::kParallelHomogeneous, 2));
  auto good = h.path(0, 15, 0);
  auto bad = h.path(0, 15, 1);

  MptcpConnection conn(h.events, h.pool, FlowId{99}, h.config.tcp,
                       2 * kMB);
  // Healthy subflow.
  TcpSink good_sink(h.events, h.pool, h.config.tcp);
  {
    MptcpSubflow& sf = conn.add_subflow();
    const Route* fwd = h.network->make_route(good, good_sink);
    const Route* rev =
        h.network->make_route(h.network->reverse_path(good), sf);
    good_sink.set_ack_route(rev);
    sf.connect(fwd, 0);
  }
  // Black-holed subflow.
  DropFirstN dropper(h.pool, 1 << 30);
  TcpSink bad_sink(h.events, h.pool, h.config.tcp);
  OwnedRoute bad_route;
  {
    MptcpSubflow& sf = conn.add_subflow();
    const Route* base = h.network->make_route(bad, bad_sink);
    bad_route.assign(prepend_sink(dropper, *base), base->hop_count);
    const Route* rev =
        h.network->make_route(h.network->reverse_path(bad), sf);
    bad_sink.set_ack_route(rev);
    sf.connect(&bad_route, 0);
  }
  bool completed = false;
  conn.set_completion_callback([&](MptcpConnection&) { completed = true; });
  h.events.run_until(2 * units::kSecond);
  EXPECT_TRUE(completed);
}

// ----------------------------------------------------------- FlowFactory

TEST(FlowFactoryTest, RecordsHopsAndEndpoints) {
  Harness h(small_fat_tree());
  h.factory->tcp_flow(HostId{0}, HostId{1}, h.path(0, 1), 1500, 0);
  h.events.run();
  ASSERT_EQ(h.logger.records().size(), 1u);
  const auto& r = h.logger.records().front();
  EXPECT_EQ(r.src, HostId{0});
  EXPECT_EQ(r.dst, HostId{1});
  EXPECT_EQ(r.hops, 2);  // same rack: host-ToR-host
}

TEST(FlowFactoryTest, CallbackFires) {
  Harness h(small_fat_tree());
  int called = 0;
  h.factory->tcp_flow(HostId{0}, HostId{1}, h.path(0, 1), 1500, 0,
                      [&](const FlowRecord&) { ++called; });
  h.events.run();
  EXPECT_EQ(called, 1);
}

TEST(FlowFactoryTest, StaggeredStartTimesHonored) {
  Harness h(small_fat_tree());
  h.factory->tcp_flow(HostId{0}, HostId{1}, h.path(0, 1), 1500,
                      5 * kMillisecond);
  h.events.run();
  ASSERT_EQ(h.logger.records().size(), 1u);
  EXPECT_GE(h.logger.records().front().end, 5 * kMillisecond);
  EXPECT_EQ(h.logger.records().front().start, 5 * kMillisecond);
}

}  // namespace
}  // namespace pnet::sim
