// Tests for the plane-sharded simulation core (DESIGN.md §5i): the
// EventQueue horizon/run_before primitives the epoch loop is built on, the
// ArrivalQueue / handoff merge order, and the headline contract — a
// sharded harness produces byte-identical flow records and event counts at
// every worker count, with and without fault injection, with boundary
// packet conservation holding under audit.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/harness.hpp"
#include "sim/event_queue.hpp"
#include "sim/faults.hpp"
#include "sim/packet.hpp"
#include "sim/shard.hpp"
#include "util/audit.hpp"

namespace pnet::sim {
namespace {

using namespace pnet::units;

class Counter : public EventSource {
 public:
  void do_next_event() override { ++fired; }
  int fired = 0;
};

// ---------------------------------------------------- queue primitives

TEST(ShardPrimitives, HorizonOfEmptyQueueIsDeadline) {
  // Regression (the "small fix" of the sharding PR): an empty shard must
  // report horizon == deadline, not 0/kNever, or the barrier computation
  // stalls the non-empty shards.
  EventQueue events;
  EXPECT_EQ(events.horizon(1234), 1234);
  EXPECT_EQ(events.next_time(), EventQueue::kNever);
  Counter c;
  events.schedule_at(50, &c);
  EXPECT_EQ(events.horizon(1234), 50);
  EXPECT_EQ(events.horizon(20), 20);
  EXPECT_EQ(events.next_time(), 50);
}

TEST(ShardPrimitives, RunBeforeIsExclusiveOfTheBarrier) {
  EventQueue events;
  Counter c;
  events.schedule_at(10, &c);
  events.schedule_at(20, &c);
  events.run_before(20);  // [now, 20): the event AT 20 must stay pending
  EXPECT_EQ(c.fired, 1);
  EXPECT_EQ(events.next_time(), 20);
  events.run_before(21);
  EXPECT_EQ(c.fired, 2);
}

TEST(ShardPrimitives, AdvanceToIsClampedByPendingWork) {
  EventQueue events;
  Counter c;
  events.advance_to(100);  // empty: free to advance
  EXPECT_EQ(events.now(), 100);
  events.schedule_at(150, &c);
  events.advance_to(500);  // clamped: must not skip past the pending event
  EXPECT_EQ(events.now(), 150);
  events.advance_to(120);  // never moves backwards
  EXPECT_EQ(events.now(), 150);
}

// ------------------------------------------------- arrival-queue merge

// Fuzz the handoff merge order: packets inserted in adversarial batch
// orders must drain in (due, insertion) order — the stable total order the
// determinism argument needs. Deterministic LCG, no ambient randomness.
TEST(ShardArrivals, FuzzedInsertsDrainInStableDueOrder) {
  PacketPool pool;
  std::uint64_t lcg = 12345;
  const auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  for (int round = 0; round < 50; ++round) {
    ArrivalQueue queue;
    std::vector<Packet*> inserted;
    // Several batches with interleaved partial drains, mimicking epochs.
    std::uint32_t insert_index = 0;
    SimTime drained_up_to = -1;
    std::vector<std::pair<SimTime, std::uint32_t>> drained;
    for (int batch = 0; batch < 8; ++batch) {
      const int n = 1 + static_cast<int>(next() % 24);
      for (int i = 0; i < n; ++i) {
        Packet* p = pool.allocate();
        // Few distinct dues => many ties, the interesting case; dues only
        // at/after the watermark already drained (conservative handoff).
        p->due = drained_up_to + 1 + static_cast<SimTime>(next() % 8);
        p->size_bytes = insert_index++;  // records insertion order
        queue.insert(p);
        inserted.push_back(p);
      }
      // Drain a prefix, as an epoch barrier would.
      const SimTime barrier = drained_up_to + 1 +
                              static_cast<SimTime>(next() % 6);
      while (!queue.empty() && queue.next_due() <= barrier) {
        Packet* p = queue.pop_front();
        drained.emplace_back(p->due, p->size_bytes);
      }
      drained_up_to = barrier;
    }
    while (!queue.empty()) {
      Packet* p = queue.pop_front();
      drained.emplace_back(p->due, p->size_bytes);
    }
    ASSERT_EQ(drained.size(), inserted.size());
    for (std::size_t i = 1; i < drained.size(); ++i) {
      // Total order: strictly increasing (due, insertion-index) pairs —
      // sorted by due, FIFO among ties.
      EXPECT_LT(std::make_pair(drained[i - 1].first, drained[i - 1].second),
                std::make_pair(drained[i].first, drained[i].second))
          << "round " << round << " position " << i;
    }
    for (Packet* p : inserted) pool.free(p);
  }
}

TEST(ShardArrivals, CloneRehomesAcrossPoolsKeepingDestinationHandle) {
  PacketPool a;
  PacketPool b;
  Packet* src = a.allocate();
  src->seq = 77;
  src->due = 1234;
  src->size_bytes = 1500;
  src->is_ack = true;
  Packet* dst = b.allocate();
  const PacketRef dst_ref = dst->ref();
  b.free(dst);
  Packet* copy = b.clone(*src);
  EXPECT_EQ(copy->seq, 77u);
  EXPECT_EQ(copy->due, 1234);
  EXPECT_EQ(copy->size_bytes, 1500u);
  EXPECT_TRUE(copy->is_ack);
  EXPECT_EQ(copy->next, nullptr);
  // The clone owns a slot in the DESTINATION pool (here the recycled one).
  EXPECT_EQ(copy->ref(), dst_ref);
  EXPECT_EQ(&b.get(copy->ref()), copy);
}

TEST(ShardSetTest, RejectsZeroLatencyCrossing) {
  ShardSet shards(4, 2);
  EXPECT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards.workers(), 2);
  EXPECT_THROW(shards.note_crossing(0), std::invalid_argument);
  shards.note_crossing(kMicrosecond);
  shards.note_crossing(kMicrosecond / 2);
  EXPECT_EQ(shards.lookahead(), kMicrosecond / 2);
}

TEST(ShardSetTest, WorkerPoolClampsToPlaneCount) {
  ShardSet shards(2, 8);
  EXPECT_EQ(shards.size(), 2u);   // shard layout pinned to the planes
  EXPECT_EQ(shards.workers(), 2);  // pool clamped, layout unchanged
}

// ------------------------------------------------ end-to-end identity

struct RunOutput {
  std::vector<std::tuple<int, int, std::uint64_t, SimTime, SimTime, int,
                         int, int>>
      records;
  std::uint64_t dispatched = 0;
  std::uint64_t delivered_bytes = 0;
};

RunOutput run_workload(int sim_threads, bool with_faults) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = 16;
  spec.parallelism = 4;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kKspMultipath;
  policy.k = 4;
  core::SimHarness harness(
      {.spec = spec, .policy = policy, .sim_threads = sim_threads});

  FaultInjector injector(harness.events(), harness.network());
  if (with_faults) {
    FaultPlan plan;
    plan.flap_plane(2 * kMillisecond, 2 * kMillisecond, 0);
    plan.merge(FaultPlan::random_degraded_links(
        harness.net(), 2, kMillisecond, 4 * kMillisecond, 0.02, 1.0, 99));
    injector.arm(plan);
  }

  const int n = harness.net().num_hosts();
  for (int h = 0; h < n; ++h) {
    // Staggered permutation: cross-shard pairs at every distance.
    harness.starter()(HostId{h}, HostId{(h + 5) % n}, 400'000,
                      static_cast<SimTime>(h) * 10 * kMicrosecond, {});
  }
  harness.run_until(20 * kMillisecond);
  harness.finalize(harness.events().now());

  RunOutput out;
  out.dispatched = harness.dispatched();
  out.delivered_bytes = harness.factory().total_delivered_bytes();
  for (const auto& r : harness.logger().records()) {
    out.records.emplace_back(r.src.v, r.dst.v, r.delivered_bytes, r.start, r.end,
                             r.retransmits, r.timeouts, r.repaths);
  }
  return out;
}

TEST(ShardedEngine, IdenticalResultsAcrossWorkerCounts) {
  const RunOutput base = run_workload(/*sim_threads=*/1,
                                      /*with_faults=*/false);
  EXPECT_GT(base.records.size(), 0u);
  EXPECT_GT(base.delivered_bytes, 0u);
  for (const int workers : {2, 4, 8}) {
    const RunOutput other = run_workload(workers, /*with_faults=*/false);
    EXPECT_EQ(other.records, base.records) << "sim_threads=" << workers;
    EXPECT_EQ(other.dispatched, base.dispatched)
        << "sim_threads=" << workers;
    EXPECT_EQ(other.delivered_bytes, base.delivered_bytes)
        << "sim_threads=" << workers;
  }
}

TEST(ShardedEngine, IdenticalResultsUnderFaultInjection) {
  const RunOutput base = run_workload(/*sim_threads=*/1,
                                      /*with_faults=*/true);
  EXPECT_GT(base.records.size(), 0u);
  const RunOutput other = run_workload(/*sim_threads=*/4,
                                       /*with_faults=*/true);
  EXPECT_EQ(other.records, base.records);
  EXPECT_EQ(other.dispatched, base.dispatched);
  EXPECT_EQ(other.delivered_bytes, base.delivered_bytes);
}

TEST(ShardedEngine, RunsToNaturalDrainWithoutDeadline) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = 16;
  spec.parallelism = 4;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  core::SimHarness serial({.spec = spec, .policy = policy});
  core::SimHarness sharded(
      {.spec = spec, .policy = policy, .sim_threads = 4});
  for (core::SimHarness* h : {&serial, &sharded}) {
    h->starter()(HostId{0}, HostId{15}, 1'000'000, 0, {});
    h->starter()(HostId{3}, HostId{9}, 1'000'000, 0, {});
    h->run();
    EXPECT_EQ(h->logger().records().size(), 2u);
  }
  // Same physics: the sharded engine completes the same transfers at the
  // same simulated times (legacy vs sharded event COUNTS differ — arrival
  // wakes — but flow records must not).
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(serial.logger().records()[i].end,
              sharded.logger().records()[i].end);
    EXPECT_EQ(serial.logger().records()[i].delivered_bytes,
              sharded.logger().records()[i].delivered_bytes);
  }
}

TEST(ShardedEngine, BoundaryConservationUnderAudit) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = 16;
  spec.parallelism = 4;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kKspMultipath;
  policy.k = 4;
  util::Audit audit;  // collecting: inspect violations at the end
  core::SimHarness harness({.spec = spec,
                            .policy = policy,
                            .audit = &audit,
                            .sim_threads = 4});
  const int n = harness.net().num_hosts();
  for (int h = 0; h < n; ++h) {
    harness.starter()(HostId{h}, HostId{(h + n / 2) % n}, 200'000, 0, {});
  }
  harness.run();
  harness.finalize(harness.events().now());

  ASSERT_NE(harness.shards(), nullptr);
  // Real cross-shard traffic happened, and every boundary packet that was
  // sent was integrated and delivered (mailboxes and arrival buffers are
  // empty after a drained run).
  EXPECT_GT(harness.shards()->boundary_sent(), 0u);
  EXPECT_EQ(harness.shards()->boundary_sent(),
            harness.shards()->boundary_delivered());
  EXPECT_EQ(audit.violations().size(), 0u)
      << "first: " << audit.violations().front();
}

TEST(ShardedEngine, SinglePlaneTopologyStillWorks) {
  // Degenerate sharding: one plane, one shard — the epoch loop must not
  // deadlock or disagree with the serial engine.
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  core::SimHarness serial({.spec = spec, .policy = policy});
  core::SimHarness sharded(
      {.spec = spec, .policy = policy, .sim_threads = 4});
  for (core::SimHarness* h : {&serial, &sharded}) {
    h->starter()(HostId{1}, HostId{14}, 500'000, 0, {});
    h->run();
  }
  ASSERT_EQ(serial.logger().records().size(), 1u);
  ASSERT_EQ(sharded.logger().records().size(), 1u);
  EXPECT_EQ(serial.logger().records()[0].end,
            sharded.logger().records()[0].end);
}

}  // namespace
}  // namespace pnet::sim
