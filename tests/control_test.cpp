// Tests for the adaptive control plane (src/control) and the API redesigns
// that carry it: the string-keyed registries every layer resolves names
// through, the Sampler's bounded read() pull API, the LinkStateBus single
// subscription point, the Controller's decision rules against a scripted
// dataplane, end-to-end evacuation of a dead plane under a fault storm,
// and the two determinism contracts — controller-on reports byte-identical
// across --threads / --sim-threads, controller-off runs byte-identical to
// specs and runners that predate the field.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "control/dataplanes.hpp"
#include "control/link_state_bus.hpp"
#include "core/harness.hpp"
#include "core/health_monitor.hpp"
#include "core/path_selector.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "fsim/fluid.hpp"
#include "sim/faults.hpp"
#include "telemetry/sampler.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "workload/patterns.hpp"

namespace pnet {
namespace {

// ------------------------------------------------------------- registries

std::vector<std::string> split_names(const std::string& names) {
  std::vector<std::string> out;
  std::string word;
  for (const char c : names) {
    if (c == ' ') {
      if (!word.empty()) out.push_back(word);
      word.clear();
    } else {
      word += c;
    }
  }
  if (!word.empty()) out.push_back(word);
  return out;
}

TEST(Registries, PolicyNamesRoundTripAndUnknownFailsFast) {
  const auto names = split_names(core::policy_names());
  EXPECT_GE(names.size(), 3u);
  for (const auto& name : names) {
    const auto policy = core::policy_from_string(name);
    ASSERT_TRUE(policy.has_value()) << name;
    EXPECT_EQ(core::to_string(*policy), name);
  }
  EXPECT_FALSE(core::policy_from_string("no-such-policy").has_value());
  EXPECT_FALSE(core::policy_from_string("").has_value());
}

TEST(Registries, SchemeNamesRoundTripAndUnknownFailsFast) {
  const auto names = split_names(fsim::scheme_names());
  EXPECT_GE(names.size(), 3u);
  for (const auto& name : names) {
    const auto scheme = fsim::scheme_from_string(name);
    ASSERT_TRUE(scheme.has_value()) << name;
    EXPECT_EQ(fsim::to_string(*scheme), name);
  }
  EXPECT_FALSE(fsim::scheme_from_string("no-such-scheme").has_value());
}

TEST(Registries, EngineNamesRoundTripAndUnknownFailsFast) {
  const auto names = split_names(exp::engine_names());
  EXPECT_GE(names.size(), 3u);
  for (const auto& name : names) {
    const auto engine = exp::engine_from_string(name);
    ASSERT_TRUE(engine.has_value()) << name;
    EXPECT_EQ(exp::to_string(*engine), name);
  }
  EXPECT_FALSE(exp::engine_from_string("no-such-engine").has_value());
}

TEST(Registries, ModeNamesRoundTripAndUnknownFailsFast) {
  const auto names = split_names(control::mode_names());
  ASSERT_EQ(names.size(), 3u);
  for (const auto& name : names) {
    const auto mode = control::mode_from_string(name);
    ASSERT_TRUE(mode.has_value()) << name;
    EXPECT_EQ(control::to_string(*mode), name);
  }
  EXPECT_FALSE(control::mode_from_string("no-such-mode").has_value());
  EXPECT_EQ(*control::mode_from_string("off"), control::ControllerMode::kOff);
  EXPECT_EQ(*control::mode_from_string("centralized"),
            control::ControllerMode::kCentralized);
}

// ----------------------------------------------------------- sampler read

TEST(SamplerRead, BoundedMostRecentAndWatermarkFiltered) {
  telemetry::Sampler sampler({units::kMillisecond, 512});
  double gauge = 0.0;
  const std::size_t series = sampler.add_series(
      "depth", telemetry::Sampler::Kind::kGauge, [&] { return gauge; });
  sampler.start(0);
  for (int i = 1; i <= 6; ++i) {
    gauge = static_cast<double>(i);
    sampler.advance(i * units::kMillisecond);
  }

  // max_points keeps only the most recent buckets, visited oldest first.
  std::vector<double> seen;
  const std::size_t n =
      sampler.read(series, 0, 3, [&](const telemetry::Sampler::Sample& s) {
        seen.push_back(s.value);
      });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(seen, (std::vector<double>{4.0, 5.0, 6.0}));

  // The watermark is strict: buckets ending at `after` are not re-delivered.
  seen.clear();
  SimTime last = 0;
  sampler.read(series, 4 * units::kMillisecond, 100,
               [&](const telemetry::Sampler::Sample& s) {
                 seen.push_back(s.value);
                 last = s.t_end;
               });
  EXPECT_EQ(seen, (std::vector<double>{5.0, 6.0}));

  // The watermark idiom: reading again from the last seen end visits
  // nothing until a new bucket lands.
  EXPECT_EQ(sampler.read(series, last, 100,
                         [](const telemetry::Sampler::Sample&) {}),
            0u);
  gauge = 7.0;
  sampler.advance(7 * units::kMillisecond);
  EXPECT_EQ(sampler.read(series, last, 100,
                         [](const telemetry::Sampler::Sample&) {}),
            1u);
}

TEST(SamplerRead, UnknownSeriesAndUnstartedSamplerReadZero) {
  telemetry::Sampler sampler({units::kMillisecond, 512});
  sampler.add_series("a", telemetry::Sampler::Kind::kGauge,
                     [] { return 1.0; });
  const auto nop = [](const telemetry::Sampler::Sample&) {};
  EXPECT_EQ(sampler.read("missing", 0, 10, nop), 0u);
  EXPECT_EQ(sampler.read("a", 0, 10, nop), 0u);  // never started
}

// ---------------------------------------------------------- LinkStateBus

TEST(LinkStateBus, FansOutInSubscriptionOrderAndCounts) {
  control::LinkStateBus bus;
  std::vector<std::string> order;
  bus.subscribe([&](const sim::FaultEvent& e) {
    order.push_back("a" + std::to_string(e.plane));
  });
  bus.subscribe([&](const sim::FaultEvent& e) {
    order.push_back("b" + std::to_string(e.plane));
  });
  EXPECT_EQ(bus.num_observers(), 2u);

  sim::FaultEvent fail;
  fail.kind = sim::FaultKind::kPlaneFail;
  fail.plane = 0;
  bus.publish(fail);
  fail.plane = 1;
  bus.publish(fail);
  EXPECT_EQ(bus.published(), 2u);
  EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "a1", "b1"}));
}

TEST(LinkStateBus, ForwardsInjectorEventsToHealthMonitor) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = 8;
  spec.parallelism = 2;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;
  core::SimHarness h({.spec = spec, .policy = policy});

  core::HealthMonitor monitor(h.events(),
                              {.detect_delay = units::kMillisecond});
  sim::FaultInjector injector(h.events(), h.network());
  control::LinkStateBus bus;
  bus.subscribe_health_monitor(monitor);
  bus.attach(injector);

  sim::FaultPlan plan;
  plan.flap_plane(units::kMillisecond, 2 * units::kMillisecond, 0);
  injector.arm(plan);
  h.run_until(10 * units::kMillisecond);

  // Fail + recover both crossed the bus and landed as detections after the
  // monitor's own delay.
  EXPECT_EQ(bus.published(), 2u);
  ASSERT_EQ(monitor.detections().size(), 2u);
  EXPECT_EQ(monitor.detections()[0].first.kind, sim::FaultKind::kPlaneFail);
  EXPECT_EQ(monitor.detections()[0].second, 2 * units::kMillisecond);
  EXPECT_EQ(monitor.detections()[1].first.kind,
            sim::FaultKind::kPlaneRecover);
}

// ------------------------------------------------- controller decisions

/// Scripted dataplane: the test sets the observable state by hand and
/// records every actuation the controller makes.
class FakeDataplane : public control::Dataplane {
 public:
  explicit FakeDataplane(int planes) : bytes_(planes, 0.0) {}

  [[nodiscard]] int num_planes() const override {
    return static_cast<int>(bytes_.size());
  }
  [[nodiscard]] double plane_bytes(int plane) const override {
    return bytes_[static_cast<std::size_t>(plane)];
  }
  [[nodiscard]] double plane_queue_bytes(int) const override { return 0.0; }
  [[nodiscard]] std::uint64_t route_invalidations() const override {
    return invalidations_;
  }
  void on_plane_detected(int plane, bool down) override {
    detected_.emplace_back(plane, down);
  }
  void set_plane_weights(const std::vector<double>& weights) override {
    weights_ = weights;
  }
  int repin(int from, int to, int max_flows) override {
    repin_calls_.push_back({from, to, max_flows});
    return moved_per_call_;
  }

  std::vector<double> bytes_;
  std::uint64_t invalidations_ = 0;
  int moved_per_call_ = 2;
  std::vector<std::pair<int, bool>> detected_;
  std::vector<double> weights_;
  struct RepinCall {
    int from, to, max_flows;
  };
  std::vector<RepinCall> repin_calls_;
};

control::ControllerConfig centralized_config() {
  control::ControllerConfig cc;
  cc.mode = control::ControllerMode::kCentralized;
  cc.cadence = units::kMillisecond;
  cc.detect_delay = units::kMillisecond;
  return cc;
}

TEST(Controller, ActsOnPlaneEventsOnlyAfterDetectDelay) {
  FakeDataplane dp(2);
  control::Controller ctl(centralized_config(), dp);
  ctl.start(0);

  sim::FaultEvent fail;
  fail.at = units::kMillisecond;
  fail.kind = sim::FaultKind::kPlaneFail;
  fail.plane = 0;
  ctl.on_fabric_event(fail);

  // Due at 2 ms: the 1 ms tick must not act yet.
  ctl.tick(units::kMillisecond);
  EXPECT_TRUE(ctl.plane_usable(0));
  EXPECT_TRUE(dp.detected_.empty());

  ctl.tick(2 * units::kMillisecond);
  EXPECT_FALSE(ctl.plane_usable(0));
  ASSERT_EQ(dp.detected_.size(), 1u);
  EXPECT_EQ(dp.detected_[0], (std::pair<int, bool>{0, true}));
  EXPECT_EQ(ctl.plane_events(), 1u);
  // Dead planes weigh zero in the placement bias.
  ASSERT_EQ(dp.weights_.size(), 2u);
  EXPECT_EQ(dp.weights_[0], 0.0);
  EXPECT_GT(dp.weights_[1], 0.0);

  sim::FaultEvent recover = fail;
  recover.at = 3 * units::kMillisecond;
  recover.kind = sim::FaultKind::kPlaneRecover;
  ctl.on_fabric_event(recover);
  ctl.tick(4 * units::kMillisecond);
  EXPECT_TRUE(ctl.plane_usable(0));
  EXPECT_EQ(ctl.plane_events(), 2u);
}

TEST(Controller, RebalancesHotToColdThenHoldsTheCooldown) {
  FakeDataplane dp(2);
  const auto cc = centralized_config();
  control::Controller ctl(cc, dp);
  ctl.start(0);

  // Plane 0 moves 100 MB per cadence, plane 1 is idle: far past the
  // imbalance threshold from the first sampled bucket on.
  dp.bytes_[0] += 100e6;
  ctl.tick(units::kMillisecond);
  ASSERT_EQ(dp.repin_calls_.size(), 1u);
  EXPECT_EQ(dp.repin_calls_[0].from, 0);
  EXPECT_EQ(dp.repin_calls_[0].to, 1);
  EXPECT_EQ(dp.repin_calls_[0].max_flows, cc.max_repins_per_tick);
  EXPECT_EQ(ctl.repins(), 2u);  // the fake reports 2 flows moved

  // Still imbalanced, but the cooldown holds until the sampling window
  // refills with post-move load (window x cadence later).
  for (int t = 2; t <= cc.window; ++t) {
    dp.bytes_[0] += 100e6;
    ctl.tick(t * units::kMillisecond);
    EXPECT_EQ(dp.repin_calls_.size(), 1u) << "tick " << t;
  }
  dp.bytes_[0] += 100e6;
  ctl.tick((cc.window + 1) * units::kMillisecond);
  EXPECT_EQ(dp.repin_calls_.size(), 2u);
}

TEST(Controller, ChurnGuardSkipsRebalanceWhileRoutesMove) {
  FakeDataplane dp(2);
  control::Controller ctl(centralized_config(), dp);
  ctl.start(0);

  for (int t = 1; t <= 3; ++t) {
    dp.bytes_[0] += 100e6;      // hot plane 0 every tick
    ++dp.invalidations_;        // ...but the route cache is churning
    ctl.tick(t * units::kMillisecond);
  }
  EXPECT_TRUE(dp.repin_calls_.empty());
  EXPECT_EQ(ctl.churn_skips(), 3u);

  // Churn stops; the very next tick rebalances.
  dp.bytes_[0] += 100e6;
  ctl.tick(4 * units::kMillisecond);
  EXPECT_EQ(dp.repin_calls_.size(), 1u);
}

// ------------------------------------------- evacuation under fault storm

TEST(ControlLoop, EvacuatesDeadPlanesUnderFaultStorm) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = 8;
  spec.parallelism = 4;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;
  core::SimHarness h({.spec = spec, .policy = policy});
  h.selector().enable_repath(h.factory());

  core::HealthMonitor monitor(h.events(),
                              {.detect_delay = units::kMillisecond});
  monitor.add_selector(h.selector());
  monitor.set_factory(h.factory());
  sim::FaultInjector injector(h.events(), h.network());
  control::LinkStateBus bus;
  bus.subscribe_health_monitor(monitor);
  bus.attach(injector);

  const auto cc = centralized_config();
  control::PacketDataplane dataplane(h);
  control::Controller ctl(cc, dataplane);
  ctl.observe(bus);
  control::ControlDriver driver(h.events(), ctl, cc.cadence);
  driver.start(h.events().now());

  // A storm of overlapping plane flaps: 0 and 2 go down close together.
  sim::FaultPlan plan;
  plan.flap_plane(5 * units::kMillisecond, 10 * units::kMillisecond, 0);
  plan.flap_plane(7 * units::kMillisecond, 10 * units::kMillisecond, 2);
  injector.arm(plan);

  // Long bulk flows on every host so there is always something to move.
  Rng rng(1);
  for (const auto& [src, dst] :
       workload::permutation_pairs(h.net().num_hosts(), rng)) {
    h.starter()(src, dst, 100 * units::kGB, 0, {});
  }

  // Both planes down and confirmed (detect_delay + a tick of slack): no
  // live flow may still ride either dead plane.
  h.run_until(10 * units::kMillisecond);
  EXPECT_FALSE(ctl.plane_usable(0));
  EXPECT_FALSE(ctl.plane_usable(2));
  for (const int plane : h.factory().live_tcp_planes()) {
    EXPECT_NE(plane, 0);
    EXPECT_NE(plane, 2);
  }
  EXPECT_GT(ctl.plane_events(), 0u);

  // After both recoveries are confirmed the controller marks them usable
  // again (flows return via load balancing, not by force).
  h.run_until(25 * units::kMillisecond);
  EXPECT_TRUE(ctl.plane_usable(0));
  EXPECT_TRUE(ctl.plane_usable(2));
  h.finalize(h.events().now());
}

// ----------------------------------------------- determinism: controller on

exp::ExperimentSpec small_spec(exp::EngineKind engine,
                               control::ControllerMode mode) {
  exp::ExperimentSpec spec;
  spec.name = "ctl";
  spec.engine = engine;
  spec.topo.topo = topo::TopoKind::kFatTree;
  spec.topo.type = topo::NetworkType::kParallelHomogeneous;
  spec.topo.hosts = 8;
  spec.topo.parallelism = 2;
  spec.policy.policy = core::RoutingPolicy::kRoundRobin;
  spec.workload.flow_bytes = 200'000;
  spec.seed = 7;
  spec.trials = 2;
  spec.controller.mode = mode;
  return spec;
}

std::string run_report_json(const exp::ExperimentSpec& spec, int threads,
                            int sim_threads) {
  exp::Runner runner(threads);
  runner.set_sim_threads(sim_threads);
  exp::Report report("control-determinism");
  for (auto& cell : runner.run({{spec, {}}})) report.add(std::move(cell));
  return report.to_json(/*with_runtime=*/false);
}

TEST(ControllerDeterminism, PacketReportByteIdenticalAcrossWorkerCounts) {
  const auto spec = small_spec(exp::EngineKind::kPacket,
                               control::ControllerMode::kCentralized);
  // The serial engine (sim_threads = 0) and the sharded engine are two
  // implementations with their own event accounting; the byte-identity
  // contract holds within each (and across every sim_threads >= 1).
  const std::string serial = run_report_json(spec, 1, 0);
  EXPECT_NE(serial.find("\"controller\""), std::string::npos);
  EXPECT_NE(serial.find("\"ctl/ticks\""), std::string::npos);
  EXPECT_EQ(serial, run_report_json(spec, 4, 0));  // runner threads
  const std::string sharded = run_report_json(spec, 1, 1);
  EXPECT_EQ(sharded, run_report_json(spec, 4, 1));  // runner threads
  EXPECT_EQ(sharded, run_report_json(spec, 1, 4));  // shard workers
  EXPECT_EQ(sharded, run_report_json(spec, 4, 4));  // both parallel
}

TEST(ControllerDeterminism, FsimReportByteIdenticalAcrossThreads) {
  const auto spec = small_spec(exp::EngineKind::kFsim,
                               control::ControllerMode::kCentralized);
  const std::string base = run_report_json(spec, 1, 0);
  EXPECT_NE(base.find("\"controller\""), std::string::npos);
  EXPECT_NE(base.find("\"ctl/ticks\""), std::string::npos);
  EXPECT_EQ(base, run_report_json(spec, 4, 0));
  EXPECT_EQ(base, run_report_json(spec, 1, 0));
}

// --------------------------------------------- determinism: controller off

TEST(ControllerOff, SpecSerializesNothingNewWhenOff) {
  const auto off = small_spec(exp::EngineKind::kPacket,
                              control::ControllerMode::kOff);
  EXPECT_EQ(off.canonical_json().find("controller"), std::string::npos);

  auto on = off;
  on.controller.mode = control::ControllerMode::kHostLocal;
  EXPECT_NE(on.canonical_json().find("\"controller\""), std::string::npos);
  EXPECT_NE(off.hash(), on.hash());
}

TEST(ControllerOff, ReportsMatchRunnersPredatingTheField) {
  const auto spec = small_spec(exp::EngineKind::kPacket,
                               control::ControllerMode::kOff);
  // A runner whose default controller is explicitly kOff must produce the
  // same bytes as one that never heard of controllers.
  const std::string plain = run_report_json(spec, 1, 0);
  exp::Runner runner(1);
  runner.set_controller(control::ControllerConfig{});  // mode kOff
  exp::Report report("control-determinism");
  for (auto& cell : runner.run({{spec, {}}})) report.add(std::move(cell));
  EXPECT_EQ(plain, report.to_json(false));
  EXPECT_EQ(plain.find("controller"), std::string::npos);
  EXPECT_EQ(plain.find("ctl/"), std::string::npos);
}

TEST(Runner, DefaultControllerMergesIntoUnpinnedCellsOnly) {
  auto unpinned = small_spec(exp::EngineKind::kFsim,
                             control::ControllerMode::kOff);
  unpinned.name = "unpinned";
  auto pinned = small_spec(exp::EngineKind::kFsim,
                           control::ControllerMode::kHostLocal);
  pinned.name = "pinned";

  exp::Runner runner(2);
  auto cc = centralized_config();
  runner.set_controller(cc);
  const auto cells = runner.run({{unpinned, {}}, {pinned, {}}});
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].spec.controller.mode,
            control::ControllerMode::kCentralized);
  EXPECT_EQ(cells[1].spec.controller.mode,
            control::ControllerMode::kHostLocal);
}

}  // namespace
}  // namespace pnet
