// Cross-validation and newer-feature tests: the packet simulator against
// the LP solver's throughput prediction, open-loop Poisson traffic, and
// ACK priority queueing.
#include <gtest/gtest.h>

#include "core/harness.hpp"
#include "lp/link_index.hpp"
#include "lp/mcf.hpp"
#include "routing/shortest.hpp"
#include "util/stats.hpp"
#include "workload/open_loop.hpp"
#include "workload/patterns.hpp"

namespace pnet {
namespace {

// The strongest whole-stack check we have: steady-state TCP goodput on a
// permutation must track the LP's max-min prediction over the same single
// paths. The simulator and the solver share nothing but the topology.
TEST(CrossValidation, TcpGoodputTracksLpPrediction) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kJellyfish;
  spec.hosts = 48;
  spec.seed = 9;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;
  core::SimHarness h({.spec = spec, .policy = policy, .sim_config = sim_config});

  Rng rng(4);
  const auto perm = rng.derangement(h.net().num_hosts());

  // Pin each flow's exact path by querying the selector once, then use the
  // same paths for BOTH the simulator and the LP.
  std::vector<std::vector<int>> lp_paths;
  const lp::LinkIndex index(h.net());
  std::vector<sim::TcpSrc*> flows;
  for (int src = 0; src < h.net().num_hosts(); ++src) {
    const auto paths = h.selector().select(
        HostId{src}, HostId{perm[static_cast<std::size_t>(src)]}, 1 << 30,
        mix64(static_cast<std::uint64_t>(src) * 31 + 7));
    ASSERT_EQ(paths.size(), 1u);
    lp_paths.push_back(index.to_global(paths.front()));
    flows.push_back(&h.factory().tcp_flow(
        HostId{src}, HostId{perm[static_cast<std::size_t>(src)]},
        paths.front(), 1'000'000'000'000ULL, 0));
  }

  const SimTime window = 30 * units::kMillisecond;
  h.run_until(window);
  double sim_total_bps = 0.0;
  for (const auto* flow : flows) {
    sim_total_bps += static_cast<double>(flow->acked_bytes()) * 8.0 /
                     units::to_seconds(window);
  }

  const auto rates = lp::max_min_fair(index.capacity(), lp_paths);
  double lp_total_bps = 0.0;
  for (double r : rates) lp_total_bps += r;

  // TCP pays slow start, sawtooth and header overheads; it must land
  // within a reasonable envelope of the fluid optimum, and never above.
  EXPECT_LT(sim_total_bps, lp_total_bps * 1.02);
  EXPECT_GT(sim_total_bps, lp_total_bps * 0.55);
}

// ------------------------------------------------------------- open loop

core::SimHarness open_loop_harness() {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;
  return core::SimHarness({.spec = spec, .policy = policy});
}

TEST(OpenLoop, InjectsConfiguredNumberOfFlows) {
  auto h = open_loop_harness();
  workload::OpenLoopApp::Config config;
  config.load = 0.3;
  config.max_flows = 200;
  workload::OpenLoopApp app(
      h.events(), h.starter(), h.all_hosts(), 100e9, 100'000.0, config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(h.net().num_hosts(), src, rng);
      },
      [](Rng&) { return std::uint64_t{100'000}; });
  app.start(0);
  h.run();
  EXPECT_EQ(app.flows_started(), 200);
  EXPECT_EQ(app.flows_completed(), 200);
}

TEST(OpenLoop, ArrivalRateMatchesLoad) {
  auto h = open_loop_harness();
  workload::OpenLoopApp::Config config;
  config.load = 0.5;
  config.max_flows = 2000;
  config.seed = 8;
  const double mean_bytes = 100'000.0;
  workload::OpenLoopApp app(
      h.events(), h.starter(), h.all_hosts(), 100e9, mean_bytes, config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(h.net().num_hosts(), src, rng);
      },
      [](Rng&) { return std::uint64_t{100'000}; });
  app.start(0);
  h.run();
  // Offered bytes/second over the injection window ~= load * aggregate
  // (completions may drain later; that's the open-loop point).
  const double duration_s = units::to_seconds(app.last_arrival());
  const double offered_bps = 2000.0 * mean_bytes * 8.0 / duration_s;
  const double target_bps = 0.5 * 16 * 100e9;
  EXPECT_NEAR(offered_bps / target_bps, 1.0, 0.15);
}

TEST(OpenLoop, HigherLoadRaisesLatency) {
  auto run = [&](double load) {
    auto h = open_loop_harness();
    workload::OpenLoopApp::Config config;
    config.load = load;
    config.max_flows = 500;
    config.seed = 3;
    workload::OpenLoopApp app(
        h.events(), h.starter(), h.all_hosts(), 100e9, 500'000.0, config,
        [&](HostId src, Rng& rng) {
          return workload::random_destination(h.net().num_hosts(), src,
                                              rng);
        },
        [](Rng&) { return std::uint64_t{500'000}; });
    app.start(0);
    h.run();
    auto v = app.completion_times_us();
    return percentile(v, 90);
  };
  EXPECT_GT(run(0.9), run(0.1));
}

// ---------------------------------------------------------- ACK priority

TEST(AckPriority, AcksBypassStandingDataQueues) {
  // A bulk flow keeps the shared downlink's queue standing; a small RPC's
  // request rides the same queue either way, but with priority ACKs its
  // (and the bulk flow's) ACK clock never sits behind data.
  auto run = [&](bool priority) {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kFatTree;
    spec.hosts = 16;
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kShortestPlane;
    sim::SimConfig sim_config;
    sim_config.priority_acks = priority;
    core::SimHarness h({.spec = spec, .policy = policy, .sim_config = sim_config});
    // Bulk flow from host 15 back toward host 0: its DATA shares links
    // with the RPC's ACK path.
    h.starter()(HostId{15}, HostId{0}, 1'000'000'000, 0, {});
    double rpc_us = 0.0;
    h.starter()(HostId{0}, HostId{15}, 15'000, 5 * units::kMillisecond,
                [&](const sim::FlowRecord& r) {
                  rpc_us = units::to_microseconds(r.end - r.start);
                });
    h.run_until(20 * units::kMillisecond);
    return rpc_us;
  };
  const double fifo = run(false);
  const double prio = run(true);
  ASSERT_GT(fifo, 0.0);
  ASSERT_GT(prio, 0.0);
  EXPECT_LE(prio, fifo);
}

TEST(AckPriority, DoesNotChangeDeliveredBytes) {
  for (bool priority : {false, true}) {
    topo::NetworkSpec spec;
    spec.topo = topo::TopoKind::kFatTree;
    spec.hosts = 16;
    core::PolicyConfig policy;
    policy.policy = core::RoutingPolicy::kShortestPlane;
    sim::SimConfig sim_config;
    sim_config.priority_acks = priority;
    core::SimHarness h({.spec = spec, .policy = policy, .sim_config = sim_config});
    h.starter()(HostId{0}, HostId{15}, 5'000'000, 0, {});
    h.run();
    ASSERT_EQ(h.logger().records().size(), 1u);
    EXPECT_EQ(h.logger().records().front().bytes, 5'000'000u);
  }
}

}  // namespace
}  // namespace pnet
