// Tests for the resilience layer: cooperative cancellation (CancelToken,
// EventQueue strided polls), trial isolation and the error taxonomy,
// watchdog timeouts and retries, checkpoint-resume, and the invariant
// auditor — including the acceptance sweep where throwing / hanging /
// invariant-violating trials complete with correct taxonomy kinds and the
// healthy trials stay byte-identical across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "exp/checkpoint.hpp"
#include "exp/runner.hpp"
#include "sim/event_queue.hpp"
#include "util/audit.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"
#include "util/units.hpp"

namespace pnet::exp {
namespace {

// ------------------------------------------------------------ CancelToken

TEST(CancelToken, InertTokenNeverFires) {
  util::CancelToken token;
  EXPECT_FALSE(token.is_armed());
  EXPECT_FALSE(token.cancelled());
  token.cancel();  // no-op on an inert token
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelToken::Reason::kNone);
}

TEST(CancelToken, CancelLatchesFirstReason) {
  auto token = util::CancelToken::armed();
  EXPECT_TRUE(token.is_armed());
  EXPECT_FALSE(token.cancelled());
  token.cancel(util::CancelToken::Reason::kDeadline);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelToken::Reason::kDeadline);
  // First reason wins; a later cancel cannot overwrite it.
  token.cancel(util::CancelToken::Reason::kCancelled);
  EXPECT_EQ(token.reason(), util::CancelToken::Reason::kDeadline);
}

TEST(CancelToken, CopiesShareState) {
  auto token = util::CancelToken::armed();
  const util::CancelToken copy = token;
  token.cancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_EQ(copy.reason(), util::CancelToken::Reason::kCancelled);
}

TEST(CancelToken, ExpiredDeadlineFiresWithItsReason) {
  auto token = util::CancelToken::armed();
  token.set_deadline(util::CancelToken::Clock::now() -
                         std::chrono::milliseconds(1),
                     util::CancelToken::Reason::kDeadline);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelToken::Reason::kDeadline);
}

TEST(CancelToken, EarlierDeadlineWinsWithItsReason) {
  // The runner arms min(trial budget, run deadline); the earlier deadline
  // must keep its own reason so the taxonomy stays correct.
  auto token = util::CancelToken::armed();
  const auto now = util::CancelToken::Clock::now();
  token.set_deadline(now - std::chrono::milliseconds(1),
                     util::CancelToken::Reason::kCancelled);
  token.set_deadline(now + std::chrono::hours(1),
                     util::CancelToken::Reason::kDeadline);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelToken::Reason::kCancelled);
}

TEST(CancelToken, ThrowIfCancelledMapsReasonsToTaxonomy) {
  util::CancelToken inert;
  EXPECT_NO_THROW(throw_if_cancelled(inert));

  auto timeout = util::CancelToken::armed();
  timeout.cancel(util::CancelToken::Reason::kDeadline);
  try {
    throw_if_cancelled(timeout);
    FAIL() << "expected TrialCancelled";
  } catch (const TrialCancelled& e) {
    EXPECT_EQ(e.kind(), TrialErrorKind::kTimeout);
  }

  auto cancelled = util::CancelToken::armed();
  cancelled.cancel(util::CancelToken::Reason::kCancelled);
  try {
    throw_if_cancelled(cancelled);
    FAIL() << "expected TrialCancelled";
  } catch (const TrialCancelled& e) {
    EXPECT_EQ(e.kind(), TrialErrorKind::kCancelled);
  }
}

// ------------------------------------------------------------- EventQueue

struct CountingSource final : sim::EventSource {
  int fired = 0;
  void do_next_event() override { ++fired; }
};

TEST(EventQueue, RunUntilStopsClockAtDeadlineNotPastIt) {
  // Events at t=50 and t=150; run_until(100) must dispatch only the first
  // and leave now() == 100 — not jump to 150 or beyond.
  sim::EventQueue q;
  CountingSource src;
  q.schedule_at(50, &src);
  q.schedule_at(150, &src);
  q.run_until(100);
  EXPECT_EQ(src.fired, 1);
  EXPECT_EQ(q.now(), 100);
  EXPECT_EQ(q.pending(), 1u);
  // Draining the rest moves time to the remaining event.
  q.run();
  EXPECT_EQ(src.fired, 2);
  EXPECT_EQ(q.now(), 150);
}

TEST(EventQueue, RunUntilOnEmptyQueueAdvancesToDeadline) {
  sim::EventQueue q;
  q.run_until(75);
  EXPECT_EQ(q.now(), 75);
}

TEST(EventQueue, CancelledRunUntilDoesNotJumpOverPendingEvents) {
  // A pre-cancelled token stops dispatch on the first poll; the clock must
  // only advance to min(deadline, next pending event) — events still in
  // the heap must not be skipped over in simulated time.
  sim::EventQueue q;
  CountingSource src;
  q.schedule_at(40, &src);
  q.schedule_at(90, &src);
  auto token = util::CancelToken::armed();
  token.cancel();
  q.set_cancel(&token);
  q.run_until(100);
  EXPECT_EQ(src.fired, 0);          // nothing dispatched
  EXPECT_EQ(q.pending(), 2u);       // work preserved for a later resume
  EXPECT_EQ(q.now(), 40);           // clamped to the next pending event
}

TEST(EventQueue, CancelStopsRunLeavingEventsPending) {
  sim::EventQueue q;
  CountingSource src;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, &src);
  auto token = util::CancelToken::armed();
  token.cancel();
  q.set_cancel(&token);
  q.run();
  EXPECT_EQ(src.fired, 0);
  EXPECT_EQ(q.pending(), 10u);
}

TEST(EventQueue, AuditCountsDispatchChecks) {
  sim::EventQueue q;
  util::Audit audit;
  q.set_audit(&audit);
  CountingSource src;
  q.schedule_at(10, &src);
  q.schedule_at(20, &src);
  q.run();
  EXPECT_TRUE(audit.ok());
  EXPECT_EQ(audit.checks(), 2u);
}

// ------------------------------------------------------- trial isolation

ExperimentSpec custom_spec(const std::string& name, int trials) {
  ExperimentSpec spec;
  spec.name = name;
  spec.engine = EngineKind::kCustom;
  spec.seed = 21;
  spec.trials = trials;
  return spec;
}

ExperimentSpec small_packet_spec(const std::string& name) {
  ExperimentSpec spec;
  spec.name = name;
  spec.engine = EngineKind::kPacket;
  spec.topo.topo = topo::TopoKind::kFatTree;
  spec.topo.type = topo::NetworkType::kParallelHomogeneous;
  spec.topo.hosts = 8;
  spec.topo.parallelism = 2;
  spec.policy.policy = core::RoutingPolicy::kRoundRobin;
  spec.workload.flow_bytes = 200'000;
  spec.workload.rounds = 1;
  spec.seed = 7;
  spec.trials = 2;
  return spec;
}

TrialResult healthy_trial(const TrialContext& ctx) {
  TrialResult r;
  r.flows_started = 1;
  r.flows_finished = 1;
  r.fct_us.push_back(100.0 + ctx.trial);
  r.metrics["seed_lo"] = static_cast<double>(ctx.seed & 0xFFFF);
  return r;
}

// Spins until the watchdog fires (or a wall cap, so an unarmed run cannot
// hang the test binary), then reports the cancellation.
TrialResult hanging_trial(const TrialContext& ctx) {
  const auto start = std::chrono::steady_clock::now();
  while (!ctx.cancel.cancelled() &&
         std::chrono::steady_clock::now() - start <
             std::chrono::seconds(20)) {
  }
  throw_if_cancelled(ctx.cancel);
  return healthy_trial(ctx);  // wall cap hit without a watchdog
}

std::string report_json(const std::vector<CellResult>& cells) {
  Report report("resilience");
  for (const auto& cell : cells) report.add(cell);
  return report.to_json(/*with_runtime=*/false);
}

TEST(Runner, IsolatesFailuresIntoTaxonomy) {
  // One cell per failure mode (trial 1 of 3 fails) plus a healthy cell.
  // The sweep must complete, classify each failure correctly, and keep
  // the report byte-identical between --threads 1 and 4.
  const TrialFn throwing = [](const TrialContext& ctx) {
    if (ctx.trial == 1) throw std::runtime_error("injected fault");
    return healthy_trial(ctx);
  };
  const TrialFn hanging = [](const TrialContext& ctx) {
    if (ctx.trial == 1) return hanging_trial(ctx);
    return healthy_trial(ctx);
  };
  const TrialFn breaking = [](const TrialContext& ctx) {
    if (ctx.trial == 1) {
      throw util::InvariantViolation("injected conservation breach");
    }
    return healthy_trial(ctx);
  };
  const std::vector<Cell> cells = {
      {custom_spec("a-throws", 3), throwing},
      {custom_spec("b-hangs", 3), hanging},
      {custom_spec("c-breaks", 3), breaking},
      {custom_spec("d-healthy", 3), healthy_trial},
  };

  Runner runner(1);
  runner.set_trial_timeout(0.2);
  const auto results = runner.run(cells);
  ASSERT_EQ(results.size(), 4u);

  ASSERT_EQ(results[0].errors.size(), 1u);
  EXPECT_EQ(results[0].errors[0].kind, TrialErrorKind::kException);
  EXPECT_EQ(results[0].errors[0].what, "injected fault");
  EXPECT_EQ(results[0].errors[0].trial, 1);
  EXPECT_EQ(results[0].errors[0].seed, util::job_seed(21, 1));

  ASSERT_EQ(results[1].errors.size(), 1u);
  EXPECT_EQ(results[1].errors[0].kind, TrialErrorKind::kTimeout);

  ASSERT_EQ(results[2].errors.size(), 1u);
  EXPECT_EQ(results[2].errors[0].kind, TrialErrorKind::kInvariant);

  // Healthy trials survive, in trial order, covering exactly trials 0, 2.
  for (int c = 0; c < 3; ++c) {
    ASSERT_EQ(results[c].trials.size(), 2u) << "cell " << c;
    EXPECT_DOUBLE_EQ(results[c].trials[0].fct_us[0], 100.0);
    EXPECT_DOUBLE_EQ(results[c].trials[1].fct_us[0], 102.0);
  }
  EXPECT_EQ(results[3].errors.size(), 0u);
  EXPECT_EQ(results[3].trials.size(), 3u);

  // The error-bearing report is still a pure function of the specs:
  // byte-identical across thread counts.
  Runner four(4);
  four.set_trial_timeout(0.2);
  EXPECT_EQ(report_json(results), report_json(four.run(cells)));

  // The JSON carries the errors block with the taxonomy kinds.
  const std::string json = report_json(results);
  EXPECT_NE(json.find("\"errors\":["), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"exception\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"timeout\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"invariant\""), std::string::npos);
  EXPECT_NE(json.find("\"trial_errors\":3"), std::string::npos);

  // Healthy trials match a clean run of the same healthy cell.
  const auto clean =
      Runner(1).run_cell({custom_spec("d-healthy", 3), healthy_trial});
  ASSERT_EQ(clean.trials.size(), results[3].trials.size());
  for (std::size_t t = 0; t < clean.trials.size(); ++t) {
    EXPECT_EQ(clean.trials[t].metrics, results[3].trials[t].metrics);
  }
}

TEST(Runner, CleanRunsCarryNoErrorKeys) {
  // The errors block is emitted only when non-empty, so clean-run reports
  // keep their historical bytes (schema v1 untouched).
  const auto cell =
      Runner(1).run_cell({custom_spec("clean", 2), healthy_trial});
  const std::string json = report_json({cell});
  EXPECT_EQ(json.find("\"errors\""), std::string::npos);
  EXPECT_EQ(json.find("\"trial_errors\""), std::string::npos);
}

TEST(Runner, RetriesRerunWithSameSeedAndRecordAttempt) {
  // Trial 1 fails on its first attempt only; with --retries=1 the rerun
  // (same seed — the determinism contract) must succeed and the cell must
  // show no errors. The attempt count lands in the runtime block only.
  std::atomic<int> first_attempts{0};
  std::vector<std::uint64_t> seeds_seen(8, 0);
  const TrialFn flaky = [&](const TrialContext& ctx) {
    if (ctx.trial == 1) {
      seeds_seen[static_cast<std::size_t>(first_attempts.load())] = ctx.seed;
      if (first_attempts.fetch_add(1) == 0) {
        throw std::runtime_error("transient");
      }
    }
    return healthy_trial(ctx);
  };
  Runner runner(2);
  runner.set_retries(1);
  const auto cell = runner.run_cell({custom_spec("flaky", 3), flaky});
  EXPECT_EQ(cell.errors.size(), 0u);
  ASSERT_EQ(cell.trials.size(), 3u);
  EXPECT_EQ(first_attempts.load(), 2);
  EXPECT_EQ(seeds_seen[0], seeds_seen[1]);  // retry reuses the trial seed
  EXPECT_DOUBLE_EQ(cell.trials[1].runtime.at("retries"), 1.0);
  // Retry bookkeeping must not leak into the deterministic report.
  EXPECT_EQ(report_json({cell}).find("retries"), std::string::npos);
}

TEST(Runner, InvariantViolationsAreNeverRetried) {
  std::atomic<int> calls{0};
  const TrialFn breaking = [&](const TrialContext&) -> TrialResult {
    ++calls;
    throw util::InvariantViolation("deterministic breach");
  };
  Runner runner(1);
  runner.set_retries(3);
  const auto cell = runner.run_cell({custom_spec("breaks", 1), breaking});
  EXPECT_EQ(calls.load(), 1);  // no retry: same seed breaks the same law
  ASSERT_EQ(cell.errors.size(), 1u);
  EXPECT_EQ(cell.errors[0].kind, TrialErrorKind::kInvariant);
}

TEST(Runner, RunDeadlineCancelsRemainingTrials) {
  // With an already-expired run deadline every trial reports kCancelled
  // without executing.
  std::atomic<int> calls{0};
  const TrialFn counting = [&](const TrialContext& ctx) {
    ++calls;
    return healthy_trial(ctx);
  };
  Runner runner(1);
  runner.set_run_deadline(1e-9);
  const auto cell = runner.run_cell({custom_spec("late", 3), counting});
  EXPECT_EQ(calls.load(), 0);
  ASSERT_EQ(cell.errors.size(), 3u);
  for (const auto& error : cell.errors) {
    EXPECT_EQ(error.kind, TrialErrorKind::kCancelled);
  }
}

// -------------------------------------------------- checkpoint / resume

class TempPath {
 public:
  explicit TempPath(const char* name)
      : path_(std::string(::testing::TempDir()) + name) {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

TrialResult rich_trial(const TrialContext& ctx) {
  TrialResult r = healthy_trial(ctx);
  r.fct_us.push_back(0.125 + ctx.trial);  // non-integral double round-trip
  r.delivered_bytes = 1.5e9 + ctx.trial;
  r.sim_seconds = 0.25;
  r.events = 1000 + static_cast<std::uint64_t>(ctx.trial);
  r.samples["goodput"] = {1.25, 2.5, 3.0 + ctx.trial};
  r.metrics["alpha"] = 0.1 * (ctx.trial + 1);
  r.runtime["wallish"] = 42.0;  // runtime keys journal too (harmless)
  return r;
}

TEST(Checkpoint, EncodeDecodeRoundTrips) {
  TrialContext ctx{custom_spec("x", 1), 2, 99, nullptr};
  const TrialResult r = rich_trial(ctx);
  const std::string line = encode_trial(0xDEADBEEFCAFEF00DULL, 2, r);

  std::uint64_t hash = 0;
  int trial = -1;
  TrialResult back;
  ASSERT_TRUE(decode_trial(line, hash, trial, back));
  EXPECT_EQ(hash, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(trial, 2);
  EXPECT_EQ(back.fct_us, r.fct_us);
  EXPECT_EQ(back.flows_started, r.flows_started);
  EXPECT_EQ(back.flows_finished, r.flows_finished);
  EXPECT_EQ(back.delivered_bytes, r.delivered_bytes);
  EXPECT_EQ(back.sim_seconds, r.sim_seconds);
  EXPECT_EQ(back.events, r.events);
  EXPECT_EQ(back.metrics, r.metrics);
  EXPECT_EQ(back.samples, r.samples);

  // Malformed input — truncation, garbage — must be rejected, not crash.
  EXPECT_FALSE(decode_trial("", hash, trial, back));
  EXPECT_FALSE(decode_trial("garbage line", hash, trial, back));
  EXPECT_FALSE(decode_trial(line.substr(0, line.size() / 2), hash, trial,
                            back));
}

TEST(Checkpoint, HashSeparatesSpecs) {
  const auto a = custom_spec("a", 2);
  auto b = custom_spec("a", 2);
  EXPECT_EQ(Checkpoint::hash_spec(a), Checkpoint::hash_spec(b));
  b.seed += 1;
  EXPECT_NE(Checkpoint::hash_spec(a), Checkpoint::hash_spec(b));
}

TEST(Checkpoint, ResumedSweepIsByteIdenticalToUninterrupted) {
  // First pass: trials 2..3 fail, so only 0..1 reach the journal — the
  // in-process stand-in for a sweep killed halfway. Second pass with the
  // healthy function resumes: journaled trials are skipped (not re-run),
  // the rest execute, and the merged report must match an uninterrupted
  // run byte-for-byte.
  TempPath journal("resume_test.ckpt");
  const auto spec = custom_spec("resumable", 4);

  std::atomic<int> calls{0};
  const TrialFn crashy = [&](const TrialContext& ctx) {
    ++calls;
    if (ctx.trial >= 2) throw std::runtime_error("killed");
    return rich_trial(ctx);
  };
  Runner first(2);
  first.set_checkpoint(journal.str());
  const auto partial = first.run_cell({spec, crashy});
  EXPECT_EQ(partial.trials.size(), 2u);
  EXPECT_EQ(partial.errors.size(), 2u);

  std::atomic<int> resumed_calls{0};
  const TrialFn healthy = [&](const TrialContext& ctx) {
    ++resumed_calls;
    return rich_trial(ctx);
  };
  Runner second(2);
  second.set_checkpoint(journal.str());
  const auto resumed = second.run_cell({spec, healthy});
  EXPECT_EQ(resumed_calls.load(), 2);  // trials 0..1 came from the journal
  EXPECT_EQ(resumed.errors.size(), 0u);
  ASSERT_EQ(resumed.trials.size(), 4u);

  const auto uninterrupted = Runner(1).run_cell({spec, rich_trial});
  EXPECT_EQ(report_json({resumed}), report_json({uninterrupted}));
}

TEST(Checkpoint, StaleJournalOfOtherSpecIsIgnored) {
  TempPath journal("stale_test.ckpt");
  std::atomic<int> calls{0};
  const TrialFn counting = [&](const TrialContext& ctx) {
    ++calls;
    return healthy_trial(ctx);
  };
  Runner runner(1);
  runner.set_checkpoint(journal.str());
  (void)runner.run_cell({custom_spec("one", 2), counting});
  EXPECT_EQ(calls.load(), 2);
  // A different spec (different seed → different hash) finds nothing.
  auto other = custom_spec("one", 2);
  other.seed += 100;
  (void)runner.run_cell({other, counting});
  EXPECT_EQ(calls.load(), 4);
}

TEST(Checkpoint, TornFinalLineIsSkippedOnLoad) {
  TempPath journal("torn_test.ckpt");
  TrialContext ctx{custom_spec("x", 1), 0, 1, nullptr};
  const std::string good = encode_trial(0x1111, 0, rich_trial(ctx));
  const std::string torn = good.substr(0, good.size() / 3);
  {
    std::FILE* f = std::fopen(journal.str().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "%s\n%s", good.c_str(), torn.c_str());  // kill -9 tear
    std::fclose(f);
  }
  Checkpoint ckpt(journal.str());
  EXPECT_TRUE(ckpt.ok());
  EXPECT_EQ(ckpt.loaded(), 1u);
  EXPECT_NE(ckpt.find(0x1111, 0), nullptr);
}

// -------------------------------------------- harness finalize under cancel

TEST(SimHarness, CancelledRunStillLogsPartialFlowRecords) {
  // The satellite contract: a trial cut off by the watchdog must not lose
  // its partial flow records — finalize() after a cancelled run logs every
  // started flow, with completed=false and the delivered progress so far.
  topo::NetworkSpec net;
  net.topo = topo::TopoKind::kFatTree;
  net.type = topo::NetworkType::kParallelHomogeneous;
  net.hosts = 8;
  net.parallelism = 2;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;

  auto token = util::CancelToken::armed();
  core::SimHarness h({.spec = net, .policy = policy, .cancel = &token});
  int finished = 0;
  for (int i = 0; i < 4; ++i) {
    h.starter()(HostId{i}, HostId{i + 4}, 50'000'000, 0,
                [&finished](const sim::FlowRecord&) { ++finished; });
  }
  // Let the transfer make some progress, then fire the watchdog.
  h.run_until(500 * units::kMicrosecond);
  token.cancel(util::CancelToken::Reason::kDeadline);
  h.run();  // returns early on the cancel poll
  EXPECT_EQ(finished, 0);  // 50 MB cannot finish in 500 us

  const int finalized = h.finalize(h.events().now());
  EXPECT_EQ(finalized, 4);
  const auto& records = h.logger().records();
  ASSERT_EQ(records.size(), 4u);
  for (const auto& rec : records) {
    EXPECT_FALSE(rec.completed);
    EXPECT_GT(rec.delivered_bytes, 0u);
    EXPECT_LT(rec.delivered_bytes, rec.bytes);
  }
}

TEST(Runner, TimedOutPacketTrialReportsTimeout) {
  // End-to-end: a packet trial too big for its budget lands in the errors
  // block as kTimeout, while the sweep completes.
  auto spec = small_packet_spec("too-big");
  spec.trials = 1;
  spec.workload.flow_bytes = 2'000'000'000;  // far beyond a 100 ms budget
  Runner runner(1);
  runner.set_trial_timeout(0.1);
  const auto cell = runner.run_cell({spec, {}});
  EXPECT_EQ(cell.trials.size(), 0u);
  ASSERT_EQ(cell.errors.size(), 1u);
  EXPECT_EQ(cell.errors[0].kind, TrialErrorKind::kTimeout);
}

// ----------------------------------------------------------------- audit

TEST(Audit, CollectingModeAccumulatesAndCheckThrows) {
  util::Audit audit;
  EXPECT_TRUE(audit.ok());
  EXPECT_NO_THROW(audit.check());
  audit.fail("first");
  audit.fail("second");
  EXPECT_FALSE(audit.ok());
  EXPECT_EQ(audit.violations().size(), 2u);
  EXPECT_NE(audit.summary().find("2 invariant violation"),
            std::string::npos);
  EXPECT_NE(audit.summary().find("first"), std::string::npos);
  EXPECT_THROW(audit.check(), util::InvariantViolation);
}

TEST(Audit, FailFastModeThrowsImmediately) {
  util::Audit audit(/*fail_fast=*/true);
  EXPECT_THROW(audit.fail("boom"), util::InvariantViolation);
}

TEST(Runner, AuditedEnginesPassCleanAndKeepReportBytes) {
  // Both engines run their conservation sweeps with --audit on; a clean
  // simulation must yield zero violations and the exact bytes of an
  // unaudited run (the auditor observes, it must not perturb).
  auto packet = small_packet_spec("audited-packet");
  auto fsim = small_packet_spec("audited-fsim");
  fsim.engine = EngineKind::kFsim;
  const std::vector<Cell> cells = {{packet, {}}, {fsim, {}}};

  Runner plain(2);
  Runner audited(2);
  audited.set_audit(true);
  const auto base = plain.run(cells);
  const auto checked = audited.run(cells);
  for (const auto& cell : checked) {
    EXPECT_EQ(cell.errors.size(), 0u) << cell.spec.name;
  }
  EXPECT_EQ(report_json(base), report_json(checked));
}

TEST(Runner, AuditFlagSurfacesInjectedViolation) {
  // A custom trial that plants a violation through the context's audit
  // switch: built-in engines do this wiring internally; here we assert the
  // taxonomy path end-to-end via a breached collecting auditor.
  const TrialFn breaching = [](const TrialContext& ctx) -> TrialResult {
    util::Audit audit;
    if (ctx.audit) {
      audit.fail("packets lost: received 10 forwarded 8 dropped 1");
    }
    audit.check();
    return TrialResult{};
  };
  Runner runner(1);
  runner.set_audit(true);
  const auto cell = runner.run_cell({custom_spec("breach", 1), breaching});
  ASSERT_EQ(cell.errors.size(), 1u);
  EXPECT_EQ(cell.errors[0].kind, TrialErrorKind::kInvariant);
  EXPECT_NE(cell.errors[0].what.find("packets lost"), std::string::npos);
}

}  // namespace
}  // namespace pnet::exp
