// Tests for the core P-Net library: the Table 1 cost model (exact paper
// numbers), every path-selection policy, and the harness facade.
#include <gtest/gtest.h>

#include <set>

#include "core/cost_model.hpp"
#include "core/harness.hpp"
#include "core/path_selector.hpp"

namespace pnet::core {
namespace {

// ------------------------------------------------------------ cost model

TEST(CostModel, Table1SerialScaleOutRow) {
  // "Serial (scale-out): 4 tiers, 7 hops, 3,584 chips, 3,584 boxes, 24.6k
  // links" for 8,192 hosts of 16-port chips.
  const auto c = serial_scale_out(8192, 16);
  EXPECT_EQ(c.tiers, 4);
  EXPECT_EQ(c.hops, 7);
  EXPECT_EQ(c.chips, 3584);
  EXPECT_EQ(c.boxes, 3584);
  EXPECT_EQ(c.links, 24576);  // 24.6k
}

TEST(CostModel, Table1SerialChassisRow) {
  // "Serial chassis: 2 tiers, 7 hops, 3,584 chips, 192 boxes, 8.2k links".
  const auto c = serial_chassis(8192, 16, 128);
  EXPECT_EQ(c.tiers, 2);
  EXPECT_EQ(c.hops, 7);
  EXPECT_EQ(c.chips, 3584);
  EXPECT_EQ(c.boxes, 192);
  EXPECT_EQ(c.links, 8192);  // 8.2k
}

TEST(CostModel, Table1ParallelRow) {
  // "Parallel 8x: 2 tiers, 3 hops, 1,536 chips, 192 boxes, 8.2k links".
  const auto c = parallel_pnet(8192, 16, 8);
  EXPECT_EQ(c.tiers, 2);
  EXPECT_EQ(c.hops, 3);
  EXPECT_EQ(c.chips, 1536);
  EXPECT_EQ(c.boxes, 192);
  EXPECT_EQ(c.links, 8192);
}

TEST(CostModel, ParallelWithoutDeploymentOptimizations) {
  // Without bundling/shared boxes the naive parallel deployment pays N x
  // the cables and boxes (§6.1's motivation).
  const auto c = parallel_pnet(8192, 16, 8, /*bundle=*/false,
                               /*shared_boxes=*/false);
  EXPECT_EQ(c.links, 8 * 8192);
  EXPECT_EQ(c.boxes, 1536);
}

TEST(CostModel, ScaleOutGrowsTiersWithHosts) {
  EXPECT_EQ(serial_scale_out(128, 16).tiers, 2);
  EXPECT_EQ(serial_scale_out(1024, 16).tiers, 3);
  EXPECT_EQ(serial_scale_out(8192, 16).tiers, 4);
  EXPECT_EQ(serial_scale_out(8193, 16).tiers, 5);
}

TEST(CostModel, RejectsInvalidShapes) {
  EXPECT_THROW(serial_scale_out(128, 15), std::invalid_argument);
  EXPECT_THROW(serial_chassis(1 << 20, 16, 128), std::invalid_argument);
  EXPECT_THROW(parallel_pnet(1 << 30, 16, 2), std::invalid_argument);
}

// --------------------------------------------------------- path selection

topo::ParallelNetwork make_net(topo::NetworkType type, int planes,
                               topo::TopoKind kind = topo::TopoKind::kFatTree,
                               int hosts = 16) {
  topo::NetworkSpec spec;
  spec.topo = kind;
  spec.hosts = hosts;
  spec.parallelism = planes;
  spec.type = type;
  return topo::build_network(spec);
}

TEST(PathSelectorTest, EcmpSticksToOnePathPerFlow) {
  const auto net = make_net(topo::NetworkType::kParallelHomogeneous, 4);
  PolicyConfig config;
  config.policy = RoutingPolicy::kEcmp;
  PathSelector selector(net, config);
  const auto a = selector.select(HostId{0}, HostId{15}, 1000, 42);
  const auto b = selector.select(HostId{0}, HostId{15}, 1000, 42);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a, b);  // same flow key -> same path
}

TEST(PathSelectorTest, EcmpSpreadsAcrossPlanesStatistically) {
  const auto net = make_net(topo::NetworkType::kParallelHomogeneous, 4);
  PolicyConfig config;
  config.policy = RoutingPolicy::kEcmp;
  PathSelector selector(net, config);
  std::vector<int> per_plane(4, 0);
  for (std::uint64_t key = 0; key < 400; ++key) {
    const auto paths = selector.select(HostId{0}, HostId{15}, 1000, key);
    ASSERT_EQ(paths.size(), 1u);
    ++per_plane[static_cast<std::size_t>(paths.front().plane)];
  }
  for (int count : per_plane) EXPECT_NEAR(count, 100, 40);
}

TEST(PathSelectorTest, RoundRobinCyclesPlanesPerSource) {
  const auto net = make_net(topo::NetworkType::kParallelHomogeneous, 4);
  PolicyConfig config;
  config.policy = RoutingPolicy::kRoundRobin;
  PathSelector selector(net, config);
  std::vector<int> planes;
  for (int i = 0; i < 8; ++i) {
    const auto paths = selector.select(HostId{0}, HostId{15}, 1000, 0);
    ASSERT_EQ(paths.size(), 1u);
    planes.push_back(paths.front().plane);
  }
  // A rotation over all 4 planes with some per-host phase, repeated twice.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(planes[static_cast<std::size_t>(i)],
              planes[static_cast<std::size_t>(i + 4)]);
    EXPECT_EQ((planes[0] + i) % 4, planes[static_cast<std::size_t>(i)]);
  }
}

TEST(PathSelectorTest, RoundRobinPhasesDifferAcrossSources) {
  // Hosts start their rotation at different planes so synchronized flow
  // creation (e.g. a shuffle) does not concentrate on one plane.
  const auto net = make_net(topo::NetworkType::kParallelHomogeneous, 4);
  PolicyConfig config;
  config.policy = RoutingPolicy::kRoundRobin;
  PathSelector selector(net, config);
  std::set<int> first_planes;
  for (int src = 0; src < 8; ++src) {
    const auto paths =
        selector.select(HostId{src}, HostId{15 - src}, 1000, 0);
    ASSERT_EQ(paths.size(), 1u);
    first_planes.insert(paths.front().plane);
  }
  EXPECT_GE(first_planes.size(), 3u);
}

TEST(PathSelectorTest, ShortestPlanePicksGlobalMinimumHops) {
  const auto net = make_net(topo::NetworkType::kParallelHeterogeneous, 4,
                            topo::TopoKind::kJellyfish, 98);
  PolicyConfig config;
  config.policy = RoutingPolicy::kShortestPlane;
  PathSelector selector(net, config);
  for (int dst = 50; dst < 70; ++dst) {
    const auto chosen = selector.select(HostId{0}, HostId{dst}, 1000, 0);
    ASSERT_EQ(chosen.size(), 1u);
    const auto per_plane =
        routing::shortest_per_plane(net, HostId{0}, HostId{dst});
    for (const auto& alternative : per_plane) {
      EXPECT_LE(chosen.front().hops(), alternative.hops());
    }
  }
}

TEST(PathSelectorTest, KspMultipathReturnsKDistinctPaths) {
  const auto net = make_net(topo::NetworkType::kParallelHomogeneous, 2);
  PolicyConfig config;
  config.policy = RoutingPolicy::kKspMultipath;
  config.k = 8;
  PathSelector selector(net, config);
  const auto paths = selector.select(HostId{0}, HostId{15}, 1 << 30, 0);
  ASSERT_EQ(paths.size(), 8u);
  std::set<std::pair<int, std::vector<std::int32_t>>> distinct;
  for (const auto& p : paths) {
    std::vector<std::int32_t> ids;
    for (auto l : p.links) ids.push_back(l.v);
    EXPECT_TRUE(distinct.insert({p.plane, ids}).second);
  }
}

TEST(PathSelectorTest, SizeThresholdSwitchesTransport) {
  const auto net = make_net(topo::NetworkType::kParallelHomogeneous, 2);
  PolicyConfig config;
  config.policy = RoutingPolicy::kSizeThreshold;
  config.k = 4;
  config.multipath_cutoff_bytes = 100'000'000;
  PathSelector selector(net, config);
  // 100 MB (the paper's small/large boundary) stays single-path...
  EXPECT_EQ(selector.select(HostId{0}, HostId{15}, 100'000'000, 0).size(),
            1u);
  // ...1 GB goes multipath (§5.1.2's recommendation).
  EXPECT_EQ(selector.select(HostId{0}, HostId{15}, 1'000'000'000, 0).size(),
            4u);
}

TEST(PathSelectorTest, SerialNetworkAlwaysPlaneZero) {
  const auto net = make_net(topo::NetworkType::kSerialLow, 4);
  for (auto policy : {RoutingPolicy::kEcmp, RoutingPolicy::kRoundRobin,
                      RoutingPolicy::kShortestPlane}) {
    PolicyConfig config;
    config.policy = policy;
    PathSelector selector(net, config);
    for (std::uint64_t key = 0; key < 16; ++key) {
      const auto paths = selector.select(HostId{0}, HostId{15}, 1000, key);
      ASSERT_EQ(paths.size(), 1u) << to_string(policy);
      EXPECT_EQ(paths.front().plane, 0);
    }
  }
}

TEST(PathSelectorTest, PlaneFailureAfterPairCachedIsRespected) {
  // Regression: warm the per-pair cache FIRST, then fail a plane. select()
  // must stop returning paths through the failed plane even though the
  // pair's candidate sets were cached while it was healthy.
  const auto net = make_net(topo::NetworkType::kParallelHomogeneous, 4);
  for (RoutingPolicy policy :
       {RoutingPolicy::kEcmp, RoutingPolicy::kRoundRobin,
        RoutingPolicy::kShortestPlane, RoutingPolicy::kKspMultipath}) {
    PolicyConfig config;
    config.policy = policy;
    config.k = 8;
    PathSelector selector(net, config);

    bool plane2_used_before = false;
    for (std::uint64_t key = 0; key < 64; ++key) {
      for (const auto& p :
           selector.select(HostId{0}, HostId{15}, 1'000'000'000, key)) {
        plane2_used_before |= p.plane == 2;
      }
    }
    ASSERT_TRUE(plane2_used_before) << to_string(policy);

    selector.set_plane_failed(2, true);
    for (std::uint64_t key = 0; key < 64; ++key) {
      const auto paths =
          selector.select(HostId{0}, HostId{15}, 1'000'000'000, key);
      ASSERT_FALSE(paths.empty()) << to_string(policy);
      for (const auto& p : paths) {
        EXPECT_NE(p.plane, 2) << to_string(policy);
      }
    }

    selector.set_plane_failed(2, false);
    bool plane2_used_after = false;
    for (std::uint64_t key = 0; key < 64; ++key) {
      for (const auto& p :
           selector.select(HostId{0}, HostId{15}, 1'000'000'000, key)) {
        plane2_used_after |= p.plane == 2;
      }
    }
    EXPECT_TRUE(plane2_used_after) << to_string(policy);
  }
}

TEST(PathSelectorTest, LinkFailureInvalidatesCachedPaths) {
  // A cable failure reported after the pair is cached must recompute the
  // affected entries: new selections avoid the dead link (both directions).
  const auto net = make_net(topo::NetworkType::kParallelHomogeneous, 2);
  PolicyConfig config;
  config.policy = RoutingPolicy::kEcmp;
  PathSelector selector(net, config);

  // Warm the cache and find a fabric link used by some flow on plane 0.
  LinkId victim{-1};
  for (std::uint64_t key = 0; key < 32 && !victim.valid(); ++key) {
    const auto paths = selector.select(HostId{0}, HostId{15}, 1000, key);
    ASSERT_EQ(paths.size(), 1u);
    if (paths.front().plane == 0) victim = paths.front().links[1];
  }
  ASSERT_TRUE(victim.valid());

  selector.set_link_failed(0, victim, true);
  for (std::uint64_t key = 0; key < 256; ++key) {
    const auto paths = selector.select(HostId{0}, HostId{15}, 1000, key);
    ASSERT_EQ(paths.size(), 1u);
    for (LinkId id : paths.front().links) {
      if (paths.front().plane != 0) break;
      EXPECT_NE(id.v, victim.v);
      EXPECT_NE(id.v, victim.v ^ 1);
    }
  }
  EXPECT_GE(selector.route_cache().stats().invalidations, 1u);

  // Recovery: the link becomes selectable again.
  selector.set_link_failed(0, victim, false);
  bool victim_used = false;
  for (std::uint64_t key = 0; key < 256; ++key) {
    const auto paths = selector.select(HostId{0}, HostId{15}, 1000, key);
    for (LinkId id : paths.front().links) victim_used |= id == victim;
  }
  EXPECT_TRUE(victim_used);
}

TEST(PathSelectorTest, SharedCacheGivesIdenticalSelections) {
  // Two selectors sharing one cache must select exactly what two private-
  // cache selectors do — the cache is invisible to results.
  const auto net = make_net(topo::NetworkType::kParallelHomogeneous, 2);
  PolicyConfig config;
  config.policy = RoutingPolicy::kKspMultipath;
  config.k = 4;

  auto shared = std::make_shared<routing::RouteCache>(true);
  PathSelector a(net, config, shared);
  PathSelector b(net, config, shared);
  PathSelector lone(net, config);
  for (std::uint64_t key = 0; key < 16; ++key) {
    const auto expect = lone.select(HostId{0}, HostId{15}, 1000, key);
    EXPECT_EQ(a.select(HostId{0}, HostId{15}, 1000, key), expect);
    EXPECT_EQ(b.select(HostId{0}, HostId{15}, 1000, key), expect);
  }
  // Second selector's lookups all hit the shared entries.
  EXPECT_GT(shared->stats().hits, 0u);
  EXPECT_EQ(shared->stats().misses, lone.route_cache().stats().misses);
}

TEST(PathSelectorTest, PolicyNames) {
  EXPECT_EQ(to_string(RoutingPolicy::kKspMultipath), "ksp-multipath");
  EXPECT_EQ(to_string(RoutingPolicy::kSizeThreshold), "size-threshold");
}

// --------------------------------------------------------------- harness

TEST(Harness, EndToEndFlowThroughStarter) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  spec.parallelism = 2;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  PolicyConfig policy;
  policy.policy = RoutingPolicy::kRoundRobin;
  SimHarness harness({.spec = spec, .policy = policy});

  int completions = 0;
  harness.starter()(HostId{0}, HostId{15}, 50'000, 0,
                    [&](const sim::FlowRecord& r) {
                      ++completions;
                      EXPECT_EQ(r.bytes, 50'000u);
                    });
  harness.starter()(HostId{3}, HostId{9}, 50'000, 0,
                    [&](const sim::FlowRecord&) { ++completions; });
  harness.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(harness.logger().records().size(), 2u);
  EXPECT_EQ(harness.all_hosts().size(), 16u);
}

TEST(Harness, MultipathStarterLaunchesMptcp) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  spec.parallelism = 2;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  PolicyConfig policy;
  policy.policy = RoutingPolicy::kKspMultipath;
  policy.k = 4;
  SimHarness harness({.spec = spec, .policy = policy});
  harness.starter()(HostId{0}, HostId{15}, 1'000'000, 0, {});
  harness.run();
  ASSERT_EQ(harness.logger().records().size(), 1u);
  EXPECT_EQ(harness.logger().records().front().subflows, 4);
}

}  // namespace
}  // namespace pnet::core
