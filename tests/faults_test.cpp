// Tests for the dynamic fault pipeline: degraded queues, the
// cable/plane failure overlay, FaultPlan/FaultInjector replay, the
// HealthMonitor detection delay, transport-level failover (path-suspect
// repath, plane-driven repath, MPTCP subflow revival), and the recovery
// statistics built on top.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/recovery.hpp"
#include "core/harness.hpp"
#include "core/health_monitor.hpp"
#include "sim/faults.hpp"

namespace pnet {
namespace {

core::SimHarness make_harness(core::RoutingPolicy policy_kind, int k = 2) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = 16;
  spec.parallelism = 2;
  core::PolicyConfig policy;
  policy.policy = policy_kind;
  policy.k = k;
  return core::SimHarness({.spec = spec, .policy = policy});
}

void degrade_whole_plane(core::SimHarness& h, int plane, double loss_rate,
                         double rate_scale = 1.0) {
  const int links = h.net().plane(plane).graph.num_links();
  for (int l = 0; l < links; l += 2) {
    h.network().set_cable_degraded(plane, LinkId{l}, loss_rate, rate_scale);
  }
}

// ------------------------------------------------------- degraded queues

TEST(DegradedLinks, FullLossRateBlackHolesLikeFailed) {
  auto h = make_harness(core::RoutingPolicy::kShortestPlane);
  h.selector().set_plane_failed(0, true);  // force flows onto plane 1
  degrade_whole_plane(h, 1, 1.0);
  h.starter()(HostId{0}, HostId{15}, 15000, 0, {});
  h.run_until(5 * units::kMillisecond);
  EXPECT_TRUE(h.logger().records().empty());
  EXPECT_GT(h.network().total_drops(), 0u);
  // And the drops are attributed to the random-loss cause, not tail drops.
  std::uint64_t random = 0;
  std::uint64_t failed = 0;
  for (int l = 0; l < h.net().plane(1).graph.num_links(); ++l) {
    random += h.network().queue(1, LinkId{l}).drops_random();
    failed += h.network().queue(1, LinkId{l}).drops_failed();
  }
  EXPECT_GT(random, 0u);
  EXPECT_EQ(failed, 0u);
}

TEST(DegradedLinks, PartialLossRetransmitsButCompletes) {
  auto h = make_harness(core::RoutingPolicy::kShortestPlane);
  h.selector().set_plane_failed(0, true);
  // 1% per queue compounds to ~10% per round trip over the ~12 queues of a
  // core path + its ACKs — harsh but survivable for NewReno.
  degrade_whole_plane(h, 1, 0.01);
  h.starter()(HostId{0}, HostId{15}, 500 * units::kKB, 0, {});
  h.run_until(10 * units::kSecond);
  ASSERT_EQ(h.logger().records().size(), 1u);
  EXPECT_GT(h.logger().total_retransmits(), 0);
}

TEST(DegradedLinks, ReducedServiceRateSlowsTheFlow) {
  auto fct = [](double rate_scale) {
    auto h = make_harness(core::RoutingPolicy::kShortestPlane);
    h.selector().set_plane_failed(1, true);
    degrade_whole_plane(h, 0, 0.0, rate_scale);
    h.starter()(HostId{0}, HostId{15}, 1 * units::kMB, 0, {});
    h.run();
    return h.logger().fct_us().front();
  };
  const double healthy = fct(1.0);
  const double degraded = fct(0.5);
  EXPECT_GT(degraded, 1.5 * healthy);
  EXPECT_LT(degraded, 3.0 * healthy);
}

TEST(DegradedLinks, RestoreClearsLossAndRate) {
  auto h = make_harness(core::RoutingPolicy::kShortestPlane);
  h.network().set_cable_degraded(0, LinkId{0}, 0.3, 0.5);
  EXPECT_DOUBLE_EQ(h.network().queue(0, LinkId{0}).loss_rate(), 0.3);
  EXPECT_DOUBLE_EQ(h.network().queue(0, LinkId{1}).rate_scale(), 0.5);
  h.network().set_cable_degraded(0, LinkId{0}, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(h.network().queue(0, LinkId{0}).loss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(h.network().queue(0, LinkId{1}).rate_scale(), 1.0);
}

// ------------------------------------------------- cable/plane overlay

TEST(FailureOverlay, CableFailureIsSymmetricAndIdempotent) {
  auto h = make_harness(core::RoutingPolicy::kShortestPlane);
  const LinkId link{40};
  const LinkId rev = h.net().plane(0).graph.reverse(link);
  h.network().set_cable_failed(0, link, true);
  EXPECT_TRUE(h.network().cable_failed(0, link));
  EXPECT_TRUE(h.network().cable_failed(0, rev));
  EXPECT_EQ(h.network().cable_fail_transitions(), 1);

  h.network().set_cable_failed(0, rev, true);  // duplicate, via the twin
  EXPECT_EQ(h.network().cable_fail_transitions(), 1);

  h.network().set_cable_failed(0, rev, false);
  EXPECT_FALSE(h.network().cable_failed(0, link));
  h.network().set_cable_failed(0, link, false);  // duplicate recover
  EXPECT_EQ(h.network().cable_fail_transitions(), 1);
}

TEST(FailureOverlay, PlaneRecoveryDoesNotResurrectFailedCable) {
  auto h = make_harness(core::RoutingPolicy::kShortestPlane);
  const LinkId link{40};
  h.network().set_cable_failed(0, link, true);
  h.network().set_plane_failed(0, true);
  h.network().set_plane_failed(0, false);
  EXPECT_TRUE(h.network().cable_failed(0, link));
  EXPECT_TRUE(h.network().queue(0, link).failed());
  // Other links of the plane did come back.
  EXPECT_FALSE(h.network().queue(0, LinkId{0}).failed());
  h.network().set_cable_failed(0, link, false);
  EXPECT_FALSE(h.network().queue(0, link).failed());
}

TEST(FailureOverlay, RepeatedPlaneFlapsCountTransitions) {
  auto h = make_harness(core::RoutingPolicy::kShortestPlane);
  for (int i = 0; i < 3; ++i) {
    h.network().set_plane_failed(1, true);
    h.network().set_plane_failed(1, true);  // redundant
    h.network().set_plane_failed(1, false);
  }
  EXPECT_EQ(h.network().plane_fail_transitions(), 3);
  EXPECT_FALSE(h.network().plane_failed(1));
}

// ------------------------------------------------------- fault injector

TEST(FaultInjector, AppliesPlanAtScheduledTimes) {
  auto h = make_harness(core::RoutingPolicy::kRoundRobin);
  sim::FaultInjector injector(h.events(), h.network());
  sim::FaultPlan plan;
  plan.flap_plane(units::kMillisecond, units::kMillisecond, 1);
  injector.arm(plan);
  EXPECT_EQ(injector.events_pending(), 2);

  h.run_until(1500 * units::kMicrosecond);
  EXPECT_TRUE(h.network().plane_failed(1));
  h.run_until(3 * units::kMillisecond);
  EXPECT_FALSE(h.network().plane_failed(1));
  ASSERT_EQ(injector.applied().size(), 2u);
  EXPECT_EQ(injector.applied()[0].event.kind, sim::FaultKind::kPlaneFail);
  EXPECT_EQ(injector.applied()[1].event.kind, sim::FaultKind::kPlaneRecover);
  EXPECT_EQ(injector.events_pending(), 0);
}

TEST(FaultInjector, SeededPlansReplayIdentically) {
  auto plan_events = [](std::uint64_t seed) {
    auto h = make_harness(core::RoutingPolicy::kRoundRobin);
    auto plan = sim::FaultPlan::random_link_flaps(
        h.net(), 4, units::kMillisecond, 10 * units::kMillisecond,
        4 * units::kMillisecond, units::kMillisecond, seed);
    return plan.events();
  };
  const auto a = plan_events(7);
  const auto b = plan_events(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].plane, b[i].plane);
    EXPECT_EQ(a[i].link.v, b[i].link.v);
  }
  EXPECT_FALSE(a.empty());
}

// Two end-to-end runs of the same seeded fault schedule against the same
// workload must be bit-identical: same flow log, same drop totals.
TEST(FaultInjector, EndToEndRunsAreDeterministic) {
  auto run = [] {
    auto h = make_harness(core::RoutingPolicy::kRoundRobin);
    core::HealthMonitor monitor(h.events(),
                                {.detect_delay = 100 * units::kMicrosecond});
    monitor.add_selector(h.selector());
    monitor.set_factory(h.factory());
    h.selector().enable_repath(h.factory());
    sim::FaultInjector injector(h.events(), h.network());
    monitor.observe(injector);
    auto plan = sim::FaultPlan::random_link_flaps(
        h.net(), 3, 100 * units::kMicrosecond, 5 * units::kMillisecond,
        2 * units::kMillisecond, 500 * units::kMicrosecond, 99);
    plan.merge(sim::FaultPlan::random_degraded_links(
        h.net(), 3, 200 * units::kMicrosecond, 5 * units::kMillisecond, 0.05,
        1.0, 77));
    plan.flap_plane(units::kMillisecond, 2 * units::kMillisecond, 1);
    injector.arm(plan);
    for (int i = 0; i < 16; ++i) {
      h.starter()(HostId{i}, HostId{15 - i}, 200 * units::kKB,
                  (i % 4) * 100 * units::kMicrosecond, {});
    }
    h.run_until(5 * units::kSecond);
    std::ostringstream csv;
    h.logger().write_csv(csv);
    return std::make_pair(csv.str(), h.network().total_drops());
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  EXPECT_GT(first.second, 0u);  // the faults actually bit
}

// ------------------------------------------------------- health monitor

TEST(HealthMonitor, DetectionWaitsForPropagationDelay) {
  auto h = make_harness(core::RoutingPolicy::kRoundRobin);
  core::HealthMonitor monitor(h.events(),
                              {.detect_delay = 5 * units::kMillisecond});
  monitor.add_selector(h.selector());
  sim::FaultInjector injector(h.events(), h.network());
  monitor.observe(injector);
  sim::FaultPlan plan;
  plan.fail_plane(units::kMillisecond, 1);
  injector.arm(plan);

  h.run_until(4 * units::kMillisecond);
  // Fault applied, but the hosts have not heard yet.
  EXPECT_TRUE(h.network().plane_failed(1));
  EXPECT_TRUE(monitor.detections().empty());
  EXPECT_TRUE(h.selector().plane_usable(1));

  h.run_until(7 * units::kMillisecond);
  ASSERT_EQ(monitor.detections().size(), 1u);
  EXPECT_EQ(monitor.detections().front().second, 6 * units::kMillisecond);
  EXPECT_FALSE(h.selector().plane_usable(1));
}

TEST(HealthMonitor, RecoveryReenablesPlane) {
  auto h = make_harness(core::RoutingPolicy::kRoundRobin);
  core::HealthMonitor monitor(h.events(),
                              {.detect_delay = units::kMicrosecond});
  monitor.add_selector(h.selector());
  sim::FaultInjector injector(h.events(), h.network());
  monitor.observe(injector);
  sim::FaultPlan plan;
  plan.flap_plane(units::kMillisecond, units::kMillisecond, 1);
  injector.arm(plan);
  h.run_until(10 * units::kMillisecond);
  EXPECT_EQ(monitor.detections().size(), 2u);
  EXPECT_TRUE(h.selector().plane_usable(1));
}

// ------------------------------------------------------------- failover

// A whole plane dies while flows ride it. With detection + repath enabled
// every flow finishes by moving to the surviving plane; nothing hangs.
TEST(Failover, InFlightFlowsFinishViaRepath) {
  auto h = make_harness(core::RoutingPolicy::kRoundRobin);
  core::HealthMonitor monitor(h.events(),
                              {.detect_delay = 10 * units::kMicrosecond});
  monitor.add_selector(h.selector());
  monitor.set_factory(h.factory());
  h.selector().enable_repath(h.factory());
  sim::FaultInjector injector(h.events(), h.network());
  monitor.observe(injector);
  sim::FaultPlan plan;
  plan.fail_plane(50 * units::kMicrosecond, 1);  // and never recovers
  injector.arm(plan);

  for (int i = 0; i < 8; ++i) {
    h.starter()(HostId{i}, HostId{15 - i}, 1 * units::kMB, 0, {});
  }
  h.run_until(10 * units::kSecond);
  EXPECT_EQ(h.logger().records().size(), 8u);
  EXPECT_TRUE(h.factory().incomplete_tcp_flows().empty());
  int repaths = 0;
  for (const auto& r : h.logger().records()) repaths += r.repaths;
  EXPECT_GT(repaths, 0);  // round-robin put some flows on the dead plane
}

// Without any host-side detection, consecutive RTOs alone must move a flow
// off its dead path (the transport-level path-suspect reaction — the only
// defense for mid-fabric faults invisible to link status).
TEST(Failover, ConsecutiveRtosTriggerPathSuspectRepath) {
  auto h = make_harness(core::RoutingPolicy::kRoundRobin);
  h.selector().enable_repath(h.factory());
  // Pin the first flow onto plane 1, then break plane 1 under it. The
  // selector is never told: only the RTO machinery can save the flow.
  h.selector().set_plane_failed(0, true);
  h.starter()(HostId{0}, HostId{15}, 500 * units::kKB, 0, {});
  h.selector().set_plane_failed(0, false);
  h.network().set_plane_failed(1, true);

  h.run_until(30 * units::kSecond);
  ASSERT_EQ(h.logger().records().size(), 1u);
  const auto& record = h.logger().records().front();
  EXPECT_GE(record.repaths, 1);
  EXPECT_GE(record.timeouts,
            h.network().config().tcp.path_suspect_threshold);
}

// The plane comes back while the flow sits in RTO backoff; the next
// retransmission finds a healthy path and the flow completes (no repath
// machinery involved at all).
TEST(Failover, RecoveryDuringRtoBackoffCompletes) {
  auto h = make_harness(core::RoutingPolicy::kShortestPlane);
  h.selector().set_plane_failed(0, true);  // flow rides plane 1
  sim::FaultInjector injector(h.events(), h.network());
  sim::FaultPlan plan;
  // 10 MB at ~50 Gb/s lasts ~1.6 ms, so the 100 us fault catches it in
  // flight; the 50 ms outage spans several backed-off RTOs.
  plan.flap_plane(100 * units::kMicrosecond, 50 * units::kMillisecond, 1);
  injector.arm(plan);
  h.starter()(HostId{0}, HostId{15}, 10 * units::kMB, 0, {});
  h.run_until(30 * units::kSecond);
  ASSERT_EQ(h.logger().records().size(), 1u);
  EXPECT_GT(h.logger().records().front().timeouts, 0);
}

// An MPTCP connection abandons its subflow on a failed plane and
// re-establishes it when the plane recovers mid-transfer.
TEST(Failover, MptcpSubflowRevivesOnPlaneRecovery) {
  auto h = make_harness(core::RoutingPolicy::kKspMultipath, 2);
  core::HealthMonitor monitor(h.events(),
                              {.detect_delay = 10 * units::kMicrosecond});
  monitor.add_selector(h.selector());
  monitor.set_factory(h.factory());
  sim::FaultInjector injector(h.events(), h.network());
  monitor.observe(injector);
  sim::FaultPlan plan;
  plan.flap_plane(units::kMillisecond, 4 * units::kMillisecond, 1);
  injector.arm(plan);

  const std::uint64_t bytes = 50 * units::kMB;
  h.starter()(HostId{0}, HostId{15}, bytes, 0, {});
  h.run_until(60 * units::kSecond);
  ASSERT_EQ(h.logger().records().size(), 1u);
  EXPECT_GT(h.logger().records().front().subflows, 1);
  EXPECT_GE(h.factory().total_delivered_bytes(), bytes);
  EXPECT_TRUE(h.factory().incomplete_mptcp_flows().empty());
}

// ------------------------------------------------------ recovery stats

TEST(RecoveryStats, PlaneEpisodesPairFailAndRecover) {
  using sim::FaultKind;
  std::vector<sim::FaultInjector::AppliedEvent> applied;
  applied.push_back({{units::kMillisecond, FaultKind::kPlaneFail, 1}, 100});
  applied.push_back(
      {{2 * units::kMillisecond, FaultKind::kCableFail, 0, LinkId{4}}, 120});
  applied.push_back(
      {{3 * units::kMillisecond, FaultKind::kPlaneRecover, 1}, 150});
  applied.push_back({{5 * units::kMillisecond, FaultKind::kPlaneFail, 0}, 160});

  std::vector<std::pair<sim::FaultEvent, SimTime>> detections;
  detections.emplace_back(applied[0].event, units::kMillisecond + 500000);

  const auto episodes = analysis::plane_episodes(applied, detections);
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].plane, 1);
  EXPECT_EQ(episodes[0].fail_at, units::kMillisecond);
  EXPECT_EQ(episodes[0].recover_at, 3 * units::kMillisecond);
  EXPECT_EQ(episodes[0].packets_lost, 50u);
  EXPECT_EQ(episodes[0].detected_at, units::kMillisecond + 500000);
  // The second episode never recovered: open-ended, loss unknown.
  EXPECT_EQ(episodes[1].plane, 0);
  EXPECT_EQ(episodes[1].recover_at, -1);
  EXPECT_EQ(episodes[1].detected_at, -1);
}

TEST(RecoveryStats, AnalyzeEpisodeFindsDipAndRecoveryTime) {
  std::vector<analysis::GoodputProbe::Sample> samples;
  const SimTime ms = units::kMillisecond;
  samples.push_back({1 * ms, 100e9});
  samples.push_back({2 * ms, 10e9});   // outage
  samples.push_back({3 * ms, 20e9});   // outage
  samples.push_back({4 * ms, 95e9});   // recovered
  analysis::FaultEpisode episode;
  episode.fail_at = 1 * ms;
  episode.recover_at = 3 * ms;
  episode.detected_at = 1 * ms + 200000;
  episode.packets_lost = 42;

  const auto report = analysis::analyze_episode(samples, episode, 0.9);
  EXPECT_DOUBLE_EQ(report.baseline_goodput_bps, 100e9);
  EXPECT_DOUBLE_EQ(report.dip_goodput_bps, 10e9);
  EXPECT_EQ(report.time_to_detect, 200000);
  EXPECT_EQ(report.time_to_recover, 3 * ms);
  EXPECT_EQ(report.packets_lost, 42u);
}

TEST(RecoveryStats, GoodputProbeIntegratesDeliveredBytes) {
  auto h = make_harness(core::RoutingPolicy::kRoundRobin);
  analysis::GoodputProbe probe(
      h.events(), [&h] { return h.factory().total_delivered_bytes(); },
      100 * units::kMicrosecond, 20 * units::kMillisecond);
  probe.start(0);
  for (int i = 0; i < 4; ++i) {
    h.starter()(HostId{i}, HostId{15 - i}, 1 * units::kMB, 0, {});
  }
  h.run();
  ASSERT_FALSE(probe.samples().empty());
  double integrated_bits = 0.0;
  for (const auto& s : probe.samples()) {
    integrated_bits +=
        s.goodput_bps * units::to_seconds(probe.bucket_width());
  }
  EXPECT_NEAR(integrated_bits / 8.0,
              static_cast<double>(h.factory().total_delivered_bytes()),
              1024.0);
  // The probe kept the grid alive through the full horizon.
  EXPECT_EQ(probe.samples().back().t_end, 20 * units::kMillisecond);
}

// Shorter detection delay must not lengthen recovery: sweep the delay and
// check time-to-recover is monotone non-decreasing in it.
TEST(RecoveryStats, RecoveryTimeShrinksWithFasterDetection) {
  auto time_to_recover = [](SimTime detect_delay) {
    auto h = make_harness(core::RoutingPolicy::kRoundRobin);
    core::HealthMonitor monitor(h.events(), {.detect_delay = detect_delay});
    monitor.add_selector(h.selector());
    monitor.set_factory(h.factory());
    h.selector().enable_repath(h.factory());
    sim::FaultInjector injector(h.events(), h.network());
    monitor.observe(injector);
    sim::FaultPlan plan;
    plan.flap_plane(10 * units::kMillisecond, 30 * units::kMillisecond, 1);
    injector.arm(plan);
    analysis::GoodputProbe probe(
        h.events(), [&h] { return h.factory().total_delivered_bytes(); },
        units::kMillisecond, 50 * units::kMillisecond);
    probe.start(0);
    // 1 GB flows outlive the probe window, so goodput never decays from
    // flows simply finishing; 8 distinct pairs leave fabric headroom on
    // the surviving plane after everyone crowds onto it.
    for (int i = 0; i < 8; ++i) {
      h.starter()(HostId{i}, HostId{15 - i}, 1 * units::kGB, 0, {});
    }
    h.run_until(50 * units::kMillisecond);
    const auto episodes =
        analysis::plane_episodes(injector.applied(), monitor.detections());
    const auto report = analysis::analyze_episode(probe.samples(),
                                                  episodes.front(), 0.6);
    return report.time_to_recover;
  };
  const SimTime fast = time_to_recover(0);
  const SimTime medium = time_to_recover(5 * units::kMillisecond);
  const SimTime slow = time_to_recover(15 * units::kMillisecond);
  ASSERT_GE(fast, 0);
  ASSERT_GE(medium, 0);
  ASSERT_GE(slow, 0);
  EXPECT_LE(fast, medium);
  EXPECT_LE(medium, slow);
  EXPECT_LT(fast, slow);  // the sweep must actually separate the extremes
}

}  // namespace
}  // namespace pnet
