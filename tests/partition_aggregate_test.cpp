// Tests for the partition-aggregate (web-search fan-out) workload model.
#include <gtest/gtest.h>

#include "core/harness.hpp"
#include "util/stats.hpp"
#include "workload/partition_aggregate.hpp"

namespace pnet::workload {
namespace {

core::SimHarness make_harness(topo::NetworkType type, int planes,
                              bool dctcp = false) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = type;
  spec.hosts = 16;
  spec.parallelism = planes;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;
  sim::SimConfig sim_config;
  if (dctcp) {
    sim_config.ecn_threshold_bytes = 20 * 1500;
    sim_config.tcp.dctcp = true;
  }
  return core::SimHarness({.spec = spec, .policy = policy, .sim_config = sim_config});
}

TEST(PartitionAggregate, CompletesAllQueries) {
  auto h = make_harness(topo::NetworkType::kSerialLow, 1);
  PartitionAggregateApp::Config config;
  config.fan_out = 4;
  config.queries_per_aggregator = 5;
  PartitionAggregateApp app(h.starter(), {HostId{0}, HostId{8}},
                            h.all_hosts(), config);
  app.start(0);
  h.run();
  EXPECT_EQ(app.queries_completed(), 2 * 5);
  for (double us : app.query_times_us()) EXPECT_GT(us, 0.0);
}

TEST(PartitionAggregate, QueryTimeIsTheLastResponse) {
  // One aggregator, one query: the completion must not be faster than a
  // single request+response round trip.
  auto h = make_harness(topo::NetworkType::kSerialLow, 1);
  PartitionAggregateApp::Config config;
  config.fan_out = 8;
  config.queries_per_aggregator = 1;
  PartitionAggregateApp app(h.starter(), {HostId{0}}, h.all_hosts(),
                            config);
  app.start(0);
  h.run();
  ASSERT_EQ(app.queries_completed(), 1);

  auto h2 = make_harness(topo::NetworkType::kSerialLow, 1);
  PartitionAggregateApp::Config single;
  single.fan_out = 1;
  single.queries_per_aggregator = 1;
  PartitionAggregateApp one(h2.starter(), {HostId{0}}, h2.all_hosts(),
                            single);
  one.start(0);
  h2.run();
  EXPECT_GE(app.query_times_us().front(), one.query_times_us().front());
}

TEST(PartitionAggregate, LargerFanOutRaisesTail) {
  auto run = [&](int fan_out) {
    auto h = make_harness(topo::NetworkType::kSerialLow, 1);
    PartitionAggregateApp::Config config;
    config.fan_out = fan_out;
    config.response_bytes = 100'000;
    config.queries_per_aggregator = 10;
    PartitionAggregateApp app(h.starter(), {HostId{0}}, h.all_hosts(),
                              config);
    app.start(0);
    h.run();
    auto v = app.query_times_us();
    return percentile(v, 90);
  };
  EXPECT_GT(run(12), run(2));
}

TEST(PartitionAggregate, PNetSpreadsTheIncast) {
  // Fan-in responses spread over 4 planes: the P-Net's separate downlink
  // queues keep the query tail below the serial network's.
  auto run = [&](topo::NetworkType type, int planes) {
    auto h = make_harness(type, planes);
    PartitionAggregateApp::Config config;
    config.fan_out = 12;
    config.response_bytes = 150'000;
    config.queries_per_aggregator = 12;
    config.seed = 5;
    PartitionAggregateApp app(h.starter(), {HostId{0}, HostId{4}},
                              h.all_hosts(), config);
    app.start(0);
    h.run_until(10 * units::kSecond);
    auto v = app.query_times_us();
    return v.empty() ? 1e18 : percentile(v, 90);
  };
  const double serial = run(topo::NetworkType::kSerialLow, 1);
  const double pnet = run(topo::NetworkType::kParallelHomogeneous, 4);
  EXPECT_LT(pnet, serial);
}

TEST(PartitionAggregate, DctcpTamesTheTail) {
  auto run = [&](bool dctcp) {
    auto h = make_harness(topo::NetworkType::kSerialLow, 1, dctcp);
    PartitionAggregateApp::Config config;
    config.fan_out = 12;
    config.response_bytes = 150'000;
    config.queries_per_aggregator = 12;
    PartitionAggregateApp app(h.starter(), {HostId{0}}, h.all_hosts(),
                              config);
    app.start(0);
    h.run_until(10 * units::kSecond);
    auto v = app.query_times_us();
    return v.empty() ? 1e18 : percentile(v, 90);
  };
  EXPECT_LE(run(true), run(false));
}

}  // namespace
}  // namespace pnet::workload
