// Unit tests for the util substrate: units, ids, rng, stats, flags, tables.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "util/flags.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace pnet {
namespace {

using namespace pnet::units;

TEST(Units, SerializationDelayMatchesPaperNumbers) {
  // Section 5.2.1: "at 100G, MTU-sized packets only take
  // 1500B/100Gb/s = 120ns".
  EXPECT_EQ(serialization_delay(1500, 100e9), 120 * kNanosecond);
  // "at 400G, it's only 1/4 of that".
  EXPECT_EQ(serialization_delay(1500, 400e9), 30 * kNanosecond);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(10 * kMillisecond), 10.0);
  EXPECT_DOUBLE_EQ(to_microseconds(kMicrosecond / 2), 0.5);
}

TEST(Units, LargeFlowFitsInClock) {
  // 1 GB at 100 Gb/s = 80 ms; must be nowhere near overflow.
  const SimTime t = serialization_delay(1 * kGB, 100e9);
  EXPECT_EQ(t, 80 * kMillisecond);
}

TEST(Ids, StrongTypesCompareAndHash) {
  NodeId a{3};
  NodeId b{3};
  NodeId c{4};
  EXPECT_EQ(a, b);
  EXPECT_LT(a, c);
  EXPECT_FALSE(NodeId{}.valid());
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(std::hash<NodeId>{}(a), std::hash<NodeId>{}(b));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowIsInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<int> buckets(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++buckets[static_cast<std::size_t>(v)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, kN / 10, kN / 100);  // within 10% relative
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DerangementHasNoFixedPoint) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto d = rng.derangement(17);
    std::vector<bool> seen(17, false);
    for (int i = 0; i < 17; ++i) {
      EXPECT_NE(d[static_cast<std::size_t>(i)], i);
      seen[static_cast<std::size_t>(d[static_cast<std::size_t>(i)])] = true;
    }
    for (bool s : seen) EXPECT_TRUE(s);  // it is a permutation
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(5);
  const auto p = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (int v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(Rng, Mix64IsStable) {
  // ECMP decisions must be identical across runs and platforms.
  EXPECT_EQ(mix64(0x1234), mix64(0x1234));
  EXPECT_NE(mix64(1), mix64(2));
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
  EXPECT_DOUBLE_EQ(percentile(v, 90), 9.1);
}

TEST(Stats, PercentilesMatchSingleCalls) {
  std::vector<double> v{5, 1, 9, 3, 7};
  const auto ps = percentiles(v, {0, 50, 99});
  EXPECT_DOUBLE_EQ(ps[0], percentile(v, 0));
  EXPECT_DOUBLE_EQ(ps[1], percentile(v, 50));
  EXPECT_DOUBLE_EQ(ps[2], percentile(v, 99));
}

TEST(Stats, CdfRoundTrip) {
  const auto cdf = Cdf::from_samples({1, 1, 2, 3, 3, 3, 10});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_NEAR(cdf.at(1.0), 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(cdf.at(3.0), 6.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(99.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
}

TEST(Stats, CdfResampleKeepsEndpoints) {
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(i);
  const auto cdf = Cdf::from_samples(samples);
  const auto small = cdf.resampled(11);
  ASSERT_LE(small.points.size(), 11u);
  EXPECT_DOUBLE_EQ(small.points.front().first, 0.0);
  EXPECT_DOUBLE_EQ(small.points.back().first, 999.0);
}

TEST(Stats, PercentileEdgeCases) {
  // Empty sample: documented 0.0 (benches can summarize failed runs).
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 100), 0.0);
  const auto empty = percentiles({}, {0, 50, 100});
  ASSERT_EQ(empty.size(), 3u);
  for (double v : empty) EXPECT_DOUBLE_EQ(v, 0.0);

  // A single sample is every percentile.
  EXPECT_DOUBLE_EQ(percentile({7.5}, 0), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 50), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 100), 7.5);

  // p = 0 / 100 are exactly min / max, no interpolation overshoot.
  std::vector<double> v{3, 1, 2};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 3.0);
}

TEST(Stats, CdfEdgeCases) {
  const auto empty = Cdf::from_samples({});
  EXPECT_TRUE(empty.points.empty());
  EXPECT_DOUBLE_EQ(empty.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_TRUE(empty.resampled(5).points.empty());

  const auto one = Cdf::from_samples({4.0});
  EXPECT_DOUBLE_EQ(one.at(3.9), 0.0);
  EXPECT_DOUBLE_EQ(one.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 4.0);
}

Flags make_flags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesKeyValueAndDefaults) {
  const auto flags =
      make_flags({"prog", "--hosts=128", "--verbose", "--rate=2.5"});
  EXPECT_EQ(flags.get_int("hosts", 0), 128);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(flags.get_int("planes", 4), 4);
  EXPECT_FALSE(flags.has("planes"));
  EXPECT_TRUE(flags.has("hosts"));
}

TEST(Flags, ParsesSpaceSeparatedValues) {
  const auto flags = make_flags(
      {"prog", "--hosts", "128", "--rate", "2.5", "--label", "a-b"});
  EXPECT_EQ(flags.get_int("hosts", 0), 128);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(flags.get("label", ""), "a-b");
}

TEST(Flags, MixedFormsAndTrailingBoolean) {
  // "--verbose" followed by another "--flag" must stay a boolean, not
  // swallow the next flag as its value; both spellings coexist.
  const auto flags =
      make_flags({"prog", "--verbose", "--hosts", "64", "--planes=2",
                  "--quiet"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_TRUE(flags.get_bool("quiet", false));
  EXPECT_EQ(flags.get_int("hosts", 0), 64);
  EXPECT_EQ(flags.get_int("planes", 0), 2);
}

TEST(FlagsUsageDeathTest, BarePositionalArgumentFailsFast) {
  EXPECT_EXIT(make_flags({"prog", "oops"}),
              testing::ExitedWithCode(2),
              "expected --key=value or --key value");
}

TEST(FlagsUsageDeathTest, DuplicateFlagAbortsNamingTheFlag) {
  // Last-wins would silently discard a value; the parser must name the
  // offending flag instead.
  EXPECT_EXIT(make_flags({"prog", "--hosts=4", "--hosts=8"}),
              testing::ExitedWithCode(2), "duplicate flag --hosts");
  // Both spellings count as the same flag.
  EXPECT_EXIT(make_flags({"prog", "--hosts", "4", "--hosts=8"}),
              testing::ExitedWithCode(2), "duplicate flag --hosts");
  // A bare boolean repeated is rejected too.
  EXPECT_EXIT(make_flags({"prog", "--verbose", "--verbose"}),
              testing::ExitedWithCode(2), "duplicate flag --verbose");
}

TEST(Flags, PaperScaleFlag) {
  EXPECT_TRUE(make_flags({"prog", "--scale=paper"}).paper_scale());
  EXPECT_FALSE(make_flags({"prog"}).paper_scale());
}

TEST(Flags, ProgramIsArgvBasename) {
  // Usage and error messages must name the binary, not its full path.
  EXPECT_EQ(make_flags({"/build/bench/bench_fig9"}).program(), "bench_fig9");
  EXPECT_EQ(make_flags({"./pnet-serve"}).program(), "pnet-serve");
  EXPECT_EQ(make_flags({"prog"}).program(), "prog");
}

TEST(FlagsUsageDeathTest, VersionExitsZero) {
  // (--version prints "<binary> <version>" on stdout; EXPECT_EXIT can only
  // match stderr, so assert the exit code.)
  EXPECT_EXIT(make_flags({"/x/y/mytool", "--version"}).handle_usage(""),
              testing::ExitedWithCode(0), "");
}

TEST(FlagsUsageDeathTest, HelpExitsZero) {
  EXPECT_EXIT(
      make_flags({"/x/y/mytool", "--help"}).handle_usage("  --foo N\n"),
      testing::ExitedWithCode(0), "");
}

TEST(FlagsUsageDeathTest, UnknownFlagNamesTheBinaryBasename) {
  EXPECT_EXIT(
      make_flags({"/x/y/mytool", "--tyop=1"}).handle_usage("  --foo N\n"),
      testing::ExitedWithCode(2), "mytool: unrecognized flag --tyop");
}

constexpr const char* kUsage =
    "demo: a test binary\n"
    "  --hosts=N     hosts\n"
    "  --cap_mb=N    cap in MB\n";

TEST(FlagsUsageDeathTest, UnknownFlagAborts) {
  const auto flags = make_flags({"prog", "--hostz=4"});
  EXPECT_EXIT(flags.handle_usage(kUsage), testing::ExitedWithCode(2),
              "unrecognized flag --hostz");
}

TEST(FlagsUsageDeathTest, HelpPrintsUsageAndExitsZero) {
  const auto flags = make_flags({"prog", "--help"});
  EXPECT_EXIT(flags.handle_usage(kUsage), testing::ExitedWithCode(0),
              "");
}

TEST(FlagsUsageDeathTest, KnownAndCommonFlagsPass) {
  // Flags named in the usage text — including underscored ones — and the
  // always-available common flags must not abort.
  const auto flags =
      make_flags({"prog", "--hosts=4", "--cap_mb=16", "--scale=paper"});
  flags.handle_usage(kUsage);  // returns normally
  SUCCEED();
}

TEST(Table, RendersAlignedRows) {
  TextTable t("Demo", {"name", "x", "y"});
  t.add_row({"alpha", "1", "2"});
  t.add_row("beta", {3.14159, 2.0}, 2);
  const std::string s = t.render();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_EQ(s.find("3.14159"), std::string::npos);  // precision applied
}

TEST(Table, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(3.0), "3");
  EXPECT_EQ(format_double(3.10, 2), "3.1");
  EXPECT_EQ(format_double(0.042, 3), "0.042");
}

}  // namespace
}  // namespace pnet
