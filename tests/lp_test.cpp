// Tests for the LP substrate: simplex on known instances, max-min fairness
// properties, and Garg–Könemann cross-validated against the exact simplex
// solution on randomized small networks.
#include <gtest/gtest.h>

#include <numeric>

#include "lp/link_index.hpp"
#include "lp/mcf.hpp"
#include "lp/simplex.hpp"
#include "routing/plane_paths.hpp"
#include "routing/yen.hpp"
#include "topo/parallel.hpp"
#include "util/rng.hpp"

namespace pnet::lp {
namespace {

TEST(Simplex, TextbookInstance) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> optimum 36 at (2, 6).
  LinearProgram lp;
  lp.objective = {3, 5};
  lp.rows = {{1, 0}, {0, 2}, {3, 2}};
  lp.rhs = {4, 12, 18};
  const auto solution = solve_simplex(lp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_NEAR(solution->objective_value, 36.0, 1e-9);
  EXPECT_NEAR(solution->x[0], 2.0, 1e-9);
  EXPECT_NEAR(solution->x[1], 6.0, 1e-9);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  lp.objective = {1.0};
  lp.rows = {};  // no constraints at all
  lp.rhs = {};
  EXPECT_FALSE(solve_simplex(lp).has_value());
}

TEST(Simplex, DegenerateInstanceTerminates) {
  // Classic degenerate pivot case; Bland's rule must not cycle.
  LinearProgram lp;
  lp.objective = {10, -57, -9, -24};
  lp.rows = {{0.5, -5.5, -2.5, 9}, {0.5, -1.5, -0.5, 1}, {1, 0, 0, 0}};
  lp.rhs = {0, 0, 1};
  const auto solution = solve_simplex(lp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_NEAR(solution->objective_value, 1.0, 1e-9);
}

TEST(Simplex, RejectsNegativeRhs) {
  LinearProgram lp;
  lp.objective = {1};
  lp.rows = {{1}};
  lp.rhs = {-1};
  EXPECT_THROW(solve_simplex(lp), std::invalid_argument);
}

TEST(MaxMinFair, TwoFlowsShareOneLink) {
  const std::vector<double> cap = {10.0};
  const std::vector<std::vector<int>> paths = {{0}, {0}};
  const auto rates = max_min_fair(cap, paths);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(MaxMinFair, ParkingLot) {
  // Links 0,1,2 in a chain, cap 10. Flow A crosses all three; flows B, C, D
  // cross one link each. Max-min: A=5, B=C=D=5.
  const std::vector<double> cap = {10, 10, 10};
  const std::vector<std::vector<int>> paths = {{0, 1, 2}, {0}, {1}, {2}};
  const auto rates = max_min_fair(cap, paths);
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 5.0);
}

TEST(MaxMinFair, UnevenBottlenecks) {
  // Flow A uses link 0 (cap 2) and link 1 (cap 10); flow B uses link 1 only.
  // A is capped at 2 by link 0; B then takes the rest of link 1 => 8.
  const std::vector<double> cap = {2, 10};
  const std::vector<std::vector<int>> paths = {{0, 1}, {1}};
  const auto rates = max_min_fair(cap, paths);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 8.0);
}

TEST(MaxMinFair, PathlessFlowGetsZero) {
  const std::vector<double> cap = {10};
  const std::vector<std::vector<int>> paths = {{0}, {}};
  const auto rates = max_min_fair(cap, paths);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
}

TEST(Gk, SingleCommoditySinglePath) {
  const std::vector<double> cap = {10, 20};
  std::vector<Commodity> commodities(1);
  commodities[0].demand = 5.0;
  commodities[0].paths = {{0, 1}};
  const auto result = max_concurrent_flow(cap, commodities);
  // Bottleneck is 10; alpha = 10 / 5 = 2.
  EXPECT_NEAR(result.alpha, 2.0, 0.05);
  EXPECT_NEAR(result.total_throughput, 10.0, 0.3);
}

TEST(Gk, TwoCommoditiesShareLink) {
  const std::vector<double> cap = {10};
  std::vector<Commodity> commodities(2);
  for (auto& c : commodities) {
    c.demand = 10.0;
    c.paths = {{0}};
  }
  const auto result = max_concurrent_flow(cap, commodities);
  EXPECT_NEAR(result.alpha, 0.5, 0.02);
}

TEST(Gk, PrefersUncongestedParallelPath) {
  // Two disjoint unit-cap paths; one commodity with demand 2 can use both.
  const std::vector<double> cap = {1, 1};
  std::vector<Commodity> commodities(1);
  commodities[0].demand = 2.0;
  commodities[0].paths = {{0}, {1}};
  const auto result = max_concurrent_flow(cap, commodities);
  EXPECT_NEAR(result.alpha, 1.0, 0.03);
  EXPECT_NEAR(result.total_throughput, 2.0, 0.06);
}

TEST(Gk, EmptyPathSetYieldsZero) {
  const std::vector<double> cap = {1};
  std::vector<Commodity> commodities(2);
  commodities[0].demand = 1.0;
  commodities[0].paths = {{0}};
  commodities[1].demand = 1.0;  // no paths
  const auto result = max_concurrent_flow(cap, commodities);
  EXPECT_DOUBLE_EQ(result.alpha, 0.0);
}

/// Random small Jellyfish instances: GK must track the exact LP optimum.
class GkVsSimplex : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GkVsSimplex, WithinFivePercent) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kJellyfish;
  spec.hosts = 24;
  spec.jf_switches = 12;
  spec.jf_degree = 4;
  spec.jf_hosts_per_switch = 2;
  spec.type = topo::NetworkType::kSerialLow;
  spec.base_rate_bps = 1.0;  // unit capacities keep the LP well-scaled
  spec.seed = GetParam();
  const auto net = topo::build_network(spec);
  const LinkIndex index(net);

  Rng rng(GetParam() * 977);
  const auto perm = rng.derangement(net.num_hosts());

  std::vector<Commodity> commodities;
  std::vector<std::vector<std::vector<int>>> commodity_paths;
  std::vector<double> demands;
  for (int src = 0; src < 8; ++src) {  // a subset keeps the simplex small
    const int dst = perm[static_cast<std::size_t>(src)];
    const auto paths = routing::ksp_across_planes(net, HostId{src},
                                                  HostId{dst}, 4);
    Commodity c;
    c.demand = 1.0;
    std::vector<std::vector<int>> global;
    for (const auto& p : paths) {
      global.push_back(index.to_global(p));
    }
    c.paths = global;
    commodities.push_back(c);
    commodity_paths.push_back(global);
    demands.push_back(1.0);
  }

  McfOptions options;
  options.epsilon = 0.03;
  const auto gk = max_concurrent_flow(index.capacity(), commodities, options);
  const double exact =
      exact_max_concurrent_flow(index.capacity(), demands, commodity_paths);
  ASSERT_GT(exact, 0.0);
  EXPECT_GT(gk.alpha, 0.95 * exact);
  EXPECT_LE(gk.alpha, exact + 1e-6);  // rescaled GK is always feasible
}

INSTANTIATE_TEST_SUITE_P(Seeds, GkVsSimplex,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Gk, FatTreePermutationWithFullEcmpIsNonBlocking) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  spec.type = topo::NetworkType::kSerialLow;
  spec.base_rate_bps = 1.0;
  const auto net = topo::build_network(spec);
  const LinkIndex index(net);

  Rng rng(7);
  const auto perm = rng.derangement(net.num_hosts());
  std::vector<Commodity> commodities;
  for (int src = 0; src < net.num_hosts(); ++src) {
    Commodity c;
    c.demand = 1.0;
    for (const auto& p : routing::ecmp_paths_in_plane(
             net, 0, HostId{src}, HostId{perm[static_cast<std::size_t>(src)]})) {
      c.paths.push_back(index.to_global(p));
    }
    commodities.push_back(std::move(c));
  }
  const auto result = max_concurrent_flow(index.capacity(), commodities);
  // A fat tree is non-blocking: every permutation is routable at full rate
  // when flows may split across all equal-cost paths.
  EXPECT_GT(result.alpha, 0.93);
}

TEST(Gk, AlphaRescalingStaysFeasibleOnSaturatedPermutation) {
  // A permutation of single-path flows whose demand equals the link rate
  // saturates the fabric exactly: the rescaled GK alpha must never exceed
  // 1, and the per-link load implied by the returned rates must never
  // exceed capacity (the rescale-by-peak-utilization guarantee).
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  spec.type = topo::NetworkType::kSerialLow;
  spec.base_rate_bps = 1.0;
  const auto net = topo::build_network(spec);
  const LinkIndex index(net);

  Rng rng(21);
  const auto perm = rng.derangement(net.num_hosts());
  std::vector<Commodity> commodities;
  std::vector<std::vector<int>> single_paths;
  for (int src = 0; src < net.num_hosts(); ++src) {
    const auto paths = routing::ecmp_paths_in_plane(
        net, 0, HostId{src}, HostId{perm[static_cast<std::size_t>(src)]});
    ASSERT_FALSE(paths.empty());
    Commodity c;
    c.demand = net.plane(0).link_rate_bps;  // host uplink: saturating
    c.paths.push_back(index.to_global(paths.front()));
    single_paths.push_back(c.paths.front());
    commodities.push_back(std::move(c));
  }
  McfOptions options;
  options.epsilon = 0.02;
  const auto result =
      max_concurrent_flow(index.capacity(), commodities, options);
  ASSERT_GT(result.alpha, 0.0);
  EXPECT_LE(result.alpha, 1.0 + 1e-9);

  // Feasibility: accumulate each commodity's delivered rate onto its
  // (single) path and compare against capacity link by link.
  std::vector<double> load(index.capacity().size(), 0.0);
  ASSERT_EQ(result.rates.size(), commodities.size());
  for (std::size_t c = 0; c < commodities.size(); ++c) {
    for (int link : single_paths[c]) {
      load[static_cast<std::size_t>(link)] += result.rates[c];
    }
  }
  for (std::size_t l = 0; l < load.size(); ++l) {
    EXPECT_LE(load[l], index.capacity()[l] * (1.0 + 1e-9)) << "link " << l;
  }
}

TEST(GkOracle, TwoPlanesDoubleThroughput) {
  topo::NetworkSpec base;
  base.topo = topo::TopoKind::kJellyfish;
  base.hosts = 24;
  base.jf_switches = 12;
  base.jf_degree = 4;
  base.jf_hosts_per_switch = 2;
  base.base_rate_bps = 1.0;
  base.parallelism = 2;

  auto run = [&](topo::NetworkType type) {
    topo::NetworkSpec spec = base;
    spec.type = type;
    const auto net = topo::build_network(spec);
    const LinkIndex index(net);
    Rng rng(3);
    const auto perm = rng.derangement(net.num_hosts());
    std::vector<OracleCommodity> commodities;
    for (int src = 0; src < net.num_hosts(); ++src) {
      OracleCommodity c;
      c.demand = 1.0;
      for (int p = 0; p < net.num_planes(); ++p) {
        c.endpoints.emplace_back(
            net.host_node(p, HostId{src}),
            net.host_node(p, HostId{perm[static_cast<std::size_t>(src)]}));
      }
      commodities.push_back(std::move(c));
    }
    return max_concurrent_flow_oracle(net, index, commodities).alpha;
  };

  const double serial = run(topo::NetworkType::kSerialLow);
  const double parallel = run(topo::NetworkType::kParallelHomogeneous);
  ASSERT_GT(serial, 0.0);
  // Two identical planes must carry (about) twice the concurrent flow.
  EXPECT_NEAR(parallel / serial, 2.0, 0.15);
}

TEST(LinkIndexTest, FlattensPlanes) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  spec.parallelism = 2;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  const auto net = topo::build_network(spec);
  const LinkIndex index(net);
  EXPECT_EQ(index.num_links(),
            net.plane(0).graph.num_links() + net.plane(1).graph.num_links());
  EXPECT_EQ(index.plane_offset(0), 0);
  EXPECT_EQ(index.plane_offset(1), net.plane(0).graph.num_links());
  // Every capacity matches its plane's link rate.
  for (double c : index.capacity()) EXPECT_DOUBLE_EQ(c, 100e9);

  routing::Path path;
  path.plane = 1;
  path.links = {LinkId{0}, LinkId{5}};
  const auto global = index.to_global(path);
  EXPECT_EQ(global[0], index.plane_offset(1));
  EXPECT_EQ(global[1], index.plane_offset(1) + 5);
}

}  // namespace
}  // namespace pnet::lp
