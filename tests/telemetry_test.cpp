// Tests for src/telemetry and its wiring through the simulators: registry
// snapshot/merge semantics (including concurrent writers), the sampler's
// bounded-memory downsampling invariants, trace export well-formedness
// (Chrome JSON via a mini parser, binary via round-trip), equivalence of
// the harness sampler with the analysis::GoodputProbe it replaces, the
// run_until + finalize bookkeeping regression, and the determinism of
// telemetry-enabled experiment reports across thread counts and the
// PNET_ROUTE_CACHE switch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/recovery.hpp"
#include "core/harness.hpp"
#include "core/health_monitor.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "sim/faults.hpp"
#include "telemetry/telemetry.hpp"
#include "util/units.hpp"

namespace pnet {
namespace {

// --------------------------------------------------------------- registry

TEST(Registry, CountersSumAcrossShardsAndHandles) {
  telemetry::Registry registry;
  auto a = registry.counter("a");
  auto a_again = registry.counter("a");  // same slot, second handle
  auto b = registry.counter("b");
  a.add(3);
  a_again.inc();
  b.add(10);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 4u);
  EXPECT_EQ(snap.counters.at("b"), 10u);
  EXPECT_EQ(registry.num_counters(), 2u);
}

TEST(Registry, NullHandlesAreInert) {
  telemetry::Registry::Counter counter;
  telemetry::Registry::Gauge gauge;
  EXPECT_FALSE(static_cast<bool>(counter));
  EXPECT_FALSE(static_cast<bool>(gauge));
  counter.inc();  // must not crash
  gauge.set(1.0);
}

TEST(Registry, ConcurrentIncrementsAreExact) {
  telemetry::Registry registry;
  auto counter = registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.snapshot().counters.at("hits"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, SnapshotMergeIsAssociative) {
  // Counters add and gauges are right-biased, so (a+b)+c == a+(b+c).
  using Snapshot = telemetry::Registry::Snapshot;
  const Snapshot a{{{"n", 1}, {"x", 5}}, {{"g", 1.0}}};
  const Snapshot b{{{"n", 2}}, {{"g", 2.0}, {"h", 7.0}}};
  const Snapshot c{{{"n", 4}, {"y", 9}}, {{"g", 3.0}}};

  Snapshot left = a;
  left.merge(b);
  left.merge(c);
  Snapshot bc = b;
  bc.merge(c);
  Snapshot right = a;
  right.merge(bc);

  EXPECT_EQ(left.counters, right.counters);
  EXPECT_EQ(left.gauges, right.gauges);
  EXPECT_EQ(left.counters.at("n"), 7u);
  EXPECT_DOUBLE_EQ(left.gauges.at("g"), 3.0);
}

// ---------------------------------------------------------------- sampler

TEST(Sampler, DisabledAndUnstartedNeverSample) {
  telemetry::Sampler off({.interval = 0});
  EXPECT_FALSE(off.enabled());
  off.start(0);
  EXPECT_EQ(off.next_sample_at(), telemetry::Sampler::kNoSample);

  telemetry::Sampler idle({.interval = 10});
  EXPECT_TRUE(idle.enabled());
  EXPECT_EQ(idle.next_sample_at(), telemetry::Sampler::kNoSample);
  idle.advance(1000);  // not started: no-op
  EXPECT_TRUE(idle.times().empty());
}

TEST(Sampler, GaugeAndRateCaptureOnTheGrid) {
  telemetry::Sampler sampler({.interval = units::kMillisecond});
  double gauge_value = 0.0;
  double bytes = 0.0;
  sampler.add_series("g", telemetry::Sampler::Kind::kGauge,
                     [&] { return gauge_value; });
  sampler.add_series("rate_bps", telemetry::Sampler::Kind::kRate,
                     [&] { return bytes; }, 8.0);
  sampler.start(0);
  EXPECT_EQ(sampler.next_sample_at(), units::kMillisecond);

  gauge_value = 42.0;
  bytes = 1000.0;  // 1000 bytes in the first 1 ms bucket
  sampler.advance(units::kMillisecond);
  gauge_value = 43.0;
  bytes = 1000.0;  // nothing new in the second bucket
  sampler.advance(2 * units::kMillisecond);

  ASSERT_EQ(sampler.times().size(), 2u);
  EXPECT_EQ(sampler.times()[0], units::kMillisecond);
  EXPECT_DOUBLE_EQ(sampler.values(0)[0], 42.0);
  EXPECT_DOUBLE_EQ(sampler.values(0)[1], 43.0);
  // 1000 bytes * 8 / 1e-3 s = 8 Mbit/s, then zero.
  EXPECT_DOUBLE_EQ(sampler.values(1)[0], 8e6);
  EXPECT_DOUBLE_EQ(sampler.values(1)[1], 0.0);
  EXPECT_EQ(sampler.find("rate_bps"), &sampler.values(1));
  EXPECT_EQ(sampler.find("nope"), nullptr);
}

TEST(Sampler, DownsamplingBoundsMemoryAndPreservesStructure) {
  constexpr SimTime kBase = 1000;
  constexpr std::size_t kCapacity = 8;
  telemetry::Sampler sampler({.interval = kBase, .capacity = kCapacity});
  double ticks = 0.0;  // gauge: grid index; rate probe: cumulative count
  sampler.add_series("idx", telemetry::Sampler::Kind::kGauge,
                     [&] { return ticks; });
  sampler.add_series("rate", telemetry::Sampler::Kind::kRate,
                     [&] { return ticks; });
  sampler.add_series("const", telemetry::Sampler::Kind::kGauge,
                     [] { return 42.0; });
  sampler.start(0);

  constexpr int kPoints = 1000;
  for (int i = 1; i <= kPoints; ++i) {
    ticks = i;
    sampler.advance(i * kBase);
  }

  // Bounded: never more than capacity points, and the interval is the base
  // spacing times a power of two.
  ASSERT_LE(sampler.times().size(), kCapacity);
  ASSERT_FALSE(sampler.times().empty());
  const SimTime interval = sampler.interval();
  ASSERT_GT(interval, 0);
  std::size_t rounds = 0;
  for (SimTime w = kBase; w < interval; w *= 2) ++rounds;
  EXPECT_EQ(kBase << rounds, interval);

  // Uniform grid ending at the last captured point.
  const auto& times = sampler.times();
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_EQ(times[i] - times[i - 1], interval);
  }
  EXPECT_EQ(times.back() % interval, 0);
  EXPECT_LE(times.back(), kPoints * kBase);
  EXPECT_GT(times.back() + interval, kPoints * kBase);

  // Gauge merging is mean-preserving over the captured points: a constant
  // gauge survives any number of rounds exactly, and a monotone gauge's
  // merged value stays inside its bucket's window.
  for (double v : sampler.values(2)) EXPECT_DOUBLE_EQ(v, 42.0);
  const auto& idx = sampler.values(0);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const double hi = static_cast<double>(times[i] / kBase);
    const double lo = hi - static_cast<double>(interval / kBase);
    EXPECT_GT(idx[i], lo) << i;
    EXPECT_LE(idx[i], hi) << i;
  }

  // The rate series integral (rate * bucket seconds) is preserved across
  // downsampling rounds: it must equal the total probe delta it covers.
  const auto& rate = sampler.values(1);
  double integral = 0.0;
  for (double r : rate) integral += r * units::to_seconds(interval);
  EXPECT_NEAR(integral, static_cast<double>(times.back() / kBase), 1e-6);
}

// ------------------------------------------------------------------ trace

// Minimal recursive-descent JSON validator (objects, arrays, strings,
// numbers, true/false/null) — enough to prove trace exports parse.
class MiniJson {
 public:
  explicit MiniJson(std::string_view text) : text_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

telemetry::Trace sample_trace() {
  telemetry::Trace trace;
  trace.instant("cable_fail", 1'000'000);
  trace.instant("repath", 2'500'000, /*arg=*/7);
  trace.complete("flow", 0, 5'000'000, /*arg=*/1);
  trace.complete("flow", 500, 1'000'000'000'000);  // > 1 s, exercises carry
  return trace;
}

TEST(Trace, ChromeJsonIsWellFormed) {
  const auto trace = sample_trace();
  const std::string json = trace.chrome_json();
  EXPECT_TRUE(MiniJson(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Timestamps are exact integer-decimal microseconds: 2'500'000 ps is
  // 2.5 us and must print without float formatting.
  EXPECT_NE(json.find("\"ts\":2.500000"), std::string::npos);

  // An empty trace is still a valid document.
  EXPECT_TRUE(MiniJson(telemetry::Trace().chrome_json()).valid());
}

TEST(Trace, BinaryRoundTrips) {
  const auto trace = sample_trace();
  std::string blob;
  trace.append_binary(blob);
  telemetry::Trace parsed;
  ASSERT_TRUE(telemetry::Trace::parse_binary(blob, parsed));
  EXPECT_EQ(parsed.names(), trace.names());
  ASSERT_EQ(parsed.size(), trace.size());
  EXPECT_EQ(parsed.events(), trace.events());

  // Corrupt magic is rejected.
  blob[0] ^= 0x5A;
  telemetry::Trace bad;
  EXPECT_FALSE(telemetry::Trace::parse_binary(blob, bad));
}

TEST(Trace, DisabledTraceRecordsNothing) {
  telemetry::Trace trace(/*enabled=*/false);
  PNET_TRACE_INSTANT(&trace, "x", 100);
  PNET_TRACE_COMPLETE(&trace, "y", 0, 50);
  telemetry::Trace* null_trace = nullptr;
  PNET_TRACE_INSTANT(null_trace, "z", 1);  // null-safe
  EXPECT_EQ(trace.size(), 0u);
}

// ----------------------------------------------- harness integration

core::SimHarness make_harness(telemetry::Telemetry* telemetry) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.hosts = 16;
  spec.parallelism = 2;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;
  return core::SimHarness(
      {.spec = spec, .policy = policy, .telemetry = telemetry});
}

// The sampler's "goodput_bps" series must reproduce what the
// analysis::GoodputProbe it replaced measured: same grid, same per-bucket
// delta * 8 / seconds formula — through a plane flap, where the curve
// actually moves.
TEST(TelemetryHarness, SamplerMatchesGoodputProbeThroughAFault) {
  constexpr SimTime kBucket = units::kMillisecond;
  constexpr SimTime kHorizon = 30 * units::kMillisecond;

  const auto scenario = [&](core::SimHarness& h) {
    sim::FaultInjector injector(h.events(), h.network());
    sim::FaultPlan plan;
    plan.flap_plane(5 * units::kMillisecond, 10 * units::kMillisecond, 1);
    injector.arm(plan);
    for (int i = 0; i < 8; ++i) {
      h.starter()(HostId{i}, HostId{15 - i}, 1 * units::kGB, 0, {});
    }
    h.run_until(kHorizon);
  };

  telemetry::Telemetry tel({.sample_every = kBucket});
  auto with_sampler = make_harness(&tel);
  scenario(with_sampler);

  auto with_probe = make_harness(nullptr);
  analysis::GoodputProbe probe(
      with_probe.events(),
      [&with_probe] {
        return with_probe.factory().total_delivered_bytes();
      },
      kBucket, kHorizon);
  probe.start(0);
  scenario(with_probe);

  const auto* goodput = tel.sampler.find("goodput_bps");
  ASSERT_NE(goodput, nullptr);
  ASSERT_EQ(tel.sampler.times().size(), probe.samples().size());
  ASSERT_GE(goodput->size(), 2u);
  for (std::size_t i = 0; i < goodput->size(); ++i) {
    EXPECT_EQ(tel.sampler.times()[i], probe.samples()[i].t_end) << i;
    const double expected = probe.samples()[i].goodput_bps;
    EXPECT_NEAR((*goodput)[i], expected,
                1e-9 * std::max(1.0, std::abs(expected)))
        << i;
  }
  // The curve really dipped: plane 1 died with no failover wired.
  double lo = 1e300;
  double hi = 0.0;
  for (double v : *goodput) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, hi * 0.9);
}

TEST(TelemetryHarness, CountersGaugesAndTraceCoverTheRun) {
  telemetry::Telemetry tel(
      {.sample_every = units::kMillisecond, .trace = true});
  auto h = make_harness(&tel);
  sim::FaultInjector injector(h.events(), h.network());
  sim::FaultPlan plan;
  plan.flap_plane(units::kMillisecond, units::kMillisecond, 1);
  injector.arm(plan);
  for (int i = 0; i < 4; ++i) {
    h.starter()(HostId{i}, HostId{15 - i}, 200'000, 0, {});
  }
  h.run();

  const auto snap = tel.registry.snapshot();
  EXPECT_EQ(snap.counters.at("flows_started"), 4u);
  EXPECT_EQ(snap.counters.at("flows_finished"), 4u);

  std::vector<std::string> names;
  for (const auto& event : tel.trace.events()) {
    names.push_back(tel.trace.names()[event.name]);
  }
  EXPECT_NE(std::count(names.begin(), names.end(), "flow_start"), 0);
  EXPECT_NE(std::count(names.begin(), names.end(), "flow"), 0);
  EXPECT_NE(std::count(names.begin(), names.end(), "plane_fail"), 0);
  EXPECT_NE(std::count(names.begin(), names.end(), "plane_recover"), 0);

  // Sampler series registered by the harness all share the grid.
  const auto n = tel.sampler.times().size();
  ASSERT_GT(n, 0u);
  for (std::size_t i = 0; i < tel.sampler.num_series(); ++i) {
    EXPECT_EQ(tel.sampler.values(i).size(), n) << tel.sampler.name(i);
  }
  EXPECT_NE(tel.sampler.find("queue_bytes"), nullptr);
  EXPECT_NE(tel.sampler.find("active_flows"), nullptr);
  EXPECT_NE(tel.sampler.find("plane0_util_bps"), nullptr);
  EXPECT_NE(tel.sampler.find("plane1_util_bps"), nullptr);
}

// ------------------------------------------------- run_until + finalize

TEST(TelemetryHarness, FinalizeLogsPartialRecordsForActiveFlows) {
  auto h = make_harness(nullptr);
  // One flow that finishes early, one bulk flow that cannot.
  h.starter()(HostId{0}, HostId{15}, 100'000, 0, {});
  h.starter()(HostId{1}, HostId{14}, 1 * units::kGB, 0, {});
  constexpr SimTime kDeadline = 10 * units::kMillisecond;
  h.run_until(kDeadline);

  // Regression: before finalize(), the logger silently under-reports the
  // still-active bulk flow.
  ASSERT_EQ(h.logger().records().size(), 1u);
  EXPECT_TRUE(h.logger().records()[0].completed);

  EXPECT_EQ(h.finalize(kDeadline), 1);
  ASSERT_EQ(h.logger().records().size(), 2u);
  const auto& partial = h.logger().records()[1];
  EXPECT_FALSE(partial.completed);
  EXPECT_EQ(partial.end, kDeadline);
  EXPECT_EQ(partial.bytes, 1 * units::kGB);
  EXPECT_GT(partial.delivered_bytes, 0u);
  EXPECT_LT(partial.delivered_bytes, partial.bytes);
  // Incomplete records carry no FCT.
  EXPECT_EQ(h.logger().fct_us().size(), 1u);
  // Finalize is idempotent.
  EXPECT_EQ(h.finalize(kDeadline), 0);
  EXPECT_EQ(h.logger().records().size(), 2u);
}

// ------------------------------------------------------ report determinism

std::string telemetry_report_json(int threads) {
  exp::ExperimentSpec spec;
  spec.name = "tm-cell";
  spec.engine = exp::EngineKind::kPacket;
  spec.topo.topo = topo::TopoKind::kFatTree;
  spec.topo.type = topo::NetworkType::kParallelHomogeneous;
  spec.topo.hosts = 8;
  spec.topo.parallelism = 2;
  spec.policy.policy = core::RoutingPolicy::kRoundRobin;
  spec.workload.flow_bytes = 200'000;
  spec.seed = 7;
  spec.trials = 3;

  exp::ExperimentSpec fsim = spec;
  fsim.name = "tm-fsim";
  fsim.engine = exp::EngineKind::kFsim;

  exp::Runner runner(threads);
  runner.set_telemetry(
      {.sample_every = 100 * units::kMicrosecond, .trace = true});
  exp::Report report("telemetry-determinism");
  for (auto& cell : runner.run({{spec, {}}, {fsim, {}}})) {
    report.add(std::move(cell));
  }
  return report.to_json(/*with_runtime=*/false);
}

TEST(TelemetryDeterminism, ReportIsByteIdenticalAcrossThreads) {
  const std::string one = telemetry_report_json(1);
  const std::string four = telemetry_report_json(4);
  EXPECT_EQ(one, four);
  // The telemetry block actually rode along.
  EXPECT_NE(one.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(one.find("\"goodput_bps\""), std::string::npos);
  EXPECT_NE(one.find("\"flows_started\""), std::string::npos);
}

TEST(TelemetryDeterminism, SamplerSeriesUnchangedByRouteCacheSwitch) {
  // PNET_ROUTE_CACHE=off swaps the routing memoization layer out; the
  // physical simulation — and hence every sampler series — must not move.
  const std::string on = telemetry_report_json(2);
  ASSERT_EQ(setenv("PNET_ROUTE_CACHE", "off", 1), 0);
  const std::string off = telemetry_report_json(2);
  unsetenv("PNET_ROUTE_CACHE");
  EXPECT_EQ(on, off);
}

}  // namespace
}  // namespace pnet
