// Tests for the data-plane memory layer (DESIGN.md §5h): slab packet pool
// recycling and growth, intrusive FIFO ordering under priority service,
// batched event dispatch against a reference heap, and the steady-state
// no-regrowth guarantee the harness audits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "sim/pipe.hpp"
#include "sim/queue.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pnet::sim {
namespace {

// ------------------------------------------------------------- slab pool

TEST(PacketPoolTest, RecycledPacketKeepsSlotIdentityAndResetsFields) {
  PacketPool pool;
  Packet* p = pool.allocate();
  const PacketRef ref = p->ref();
  ASSERT_FALSE(ref.null());

  // Dirty every mutable field of the first lifetime.
  OwnedRoute route({});
  p->next = p;
  p->route = &route;
  p->seq = 0xDEAD;
  p->ack_seq = 0xBEEF;
  p->ts_echo = 123;
  p->due = 456;
  p->flow = FlowId{7};
  p->size_bytes = 1500;
  p->next_hop = 3;
  p->subflow = 2;
  p->is_ack = true;
  p->retransmitted = true;
  p->ecn_ce = true;
  p->ecn_echo = true;
  p->trimmed = true;
  p->is_nack = true;

  pool.free(p);
  Packet* q = pool.allocate();

  // LIFO free list: the same slab slot comes back, same address and ref.
  EXPECT_EQ(q, p);
  EXPECT_EQ(q->ref(), ref);
  EXPECT_EQ(&pool.get(ref), q);

  // ...but as a fully reset packet (compare against a fresh default).
  const Packet fresh;
  EXPECT_EQ(q->next, fresh.next);
  EXPECT_EQ(q->route, fresh.route);
  EXPECT_EQ(q->seq, fresh.seq);
  EXPECT_EQ(q->ack_seq, fresh.ack_seq);
  EXPECT_EQ(q->ts_echo, fresh.ts_echo);
  EXPECT_EQ(q->due, fresh.due);
  EXPECT_EQ(q->flow.v, fresh.flow.v);
  EXPECT_EQ(q->size_bytes, fresh.size_bytes);
  EXPECT_EQ(q->next_hop, fresh.next_hop);
  EXPECT_EQ(q->subflow, fresh.subflow);
  EXPECT_EQ(q->is_ack, fresh.is_ack);
  EXPECT_EQ(q->retransmitted, fresh.retransmitted);
  EXPECT_EQ(q->ecn_ce, fresh.ecn_ce);
  EXPECT_EQ(q->ecn_echo, fresh.ecn_echo);
  EXPECT_EQ(q->trimmed, fresh.trimmed);
  EXPECT_EQ(q->is_nack, fresh.is_nack);
}

TEST(PacketPoolTest, CountersTrackLiveAndAllocatedAcrossSlabGrowth) {
  PacketPool pool;
  EXPECT_EQ(pool.allocated(), 0u);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.slabs(), 0u);

  // Allocate past one slab so a second is carved; addresses must be stable
  // (slab growth never moves existing packets) and refs resolvable.
  constexpr std::size_t kCount = PacketPool::kSlabPackets + 100;
  std::vector<Packet*> live;
  live.reserve(kCount);
  for (std::size_t i = 0; i < kCount; ++i) live.push_back(pool.allocate());

  EXPECT_EQ(pool.allocated(), kCount);
  EXPECT_EQ(pool.live(), kCount);
  EXPECT_EQ(pool.slabs(), 2u);
  EXPECT_EQ(pool.slab_bytes(), 2 * PacketPool::kSlabPackets * sizeof(Packet));
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(&pool.get(live[i]->ref()), live[i]);
  }

  // Freeing shrinks live() but never allocated() (slots stay carved).
  for (std::size_t i = 0; i < 100; ++i) pool.free(live[i]);
  EXPECT_EQ(pool.live(), kCount - 100);
  EXPECT_EQ(pool.allocated(), kCount);

  // Recycling reuses the free list without carving new slabs.
  for (std::size_t i = 0; i < 100; ++i) pool.allocate();
  EXPECT_EQ(pool.live(), kCount);
  EXPECT_EQ(pool.allocated(), kCount);
  EXPECT_EQ(pool.slabs(), 2u);
}

// ------------------------------------------- intrusive FIFOs in the queue

/// Terminal sink recording delivery order by packet seq.
class SeqRecorder : public PacketSink {
 public:
  explicit SeqRecorder(PacketPool& pool) : pool_(pool) {}
  void receive(Packet& packet) override {
    seqs.push_back(packet.seq);
    pool_.free(&packet);
  }
  std::vector<std::uint64_t> seqs;

 private:
  PacketPool& pool_;
};

TEST(QueueIntrusiveFifoTest, PriorityAcksOvertakeDataButStayFifoWithinClass) {
  EventQueue events;
  PacketPool pool;
  SeqRecorder sink(pool);
  // priority_acks on; generous buffer so nothing drops.
  Queue queue(events, pool, /*rate_bps=*/1e9, /*buffer_bytes=*/1 << 20,
              /*ecn_threshold_bytes=*/0, /*priority_acks=*/true);
  OwnedRoute route({&queue, &sink});

  // Interleave data (even seq) and ACKs (odd seq) while the queue is busy:
  // data 0 enters service first (committed, no preemption), then every
  // queued ACK must overtake every queued data packet, each class in FIFO
  // order.
  auto inject = [&](std::uint64_t seq, bool ack) {
    Packet* p = pool.allocate();
    p->seq = seq;
    p->is_ack = ack;
    p->size_bytes = ack ? 64 : 1500;
    p->route = &route;
    p->forward();
  };
  inject(0, false);
  inject(2, false);
  inject(1, true);
  inject(4, false);
  inject(3, true);
  inject(5, true);
  events.run();

  const std::vector<std::uint64_t> want = {0, 1, 3, 5, 2, 4};
  EXPECT_EQ(sink.seqs, want);
  EXPECT_EQ(pool.live(), 0u);
}

// -------------------------------------------------- batched dispatch fuzz

/// Reference model: the dispatch order of (when, seq) entries must equal a
/// stable sort by (when, then scheduling order), regardless of heap arity
/// or timestamp batching.
TEST(EventQueueFuzzTest, BatchedDispatchMatchesStableSortReference) {
  class Recorder : public EventSource {
   public:
    Recorder(std::vector<int>& log, int id) : log_(log), id_(id) {}
    void do_next_event() override { log_.push_back(id_); }

   private:
    std::vector<int>& log_;
    int id_;
  };

  Rng rng(0xF0F0'5EED'1234ULL);
  for (int round = 0; round < 50; ++round) {
    EventQueue events;
    std::vector<int> log;
    std::vector<Recorder> sources;
    sources.reserve(400);
    // Few distinct timestamps => long same-instant batches, the case the
    // drain loop in run_batch() handles.
    std::vector<std::pair<SimTime, int>> scheduled;
    const int n = 50 + static_cast<int>(rng.next_u64() % 350);
    for (int i = 0; i < n; ++i) {
      const auto when = static_cast<SimTime>(rng.next_u64() % 8);
      sources.emplace_back(log, i);
      scheduled.emplace_back(when, i);
    }
    for (int i = 0; i < n; ++i) {
      events.schedule_at(scheduled[i].first, &sources[i]);
    }
    events.run();

    std::vector<std::pair<SimTime, int>> want = scheduled;
    std::stable_sort(want.begin(), want.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    ASSERT_EQ(log.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(log[i], want[i].second) << "round " << round << " pos " << i;
    }
  }
}

TEST(EventQueueFuzzTest, SameInstantReschedulesDispatchAfterPendingPeers) {
  // A handler scheduling at the batch timestamp gets a larger seq, so it
  // runs after everything already pending at that instant — the property
  // that makes batched dispatch byte-identical to one-at-a-time.
  class Chain : public EventSource {
   public:
    Chain(EventQueue& events, std::vector<int>& log, int id, int hops)
        : events_(events), log_(log), id_(id), hops_(hops) {}
    void do_next_event() override {
      log_.push_back(id_);
      if (hops_-- > 0) events_.schedule_in(0, this);
    }

   private:
    EventQueue& events_;
    std::vector<int>& log_;
    int id_;
    int hops_;
  };

  EventQueue events;
  std::vector<int> log;
  Chain a(events, log, 1, 2);
  Chain b(events, log, 2, 2);
  events.schedule_at(5, &a);
  events.schedule_at(5, &b);
  events.run();
  // Round-robin, not run-to-completion: each reschedule queues behind the
  // other chain's pending entry.
  const std::vector<int> want = {1, 2, 1, 2, 1, 2};
  EXPECT_EQ(log, want);
  EXPECT_EQ(events.dispatched(), 6u);
}

// --------------------------------------------------- steady-state growth

TEST(EventQueueReserveTest, NoRegrowthWhenReservationCoversLoad) {
  class SelfScheduler : public EventSource {
   public:
    explicit SelfScheduler(EventQueue& events) : events_(events) {}
    void do_next_event() override {
      if (left_-- > 0) events_.schedule_in(3, this);
    }
    int left_ = 1000;

   private:
    EventQueue& events_;
  };

  EventQueue events;
  events.reserve(64);
  ASSERT_TRUE(events.reserved());
  std::vector<SelfScheduler> sources(32, SelfScheduler(events));
  for (auto& s : sources) events.schedule_in(1, &s);
  events.run();
  // 32 concurrent entries never exceed the 64-slot reservation: the heap
  // must not have reallocated after reserve().
  EXPECT_EQ(events.regrowths(), 0u);
  EXPECT_GE(events.capacity(), 64u);
}

TEST(EventQueueReserveTest, RegrowthPastReservationIsCounted) {
  class Nop : public EventSource {
   public:
    void do_next_event() override {}
  };
  EventQueue events;
  events.reserve(4);
  Nop nop;
  for (int i = 0; i < 100; ++i) events.schedule_in(i, &nop);
  EXPECT_GT(events.regrowths(), 0u);
  events.run();
}

// Pool + queue + pipe end to end: after warm-up, recirculating the same
// packets must not carve new slabs (the zero-allocation steady state).
TEST(DataPlaneSteadyStateTest, RecirculationCarvesNoNewSlabs) {
  EventQueue events;
  PacketPool pool;
  SeqRecorder sink(pool);
  Queue queue(events, pool, 10e9, 1 << 20);
  Pipe pipe(events, units::kMicrosecond);
  OwnedRoute route({&queue, &pipe, &sink});

  auto burst = [&](int count) {
    for (int i = 0; i < count; ++i) {
      Packet* p = pool.allocate();
      p->size_bytes = 1500;
      p->route = &route;
      p->forward();
    }
    events.run();
  };

  burst(256);  // warm-up carves the working set
  const std::size_t allocated = pool.allocated();
  const std::size_t slabs = pool.slabs();
  for (int round = 0; round < 20; ++round) burst(256);
  EXPECT_EQ(pool.allocated(), allocated);
  EXPECT_EQ(pool.slabs(), slabs);
  EXPECT_EQ(pool.live(), 0u);
}

}  // namespace
}  // namespace pnet::sim
