// The §3.4 host API: tag flows with a traffic class and let the P-Net
// stack pick planes/paths per class — "low-latency" single-shortest-path
// for RPCs, "high-throughput" MPTCP for bulk, and a default that dispatches
// on flow size.
//
// Run:  ./example_traffic_classes
#include <cstdio>

#include "core/harness.hpp"
#include "core/interfaces.hpp"

using namespace pnet;

int main() {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kJellyfish;
  spec.type = topo::NetworkType::kParallelHeterogeneous;
  spec.hosts = 64;
  spec.parallelism = 4;

  // The harness's own policy is unused here; HostInterfaces builds one
  // selector per traffic class over the same simulated fabric.
  core::PolicyConfig unused;
  core::SimHarness harness({.spec = spec, .policy = unused});
  core::HostInterfaces interfaces(harness.net(), harness.factory(),
                                  /*k=*/4);

  std::printf("one 4-plane heterogeneous Jellyfish, three traffic classes:"
              "\n\n");

  interfaces.send(core::TrafficClass::kLowLatency, HostId{0}, HostId{63},
                  1'500, 0, [](const sim::FlowRecord& r) {
                    std::printf("  low-latency RPC:     %7.1f us on a "
                                "%d-hop single path\n",
                                units::to_microseconds(r.end - r.start),
                                r.hops);
                  });
  interfaces.send(core::TrafficClass::kHighThroughput, HostId{1},
                  HostId{62}, 64'000'000, 0, [](const sim::FlowRecord& r) {
                    std::printf("  high-throughput bulk:%7.1f us over %d "
                                "MPTCP subflows\n",
                                units::to_microseconds(r.end - r.start),
                                r.subflows);
                  });
  interfaces.send(core::TrafficClass::kDefault, HostId{2}, HostId{61},
                  200'000'000, 0, [](const sim::FlowRecord& r) {
                    std::printf("  default 200 MB flow: %7.1f us — the "
                                "stack chose %d subflow(s) by size\n",
                                units::to_microseconds(r.end - r.start),
                                r.subflows);
                  });
  interfaces.send(core::TrafficClass::kDefault, HostId{3}, HostId{60},
                  20'000, 0, [](const sim::FlowRecord& r) {
                    std::printf("  default 20 kB flow:  %7.1f us — the "
                                "stack chose %d subflow(s) by size\n",
                                units::to_microseconds(r.end - r.start),
                                r.subflows);
                  });
  harness.run();

  std::printf("\nand when plane 2 fails, every interface reroutes new "
              "flows automatically:\n");
  harness.network().set_plane_failed(2, true);
  interfaces.set_plane_failed(2, true);
  interfaces.send(core::TrafficClass::kHighThroughput, HostId{4},
                  HostId{59}, 8'000'000, harness.events().now(),
                  [](const sim::FlowRecord& r) {
                    std::printf("  post-failure bulk:   %7.1f us over %d "
                                "subflows (plane 2 avoided)\n",
                                units::to_microseconds(r.end - r.start),
                                r.subflows);
                  });
  harness.run();
  return 0;
}
