// Performance isolation with dataplanes (paper §7): pin tenants to
// disjoint planes of one P-Net and their traffic cannot interfere — a
// property a serial network can only approximate with QoS machinery.
//
// Run:  ./example_performance_isolation
//
// Tenant A runs latency-critical 20 kB RPCs; tenant B runs bulk 20 MB
// elephants. We measure A's p99 with B idle and with B blasting, twice:
// once sharing all planes, once with A pinned to plane 0 and B to planes
// 1-3.
#include <cstdio>

#include "core/harness.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"
#include "workload/patterns.hpp"

using namespace pnet;

namespace {

double tenant_a_p99(bool pinned, bool tenant_b_active) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = 16;
  spec.parallelism = 4;

  core::PolicyConfig policy_a;
  policy_a.policy = core::RoutingPolicy::kRoundRobin;
  if (pinned) policy_a.allowed_planes = {0};
  core::SimHarness harness({.spec = spec, .policy = policy_a});

  core::PolicyConfig policy_b;
  policy_b.policy = core::RoutingPolicy::kRoundRobin;
  if (pinned) policy_b.allowed_planes = {1, 2, 3};
  core::PathSelector selector_b(harness.net(), policy_b);
  auto starter_b = selector_b.make_starter(harness.factory());

  if (tenant_b_active) {
    for (int i = 0; i < 8; ++i) {
      starter_b(HostId{i}, HostId{15 - i}, 20'000'000, 0, {});
    }
  }

  workload::ClosedLoopApp::Config config;
  config.rounds_per_worker = 30;
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [](Rng&) { return std::uint64_t{20'000}; });
  app.start(0);
  harness.run();
  auto v = app.completion_times_us();
  return percentile(v, 99);
}

}  // namespace

int main() {
  std::printf("tenant A: 20 kB RPCs, tenant B: 20 MB elephants, one 4-plane "
              "P-Net\n\n");
  std::printf("%-34s %-16s %-16s\n", "", "B idle", "B blasting");
  for (bool pinned : {false, true}) {
    const double quiet = tenant_a_p99(pinned, false);
    const double busy = tenant_a_p99(pinned, true);
    std::printf("%-34s %8.1f us     %8.1f us  (%+.0f%%)\n",
                pinned ? "planes partitioned (A:0, B:1-3)"
                       : "planes shared (both on all 4)",
                quiet, busy, 100.0 * (busy / quiet - 1.0));
  }
  std::printf("\npartitioning the planes turns \"noisy neighbour\" into a "
              "non-event:\nthe paper's §7 strict performance isolation.\n");
  return 0;
}
