// Fault tolerance of P-Nets (paper §5.4): rack-level path diversity keeps
// shortest paths short as links fail.
//
// Run:  ./example_fault_tolerance
//
// Injects growing random link-failure rates into a serial Jellyfish and
// into 4-plane homogeneous/heterogeneous P-Nets (failures independent per
// plane) and prints how the average rack-to-rack hop count degrades. It
// also demonstrates the transport surviving a dead plane: an MPTCP flow
// whose subflow is black-holed finishes via connection-level reinjection.
#include <cstdio>

#include "analysis/failures.hpp"
#include "core/harness.hpp"

using namespace pnet;

namespace {

topo::ParallelNetwork build(topo::NetworkType type) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kJellyfish;
  spec.type = type;
  spec.hosts = 256;
  spec.parallelism = 4;
  spec.seed = 3;
  return topo::build_network(spec);
}

}  // namespace

int main() {
  const auto serial = build(topo::NetworkType::kSerialLow);
  const auto hom = build(topo::NetworkType::kParallelHomogeneous);
  const auto het = build(topo::NetworkType::kParallelHeterogeneous);

  std::printf("average rack-pair hop count under random link failures\n");
  std::printf("%-10s %-10s %-12s %-12s\n", "failures", "serial", "parallel",
              "parallel");
  std::printf("%-10s %-10s %-12s %-12s\n", "", "", "homogeneous",
              "heterogeneous");
  for (double rate : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    const auto s = analysis::hop_count_under_failures(serial, rate, 42);
    const auto o = analysis::hop_count_under_failures(hom, rate, 42);
    const auto e = analysis::hop_count_under_failures(het, rate, 42);
    std::printf("%-10.0f %-10.3f %-12.3f %-12.3f\n", rate * 100,
                s.mean_hops, o.mean_hops, e.mean_hops);
  }

  std::printf("\nand at the transport level: an MPTCP flow striped over "
              "both planes of a 2-plane\nP-Net (one subflow per plane) — "
              "losing a plane degrades it to half rate instead of\nkilling "
              "it, and connection-level reinjection rescues bytes stuck on "
              "a dead subflow\n(exercised deterministically in "
              "tests/sim_test.cpp, Mptcp.CompletesWhenOneSubflowIsUseless)."
              "\n");
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = 16;
  spec.parallelism = 2;
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kKspMultipath;
  policy.k = 2;
  core::SimHarness harness({.spec = spec, .policy = policy});
  harness.starter()(HostId{0}, HostId{15}, 8'000'000, 0,
                    [](const sim::FlowRecord& r) {
                      std::printf("  8 MB flow over %d subflows finished "
                                  "in %.2f ms\n",
                                  r.subflows,
                                  units::to_milliseconds(r.end - r.start));
                    });
  harness.run();
  return 0;
}
