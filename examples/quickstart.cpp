// Quickstart: build a Parallel Dataplane Network, send some traffic, and
// look at what the library gives you back.
//
// Run:  ./example_quickstart
//
// The program builds a 2-plane homogeneous P-Net (two parallel fat trees,
// 100G links each — Fig 4 of the paper), runs one bulk MPTCP flow striped
// over both planes plus a latency-sensitive single-path flow, and prints
// what happened.
#include <cstdio>

#include "core/harness.hpp"

using namespace pnet;

int main() {
  // 1. Describe the network: 16 hosts, each attached to BOTH planes.
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kFatTree;
  spec.type = topo::NetworkType::kParallelHomogeneous;
  spec.hosts = 16;
  spec.parallelism = 2;        // N = 2 dataplanes
  spec.base_rate_bps = 100e9;  // 100G links everywhere

  // 2. Pick how hosts choose planes/paths. The size-threshold policy is
  //    the paper's recommendation (§5.1.2): small flows take the single
  //    shortest path, bulk flows stripe MPTCP subflows over the K
  //    globally-shortest paths across the planes.
  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kSizeThreshold;
  policy.k = 2;  // one subflow per plane
  policy.multipath_cutoff_bytes = 1'000'000;  // demo-sized cutoff

  // 3. The harness wires topology + routing + packet simulator together.
  core::SimHarness harness({.spec = spec, .policy = policy});

  // 4. Launch flows through the policy-aware starter.
  std::printf("launching a 64 MB bulk flow and a 20 kB RPC-sized flow...\n");
  harness.starter()(HostId{0}, HostId{15}, 64'000'000, 0,
                    [](const sim::FlowRecord& r) {
                      std::printf("  bulk flow done:  %.1f ms over %d "
                                  "MPTCP subflows\n",
                                  units::to_milliseconds(r.end - r.start),
                                  r.subflows);
                    });
  harness.starter()(HostId{3}, HostId{12}, 20'000, 0,
                    [](const sim::FlowRecord& r) {
                      std::printf("  small flow done: %.1f us on a single "
                                  "%d-hop path\n",
                                  units::to_microseconds(r.end - r.start),
                                  r.hops);
                    });

  // 5. Run the discrete-event simulation to completion.
  harness.run();

  // 6. Everything is also recorded in the flow logger.
  std::printf("\nflow log:\n");
  for (const auto& r : harness.logger().records()) {
    std::printf("  flow %d: %d -> %d, %llu bytes, fct %.1f us, "
                "%d subflow(s), %d retransmits\n",
                r.id.v, r.src.v, r.dst.v,
                static_cast<unsigned long long>(r.bytes),
                units::to_microseconds(r.end - r.start), r.subflows,
                r.retransmits);
  }

  const double ideal_ms = 64e6 * 8.0 / (2 * 100e9) * 1e3;
  std::printf("\n(two 100G planes give the bulk flow an ideal time of "
              "%.1f ms; a single\n100G plane would need twice that)\n",
              ideal_ms);
  return 0;
}
