// Heterogeneous P-Nets as a latency play (paper §3.2, §5.2.1).
//
// Run:  ./example_rpc_latency
//
// Builds a serial Jellyfish and a 4-plane heterogeneous parallel Jellyfish
// from the same equipment, runs MTU-sized ping-pong RPCs on both through
// the "low-latency" shortest-plane interface, and shows the completion-time
// distribution shift: with four independently random planes, most rack
// pairs find a shorter path on SOME plane.
#include <cstdio>

#include "core/harness.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"
#include "workload/patterns.hpp"

using namespace pnet;

namespace {

std::vector<double> run(topo::NetworkType type) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kJellyfish;
  spec.type = type;
  spec.hosts = 96;
  spec.parallelism = 4;
  spec.seed = 7;

  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kShortestPlane;  // the low-latency API
  core::SimHarness harness({.spec = spec, .policy = policy});

  workload::ClosedLoopApp::Config config;
  config.concurrent_per_host = 1;
  config.response_bytes = 1500;   // ping-pong
  config.rounds_per_worker = 50;
  workload::ClosedLoopApp app(
      harness.starter(), harness.all_hosts(), config,
      [&](HostId src, Rng& rng) {
        return workload::random_destination(harness.net().num_hosts(), src,
                                            rng);
      },
      [](Rng&) { return std::uint64_t{1500}; });
  app.start(0);
  harness.run();
  return app.completion_times_us();
}

}  // namespace

int main() {
  std::printf("running 1500B RPCs on serial vs heterogeneous parallel "
              "Jellyfish...\n\n");
  const auto serial = run(topo::NetworkType::kSerialLow);
  const auto het = run(topo::NetworkType::kParallelHeterogeneous);

  auto report = [](const char* name, std::vector<double> v) {
    const auto ps = percentiles(v, {50, 90, 99});
    std::printf("%-28s median %6.1f us   p90 %6.1f us   p99 %6.1f us\n",
                name, ps[0], ps[1], ps[2]);
    return ps[0];
  };
  const double base = report("serial Jellyfish:", serial);
  const double fast = report("4-plane heterogeneous P-Net:", het);
  std::printf("\nthe heterogeneous P-Net's median RPC is %.0f%% of the "
              "serial one —\nshorter paths exist on *some* plane for most "
              "host pairs (paper Table 2: ~80%%).\n",
              100.0 * fast / base);
  return 0;
}
