// Hadoop-style sort on a P-Net (paper §5.2.2).
//
// Run:  ./example_hadoop_sort
//
// Simulates the 3-stage sort job (read input -> shuffle -> write output) on
// a serial 100G Jellyfish and on its 4-plane parallel homogeneous P-Net
// built from the same link speed, then compares per-stage completion. The
// dense m x r shuffle is where extra planes pay off most.
#include <cstdio>

#include "core/harness.hpp"
#include "workload/apps.hpp"

using namespace pnet;

namespace {

workload::HadoopJob::Config job_config() {
  workload::HadoopJob::Config config;
  config.num_mappers = 8;
  config.num_reducers = 8;
  config.total_bytes = 1'000'000'000;  // 1 GB sort, demo-sized
  config.block_bytes = 32'000'000;
  config.concurrent_blocks = 4;
  return config;
}

double run(topo::NetworkType type, const char* label) {
  topo::NetworkSpec spec;
  spec.topo = topo::TopoKind::kJellyfish;
  spec.type = type;
  spec.hosts = 64;
  spec.parallelism = 4;

  core::PolicyConfig policy;
  policy.policy = core::RoutingPolicy::kRoundRobin;  // §3.4 default LB
  sim::SimConfig sim_config;
  sim_config.queue_buffer_bytes = 400 * 1500;
  core::SimHarness harness({.spec = spec, .policy = policy, .sim_config = sim_config});

  workload::HadoopJob job(harness.starter(), harness.all_hosts(),
                          job_config());
  job.start(0);
  harness.run();

  const char* stages[] = {"read input", "shuffle", "write output"};
  std::printf("%s\n", label);
  double total = 0.0;
  for (int stage = 0; stage < 3; ++stage) {
    double worst = 0.0;
    for (double s : job.stage_worker_times_s(stage)) {
      worst = std::max(worst, s);
    }
    std::printf("  stage %d (%-12s): slowest worker %.1f ms\n", stage + 1,
                stages[stage], worst * 1e3);
    total += worst;
  }
  std::printf("  job critical path: %.1f ms\n\n", total * 1e3);
  return total;
}

}  // namespace

int main() {
  std::printf("sorting 1 GB across 8 mappers / 8 reducers...\n\n");
  const double serial = run(topo::NetworkType::kSerialLow,
                            "serial 1 x 100G Jellyfish:");
  const double parallel = run(topo::NetworkType::kParallelHomogeneous,
                              "parallel 4 x 100G P-Net:");
  std::printf("the P-Net finishes the job in %.0f%% of the serial time.\n",
              100.0 * parallel / serial);
  return 0;
}
