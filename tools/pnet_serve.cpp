// pnet-serve — daemonized experiment query service.
//
// Accepts newline-delimited exp::ExperimentSpec JSON over a Unix-domain
// socket (and optionally TCP), runs each spec on a persistent engine pool
// with warm route-cache arenas, and replies with the deterministic result
// JSON. Identical specs are served from the spec-hash result cache or
// coalesced onto one in-flight execution.
//
//   ./pnet-serve --socket=/tmp/pnet.sock --workers=2 &
//   printf '{"name":"q1","engine":"fsim","topo":{"hosts":64}}' |
//     nc -U /tmp/pnet.sock
//   printf '{"stats":true}' | nc -U /tmp/pnet.sock
//
// SIGTERM/SIGINT drain gracefully: in-flight and queued queries finish
// (their clients get full responses), new ones are rejected retryable,
// telemetry is flushed to stderr, then the process exits 0.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <exception>
#include <string>

#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/flags.hpp"

namespace {

// Signal -> self-pipe bridge; the handler may only write(2).
int g_notify_fd = -1;

void on_signal(int) {
  if (g_notify_fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_notify_fd, &byte, 1);
  }
}

constexpr const char kUsage[] =
    "  --socket PATH     unix socket path (default /tmp/pnet.sock; '' = off)\n"
    "  --port N          also listen on 127.0.0.1:N (default off)\n"
    "  --workers N       engine pool threads (default 2; 0 = hw threads)\n"
    "  --queue-limit N   admission queue bound (default 64)\n"
    "  --deadline-ms D   default per-query deadline, 0 = none (default 0)\n"
    "  --cache-mb N      result cache budget in MiB (default 64; 0 = off)\n"
    "  --max-hosts N     largest accepted topo.hosts (default 1024)\n"
    "  --max-trials N    largest accepted trials (default 64)\n"
    "  --max-rounds N    largest accepted workload.rounds (default 256)\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace pnet;

  const Flags flags(argc, argv);
  flags.handle_usage(kUsage);

  serve::ServiceOptions service_options;
  service_options.workers = flags.get_int("workers", 2);
  service_options.queue_limit =
      static_cast<std::size_t>(flags.get_int("queue-limit", 64));
  service_options.default_deadline_ms = flags.get_double("deadline-ms", 0.0);
  service_options.cache_bytes =
      static_cast<std::size_t>(flags.get_i64("cache-mb", 64)) << 20;
  service_options.max_hosts = flags.get_int("max-hosts", 1024);
  service_options.max_trials = flags.get_int("max-trials", 64);
  service_options.max_rounds = flags.get_int("max-rounds", 256);

  serve::ServerOptions server_options;
  server_options.unix_path = flags.get("socket", "/tmp/pnet.sock");
  server_options.tcp_port = flags.get_int("port", 0);

  try {
    serve::Service service(service_options);
    serve::Server server(service, server_options);

    g_notify_fd = server.notify_fd();
    struct sigaction sa {};
    sa.sa_handler = on_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    std::fprintf(stderr, "pnet-serve: %d workers, listening on %s%s\n",
                 service.workers(),
                 server_options.unix_path.empty()
                     ? "(no unix socket)"
                     : server_options.unix_path.c_str(),
                 server_options.tcp_port != 0 ? " + tcp" : "");
    server.run();  // blocks until SIGTERM/SIGINT; drains before returning

    // Final telemetry flush: the full stats document, one line on stderr.
    std::fprintf(stderr, "pnet-serve: drained; final stats:\n%s\n",
                 service.stats_json().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pnet-serve: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
