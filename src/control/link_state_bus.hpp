// One observer interface for fabric link-state events.
//
// Before this bus existed the same sim::FaultEvent stream reached three
// consumers through three bespoke hookups: core::HealthMonitor listened on
// the FaultInjector directly, routing::RouteCache invalidation was wired by
// whichever bench remembered to do it, and nothing at all could observe the
// fluid simulator's fabric. The bus is the single subscription point:
// sources publish (a packet-sim FaultInjector, a fluid simulator's fabric
// schedule, or a test calling publish() by hand) and every observer sees
// every event, in subscription order, on the simulation thread.
//
// Determinism: the bus adds no state of its own beyond counters — delivery
// is synchronous and ordered, so a run's behavior is a pure function of the
// (simulated-time-ordered) event stream, never of wall clock or thread
// interleaving.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fsim/fluid.hpp"
#include "routing/route_cache.hpp"
#include "sim/faults.hpp"

namespace pnet::core {
class HealthMonitor;
}

namespace pnet::control {

class LinkStateBus {
 public:
  using Observer = std::function<void(const sim::FaultEvent&)>;

  /// Subscribes `observer`; it sees every subsequent publish, in
  /// subscription order. Subscribe everything before the run starts.
  void subscribe(Observer observer);

  /// HealthMonitor convenience: forwards every event to
  /// HealthMonitor::on_fault (the detection-delay intake).
  void subscribe_health_monitor(core::HealthMonitor& monitor);

  /// RouteCache convenience: cable fail/recover events invalidate cached
  /// entries crossing the link (RouteCache::set_link_state). Plane-scoped
  /// and degrade events are ignored — plane health is a selection-time
  /// filter, and degraded cables still carry traffic.
  void subscribe_route_cache(routing::RouteCache& cache);

  /// Wires the packet-sim fault injector as a source: every applied fault
  /// is re-published here.
  void attach(sim::FaultInjector& injector);

  /// Wires the fluid simulator's fabric as a source: plane down/up events
  /// arrive as kPlaneFail/kPlaneRecover.
  void attach(fsim::FluidSimulator& fluid);

  /// Delivers one event to every observer (also the injection point for
  /// tests and hand-rolled sources).
  void publish(const sim::FaultEvent& event);

  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::size_t num_observers() const {
    return observers_.size();
  }

 private:
  std::vector<Observer> observers_;
  std::uint64_t published_ = 0;
};

}  // namespace pnet::control
