// Online adaptive control plane (ROADMAP item 4, in the spirit of
// MPTCP-aware SDN, arXiv 1511.09295).
//
// A Controller runs on a fixed control-loop cadence inside either engine,
// observes per-plane utilization / queue depth / route-cache invalidations
// through a private telemetry::Sampler (the pull-based read() API is its
// input path), learns confirmed plane state from the LinkStateBus after a
// detection delay, and actuates through a Dataplane: masking dead planes,
// biasing new-flow placement with inverse-load weights, and re-pinning live
// flows from the hottest usable plane to the coolest one when the load
// ratio crosses a threshold.
//
// Determinism rules (DESIGN.md §5j): every decision is a pure function of
// (simulated time, sampled state at grid points, the fabric event stream).
// Ticks run as simulation events — on the packet engine's control queue
// (barrier epochs when sharded), inside the fluid event loop otherwise —
// so reports stay byte-identical at every --threads / --sim-threads value.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/faults.hpp"
#include "telemetry/sampler.hpp"
#include "util/units.hpp"

namespace pnet::control {

class LinkStateBus;

enum class ControllerMode : std::uint8_t {
  /// No control plane at all — the seed behavior, byte-identical to it.
  kOff,
  /// The paper's host-local reaction only: transport-driven repath
  /// (PathSelector::enable_repath) with no global observer. The ablation
  /// baseline.
  kHostLocal,
  /// Host-local reaction plus the global Controller loop.
  kCentralized,
};

[[nodiscard]] const char* to_string(ControllerMode mode);
/// Registry mirror of core::policy_from_string: unknown names return
/// nullopt, callers fail fast listing mode_names().
[[nodiscard]] std::optional<ControllerMode> mode_from_string(
    std::string_view name);
[[nodiscard]] std::string mode_names();

struct ControllerConfig {
  ControllerMode mode = ControllerMode::kOff;
  /// Control-loop period (also the controller's sampling grid interval).
  SimTime cadence = units::kMillisecond;
  /// Fabric-event confirmation delay before the controller acts on a
  /// plane transition (models controller-to-fabric signaling latency).
  SimTime detect_delay = units::kMillisecond;
  /// Rebalance when max plane load > threshold x min plane load.
  double imbalance_threshold = 1.25;
  /// Repin budget per tick (0 disables flow moves; weights still adapt).
  int max_repins_per_tick = 8;
  /// Load = mean over the last `window` sample buckets.
  int window = 4;

  /// Any control-plane behavior at all (gates spec serialization and
  /// engine wiring; kOff keeps runs byte-identical to the seed).
  [[nodiscard]] bool active() const { return mode != ControllerMode::kOff; }
  /// The global loop itself (a Controller object is built only for this).
  [[nodiscard]] bool centralized() const {
    return mode == ControllerMode::kCentralized;
  }
  /// Empty when valid, else a one-line reason.
  [[nodiscard]] std::string validate() const;
};

/// What the Controller observes and actuates, one implementation per
/// engine (control::PacketDataplane, control::FluidDataplane). All calls
/// happen on the simulation thread at tick/detection time.
class Dataplane {
 public:
  virtual ~Dataplane() = default;

  [[nodiscard]] virtual int num_planes() const = 0;
  /// Cumulative bytes moved over `plane` — monotone; the controller
  /// samples it as a rate.
  [[nodiscard]] virtual double plane_bytes(int plane) const = 0;
  /// Bytes currently queued on `plane` (0 for models without queues).
  [[nodiscard]] virtual double plane_queue_bytes(int plane) const = 0;
  /// Route-cache invalidations so far — the churn-guard input.
  [[nodiscard]] virtual std::uint64_t route_invalidations() const = 0;

  /// Confirmed (post-detection-delay) plane transition: mask the plane out
  /// of new-flow routing and evacuate (or revive) live flows.
  virtual void on_plane_detected(int plane, bool down) = 0;
  /// New-flow placement bias, indexed by plane (empty = uniform).
  virtual void set_plane_weights(const std::vector<double>& weights) = 0;
  /// Moves up to `max_flows` live flows from one plane to another;
  /// returns how many actually moved.
  virtual int repin(int from_plane, int to_plane, int max_flows) = 0;
};

class Controller {
 public:
  /// `dataplane` must outlive the controller. `config.mode` is not
  /// consulted here — whoever constructs a Controller has already decided
  /// to run one.
  Controller(const ControllerConfig& config, Dataplane& dataplane);

  /// Subscribes the fabric intake to `bus` (keeps a reference — the bus
  /// must outlive the controller).
  void observe(LinkStateBus& bus);
  /// Raw fabric-event intake: queued, acted on `detect_delay` later.
  void on_fabric_event(const sim::FaultEvent& event);

  /// Arms the sampling grid; the first tick belongs at `at` + cadence.
  void start(SimTime at);
  /// One control decision at simulated time `now`. The engine calls this
  /// on its control-loop cadence.
  void tick(SimTime now);

  /// Plane state as confirmed by the controller (after detect_delay).
  [[nodiscard]] bool plane_usable(int plane) const {
    return !plane_down_[static_cast<std::size_t>(plane)];
  }

  // Decision counters, folded into experiment reports.
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] std::uint64_t repins() const { return repins_; }
  [[nodiscard]] std::uint64_t plane_events() const { return plane_events_; }
  [[nodiscard]] std::uint64_t churn_skips() const { return churn_skips_; }

 private:
  struct PendingEvent {
    SimTime due = 0;
    sim::FaultEvent event;
  };

  /// Windowed per-plane load: mean sampled utilization plus the queued
  /// backlog expressed as bits-per-cadence of drain pressure.
  [[nodiscard]] double plane_load(int plane) const;

  ControllerConfig config_;
  Dataplane& dp_;
  /// Private sampler on the cadence grid: planeN_util_bps (kRate over
  /// Dataplane::plane_bytes) and planeN_queue_bytes (kGauge).
  telemetry::Sampler sampler_;
  std::vector<std::size_t> util_series_;
  std::vector<std::size_t> queue_series_;
  std::deque<PendingEvent> pending_;
  std::vector<bool> plane_down_;
  std::uint64_t last_invalidations_ = 0;
  /// Rebalance cooldown: no further repin bursts until the sampling window
  /// has refilled with post-move load (prevents oscillation).
  SimTime rebalance_hold_until_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t repins_ = 0;
  std::uint64_t plane_events_ = 0;
  std::uint64_t churn_skips_ = 0;
};

}  // namespace pnet::control
