#include "control/dataplanes.hpp"

namespace pnet::control {

void PacketDataplane::on_plane_detected(int plane, bool down) {
  // The same reaction HealthMonitor::react applies, reachable through the
  // controller's own detection path: mask the plane for new flows, then
  // evacuate (repath) or revive the live ones.
  harness_.selector().set_plane_failed(plane, down);
  if (down) {
    harness_.factory().on_plane_failed(plane);
  } else {
    harness_.factory().on_plane_recovered(plane);
  }
}

void PacketDataplane::set_plane_weights(const std::vector<double>& weights) {
  harness_.selector().set_plane_weights(weights);
}

int PacketDataplane::repin(int from_plane, int to_plane, int max_flows) {
  core::PathSelector& selector = harness_.selector();
  return harness_.factory().repin_flows(
      from_plane, max_flows,
      [&selector, to_plane](HostId src, HostId dst, std::uint64_t bytes) {
        return selector.repin(src, dst, bytes, to_plane);
      });
}

void FluidDataplane::on_plane_detected(int plane, bool down) {
  masked_[static_cast<std::size_t>(plane)] = down;
  fluid_.set_plane_usable(plane, !down);
  if (!down) return;
  // Evacuate: spread the dead plane's flows one at a time over the usable
  // planes, round-robin, until nothing moves — deterministic in creation
  // order, and no flow is left starving on a confirmed-dead plane.
  std::vector<int> targets;
  for (std::size_t p = 0; p < masked_.size(); ++p) {
    if (!masked_[p]) targets.push_back(static_cast<int>(p));
  }
  if (targets.empty()) return;
  while (true) {
    int moved = 0;
    for (int target : targets) moved += fluid_.repin_flows(plane, target, 1);
    if (moved == 0) break;
  }
}

void FluidDataplane::set_plane_weights(const std::vector<double>& weights) {
  fluid_.set_plane_weights(weights);
}

}  // namespace pnet::control
