#include "control/link_state_bus.hpp"

#include "core/health_monitor.hpp"

namespace pnet::control {

void LinkStateBus::subscribe(Observer observer) {
  observers_.push_back(std::move(observer));
}

void LinkStateBus::subscribe_health_monitor(core::HealthMonitor& monitor) {
  subscribe([&monitor](const sim::FaultEvent& event) {
    monitor.on_fault(event);
  });
}

void LinkStateBus::subscribe_route_cache(routing::RouteCache& cache) {
  subscribe([&cache](const sim::FaultEvent& event) {
    switch (event.kind) {
      case sim::FaultKind::kCableFail:
        cache.set_link_state(event.plane, event.link, true);
        break;
      case sim::FaultKind::kCableRecover:
        cache.set_link_state(event.plane, event.link, false);
        break;
      default:
        break;  // plane health / degradation never invalidate routes
    }
  });
}

void LinkStateBus::attach(sim::FaultInjector& injector) {
  injector.add_listener(
      [this](const sim::FaultEvent& event) { publish(event); });
}

void LinkStateBus::attach(fsim::FluidSimulator& fluid) {
  fluid.set_fault_listener(
      [this](const fsim::FluidSimulator::FabricEvent& event) {
        sim::FaultEvent fault;
        fault.at = event.at;
        fault.kind = event.down ? sim::FaultKind::kPlaneFail
                                : sim::FaultKind::kPlaneRecover;
        fault.plane = event.plane;
        publish(fault);
      });
}

void LinkStateBus::publish(const sim::FaultEvent& event) {
  ++published_;
  for (const Observer& observer : observers_) observer(event);
}

}  // namespace pnet::control
