// Engine adapters behind control::Dataplane, plus the event-queue driver
// that gives the packet engine its control-loop cadence.
//
// One Controller implementation drives both engines: PacketDataplane maps
// the observe/actuate interface onto core::SimHarness (queue stats, the
// PathSelector actuators, FlowFactory::repin_flows), FluidDataplane onto
// fsim::FluidSimulator (plane-attributed delivered bytes, routing mask,
// FluidSimulator::repin_flows). The fluid engine calls Controller::tick
// from FluidSimulator::set_control; the packet engine schedules a
// ControlDriver on the EventQueue — control-queue events run at barrier
// epochs under the sharded engine, which is what keeps controller-enabled
// reports byte-identical at every --sim-threads value.
#pragma once

#include <vector>

#include "control/controller.hpp"
#include "core/harness.hpp"
#include "fsim/fluid.hpp"
#include "sim/event_queue.hpp"

namespace pnet::control {

class PacketDataplane : public Dataplane {
 public:
  /// The harness must outlive the dataplane. Repin needs repath metadata:
  /// call harness.selector().enable_repath(harness.factory()) before
  /// flows launch.
  explicit PacketDataplane(core::SimHarness& harness) : harness_(harness) {}

  [[nodiscard]] int num_planes() const override {
    return harness_.net().num_planes();
  }
  [[nodiscard]] double plane_bytes(int plane) const override {
    return static_cast<double>(
        harness_.network().plane_forwarded_bytes(plane));
  }
  [[nodiscard]] double plane_queue_bytes(int plane) const override {
    return static_cast<double>(harness_.network().plane_queued_bytes(plane));
  }
  [[nodiscard]] std::uint64_t route_invalidations() const override {
    return harness_.selector().route_cache().stats().invalidations;
  }
  void on_plane_detected(int plane, bool down) override;
  void set_plane_weights(const std::vector<double>& weights) override;
  int repin(int from_plane, int to_plane, int max_flows) override;

 private:
  core::SimHarness& harness_;
};

class FluidDataplane : public Dataplane {
 public:
  /// Turns on the simulator's per-plane delivered-byte attribution (the
  /// utilization feed). The simulator must outlive the dataplane.
  explicit FluidDataplane(fsim::FluidSimulator& fluid)
      : fluid_(fluid),
        masked_(static_cast<std::size_t>(fluid.num_planes()), false) {
    fluid_.enable_plane_accounting();
  }

  [[nodiscard]] int num_planes() const override {
    return fluid_.num_planes();
  }
  [[nodiscard]] double plane_bytes(int plane) const override {
    return fluid_.plane_delivered_bytes(plane);
  }
  [[nodiscard]] double plane_queue_bytes(int /*plane*/) const override {
    return 0.0;  // the fluid model has no queues
  }
  [[nodiscard]] std::uint64_t route_invalidations() const override {
    return fluid_.route_cache().stats().invalidations;
  }
  void on_plane_detected(int plane, bool down) override;
  void set_plane_weights(const std::vector<double>& weights) override;
  int repin(int from_plane, int to_plane, int max_flows) override {
    return fluid_.repin_flows(from_plane, to_plane, max_flows);
  }

 private:
  fsim::FluidSimulator& fluid_;
  std::vector<bool> masked_;  // lazily sized; mirrors set_plane_usable
};

/// Drives Controller::tick off the packet simulator's event queue — the
/// control-plane sibling of sim::TelemetryDriver. One self-rescheduling
/// EventSource firing every cadence; it only re-arms while other
/// simulation work is pending, so a drained run still terminates.
class ControlDriver : public sim::EventSource {
 public:
  ControlDriver(sim::EventQueue& events, Controller& controller,
                SimTime cadence)
      : events_(events), controller_(controller), cadence_(cadence) {}

  /// Sharded runs hook ShardSet::busy() here, exactly like the telemetry
  /// driver: the control queue looks drained while work lives on shards.
  void set_more_work(std::function<bool()> more_work) {
    more_work_ = std::move(more_work);
  }

  /// Arms the controller's sampler at `at`; the first tick fires one
  /// cadence later.
  void start(SimTime at) {
    controller_.start(at);
    next_ = at + cadence_;
    events_.schedule_aux_at(next_, this);
  }

  void do_next_event() override {
    events_.aux_fired();
    controller_.tick(events_.now());
    next_ += cadence_;
    // real_pending() excludes sibling drivers (telemetry sampling), so a
    // drained run terminates even with both loops armed.
    if (events_.real_pending() > 0 || (more_work_ && more_work_())) {
      events_.schedule_aux_at(next_, this);
    }
  }

 private:
  sim::EventQueue& events_;
  Controller& controller_;
  SimTime cadence_;
  SimTime next_ = 0;
  std::function<bool()> more_work_;
};

}  // namespace pnet::control
