#include "control/controller.hpp"

#include <string>

#include "control/link_state_bus.hpp"

namespace pnet::control {

namespace {

struct ModeName {
  ControllerMode mode;
  const char* name;
};
constexpr ModeName kModeTable[] = {
    {ControllerMode::kOff, "off"},
    {ControllerMode::kHostLocal, "host-local"},
    {ControllerMode::kCentralized, "centralized"},
};

/// Load floor in the inverse-load weight: keeps an idle plane's weight
/// finite and bounds the bias ratio between planes.
constexpr double kLoadFloorBps = 1e6;

}  // namespace

const char* to_string(ControllerMode mode) {
  for (const ModeName& entry : kModeTable) {
    if (entry.mode == mode) return entry.name;
  }
  return "?";
}

std::optional<ControllerMode> mode_from_string(std::string_view name) {
  for (const ModeName& entry : kModeTable) {
    if (entry.name == name) return entry.mode;
  }
  return std::nullopt;
}

std::string mode_names() {
  std::string out;
  for (const ModeName& entry : kModeTable) {
    if (!out.empty()) out += ' ';
    out += entry.name;
  }
  return out;
}

std::string ControllerConfig::validate() const {
  if (!active()) return "";
  if (cadence <= 0) return "controller cadence must be > 0";
  if (detect_delay < 0) return "controller detect delay must be >= 0";
  if (imbalance_threshold < 1.0) {
    return "controller imbalance threshold must be >= 1";
  }
  if (max_repins_per_tick < 0) return "controller max repins must be >= 0";
  if (window < 1) return "controller window must be >= 1";
  return "";
}

Controller::Controller(const ControllerConfig& config, Dataplane& dataplane)
    : config_(config), dp_(dataplane),
      sampler_(telemetry::Sampler::Config{config.cadence, 512}),
      plane_down_(static_cast<std::size_t>(dataplane.num_planes()), false) {
  const int planes = dp_.num_planes();
  util_series_.reserve(static_cast<std::size_t>(planes));
  queue_series_.reserve(static_cast<std::size_t>(planes));
  for (int p = 0; p < planes; ++p) {
    util_series_.push_back(sampler_.add_series(
        "plane" + std::to_string(p) + "_util_bps",
        telemetry::Sampler::Kind::kRate, [this, p] { return dp_.plane_bytes(p); },
        8.0));
    queue_series_.push_back(sampler_.add_series(
        "plane" + std::to_string(p) + "_queue_bytes",
        telemetry::Sampler::Kind::kGauge,
        [this, p] { return dp_.plane_queue_bytes(p); }));
  }
}

void Controller::observe(LinkStateBus& bus) {
  bus.subscribe(
      [this](const sim::FaultEvent& event) { on_fabric_event(event); });
}

void Controller::on_fabric_event(const sim::FaultEvent& event) {
  // Events arrive in simulated-time order, so the deque stays due-sorted.
  pending_.push_back(PendingEvent{event.at + config_.detect_delay, event});
}

void Controller::start(SimTime at) {
  sampler_.start(at);
  last_invalidations_ = dp_.route_invalidations();
}

double Controller::plane_load(int plane) const {
  const auto p = static_cast<std::size_t>(plane);
  double util_sum = 0.0;
  std::size_t buckets = 0;
  sampler_.read(util_series_[p], 0, static_cast<std::size_t>(config_.window),
                [&](const telemetry::Sampler::Sample& sample) {
                  util_sum += sample.value;
                  ++buckets;
                });
  const double util =
      buckets > 0 ? util_sum / static_cast<double>(buckets) : 0.0;
  double queue_bytes = 0.0;
  sampler_.read(queue_series_[p], 0, 1,
                [&](const telemetry::Sampler::Sample& sample) {
                  queue_bytes = sample.value;
                });
  // Queued backlog expressed as the bit rate needed to drain it within one
  // cadence: a congested plane looks hot even while its goodput collapses.
  return util + queue_bytes * 8.0 / units::to_seconds(config_.cadence);
}

void Controller::tick(SimTime now) {
  ++ticks_;

  // 1. Confirmed fabric events: act on everything whose detection delay
  //    has elapsed. Any plane transition or cable churn this tick holds
  //    rebalancing below — load samples spanning a topology change would
  //    chase a state that no longer exists.
  bool churn = false;
  while (!pending_.empty() && pending_.front().due <= now) {
    const sim::FaultEvent event = pending_.front().event;
    pending_.pop_front();
    switch (event.kind) {
      case sim::FaultKind::kPlaneFail:
      case sim::FaultKind::kPlaneRecover: {
        const bool down = event.kind == sim::FaultKind::kPlaneFail;
        const auto p = static_cast<std::size_t>(event.plane);
        if (plane_down_[p] != down) {
          plane_down_[p] = down;
          dp_.on_plane_detected(event.plane, down);
          ++plane_events_;
        }
        churn = true;
        break;
      }
      default:
        churn = true;  // cable-level churn: observe, hold rebalancing
        break;
    }
  }

  // 2. Pull fresh samples up to this grid point.
  sampler_.advance(now);

  const int planes = dp_.num_planes();
  std::vector<double> load(static_cast<std::size_t>(planes), 0.0);
  for (int p = 0; p < planes; ++p) {
    load[static_cast<std::size_t>(p)] = plane_load(p);
  }

  // 3. Churn guard: a moving route cache means flows are already being
  //    re-routed under us — skip rebalancing this tick.
  const std::uint64_t invalidations = dp_.route_invalidations();
  if (invalidations != last_invalidations_) {
    last_invalidations_ = invalidations;
    churn = true;
  }

  // 4. Inverse-load placement bias: dead planes weigh 0, light planes
  //    attract new flows. Applied every tick (idempotent, deterministic).
  std::vector<double> weights(static_cast<std::size_t>(planes), 0.0);
  for (int p = 0; p < planes; ++p) {
    const auto i = static_cast<std::size_t>(p);
    weights[i] = plane_down_[i] ? 0.0 : 1.0 / (load[i] + kLoadFloorBps);
  }
  dp_.set_plane_weights(weights);

  if (churn) {
    ++churn_skips_;
    return;
  }

  // 5. Rebalance live flows when the load ratio crosses the threshold:
  //    hottest usable plane donates up to the per-tick budget to the
  //    coolest one. Lowest plane index wins ties, keeping the decision a
  //    pure function of sampled state.
  if (config_.max_repins_per_tick <= 0) return;
  int hottest = -1;
  int coolest = -1;
  for (int p = 0; p < planes; ++p) {
    if (plane_down_[static_cast<std::size_t>(p)]) continue;
    const double l = load[static_cast<std::size_t>(p)];
    if (hottest < 0 || l > load[static_cast<std::size_t>(hottest)]) {
      hottest = p;
    }
    if (coolest < 0 || l < load[static_cast<std::size_t>(coolest)]) {
      coolest = p;
    }
  }
  if (hottest < 0 || coolest < 0 || hottest == coolest) return;
  // Cooldown: after a repin burst, hold further rebalancing until the
  // moved flows' load has filled the sampling window. Judging again on
  // samples that predate the move would oscillate flows back and forth —
  // each packet-engine repin restarts the transport cold, so churn costs
  // real goodput.
  if (now < rebalance_hold_until_) return;
  const double max_load = load[static_cast<std::size_t>(hottest)];
  const double min_load = load[static_cast<std::size_t>(coolest)];
  if (max_load <= config_.imbalance_threshold * min_load + 1.0) return;
  const int moved = dp_.repin(hottest, coolest, config_.max_repins_per_tick);
  repins_ += static_cast<std::uint64_t>(moved);
  if (moved > 0) {
    rebalance_hold_until_ = now + config_.window * config_.cadence;
  }
}

}  // namespace pnet::control
