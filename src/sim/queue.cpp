#include "sim/queue.hpp"

#include <cassert>

namespace pnet::sim {

void Queue::drop(Packet& packet, std::uint64_t& cause_counter) {
  ++cause_counter;
  ++drops_;
  pool_.free(&packet);
}

void Queue::receive(Packet& packet) {
  if (failed_) {
    drop(packet, drops_failed_);
    return;
  }
  if (loss_rate_ > 0.0 && loss_rng_.next_double() < loss_rate_) {
    drop(packet, drops_random_);
    return;
  }

  const bool priority_class =
      (priority_acks_ && packet.is_ack) || packet.trimmed;
  if (priority_class) {
    // ACKs / already-trimmed headers ride the priority queue with its own
    // budget (mirrors NDP's separate header queue).
    if (ack_queued_bytes_ + packet.size_bytes > buffer_bytes_) {
      drop(packet, drops_overflow_);
      return;
    }
    ack_fifo_.push_back(&packet);
    ack_queued_bytes_ += packet.size_bytes;
  } else if (queued_bytes_ + packet.size_bytes > buffer_bytes_) {
    // Data buffer full: cut payload if enabled, else tail-drop.
    if (trim_to_header_ && !packet.is_ack &&
        ack_queued_bytes_ + kHeaderBytes <= buffer_bytes_) {
      packet.size_bytes = kHeaderBytes;
      packet.trimmed = true;
      ++trims_;
      ack_fifo_.push_back(&packet);
      ack_queued_bytes_ += packet.size_bytes;
    } else {
      drop(packet, drops_overflow_);
      return;
    }
  } else {
    if (ecn_threshold_bytes_ > 0 && !packet.is_ack &&
        queued_bytes_ >= ecn_threshold_bytes_) {
      packet.ecn_ce = true;
      ++ecn_marks_;
    }
    fifo_.push_back(&packet);
    queued_bytes_ += packet.size_bytes;
  }

  if (!busy_) {
    busy_ = true;
    start_service();
  }
}

void Queue::start_service() {
  // Strict priority: serve the ACK/header queue first. The selected packet
  // is committed (no preemption) — a later arrival cannot steal its slot.
  assert(in_service_ == nullptr);
  if (!ack_fifo_.empty()) {
    in_service_ = ack_fifo_.front();
    ack_fifo_.pop_front();
    in_service_priority_ = true;
  } else {
    in_service_ = fifo_.front();
    fifo_.pop_front();
    in_service_priority_ = false;
  }
  events_.schedule_in(units::serialization_delay(in_service_->size_bytes,
                                                 rate_bps_ * rate_scale_),
                      this);
}

void Queue::do_next_event() {
  Packet* packet = in_service_;
  in_service_ = nullptr;
  if (in_service_priority_) {
    ack_queued_bytes_ -= packet->size_bytes;
  } else {
    queued_bytes_ -= packet->size_bytes;
  }
  ++forwarded_;
  forwarded_bytes_ += packet->size_bytes;
  if (ack_fifo_.empty() && fifo_.empty()) {
    busy_ = false;
  } else {
    start_service();
  }
  packet->forward();
}

}  // namespace pnet::sim
