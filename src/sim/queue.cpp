#include "sim/queue.hpp"

#include <cassert>

namespace pnet::sim {

void Queue::drop(Packet& packet, std::uint64_t& cause_counter) {
  ++cause_counter;
  ++s_->drops;
  pool_.free(&packet);
}

void Queue::receive(Packet& packet) {
  ++s_->received;
  if (failed_) {
    drop(packet, s_->drops_failed);
    return;
  }
  if (loss_rate_ > 0.0 && loss_rng_.next_double() < loss_rate_) {
    drop(packet, s_->drops_random);
    return;
  }

  const bool priority_class =
      (priority_acks_ && packet.is_ack) || packet.trimmed;
  if (priority_class) {
    // ACKs / already-trimmed headers ride the priority queue with its own
    // budget (mirrors NDP's separate header queue).
    if (s_->ack_queued_bytes + packet.size_bytes > buffer_bytes_) {
      drop(packet, s_->drops_overflow);
      return;
    }
    ack_fifo_.push_back(&packet);
    s_->ack_queued_bytes += packet.size_bytes;
  } else if (s_->queued_bytes + packet.size_bytes > buffer_bytes_) {
    // Data buffer full: cut payload if enabled, else tail-drop.
    if (trim_to_header_ && !packet.is_ack &&
        s_->ack_queued_bytes + kHeaderBytes <= buffer_bytes_) {
      packet.size_bytes = kHeaderBytes;
      packet.trimmed = true;
      ++s_->trims;
      ack_fifo_.push_back(&packet);
      s_->ack_queued_bytes += packet.size_bytes;
    } else {
      drop(packet, s_->drops_overflow);
      return;
    }
  } else {
    if (ecn_threshold_bytes_ > 0 && !packet.is_ack &&
        s_->queued_bytes >= ecn_threshold_bytes_) {
      packet.ecn_ce = true;
      ++s_->ecn_marks;
    }
    fifo_.push_back(&packet);
    s_->queued_bytes += packet.size_bytes;
  }

  if (audit_ != nullptr) {
    audit_->note_check();
    if (s_->queued_bytes > buffer_bytes_ ||
        s_->ack_queued_bytes > buffer_bytes_) {
      audit_->fail("queue occupancy above capacity: data=" +
                   std::to_string(s_->queued_bytes) + "B prio=" +
                   std::to_string(s_->ack_queued_bytes) + "B cap=" +
                   std::to_string(buffer_bytes_) + "B");
    }
  }

  if (!busy_) {
    busy_ = true;
    start_service();
  }
}

void Queue::audit_check(util::Audit& audit, const std::string& label) const {
  audit.note_check();
  const std::uint64_t buffered =
      fifo_.size() + ack_fifo_.size() + (in_service_ != nullptr ? 1 : 0);
  if (s_->received != s_->forwarded + s_->drops + buffered) {
    audit.fail(label + ": packet conservation broken: received=" +
               std::to_string(s_->received) + " != forwarded=" +
               std::to_string(s_->forwarded) + " + dropped=" +
               std::to_string(s_->drops) + " + buffered=" +
               std::to_string(buffered));
  }
  if (s_->queued_bytes > buffer_bytes_ ||
      s_->ack_queued_bytes > buffer_bytes_) {
    audit.fail(label + ": occupancy above capacity: data=" +
               std::to_string(s_->queued_bytes) + "B prio=" +
               std::to_string(s_->ack_queued_bytes) + "B cap=" +
               std::to_string(buffer_bytes_) + "B");
  }
}

void Queue::start_service() {
  // Strict priority: serve the ACK/header queue first. The selected packet
  // is committed (no preemption) — a later arrival cannot steal its slot.
  assert(in_service_ == nullptr);
  if (!ack_fifo_.empty()) {
    in_service_ = ack_fifo_.pop_front();
    in_service_priority_ = true;
  } else {
    in_service_ = fifo_.pop_front();
    in_service_priority_ = false;
  }
  if (in_service_->size_bytes != memo_bytes_) {
    memo_bytes_ = in_service_->size_bytes;
    memo_delay_ = units::serialization_delay(memo_bytes_,
                                             rate_bps_ * rate_scale_);
  }
  events_.schedule_in(memo_delay_, this);
}

void Queue::do_next_event() {
  Packet* packet = in_service_;
  in_service_ = nullptr;
  if (in_service_priority_) {
    s_->ack_queued_bytes -= packet->size_bytes;
  } else {
    s_->queued_bytes -= packet->size_bytes;
  }
  ++s_->forwarded;
  s_->forwarded_bytes += packet->size_bytes;
  if (ack_fifo_.empty() && fifo_.empty()) {
    busy_ = false;
  } else {
    start_service();
  }
  packet->forward();
}

}  // namespace pnet::sim
