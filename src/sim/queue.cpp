#include "sim/queue.hpp"

#include <cassert>

namespace pnet::sim {

void Queue::drop(Packet& packet, std::uint64_t& cause_counter) {
  ++cause_counter;
  ++drops_;
  pool_.free(&packet);
}

void Queue::receive(Packet& packet) {
  ++received_;
  if (failed_) {
    drop(packet, drops_failed_);
    return;
  }
  if (loss_rate_ > 0.0 && loss_rng_.next_double() < loss_rate_) {
    drop(packet, drops_random_);
    return;
  }

  const bool priority_class =
      (priority_acks_ && packet.is_ack) || packet.trimmed;
  if (priority_class) {
    // ACKs / already-trimmed headers ride the priority queue with its own
    // budget (mirrors NDP's separate header queue).
    if (ack_queued_bytes_ + packet.size_bytes > buffer_bytes_) {
      drop(packet, drops_overflow_);
      return;
    }
    ack_fifo_.push_back(&packet);
    ack_queued_bytes_ += packet.size_bytes;
  } else if (queued_bytes_ + packet.size_bytes > buffer_bytes_) {
    // Data buffer full: cut payload if enabled, else tail-drop.
    if (trim_to_header_ && !packet.is_ack &&
        ack_queued_bytes_ + kHeaderBytes <= buffer_bytes_) {
      packet.size_bytes = kHeaderBytes;
      packet.trimmed = true;
      ++trims_;
      ack_fifo_.push_back(&packet);
      ack_queued_bytes_ += packet.size_bytes;
    } else {
      drop(packet, drops_overflow_);
      return;
    }
  } else {
    if (ecn_threshold_bytes_ > 0 && !packet.is_ack &&
        queued_bytes_ >= ecn_threshold_bytes_) {
      packet.ecn_ce = true;
      ++ecn_marks_;
    }
    fifo_.push_back(&packet);
    queued_bytes_ += packet.size_bytes;
  }

  if (audit_ != nullptr) {
    audit_->note_check();
    if (queued_bytes_ > buffer_bytes_ || ack_queued_bytes_ > buffer_bytes_) {
      audit_->fail("queue occupancy above capacity: data=" +
                   std::to_string(queued_bytes_) + "B prio=" +
                   std::to_string(ack_queued_bytes_) + "B cap=" +
                   std::to_string(buffer_bytes_) + "B");
    }
  }

  if (!busy_) {
    busy_ = true;
    start_service();
  }
}

void Queue::audit_check(util::Audit& audit, const std::string& label) const {
  audit.note_check();
  const std::uint64_t buffered =
      fifo_.size() + ack_fifo_.size() + (in_service_ != nullptr ? 1 : 0);
  if (received_ != forwarded_ + drops_ + buffered) {
    audit.fail(label + ": packet conservation broken: received=" +
               std::to_string(received_) + " != forwarded=" +
               std::to_string(forwarded_) + " + dropped=" +
               std::to_string(drops_) + " + buffered=" +
               std::to_string(buffered));
  }
  if (queued_bytes_ > buffer_bytes_ || ack_queued_bytes_ > buffer_bytes_) {
    audit.fail(label + ": occupancy above capacity: data=" +
               std::to_string(queued_bytes_) + "B prio=" +
               std::to_string(ack_queued_bytes_) + "B cap=" +
               std::to_string(buffer_bytes_) + "B");
  }
}

void Queue::start_service() {
  // Strict priority: serve the ACK/header queue first. The selected packet
  // is committed (no preemption) — a later arrival cannot steal its slot.
  assert(in_service_ == nullptr);
  if (!ack_fifo_.empty()) {
    in_service_ = ack_fifo_.front();
    ack_fifo_.pop_front();
    in_service_priority_ = true;
  } else {
    in_service_ = fifo_.front();
    fifo_.pop_front();
    in_service_priority_ = false;
  }
  events_.schedule_in(units::serialization_delay(in_service_->size_bytes,
                                                 rate_bps_ * rate_scale_),
                      this);
}

void Queue::do_next_event() {
  Packet* packet = in_service_;
  in_service_ = nullptr;
  if (in_service_priority_) {
    ack_queued_bytes_ -= packet->size_bytes;
  } else {
    queued_bytes_ -= packet->size_bytes;
  }
  ++forwarded_;
  forwarded_bytes_ += packet->size_bytes;
  if (ack_fifo_.empty() && fifo_.empty()) {
    busy_ = false;
  } else {
    start_service();
  }
  packet->forward();
}

}  // namespace pnet::sim
