// Plane-sharded simulation core (DESIGN.md §5i).
//
// A P-Net's planes are disjoint by construction — packets never cross
// planes in flight — so the plane boundary is a sharding boundary. Each
// shard owns a private EventQueue, PacketPool, and the Queue/Pipe state of
// one plane; hosts (the only coupling point: NIC + MPTCP scheduler) are
// assigned host % num_shards. Shards advance in conservative-lookahead
// epochs: all shards run events strictly before a common barrier time
// E = min(earliest pending event + lookahead, next control event), where
// lookahead is the minimum latency of any cross-shard (host-adjacent)
// link. Cross-shard deliveries travel as by-value packet snapshots through
// per-(src,dst) handoff mailboxes, drained at the barrier in fixed
// (dst, src, FIFO) order, so the merged event stream is a deterministic
// function of the topology alone — byte-identical for any worker count.
//
// Threading model: one coordinator (the caller's thread) plus W-1 workers,
// W = min(sim_threads, num_planes). Phases strictly alternate — during the
// run phase each shard's state is touched only by the thread driving it;
// during the coordinator phase (control events, mailbox integration,
// deferred completions) the coordinator may touch everything while workers
// spin on their epoch atomics. The acquire/release pair on epoch/done is
// the only cross-thread synchronization; there are no locks on any packet
// path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "util/audit.hpp"
#include "util/cancel.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace pnet::sim {

/// One cross-shard delivery: a by-value snapshot of the packet taken as it
/// entered the crossing link, with `data.due` holding the delivery time at
/// the destination shard (send time + crossing-link latency >= the epoch
/// barrier, which is what makes the handoff conservative).
struct BoundaryMsg {
  Packet data;
};

/// Sorted arrival buffer: packets ordered by due time, FIFO among equal
/// dues (stable insert), consumed from a head cursor so steady-state pops
/// are O(1) and memory is recycled by periodic compaction.
class ArrivalQueue {
 public:
  void insert(Packet* p) {
    maybe_compact();
    auto it = std::upper_bound(
        items_.begin() + static_cast<std::ptrdiff_t>(head_), items_.end(),
        p->due, [](SimTime due, const Packet* q) { return due < q->due; });
    items_.insert(it, p);
  }

  [[nodiscard]] bool empty() const { return head_ == items_.size(); }
  [[nodiscard]] std::size_t size() const { return items_.size() - head_; }
  [[nodiscard]] SimTime next_due() const {
    return empty() ? EventQueue::kNever : items_[head_]->due;
  }

  Packet* pop_front() { return items_[head_++]; }

 private:
  void maybe_compact() {
    if (head_ > 64 && head_ * 2 >= items_.size()) {
      items_.erase(items_.begin(),
                   items_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<Packet*> items_;  // sorted by due, stable
  std::size_t head_ = 0;
};

/// Destination-side terminal of the handoff protocol: re-injects packets
/// integrated from peer shards into this shard's event stream at their due
/// times. Follows Pipe's one-pending-wake discipline — at most one wake is
/// scheduled per new earliest due, and superseded (stale) wakes deliver
/// nothing and re-arm — so integration bursts cannot flood the event heap
/// past its reservation.
class Arrivals final : public EventSource {
 public:
  explicit Arrivals(EventQueue& events) : events_(events) {}

  /// Coordinator phase only: buffers a re-homed packet. The integrator
  /// calls arm() once per batch, not per insert.
  void insert(Packet* p) { queue_.insert(p); }

  /// Schedules a wake for the earliest buffered arrival unless one is
  /// already pending at or before it.
  void arm() {
    if (queue_.empty()) return;
    const SimTime t = queue_.next_due();
    if (t < armed_) {
      events_.schedule_at(t, this);
      armed_ = t;
    }
  }

  void do_next_event() override {
    while (!queue_.empty() && queue_.next_due() <= events_.now()) {
      Packet* p = queue_.pop_front();
      ++delivered_;
      p->forward();
    }
    armed_ = EventQueue::kNever;
    arm();
  }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

 private:
  EventQueue& events_;
  ArrivalQueue queue_;
  /// Earliest wake currently scheduled (kNever when none).
  SimTime armed_ = EventQueue::kNever;
  std::uint64_t delivered_ = 0;
};

/// A completion/repath callback parked until the coordinator phase, so
/// worker threads never touch shared state (FlowLogger, telemetry, the
/// route arena). Drained at each barrier in (at, shard, emit order) — a
/// stable total order independent of the worker count.
struct Deferred {
  SimTime at;
  std::function<void()> fn;
};

/// Everything one shard owns. During the run phase only the driving thread
/// touches this; during the coordinator phase only the coordinator does.
struct Shard {
  EventQueue events;
  PacketPool pool;
  Arrivals arrivals{events};
  /// Outgoing handoff mailboxes, one per destination shard. Written only
  /// by this shard's thread (run phase), drained only by the coordinator.
  std::vector<std::vector<BoundaryMsg>> out;
  std::vector<Deferred> deferred;
  /// Collecting auditor (never fail-fast: a throw on a worker thread would
  /// terminate); merged into the harness auditor on the coordinator.
  util::Audit audit{/*fail_fast=*/false};
  std::uint64_t boundary_sent = 0;        // msgs pushed into out[]
  std::uint64_t boundary_integrated = 0;  // msgs cloned in from peers
};

/// Replaces a Pipe on a route hop whose link crosses shards: snapshots the
/// packet into the owning shard's outbox with due = now + latency and
/// frees the original back to the source pool. The crossing latency rides
/// the boundary (not a pipe on either side), which is exactly what gives
/// the barrier its lookahead.
class BoundaryPipe final : public PacketSink {
 public:
  BoundaryPipe(Shard& src, std::size_t dst, SimTime latency)
      : src_(src), dst_(dst), latency_(latency) {}

  void receive(Packet& packet) override {
    BoundaryMsg msg{packet};
    msg.data.next = nullptr;
    msg.data.due = src_.events.now() + latency_;
    src_.pool.free(&packet);
    src_.out[dst_].push_back(msg);
    ++src_.boundary_sent;
  }

  [[nodiscard]] SimTime latency() const { return latency_; }

 private:
  Shard& src_;
  std::size_t dst_;
  SimTime latency_;
};

class ShardSet {
 public:
  /// One shard per plane; `sim_threads` only sizes the worker pool
  /// (clamped to [1, num_planes]), so the shard layout — and with it every
  /// event timestamp and sequence number — is identical at every thread
  /// count. That is the whole determinism argument.
  ShardSet(int num_planes, int sim_threads);
  ~ShardSet();
  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  [[nodiscard]] std::size_t size() const { return shards_.size(); }
  [[nodiscard]] int workers() const { return workers_; }
  [[nodiscard]] Shard& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] const Shard& shard(std::size_t i) const {
    return *shards_[i];
  }

  [[nodiscard]] std::size_t shard_of_plane(int plane) const {
    return static_cast<std::size_t>(plane);
  }
  [[nodiscard]] std::size_t shard_of_host(HostId host) const {
    return static_cast<std::size_t>(host.v) % shards_.size();
  }
  [[nodiscard]] EventQueue& host_events(HostId host) {
    return shard(shard_of_host(host)).events;
  }
  [[nodiscard]] PacketPool& host_pool(HostId host) {
    return shard(shard_of_host(host)).pool;
  }

  /// Registers a cross-shard link; the barrier lookahead is the minimum
  /// over all crossings. Throws std::invalid_argument on latency <= 0 — a
  /// zero-latency crossing would force zero-width epochs.
  void note_crossing(SimTime latency);
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }

  /// Reserve/grow every shard's event heap (mirrors EventQueue::reserve /
  /// request_capacity; regrowth past the reservation is an audit failure).
  void reserve_events(std::size_t events);
  void request_capacity(std::size_t events);

  /// Cancellation token polled by every shard's dispatch loop and by the
  /// epoch loop itself.
  void set_cancel(const util::CancelToken* cancel);

  /// Wires each shard's event-time monotonicity audit to its private
  /// collecting auditor (see Shard::audit).
  void enable_audit();

  /// Parks `fn` to run on the coordinator at the next barrier, tagged with
  /// shard-local time `at`. Run-phase only; the caller passes its own
  /// shard index (single-writer per deferred vector).
  void defer(std::size_t shard, SimTime at, std::function<void()> fn) {
    shards_[shard]->deferred.push_back(Deferred{at, std::move(fn)});
  }

  /// True while shard event loops are executing (even inline with one
  /// worker): callbacks that would touch shared state must defer().
  [[nodiscard]] bool in_worker_phase() const {
    return in_worker_phase_.load(std::memory_order_relaxed);
  }

  /// Any shard work outstanding — pending events, buffered arrivals,
  /// un-drained mailboxes or deferred callbacks. Keeps the telemetry
  /// driver alive while the control queue alone looks drained.
  [[nodiscard]] bool busy() const;

  [[nodiscard]] std::uint64_t dispatched() const;
  [[nodiscard]] std::uint64_t boundary_sent() const;
  [[nodiscard]] std::uint64_t boundary_delivered() const;

  /// Runs shards + control queue to global drain (or cancellation).
  void run(EventQueue& control) { run_loop(control, EventQueue::kNever); }
  /// Runs to `deadline` inclusive, matching EventQueue::run_until's clock
  /// semantics on both the control queue and every shard.
  void run_until(EventQueue& control, SimTime deadline) {
    run_loop(control, deadline);
  }

  /// Merges every shard's collected violations into `into` (which may be
  /// fail-fast; first merged violation then throws at the merge site).
  void collect_audit(util::Audit& into);
  /// Boundary conservation + per-shard heap reservation sweep.
  void audit_check(util::Audit& audit) const;

 private:
  struct alignas(64) WorkerSync {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> done{0};
    std::exception_ptr error;
    std::thread thread;
  };

  static constexpr int kSpinLimit = 2048;

  [[nodiscard]] static SimTime sat_add(SimTime a, SimTime b) {
    return a > EventQueue::kNever - b ? EventQueue::kNever : a + b;
  }

  void run_loop(EventQueue& control, SimTime deadline);
  /// One barrier epoch: every shard runs events strictly before `end`.
  void run_epoch(SimTime end);
  /// Shards `w, w+W, w+2W, ...` — the slice thread `w` drives.
  void run_slice(std::size_t w, SimTime end);
  /// Coordinator phase: mailboxes -> arrival buffers (dst-major, src
  /// order, FIFO within), then deferred callbacks in (at, shard, emit)
  /// order.
  void integrate();
  void start_workers();
  void worker_main(std::size_t w, WorkerSync* sync);

  std::vector<std::unique_ptr<Shard>> shards_;
  int workers_;
  SimTime lookahead_ = EventQueue::kNever;
  const util::CancelToken* cancel_ = nullptr;
  bool audit_enabled_ = false;

  std::atomic<bool> in_worker_phase_{false};
  std::atomic<bool> quit_{false};
  /// Barrier time of the epoch being published; written before the
  /// release-store on each worker's `epoch`, read after its acquire-load.
  SimTime epoch_end_ = 0;
  std::uint64_t epoch_seq_ = 0;
  bool workers_started_ = false;
  std::vector<std::unique_ptr<WorkerSync>> sync_;  // workers 1..W-1
  std::vector<Deferred> drain_scratch_;
};

}  // namespace pnet::sim
