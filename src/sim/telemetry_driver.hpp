// Drives a telemetry::Sampler off the packet simulator's event queue: one
// self-rescheduling EventSource that fires at every sample grid point. The
// driver only re-arms itself while other simulation work is pending, so an
// otherwise-drained EventQueue::run() still terminates — sampling rides the
// simulation, it never extends it.
#pragma once

#include <functional>
#include <utility>

#include "sim/event_queue.hpp"
#include "telemetry/sampler.hpp"

namespace pnet::sim {

class TelemetryDriver : public EventSource {
 public:
  TelemetryDriver(EventQueue& events, telemetry::Sampler& sampler)
      : events_(events), sampler_(sampler) {}

  /// Extra "simulation still has work" predicate consulted alongside this
  /// queue's own pending count. Sharded runs hook ShardSet::busy() here:
  /// the driver rides the control queue, which looks drained whenever the
  /// remaining work lives on shard heaps.
  void set_more_work(std::function<bool()> more_work) {
    more_work_ = std::move(more_work);
  }

  /// Starts sampling at `at` (the first sample lands one interval later).
  /// No-op when the sampler has no interval configured.
  void start(SimTime at) {
    sampler_.start(at);
    schedule_next();
  }

  void do_next_event() override {
    events_.aux_fired();
    sampler_.advance(events_.now());
    // The firing entry is already popped, so real_pending() counts
    // everything else except sibling drivers (e.g. the control loop):
    // re-arm only while real simulation work remains.
    if (events_.real_pending() > 0 || (more_work_ && more_work_())) {
      schedule_next();
    }
  }

 private:
  void schedule_next() {
    const SimTime next = sampler_.next_sample_at();
    if (next != telemetry::Sampler::kNoSample) {
      events_.schedule_aux_at(next, this);
    }
  }

  EventQueue& events_;
  telemetry::Sampler& sampler_;
  std::function<bool()> more_work_;
};

}  // namespace pnet::sim
