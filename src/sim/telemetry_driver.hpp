// Drives a telemetry::Sampler off the packet simulator's event queue: one
// self-rescheduling EventSource that fires at every sample grid point. The
// driver only re-arms itself while other simulation work is pending, so an
// otherwise-drained EventQueue::run() still terminates — sampling rides the
// simulation, it never extends it.
#pragma once

#include "sim/event_queue.hpp"
#include "telemetry/sampler.hpp"

namespace pnet::sim {

class TelemetryDriver : public EventSource {
 public:
  TelemetryDriver(EventQueue& events, telemetry::Sampler& sampler)
      : events_(events), sampler_(sampler) {}

  /// Starts sampling at `at` (the first sample lands one interval later).
  /// No-op when the sampler has no interval configured.
  void start(SimTime at) {
    sampler_.start(at);
    schedule_next();
  }

  void do_next_event() override {
    sampler_.advance(events_.now());
    // The firing entry is already popped, so pending() counts everything
    // else: re-arm only while real simulation work remains.
    if (events_.pending() > 0) schedule_next();
  }

 private:
  void schedule_next() {
    const SimTime next = sampler_.next_sample_at();
    if (next != telemetry::Sampler::kNoSample) events_.schedule_at(next, this);
  }

  EventQueue& events_;
  telemetry::Sampler& sampler_;
};

}  // namespace pnet::sim
