#include "sim/faults.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace pnet::sim {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCableFail: return "cable-fail";
    case FaultKind::kCableRecover: return "cable-recover";
    case FaultKind::kPlaneFail: return "plane-fail";
    case FaultKind::kPlaneRecover: return "plane-recover";
    case FaultKind::kCableDegrade: return "cable-degrade";
    case FaultKind::kCableRestore: return "cable-restore";
  }
  return "?";
}

// -------------------------------------------------------------- FaultPlan

FaultPlan& FaultPlan::add(FaultEvent event) {
  if (!events_.empty() && event.at < events_.back().at) sorted_ = false;
  events_.push_back(event);
  if (!sorted_) sort_events();
  return *this;
}

void FaultPlan::sort_events() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  sorted_ = true;
}

FaultPlan& FaultPlan::fail_plane(SimTime at, int plane) {
  return add({at, FaultKind::kPlaneFail, plane, LinkId{-1}, 0.0, 1.0});
}

FaultPlan& FaultPlan::recover_plane(SimTime at, int plane) {
  return add({at, FaultKind::kPlaneRecover, plane, LinkId{-1}, 0.0, 1.0});
}

FaultPlan& FaultPlan::flap_plane(SimTime at, SimTime down_for, int plane) {
  fail_plane(at, plane);
  return recover_plane(at + down_for, plane);
}

FaultPlan& FaultPlan::fail_cable(SimTime at, int plane, LinkId link) {
  return add({at, FaultKind::kCableFail, plane, link, 0.0, 1.0});
}

FaultPlan& FaultPlan::recover_cable(SimTime at, int plane, LinkId link) {
  return add({at, FaultKind::kCableRecover, plane, link, 0.0, 1.0});
}

FaultPlan& FaultPlan::flap_cable(SimTime at, SimTime down_for, int plane,
                                 LinkId link) {
  fail_cable(at, plane, link);
  return recover_cable(at + down_for, plane, link);
}

FaultPlan& FaultPlan::degrade_cable(SimTime at, SimTime until, int plane,
                                    LinkId link, double loss_rate,
                                    double rate_scale) {
  add({at, FaultKind::kCableDegrade, plane, link, loss_rate, rate_scale});
  return add({until, FaultKind::kCableRestore, plane, link, 0.0, 1.0});
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  for (const auto& event : other.events_) add(event);
  return *this;
}

namespace {

/// Forward links of switch-to-switch cables across every plane — the
/// failure domain of the Fig 14 study (host uplinks never fail here).
std::vector<std::pair<int, LinkId>> fabric_cables(
    const topo::ParallelNetwork& net) {
  std::vector<std::pair<int, LinkId>> cables;
  for (int p = 0; p < net.num_planes(); ++p) {
    const topo::Graph& g = net.plane(p).graph;
    for (int l = 0; l < g.num_links(); l += 2) {
      const topo::Link& link = g.link(LinkId{l});
      if (!g.is_host(link.src) && !g.is_host(link.dst)) {
        cables.emplace_back(p, LinkId{l});
      }
    }
  }
  return cables;
}

}  // namespace

FaultPlan FaultPlan::random_link_flaps(const topo::ParallelNetwork& net,
                                       int count, SimTime start, SimTime span,
                                       SimTime period, SimTime down_for,
                                       std::uint64_t seed) {
  Rng rng(seed);
  auto cables = fabric_cables(net);
  rng.shuffle(cables);
  if (static_cast<int>(cables.size()) > count) {
    cables.resize(static_cast<std::size_t>(count));
  }
  FaultPlan plan;
  for (const auto& [plane, link] : cables) {
    for (SimTime t = 0; t < span; t += period) {
      plan.flap_cable(start + t, down_for, plane, link);
    }
  }
  return plan;
}

FaultPlan FaultPlan::random_degraded_links(const topo::ParallelNetwork& net,
                                           int count, SimTime start,
                                           SimTime duration, double loss_rate,
                                           double rate_scale,
                                           std::uint64_t seed) {
  Rng rng(seed);
  auto cables = fabric_cables(net);
  rng.shuffle(cables);
  if (static_cast<int>(cables.size()) > count) {
    cables.resize(static_cast<std::size_t>(count));
  }
  FaultPlan plan;
  for (const auto& [plane, link] : cables) {
    plan.degrade_cable(start, start + duration, plane, link, loss_rate,
                       rate_scale);
  }
  return plan;
}

// ---------------------------------------------------------- FaultInjector

void FaultInjector::arm(const FaultPlan& plan) {
  if (plan.empty()) return;
  pending_.insert(pending_.end(), plan.events().begin(), plan.events().end());
  // Re-sort the not-yet-applied tail (arming twice interleaves plans).
  std::stable_sort(pending_.begin() + next_, pending_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  events_.schedule_at(pending_[static_cast<std::size_t>(next_)].at, this);
}

void FaultInjector::do_next_event() {
  while (next_ < static_cast<int>(pending_.size()) &&
         pending_[static_cast<std::size_t>(next_)].at <= events_.now()) {
    apply(pending_[static_cast<std::size_t>(next_)]);
    ++next_;
  }
  if (next_ < static_cast<int>(pending_.size())) {
    events_.schedule_at(pending_[static_cast<std::size_t>(next_)].at, this);
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kCableFail:
      network_.set_cable_failed(event.plane, event.link, true);
      break;
    case FaultKind::kCableRecover:
      network_.set_cable_failed(event.plane, event.link, false);
      break;
    case FaultKind::kPlaneFail:
      network_.set_plane_failed(event.plane, true);
      break;
    case FaultKind::kPlaneRecover:
      network_.set_plane_failed(event.plane, false);
      break;
    case FaultKind::kCableDegrade:
      network_.set_cable_degraded(event.plane, event.link, event.loss_rate,
                                  event.rate_scale);
      break;
    case FaultKind::kCableRestore:
      network_.set_cable_degraded(event.plane, event.link, 0.0, 1.0);
      break;
  }
  applied_.push_back({event, network_.total_drops()});
  for (const auto& listener : listeners_) listener(event);
}

}  // namespace pnet::sim
