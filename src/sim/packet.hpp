// Packets, routes and the slab pool that recycles packet objects.
//
// As in htsim, forwarding is source-routed: a packet carries a pointer to an
// immutable Route (a chain of PacketSinks — queues, pipes, and a transport
// endpoint last) plus the index of its next hop. There are no switch
// forwarding tables; path selection happened at the end host, which is
// exactly the P-Net model (section 3.4).
//
// Memory layout (the data-plane half of DESIGN.md §5h):
//  * Packets live in contiguous 4K-packet slabs owned by PacketPool.
//    Addresses are stable (slabs never move), so Packet* stays the working
//    currency of the hot path, while PacketRef gives a compact 4-byte
//    index handle for tables that should not store pointers.
//  * Every Packet carries an intrusive `next` link, so the pool free list,
//    queue FIFOs (sim::Queue) and pipe in-flight lists (sim::Pipe) are all
//    singly-linked lists threaded through the slabs — zero allocations on
//    the enqueue/dequeue/recycle paths.
//  * Routes are interned in sim::RouteArena (one arena per SimNetwork);
//    Route itself is a non-owning {span, hop_count} view, mirroring the
//    routing layer's PathRef/PathView split.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "util/ids.hpp"
#include "util/units.hpp"

namespace pnet::sim {

struct Packet;

class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void receive(Packet& packet) = 0;
};

/// An immutable forwarding chain. `hop_count` is the number of physical
/// links the route crosses (queues == links; pipes do not add hops).
/// Non-owning: the sink span points into a RouteArena slab (production) or
/// caller-owned storage (OwnedRoute, tests).
struct Route {
  std::span<PacketSink* const> sinks;
  int hop_count = 0;
};

/// Compact index handle to a pooled packet: slab slot, stable for the
/// lifetime of the PacketPool. Meaningless without its pool.
struct PacketRef {
  static constexpr std::uint32_t kNull = 0xFFFF'FFFF;
  std::uint32_t v = kNull;

  [[nodiscard]] bool null() const { return v == kNull; }
  friend bool operator==(const PacketRef&, const PacketRef&) = default;
};

/// Exactly one cache line (64 bytes, asserted below): a forwarding event
/// touches a packet long after it went cold, so every line the hot path
/// does NOT have to load is a cache miss saved. The flags are one-bit
/// bitfields and the narrow fields carry width comments for the same
/// reason.
struct alignas(64) Packet {
  /// Intrusive link: threads this packet through exactly one container at
  /// a time — the pool free list, a queue FIFO, or a pipe in-flight list.
  Packet* next = nullptr;
  const Route* route = nullptr;
  /// Byte offset of the first payload byte (data), or unused for ACKs.
  std::uint64_t seq = 0;
  /// Cumulative ACK: the next byte the receiver expects.
  std::uint64_t ack_seq = 0;
  /// Timestamp echoed by the receiver so the sender can sample RTT without
  /// keeping per-packet state (Karn's rule: not echoed for retransmits).
  SimTime ts_echo = -1;
  /// Scratch timestamp owned by the container currently holding the packet
  /// (sim::Pipe stores the delivery deadline here).
  SimTime due = 0;
  FlowId flow;
  std::uint32_t size_bytes = 0;
  std::uint16_t next_hop = 0;
  /// MPTCP subflow index (0 for plain TCP; connections have ≤ a handful).
  std::int8_t subflow = 0;
  bool is_ack : 1 = false;
  bool retransmitted : 1 = false;
  /// ECN: Congestion Experienced, set by a queue above its marking
  /// threshold (data packets); echoed back to the sender on ACKs.
  bool ecn_ce : 1 = false;
  bool ecn_echo : 1 = false;
  /// NDP-style trimming: an overloaded queue cut this data packet to its
  /// header. The receiver learns WHAT was lost instantly and NACKs it.
  bool trimmed : 1 = false;
  /// On ACKs: this is (also) a NACK for the segment starting at `seq`.
  bool is_nack : 1 = false;

  /// The packet's slab-slot handle within its pool.
  [[nodiscard]] PacketRef ref() const { return PacketRef{self_}; }

  /// Hands the packet to the next sink on its route.
  void forward() {
    assert(route != nullptr && next_hop < route->sinks.size());
    PacketSink* sink = route->sinks[next_hop++];
    sink->receive(*this);
  }

 private:
  friend class PacketPool;
  /// Slab slot index, assigned once when the slot is first handed out and
  /// preserved across recycles.
  std::uint32_t self_ = PacketRef::kNull;
};

static_assert(sizeof(Packet) == 64,
              "Packet must stay one cache line; see DESIGN.md §5h");

/// Intrusive FIFO threaded through Packet::next. A packet may sit in at
/// most one list at a time (enforced by the data plane's ownership
/// hand-offs, not by the list). Zero allocations; O(1) push/pop.
class PacketList {
 public:
  void push_back(Packet* packet) {
    packet->next = nullptr;
    if (tail_ == nullptr) {
      head_ = packet;
    } else {
      tail_->next = packet;
    }
    tail_ = packet;
    ++size_;
  }

  Packet* pop_front() {
    assert(head_ != nullptr);
    Packet* packet = head_;
    head_ = packet->next;
    if (head_ == nullptr) tail_ = nullptr;
    packet->next = nullptr;
    --size_;
    return packet;
  }

  [[nodiscard]] Packet* front() const { return head_; }
  [[nodiscard]] bool empty() const { return head_ == nullptr; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  Packet* head_ = nullptr;
  Packet* tail_ = nullptr;
  std::size_t size_ = 0;
};

/// Slab pool. Millions of packets flow through a run; packets are stored
/// in contiguous 4K-packet slabs (stable addresses, index-addressable via
/// PacketRef) and recycled through an intrusive LIFO free list, so the
/// steady-state forwarding path never touches the allocator.
class PacketPool {
 public:
  /// Packets per slab: 4096 * sizeof(Packet) = 256 KiB per slab.
  static constexpr std::size_t kSlabPackets = 4096;

  Packet* allocate() {
    if (free_head_ != nullptr) {
      Packet* p = free_head_;
      free_head_ = p->next;
      --free_count_;
      const std::uint32_t self = p->self_;
      *p = Packet{};  // full field reset for the new lifetime
      p->self_ = self;
      return p;
    }
    if (bump_ == kSlabPackets) {
      slabs_.push_back(std::make_unique<Packet[]>(kSlabPackets));
      bump_ = 0;
    }
    Packet* p = &slabs_.back()[bump_];
    p->self_ = static_cast<std::uint32_t>((slabs_.size() - 1) * kSlabPackets +
                                          bump_);
    ++bump_;
    ++constructed_;
    return p;
  }

  void free(Packet* packet) {
    packet->next = free_head_;
    free_head_ = packet;
    ++free_count_;
  }

  /// Allocates a packet carrying a field-for-field copy of `src` (which may
  /// live in a different pool). The clone keeps THIS pool's slab-slot handle
  /// and starts unlinked — cross-shard handoff re-homes a packet by cloning
  /// into the destination shard's pool and freeing the original.
  Packet* clone(const Packet& src) {
    Packet* p = allocate();
    const std::uint32_t self = p->self_;
    *p = src;
    p->self_ = self;
    p->next = nullptr;
    return p;
  }

  /// Resolves a handle produced by this pool (Packet::ref()).
  [[nodiscard]] Packet& get(PacketRef ref) {
    assert(ref.v < constructed_ || ref.v < slabs_.size() * kSlabPackets);
    return slabs_[ref.v / kSlabPackets][ref.v % kSlabPackets];
  }
  [[nodiscard]] const Packet& get(PacketRef ref) const {
    return const_cast<PacketPool*>(this)->get(ref);
  }

  /// Packets ever handed out (slab slots in use, free or live).
  [[nodiscard]] std::size_t allocated() const { return constructed_; }
  [[nodiscard]] std::size_t live() const {
    return constructed_ - free_count_;
  }
  [[nodiscard]] std::size_t slabs() const { return slabs_.size(); }
  [[nodiscard]] std::size_t slab_bytes() const {
    return slabs_.size() * kSlabPackets * sizeof(Packet);
  }

 private:
  std::vector<std::unique_ptr<Packet[]>> slabs_;
  std::size_t bump_ = kSlabPackets;  // next fresh slot in the newest slab
  std::size_t constructed_ = 0;
  Packet* free_head_ = nullptr;
  std::size_t free_count_ = 0;
};

/// Owning Route builder for tests/benches that wire ad-hoc sink chains.
/// Production routes are interned in sim::RouteArena instead. Not copyable
/// or movable: the published Route points into this object's storage.
class OwnedRoute {
 public:
  OwnedRoute() = default;
  OwnedRoute(std::initializer_list<PacketSink*> sinks, int hop_count = 0) {
    assign(std::vector<PacketSink*>(sinks), hop_count);
  }
  OwnedRoute(const OwnedRoute&) = delete;
  OwnedRoute& operator=(const OwnedRoute&) = delete;

  void assign(std::vector<PacketSink*> sinks, int hop_count = 0) {
    sinks_ = std::move(sinks);
    route_.sinks = sinks_;
    route_.hop_count = hop_count;
  }
  void assign(std::initializer_list<PacketSink*> sinks, int hop_count = 0) {
    assign(std::vector<PacketSink*>(sinks), hop_count);
  }

  [[nodiscard]] const Route* get() const { return &route_; }
  [[nodiscard]] const Route* operator&() const { return &route_; }

 private:
  std::vector<PacketSink*> sinks_;
  Route route_;
};

}  // namespace pnet::sim
