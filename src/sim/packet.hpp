// Packets, routes and the pool that recycles packet objects.
//
// As in htsim, forwarding is source-routed: a packet carries a pointer to an
// immutable Route (a chain of PacketSinks — queues, pipes, and a transport
// endpoint last) plus the index of its next hop. There are no switch
// forwarding tables; path selection happened at the end host, which is
// exactly the P-Net model (section 3.4).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/ids.hpp"
#include "util/units.hpp"

namespace pnet::sim {

struct Packet;

class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void receive(Packet& packet) = 0;
};

/// An immutable forwarding chain. `hop_count` is the number of physical
/// links the route crosses (queues == links; pipes do not add hops).
struct Route {
  std::vector<PacketSink*> sinks;
  int hop_count = 0;
};

struct Packet {
  FlowId flow;
  /// Byte offset of the first payload byte (data), or unused for ACKs.
  std::uint64_t seq = 0;
  /// Cumulative ACK: the next byte the receiver expects.
  std::uint64_t ack_seq = 0;
  std::uint32_t size_bytes = 0;
  bool is_ack = false;
  bool retransmitted = false;
  /// Timestamp echoed by the receiver so the sender can sample RTT without
  /// keeping per-packet state (Karn's rule: not echoed for retransmits).
  SimTime ts_echo = -1;
  /// MPTCP subflow index (0 for plain TCP).
  int subflow = 0;
  /// ECN: Congestion Experienced, set by a queue above its marking
  /// threshold (data packets); echoed back to the sender on ACKs.
  bool ecn_ce = false;
  bool ecn_echo = false;
  /// NDP-style trimming: an overloaded queue cut this data packet to its
  /// header. The receiver learns WHAT was lost instantly and NACKs it.
  bool trimmed = false;
  /// On ACKs: this is (also) a NACK for the segment starting at `seq`.
  bool is_nack = false;

  const Route* route = nullptr;
  std::uint32_t next_hop = 0;

  /// Hands the packet to the next sink on its route.
  void forward() {
    assert(route != nullptr && next_hop < route->sinks.size());
    PacketSink* sink = route->sinks[next_hop++];
    sink->receive(*this);
  }
};

/// Free-list pool. Millions of packets flow through a run; recycling avoids
/// allocator churn and keeps packets out of the hot path's cache misses.
class PacketPool {
 public:
  Packet* allocate() {
    if (free_.empty()) {
      storage_.push_back(std::make_unique<Packet>());
      return storage_.back().get();
    }
    Packet* p = free_.back();
    free_.pop_back();
    *p = Packet{};
    return p;
  }

  void free(Packet* packet) { free_.push_back(packet); }

  [[nodiscard]] std::size_t allocated() const { return storage_.size(); }
  [[nodiscard]] std::size_t live() const {
    return storage_.size() - free_.size();
  }

 private:
  std::vector<std::unique_ptr<Packet>> storage_;
  std::vector<Packet*> free_;
};

}  // namespace pnet::sim
