#include "sim/network.hpp"

#include <algorithm>

namespace pnet::sim {

SimNetwork::SimNetwork(EventQueue& events, PacketPool& pool,
                       const topo::ParallelNetwork& net,
                       const SimConfig& config)
    : net_(net), config_(config) {
  queues_.resize(static_cast<std::size_t>(net.num_planes()));
  pipes_.resize(static_cast<std::size_t>(net.num_planes()));
  for (int p = 0; p < net.num_planes(); ++p) {
    const topo::Graph& g = net.plane(p).graph;
    auto& qs = queues_[static_cast<std::size_t>(p)];
    auto& ps = pipes_[static_cast<std::size_t>(p)];
    qs.reserve(static_cast<std::size_t>(g.num_links()));
    ps.reserve(static_cast<std::size_t>(g.num_links()));
    for (int l = 0; l < g.num_links(); ++l) {
      const topo::Link& link = g.link(LinkId{l});
      qs.push_back(std::make_unique<Queue>(events, pool, link.rate_bps,
                                           config.queue_buffer_bytes,
                                           config.ecn_threshold_bytes,
                                           config.priority_acks,
                                           config.trim_to_header));
      ps.push_back(std::make_unique<Pipe>(events, link.latency));
    }
  }
}

const Route* SimNetwork::make_route(const routing::Path& path,
                                    PacketSink& endpoint) {
  auto route = std::make_unique<Route>();
  route->sinks.reserve(path.links.size() * 2 + 1);
  for (LinkId id : path.links) {
    route->sinks.push_back(&queue(path.plane, id));
    route->sinks.push_back(&pipe(path.plane, id));
  }
  route->sinks.push_back(&endpoint);
  route->hop_count = path.hops();
  routes_.push_back(std::move(route));
  return routes_.back().get();
}

routing::Path SimNetwork::reverse_path(const routing::Path& path) const {
  const topo::Graph& g = net_.plane(path.plane).graph;
  routing::Path rev;
  rev.plane = path.plane;
  rev.links.reserve(path.links.size());
  for (auto it = path.links.rbegin(); it != path.links.rend(); ++it) {
    rev.links.push_back(g.reverse(*it));
  }
  return rev;
}

std::uint64_t SimNetwork::total_drops() const {
  std::uint64_t total = 0;
  for (const auto& plane : queues_) {
    for (const auto& q : plane) total += q->drops();
  }
  return total;
}

std::uint64_t SimNetwork::total_ecn_marks() const {
  std::uint64_t total = 0;
  for (const auto& plane : queues_) {
    for (const auto& q : plane) total += q->ecn_marks();
  }
  return total;
}

void SimNetwork::set_cable_failed(int plane, LinkId link, bool failed) {
  queue(plane, link).set_failed(failed);
  queue(plane, net_.plane(plane).graph.reverse(link)).set_failed(failed);
}

void SimNetwork::set_plane_failed(int plane, bool failed) {
  for (const auto& q : queues_[static_cast<std::size_t>(plane)]) {
    q->set_failed(failed);
  }
}

std::vector<double> FlowLogger::fct_us() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    out.push_back(units::to_microseconds(r.end - r.start));
  }
  return out;
}

int FlowLogger::total_retransmits() const {
  int total = 0;
  for (const auto& r : records_) total += r.retransmits;
  return total;
}

int FlowLogger::total_timeouts() const {
  int total = 0;
  for (const auto& r : records_) total += r.timeouts;
  return total;
}

void FlowLogger::write_csv(std::ostream& out) const {
  out << "flow,src,dst,bytes,start_ps,end_ps,fct_us,hops,subflows,"
         "retransmits,timeouts\n";
  for (const auto& r : records_) {
    out << r.id.v << ',' << r.src.v << ',' << r.dst.v << ',' << r.bytes
        << ',' << r.start << ',' << r.end << ','
        << units::to_microseconds(r.end - r.start) << ',' << r.hops << ','
        << r.subflows << ',' << r.retransmits << ',' << r.timeouts << '\n';
  }
}

TcpSrc& FlowFactory::tcp_flow(HostId src, HostId dst,
                              const routing::Path& path, std::uint64_t bytes,
                              SimTime start, FlowCallback on_complete) {
  const FlowId id = next_id();
  sources_.push_back(std::make_unique<TcpSrc>(events_, pool_, id,
                                              network_.config().tcp));
  TcpSrc& source = *sources_.back();
  sinks_.push_back(std::make_unique<TcpSink>(events_, pool_,
                                             network_.config().tcp));
  TcpSink& sink = *sinks_.back();

  const Route* fwd = network_.make_route(path, sink);
  const Route* rev =
      network_.make_route(network_.reverse_path(path), source);
  sink.set_ack_route(rev);
  source.set_flow_size(bytes);

  const int hops = path.hops();
  source.set_completion_callback(
      [this, id, src, dst, bytes, start, hops,
       cb = std::move(on_complete)](TcpSrc& s) {
        FlowRecord record{id,    src,
                          dst,   bytes,
                          start, s.completion_time(),
                          hops,  1,
                          s.retransmits(), s.timeouts()};
        logger_.record(record);
        if (cb) cb(record);
      });
  source.connect(fwd, start);
  return source;
}

MptcpConnection& FlowFactory::mptcp_flow(HostId src, HostId dst,
                                         const std::vector<routing::Path>& paths,
                                         std::uint64_t bytes, SimTime start,
                                         FlowCallback on_complete,
                                         Coupling coupling) {
  const FlowId id = next_id();
  connections_.push_back(std::make_unique<MptcpConnection>(
      events_, pool_, id, network_.config().tcp, bytes, coupling));
  MptcpConnection& connection = *connections_.back();

  // MP_JOIN staggering: secondary subflows join one handshake later, the
  // handshake riding the primary path's round trip.
  SimTime join_delay = 0;
  if (network_.config().tcp.mptcp_staggered_join && !paths.empty()) {
    const auto& primary = paths.front();
    join_delay =
        2 * primary.latency(network_.net().plane(primary.plane).graph);
  }
  bool first = true;
  for (const auto& path : paths) {
    MptcpSubflow& subflow = connection.add_subflow();
    sinks_.push_back(std::make_unique<TcpSink>(events_, pool_,
                                               network_.config().tcp));
    TcpSink& sink = *sinks_.back();
    const Route* fwd = network_.make_route(path, sink);
    const Route* rev =
        network_.make_route(network_.reverse_path(path), subflow);
    sink.set_ack_route(rev);
    subflow.connect(fwd, first ? start : start + join_delay);
    first = false;
  }

  const int hops = paths.empty() ? 0 : paths.front().hops();
  const int num_subflows = static_cast<int>(paths.size());
  connection.set_completion_callback(
      [this, id, src, dst, bytes, start, hops, num_subflows,
       cb = std::move(on_complete)](MptcpConnection& c) {
        FlowRecord record{id,    src,
                          dst,   bytes,
                          start, c.completion_time(),
                          hops,  num_subflows,
                          c.total_retransmits(), c.total_timeouts()};
        logger_.record(record);
        if (cb) cb(record);
      });
  return connection;
}

}  // namespace pnet::sim
