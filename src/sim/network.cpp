#include "sim/network.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace pnet::sim {

SimNetwork::SimNetwork(EventQueue& events, PacketPool& pool,
                       const topo::ParallelNetwork& net,
                       const SimConfig& config, ShardSet* shards)
    : events_(events), net_(net), config_(config), shards_(shards) {
  queues_.resize(static_cast<std::size_t>(net.num_planes()));
  pipes_.resize(static_cast<std::size_t>(net.num_planes()));
  if (shards_ != nullptr) {
    boundaries_.resize(static_cast<std::size_t>(net.num_planes()));
    owners_.resize(static_cast<std::size_t>(net.num_planes()));
  }
  // Size the dense counter array up front: queues keep raw pointers into
  // it, so it must never reallocate after this.
  stats_offset_.reserve(static_cast<std::size_t>(net.num_planes()) + 1);
  stats_offset_.push_back(0);
  for (int p = 0; p < net.num_planes(); ++p) {
    stats_offset_.push_back(
        stats_offset_.back() +
        static_cast<std::size_t>(net.plane(p).graph.num_links()));
  }
  queue_stats_.resize(stats_offset_.back());
  for (int p = 0; p < net.num_planes(); ++p) {
    const topo::Graph& g = net.plane(p).graph;
    auto& qs = queues_[static_cast<std::size_t>(p)];
    auto& ps = pipes_[static_cast<std::size_t>(p)];
    qs.reserve(static_cast<std::size_t>(g.num_links()));
    ps.reserve(static_cast<std::size_t>(g.num_links()));
    for (int l = 0; l < g.num_links(); ++l) {
      const topo::Link& link = g.link(LinkId{l});
      QueueStats* stats =
          &queue_stats_[stats_offset_[static_cast<std::size_t>(p)] +
                        static_cast<std::size_t>(l)];
      // A link belongs to the shard of its source node: host-side links to
      // the host's shard, switch-side links to the plane's. In serial mode
      // everything binds to the single queue/pool pair.
      EventQueue* link_events = &events;
      PacketPool* link_pool = &pool;
      std::size_t owner = 0;
      std::size_t dst_owner = 0;
      if (shards_ != nullptr) {
        const std::size_t plane_shard = shards_->shard_of_plane(p);
        owner = g.is_host(link.src)
                    ? shards_->shard_of_host(g.node(link.src).host)
                    : plane_shard;
        dst_owner = g.is_host(link.dst)
                        ? shards_->shard_of_host(g.node(link.dst).host)
                        : plane_shard;
        link_events = &shards_->shard(owner).events;
        link_pool = &shards_->shard(owner).pool;
        owners_[static_cast<std::size_t>(p)].push_back(
            static_cast<std::uint32_t>(owner));
      }
      qs.push_back(std::make_unique<Queue>(*link_events, *link_pool,
                                           link.rate_bps,
                                           config.queue_buffer_bytes,
                                           config.ecn_threshold_bytes,
                                           config.priority_acks,
                                           config.trim_to_header, stats));
      // Per-queue loss streams are seeded from the (plane, link) identity
      // so degraded-link drops are independent across ports yet replay
      // bit-identically from the same fault plan.
      qs.back()->reseed_loss_rng(
          mix64((static_cast<std::uint64_t>(p) << 32) ^
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(l))));
      if (shards_ != nullptr && owner != dst_owner) {
        // Crossing link: the propagation delay rides the handoff itself,
        // which is what gives the barrier its lookahead.
        shards_->note_crossing(link.latency);
        boundaries_[static_cast<std::size_t>(p)].push_back(
            std::make_unique<BoundaryPipe>(shards_->shard(owner), dst_owner,
                                           link.latency));
        ps.push_back(nullptr);
      } else {
        ps.push_back(std::make_unique<Pipe>(*link_events, link.latency));
        if (shards_ != nullptr) {
          boundaries_[static_cast<std::size_t>(p)].push_back(nullptr);
        }
      }
    }
    cable_failed_.emplace_back(static_cast<std::size_t>(g.num_links()), 0);
  }
  plane_failed_.assign(static_cast<std::size_t>(net.num_planes()), 0);
}

const Route* SimNetwork::make_route(const routing::Path& path,
                                    PacketSink& endpoint) {
  route_scratch_.clear();
  route_scratch_.reserve(path.links.size() * 2 + 1);
  for (LinkId id : path.links) {
    route_scratch_.push_back(&queue(path.plane, id));
    BoundaryPipe* crossing = boundary(path.plane, id);
    route_scratch_.push_back(crossing != nullptr
                                 ? static_cast<PacketSink*>(crossing)
                                 : &pipe(path.plane, id));
  }
  route_scratch_.push_back(&endpoint);
  return routes_.intern(route_scratch_, path.hops());
}

routing::Path SimNetwork::reverse_path(const routing::Path& path) const {
  const topo::Graph& g = net_.plane(path.plane).graph;
  routing::Path rev;
  rev.plane = path.plane;
  rev.links.reserve(path.links.size());
  for (auto it = path.links.rbegin(); it != path.links.rend(); ++it) {
    rev.links.push_back(g.reverse(*it));
  }
  return rev;
}

std::uint64_t SimNetwork::total_drops() const {
  std::uint64_t total = 0;
  for (const QueueStats& s : queue_stats_) total += s.drops;
  return total;
}

std::uint64_t SimNetwork::total_ecn_marks() const {
  std::uint64_t total = 0;
  for (const QueueStats& s : queue_stats_) total += s.ecn_marks;
  return total;
}

std::uint64_t SimNetwork::total_queued_bytes() const {
  std::uint64_t total = 0;
  for (const QueueStats& s : queue_stats_) {
    total += s.queued_bytes + s.ack_queued_bytes;
  }
  return total;
}

std::uint64_t SimNetwork::max_queued_bytes() const {
  std::uint64_t max = 0;
  for (const QueueStats& s : queue_stats_) {
    max = std::max(max, s.queued_bytes + s.ack_queued_bytes);
  }
  return max;
}

std::uint64_t SimNetwork::total_config_clamped() const {
  std::uint64_t total = 0;
  for (const QueueStats& s : queue_stats_) total += s.config_clamped;
  return total;
}

void SimNetwork::set_audit(util::Audit* audit) {
  for (std::size_t p = 0; p < queues_.size(); ++p) {
    for (std::size_t l = 0; l < queues_[p].size(); ++l) {
      // Sharded queues audit into their owner shard's collecting auditor
      // (a worker thread must never touch the possibly fail-fast main
      // one); violations merge at ShardSet::collect_audit.
      util::Audit* a = audit;
      if (shards_ != nullptr && audit != nullptr) {
        a = &shards_->shard(owners_[p][l]).audit;
      }
      queues_[p][l]->set_audit(a);
    }
  }
}

void SimNetwork::audit_check(util::Audit& audit) const {
  for (std::size_t p = 0; p < queues_.size(); ++p) {
    for (std::size_t l = 0; l < queues_[p].size(); ++l) {
      queues_[p][l]->audit_check(audit, "queue[plane=" + std::to_string(p) +
                                            ",link=" + std::to_string(l) +
                                            "]");
    }
  }
}

std::uint64_t SimNetwork::plane_forwarded_bytes(int plane) const {
  const auto p = static_cast<std::size_t>(plane);
  std::uint64_t total = 0;
  for (std::size_t i = stats_offset_[p]; i < stats_offset_[p + 1]; ++i) {
    total += queue_stats_[i].forwarded_bytes;
  }
  return total;
}

std::uint64_t SimNetwork::plane_queued_bytes(int plane) const {
  const auto p = static_cast<std::size_t>(plane);
  std::uint64_t total = 0;
  for (std::size_t i = stats_offset_[p]; i < stats_offset_[p + 1]; ++i) {
    total += queue_stats_[i].queued_bytes + queue_stats_[i].ack_queued_bytes;
  }
  return total;
}

void SimNetwork::apply_link_state(int plane, LinkId link) {
  const auto p = static_cast<std::size_t>(plane);
  const bool down = cable_failed_[p][static_cast<std::size_t>(link.v)] != 0 ||
                    plane_failed_[p] != 0;
  queue(plane, link).set_failed(down);
}

void SimNetwork::set_cable_failed(int plane, LinkId link, bool failed) {
  const LinkId rev = net_.plane(plane).graph.reverse(link);
  auto& flags = cable_failed_[static_cast<std::size_t>(plane)];
  if ((flags[static_cast<std::size_t>(link.v)] != 0) == failed) return;
  flags[static_cast<std::size_t>(link.v)] = failed ? 1 : 0;
  flags[static_cast<std::size_t>(rev.v)] = failed ? 1 : 0;
  if (failed) ++cable_fail_transitions_;
  apply_link_state(plane, link);
  apply_link_state(plane, rev);
  PNET_TRACE_INSTANT(trace_, failed ? "cable_fail" : "cable_recover",
                     events_.now(),
                     (static_cast<std::int64_t>(plane) << 32) |
                         static_cast<std::uint32_t>(link.v));
}

bool SimNetwork::cable_failed(int plane, LinkId link) const {
  return cable_failed_[static_cast<std::size_t>(plane)]
                      [static_cast<std::size_t>(link.v)] != 0;
}

void SimNetwork::set_plane_failed(int plane, bool failed) {
  const auto p = static_cast<std::size_t>(plane);
  if ((plane_failed_[p] != 0) == failed) return;
  plane_failed_[p] = failed ? 1 : 0;
  if (failed) ++plane_fail_transitions_;
  const int links = net_.plane(plane).graph.num_links();
  for (int l = 0; l < links; ++l) apply_link_state(plane, LinkId{l});
  PNET_TRACE_INSTANT(trace_, failed ? "plane_fail" : "plane_recover",
                     events_.now(), plane);
}

void SimNetwork::set_cable_degraded(int plane, LinkId link, double loss_rate,
                                    double rate_scale) {
  const LinkId rev = net_.plane(plane).graph.reverse(link);
  for (const LinkId id : {link, rev}) {
    queue(plane, id).set_loss_rate(loss_rate);
    queue(plane, id).set_rate_scale(rate_scale);
  }
  const bool degraded = loss_rate > 0.0 || rate_scale < 1.0;
  PNET_TRACE_INSTANT(trace_, degraded ? "cable_degrade" : "cable_restore",
                     events_.now(),
                     (static_cast<std::int64_t>(plane) << 32) |
                         static_cast<std::uint32_t>(link.v));
}

std::vector<double> FlowLogger::fct_us() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    if (!r.completed) continue;
    out.push_back(units::to_microseconds(r.end - r.start));
  }
  return out;
}

int FlowLogger::total_retransmits() const {
  int total = 0;
  for (const auto& r : records_) total += r.retransmits;
  return total;
}

int FlowLogger::total_timeouts() const {
  int total = 0;
  for (const auto& r : records_) total += r.timeouts;
  return total;
}

void FlowLogger::write_csv(std::ostream& out) const {
  out << "flow,src,dst,bytes,start_ps,end_ps,fct_us,hops,subflows,"
         "retransmits,timeouts,repaths,delivered,completed\n";
  for (const auto& r : records_) {
    out << r.id.v << ',' << r.src.v << ',' << r.dst.v << ',' << r.bytes
        << ',' << r.start << ',' << r.end << ','
        << units::to_microseconds(r.end - r.start) << ',' << r.hops << ','
        << r.subflows << ',' << r.retransmits << ',' << r.timeouts << ','
        << r.repaths << ',' << r.delivered_bytes << ','
        << (r.completed ? 1 : 0) << '\n';
  }
}

void FlowFactory::reserve_events(int new_endpoints) {
  endpoints_ += static_cast<std::size_t>(new_endpoints);
  // Bound on simultaneously pending events: one in-service completion per
  // queue, one delivery wake-up per pipe (2 * links), a start event plus a
  // short stack of stale RTO wake-ups per transport endpoint (arm_rto
  // leaves superseded wake-ups in the heap until they fire), and slack for
  // the telemetry driver, fault injector, and workload apps.
  const std::size_t bound =
      2 * network_.total_links() +
      static_cast<std::size_t>(network_.net().num_hosts()) +
      16 * endpoints_ + 64;
  events_.request_capacity(bound);
  // Sharded runs split the same pending set across shard heaps; the
  // per-shard bound is kept at the global one (cheap, and endpoints are
  // not balanced across shards in general).
  if (shards_ != nullptr) shards_->request_capacity(bound);
}

TcpSrc& FlowFactory::tcp_flow(HostId src, HostId dst,
                              const routing::Path& path, std::uint64_t bytes,
                              SimTime start, FlowCallback on_complete) {
  reserve_events(1);
  const FlowId id = next_id();
  sources_.push_back(std::make_unique<TcpSrc>(host_events(src),
                                              host_pool(src), id,
                                              network_.config().tcp));
  TcpSrc& source = *sources_.back();
  sinks_.push_back(std::make_unique<TcpSink>(host_events(dst),
                                             host_pool(dst),
                                             network_.config().tcp));
  TcpSink& sink = *sinks_.back();

  const Route* fwd = network_.make_route(path, sink);
  const Route* rev =
      network_.make_route(network_.reverse_path(path), source);
  sink.set_ack_route(rev);
  source.set_flow_size(bytes);

  if (repath_provider_) {
    tcp_metas_.push_back(std::make_unique<TcpFlowMeta>(
        TcpFlowMeta{&source, &sink, src, dst, bytes, path.plane}));
    source.set_repath_callback(
        [this, meta = tcp_metas_.back().get()](TcpSrc&) -> const Route* {
          if (shards_ != nullptr && shards_->in_worker_phase()) {
            // RTO-driven repath on a shard thread: route building mutates
            // the route arena and telemetry, so park it until the barrier
            // and install the fresh route there. The source keeps its old
            // route (and its RTO backoff) for the fraction of an epoch in
            // between — deterministically, at every worker count.
            shards_->defer(shards_->shard_of_host(meta->src),
                           host_events(meta->src).now(), [this, meta] {
                             if (meta->source->complete()) return;
                             meta->source->apply_repath(repath(*meta));
                           });
            return nullptr;
          }
          return repath(*meta);
        });
  }

  const int hops = path.hops();
  source.set_completion_callback(
      [this, id, src, dst, bytes, start, hops,
       cb = std::move(on_complete)](TcpSrc& s) {
        FlowRecord record{id,    src,
                          dst,   bytes,
                          start, s.completion_time(),
                          hops,  1,
                          s.retransmits(), s.timeouts(), s.repaths()};
        record.delivered_bytes = bytes;
        deliver_record(record, cb, src);
      });
  tcp_info_.push_back(LaunchInfo{id, src, dst, bytes, start, hops, false});
  note_started(tcp_info_.back());
  source.connect(fwd, start);
  return source;
}

const Route* FlowFactory::repath(TcpFlowMeta& meta) {
  auto paths =
      repath_provider_(meta.src, meta.dst, meta.plane, meta.bytes);
  if (paths.empty()) return nullptr;
  const routing::Path& path = paths.front();
  const Route* fwd = network_.make_route(path, *meta.sink);
  const Route* rev =
      network_.make_route(network_.reverse_path(path), *meta.source);
  meta.sink->set_ack_route(rev);
  meta.plane = path.plane;
  if (telemetry_ != nullptr) {
    telemetry_->registry.counter("repaths").inc();
    PNET_TRACE_INSTANT(&telemetry_->trace, "repath", events_.now(),
                       meta.source->flow().v);
  }
  return fwd;
}

int FlowFactory::repin_flows(int from_plane, int max_flows,
                             const RepinPick& pick) {
  int moved = 0;
  for (const auto& meta : tcp_metas_) {
    if (moved >= max_flows) break;
    if (meta->plane != from_plane || meta->source->complete()) continue;
    auto paths = pick(meta->src, meta->dst, meta->bytes);
    if (paths.empty()) continue;
    const routing::Path& path = paths.front();
    // Same rewiring as repath(): fresh forward + reverse routes, the sink's
    // ACK route follows, and the source restarts cleanly on the new path.
    const Route* fwd = network_.make_route(path, *meta->sink);
    const Route* rev =
        network_.make_route(network_.reverse_path(path), *meta->source);
    meta->sink->set_ack_route(rev);
    meta->plane = path.plane;
    meta->source->apply_repath(fwd);
    // switch_route cleared the RTO deadline and rewound go-back-N; an
    // idle source (everything sent, waiting on in-flight data) would
    // otherwise never wake again once those old-route packets drain.
    meta->source->kick();
    ++moved;
    if (telemetry_ != nullptr) {
      telemetry_->registry.counter("repins").inc();
      PNET_TRACE_INSTANT(&telemetry_->trace, "repin", events_.now(),
                         meta->source->flow().v);
    }
  }
  return moved;
}

std::vector<int> FlowFactory::live_tcp_planes() const {
  std::vector<int> out;
  for (const auto& meta : tcp_metas_) {
    if (!meta->source->complete()) out.push_back(meta->plane);
  }
  return out;
}

void FlowFactory::on_plane_failed(int plane) {
  for (const auto& meta : tcp_metas_) {
    if (meta->plane == plane && !meta->source->complete()) {
      meta->source->force_repath();
    }
  }
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    MptcpConnection& conn = *connections_[i];
    if (conn.complete()) continue;
    const auto& planes = connection_planes_[i];
    for (std::size_t s = 0; s < planes.size(); ++s) {
      if (planes[s] != plane) continue;
      MptcpSubflow& sf = conn.subflow(static_cast<int>(s));
      if (!sf.abandoned()) conn.handle_stuck_subflow(sf);
    }
  }
}

void FlowFactory::on_plane_recovered(int plane) {
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    MptcpConnection& conn = *connections_[i];
    if (conn.complete()) continue;
    const auto& planes = connection_planes_[i];
    for (std::size_t s = 0; s < planes.size(); ++s) {
      if (planes[s] != plane) continue;
      MptcpSubflow& sf = conn.subflow(static_cast<int>(s));
      if (sf.abandoned()) conn.revive_subflow(sf);
    }
  }
}

std::uint64_t FlowFactory::total_delivered_bytes() const {
  std::uint64_t total = 0;
  for (const auto& src : sources_) total += src->acked_bytes();
  for (const auto& conn : connections_) total += conn->delivered_bytes();
  return total;
}

MptcpConnection& FlowFactory::mptcp_flow(HostId src, HostId dst,
                                         const std::vector<routing::Path>& paths,
                                         std::uint64_t bytes, SimTime start,
                                         FlowCallback on_complete,
                                         Coupling coupling) {
  reserve_events(static_cast<int>(paths.size()));
  const FlowId id = next_id();
  connections_.push_back(std::make_unique<MptcpConnection>(
      host_events(src), host_pool(src), id, network_.config().tcp, bytes,
      coupling));
  MptcpConnection& connection = *connections_.back();

  // MP_JOIN staggering: secondary subflows join one handshake later, the
  // handshake riding the primary path's round trip.
  SimTime join_delay = 0;
  if (network_.config().tcp.mptcp_staggered_join && !paths.empty()) {
    const auto& primary = paths.front();
    join_delay =
        2 * primary.latency(network_.net().plane(primary.plane).graph);
  }
  bool first = true;
  for (const auto& path : paths) {
    MptcpSubflow& subflow = connection.add_subflow();
    sinks_.push_back(std::make_unique<TcpSink>(host_events(dst),
                                               host_pool(dst),
                                               network_.config().tcp));
    TcpSink& sink = *sinks_.back();
    const Route* fwd = network_.make_route(path, sink);
    const Route* rev =
        network_.make_route(network_.reverse_path(path), subflow);
    sink.set_ack_route(rev);
    subflow.connect(fwd, first ? start : start + join_delay);
    first = false;
  }

  // Record each subflow's plane so the §3.4 link-status hooks
  // (on_plane_failed / on_plane_recovered) can find affected subflows.
  std::vector<int> planes;
  planes.reserve(paths.size());
  for (const auto& path : paths) planes.push_back(path.plane);
  connection_planes_.push_back(std::move(planes));

  const int hops = paths.empty() ? 0 : paths.front().hops();
  const int num_subflows = static_cast<int>(paths.size());
  connection.set_completion_callback(
      [this, id, src, dst, bytes, start, hops, num_subflows,
       cb = std::move(on_complete)](MptcpConnection& c) {
        FlowRecord record{id,    src,
                          dst,   bytes,
                          start, c.completion_time(),
                          hops,  num_subflows,
                          c.total_retransmits(), c.total_timeouts(), 0};
        record.delivered_bytes = bytes;
        deliver_record(record, cb, src);
      });
  mptcp_info_.push_back(LaunchInfo{id, src, dst, bytes, start, hops, false});
  note_started(mptcp_info_.back());
  return connection;
}

void FlowFactory::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
}

void FlowFactory::deliver_record(const FlowRecord& record,
                                 const FlowCallback& cb, HostId src_host) {
  if (shards_ != nullptr && shards_->in_worker_phase()) {
    // Completion fired on the sender's shard thread; the logger, telemetry
    // and the user callback are coordinator-only, so park the record until
    // the barrier. The drain's (end, shard, emit) stable order keeps the
    // logger's record sequence worker-count-independent.
    shards_->defer(shards_->shard_of_host(src_host), record.end,
                   [this, record, cb] { deliver_record_now(record, cb); });
    return;
  }
  deliver_record_now(record, cb);
}

void FlowFactory::deliver_record_now(const FlowRecord& record,
                                     const FlowCallback& cb) {
  logger_.record(record);
  note_finished(record);
  if (cb) cb(record);
}

void FlowFactory::note_started(const LaunchInfo& info) {
  if (telemetry_ == nullptr) return;
  telemetry_->registry.counter("flows_started").inc();
  PNET_TRACE_INSTANT(&telemetry_->trace, "flow_start", info.start, info.id.v);
}

void FlowFactory::note_finished(const FlowRecord& r) {
  ++flows_finished_;
  if (telemetry_ == nullptr) return;
  telemetry_->registry.counter("flows_finished").inc();
  PNET_TRACE_COMPLETE(&telemetry_->trace, "flow", r.start, r.end, r.id.v);
}

int FlowFactory::finalize(SimTime at) {
  int count = 0;
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    LaunchInfo& info = tcp_info_[i];
    const TcpSrc& s = *sources_[i];
    if (info.finalized || s.complete()) continue;
    info.finalized = true;
    FlowRecord record{info.id, info.src,
                      info.dst, info.bytes,
                      info.start, at,
                      info.hops, 1,
                      s.retransmits(), s.timeouts(), s.repaths()};
    record.delivered_bytes = s.acked_bytes();
    record.completed = false;
    logger_.record(record);
    note_finished(record);
    ++count;
  }
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    LaunchInfo& info = mptcp_info_[i];
    const MptcpConnection& c = *connections_[i];
    if (info.finalized || c.complete()) continue;
    info.finalized = true;
    FlowRecord record{info.id, info.src,
                      info.dst, info.bytes,
                      info.start, at,
                      info.hops,
                      static_cast<int>(connection_planes_[i].size()),
                      c.total_retransmits(), c.total_timeouts(), 0};
    record.delivered_bytes = c.delivered_bytes();
    record.completed = false;
    logger_.record(record);
    note_finished(record);
    ++count;
  }
  if (count > 0 && telemetry_ != nullptr) {
    telemetry_->registry.counter("finalized_flows").add(
        static_cast<std::uint64_t>(count));
  }
  return count;
}

}  // namespace pnet::sim
