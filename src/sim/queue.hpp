// FIFO tail-drop output queue: one per directed link, modelling the egress
// port serialization and buffering of the upstream device (the host NIC for
// host->ToR links, a switch port otherwise).
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "util/audit.hpp"
#include "util/rng.hpp"

namespace pnet::sim {

class Queue : public EventSource, public PacketSink {
 public:
  /// Trimmed headers are this many wire bytes.
  static constexpr std::uint32_t kHeaderBytes = 64;

  Queue(EventQueue& events, PacketPool& pool, double rate_bps,
        std::uint64_t buffer_bytes, std::uint64_t ecn_threshold_bytes = 0,
        bool priority_acks = false, bool trim_to_header = false)
      : events_(events), pool_(pool), rate_bps_(rate_bps),
        buffer_bytes_(buffer_bytes),
        ecn_threshold_bytes_(ecn_threshold_bytes),
        priority_acks_(priority_acks), trim_to_header_(trim_to_header) {}

  /// Enqueues or tail-drops; starts serializing when idle. When the link is
  /// failed, every packet is dropped (a dead cable). With an ECN threshold
  /// configured, data packets enqueued above it are CE-marked (DCTCP-style
  /// instantaneous marking).
  void receive(Packet& packet) override;
  /// Serialization of the head packet finished: forward it, start the next.
  void do_next_event() override;

  /// Simulates cable failure/repair. Packets already buffered still drain.
  void set_failed(bool failed) { failed_ = failed; }
  [[nodiscard]] bool failed() const { return failed_; }

  /// Degraded link: arriving packets (data and ACKs alike — a flaky cable
  /// corrupts everything) are dropped with probability `rate`. 1.0 is
  /// behaviourally identical to set_failed(true); 0 restores the link.
  void set_loss_rate(double rate) {
    assert(rate >= 0.0 && rate <= 1.0);
    loss_rate_ = rate;
  }
  [[nodiscard]] double loss_rate() const { return loss_rate_; }
  /// Seeds the loss draw so degraded-link episodes replay bit-identically.
  void reseed_loss_rng(std::uint64_t seed) { loss_rng_.reseed(seed); }

  /// Degraded link, service-rate mode: serialize at `scale` x the nominal
  /// rate (a transceiver renegotiated down). The packet already on the wire
  /// keeps its old departure time; `scale` must be positive.
  void set_rate_scale(double scale) {
    assert(scale > 0.0);
    rate_scale_ = scale;
  }
  [[nodiscard]] double rate_scale() const { return rate_scale_; }

  [[nodiscard]] std::uint64_t queued_bytes() const {
    return queued_bytes_ + ack_queued_bytes_;
  }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  // Per-cause drop counters (drops() is their sum): dead cable, random
  // degraded-link loss, and buffer overflow.
  [[nodiscard]] std::uint64_t drops_failed() const { return drops_failed_; }
  [[nodiscard]] std::uint64_t drops_random() const { return drops_random_; }
  [[nodiscard]] std::uint64_t drops_overflow() const {
    return drops_overflow_;
  }
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  /// Wire bytes forwarded (data + ACKs, post-trim sizes) — the link
  /// utilization numerator sampled by the telemetry layer.
  [[nodiscard]] std::uint64_t forwarded_bytes() const {
    return forwarded_bytes_;
  }
  [[nodiscard]] std::uint64_t ecn_marks() const { return ecn_marks_; }
  [[nodiscard]] std::uint64_t trims() const { return trims_; }
  [[nodiscard]] double rate_bps() const { return rate_bps_; }
  /// Packets handed to receive() — the conservation-law numerator.
  [[nodiscard]] std::uint64_t received() const { return received_; }

  /// Attaches an invariant auditor: occupancy is checked against capacity
  /// on every enqueue. Pass nullptr to detach.
  void set_audit(util::Audit* audit) { audit_ = audit; }

  /// End-of-trial conservation check: every packet received must be
  /// forwarded, dropped, or still buffered (in a fifo or on the wire).
  /// `label` names the queue in violation messages.
  void audit_check(util::Audit& audit, const std::string& label) const;

 private:
  EventQueue& events_;
  PacketPool& pool_;
  double rate_bps_;
  std::uint64_t buffer_bytes_;
  std::uint64_t ecn_threshold_bytes_;
  /// Strict-priority service for ACKs (a common datacenter QoS setting):
  /// keeps the ACK clock ticking through standing data queues.
  bool priority_acks_;
  /// NDP-style cut-payload: when a data packet does not fit, forward its
  /// header through the priority queue instead of dropping, so the
  /// receiver can NACK instantly (§6.5's incast-aware direction, htsim's
  /// flagship mechanism).
  bool trim_to_header_;
  bool failed_ = false;
  double loss_rate_ = 0.0;
  double rate_scale_ = 1.0;
  Rng loss_rng_{0xDE6BADEDULL};
  std::uint64_t ecn_marks_ = 0;
  std::uint64_t trims_ = 0;

  void drop(Packet& packet, std::uint64_t& cause_counter);
  void start_service();

  std::deque<Packet*> fifo_;
  /// Priority queue for ACKs (when priority_acks_) and trimmed headers
  /// (when trim_to_header_); budgeted separately from the data buffer, as
  /// a real NDP header queue is.
  std::deque<Packet*> ack_fifo_;
  Packet* in_service_ = nullptr;     // committed to the wire
  bool in_service_priority_ = false; // which budget it came from
  std::uint64_t queued_bytes_ = 0;     // data fifo, incl. in-service data
  std::uint64_t ack_queued_bytes_ = 0; // priority fifo, incl. in-service
  bool busy_ = false;
  std::uint64_t drops_ = 0;
  std::uint64_t drops_failed_ = 0;
  std::uint64_t drops_random_ = 0;
  std::uint64_t drops_overflow_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t forwarded_bytes_ = 0;
  std::uint64_t received_ = 0;
  util::Audit* audit_ = nullptr;
};

}  // namespace pnet::sim
