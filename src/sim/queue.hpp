// FIFO tail-drop output queue: one per directed link, modelling the egress
// port serialization and buffering of the upstream device (the host NIC for
// host->ToR links, a switch port otherwise).
#pragma once

#include <cstdint>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "util/audit.hpp"
#include "util/rng.hpp"

namespace pnet::sim {

/// Per-queue occupancy and counter block. SimNetwork owns one dense
/// struct-of-arrays vector of these (one slot per directed link in plane
/// order), so telemetry totals walk a contiguous array instead of chasing
/// Queue objects; a standalone Queue (tests, micro benches) falls back to
/// an internal block. Plain uint64 fields — the sim is single-threaded per
/// trial, snapshots happen between events.
struct QueueStats {
  std::uint64_t queued_bytes = 0;      // data fifo, incl. in-service data
  std::uint64_t ack_queued_bytes = 0;  // priority fifo, incl. in-service
  std::uint64_t drops = 0;
  std::uint64_t drops_failed = 0;
  std::uint64_t drops_random = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t forwarded_bytes = 0;
  std::uint64_t received = 0;
  std::uint64_t ecn_marks = 0;
  std::uint64_t trims = 0;
  /// Out-of-range set_loss_rate/set_rate_scale arguments clamped into
  /// range (misconfiguration telltale — see those setters).
  std::uint64_t config_clamped = 0;
};

class Queue : public EventSource, public PacketSink {
 public:
  /// Trimmed headers are this many wire bytes.
  static constexpr std::uint32_t kHeaderBytes = 64;
  /// Floor for set_rate_scale clamping: a link renegotiated a million
  /// times down is still a link, and serialization delays stay finite.
  static constexpr double kMinRateScale = 1e-6;

  /// `stats` points the queue at an externally owned counter block
  /// (SimNetwork's dense array); nullptr keeps counters in the queue.
  Queue(EventQueue& events, PacketPool& pool, double rate_bps,
        std::uint64_t buffer_bytes, std::uint64_t ecn_threshold_bytes = 0,
        bool priority_acks = false, bool trim_to_header = false,
        QueueStats* stats = nullptr)
      : events_(events), pool_(pool), rate_bps_(rate_bps),
        buffer_bytes_(buffer_bytes),
        ecn_threshold_bytes_(ecn_threshold_bytes),
        priority_acks_(priority_acks), trim_to_header_(trim_to_header),
        s_(stats != nullptr ? stats : &own_stats_) {}

  /// Enqueues or tail-drops; starts serializing when idle. When the link is
  /// failed, every packet is dropped (a dead cable). With an ECN threshold
  /// configured, data packets enqueued above it are CE-marked (DCTCP-style
  /// instantaneous marking).
  void receive(Packet& packet) override;
  /// Serialization of the head packet finished: forward it, start the next.
  void do_next_event() override;

  /// Simulates cable failure/repair. Packets already buffered still drain.
  void set_failed(bool failed) { failed_ = failed; }
  [[nodiscard]] bool failed() const { return failed_; }

  /// Degraded link: arriving packets (data and ACKs alike — a flaky cable
  /// corrupts everything) are dropped with probability `rate`. 1.0 is
  /// behaviourally identical to set_failed(true); 0 restores the link.
  /// Out-of-range (or NaN) rates are clamped into [0, 1] and counted in
  /// config_clamped rather than left as Release-mode UB.
  void set_loss_rate(double rate) {
    if (!(rate >= 0.0)) {  // negative or NaN
      rate = 0.0;
      ++s_->config_clamped;
    } else if (rate > 1.0) {
      rate = 1.0;
      ++s_->config_clamped;
    }
    loss_rate_ = rate;
  }
  [[nodiscard]] double loss_rate() const { return loss_rate_; }
  /// Seeds the loss draw so degraded-link episodes replay bit-identically.
  void reseed_loss_rng(std::uint64_t seed) { loss_rng_.reseed(seed); }

  /// Degraded link, service-rate mode: serialize at `scale` x the nominal
  /// rate (a transceiver renegotiated down). The packet already on the wire
  /// keeps its old departure time. Non-positive (or NaN) scales are clamped
  /// to kMinRateScale and counted in config_clamped.
  void set_rate_scale(double scale) {
    if (!(scale >= kMinRateScale)) {  // zero, negative or NaN
      scale = kMinRateScale;
      ++s_->config_clamped;
    }
    rate_scale_ = scale;
    memo_bytes_ = kNoMemo;  // effective rate changed: recompute delays
  }
  [[nodiscard]] double rate_scale() const { return rate_scale_; }

  [[nodiscard]] std::uint64_t queued_bytes() const {
    return s_->queued_bytes + s_->ack_queued_bytes;
  }
  [[nodiscard]] std::uint64_t drops() const { return s_->drops; }
  // Per-cause drop counters (drops() is their sum): dead cable, random
  // degraded-link loss, and buffer overflow.
  [[nodiscard]] std::uint64_t drops_failed() const {
    return s_->drops_failed;
  }
  [[nodiscard]] std::uint64_t drops_random() const {
    return s_->drops_random;
  }
  [[nodiscard]] std::uint64_t drops_overflow() const {
    return s_->drops_overflow;
  }
  [[nodiscard]] std::uint64_t forwarded() const { return s_->forwarded; }
  /// Wire bytes forwarded (data + ACKs, post-trim sizes) — the link
  /// utilization numerator sampled by the telemetry layer.
  [[nodiscard]] std::uint64_t forwarded_bytes() const {
    return s_->forwarded_bytes;
  }
  [[nodiscard]] std::uint64_t ecn_marks() const { return s_->ecn_marks; }
  [[nodiscard]] std::uint64_t trims() const { return s_->trims; }
  [[nodiscard]] double rate_bps() const { return rate_bps_; }
  /// Packets handed to receive() — the conservation-law numerator.
  [[nodiscard]] std::uint64_t received() const { return s_->received; }
  /// Clamped configuration calls (see set_loss_rate/set_rate_scale).
  [[nodiscard]] std::uint64_t config_clamped() const {
    return s_->config_clamped;
  }

  /// Attaches an invariant auditor: occupancy is checked against capacity
  /// on every enqueue. Pass nullptr to detach.
  void set_audit(util::Audit* audit) { audit_ = audit; }

  /// End-of-trial conservation check: every packet received must be
  /// forwarded, dropped, or still buffered (in a fifo or on the wire).
  /// `label` names the queue in violation messages.
  void audit_check(util::Audit& audit, const std::string& label) const;

 private:
  EventQueue& events_;
  PacketPool& pool_;
  double rate_bps_;
  std::uint64_t buffer_bytes_;
  std::uint64_t ecn_threshold_bytes_;
  /// Strict-priority service for ACKs (a common datacenter QoS setting):
  /// keeps the ACK clock ticking through standing data queues.
  bool priority_acks_;
  /// NDP-style cut-payload: when a data packet does not fit, forward its
  /// header through the priority queue instead of dropping, so the
  /// receiver can NACK instantly (§6.5's incast-aware direction, htsim's
  /// flagship mechanism).
  bool trim_to_header_;
  bool failed_ = false;
  double loss_rate_ = 0.0;
  double rate_scale_ = 1.0;
  Rng loss_rng_{0xDE6BADEDULL};

  /// One-entry serialization-delay memo: traffic is dominated by runs of
  /// same-size packets (MSS data, fixed-size ACKs), so caching the last
  /// (size -> delay) pair skips the double division in the common case.
  /// The cached value is the exact serialization_delay() result —
  /// schedules are bit-identical with or without a hit. Invalidated by
  /// set_rate_scale (rate_bps_ is fixed after construction).
  static constexpr std::uint64_t kNoMemo = ~0ULL;
  std::uint64_t memo_bytes_ = kNoMemo;
  SimTime memo_delay_ = 0;

  void drop(Packet& packet, std::uint64_t& cause_counter);
  void start_service();

  /// Intrusive FIFOs threaded through Packet::next — enqueue/dequeue
  /// never touch the allocator.
  PacketList fifo_;
  /// Priority queue for ACKs (when priority_acks_) and trimmed headers
  /// (when trim_to_header_); budgeted separately from the data buffer, as
  /// a real NDP header queue is.
  PacketList ack_fifo_;
  Packet* in_service_ = nullptr;     // committed to the wire
  bool in_service_priority_ = false; // which budget it came from
  bool busy_ = false;
  QueueStats own_stats_;  // fallback when no external block is given
  QueueStats* s_;
  util::Audit* audit_ = nullptr;
};

}  // namespace pnet::sim
