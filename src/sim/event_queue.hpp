// Discrete-event core, modelled after htsim's EventList: sources register
// wake-ups at absolute simulated times; the queue dispatches them in time
// order. Ties dispatch in scheduling order (a monotonic sequence number),
// so runs are fully deterministic.
//
// The heap is a hand-rolled binary min-heap over a flat std::vector rather
// than std::priority_queue<std::tuple<...>>: entries are one 24-byte POD
// (no tuple comparison call chain), the backing store is reservable up
// front (reserve()), and the dispatch counter feeds the events/sec
// throughput metric of the experiment runner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/audit.hpp"
#include "util/cancel.hpp"
#include "util/units.hpp"

namespace pnet::sim {

class EventSource {
 public:
  virtual ~EventSource() = default;
  /// Called when a scheduled wake-up fires.
  virtual void do_next_event() = 0;
};

class EventQueue {
 public:
  /// Cancellation poll stride: the token is checked once per this many
  /// dispatched events. 1024 keeps the poll (an atomic load, or a clock
  /// read when a deadline is armed) far below 0.1% of dispatch cost while
  /// still bounding cancel latency to ~a microsecond of real work.
  static constexpr std::uint64_t kCancelStride = 1024;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Attaches a cooperative-cancellation token; run()/run_until() return
  /// early (leaving events pending) once it fires. Pass nullptr to detach.
  /// The token must outlive the queue's run calls.
  void set_cancel(const util::CancelToken* cancel) { cancel_ = cancel; }

  /// Attaches an invariant auditor checking event-time monotonicity on
  /// every dispatch. Pass nullptr to detach.
  void set_audit(util::Audit* audit) { audit_ = audit; }

  /// Preallocates backing storage for `events` pending entries.
  void reserve(std::size_t events) { heap_.reserve(events); }

  void schedule_at(SimTime when, EventSource* source) {
    // Clamp to the present: scheduling "in the past" (e.g. an app reacting
    // to a completion record with a stale timestamp) must never move the
    // clock backwards.
    heap_.push_back(Entry{when < now_ ? now_ : when, next_seq_++, source});
    sift_up(heap_.size() - 1);
  }
  void schedule_in(SimTime delay, EventSource* source) {
    schedule_at(now_ + delay, source);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  /// Events dispatched since construction (the runner's throughput unit).
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

  /// Dispatches one event; returns false when the queue is empty.
  bool run_one() {
    if (heap_.empty()) return false;
    const Entry top = heap_.front();
    pop();
    if (audit_ != nullptr) {
      audit_->note_check();
      // schedule_at clamps to the present, so a dispatch before now_ means
      // the heap order itself broke.
      if (top.when < now_) {
        audit_->fail("event time moved backwards: dispatching t=" +
                     std::to_string(top.when) + " with clock at t=" +
                     std::to_string(now_));
      }
    }
    now_ = top.when;
    ++dispatched_;
    top.source->do_next_event();
    return true;
  }

  /// Runs until the queue drains, simulated time exceeds `deadline`, or
  /// an attached CancelToken fires. The clock only advances to
  /// min(deadline, next pending event): when dispatch stops early (cancel,
  /// or events remaining past the deadline) time must not jump over work
  /// still in the heap.
  void run_until(SimTime deadline) {
    while (!heap_.empty() && heap_.front().when <= deadline) {
      if (cancel_poll_due() && cancel_->cancelled()) break;
      run_one();
    }
    const SimTime stop =
        heap_.empty() ? deadline
                      : (heap_.front().when < deadline ? heap_.front().when
                                                       : deadline);
    if (now_ < stop) now_ = stop;
  }

  /// Runs until the queue drains or an attached CancelToken fires.
  void run() {
    while (!heap_.empty()) {
      if (cancel_poll_due() && cancel_->cancelled()) break;
      run_one();
    }
  }

 private:
  /// True when a token is attached and this dispatch count is on the poll
  /// stride. Checked before the (possibly clock-reading) cancelled() call
  /// so the common case is one null test plus a mask.
  [[nodiscard]] bool cancel_poll_due() const {
    return cancel_ != nullptr && (dispatched_ & (kCancelStride - 1)) == 0;
  }

  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventSource* source;

    /// Heap order: earliest time first; FIFO scheduling order on ties.
    [[nodiscard]] bool before(const Entry& other) const {
      return when != other.when ? when < other.when : seq < other.seq;
    }
  };

  void pop() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t smallest = i;
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      if (left < n && heap_[left].before(heap_[smallest])) smallest = left;
      if (right < n && heap_[right].before(heap_[smallest])) smallest = right;
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  const util::CancelToken* cancel_ = nullptr;
  util::Audit* audit_ = nullptr;
};

}  // namespace pnet::sim
