// Discrete-event core, modelled after htsim's EventList: sources register
// wake-ups at absolute simulated times; the queue dispatches them in time
// order. Ties dispatch in scheduling order (a monotonic sequence number),
// so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <queue>
#include <tuple>
#include <vector>

#include "util/units.hpp"

namespace pnet::sim {

class EventSource {
 public:
  virtual ~EventSource() = default;
  /// Called when a scheduled wake-up fires.
  virtual void do_next_event() = 0;
};

class EventQueue {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  void schedule_at(SimTime when, EventSource* source) {
    // Clamp to the present: scheduling "in the past" (e.g. an app reacting
    // to a completion record with a stale timestamp) must never move the
    // clock backwards.
    heap_.emplace(when < now_ ? now_ : when, next_seq_++, source);
  }
  void schedule_in(SimTime delay, EventSource* source) {
    schedule_at(now_ + delay, source);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Dispatches one event; returns false when the queue is empty.
  bool run_one() {
    if (heap_.empty()) return false;
    auto [when, seq, source] = heap_.top();
    heap_.pop();
    now_ = when;
    source->do_next_event();
    return true;
  }

  /// Runs until the queue drains or simulated time exceeds `deadline`.
  void run_until(SimTime deadline) {
    while (!heap_.empty() && std::get<0>(heap_.top()) <= deadline) {
      run_one();
    }
    if (now_ < deadline) now_ = deadline;
  }

  /// Runs until the queue drains.
  void run() {
    while (run_one()) {
    }
  }

 private:
  using Entry = std::tuple<SimTime, std::uint64_t, EventSource*>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pnet::sim
