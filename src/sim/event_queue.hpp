// Discrete-event core, modelled after htsim's EventList: sources register
// wake-ups at absolute simulated times; the queue dispatches them in time
// order. Ties dispatch in scheduling order (a monotonic sequence number),
// so runs are fully deterministic.
//
// The heap is a hand-rolled binary min-heap over a flat std::vector rather
// than std::priority_queue<std::tuple<...>>: entries are one 24-byte POD
// (no tuple comparison call chain), the backing store is reservable up
// front (reserve()), and the dispatch counter feeds the events/sec
// throughput metric of the experiment runner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace pnet::sim {

class EventSource {
 public:
  virtual ~EventSource() = default;
  /// Called when a scheduled wake-up fires.
  virtual void do_next_event() = 0;
};

class EventQueue {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Preallocates backing storage for `events` pending entries.
  void reserve(std::size_t events) { heap_.reserve(events); }

  void schedule_at(SimTime when, EventSource* source) {
    // Clamp to the present: scheduling "in the past" (e.g. an app reacting
    // to a completion record with a stale timestamp) must never move the
    // clock backwards.
    heap_.push_back(Entry{when < now_ ? now_ : when, next_seq_++, source});
    sift_up(heap_.size() - 1);
  }
  void schedule_in(SimTime delay, EventSource* source) {
    schedule_at(now_ + delay, source);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  /// Events dispatched since construction (the runner's throughput unit).
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

  /// Dispatches one event; returns false when the queue is empty.
  bool run_one() {
    if (heap_.empty()) return false;
    const Entry top = heap_.front();
    pop();
    now_ = top.when;
    ++dispatched_;
    top.source->do_next_event();
    return true;
  }

  /// Runs until the queue drains or simulated time exceeds `deadline`.
  void run_until(SimTime deadline) {
    while (!heap_.empty() && heap_.front().when <= deadline) {
      run_one();
    }
    if (now_ < deadline) now_ = deadline;
  }

  /// Runs until the queue drains.
  void run() {
    while (run_one()) {
    }
  }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventSource* source;

    /// Heap order: earliest time first; FIFO scheduling order on ties.
    [[nodiscard]] bool before(const Entry& other) const {
      return when != other.when ? when < other.when : seq < other.seq;
    }
  };

  void pop() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t smallest = i;
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      if (left < n && heap_[left].before(heap_[smallest])) smallest = left;
      if (right < n && heap_[right].before(heap_[smallest])) smallest = right;
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace pnet::sim
