// Discrete-event core, modelled after htsim's EventList: sources register
// wake-ups at absolute simulated times; the queue dispatches them in time
// order. Ties dispatch in scheduling order (a monotonic sequence number),
// so runs are fully deterministic.
//
// The heap is a hand-rolled 4-ary min-heap over a flat std::vector rather
// than std::priority_queue<std::tuple<...>>: entries are one 24-byte POD
// (no tuple comparison call chain), the backing store is reservable up
// front (reserve()/request_capacity()), and the dispatch counter feeds the
// events/sec throughput metric of the experiment runner. 4-ary beats
// binary here because sift-down depth halves and the four children share
// one or two cache lines, and the sifts move a hole instead of swapping —
// pop cost dominates the simulator's per-event overhead (measured ~40% of
// a TCP permutation run before this layout).
//
// Dispatch is batched by timestamp: run_batch() drains every entry sharing
// the earliest pending `when` and dispatches each immediately after its
// pop. Each pop is the global minimum, and events scheduled *at* the batch
// timestamp during dispatch carry larger seq values — the heap hands them
// back after everything already pending at that instant — so the global
// (when, seq) dispatch order is byte-identical to one-at-a-time dispatch
// while same-instant cascades (queue drain -> pipe delivery -> ACK-clocked
// send) run as one straight-line loop with a single clock/audit touch.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "util/audit.hpp"
#include "util/cancel.hpp"
#include "util/units.hpp"

namespace pnet::sim {

class EventSource {
 public:
  virtual ~EventSource() = default;
  /// Called when a scheduled wake-up fires.
  virtual void do_next_event() = 0;
};

class EventQueue {
 public:
  /// Cancellation poll stride: the token is checked once per at least this
  /// many dispatched events. 1024 keeps the poll (an atomic load, or a
  /// clock read when a deadline is armed) far below 0.1% of dispatch cost
  /// while still bounding cancel latency to ~a microsecond of real work.
  static constexpr std::uint64_t kCancelStride = 1024;

  /// "No pending event": next_time() for an empty queue. The maximum
  /// SimTime, so min-reductions over several queues (the shard barrier's
  /// horizon computation) naturally ignore empty queues instead of letting
  /// an idle shard pin the horizon at 0.
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  [[nodiscard]] SimTime now() const { return now_; }

  /// Timestamp of the earliest pending event, or kNever when empty.
  [[nodiscard]] SimTime next_time() const {
    return heap_.empty() ? kNever : heap_.front().when;
  }

  /// How far this queue is known to have no work before `deadline`: the
  /// earliest pending event, or — for an empty (drained or idle) queue —
  /// the deadline itself. An empty shard's horizon is the deadline, never
  /// 0, so one idle plane cannot stall a conservative barrier.
  [[nodiscard]] SimTime horizon(SimTime deadline) const {
    return heap_.empty() ? deadline : std::min(deadline, heap_.front().when);
  }

  /// Attaches a cooperative-cancellation token; run()/run_until() return
  /// early (leaving events pending) once it fires. Pass nullptr to detach.
  /// The token must outlive the queue's run calls.
  void set_cancel(const util::CancelToken* cancel) { cancel_ = cancel; }

  /// Attaches an invariant auditor checking event-time monotonicity on
  /// every dispatched batch. Pass nullptr to detach.
  void set_audit(util::Audit* audit) { audit_ = audit; }

  /// Preallocates backing storage for `events` pending entries and arms
  /// regrowth tracking: from now on any heap reallocation is counted in
  /// regrowths(), which SimHarness::audit_check treats as an invariant
  /// violation (the steady state is supposed to be allocation-free).
  void reserve(std::size_t events) {
    if (events > heap_.capacity()) heap_.reserve(events);
    reserved_ = true;
  }

  /// Grows the reservation (amortized doubling) as sources are added
  /// incrementally — e.g. FlowFactory creating endpoints one at a time.
  /// No-op when current capacity already suffices.
  void request_capacity(std::size_t events) {
    if (events <= heap_.capacity()) return;
    heap_.reserve(std::max(events, heap_.capacity() * 2));
    reserved_ = true;
  }

  /// True once reserve()/request_capacity() armed regrowth tracking.
  [[nodiscard]] bool reserved() const { return reserved_; }
  [[nodiscard]] std::size_t capacity() const { return heap_.capacity(); }
  /// Heap reallocations observed after reserve() — 0 in a correctly sized
  /// steady state.
  [[nodiscard]] std::uint64_t regrowths() const { return regrowths_; }

  void schedule_at(SimTime when, EventSource* source) {
    // Clamp to the present: scheduling "in the past" (e.g. an app reacting
    // to a completion record with a stale timestamp) must never move the
    // clock backwards.
    if (reserved_ && heap_.size() == heap_.capacity()) ++regrowths_;
    heap_.push_back(Entry{when < now_ ? now_ : when, next_seq_++, source});
    sift_up(heap_.size() - 1);
  }
  void schedule_in(SimTime delay, EventSource* source) {
    schedule_at(now_ + delay, source);
  }

  /// Schedules a self-rescheduling driver's wake-up (telemetry sampling,
  /// the control loop). Aux entries dispatch exactly like schedule_at
  /// ones but are excluded from real_pending() — the count such drivers
  /// consult before re-arming. Without the distinction two coexisting
  /// drivers would each count the other as pending simulation work and
  /// ping-pong a drained run() forever. The source MUST call aux_fired()
  /// at the top of its do_next_event to balance the count.
  void schedule_aux_at(SimTime when, EventSource* source) {
    ++aux_pending_;
    schedule_at(when, source);
  }
  /// Balances schedule_aux_at when the aux entry dispatches.
  void aux_fired() {
    if (aux_pending_ > 0) --aux_pending_;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  /// Pending entries that are real simulation work — everything except
  /// the self-rescheduling driver wake-ups placed via schedule_aux_at.
  [[nodiscard]] std::size_t real_pending() const {
    return heap_.size() > aux_pending_ ? heap_.size() - aux_pending_ : 0;
  }
  /// Events dispatched since construction (the runner's throughput unit).
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

  /// Dispatches one event; returns false when the queue is empty.
  bool run_one() {
    if (heap_.empty()) return false;
    const Entry top = heap_.front();
    pop();
    check_monotonic(top.when);
    now_ = top.when;
    ++dispatched_;
    top.source->do_next_event();
    return true;
  }

  /// Dispatches every entry at the earliest pending timestamp, in seq
  /// (scheduling) order, including events scheduled *at* that timestamp by
  /// the dispatched handlers themselves; returns false when the queue is
  /// empty. See the header comment for why the order matches
  /// one-at-a-time dispatch exactly. A handler endlessly rescheduling
  /// itself at `now` would spin here without a cancel poll — such a
  /// zero-delay loop is a bug that hangs the sim under any dispatch
  /// scheme.
  bool run_batch() {
    if (heap_.empty()) return false;
    const SimTime t = heap_.front().when;
    check_monotonic(t);
    now_ = t;
    do {
      EventSource* const source = heap_.front().source;
      pop();
      ++dispatched_;
      source->do_next_event();
    } while (!heap_.empty() && heap_.front().when == t);
    return true;
  }

  /// Runs until the queue drains, simulated time exceeds `deadline`, or
  /// an attached CancelToken fires. The clock only advances to
  /// horizon(deadline) = min(deadline, next pending event): when dispatch
  /// stops early (cancel, or events remaining past the deadline) time must
  /// not jump over work still in the heap, and a drained queue advances to
  /// the deadline itself, never stalling at its last event time.
  void run_until(SimTime deadline) {
    while (!heap_.empty() && heap_.front().when <= deadline) {
      if (cancel_poll_due() && cancel_->cancelled()) break;
      run_batch();
    }
    const SimTime stop = horizon(deadline);
    if (now_ < stop) now_ = stop;
  }

  /// Runs every event strictly before `end` (exclusive — events at `end`
  /// itself stay pending). The shard epoch loop uses this: `end` is the
  /// conservative barrier time, and events *at* the barrier may still be
  /// joined by same-instant cross-shard arrivals, so they must wait for
  /// the next epoch. Does not advance the clock past the last dispatched
  /// event; the caller pairs it with advance_to() after the barrier.
  void run_before(SimTime end) {
    while (!heap_.empty() && heap_.front().when < end) {
      if (cancel_poll_due() && cancel_->cancelled()) break;
      run_batch();
    }
  }

  /// Advances the clock to min(t, next pending event) without dispatching.
  /// The barrier uses this so an idle shard's now() tracks the epoch time
  /// (its queues/pipes timestamp correctly on the next delivery) while
  /// never jumping over pending work or moving backwards.
  void advance_to(SimTime t) {
    const SimTime stop = std::min(t, next_time());
    if (now_ < stop) now_ = stop;
  }

  /// Runs until the queue drains or an attached CancelToken fires.
  void run() {
    while (!heap_.empty()) {
      if (cancel_poll_due() && cancel_->cancelled()) break;
      run_batch();
    }
  }

 private:
  /// True when a token is attached and at least kCancelStride events have
  /// been dispatched since the last poll. Threshold-based (not a modulo of
  /// dispatched_) because batch dispatch advances the counter in jumps.
  [[nodiscard]] bool cancel_poll_due() {
    if (cancel_ == nullptr || dispatched_ < next_cancel_poll_) return false;
    next_cancel_poll_ = dispatched_ + kCancelStride;
    return true;
  }

  void check_monotonic(SimTime when) {
    if (audit_ == nullptr) return;
    audit_->note_check();
    // schedule_at clamps to the present, so a dispatch before now_ means
    // the heap order itself broke.
    if (when < now_) {
      audit_->fail("event time moved backwards: dispatching t=" +
                   std::to_string(when) + " with clock at t=" +
                   std::to_string(now_));
    }
  }

  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventSource* source;

    /// Heap order: earliest time first; FIFO scheduling order on ties.
    [[nodiscard]] bool before(const Entry& other) const {
      return when != other.when ? when < other.when : seq < other.seq;
    }
  };

  /// 4-ary layout: children of i live at 4i+1..4i+4, parent at (i-1)/4.

  void pop() {
    const Entry moved = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    // Sift the displaced tail entry down from the root, moving a hole
    // instead of swapping.
    std::size_t i = 0;
    while (true) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t smallest = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (heap_[c].before(heap_[smallest])) smallest = c;
      }
      if (!heap_[smallest].before(moved)) break;
      heap_[i] = heap_[smallest];
      i = smallest;
    }
    heap_[i] = moved;
  }

  void sift_up(std::size_t i) {
    const Entry moved = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!moved.before(heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = moved;
  }

  std::vector<Entry> heap_;
  std::size_t aux_pending_ = 0;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t next_cancel_poll_ = 0;
  bool reserved_ = false;
  std::uint64_t regrowths_ = 0;
  const util::CancelToken* cancel_ = nullptr;
  util::Audit* audit_ = nullptr;
};

}  // namespace pnet::sim
