#include "sim/mptcp.hpp"

#include <algorithm>
#include <cmath>

namespace pnet::sim {

// ----------------------------------------------------------- MptcpSubflow

std::uint64_t MptcpSubflow::pull_bytes(std::uint64_t want) {
  return connection_.pull(want);
}

void MptcpSubflow::on_window_increase(std::uint64_t bytes_acked) {
  if (in_slow_start() || connection_.coupling() == Coupling::kUncoupled) {
    // MPTCP subflows slow-start independently (RFC 6356 semantics);
    // uncoupled mode stays independent in congestion avoidance too.
    slow_start_or_default_increase(bytes_acked);
    return;
  }
  const std::uint64_t increase = connection_.lia_increase(*this, bytes_acked);
  // cwnd_ adjustments live in TcpSrc; apply through the protected helper by
  // simulating the default growth path with a custom amount.
  apply_increase(increase);
}

void MptcpSubflow::on_delivered(std::uint64_t bytes) {
  // Bytes of an abandoned subflow were reinjected elsewhere; do not count a
  // straggling late ACK twice. After a revive, the first duplicate_debt_
  // bytes were likewise already delivered by siblings.
  if (abandoned()) return;
  const std::uint64_t dup = std::min(bytes, duplicate_debt_);
  duplicate_debt_ -= dup;
  if (bytes > dup) connection_.report_delivered(bytes - dup);
}

void MptcpSubflow::on_timeout(int consecutive_timeouts) {
  if (consecutive_timeouts >= params().path_suspect_threshold) {
    connection_.handle_stuck_subflow(*this);
  }
}

// -------------------------------------------------------- MptcpConnection

MptcpSubflow& MptcpConnection::add_subflow() {
  subflows_.push_back(std::make_unique<MptcpSubflow>(
      events_, pool_, flow_, params_, *this,
      static_cast<int>(subflows_.size())));
  return *subflows_.back();
}

std::uint64_t MptcpConnection::pull(std::uint64_t want) {
  if (reinject_pool_ > 0) {
    const std::uint64_t granted = std::min(want, reinject_pool_);
    reinject_pool_ -= granted;
    return granted;
  }
  const std::uint64_t remaining = flow_size_ - assigned_;
  const std::uint64_t granted = std::min(want, remaining);
  assigned_ += granted;
  return granted;
}

void MptcpConnection::handle_stuck_subflow(MptcpSubflow& subflow) {
  if (subflow.abandoned()) return;
  int live = 0;
  for (const auto& sf : subflows_) live += !sf->abandoned();
  if (live <= 1) return;  // last path standing: keep retrying in place
  const std::uint64_t stuck = subflow.unacked_assigned_bytes();
  subflow.abandon();
  reinject_pool_ += stuck;
  for (const auto& sf : subflows_) sf->kick();
}

void MptcpConnection::revive_subflow(MptcpSubflow& subflow) {
  if (!subflow.abandoned() || complete()) return;
  const std::uint64_t stuck = subflow.unacked_assigned_bytes();
  // Reclaim what is still sitting in the reinject pool; the rest was (or
  // will be) delivered by siblings and must not be counted again when this
  // subflow's go-back-N re-delivers it.
  const std::uint64_t reclaimed = std::min(reinject_pool_, stuck);
  reinject_pool_ -= reclaimed;
  subflow.duplicate_debt_ += stuck - reclaimed;
  subflow.revive();
}

void MptcpConnection::report_delivered(std::uint64_t bytes) {
  delivered_ += bytes;
  if (delivered_ >= flow_size_ && !complete()) {
    completion_time_ = events_.now();
    if (on_complete_) on_complete_(*this);
  }
}

std::uint64_t MptcpConnection::lia_increase(const MptcpSubflow& subflow,
                                            std::uint64_t bytes_acked) const {
  // RFC 6356 / NSDI'11 Linked Increases:
  //   alpha = cwnd_total * max_r(cwnd_r / rtt_r^2) / (sum_r cwnd_r/rtt_r)^2
  //   per-ACK increase on subflow r:
  //     min(alpha * bytes_acked * MSS / cwnd_total,
  //         bytes_acked * MSS / cwnd_r)       (the single-TCP cap)
  double cwnd_total = 0.0;
  double max_term = 0.0;
  double sum_term = 0.0;
  bool have_rtt = true;
  for (const auto& sf : subflows_) {
    const double cwnd = static_cast<double>(sf->cwnd());
    cwnd_total += cwnd;
    const SimTime srtt = sf->smoothed_rtt();
    if (srtt <= 0) {
      have_rtt = false;
      continue;
    }
    const double rtt = static_cast<double>(srtt);
    max_term = std::max(max_term, cwnd / (rtt * rtt));
    sum_term += cwnd / rtt;
  }

  const double mss = static_cast<double>(params_.mss);
  const double acked = static_cast<double>(bytes_acked);
  const double own_cwnd = static_cast<double>(subflow.cwnd());
  const double tcp_cap = acked * mss / own_cwnd;
  if (!have_rtt || sum_term <= 0.0 || cwnd_total <= 0.0) {
    // Not enough RTT data yet: behave like uncoupled NewReno.
    return static_cast<std::uint64_t>(std::max(1.0, tcp_cap));
  }
  const double alpha = cwnd_total * max_term / (sum_term * sum_term);
  const double coupled = alpha * acked * mss / cwnd_total;
  return static_cast<std::uint64_t>(std::max(1.0, std::min(coupled, tcp_cap)));
}

int MptcpConnection::total_retransmits() const {
  int total = 0;
  for (const auto& sf : subflows_) total += sf->retransmits();
  return total;
}

int MptcpConnection::total_timeouts() const {
  int total = 0;
  for (const auto& sf : subflows_) total += sf->timeouts();
  return total;
}

}  // namespace pnet::sim
