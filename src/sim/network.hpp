// Instantiates the simulation objects for a ParallelNetwork (one Queue +
// Pipe per directed link per plane) and builds source routes from routing
// Paths. FlowFactory creates TCP/MPTCP endpoints wired over those routes
// and reports completions to a FlowLogger.
#pragma once

#include <functional>
#include <memory>
#include <ostream>
#include <vector>

#include "routing/path.hpp"
#include "sim/mptcp.hpp"
#include "sim/pipe.hpp"
#include "sim/queue.hpp"
#include "sim/route_arena.hpp"
#include "sim/shard.hpp"
#include "sim/tcp.hpp"
#include "telemetry/telemetry.hpp"
#include "topo/parallel.hpp"

namespace pnet::sim {

struct SimConfig {
  /// Per-port buffering; default 100 MTU-sized packets, the usual htsim
  /// shallow-buffer datacenter setting.
  std::uint64_t queue_buffer_bytes = 100 * 1500;
  /// ECN marking threshold per port (0 disables). DCTCP's guidance is
  /// ~20% of a shallow buffer; pair with TcpParams::dctcp.
  std::uint64_t ecn_threshold_bytes = 0;
  /// Strict-priority service for ACKs at every port (common DC QoS).
  bool priority_acks = false;
  /// NDP-style cut-payload: overloaded ports trim data packets to headers
  /// (forwarded at priority) instead of dropping; receivers NACK and the
  /// sender retransmits immediately — the §6.5 incast-aware fabric option.
  bool trim_to_header = false;
  TcpParams tcp;
};

class SimNetwork {
 public:
  /// With `shards` null (the default), every queue and pipe binds to the
  /// single `events`/`pool` pair — the serial engine, unchanged. With a
  /// ShardSet, each link's queue binds to its owner shard (the link's
  /// source node: host links to the host's shard, switch links to the
  /// plane's), and pipes whose link crosses shards become BoundaryPipes.
  SimNetwork(EventQueue& events, PacketPool& pool,
             const topo::ParallelNetwork& net, const SimConfig& config,
             ShardSet* shards = nullptr);

  [[nodiscard]] const topo::ParallelNetwork& net() const { return net_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }

  [[nodiscard]] Queue& queue(int plane, LinkId link) {
    return *queues_[static_cast<std::size_t>(plane)]
                   [static_cast<std::size_t>(link.v)];
  }
  /// The propagation stage of a same-shard (or serial-engine) link. In
  /// sharded mode a crossing link has no Pipe — use boundary() there.
  [[nodiscard]] Pipe& pipe(int plane, LinkId link) {
    return *pipes_[static_cast<std::size_t>(plane)]
                  [static_cast<std::size_t>(link.v)];
  }

  /// The handoff stage of a cross-shard link, or nullptr when `link` stays
  /// within one shard (always nullptr in serial mode).
  [[nodiscard]] BoundaryPipe* boundary(int plane, LinkId link) {
    if (boundaries_.empty()) return nullptr;
    return boundaries_[static_cast<std::size_t>(plane)]
                      [static_cast<std::size_t>(link.v)]
        .get();
  }

  /// Builds a forwarding chain along `path`, ending at `endpoint`, interned
  /// into this network's route arena (stable address; identical chains
  /// share one Route).
  const Route* make_route(const routing::Path& path, PacketSink& endpoint);

  /// The arena backing make_route (allocation diagnostics).
  [[nodiscard]] const RouteArena& routes() const { return routes_; }

  /// The reverse of `path` (ACK direction), using each link's duplex twin.
  [[nodiscard]] routing::Path reverse_path(const routing::Path& path) const;

  /// Total tail-drops across every queue (Fig 11c's retransmit driver).
  [[nodiscard]] std::uint64_t total_drops() const;
  /// Total ECN CE marks across every queue.
  [[nodiscard]] std::uint64_t total_ecn_marks() const;
  /// Bytes currently buffered across every queue — the fabric-wide queue
  /// depth gauge of the telemetry sampler.
  [[nodiscard]] std::uint64_t total_queued_bytes() const;
  /// The deepest single queue right now (incast hotspot indicator).
  [[nodiscard]] std::uint64_t max_queued_bytes() const;
  /// Cumulative wire bytes forwarded by `plane`'s queues — per-plane link
  /// utilization, sampled as a rate by the telemetry layer.
  [[nodiscard]] std::uint64_t plane_forwarded_bytes(int plane) const;
  /// Bytes currently buffered in `plane`'s queues (data + ACK) — the
  /// per-plane queue-depth gauge the control plane reads.
  [[nodiscard]] std::uint64_t plane_queued_bytes(int plane) const;
  /// Out-of-range queue configuration calls clamped (see
  /// Queue::set_loss_rate / set_rate_scale) across every queue.
  [[nodiscard]] std::uint64_t total_config_clamped() const;

  /// Directed links across all planes (== number of queues/pipes).
  [[nodiscard]] std::size_t total_links() const {
    return queue_stats_.size();
  }
  /// The dense per-queue counter blocks, one slot per directed link in
  /// plane order (the struct-of-arrays behind every total_* accessor).
  [[nodiscard]] const std::vector<QueueStats>& queue_stats() const {
    return queue_stats_;
  }

  /// Wires fault-transition trace events (cable/plane fail, recover,
  /// degrade) into `trace`; nullptr detaches. All fault entry points funnel
  /// through this network, so this one hook covers every fabric fault.
  void set_trace(telemetry::Trace* trace) { trace_ = trace; }

  /// Attaches an invariant auditor to every queue (per-enqueue occupancy
  /// checks); nullptr detaches.
  void set_audit(util::Audit* audit);
  /// End-of-trial conservation sweep: audit_check on every queue.
  void audit_check(util::Audit& audit) const;

  /// Fails (or repairs) a full-duplex cable: both directed links drop all
  /// arriving packets. `link` may be either direction of the pair.
  /// Idempotent — repeating the same state is a no-op — and independent of
  /// the plane overlay: recovering a plane does not resurrect a cable that
  /// was failed individually, and vice versa, so a FaultInjector can flap
  /// cables and planes concurrently without state corruption.
  void set_cable_failed(int plane, LinkId link, bool failed);
  [[nodiscard]] bool cable_failed(int plane, LinkId link) const;
  /// Fails (or repairs) every link of one dataplane — the whole-plane
  /// outage the paper's §3.4 link-status detection reacts to. Idempotent,
  /// layered over per-cable state like set_cable_failed.
  void set_plane_failed(int plane, bool failed);
  [[nodiscard]] bool plane_failed(int plane) const {
    return plane_failed_[static_cast<std::size_t>(plane)] != 0;
  }
  /// Fail->up transitions actually applied (flap-safety diagnostics; a
  /// redundant set_*_failed(true) does not bump these).
  [[nodiscard]] int cable_fail_transitions() const {
    return cable_fail_transitions_;
  }
  [[nodiscard]] int plane_fail_transitions() const {
    return plane_fail_transitions_;
  }

  /// Degrades both directions of a cable: random drop probability and/or a
  /// reduced service rate. `loss_rate=0, rate_scale=1` restores it.
  void set_cable_degraded(int plane, LinkId link, double loss_rate,
                          double rate_scale = 1.0);

 private:
  void apply_link_state(int plane, LinkId link);

  EventQueue& events_;  // fault trace events stamp with the current time
  const topo::ParallelNetwork& net_;
  SimConfig config_;
  ShardSet* shards_ = nullptr;
  std::vector<std::vector<std::unique_ptr<Queue>>> queues_;  // [plane][link]
  std::vector<std::vector<std::unique_ptr<Pipe>>> pipes_;
  /// Sharded mode only: the handoff stage of each crossing link (null for
  /// same-shard links); empty in serial mode. Parallel to pipes_.
  std::vector<std::vector<std::unique_ptr<BoundaryPipe>>> boundaries_;
  /// Sharded mode only: owning shard of each queue, for audit routing.
  std::vector<std::vector<std::uint32_t>> owners_;
  /// Dense per-queue counters in plane-major link order; sized once in the
  /// constructor (queues hold raw pointers into it) and never resized.
  std::vector<QueueStats> queue_stats_;
  /// queue_stats_ index of plane p's first link (num_planes + 1 entries).
  std::vector<std::size_t> stats_offset_;
  RouteArena routes_;
  /// Reused chain-building scratch for make_route.
  std::vector<PacketSink*> route_scratch_;
  /// Failure overlays: a queue is failed iff its cable flag or its plane
  /// flag is set. Cable flags are kept per directed link (both directions
  /// of a duplex pair always move together).
  std::vector<std::vector<char>> cable_failed_;  // [plane][link]
  std::vector<char> plane_failed_;
  int cable_fail_transitions_ = 0;
  int plane_fail_transitions_ = 0;
  telemetry::Trace* trace_ = nullptr;
};

/// One completed transport flow, as logged for analysis.
struct FlowRecord {
  FlowId id;
  HostId src;
  HostId dst;
  std::uint64_t bytes = 0;
  SimTime start = 0;
  SimTime end = 0;
  /// Links traversed by the (first) path; the latency-relevant hop count.
  int hops = 0;
  int subflows = 1;
  int retransmits = 0;
  int timeouts = 0;
  /// Times the flow was moved to a fresh path by the failover machinery.
  int repaths = 0;
  /// Bytes actually delivered to the receiver. Equals `bytes` for completed
  /// flows; the partial progress for flows finalized mid-transfer.
  std::uint64_t delivered_bytes = 0;
  /// False for records emitted by FlowFactory::finalize — the flow was
  /// still active when the harness stopped.
  bool completed = true;
};

class FlowLogger {
 public:
  void record(const FlowRecord& r) { records_.push_back(r); }
  [[nodiscard]] const std::vector<FlowRecord>& records() const {
    return records_;
  }
  /// Flow completion times in microseconds, one per completed record
  /// (finalized-incomplete flows have no FCT and are skipped).
  [[nodiscard]] std::vector<double> fct_us() const;
  [[nodiscard]] int total_retransmits() const;
  [[nodiscard]] int total_timeouts() const;
  void clear() { records_.clear(); }

  /// CSV dump (header + one row per flow) for external plotting, matching
  /// the artifact's workflow of post-processing simulator output.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<FlowRecord> records_;
};

class FlowFactory {
 public:
  using FlowCallback = std::function<void(const FlowRecord&)>;
  /// Picks replacement paths for a live flow whose current path (on
  /// `suspect_plane`) looks dead. Returning empty keeps the old path.
  using RepathProvider = std::function<std::vector<routing::Path>(
      HostId src, HostId dst, int suspect_plane, std::uint64_t bytes)>;

  /// With `shards` set, each transport endpoint binds to its host's shard
  /// (sources and MPTCP connections to the sender's, sinks to the
  /// receiver's) and completion/repath callbacks that fire on worker
  /// threads are parked via ShardSet::defer until the next barrier.
  FlowFactory(EventQueue& events, PacketPool& pool, SimNetwork& network,
              FlowLogger& logger, ShardSet* shards = nullptr)
      : events_(events), pool_(pool), network_(network), logger_(logger),
        shards_(shards) {}

  /// Enables transport-driven failover: every subsequent single-path TCP
  /// flow gets a repath callback that asks `provider` for fresh paths when
  /// its path turns suspect (consecutive RTOs) or its plane is reported
  /// down. Typically wired by core::PathSelector::enable_repath.
  void set_repath_provider(RepathProvider provider) {
    repath_provider_ = std::move(provider);
  }

  /// Host-side link-status reaction (§3.4), called by core::HealthMonitor
  /// once the fault has propagated: live single-path flows routed over
  /// `plane` repath immediately; MPTCP subflows on it are abandoned and
  /// their bytes reinjected through surviving subflows.
  void on_plane_failed(int plane);
  /// The recovery half: revives abandoned MPTCP subflows whose path rides
  /// `plane` instead of leaving them dead forever.
  void on_plane_recovered(int plane);

  /// Asks the caller for a replacement path for one flow being re-pinned;
  /// an empty result skips that flow. Typically
  /// core::PathSelector::repin bound to a target plane.
  using RepinPick = std::function<std::vector<routing::Path>(
      HostId src, HostId dst, std::uint64_t bytes)>;
  /// Control-plane actuator: moves up to `max_flows` live single-path TCP
  /// flows riding `from_plane` onto whatever path `pick` returns for them,
  /// in flow-creation order. Only flows created after
  /// set_repath_provider() are movable (repath metadata exists only then).
  /// Must run on the coordinator thread — in sharded mode that means from
  /// a control-queue event at a barrier epoch, exactly where the
  /// controller tick runs. Returns how many flows moved.
  int repin_flows(int from_plane, int max_flows, const RepinPick& pick);
  /// Plane of every live (incomplete, repath-tracked) single-path TCP
  /// flow, in creation order — test probe for repin-under-fault-storm.
  [[nodiscard]] std::vector<int> live_tcp_planes() const;

  /// Cumulative bytes delivered (acked) across all flows, complete and in
  /// flight — the goodput numerator sampled by analysis::GoodputProbe.
  [[nodiscard]] std::uint64_t total_delivered_bytes() const;

  /// Flows launched but not yet completed (the sampler's active-flow gauge).
  [[nodiscard]] int active_flows() const {
    return next_flow_id_ - flows_finished_;
  }

  /// Wires flow lifecycle counters ("flows_started", "flows_finished",
  /// "repaths", "finalized_flows") and trace events ("flow_start" instants,
  /// "flow" spans, "repath" instants) into `telemetry`; nullptr detaches.
  void set_telemetry(telemetry::Telemetry* telemetry);

  /// Logs partial FlowRecords (completed=false, end=at) for every flow
  /// still active, so FlowLogger sees each launched flow exactly once.
  /// Idempotent per flow; call once after the final run_until. Returns the
  /// number of flows finalized.
  int finalize(SimTime at);

  /// Single-path TCP flow; returns the source endpoint.
  TcpSrc& tcp_flow(HostId src, HostId dst, const routing::Path& path,
                   std::uint64_t bytes, SimTime start,
                   FlowCallback on_complete = {});

  /// MPTCP flow with one subflow per path.
  MptcpConnection& mptcp_flow(HostId src, HostId dst,
                              const std::vector<routing::Path>& paths,
                              std::uint64_t bytes, SimTime start,
                              FlowCallback on_complete = {},
                              Coupling coupling = Coupling::kLia);

  [[nodiscard]] int flows_created() const { return next_flow_id_; }

  /// Diagnostic: transport endpoints that have not completed yet. Useful
  /// when an experiment's event queue drains unexpectedly early.
  [[nodiscard]] std::vector<const TcpSrc*> incomplete_tcp_flows() const {
    std::vector<const TcpSrc*> out;
    for (const auto& src : sources_) {
      if (!src->complete()) out.push_back(src.get());
    }
    return out;
  }
  [[nodiscard]] std::vector<const MptcpConnection*> incomplete_mptcp_flows()
      const {
    std::vector<const MptcpConnection*> out;
    for (const auto& conn : connections_) {
      if (!conn->complete()) out.push_back(conn.get());
    }
    return out;
  }

 private:
  FlowId next_id() { return FlowId{next_flow_id_++}; }

  /// Grows the event heap's reservation ahead of demand as transport
  /// endpoints are created, so the steady state stays allocation-free
  /// (SimHarness::audit_check treats heap regrowth as a violation).
  void reserve_events(int new_endpoints);

  /// Launch-time facts about one flow, kept so finalize() can synthesize a
  /// partial record for flows that never complete. tcp_info_ aligns with
  /// sources_, mptcp_info_ with connections_.
  struct LaunchInfo {
    FlowId id;
    HostId src;
    HostId dst;
    std::uint64_t bytes = 0;
    SimTime start = 0;
    int hops = 0;
    bool finalized = false;
  };

  void note_started(const LaunchInfo& info);
  void note_finished(const FlowRecord& r);

  /// The event queue / packet pool a host's endpoints live on: the host's
  /// shard when sharded, the factory's own pair otherwise.
  [[nodiscard]] EventQueue& host_events(HostId host) {
    return shards_ != nullptr ? shards_->host_events(host) : events_;
  }
  [[nodiscard]] PacketPool& host_pool(HostId host) {
    return shards_ != nullptr ? shards_->host_pool(host) : pool_;
  }

  /// Routes a completion record to the logger/telemetry/user callback —
  /// immediately on the coordinator, or parked at the next barrier when
  /// called from a shard's run phase (`src_host` names that shard).
  void deliver_record(const FlowRecord& record, const FlowCallback& cb,
                      HostId src_host);
  void deliver_record_now(const FlowRecord& record, const FlowCallback& cb);

  /// Repath bookkeeping for one single-path TCP flow: which plane it rides
  /// now, plus the endpoints to rewire when it moves.
  struct TcpFlowMeta {
    TcpSrc* source = nullptr;
    TcpSink* sink = nullptr;
    HostId src;
    HostId dst;
    std::uint64_t bytes = 0;
    int plane = -1;
  };
  /// Builds the replacement route pair (or nullptr when the provider has
  /// nowhere better) and updates `meta` + the sink's ACK route.
  const Route* repath(TcpFlowMeta& meta);

  EventQueue& events_;
  PacketPool& pool_;
  SimNetwork& network_;
  FlowLogger& logger_;
  ShardSet* shards_ = nullptr;
  /// Transport endpoints created so far (TcpSrc + MPTCP subflows), the
  /// scaling term of reserve_events' pending-event bound.
  std::size_t endpoints_ = 0;
  int next_flow_id_ = 0;
  int flows_finished_ = 0;
  RepathProvider repath_provider_;
  telemetry::Telemetry* telemetry_ = nullptr;

  std::vector<std::unique_ptr<TcpSrc>> sources_;
  std::vector<std::unique_ptr<TcpSink>> sinks_;
  std::vector<std::unique_ptr<MptcpConnection>> connections_;
  std::vector<std::unique_ptr<TcpFlowMeta>> tcp_metas_;
  /// Per-connection subflow planes, aligned with connections_.
  std::vector<std::vector<int>> connection_planes_;
  std::vector<LaunchInfo> tcp_info_;    // aligned with sources_
  std::vector<LaunchInfo> mptcp_info_;  // aligned with connections_
};

}  // namespace pnet::sim
