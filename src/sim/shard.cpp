#include "sim/shard.hpp"

#include <stdexcept>
#include <string>

namespace pnet::sim {

ShardSet::ShardSet(int num_planes, int sim_threads)
    : workers_(std::min(std::max(sim_threads, 1), std::max(num_planes, 1))) {
  const auto n = static_cast<std::size_t>(std::max(num_planes, 1));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->out.resize(n);
  }
}

ShardSet::~ShardSet() {
  // Workers only wait between epochs (run_epoch joins every done ack
  // before returning), so at this point they are all spinning idle.
  quit_.store(true, std::memory_order_release);
  for (auto& w : sync_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ShardSet::note_crossing(SimTime latency) {
  if (latency <= 0) {
    throw std::invalid_argument(
        "sharded simulation requires positive latency on cross-shard "
        "(host-adjacent) links; got " +
        std::to_string(latency) + " ps");
  }
  lookahead_ = std::min(lookahead_, latency);
}

void ShardSet::reserve_events(std::size_t events) {
  for (auto& s : shards_) s->events.reserve(events);
}

void ShardSet::request_capacity(std::size_t events) {
  for (auto& s : shards_) s->events.request_capacity(events);
}

void ShardSet::set_cancel(const util::CancelToken* cancel) {
  cancel_ = cancel;
  for (auto& s : shards_) s->events.set_cancel(cancel);
}

void ShardSet::enable_audit() {
  audit_enabled_ = true;
  for (auto& s : shards_) s->events.set_audit(&s->audit);
}

bool ShardSet::busy() const {
  for (const auto& s : shards_) {
    if (s->events.pending() > 0 || s->arrivals.pending() > 0 ||
        !s->deferred.empty()) {
      return true;
    }
    for (const auto& box : s->out) {
      if (!box.empty()) return true;
    }
  }
  return false;
}

std::uint64_t ShardSet::dispatched() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events.dispatched();
  return total;
}

std::uint64_t ShardSet::boundary_sent() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->boundary_sent;
  return total;
}

std::uint64_t ShardSet::boundary_delivered() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->arrivals.delivered();
  return total;
}

void ShardSet::run_loop(EventQueue& control, SimTime deadline) {
  start_workers();
  for (;;) {
    if (cancel_ != nullptr && cancel_->cancelled()) break;
    const SimTime t_ctl = control.next_time();
    SimTime t_next = EventQueue::kNever;
    for (const auto& s : shards_) {
      t_next = std::min(t_next, s->events.next_time());
    }
    const SimTime first = std::min(t_ctl, t_next);
    if (first == EventQueue::kNever || first > deadline) break;
    if (t_ctl <= t_next) {
      // Control-first tie rule: flow starts, faults, health probes and
      // telemetry samples at time t happen before shard events at t, at
      // every worker count.
      control.run_batch();
      continue;
    }
    // Conservative window: no shard may run past the earliest pending
    // control event, and no shard may run further than lookahead past the
    // globally earliest shard event — any message that event emits lands
    // at t_next + crossing latency >= epoch_end, so it cannot be missed.
    const SimTime epoch_end =
        std::min({sat_add(t_next, lookahead_), t_ctl, sat_add(deadline, 1)});
    run_epoch(epoch_end);
    // Advance idle shard clocks to the barrier (bounded by pending work,
    // which run_before left only at >= epoch_end) before integration, so
    // anything the deferred callbacks schedule "now" lands at the barrier
    // time on every shard alike.
    const SimTime clock = std::min(epoch_end, deadline);
    for (auto& s : shards_) s->events.advance_to(clock);
    integrate();
  }
  // Leave every clock at the same stopping point run_until/run would:
  // the deadline, or — at natural drain — the latest time reached.
  SimTime stop = deadline;
  if (deadline == EventQueue::kNever) {
    stop = control.now();
    for (const auto& s : shards_) stop = std::max(stop, s->events.now());
  }
  for (auto& s : shards_) s->events.advance_to(stop);
  control.advance_to(stop);
}

void ShardSet::run_epoch(SimTime end) {
  in_worker_phase_.store(true, std::memory_order_relaxed);
  if (sync_.empty()) {
    for (auto& s : shards_) s->events.run_before(end);
    in_worker_phase_.store(false, std::memory_order_relaxed);
    return;
  }
  epoch_end_ = end;
  const std::uint64_t k = ++epoch_seq_;
  for (auto& w : sync_) w->epoch.store(k, std::memory_order_release);
  run_slice(0, end);
  for (auto& w : sync_) {
    int spins = 0;
    while (w->done.load(std::memory_order_acquire) != k) {
      if (++spins >= kSpinLimit) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  in_worker_phase_.store(false, std::memory_order_relaxed);
  for (auto& w : sync_) {
    if (w->error != nullptr) {
      std::exception_ptr error = w->error;
      w->error = nullptr;
      std::rethrow_exception(error);
    }
  }
}

void ShardSet::run_slice(std::size_t w, SimTime end) {
  const auto stride = static_cast<std::size_t>(workers_);
  for (std::size_t i = w; i < shards_.size(); i += stride) {
    shards_[i]->events.run_before(end);
  }
}

void ShardSet::integrate() {
  // Mailboxes drain in fixed (dst, src, FIFO) order: with per-shard event
  // streams already deterministic, this makes the merged arrival order —
  // and every seq number the schedules below consume — a pure function of
  // the topology, independent of the worker count.
  for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
    Shard& d = *shards_[dst];
    for (std::size_t src = 0; src < shards_.size(); ++src) {
      auto& box = shards_[src]->out[dst];
      for (const BoundaryMsg& msg : box) {
        d.arrivals.insert(d.pool.clone(msg.data));
        ++d.boundary_integrated;
      }
      box.clear();
    }
    d.arrivals.arm();
  }
  // Deferred completion records and repaths, globally time-ordered:
  // every deferred `at` is below this barrier and all future events are at
  // or above it, so a stable sort of the shard-major concatenation yields
  // the (at, shard, emit order) total order across the whole run.
  drain_scratch_.clear();
  for (auto& s : shards_) {
    for (auto& d : s->deferred) drain_scratch_.push_back(std::move(d));
    s->deferred.clear();
  }
  if (drain_scratch_.empty()) return;
  std::stable_sort(
      drain_scratch_.begin(), drain_scratch_.end(),
      [](const Deferred& a, const Deferred& b) { return a.at < b.at; });
  for (const Deferred& d : drain_scratch_) d.fn();
  drain_scratch_.clear();
}

void ShardSet::start_workers() {
  if (workers_started_ || workers_ <= 1) return;
  workers_started_ = true;
  sync_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    sync_.push_back(std::make_unique<WorkerSync>());
    WorkerSync* s = sync_.back().get();
    s->thread = std::thread(
        [this, w, s] { worker_main(static_cast<std::size_t>(w), s); });
  }
}

void ShardSet::worker_main(std::size_t w, WorkerSync* sync) {
  std::uint64_t last = 0;
  for (;;) {
    std::uint64_t k = 0;
    int spins = 0;
    while ((k = sync->epoch.load(std::memory_order_acquire)) == last) {
      if (quit_.load(std::memory_order_acquire)) return;
      if (++spins >= kSpinLimit) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    try {
      // epoch_end_ was written before the release-store on `epoch`; the
      // acquire-load above makes it visible here.
      run_slice(w, epoch_end_);
    } catch (...) {
      sync->error = std::current_exception();
    }
    sync->done.store(k, std::memory_order_release);
    last = k;
  }
}

void ShardSet::collect_audit(util::Audit& into) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    for (const std::string& v : shards_[i]->audit.violations()) {
      into.fail("shard " + std::to_string(i) + ": " + v);
    }
  }
}

void ShardSet::audit_check(util::Audit& audit) const {
  audit.note_check();
  std::uint64_t sent = 0;
  std::uint64_t integrated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t in_mailboxes = 0;
  std::uint64_t awaiting = 0;
  for (const auto& s : shards_) {
    sent += s->boundary_sent;
    integrated += s->boundary_integrated;
    delivered += s->arrivals.delivered();
    awaiting += s->arrivals.pending();
    for (const auto& box : s->out) in_mailboxes += box.size();
  }
  // Packet conservation across shard boundaries: every snapshot sent is
  // either still in a mailbox or was cloned exactly once, and every clone
  // is either delivered or still buffered for a future due time.
  if (sent != integrated + in_mailboxes) {
    audit.fail("boundary conservation: sent " + std::to_string(sent) +
               " != integrated " + std::to_string(integrated) +
               " + in mailboxes " + std::to_string(in_mailboxes));
  }
  if (integrated != delivered + awaiting) {
    audit.fail("boundary conservation: integrated " +
               std::to_string(integrated) + " != delivered " +
               std::to_string(delivered) + " + awaiting " +
               std::to_string(awaiting));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const EventQueue& ev = shards_[i]->events;
    if (ev.reserved() && ev.regrowths() > 0) {
      audit.fail("shard " + std::to_string(i) + " event heap regrew " +
                 std::to_string(ev.regrowths()) +
                 " times past its reservation (capacity now " +
                 std::to_string(ev.capacity()) + " entries)");
    }
  }
}

}  // namespace pnet::sim
