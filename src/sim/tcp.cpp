#include "sim/tcp.hpp"

#include <algorithm>
#include <cassert>

namespace pnet::sim {

// ---------------------------------------------------------------- TcpSink

void TcpSink::receive(Packet& packet) {
  assert(!packet.is_ack);
  const std::uint64_t start = packet.seq;
  const std::uint64_t end = packet.seq + packet.size_bytes;
  const SimTime ts_echo = packet.retransmitted ? -1 : packet.ts_echo;
  const FlowId flow = packet.flow;
  const int subflow = packet.subflow;
  const bool ecn_ce = packet.ecn_ce;
  const bool trimmed = packet.trimmed;
  pool_.free(&packet);

  if (trimmed) {
    // The payload was cut in the fabric: NACK the exact segment so the
    // sender retransmits immediately instead of waiting for dupACKs/RTO.
    assert(ack_route_ != nullptr);
    Packet* nack = pool_.allocate();
    nack->flow = flow;
    nack->is_ack = true;
    nack->is_nack = true;
    nack->seq = start;  // the missing segment
    nack->ack_seq = cum_;
    nack->size_bytes = params_.ack_size;
    nack->subflow = subflow;
    nack->route = ack_route_;
    nack->next_hop = 0;
    nack->forward();
    return;
  }

  // Merge [start, end) into the reassembly state.
  if (start <= cum_) {
    cum_ = std::max(cum_, end);
    // Absorb any now-contiguous out-of-order ranges.
    while (!ooo_.empty() && ooo_.front().first <= cum_) {
      cum_ = std::max(cum_, ooo_.front().second);
      ooo_.erase(ooo_.begin());
    }
  } else {
    auto it = std::lower_bound(
        ooo_.begin(), ooo_.end(), start,
        [](const auto& range, std::uint64_t s) { return range.first < s; });
    if (it == ooo_.end() || it->first != start) {
      ooo_.insert(it, {start, end});
    }
  }

  // One ACK per data segment, carrying the cumulative next-expected byte.
  assert(ack_route_ != nullptr);
  Packet* ack = pool_.allocate();
  ack->flow = flow;
  ack->is_ack = true;
  ack->ack_seq = cum_;
  ack->size_bytes = params_.ack_size;
  ack->ts_echo = ts_echo;
  ack->subflow = subflow;
  // Per-packet ECN echo (DCTCP's accurate feedback, a simplification of
  // its delayed-ACK state machine that is exact at one ACK per segment).
  ack->ecn_echo = ecn_ce;
  ack->route = ack_route_;
  ack->next_hop = 0;
  ack->forward();
}

// ----------------------------------------------------------------- TcpSrc

void TcpSrc::connect(const Route* data_route, SimTime start_time) {
  data_route_ = data_route;
  start_time_ = start_time;
  events_.schedule_at(start_time, this);
}

std::uint64_t TcpSrc::pull_bytes(std::uint64_t want) {
  if (flow_size_ == 0) return 0;  // nothing configured
  const std::uint64_t remaining = flow_size_ - assigned_;
  return std::min<std::uint64_t>(want, remaining);
}

void TcpSrc::slow_start_or_default_increase(std::uint64_t bytes_acked) {
  if (in_slow_start()) {
    if (cwnd_ <= params_.limited_ss_threshold) {
      cwnd_ += bytes_acked;
    } else {
      // RFC 3742 limited slow start: growth tapers to ~threshold/2 per RTT.
      cwnd_ += std::max<std::uint64_t>(
          1, bytes_acked * params_.limited_ss_threshold / (2 * cwnd_));
    }
  } else {
    cwnd_ += std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(params_.mss) * params_.mss / cwnd_);
  }
  cwnd_ = std::min(cwnd_, params_.max_cwnd_bytes);
}

void TcpSrc::on_window_increase(std::uint64_t bytes_acked) {
  slow_start_or_default_increase(bytes_acked);
}

void TcpSrc::on_delivered(std::uint64_t /*bytes*/) {}

void TcpSrc::on_timeout(int /*consecutive_timeouts*/) {}

void TcpSrc::abandon() {
  abandoned_ = true;
  rto_deadline_ = -1;
}

void TcpSrc::revive() {
  if (!abandoned_ || complete()) return;
  abandoned_ = false;
  // Connection-fresh state: the recovered path's congestion and RTT are
  // unknown, so slow-start from the initial window and resume go-back-N
  // from the first unacked byte.
  cwnd_ = static_cast<std::uint64_t>(params_.initial_window_packets) *
          params_.mss;
  ssthresh_ = 0x7FFFFFFFFFFF;
  in_fast_recovery_ = false;
  dupacks_ = 0;
  backoff_ = 1;
  consecutive_timeouts_ = 0;
  highest_sent_ = snd_una_;
  srtt_ = -1;
  rttvar_ = 0;
  rto_ = params_.initial_rto;
  rto_deadline_ = -1;
  if (started_) send_available();
}

void TcpSrc::switch_route(const Route* route) {
  data_route_ = route;
  ++repaths_;
  // The new path starts cold: respond to the implied loss (ssthresh cut),
  // restart from the initial window, and go-back-N onto the fresh route.
  ssthresh_ = std::max<std::uint64_t>(
      cwnd_ / 2, 2 * static_cast<std::uint64_t>(params_.mss));
  cwnd_ = static_cast<std::uint64_t>(params_.initial_window_packets) *
          params_.mss;
  highest_sent_ = snd_una_;
  in_fast_recovery_ = false;
  dupacks_ = 0;
  backoff_ = 1;
  consecutive_timeouts_ = 0;
  srtt_ = -1;
  rttvar_ = 0;
  rto_ = params_.initial_rto;
  rto_deadline_ = -1;
}

void TcpSrc::force_repath() {
  if (complete() || abandoned_ || !repath_cb_) return;
  const Route* fresh = repath_cb_(*this);
  if (fresh == nullptr) return;
  switch_route(fresh);
  if (started_) send_available();
}

void TcpSrc::receive(Packet& packet) {
  assert(packet.is_ack);
  const std::uint64_t cum = packet.ack_seq;
  const SimTime ts_echo = packet.ts_echo;
  const bool ecn_echo = packet.ecn_echo;
  const bool is_nack = packet.is_nack;
  const std::uint64_t nack_seq = packet.seq;
  pool_.free(&packet);

  if (complete() || abandoned_) return;
  if (ts_echo >= 0) update_rtt(events_.now() - ts_echo);

  if (is_nack) {
    handle_nack(nack_seq);
    return;
  }

  if (cum > snd_una_) {
    const std::uint64_t bytes_acked = cum - snd_una_;
    if (params_.dctcp) dctcp_on_ack(bytes_acked, ecn_echo);
    snd_una_ = cum;
    // A late ACK can cover original transmissions sent before a go-back-N
    // reset pulled highest_sent_ back; resync so in-flight accounting never
    // underflows.
    highest_sent_ = std::max(highest_sent_, snd_una_);
    dupacks_ = 0;
    backoff_ = 1;
    consecutive_timeouts_ = 0;
    if (in_fast_recovery_) {
      if (cum >= recover_) {
        // Full ACK: leave fast recovery.
        in_fast_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // NewReno partial ACK: resend a contiguous burst starting at the
        // recovery frontier (tail-drop losses are contiguous, so this fills
        // several holes per RTT without duplicating earlier resends),
        // deflate by the amount acked, inflate by one segment, stay in
        // recovery. The burst is paced by the ACK: one segment of credit
        // per MSS acked plus one to guarantee progress, so scattered-hole
        // recoveries do not blindly retransmit the whole window.
        const int credit = std::min<int>(
            params_.recovery_burst_segments,
            static_cast<int>(bytes_acked / params_.mss) + 1);
        std::uint64_t at = std::max(snd_una_, recovery_next_);
        for (int i = 0;
             i < credit && at < std::min(recover_, highest_sent_); ++i) {
          const auto size = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(params_.mss, highest_sent_ - at));
          send_segment(at, size, /*retransmit=*/true);
          at += size;
        }
        recovery_next_ = at;
        cwnd_ -= std::min(cwnd_, bytes_acked);
        cwnd_ += params_.mss;
        cwnd_ = std::max<std::uint64_t>(cwnd_, params_.mss);
      }
    } else {
      on_window_increase(bytes_acked);
    }
    on_delivered(bytes_acked);
    if (snd_una_ < highest_sent_) {
      arm_rto();
    } else {
      rto_deadline_ = -1;  // everything outstanding is acked
    }
    check_complete();
  } else if (highest_sent_ > snd_una_) {
    // Duplicate ACK.
    ++dupacks_;
    if (!in_fast_recovery_ && dupacks_ == 3) {
      ssthresh_ = std::max<std::uint64_t>(
          cwnd_ / 2, 2 * static_cast<std::uint64_t>(params_.mss));
      in_fast_recovery_ = true;
      recover_ = highest_sent_;
      cwnd_ = ssthresh_ + 3 * static_cast<std::uint64_t>(params_.mss);
      const auto size = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          params_.mss, highest_sent_ - snd_una_));
      send_segment(snd_una_, size, /*retransmit=*/true);
      recovery_next_ = snd_una_ + size;
      arm_rto();
    } else if (in_fast_recovery_) {
      cwnd_ += params_.mss;  // window inflation
      cwnd_ = std::min(cwnd_, params_.max_cwnd_bytes);
    }
  }
  if (!complete() && !abandoned_) send_available();
}

void TcpSrc::do_next_event() {
  if (!started_) {
    started_ = true;
    send_available();
    return;
  }
  if (complete() || abandoned_ || rto_deadline_ < 0) return;
  if (events_.now() >= rto_deadline_) {
    handle_rto();
  } else {
    events_.schedule_at(rto_deadline_, this);
  }
}

void TcpSrc::handle_nack(std::uint64_t seq) {
  if (seq < snd_una_ || seq >= highest_sent_) return;  // stale
  // Retransmit the trimmed segment immediately; apply one multiplicative
  // decrease per window of data (like NDP/CP: the trim IS the congestion
  // signal, no need to infer loss from duplicate ACKs).
  if (snd_una_ > nack_epoch_end_ || nack_epoch_end_ == 0) {
    ssthresh_ = std::max<std::uint64_t>(
        cwnd_ / 2, 2 * static_cast<std::uint64_t>(params_.mss));
    cwnd_ = ssthresh_;
    nack_epoch_end_ = highest_sent_;
  }
  const auto size = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(params_.mss, highest_sent_ - seq));
  send_segment(seq, size, /*retransmit=*/true);
  arm_rto();
}

void TcpSrc::handle_rto() {
  ++timeouts_;
  ++consecutive_timeouts_;
  ssthresh_ = std::max<std::uint64_t>(
      cwnd_ / 2, 2 * static_cast<std::uint64_t>(params_.mss));
  cwnd_ = params_.mss;
  in_fast_recovery_ = false;
  dupacks_ = 0;
  // Go-back-N: resume transmission from the first unacked byte.
  highest_sent_ = snd_una_;
  backoff_ = std::min(backoff_ * 2, 64);
  rto_deadline_ = -1;
  on_timeout(consecutive_timeouts_);
  if (!abandoned_ && repath_cb_ &&
      consecutive_timeouts_ >= params_.path_suspect_threshold) {
    // Path suspect: repeated RTOs with zero progress. Ask for a fresh path
    // (the callback consults the selector's current plane-health view).
    if (const Route* fresh = repath_cb_(*this)) switch_route(fresh);
  }
  if (!abandoned_) send_available();
}

void TcpSrc::arm_rto() {
  const SimTime timeout =
      (srtt_ >= 0 ? std::max(params_.min_rto, srtt_ + 4 * rttvar_)
                  : params_.initial_rto) *
      backoff_;
  const SimTime deadline = events_.now() + timeout;
  if (rto_deadline_ < 0 || deadline < rto_deadline_ ||
      events_.now() >= rto_deadline_) {
    rto_deadline_ = deadline;
    events_.schedule_at(deadline, this);
  } else {
    rto_deadline_ = deadline;  // wake already pending earlier; it re-arms
  }
}

void TcpSrc::update_rtt(SimTime sample) {
  if (srtt_ < 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const SimTime err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
}

void TcpSrc::send_available() {
  if (abandoned_) return;
  while (true) {
    const std::uint64_t in_flight = highest_sent_ - snd_una_;
    if (in_flight + params_.mss > cwnd_) break;
    std::uint64_t available = assigned_ - highest_sent_;
    if (available == 0) {
      const std::uint64_t granted = pull_bytes(params_.mss);
      if (granted == 0) break;
      assigned_ += granted;
      available = granted;
    }
    const auto size = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(params_.mss, available));
    send_segment(highest_sent_, size, /*retransmit=*/false);
    highest_sent_ += size;
  }
  if (highest_sent_ > snd_una_ && rto_deadline_ < 0) arm_rto();
}

void TcpSrc::send_segment(std::uint64_t seq, std::uint32_t size,
                          bool retransmit) {
  assert(size > 0);
  Packet* packet = pool_.allocate();
  packet->flow = flow_;
  packet->seq = seq;
  packet->size_bytes = size;
  packet->is_ack = false;
  packet->retransmitted = retransmit;
  packet->ts_echo = events_.now();
  packet->route = data_route_;
  packet->next_hop = 0;
  if (retransmit) ++retransmits_;
  packet->forward();
}

void TcpSrc::dctcp_on_ack(std::uint64_t bytes_acked, bool ecn_echo) {
  dctcp_acked_ += bytes_acked;
  if (ecn_echo) dctcp_marked_ += bytes_acked;
  if (snd_una_ < dctcp_window_end_) return;

  // One observation window (~RTT of data) elapsed: fold the marked
  // fraction into alpha with gain g = 2^-shift, apply the DCTCP cut if
  // anything was marked, and start the next window.
  const double fraction =
      dctcp_acked_ > 0 ? static_cast<double>(dctcp_marked_) /
                             static_cast<double>(dctcp_acked_)
                       : 0.0;
  const double g = 1.0 / static_cast<double>(1 << params_.dctcp_gain_shift);
  dctcp_alpha_ = (1.0 - g) * dctcp_alpha_ + g * fraction;
  if (dctcp_marked_ > 0 && !in_fast_recovery_) {
    const auto cut = static_cast<std::uint64_t>(
        static_cast<double>(cwnd_) * dctcp_alpha_ / 2.0);
    cwnd_ = std::max<std::uint64_t>(cwnd_ - cut, params_.mss);
    ssthresh_ = cwnd_;  // leave slow start once congestion is signalled
  }
  dctcp_acked_ = 0;
  dctcp_marked_ = 0;
  dctcp_window_end_ = highest_sent_;
}

void TcpSrc::check_complete() {
  if (flow_size_ > 0 && snd_una_ >= flow_size_ && !complete()) {
    completion_time_ = events_.now();
    rto_deadline_ = -1;
    if (on_complete_) on_complete_(*this);
  }
}

}  // namespace pnet::sim
