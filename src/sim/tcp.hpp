// TCP NewReno endpoints, htsim-style.
//
// TcpSrc implements slow start, congestion avoidance, duplicate-ACK fast
// retransmit/fast recovery (NewReno partial-ACK handling), and a
// retransmission timeout with the 10 ms minimum RTO the paper tunes to
// (section 5.1.2, following DCTCP). Loss recovery after an RTO is
// go-back-N, as in htsim.
//
// Protected virtual hooks (pull_bytes, on_window_increase, on_delivered)
// let MptcpSubflow reuse the entire machinery while coupling its congestion
// window and pulling bytes from a shared connection-level stream.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/packet.hpp"

namespace pnet::sim {

struct TcpParams {
  std::uint32_t mss = 1500;       // wire bytes per data packet
  std::uint32_t ack_size = 40;
  std::uint32_t initial_window_packets = 10;
  std::uint64_t max_cwnd_bytes = 2'000'000;
  /// Limited slow start (RFC 3742): above this cwnd, slow start grows by at
  /// most ~limited_ss_threshold/2 per RTT, bounding the overshoot loss burst
  /// when probing past the bottleneck in shallow-buffer fabrics.
  std::uint64_t limited_ss_threshold = 100 * 1500;
  /// NewReno partial-ACK recovery resends up to this many segments at once.
  /// Tail-drop losses are contiguous runs, so a small burst fills several
  /// holes per RTT instead of NewReno's classic one-per-RTT crawl.
  int recovery_burst_segments = 4;
  SimTime min_rto = 10 * units::kMillisecond;   // tuned per the paper
  SimTime initial_rto = 10 * units::kMillisecond;
  /// Consecutive RTOs with no forward progress before the source declares
  /// its path suspect (§3.4 graceful degradation): a plain TcpSrc with a
  /// repath callback installed re-routes onto a fresh path; an MPTCP
  /// subflow is abandoned and its bytes reinjected via its siblings.
  int path_suspect_threshold = 3;
  /// DCTCP mode (Alizadeh et al. [6], the paper's §6.5 incast direction):
  /// the sender keeps an EWMA of the fraction of CE-marked bytes and cuts
  /// cwnd by alpha/2 once per window instead of halving on loss signals.
  /// Requires an ECN threshold on the queues (SimConfig::ecn_threshold).
  bool dctcp = false;
  /// DCTCP g parameter (EWMA gain), expressed as a shift: alpha update uses
  /// g = 1/16 as in the DCTCP paper.
  int dctcp_gain_shift = 4;
  /// Model MPTCP's MP_JOIN staggering: secondary subflows only become
  /// usable one handshake (~2x the primary path's one-way latency) after
  /// the connection starts. Off by default (htsim-style instant subflows);
  /// turn on to reproduce the real-stack effect the paper cites ([15, 16,
  /// 49]: "MPTCP can often hurt short flows").
  bool mptcp_staggered_join = false;
};

class TcpSrc;

/// Receiver endpoint: reassembles the byte stream and ACKs every segment.
class TcpSink : public PacketSink {
 public:
  TcpSink(EventQueue& events, PacketPool& pool, const TcpParams& params)
      : events_(events), pool_(pool), params_(params) {}

  /// `ack_route` must terminate at the TcpSrc.
  void set_ack_route(const Route* ack_route) { ack_route_ = ack_route; }

  void receive(Packet& packet) override;

  [[nodiscard]] std::uint64_t cumulative_acked() const { return cum_; }

 private:
  EventQueue& events_;
  PacketPool& pool_;
  TcpParams params_;
  const Route* ack_route_ = nullptr;

  std::uint64_t cum_ = 0;  // next expected byte
  /// Out-of-order ranges as disjoint [start, end) pairs sorted by start.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ooo_;
};

class TcpSrc : public EventSource, public PacketSink {
 public:
  using CompletionCallback = std::function<void(TcpSrc&)>;
  /// Asked for a replacement data route when the current path is suspect
  /// (path_suspect_threshold consecutive RTOs) or the health monitor
  /// reports the path's plane down. Returns nullptr to stay put. The
  /// callback owns the heavy lifting — building the new route pair and
  /// re-pointing the sink's ACK route — so the source only swaps pointers.
  using RepathCallback = std::function<const Route*(TcpSrc&)>;

  TcpSrc(EventQueue& events, PacketPool& pool, FlowId flow,
         const TcpParams& params)
      : events_(events), pool_(pool), flow_(flow), params_(params),
        cwnd_(static_cast<std::uint64_t>(params.initial_window_packets) *
              params.mss),
        rto_(params.initial_rto) {}

  /// Wires the connection and schedules the first transmission.
  void connect(const Route* data_route, SimTime start_time);

  /// Fixed number of bytes to transfer; required for plain TCP flows
  /// (MPTCP subflows pull bytes from their connection instead).
  void set_flow_size(std::uint64_t bytes) { flow_size_ = bytes; }
  void set_completion_callback(CompletionCallback cb) {
    on_complete_ = std::move(cb);
  }
  void set_repath_callback(RepathCallback cb) { repath_cb_ = std::move(cb); }

  // PacketSink: ACK arrivals.
  void receive(Packet& packet) override;
  // EventSource: start-of-flow and RTO wake-ups.
  void do_next_event() override;

  [[nodiscard]] FlowId flow() const { return flow_; }
  [[nodiscard]] SimTime start_time() const { return start_time_; }
  [[nodiscard]] SimTime completion_time() const { return completion_time_; }
  [[nodiscard]] bool complete() const { return completion_time_ >= 0; }
  [[nodiscard]] std::uint64_t cwnd() const { return cwnd_; }
  [[nodiscard]] std::uint64_t acked_bytes() const { return snd_una_; }
  [[nodiscard]] int retransmits() const { return retransmits_; }
  [[nodiscard]] int timeouts() const { return timeouts_; }
  [[nodiscard]] int repaths() const { return repaths_; }
  [[nodiscard]] SimTime smoothed_rtt() const { return srtt_; }
  [[nodiscard]] const Route* data_route() const { return data_route_; }
  [[nodiscard]] const TcpParams& params() const { return params_; }

  /// Stops all transmission (used when an MPTCP connection gives up on a
  /// dead subflow and reinjects its bytes elsewhere). Reversible: revive()
  /// restarts the sender once its path recovers.
  void abandon();
  /// Reverses abandon() after the path recovered (§3.4 re-establishment):
  /// resets the congestion/RTT state to connection-fresh values and resumes
  /// go-back-N from the first unacked byte.
  void revive();
  /// Link-status-driven repath: the health monitor detected this flow's
  /// plane down, so move now instead of waiting out path_suspect_threshold
  /// RTOs. No-op without a repath callback (or if it declines).
  void force_repath();
  /// Installs a replacement route built elsewhere — the coordinator-phase
  /// half of a repath the callback deferred to a shard barrier (see
  /// FlowFactory). No-op on nullptr, mirroring a declining callback.
  void apply_repath(const Route* route) {
    if (route != nullptr) switch_route(route);
  }
  [[nodiscard]] bool abandoned() const { return abandoned_; }
  /// Bytes granted to this sender but not yet acked.
  [[nodiscard]] std::uint64_t unacked_assigned_bytes() const {
    return assigned_ - snd_una_;
  }
  /// Wakes an idle sender to pull freshly available bytes.
  void kick() {
    if (!complete() && !abandoned_ && started_) send_available();
  }

 protected:
  /// Grants up to `want` new bytes to transmit. Plain TCP grants from the
  /// fixed flow size; MPTCP subflows pull from the shared connection.
  virtual std::uint64_t pull_bytes(std::uint64_t want);
  /// Congestion-window growth on new-data ACKs (NewReno by default; the
  /// MPTCP subflow overrides congestion avoidance with Linked Increases).
  virtual void on_window_increase(std::uint64_t bytes_acked);
  /// Progress notification: `bytes` newly acked (cumulative advance).
  virtual void on_delivered(std::uint64_t bytes);
  /// Called after each retransmission timeout with the consecutive-timeout
  /// count (resets on forward progress). MPTCP uses this to detect dead
  /// subflows.
  virtual void on_timeout(int consecutive_timeouts);

  void slow_start_or_default_increase(std::uint64_t bytes_acked);
  /// Raises cwnd by an externally computed amount (capped); used by coupled
  /// congestion controllers.
  void apply_increase(std::uint64_t bytes) {
    cwnd_ = std::min(cwnd_ + bytes, params_.max_cwnd_bytes);
  }
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  /// Installs `route` as the data route and restarts cleanly on it.
  void switch_route(const Route* route);
  void send_available();
  void send_segment(std::uint64_t seq, std::uint32_t size, bool retransmit);
  void dctcp_on_ack(std::uint64_t bytes_acked, bool ecn_echo);
  void handle_nack(std::uint64_t seq);
  void handle_rto();
  void arm_rto();
  void update_rtt(SimTime sample);
  void check_complete();

  EventQueue& events_;
  PacketPool& pool_;
  FlowId flow_;
  TcpParams params_;

  const Route* data_route_ = nullptr;
  SimTime start_time_ = 0;
  bool started_ = false;

  // Sender state (bytes).
  std::uint64_t flow_size_ = 0;     // 0 = unbounded (subflow mode)
  std::uint64_t assigned_ = 0;      // bytes granted for transmission
  std::uint64_t highest_sent_ = 0;  // next new byte to send
  std::uint64_t snd_una_ = 0;       // lowest unacked byte
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_ = 0x7FFFFFFFFFFF;
  int dupacks_ = 0;
  bool in_fast_recovery_ = false;
  std::uint64_t recover_ = 0;
  bool abandoned_ = false;
  int consecutive_timeouts_ = 0;
  /// Highest byte already retransmitted in the current recovery episode;
  /// partial-ACK bursts resume here so no byte is resent twice per episode.
  std::uint64_t recovery_next_ = 0;
  /// NACK (trim) congestion response: at most one window cut per window of
  /// data — the edge of the window when the last cut was applied.
  std::uint64_t nack_epoch_end_ = 0;

  // RTO machinery.
  SimTime rto_;
  SimTime srtt_ = -1;
  SimTime rttvar_ = 0;
  SimTime rto_deadline_ = -1;
  int backoff_ = 1;

  // DCTCP state: bytes acked (total / CE-marked) in the current
  // observation window, the EWMA alpha in [0, 1], and the window edge at
  // which the next alpha update + congestion response happens.
  std::uint64_t dctcp_acked_ = 0;
  std::uint64_t dctcp_marked_ = 0;
  double dctcp_alpha_ = 0.0;
  std::uint64_t dctcp_window_end_ = 0;

  // Stats.
  int retransmits_ = 0;
  int timeouts_ = 0;
  int repaths_ = 0;
  SimTime completion_time_ = -1;
  CompletionCallback on_complete_;
  RepathCallback repath_cb_;
};

}  // namespace pnet::sim
