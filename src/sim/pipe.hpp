// Fixed-delay propagation pipe: the speed-of-light component of a link.
// Infinite capacity; packets entering `latency` apart leave `latency` apart,
// so the internal buffer is naturally FIFO — an intrusive list threaded
// through Packet::next, with the delivery deadline parked in Packet::due.
#pragma once

#include "sim/event_queue.hpp"
#include "sim/packet.hpp"

namespace pnet::sim {

class Pipe : public EventSource, public PacketSink {
 public:
  Pipe(EventQueue& events, SimTime latency)
      : events_(events), latency_(latency) {}

  void receive(Packet& packet) override {
    packet.due = events_.now() + latency_;
    const bool was_idle = in_flight_.empty();
    in_flight_.push_back(&packet);
    if (was_idle) events_.schedule_at(packet.due, this);
  }

  void do_next_event() override {
    // Deliver everything due now (multiple packets can share an instant).
    while (!in_flight_.empty() && in_flight_.front()->due <= events_.now()) {
      Packet* packet = in_flight_.pop_front();
      packet->forward();
    }
    if (!in_flight_.empty()) {
      events_.schedule_at(in_flight_.front()->due, this);
    }
  }

  [[nodiscard]] SimTime latency() const { return latency_; }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_.size(); }

 private:
  EventQueue& events_;
  SimTime latency_;
  PacketList in_flight_;
};

}  // namespace pnet::sim
