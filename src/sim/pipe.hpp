// Fixed-delay propagation pipe: the speed-of-light component of a link.
// Infinite capacity; packets entering `latency` apart leave `latency` apart,
// so the internal buffer is naturally FIFO.
#pragma once

#include <deque>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/packet.hpp"

namespace pnet::sim {

class Pipe : public EventSource, public PacketSink {
 public:
  Pipe(EventQueue& events, SimTime latency)
      : events_(events), latency_(latency) {}

  void receive(Packet& packet) override {
    const SimTime deliver_at = events_.now() + latency_;
    in_flight_.emplace_back(deliver_at, &packet);
    if (in_flight_.size() == 1) events_.schedule_at(deliver_at, this);
  }

  void do_next_event() override {
    // Deliver everything due now (multiple packets can share an instant).
    while (!in_flight_.empty() && in_flight_.front().first <= events_.now()) {
      Packet* packet = in_flight_.front().second;
      in_flight_.pop_front();
      packet->forward();
    }
    if (!in_flight_.empty()) {
      events_.schedule_at(in_flight_.front().first, this);
    }
  }

  [[nodiscard]] SimTime latency() const { return latency_; }

 private:
  EventQueue& events_;
  SimTime latency_;
  std::deque<std::pair<SimTime, Packet*>> in_flight_;
};

}  // namespace pnet::sim
