// Dynamic fault injection: timed cable/plane failures, flaps, and degraded
// links driven through the event queue while traffic is running.
//
// The paper's §3.4 resilience story ("hosts detect dataplane failures via
// link status and avoid the broken dataplane") is a *dynamic* claim — it is
// about reaction time, not steady state. A FaultPlan is a deterministic,
// seedable schedule of fault events; a FaultInjector replays it on the
// simulated network and tells listeners (core::HealthMonitor, stats
// collectors) the instant each event hits the fabric. The same plan on the
// same network replays bit-identically, so recovery experiments are exactly
// reproducible.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "topo/parallel.hpp"

namespace pnet::sim {

enum class FaultKind : std::uint8_t {
  kCableFail,
  kCableRecover,
  kPlaneFail,
  kPlaneRecover,
  /// Degraded cable: loss_rate / rate_scale take effect.
  kCableDegrade,
  /// Degradation cleared (loss 0, full service rate).
  kCableRestore,
};

[[nodiscard]] std::string to_string(FaultKind kind);

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kCableFail;
  int plane = 0;
  /// Either direction of the duplex pair, for the cable-scoped kinds;
  /// ignored for plane-scoped kinds.
  LinkId link{-1};
  double loss_rate = 0.0;   // kCableDegrade
  double rate_scale = 1.0;  // kCableDegrade
};

/// A deterministic schedule of fault events. Compose by hand or with the
/// seeded generators; arm() a FaultInjector with it before running.
class FaultPlan {
 public:
  FaultPlan& add(FaultEvent event);

  FaultPlan& fail_plane(SimTime at, int plane);
  FaultPlan& recover_plane(SimTime at, int plane);
  /// A flap: the plane dies at `at` and comes back `down_for` later.
  FaultPlan& flap_plane(SimTime at, SimTime down_for, int plane);

  FaultPlan& fail_cable(SimTime at, int plane, LinkId link);
  FaultPlan& recover_cable(SimTime at, int plane, LinkId link);
  FaultPlan& flap_cable(SimTime at, SimTime down_for, int plane,
                        LinkId link);
  /// A degraded-link episode: random loss and/or reduced service rate from
  /// `at` until `until`.
  FaultPlan& degrade_cable(SimTime at, SimTime until, int plane, LinkId link,
                           double loss_rate, double rate_scale = 1.0);

  /// Seeded generator: `count` random switch-to-switch cables (drawn
  /// independently per plane, host uplinks excluded) flap periodically —
  /// down at start + k*period for `down_for` — while k*period < span.
  static FaultPlan random_link_flaps(const topo::ParallelNetwork& net,
                                    int count, SimTime start, SimTime span,
                                    SimTime period, SimTime down_for,
                                    std::uint64_t seed);
  /// Seeded generator: `count` random fabric cables run degraded (loss +
  /// rate scale) from start until start + duration.
  static FaultPlan random_degraded_links(const topo::ParallelNetwork& net,
                                        int count, SimTime start,
                                        SimTime duration, double loss_rate,
                                        double rate_scale,
                                        std::uint64_t seed);

  /// Events sorted by (time, insertion order).
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Merges another plan's events into this one.
  FaultPlan& merge(const FaultPlan& other);

 private:
  void sort_events();

  std::vector<FaultEvent> events_;
  bool sorted_ = true;
};

/// Replays a FaultPlan on a SimNetwork through the event queue.
class FaultInjector : public EventSource {
 public:
  /// Called synchronously when an event has just been applied to the
  /// fabric. Listeners model the *information* path (e.g. the link-status
  /// propagation delay of core::HealthMonitor); the fabric effect itself is
  /// already live.
  using Listener = std::function<void(const FaultEvent&)>;

  FaultInjector(EventQueue& events, SimNetwork& network)
      : events_(events), network_(network) {}

  /// Schedules every event of `plan`. May be called multiple times (plans
  /// accumulate); call before or while the loop runs, never for times in
  /// the past.
  void arm(const FaultPlan& plan);
  void add_listener(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  void do_next_event() override;

  /// What actually hit the fabric so far, with the network-wide drop
  /// counter sampled at that instant (episode loss attribution for
  /// analysis::RecoveryStats).
  struct AppliedEvent {
    FaultEvent event;
    std::uint64_t total_drops_at_apply = 0;
  };
  [[nodiscard]] const std::vector<AppliedEvent>& applied() const {
    return applied_;
  }
  [[nodiscard]] int events_pending() const {
    return static_cast<int>(pending_.size()) - next_;
  }

 private:
  void apply(const FaultEvent& event);

  EventQueue& events_;
  SimNetwork& network_;
  std::vector<FaultEvent> pending_;  // sorted by time
  int next_ = 0;
  std::vector<Listener> listeners_;
  std::vector<AppliedEvent> applied_;
};

}  // namespace pnet::sim
