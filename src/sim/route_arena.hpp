// Compiled route storage: one chunked arena of PacketSink* spans shared by
// every route in a SimNetwork — the sim-layer twin of routing::RouteTable's
// PathRef/PathView split.
//
// make_route used to heap-allocate a Route (itself holding a heap
// vector<PacketSink*>) per flow direction and per repath; at fat-tree scale
// that is hundreds of thousands of small allocations whose contents are
// overwhelmingly duplicates (every flow pair between the same hosts on the
// same plane shares a chain). The arena interns instead: sink chains live in
// fixed-size slabs that never move, Route headers live in their own slabs
// (stable addresses — transports hold `const Route*` across their whole
// lifetime), and identical chains are deduplicated on intern. Append-only:
// routes are never evicted while the network lives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/packet.hpp"

namespace pnet::sim {

class RouteArena {
 public:
  /// Interns a forwarding chain (deduplicating by content) and returns a
  /// stable pointer, valid for the arena's lifetime. Not thread safe; the
  /// sim is single-threaded per trial.
  const Route* intern(std::span<PacketSink* const> sinks, int hop_count);

  /// Distinct routes stored (post-dedup).
  [[nodiscard]] std::size_t num_routes() const { return num_routes_; }
  /// Intern calls answered from the dedup index instead of new storage.
  [[nodiscard]] std::size_t dedup_hits() const { return dedup_hits_; }
  /// Sink pointers actually stored (post-dedup, excluding slab padding).
  [[nodiscard]] std::size_t sinks_stored() const { return sinks_stored_; }
  /// Bytes of arena storage allocated (whole slabs).
  [[nodiscard]] std::size_t arena_bytes() const {
    return sink_chunks_.size() * kSinkChunk * sizeof(PacketSink*) +
           route_chunks_.size() * kRouteChunk * sizeof(Route);
  }

 private:
  /// 4096 sink pointers (32 KiB) per slab; a chain never spans two slabs.
  /// Chains longer than a slab (unseen in practice: a chain is
  /// 2*hops+1 entries) get a dedicated exact-size slab.
  static constexpr std::size_t kSinkChunk = std::size_t{1} << 12;
  /// 1024 Route headers per slab.
  static constexpr std::size_t kRouteChunk = std::size_t{1} << 10;

  PacketSink** alloc_sinks(std::size_t count);
  Route* alloc_route();

  std::vector<std::unique_ptr<PacketSink*[]>> sink_chunks_;
  std::size_t sink_used_ = kSinkChunk;  // used slots in the newest slab
  std::vector<std::unique_ptr<Route[]>> route_chunks_;
  std::size_t route_used_ = kRouteChunk;
  std::size_t num_routes_ = 0;
  std::size_t dedup_hits_ = 0;
  std::size_t sinks_stored_ = 0;
  /// Content hash -> routes with that hash (chained for collisions).
  std::unordered_map<std::uint64_t, std::vector<const Route*>> dedup_;
};

}  // namespace pnet::sim
