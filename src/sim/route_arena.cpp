#include "sim/route_arena.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace pnet::sim {

namespace {

std::uint64_t chain_hash(std::span<PacketSink* const> sinks, int hop_count) {
  std::uint64_t h = mix64(0x9E3779B97F4A7C15ULL ^
                          static_cast<std::uint64_t>(hop_count));
  for (PacketSink* sink : sinks) {
    h = mix64(h ^ reinterpret_cast<std::uintptr_t>(sink));
  }
  return h;
}

}  // namespace

const Route* RouteArena::intern(std::span<PacketSink* const> sinks,
                                int hop_count) {
  auto& bucket = dedup_[chain_hash(sinks, hop_count)];
  for (const Route* route : bucket) {
    if (route->hop_count == hop_count &&
        std::equal(route->sinks.begin(), route->sinks.end(), sinks.begin(),
                   sinks.end())) {
      ++dedup_hits_;
      return route;
    }
  }
  PacketSink** storage = alloc_sinks(sinks.size());
  std::copy(sinks.begin(), sinks.end(), storage);
  Route* route = alloc_route();
  route->sinks = std::span<PacketSink* const>(storage, sinks.size());
  route->hop_count = hop_count;
  bucket.push_back(route);
  ++num_routes_;
  sinks_stored_ += sinks.size();
  return route;
}

PacketSink** RouteArena::alloc_sinks(std::size_t count) {
  if (count > kSinkChunk) {
    // Oversize chain: dedicated exact-size slab, spliced in *before* the
    // current slab so the bump state below stays untouched.
    auto slab = std::make_unique<PacketSink*[]>(count);
    PacketSink** out = slab.get();
    sink_chunks_.insert(sink_chunks_.empty() ? sink_chunks_.end()
                                             : sink_chunks_.end() - 1,
                        std::move(slab));
    return out;
  }
  if (sink_used_ + count > kSinkChunk) {
    sink_chunks_.push_back(std::make_unique<PacketSink*[]>(kSinkChunk));
    sink_used_ = 0;
  }
  PacketSink** out = sink_chunks_.back().get() + sink_used_;
  sink_used_ += count;
  return out;
}

Route* RouteArena::alloc_route() {
  if (route_used_ == kRouteChunk) {
    route_chunks_.push_back(std::make_unique<Route[]>(kRouteChunk));
    route_used_ = 0;
  }
  return &route_chunks_.back()[route_used_++];
}

}  // namespace pnet::sim
