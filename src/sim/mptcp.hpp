// MPTCP with Linked-Increases coupled congestion control (Wischik et al.,
// NSDI'11 [43]) — the multipath transport the paper pairs with K-shortest-
// paths routing.
//
// A connection owns K subflows, each a full TcpSrc running over its own
// path (typically one of the K globally-shortest paths across dataplanes).
// Subflows pull bytes from the shared connection stream on demand, do
// uncoupled slow start, and couple congestion avoidance through the LIA
// alpha so the aggregate is fair to single-path TCP at shared bottlenecks
// while still using the capacity of disjoint paths.
#pragma once

#include <memory>
#include <vector>

#include "sim/tcp.hpp"

namespace pnet::sim {

class MptcpConnection;

class MptcpSubflow final : public TcpSrc {
 public:
  MptcpSubflow(EventQueue& events, PacketPool& pool, FlowId flow,
               const TcpParams& params, MptcpConnection& connection,
               int index)
      : TcpSrc(events, pool, flow, params), connection_(connection),
        index_(index) {}

  [[nodiscard]] int index() const { return index_; }

 protected:
  std::uint64_t pull_bytes(std::uint64_t want) override;
  void on_window_increase(std::uint64_t bytes_acked) override;
  void on_delivered(std::uint64_t bytes) override;
  void on_timeout(int consecutive_timeouts) override;

 private:
  friend class MptcpConnection;

  MptcpConnection& connection_;
  int index_;
  /// Bytes this subflow will re-deliver after a revive that were already
  /// delivered by siblings (reinjected while it was abandoned); deducted
  /// from report_delivered so the connection never counts a byte twice.
  std::uint64_t duplicate_debt_ = 0;
};

/// Congestion-coupling policy across subflows.
enum class Coupling {
  /// RFC 6356 Linked Increases: fair to single-path TCP at shared
  /// bottlenecks; conservative (slow ramp) on disjoint paths.
  kLia,
  /// Independent NewReno per subflow: maximally aggressive; equivalent to
  /// opening K parallel TCP connections. Kept as an ablation knob.
  kUncoupled,
};

class MptcpConnection {
 public:
  using CompletionCallback = std::function<void(MptcpConnection&)>;

  MptcpConnection(EventQueue& events, PacketPool& pool, FlowId flow,
                  const TcpParams& params, std::uint64_t flow_size,
                  Coupling coupling = Coupling::kLia)
      : events_(events), pool_(pool), flow_(flow), params_(params),
        flow_size_(flow_size), coupling_(coupling) {}

  [[nodiscard]] Coupling coupling() const { return coupling_; }

  /// Adds one subflow; the caller wires routes/sinks and starts it via
  /// TcpSrc::connect. Subflows must all be added before the flow starts.
  MptcpSubflow& add_subflow();

  void set_completion_callback(CompletionCallback cb) {
    on_complete_ = std::move(cb);
  }

  [[nodiscard]] FlowId flow() const { return flow_; }
  [[nodiscard]] std::uint64_t flow_size() const { return flow_size_; }
  [[nodiscard]] std::uint64_t delivered_bytes() const { return delivered_; }
  [[nodiscard]] bool complete() const { return completion_time_ >= 0; }
  [[nodiscard]] SimTime completion_time() const { return completion_time_; }
  [[nodiscard]] int num_subflows() const {
    return static_cast<int>(subflows_.size());
  }
  [[nodiscard]] MptcpSubflow& subflow(int index) {
    return *subflows_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] int total_retransmits() const;
  [[nodiscard]] int total_timeouts() const;

  // --- interface used by MptcpSubflow ---
  std::uint64_t pull(std::uint64_t want);
  void report_delivered(std::uint64_t bytes);
  /// LIA increase for one subflow's new-data ACK, in congestion avoidance.
  [[nodiscard]] std::uint64_t lia_increase(const MptcpSubflow& subflow,
                                           std::uint64_t bytes_acked) const;
  /// A subflow has hit repeated RTOs with no progress: abandon it and
  /// reinject its unacked bytes through the surviving subflows (the
  /// connection-level retransmission real MPTCP performs). No-op when it is
  /// the last live subflow — then retrying in place is all there is.
  void handle_stuck_subflow(MptcpSubflow& subflow);
  /// The reverse, on plane recovery (§3.4): re-establish an abandoned
  /// subflow instead of leaving it dead forever. Bytes still waiting in the
  /// reinject pool are reclaimed by the revived subflow; bytes siblings
  /// already took over become duplicate debt so they are not double
  /// counted when the revived subflow re-delivers them.
  void revive_subflow(MptcpSubflow& subflow);

 private:
  EventQueue& events_;
  PacketPool& pool_;
  FlowId flow_;
  TcpParams params_;
  std::uint64_t flow_size_;
  Coupling coupling_;
  std::uint64_t assigned_ = 0;
  std::uint64_t delivered_ = 0;
  /// Bytes reclaimed from abandoned subflows, served by pull() first.
  std::uint64_t reinject_pool_ = 0;
  SimTime completion_time_ = -1;
  CompletionCallback on_complete_;
  std::vector<std::unique_ptr<MptcpSubflow>> subflows_;
};

}  // namespace pnet::sim
