#include "analysis/failures.hpp"

#include <queue>

#include "routing/shortest.hpp"

namespace pnet::analysis {

std::vector<bool> random_fabric_failures(const topo::Graph& graph,
                                         double fraction, Rng& rng) {
  std::vector<bool> failed(static_cast<std::size_t>(graph.num_links()),
                           false);
  // Collect fabric cables: forward link of each (switch, switch) pair.
  std::vector<LinkId> cables;
  for (int l = 0; l < graph.num_links(); l += 2) {
    const topo::Link& link = graph.link(LinkId{l});
    if (!graph.is_host(link.src) && !graph.is_host(link.dst)) {
      cables.push_back(LinkId{l});
    }
  }
  const auto to_fail = static_cast<std::size_t>(
      fraction * static_cast<double>(cables.size()) + 0.5);
  rng.shuffle(cables);
  for (std::size_t i = 0; i < to_fail && i < cables.size(); ++i) {
    failed[static_cast<std::size_t>(cables[i].v)] = true;
    failed[static_cast<std::size_t>(graph.reverse(cables[i]).v)] = true;
  }
  return failed;
}

std::vector<int> bfs_hops_with_failures(const topo::Graph& graph, NodeId src,
                                        const std::vector<bool>& failed) {
  std::vector<int> dist(static_cast<std::size_t>(graph.num_nodes()),
                        routing::kUnreachable);
  dist[static_cast<std::size_t>(src.v)] = 0;
  std::queue<NodeId> frontier;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    if (u != src && graph.is_host(u)) continue;  // hosts do not transit
    for (LinkId id : graph.out_links(u)) {
      if (failed[static_cast<std::size_t>(id.v)]) continue;
      const NodeId v = graph.link(id).dst;
      if (dist[static_cast<std::size_t>(v.v)] == routing::kUnreachable) {
        dist[static_cast<std::size_t>(v.v)] =
            dist[static_cast<std::size_t>(u.v)] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

HopCountResult average_hop_count(
    const topo::ParallelNetwork& net,
    const std::vector<std::vector<bool>>& failed_per_plane) {
  const int racks = static_cast<int>(net.plane(0).switch_nodes.size());
  // min over planes of hops, per ordered pair (indexed by rack position).
  std::vector<std::vector<int>> best(
      static_cast<std::size_t>(racks),
      std::vector<int>(static_cast<std::size_t>(racks),
                       routing::kUnreachable));

  for (int p = 0; p < net.num_planes(); ++p) {
    const topo::Graph& g = net.plane(p).graph;
    const auto& switches = net.plane(p).switch_nodes;
    for (int a = 0; a < racks; ++a) {
      const auto dist = bfs_hops_with_failures(
          g, switches[static_cast<std::size_t>(a)],
          failed_per_plane[static_cast<std::size_t>(p)]);
      for (int b = 0; b < racks; ++b) {
        const int d =
            dist[static_cast<std::size_t>(
                switches[static_cast<std::size_t>(b)].v)];
        auto& cell = best[static_cast<std::size_t>(a)]
                         [static_cast<std::size_t>(b)];
        if (d < cell) cell = d;
      }
    }
  }

  HopCountResult result;
  std::size_t reachable = 0;
  double total = 0.0;
  for (int a = 0; a < racks; ++a) {
    for (int b = 0; b < racks; ++b) {
      if (a == b) continue;
      const int d =
          best[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
      if (d != routing::kUnreachable) {
        ++reachable;
        total += d;
      }
    }
  }
  const auto pairs =
      static_cast<std::size_t>(racks) * static_cast<std::size_t>(racks - 1);
  result.connectivity =
      pairs > 0 ? static_cast<double>(reachable) / static_cast<double>(pairs)
                : 0.0;
  result.mean_hops = reachable > 0 ? total / static_cast<double>(reachable)
                                   : 0.0;
  return result;
}

HopCountResult hop_count_under_failures(const topo::ParallelNetwork& net,
                                        double fraction, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<bool>> failed;
  failed.reserve(static_cast<std::size_t>(net.num_planes()));
  for (int p = 0; p < net.num_planes(); ++p) {
    failed.push_back(
        random_fabric_failures(net.plane(p).graph, fraction, rng));
  }
  return average_hop_count(net, failed);
}

}  // namespace pnet::analysis
