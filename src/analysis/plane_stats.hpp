// Per-plane statistics merging — the §7 "monitoring and diagnostics"
// direction: each dataplane is logically separate, so an operator view must
// merge per-plane counters to describe the network as a whole.
#pragma once

#include <string>
#include <vector>

#include "sim/network.hpp"

namespace pnet::analysis {

struct PlaneStats {
  int plane = 0;
  std::uint64_t packets_forwarded = 0;
  std::uint64_t drops = 0;
  std::uint64_t ecn_marks = 0;
  std::uint64_t queued_bytes = 0;  // instantaneous backlog
};

struct PlaneStatsReport {
  std::vector<PlaneStats> planes;

  [[nodiscard]] std::uint64_t total_forwarded() const;
  [[nodiscard]] std::uint64_t total_drops() const;
  /// Load-balance quality: max plane load / mean plane load (1.0 = even).
  /// The paper's round-robin/ECMP discussion is exactly about keeping this
  /// near 1 so the parallel capacity is actually usable.
  [[nodiscard]] double imbalance() const;

  [[nodiscard]] std::string to_string() const;
};

/// Walks every queue of every plane and merges the counters.
PlaneStatsReport collect_plane_stats(sim::SimNetwork& network);

}  // namespace pnet::analysis
