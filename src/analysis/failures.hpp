// Link-failure injection and hop-count analysis (the Fig 14 fault-tolerance
// study). Failures are injected per plane and independently: the paper's
// homogeneous P-Net keeps its resilience edge precisely because identical
// planes fail independently, so the per-pair minimum over planes degrades
// far slower than any single plane.
#pragma once

#include <vector>

#include "topo/parallel.hpp"
#include "util/rng.hpp"

namespace pnet::analysis {

/// Marks a random `fraction` of a plane's switch-to-switch cables failed.
/// Returns a per-directed-link failed flag (both directions of a cable fail
/// together). Host uplinks never fail here, matching the paper's focus on
/// in-fabric failures.
std::vector<bool> random_fabric_failures(const topo::Graph& graph,
                                         double fraction, Rng& rng);

/// BFS hop counts from `src` ignoring failed links.
std::vector<int> bfs_hops_with_failures(const topo::Graph& graph, NodeId src,
                                        const std::vector<bool>& failed);

struct HopCountResult {
  /// Mean shortest-path hop count over reachable ordered switch pairs,
  /// taking the minimum over planes for each pair (P-Net semantics).
  double mean_hops = 0.0;
  /// Fraction of ordered switch pairs still connected in >= 1 plane.
  double connectivity = 0.0;
};

/// Average min-over-planes switch-to-switch hop count under per-plane
/// failure sets (`failed[plane]` aligned with each plane's link ids; pass
/// all-false vectors for the healthy baseline).
HopCountResult average_hop_count(
    const topo::ParallelNetwork& net,
    const std::vector<std::vector<bool>>& failed_per_plane);

/// Convenience: inject `fraction` failures in every plane (independent
/// draws) and measure. Seed controls the draw.
HopCountResult hop_count_under_failures(const topo::ParallelNetwork& net,
                                        double fraction, std::uint64_t seed);

}  // namespace pnet::analysis
