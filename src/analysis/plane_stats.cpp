#include "analysis/plane_stats.hpp"

#include <algorithm>
#include <sstream>

namespace pnet::analysis {

std::uint64_t PlaneStatsReport::total_forwarded() const {
  std::uint64_t total = 0;
  for (const auto& p : planes) total += p.packets_forwarded;
  return total;
}

std::uint64_t PlaneStatsReport::total_drops() const {
  std::uint64_t total = 0;
  for (const auto& p : planes) total += p.drops;
  return total;
}

double PlaneStatsReport::imbalance() const {
  if (planes.empty()) return 0.0;
  std::uint64_t max_load = 0;
  std::uint64_t sum = 0;
  for (const auto& p : planes) {
    max_load = std::max(max_load, p.packets_forwarded);
    sum += p.packets_forwarded;
  }
  if (sum == 0) return 1.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(planes.size());
  return static_cast<double>(max_load) / mean;
}

std::string PlaneStatsReport::to_string() const {
  std::ostringstream out;
  for (const auto& p : planes) {
    out << "plane " << p.plane << ": forwarded=" << p.packets_forwarded
        << " drops=" << p.drops << " ecn=" << p.ecn_marks
        << " backlog=" << p.queued_bytes << "B\n";
  }
  out << "imbalance=" << imbalance() << "\n";
  return out.str();
}

PlaneStatsReport collect_plane_stats(sim::SimNetwork& network) {
  PlaneStatsReport report;
  const auto& net = network.net();
  for (int p = 0; p < net.num_planes(); ++p) {
    PlaneStats stats;
    stats.plane = p;
    for (int l = 0; l < net.plane(p).graph.num_links(); ++l) {
      const sim::Queue& q = network.queue(p, LinkId{l});
      stats.packets_forwarded += q.forwarded();
      stats.drops += q.drops();
      stats.ecn_marks += q.ecn_marks();
      stats.queued_bytes += q.queued_bytes();
    }
    report.planes.push_back(stats);
  }
  return report;
}

}  // namespace pnet::analysis
