#include "analysis/recovery.hpp"

#include <algorithm>

namespace pnet::analysis {

void GoodputProbe::start(SimTime at) {
  last_bytes_ = delivered_bytes_();
  events_.schedule_at(at + bucket_width_, this);
}

void GoodputProbe::do_next_event() {
  const std::uint64_t bytes = delivered_bytes_();
  const double delta_bits = static_cast<double>(bytes - last_bytes_) * 8.0;
  last_bytes_ = bytes;
  samples_.push_back(
      {events_.now(), delta_bits / units::to_seconds(bucket_width_)});
  if (events_.now() + bucket_width_ <= until_) {
    events_.schedule_at(events_.now() + bucket_width_, this);
  }
}

std::vector<FaultEpisode> plane_episodes(
    const std::vector<sim::FaultInjector::AppliedEvent>& applied,
    const std::vector<std::pair<sim::FaultEvent, SimTime>>& detections) {
  std::vector<FaultEpisode> episodes;
  // Open episode per plane, as an index into `episodes` (-1 = none).
  std::vector<int> open;
  for (const auto& entry : applied) {
    const sim::FaultEvent& event = entry.event;
    if (static_cast<std::size_t>(event.plane) >= open.size()) {
      open.resize(static_cast<std::size_t>(event.plane) + 1, -1);
    }
    int& slot = open[static_cast<std::size_t>(event.plane)];
    if (event.kind == sim::FaultKind::kPlaneFail) {
      if (slot >= 0) continue;  // duplicate fail inside an open episode
      slot = static_cast<int>(episodes.size());
      FaultEpisode episode;
      episode.kind = event.kind;
      episode.plane = event.plane;
      episode.fail_at = event.at;
      // Stash the drop counter at failure; finalized on recovery.
      episode.packets_lost = entry.total_drops_at_apply;
      episodes.push_back(episode);
    } else if (event.kind == sim::FaultKind::kPlaneRecover) {
      if (slot < 0) continue;  // recovery without a fail in view
      FaultEpisode& episode = episodes[static_cast<std::size_t>(slot)];
      episode.recover_at = event.at;
      episode.packets_lost =
          entry.total_drops_at_apply - episode.packets_lost;
      slot = -1;
    }
  }
  // Episodes still open never recovered: loss attribution is unknown.
  for (int slot : open) {
    if (slot >= 0) episodes[static_cast<std::size_t>(slot)].packets_lost = 0;
  }
  // First detection of each episode's failure, by plane and fabric time.
  for (FaultEpisode& episode : episodes) {
    for (const auto& [event, seen_at] : detections) {
      if (event.kind == sim::FaultKind::kPlaneFail &&
          event.plane == episode.plane && event.at == episode.fail_at) {
        episode.detected_at = seen_at;
        break;
      }
    }
  }
  return episodes;
}

RecoveryReport analyze_episode(const std::vector<GoodputProbe::Sample>& samples,
                               const FaultEpisode& episode,
                               double recovered_fraction) {
  RecoveryReport report;
  report.packets_lost = episode.packets_lost;
  if (episode.detected_at >= 0) {
    report.time_to_detect = episode.detected_at - episode.fail_at;
  }

  // The outage window for dip purposes: until recovery, or to the end of
  // the series if the fault never recovered.
  SimTime outage_end = episode.recover_at;
  if (outage_end < 0) {
    outage_end = samples.empty() ? episode.fail_at : samples.back().t_end;
  }

  double baseline_sum = 0.0;
  int baseline_count = 0;
  bool dip_seen = false;
  for (const auto& sample : samples) {
    if (sample.t_end <= episode.fail_at) {
      baseline_sum += sample.goodput_bps;
      ++baseline_count;
    } else if (sample.t_end <= outage_end) {
      if (!dip_seen || sample.goodput_bps < report.dip_goodput_bps) {
        report.dip_goodput_bps = sample.goodput_bps;
        dip_seen = true;
      }
    } else if (!dip_seen) {
      // Outage shorter than one bucket: the first bucket straddling it is
      // the best dip estimate available at this resolution.
      report.dip_goodput_bps = sample.goodput_bps;
      dip_seen = true;
    }
  }
  if (baseline_count > 0) {
    report.baseline_goodput_bps = baseline_sum / baseline_count;
  }
  if (!dip_seen) report.dip_goodput_bps = report.baseline_goodput_bps;

  const double bar = recovered_fraction * report.baseline_goodput_bps;
  for (const auto& sample : samples) {
    if (sample.t_end <= episode.fail_at) continue;
    if (sample.goodput_bps >= bar) {
      report.time_to_recover = sample.t_end - episode.fail_at;
      break;
    }
  }
  return report;
}

}  // namespace pnet::analysis
