// Recovery statistics for dynamic fault experiments: goodput-vs-time
// sampling plus per-episode time-to-detect / time-to-recover / packets-lost
// accounting.
//
// The §3.4 resilience claim is temporal — a P-Net with N planes should show
// a 1/N goodput dip that closes as soon as hosts learn of the failure,
// while a serial network's goodput collapses for the whole outage. These
// helpers turn a FaultInjector's applied-event log and a running byte
// counter into exactly those numbers. Works on raw sim types only
// (FaultEvent, (event, time) detection pairs), so it stays below core in
// the layering: core::HealthMonitor::detections() plugs in directly.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/faults.hpp"

namespace pnet::analysis {

/// Samples a cumulative delivered-bytes counter on a fixed grid and turns
/// the deltas into a goodput-vs-time series. Point it at
/// sim::FlowFactory::total_delivered_bytes (or any monotone counter).
class GoodputProbe : public sim::EventSource {
 public:
  struct Sample {
    /// Bucket end time; the bucket covers [t_end - width, t_end).
    SimTime t_end = 0;
    double goodput_bps = 0.0;
  };

  GoodputProbe(sim::EventQueue& events,
               std::function<std::uint64_t()> delivered_bytes,
               SimTime bucket_width, SimTime until)
      : events_(events), delivered_bytes_(std::move(delivered_bytes)),
        bucket_width_(bucket_width), until_(until) {}

  /// Begins sampling: one bucket every `bucket_width` from `at` to `until`.
  void start(SimTime at);

  void do_next_event() override;

  [[nodiscard]] const std::vector<Sample>& samples() const {
    return samples_;
  }
  [[nodiscard]] SimTime bucket_width() const { return bucket_width_; }

 private:
  sim::EventQueue& events_;
  std::function<std::uint64_t()> delivered_bytes_;
  SimTime bucket_width_;
  SimTime until_;
  std::uint64_t last_bytes_ = 0;
  std::vector<Sample> samples_;
};

/// One fault episode on the fabric timeline, in injection time.
struct FaultEpisode {
  sim::FaultKind kind = sim::FaultKind::kPlaneFail;
  int plane = 0;
  SimTime fail_at = 0;
  /// -1 if the fault never recovered within the run.
  SimTime recover_at = -1;
  /// When the hosts learned of the failure (-1 if never detected).
  SimTime detected_at = -1;
  /// Network-wide drops attributed to the episode: the fabric drop counter
  /// delta between fault apply and recovery apply.
  std::uint64_t packets_lost = 0;
};

/// Pairs kPlaneFail/kPlaneRecover events per plane out of a FaultInjector's
/// applied log, attaching drop deltas and (optionally) host detection times
/// — pass core::HealthMonitor::detections() or {}.
std::vector<FaultEpisode> plane_episodes(
    const std::vector<sim::FaultInjector::AppliedEvent>& applied,
    const std::vector<std::pair<sim::FaultEvent, SimTime>>& detections);

/// The headline recovery numbers for one episode against a goodput series.
struct RecoveryReport {
  /// Mean goodput over the buckets that ended before the fault hit.
  double baseline_goodput_bps = 0.0;
  /// Minimum goodput over buckets overlapping the outage.
  double dip_goodput_bps = 0.0;
  /// detected_at - fail_at; -1 when undetected.
  SimTime time_to_detect = -1;
  /// First bucket end after fail_at where goodput climbs back above
  /// `recovered_fraction` x baseline, minus fail_at; -1 if never.
  SimTime time_to_recover = -1;
  std::uint64_t packets_lost = 0;
};

RecoveryReport analyze_episode(const std::vector<GoodputProbe::Sample>& samples,
                               const FaultEpisode& episode,
                               double recovered_fraction = 0.9);

}  // namespace pnet::analysis
