#include "serve/json_value.hpp"

#include <cmath>
#include <cstdlib>

namespace pnet::serve {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, const ParseLimits& limits)
      : text_(text), limits_(limits) {}

  bool parse(JsonValue& out, std::string& error) {
    error_ = &error;
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return true;
  }

 private:
  bool fail(const std::string& what) {
    *error_ = "byte " + std::to_string(pos_) + ": " + what;
    return false;
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected, const char* what) {
    if (at_end() || peek() != expected) return fail(what);
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > limits_.max_depth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.text);
      case 't': return parse_literal("true", [&] {
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
      });
      case 'f': return parse_literal("false", [&] {
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
      });
      case 'n': return parse_literal("null", [&] {
        out.kind = JsonValue::Kind::kNull;
      });
      default: return parse_number(out);
    }
  }

  template <class Fn>
  bool parse_literal(std::string_view word, Fn apply) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    apply();
    return true;
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      if (out.find(key) != nullptr) {
        return fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      if (!consume(':', "expected ':' after object key")) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening '"'
    out.clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (at_end()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t code = 0;
          if (!parse_hex4(code)) return false;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired high surrogate");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        --pos_;
        return fail("invalid hex digit in \\u escape");
      }
    }
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    // Grammar check before strtod: JSON forbids "+1", ".5", "01", "1.",
    // and hex — strtod accepts several of those, so validate shape first.
    const std::size_t int_start = pos_;
    while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    if (pos_ == int_start) return fail("invalid number");
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      return fail("leading zero in number");
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      const std::size_t frac_start = pos_;
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
      if (pos_ == frac_start) return fail("missing digits after '.'");
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      const std::size_t exp_start = pos_;
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
      if (pos_ == exp_start) return fail("missing digits in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) {
      return fail("number out of range (non-finite)");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = value;
    return true;
  }

  std::string_view text_;
  const ParseLimits& limits_;
  std::size_t pos_ = 0;
  std::string* error_ = nullptr;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string& error,
                const ParseLimits& limits) {
  if (text.size() > limits.max_bytes) {
    error = "document of " + std::to_string(text.size()) +
            " bytes exceeds the " + std::to_string(limits.max_bytes) +
            "-byte limit";
    return false;
  }
  out = JsonValue{};
  Parser parser(text, limits);
  return parser.parse(out, error);
}

}  // namespace pnet::serve
