// serve::Server — the socket front end of pnet-serve.
//
// Listens on a Unix-domain socket (the default transport: local clients,
// filesystem permissions) and/or a TCP port, speaks newline-delimited
// JSON: one request line in, one response line out, connections stay open
// for pipelining. EOF with a non-empty remainder is processed as a final
// request, so `printf '<spec json>' | nc -U /tmp/pnet.sock` works without
// a trailing newline.
//
// Each accepted connection gets a reader thread that feeds
// Service::handle_line (which does its own queueing/backpressure — the
// reader thread blocks while its query runs, which is exactly the
// per-connection flow control we want). Oversized lines are answered with
// a structured error and the connection is closed: the framing is byte
// bounded, a hostile client cannot buffer unbounded garbage.
//
// Shutdown (SIGTERM/SIGINT, via a self-pipe so the handler stays
// async-signal-safe) is the graceful-drain path: stop accepting, let
// Service::drain() finish queued + active queries (new ones bounce with a
// retryable "draining" error), nudge idle readers with shutdown(2), join,
// unlink the socket path. No in-flight response is ever lost.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace pnet::serve {

struct ServerOptions {
  /// Unix-domain listening path; empty disables the unix listener.
  std::string unix_path = "/tmp/pnet.sock";
  /// TCP listening port on 127.0.0.1; 0 disables the TCP listener.
  int tcp_port = 0;
  /// Longest accepted request line; longer gets a structured error and a
  /// closed connection. Defaults to the service's max_request_bytes + slack
  /// when 0.
  std::size_t max_line_bytes = 0;
};

class Server {
 public:
  /// Binds the listeners (throws std::runtime_error on bind failure —
  /// e.g. the unix path is taken by a live daemon).
  Server(Service& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop; blocks until request_stop() (or a signal wired to it via
  /// notify_fd()). Returns after the graceful drain completes.
  void run();

  /// Thread-safe / signal-safe-adjacent stop request: wakes the accept
  /// loop. The actual drain happens on the run() thread.
  void request_stop();

  /// Write end of the self-pipe; a signal handler writes one byte here to
  /// stop the server (async-signal-safe).
  [[nodiscard]] int notify_fd() const { return wake_write_; }

  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  void accept_on(int listener);
  void serve_connection(int fd);
  void close_listeners();

  Service& service_;
  ServerOptions options_;
  int unix_listener_ = -1;
  int tcp_listener_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace pnet::serve
