#include "serve/service.hpp"

#include <chrono>
#include <cstdio>
#include <map>
#include <utility>

#include "exp/json.hpp"
#include "exp/report.hpp"
#include "util/stats.hpp"

namespace pnet::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void summary_json(exp::JsonWriter& w, const exp::Summary& s) {
  w.begin_object();
  w.field("count", static_cast<std::uint64_t>(s.count));
  w.field("mean", s.mean);
  w.field("stddev", s.stddev);
  w.field("median", s.median);
  w.field("p90", s.p90);
  w.field("p99", s.p99);
  w.field("min", s.min);
  w.field("max", s.max);
  w.end_object();
}

/// The warm-arena key: every NetworkSpec field that shapes the built
/// topology. Policy/workload knobs are deliberately absent — RouteCache
/// entries are keyed by the full RouteQuery already, so queries differing
/// only in policy share one arena.
std::uint64_t topo_key(const topo::NetworkSpec& t) {
  exp::JsonWriter w;
  w.begin_object();
  w.field("kind", topo::to_string(t.topo));
  w.field("type", topo::to_string(t.type));
  w.field("hosts", t.hosts);
  w.field("parallelism", t.parallelism);
  w.field("base_rate_bps", t.base_rate_bps);
  w.field("seed", t.seed);
  w.field("jf_switches", t.jf_switches);
  w.field("jf_degree", t.jf_degree);
  w.field("jf_hosts_per_switch", t.jf_hosts_per_switch);
  w.end_object();
  return exp::fnv1a(w.str());
}

}  // namespace

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string make_error_body(const RequestError& error) {
  exp::JsonWriter w;
  w.begin_object();
  w.field("ok", false);
  w.key("error").begin_object();
  w.field("kind", error.code);
  w.field("message", error.message);
  w.field("retryable", error.retryable);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string make_ok_body(std::uint64_t spec_hash,
                         const std::string& canonical_spec,
                         const exp::CellResult& cell) {
  exp::JsonWriter w;
  w.begin_object();
  w.field("trials", static_cast<int>(cell.trials.size()));
  w.field("flows_started", cell.flows_started());
  w.field("flows_finished", cell.flows_finished());
  w.field("unfinished_flows", cell.unfinished_flows());
  w.field("delivered_bytes", cell.delivered_bytes());
  w.field("sim_seconds", cell.sim_seconds());
  w.field("events", cell.events());
  w.key("fct_us");
  summary_json(w, cell.fct());
  // Union of per-trial scalar metrics, mean across trials, in key order —
  // deterministic like everything else in the body.
  std::map<std::string, bool> keys;
  for (const auto& trial : cell.trials) {
    for (const auto& [key, value] : trial.metrics) keys[key] = true;
  }
  w.key("metrics").begin_object();
  for (const auto& [key, unused] : keys) {
    w.field(key, cell.metric(key).mean);
  }
  w.end_object();
  w.end_object();
  // The canonical spec is already JSON — splice it in verbatim so the
  // response echoes exactly the bytes that were hashed.
  std::string body = "{\"ok\":true,\"schema\":1,\"spec_hash\":\"";
  body += hash_hex(spec_hash);
  body += "\",\"spec\":";
  body += canonical_spec;
  body += ",\"result\":";
  body += w.str();
  body += "}";
  return body;
}

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes),
      queries_total_(registry_.counter("queries_total")),
      queries_ok_(registry_.counter("queries_ok")),
      engine_runs_(registry_.counter("engine_runs")),
      dedup_joins_(registry_.counter("dedup_joins")),
      errors_exception_(registry_.counter("errors_exception")),
      errors_timeout_(registry_.counter("errors_timeout")),
      errors_cancelled_(registry_.counter("errors_cancelled")),
      rejected_parse_(registry_.counter("rejected_parse")),
      rejected_invalid_(registry_.counter("rejected_invalid_spec")),
      rejected_oversized_(registry_.counter("rejected_oversized")),
      rejected_overload_(registry_.counter("rejected_overload")),
      rejected_draining_(registry_.counter("rejected_draining")),
      route_cache_reuse_(registry_.counter("route_cache_reuse")),
      queue_depth_(registry_.gauge("queue_depth")),
      active_gauge_(registry_.gauge("active_queries")) {
  auto factory = options_.engine_factory;
  if (!factory) {
    factory = [](exp::EngineKind kind) { return exp::make_engine(kind); };
  }
  packet_engine_ = factory(exp::EngineKind::kPacket);
  fluid_engine_ = factory(exp::EngineKind::kFsim);
  int workers = options_.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 2;
  }
  latency_ms_.resize(options_.latency_window > 0 ? options_.latency_window
                                                 : 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() {
  std::deque<Job> orphans;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    stop_ = true;
    orphans.swap(queue_);
    queue_depth_.set(0.0);
    for (const auto& token : active_tokens_) token.cancel();
    queue_cv_.notify_all();
  }
  // Queued-but-never-started queries still get a structured reply — a
  // blocked handle_line caller must never hang on a dying service.
  const auto body = std::make_shared<const std::string>(make_error_body(
      {exp::to_string(exp::TrialErrorKind::kCancelled),
       "service shutting down", true}));
  for (const auto& job : orphans) fulfill(job.inflight, body);
  for (auto& worker : workers_) worker.join();
}

void Service::fulfill(const std::shared_ptr<Inflight>& inflight,
                      std::shared_ptr<const std::string> body) {
  const std::lock_guard<std::mutex> lock(inflight->mutex);
  inflight->body = std::move(body);
  inflight->done = true;
  inflight->cv.notify_all();
}

std::string Service::over_cap(const exp::ExperimentSpec& spec) const {
  if (spec.topo.hosts > options_.max_hosts) {
    return "topo.hosts " + std::to_string(spec.topo.hosts) +
           " exceeds this server's cap of " +
           std::to_string(options_.max_hosts);
  }
  if (spec.trials > options_.max_trials) {
    return "trials " + std::to_string(spec.trials) +
           " exceeds this server's cap of " +
           std::to_string(options_.max_trials);
  }
  if (spec.workload.rounds > options_.max_rounds) {
    return "workload.rounds " + std::to_string(spec.workload.rounds) +
           " exceeds this server's cap of " +
           std::to_string(options_.max_rounds);
  }
  return "";
}

std::string Service::handle_line(std::string_view line) {
  const auto start = Clock::now();
  queries_total_.inc();
  if (line.size() > options_.max_request_bytes) {
    rejected_oversized_.inc();
    return make_error_body(
        {kErrOversized,
         "request of " + std::to_string(line.size()) +
             " bytes exceeds the " +
             std::to_string(options_.max_request_bytes) + "-byte limit",
         false});
  }
  Request request;
  RequestError error;
  ParseLimits limits;
  limits.max_bytes = options_.max_request_bytes;
  if (!decode_request(line, request, error, limits)) {
    (error.code == kErrParse ? rejected_parse_ : rejected_invalid_).inc();
    return make_error_body(error);
  }
  if (request.kind == Request::Kind::kStats) return stats_json();

  if (std::string problem = request.spec.validate(); !problem.empty()) {
    rejected_invalid_.inc();
    return make_error_body({kErrInvalidSpec, problem, false});
  }
  if (std::string problem = over_cap(request.spec); !problem.empty()) {
    rejected_invalid_.inc();
    return make_error_body({kErrInvalidSpec, problem, false});
  }

  std::string canonical = request.spec.canonical_json();
  const std::uint64_t hash = exp::fnv1a(canonical);

  std::shared_ptr<Inflight> inflight;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Cache probe under the admission lock: a worker inserts the body
    // before retiring its in-flight entry, so probe-then-join can never
    // miss both.
    if (auto body = cache_.find(hash); body != nullptr) {
      record_latency(ms_since(start));
      return *body;
    }
    if (const auto it = inflight_.find(hash); it != inflight_.end()) {
      dedup_joins_.inc();
      inflight = it->second;
    } else if (draining_) {
      rejected_draining_.inc();
      return make_error_body(
          {kErrDraining, "service is draining; retry elsewhere", true});
    } else if (queue_.size() >= options_.queue_limit) {
      rejected_overload_.inc();
      return make_error_body(
          {kErrOverloaded,
           "admission queue full (depth " + std::to_string(queue_.size()) +
               ")",
           true});
    } else {
      const double deadline_ms = request.deadline_ms > 0.0
                                     ? request.deadline_ms
                                     : options_.default_deadline_ms;
      Job job;
      job.hash = hash;
      job.canonical = std::move(canonical);
      job.spec = std::move(request.spec);
      job.cancel = util::CancelToken::armed();
      if (deadline_ms > 0.0) {
        job.cancel.set_deadline(
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(deadline_ms)));
      }
      inflight = std::make_shared<Inflight>();
      job.inflight = inflight;
      inflight_[hash] = inflight;
      queue_.push_back(std::move(job));
      queue_depth_.set(static_cast<double>(queue_.size()));
      queue_cv_.notify_one();
    }
  }

  std::shared_ptr<const std::string> body;
  {
    std::unique_lock<std::mutex> lock(inflight->mutex);
    inflight->cv.wait(lock, [&] { return inflight->done; });
    body = inflight->body;
  }
  record_latency(ms_since(start));
  return *body;
}

void Service::worker_loop() {
  while (true) {
    Job job;
    std::list<util::CancelToken>::iterator token_it;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.set(static_cast<double>(queue_.size()));
      ++active_;
      active_gauge_.set(static_cast<double>(active_));
      token_it = active_tokens_.insert(active_tokens_.end(), job.cancel);
    }
    bool cacheable = false;
    std::shared_ptr<const std::string> body = execute(job, cacheable);
    if (cacheable) cache_.insert(job.hash, body);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(job.hash);
      active_tokens_.erase(token_it);
      --active_;
      active_gauge_.set(static_cast<double>(active_));
      if (queue_.empty() && active_ == 0) drained_cv_.notify_all();
    }
    fulfill(job.inflight, std::move(body));
  }
}

std::shared_ptr<const std::string> Service::execute(const Job& job,
                                                    bool& cacheable) {
  cacheable = false;
  // A deadline blown while queued skips the engine outright.
  if (job.cancel.cancelled()) {
    const bool timeout =
        job.cancel.reason() == util::CancelToken::Reason::kDeadline;
    (timeout ? errors_timeout_ : errors_cancelled_).inc();
    return std::make_shared<const std::string>(make_error_body(
        {exp::to_string(timeout ? exp::TrialErrorKind::kTimeout
                                : exp::TrialErrorKind::kCancelled),
         timeout ? "query deadline expired while queued" : "query cancelled",
         true}));
  }
  exp::EngineContext ctx;
  ctx.route_cache = warm_route_cache(job.spec.topo);
  ctx.cancel = job.cancel;
  engine_runs_.inc();
  try {
    const exp::CellResult cell =
        engine_for(job.spec.engine)->run(job.spec, ctx);
    queries_ok_.inc();
    cacheable = true;
    return std::make_shared<const std::string>(
        make_ok_body(job.hash, job.canonical, cell));
  } catch (const exp::TrialCancelled& e) {
    // Timeouts and cancellations depend on wall clock, not on the spec —
    // never cached.
    (e.kind() == exp::TrialErrorKind::kTimeout ? errors_timeout_
                                               : errors_cancelled_)
        .inc();
    return std::make_shared<const std::string>(
        make_error_body({exp::to_string(e.kind()), e.what(), true}));
  } catch (const std::exception& e) {
    errors_exception_.inc();
    return std::make_shared<const std::string>(make_error_body(
        {exp::to_string(exp::TrialErrorKind::kException), e.what(), false}));
  } catch (...) {
    errors_exception_.inc();
    return std::make_shared<const std::string>(make_error_body(
        {exp::to_string(exp::TrialErrorKind::kException),
         "unknown error in engine", false}));
  }
}

exp::Engine* Service::engine_for(exp::EngineKind kind) {
  return kind == exp::EngineKind::kFsim ? fluid_engine_.get()
                                        : packet_engine_.get();
}

std::shared_ptr<routing::RouteCache> Service::warm_route_cache(
    const topo::NetworkSpec& topo) {
  const std::uint64_t key = topo_key(topo);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = route_caches_.begin(); it != route_caches_.end(); ++it) {
    if (it->first == key) {
      route_cache_reuse_.inc();
      route_caches_.splice(route_caches_.begin(), route_caches_, it);
      return route_caches_.front().second;
    }
  }
  auto cache = std::make_shared<routing::RouteCache>();
  route_caches_.emplace_front(key, cache);
  while (route_caches_.size() > options_.route_cache_pool &&
         !route_caches_.empty()) {
    route_caches_.pop_back();
  }
  return cache;
}

void Service::record_latency(double ms) {
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_ms_[latency_next_] = ms;
  latency_next_ = (latency_next_ + 1) % latency_ms_.size();
  ++latency_count_;
}

void Service::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  drained_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

bool Service::draining() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

std::string Service::stats_json() {
  std::vector<double> window;
  std::uint64_t served = 0;
  {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    served = latency_count_;
    const std::size_t n =
        latency_count_ < latency_ms_.size()
            ? static_cast<std::size_t>(latency_count_)
            : latency_ms_.size();
    window.assign(latency_ms_.begin(),
                  latency_ms_.begin() + static_cast<std::ptrdiff_t>(n));
  }
  const auto pcts = percentiles(window, {50.0, 90.0, 99.0});
  const auto snap = registry_.snapshot();
  const auto cache = cache_.stats();
  std::size_t depth = 0;
  int active = 0;
  bool is_draining = false;
  std::size_t warm_topos = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    depth = queue_.size();
    active = active_;
    is_draining = draining_;
    warm_topos = route_caches_.size();
  }
  exp::JsonWriter w;
  w.begin_object();
  w.field("ok", true);
  w.key("stats").begin_object();
  w.field("workers", static_cast<int>(workers_.size()));
  w.field("queue_depth", static_cast<std::uint64_t>(depth));
  w.field("queue_limit", static_cast<std::uint64_t>(options_.queue_limit));
  w.field("active_queries", active);
  w.field("draining", is_draining);
  w.field("warm_route_topologies", static_cast<std::uint64_t>(warm_topos));
  w.key("counters").begin_object();
  for (const auto& [name, value] : snap.counters) w.field(name, value);
  w.end_object();
  w.key("cache").begin_object();
  w.field("hits", cache.hits);
  w.field("misses", cache.misses);
  w.field("insertions", cache.insertions);
  w.field("evictions", cache.evictions);
  w.field("entries", static_cast<std::uint64_t>(cache.entries));
  w.field("bytes", static_cast<std::uint64_t>(cache.bytes));
  w.field("max_bytes", static_cast<std::uint64_t>(cache.max_bytes));
  const std::uint64_t probes = cache.hits + cache.misses;
  w.field("hit_rate", probes == 0 ? 0.0
                                  : static_cast<double>(cache.hits) /
                                        static_cast<double>(probes));
  w.end_object();
  w.key("service_ms").begin_object();
  w.field("count", served);
  w.field("window", static_cast<std::uint64_t>(window.size()));
  w.field("p50", pcts[0]);
  w.field("p90", pcts[1]);
  w.field("p99", pcts[2]);
  w.end_object();
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace pnet::serve
