// Spec-hash result cache for pnet-serve.
//
// Completed query responses are cacheable because the whole experiment
// stack is deterministic: a response body is a pure function of the spec's
// canonical JSON, so keying finished bodies by exp::ExperimentSpec::hash()
// (the checkpoint journal's key) serves repeat queries without touching an
// engine — and guarantees the served bytes are identical to a fresh run.
//
// Memory is bounded, not just entry-counted: the cache tracks the byte
// size of every stored body and evicts least-recently-used entries once
// the budget is exceeded (a hot spec sweeping a large all-to-all grid must
// not pin the server's memory forever). Bodies are shared_ptr<const
// string>, so an evicted body stays alive for any client still writing it.
//
// Thread-safety: one mutex; all operations are O(1) map/list splices. The
// in-flight dedup layer (identical concurrent specs coalescing onto one
// execution) lives in serve::Service, not here — the cache only ever sees
// finished bodies.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace pnet::serve {

class ResultCache {
 public:
  /// `max_bytes` caps the sum of stored body sizes; 0 disables caching
  /// entirely (every find misses, inserts are dropped).
  explicit ResultCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached body for `hash`, or nullptr. A hit refreshes the entry's
  /// LRU position.
  [[nodiscard]] std::shared_ptr<const std::string> find(std::uint64_t hash);

  /// Stores `body` under `hash` (replacing any previous body) and evicts
  /// LRU entries until the byte budget holds. A body larger than the whole
  /// budget is not stored.
  void insert(std::uint64_t hash, std::shared_ptr<const std::string> body);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t max_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::shared_ptr<const std::string> body;
  };

  mutable std::mutex mutex_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace pnet::serve
