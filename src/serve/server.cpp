#include "serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace pnet::serve {

namespace {

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; its loss
    }
    sent += static_cast<std::size_t>(n);
  }
}

int make_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  // Reclaim a stale path only if nothing answers on it — refuse to steal a
  // live daemon's socket.
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    ::close(fd);
    throw std::runtime_error("another server is live on " + path);
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot listen on " + path + ": " + why);
  }
  return fd;
}

int make_tcp_listener(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot listen on 127.0.0.1:" +
                             std::to_string(port) + ": " + why);
  }
  return fd;
}

}  // namespace

Server::Server(Service& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.max_line_bytes == 0) {
    options_.max_line_bytes = service_.options().max_request_bytes + 4096;
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw std::runtime_error("pipe() failed");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  if (!options_.unix_path.empty()) {
    unix_listener_ = make_unix_listener(options_.unix_path);
  }
  if (options_.tcp_port != 0) {
    tcp_listener_ = make_tcp_listener(options_.tcp_port);
  }
  if (unix_listener_ < 0 && tcp_listener_ < 0) {
    throw std::runtime_error("server has no listeners configured");
  }
}

Server::~Server() {
  request_stop();
  close_listeners();
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void Server::request_stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (wake_write_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
  }
}

void Server::close_listeners() {
  if (unix_listener_ >= 0) {
    ::close(unix_listener_);
    unix_listener_ = -1;
  }
  if (tcp_listener_ >= 0) {
    ::close(tcp_listener_);
    tcp_listener_ = -1;
  }
}

void Server::run() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {wake_read_, POLLIN, 0};
    if (unix_listener_ >= 0) fds[n++] = {unix_listener_, POLLIN, 0};
    if (tcp_listener_ >= 0) fds[n++] = {tcp_listener_, POLLIN, 0};
    const int ready = ::poll(fds, n, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (nfds_t i = 0; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      if (fds[i].fd == wake_read_) {
        char drain[16];
        [[maybe_unused]] const ssize_t r =
            ::read(wake_read_, drain, sizeof(drain));
        // The wake pipe is exclusively a stop channel (a signal handler
        // writes it directly, without going through request_stop()).
        stopping_.store(true, std::memory_order_relaxed);
        continue;
      }
      accept_on(fds[i].fd);
    }
  }
  // Graceful shutdown: stop accepting, finish in-flight + queued work,
  // then unblock idle readers so their threads exit.
  close_listeners();
  service_.drain();
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
}

void Server::accept_on(int listener) {
  const int fd = ::accept(listener, nullptr, nullptr);
  if (fd < 0) return;
  const std::lock_guard<std::mutex> lock(conn_mutex_);
  if (stopping_.load(std::memory_order_relaxed)) {
    ::close(fd);
    return;
  }
  conn_fds_.push_back(fd);
  conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
}

void Server::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      // EOF: a non-empty remainder is one last unterminated request —
      // the `printf | nc` case.
      if (!buffer.empty()) write_all(fd, service_.handle_line(buffer) + "\n");
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) write_all(fd, service_.handle_line(line) + "\n");
      start = nl + 1;
    }
    buffer.erase(0, start);
    if (buffer.size() > options_.max_line_bytes) {
      write_all(fd, make_error_body(
                        {kErrOversized,
                         "request line exceeds " +
                             std::to_string(options_.max_line_bytes) +
                             " bytes",
                         false}) +
                        "\n");
      open = false;
    }
  }
  ::close(fd);
  const std::lock_guard<std::mutex> lock(conn_mutex_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
}

}  // namespace pnet::serve
