#include "serve/cache.hpp"

#include <utility>

namespace pnet::serve {

std::shared_ptr<const std::string> ResultCache::find(std::uint64_t hash) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(hash);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->body;
}

void ResultCache::insert(std::uint64_t hash,
                         std::shared_ptr<const std::string> body) {
  if (body == nullptr) return;
  const std::size_t size = body->size();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (size > max_bytes_) return;  // would evict everything and still not fit
  if (const auto it = index_.find(hash); it != index_.end()) {
    // Replace (identical bytes by determinism, but stay correct anyway).
    bytes_ -= it->second->body->size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{hash, std::move(body)});
  index_[hash] = lru_.begin();
  bytes_ += size;
  ++insertions_;
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.body->size();
    index_.erase(victim.hash);
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.entries = index_.size();
  s.bytes = bytes_;
  s.max_bytes = max_bytes_;
  return s;
}

}  // namespace pnet::serve
