#include "serve/request.hpp"

#include <cmath>
#include <functional>

namespace pnet::serve {

namespace {

/// Largest double that still holds every integer exactly: integer fields
/// beyond 2^53 would silently lose precision in the double-typed parse
/// tree, so they are rejected as out of range instead.
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

struct Decoder {
  RequestError* error;

  bool fail(const std::string& message) {
    error->code = kErrInvalidSpec;
    error->message = message;
    error->retryable = false;
    return false;
  }

  bool integral(const JsonValue& v, const std::string& where, double lo,
                double hi, double& out) {
    if (!v.is_number()) return fail(where + " must be a number");
    if (v.number != std::floor(v.number)) {
      return fail(where + " must be an integer");
    }
    if (v.number < lo || v.number > hi) {
      return fail(where + " out of range");
    }
    out = v.number;
    return true;
  }

  bool get_int(const JsonValue& v, const std::string& where, int& out) {
    double d = 0.0;
    if (!integral(v, where, -2147483648.0, 2147483647.0, d)) return false;
    out = static_cast<int>(d);
    return true;
  }

  bool get_u64(const JsonValue& v, const std::string& where,
               std::uint64_t& out) {
    double d = 0.0;
    if (!integral(v, where, 0.0, kMaxExactInteger, d)) return false;
    out = static_cast<std::uint64_t>(d);
    return true;
  }

  /// Times ride the wire as microseconds (the to_json convention) and are
  /// stored as integer picoseconds.
  bool get_us(const JsonValue& v, const std::string& where, SimTime& out) {
    if (!v.is_number()) return fail(where + " must be a number");
    const double ps = v.number * static_cast<double>(units::kMicrosecond);
    if (ps < 0.0 || ps > kMaxExactInteger) {
      return fail(where + " out of range");
    }
    out = static_cast<SimTime>(std::llround(ps));
    return true;
  }

  bool get_bool(const JsonValue& v, const std::string& where, bool& out) {
    if (!v.is_bool()) return fail(where + " must be a boolean");
    out = v.boolean;
    return true;
  }

  bool get_string(const JsonValue& v, const std::string& where,
                  std::string& out) {
    if (!v.is_string()) return fail(where + " must be a string");
    out = v.text;
    return true;
  }

  /// Walks an object's members through `field`, rejecting any key the
  /// dispatcher does not recognize — the strictness backbone.
  bool object(const JsonValue& v, const std::string& where,
              const std::function<bool(const std::string&,
                                       const JsonValue&)>& field,
              bool& known) {
    if (!v.is_object()) return fail(where + " must be an object");
    for (const auto& [key, value] : v.members) {
      known = false;
      if (!field(key, value)) return false;
      if (!known) {
        return fail("unknown field '" + where + "." + key + "'");
      }
    }
    return true;
  }

  bool decode_engine(const JsonValue& v, exp::EngineKind& out) {
    std::string s;
    if (!get_string(v, "engine", s)) return false;
    if (s == "packet") { out = exp::EngineKind::kPacket; return true; }
    if (s == "fsim") { out = exp::EngineKind::kFsim; return true; }
    if (s == "custom") {
      return fail("engine 'custom' needs an in-process trial function and "
                  "cannot be served");
    }
    return fail("engine must be 'packet' or 'fsim', got '" + s + "'");
  }

  bool decode_topo_kind(const JsonValue& v, topo::TopoKind& out) {
    std::string s;
    if (!get_string(v, "topo.kind", s)) return false;
    if (s == "fat-tree") { out = topo::TopoKind::kFatTree; return true; }
    if (s == "jellyfish") { out = topo::TopoKind::kJellyfish; return true; }
    if (s == "xpander") { out = topo::TopoKind::kXpander; return true; }
    return fail("topo.kind must be 'fat-tree', 'jellyfish' or 'xpander', "
                "got '" + s + "'");
  }

  bool decode_net_type(const JsonValue& v, topo::NetworkType& out) {
    std::string s;
    if (!get_string(v, "topo.type", s)) return false;
    if (s == "serial-low-bw") { out = topo::NetworkType::kSerialLow; return true; }
    if (s == "parallel-homogeneous") {
      out = topo::NetworkType::kParallelHomogeneous;
      return true;
    }
    if (s == "parallel-heterogeneous") {
      out = topo::NetworkType::kParallelHeterogeneous;
      return true;
    }
    if (s == "serial-high-bw") { out = topo::NetworkType::kSerialHigh; return true; }
    return fail("unknown topo.type '" + s + "'");
  }

  bool decode_policy_kind(const JsonValue& v, core::RoutingPolicy& out) {
    std::string s;
    if (!get_string(v, "policy.policy", s)) return false;
    if (s == "ecmp") { out = core::RoutingPolicy::kEcmp; return true; }
    if (s == "round-robin") { out = core::RoutingPolicy::kRoundRobin; return true; }
    if (s == "shortest-plane") {
      out = core::RoutingPolicy::kShortestPlane;
      return true;
    }
    if (s == "ksp-multipath") {
      out = core::RoutingPolicy::kKspMultipath;
      return true;
    }
    if (s == "size-threshold") {
      out = core::RoutingPolicy::kSizeThreshold;
      return true;
    }
    return fail("unknown policy.policy '" + s + "'");
  }

  bool decode_pattern(const JsonValue& v, exp::WorkloadSpec::Pattern& out) {
    std::string s;
    if (!get_string(v, "workload.pattern", s)) return false;
    if (s == "permutation") {
      out = exp::WorkloadSpec::Pattern::kPermutation;
      return true;
    }
    if (s == "all_to_all") {
      out = exp::WorkloadSpec::Pattern::kAllToAll;
      return true;
    }
    if (s == "rack_all_to_all") {
      out = exp::WorkloadSpec::Pattern::kRackAllToAll;
      return true;
    }
    return fail("unknown workload.pattern '" + s + "'");
  }

  bool decode_topo(const JsonValue& v, topo::NetworkSpec& topo) {
    bool k = false;
    return object(
        v, "topo",
        [&](const std::string& key, const JsonValue& value) {
          k = true;
          if (key == "kind") return decode_topo_kind(value, topo.topo);
          if (key == "type") return decode_net_type(value, topo.type);
          if (key == "hosts") return get_int(value, "topo.hosts", topo.hosts);
          if (key == "parallelism") {
            return get_int(value, "topo.parallelism", topo.parallelism);
          }
          if (key == "base_rate_gbps") {
            if (!value.is_number()) {
              return fail("topo.base_rate_gbps must be a number");
            }
            topo.base_rate_bps = value.number * units::kGbps;
            return true;
          }
          if (key == "seed") return get_u64(value, "topo.seed", topo.seed);
          if (key == "jf_switches") {
            return get_int(value, "topo.jf_switches", topo.jf_switches);
          }
          if (key == "jf_degree") {
            return get_int(value, "topo.jf_degree", topo.jf_degree);
          }
          if (key == "jf_hosts_per_switch") {
            return get_int(value, "topo.jf_hosts_per_switch",
                           topo.jf_hosts_per_switch);
          }
          k = false;
          return true;
        },
        k);
  }

  bool decode_policy(const JsonValue& v, core::PolicyConfig& policy) {
    bool k = false;
    return object(
        v, "policy",
        [&](const std::string& key, const JsonValue& value) {
          k = true;
          if (key == "policy") return decode_policy_kind(value, policy.policy);
          if (key == "k") return get_int(value, "policy.k", policy.k);
          if (key == "ecmp_path_cap") {
            return get_int(value, "policy.ecmp_path_cap",
                           policy.ecmp_path_cap);
          }
          if (key == "multipath_cutoff_bytes") {
            return get_u64(value, "policy.multipath_cutoff_bytes",
                           policy.multipath_cutoff_bytes);
          }
          k = false;
          return true;
        },
        k);
  }

  bool decode_workload(const JsonValue& v, exp::WorkloadSpec& wl) {
    bool k = false;
    return object(
        v, "workload",
        [&](const std::string& key, const JsonValue& value) {
          k = true;
          if (key == "pattern") return decode_pattern(value, wl.pattern);
          if (key == "flow_bytes") {
            return get_u64(value, "workload.flow_bytes", wl.flow_bytes);
          }
          if (key == "rounds") {
            return get_int(value, "workload.rounds", wl.rounds);
          }
          if (key == "start_jitter_us") {
            return get_us(value, "workload.start_jitter_us",
                          wl.start_jitter);
          }
          if (key == "round_gap_us") {
            return get_us(value, "workload.round_gap_us", wl.round_gap);
          }
          k = false;
          return true;
        },
        k);
  }

  bool decode_sim(const JsonValue& v, sim::SimConfig& sim) {
    bool k = false;
    return object(
        v, "sim",
        [&](const std::string& key, const JsonValue& value) {
          k = true;
          if (key == "queue_buffer_bytes") {
            return get_u64(value, "sim.queue_buffer_bytes",
                           sim.queue_buffer_bytes);
          }
          if (key == "ecn_threshold_bytes") {
            return get_u64(value, "sim.ecn_threshold_bytes",
                           sim.ecn_threshold_bytes);
          }
          if (key == "priority_acks") {
            return get_bool(value, "sim.priority_acks", sim.priority_acks);
          }
          if (key == "trim_to_header") {
            return get_bool(value, "sim.trim_to_header", sim.trim_to_header);
          }
          if (key == "dctcp") {
            return get_bool(value, "sim.dctcp", sim.tcp.dctcp);
          }
          k = false;
          return true;
        },
        k);
  }

  bool decode(const JsonValue& root, Request& out) {
    if (!root.is_object()) {
      return fail("request must be a JSON object");
    }
    if (const JsonValue* stats = root.find("stats"); stats != nullptr) {
      bool want = false;
      if (!get_bool(*stats, "stats", want)) return false;
      if (!want) return fail("stats must be true when present");
      if (root.members.size() != 1) {
        return fail("a stats request carries no other fields");
      }
      out.kind = Request::Kind::kStats;
      return true;
    }
    out.kind = Request::Kind::kRun;
    bool k = false;
    const bool ok = object(
        root, "spec",
        [&](const std::string& key, const JsonValue& value) {
          k = true;
          if (key == "name") {
            return get_string(value, "name", out.spec.name);
          }
          if (key == "engine") return decode_engine(value, out.spec.engine);
          if (key == "seed") return get_u64(value, "seed", out.spec.seed);
          if (key == "trials") {
            return get_int(value, "trials", out.spec.trials);
          }
          if (key == "deadline_us") {
            return get_us(value, "deadline_us", out.spec.deadline);
          }
          if (key == "topo") return decode_topo(value, out.spec.topo);
          if (key == "policy") return decode_policy(value, out.spec.policy);
          if (key == "workload") {
            return decode_workload(value, out.spec.workload);
          }
          if (key == "sim") return decode_sim(value, out.spec.sim);
          if (key == "deadline_ms") {
            if (!value.is_number() || value.number < 0.0) {
              return fail("deadline_ms must be a non-negative number");
            }
            out.deadline_ms = value.number;
            return true;
          }
          k = false;
          return true;
        },
        k);
    if (!ok) return false;
    if (out.spec.name.empty()) {
      return fail("request is missing the required 'name' field");
    }
    return true;
  }
};

}  // namespace

bool decode_request(std::string_view line, Request& out, RequestError& error,
                    const ParseLimits& limits) {
  JsonValue root;
  std::string parse_error;
  if (!parse_json(line, root, parse_error, limits)) {
    error.code = kErrParse;
    error.message = parse_error;
    error.retryable = false;
    return false;
  }
  out = Request{};
  Decoder decoder{&error};
  return decoder.decode(root, out);
}

}  // namespace pnet::serve
