// Request decoding for pnet-serve: one newline-delimited JSON object per
// query, in exactly the shape exp::ExperimentSpec::to_json emits (so a
// client can replay a spec straight out of any bench report), plus two
// serve-only extensions:
//   * {"stats": true}            — the /stats query; returns the service's
//                                  telemetry snapshot instead of running
//                                  an experiment;
//   * "deadline_ms": <number>    — per-query wall-clock budget; the service
//                                  wires it into a util::CancelToken and a
//                                  blown budget returns a structured
//                                  timeout error.
//
// Decoding is strict: unknown fields anywhere are rejected (a misspelled
// knob must never silently fall back to its default — the Flags philosophy
// applied to the wire), enum strings must match their to_string forms,
// integer fields must hold integral in-range numbers, and the underlying
// parser already guarantees finiteness and bounded size. Every rejection
// is a RequestError that the service serializes as the {"ok":false,...}
// reply.
#pragma once

#include <string>
#include <string_view>

#include "exp/spec.hpp"
#include "serve/json_value.hpp"

namespace pnet::serve {

/// Machine-readable error codes of the serve protocol, alongside the
/// trial-level taxonomy strings reused verbatim from exp::TrialErrorKind
/// ("exception", "timeout", "cancelled", "invariant").
inline constexpr const char* kErrParse = "parse";
inline constexpr const char* kErrInvalidSpec = "invalid_spec";
inline constexpr const char* kErrOversized = "oversized";
/// The 429 of the protocol: admission queue full. Retryable.
inline constexpr const char* kErrOverloaded = "overloaded";
/// Server is drain-stopping (SIGTERM); in-flight work finishes, new work
/// is bounced. Retryable against a replacement instance.
inline constexpr const char* kErrDraining = "draining";

struct RequestError {
  std::string code;
  std::string message;
  /// True when retrying the identical request later can succeed
  /// (overloaded / draining); false for malformed or failing requests.
  bool retryable = false;
};

struct Request {
  enum class Kind : std::uint8_t { kRun, kStats };
  Kind kind = Kind::kRun;
  /// kRun only. spec.trials defaults to 1; every field is optional except
  /// "name" (required by ExperimentSpec::validate()).
  exp::ExperimentSpec spec;
  /// Per-query wall-clock budget in milliseconds; 0 = server default.
  double deadline_ms = 0.0;
};

/// Parses and strictly decodes one request line. Returns false and fills
/// `error` (code kErrParse or kErrInvalidSpec) on any deviation; `out` is
/// unspecified on failure. Does NOT run ExperimentSpec::validate() — the
/// service does, so semantic and syntactic rejections stay distinguishable.
[[nodiscard]] bool decode_request(std::string_view line, Request& out,
                                  RequestError& error,
                                  const ParseLimits& limits = {});

}  // namespace pnet::serve
