// serve::Service — the socket-free heart of pnet-serve.
//
// One Service owns the whole query pipeline the daemon exposes:
//
//   handle_line(request JSON)
//     -> parse + strict decode (serve/request)          [reject: parse]
//     -> semantic validation + server resource caps     [reject: invalid_spec]
//     -> canonicalize -> spec hash (exp::ExperimentSpec::hash())
//     -> result-cache probe (serve/cache)               [hit: cached bytes]
//     -> in-flight dedup (identical concurrent specs
//        coalesce onto ONE engine execution)            [join: shared body]
//     -> bounded admission queue                        [reject: overloaded]
//     -> persistent exp::Engine pool (N workers, warm
//        shared routing::RouteCache arenas per topology)
//     -> deterministic response body -> cache insert
//
// Determinism makes the cache-and-dedup layer sound: a response body is a
// pure function of the spec's canonical JSON, so a cached or coalesced
// reply is byte-identical to a fresh engine run.
//
// Per-query deadlines ride a util::CancelToken armed at admission (queue
// wait counts against the budget — the SLO view); a blown deadline unwinds
// the engine cooperatively and returns a structured "timeout" error reusing
// the exp::TrialErrorKind taxonomy. Engine failures are isolated per query:
// the worker catches, replies {"ok":false,...}, and keeps serving.
//
// Graceful drain (the SIGTERM path): drain() stops admitting run queries
// (they bounce with a retryable "draining" error; /stats keeps answering),
// waits for queued + active work to finish — no in-flight response is ever
// lost — and leaves the telemetry registry readable for a final flush.
//
// Thread-safety: handle_line may be called from any number of threads
// concurrently (the socket front end calls it from per-connection threads,
// bench_serve from closed-loop client threads).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exp/engine.hpp"
#include "exp/spec.hpp"
#include "routing/route_cache.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"
#include "telemetry/registry.hpp"
#include "util/cancel.hpp"

namespace pnet::serve {

struct ServiceOptions {
  /// Engine-pool worker threads; 0 = hardware concurrency.
  int workers = 2;
  /// Admission-queue bound: queries beyond it are rejected "overloaded"
  /// (the closed-loop backpressure signal), never buffered unboundedly.
  std::size_t queue_limit = 64;
  /// Default per-query wall-clock budget in ms; 0 = none. A request's own
  /// "deadline_ms" overrides it.
  double default_deadline_ms = 0.0;
  /// Result-cache byte budget (LRU-evicted); 0 disables caching.
  std::size_t cache_bytes = 64u << 20;
  /// Requests longer than this are rejected before parsing.
  std::size_t max_request_bytes = 1u << 20;
  /// Per-query resource caps — the bounded-memory contract. A spec over a
  /// cap is rejected "invalid_spec" at admission, before any allocation.
  int max_hosts = 1024;
  int max_trials = 64;
  int max_rounds = 256;
  /// Warm routing::RouteCache arenas kept across queries, one per distinct
  /// topology (LRU-evicted beyond this many topologies).
  std::size_t route_cache_pool = 8;
  /// Completed-query service times kept for the p50/p99 stats (ring
  /// buffer; bounded memory).
  std::size_t latency_window = 4096;
  /// Engine factory override, for tests that inject blocking/failing
  /// engines. Null = exp::make_engine.
  std::function<std::unique_ptr<exp::Engine>(exp::EngineKind)>
      engine_factory{};
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  /// Hard stop: cancels active queries (their clients get a structured
  /// "cancelled" reply), drops queued ones the same way, joins workers.
  /// For the graceful path call drain() first.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Serves one request line, blocking until the response body is ready.
  /// Always returns a single-line JSON body — {"ok":true,...} with the
  /// experiment result (or stats), {"ok":false,"error":{...}} otherwise.
  [[nodiscard]] std::string handle_line(std::string_view line);

  /// Graceful drain: stop admitting run queries, finish queued + active
  /// work, return once idle. Stats queries keep working; the service can
  /// not be un-drained.
  void drain();
  [[nodiscard]] bool draining() const;

  /// The /stats response body (also reachable via {"stats":true}).
  [[nodiscard]] std::string stats_json();

  /// Service-level counters/gauges (queries, rejects, engine runs...).
  [[nodiscard]] telemetry::Registry& registry() { return registry_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  [[nodiscard]] int workers() const {
    return static_cast<int>(workers_.size());
  }

 private:
  /// One admitted query; followers share the leader's Inflight and wake on
  /// its completion with the identical body.
  struct Inflight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const std::string> body;
  };

  struct Job {
    std::uint64_t hash = 0;
    std::string canonical;  // the spec's canonical JSON, echoed in the body
    exp::ExperimentSpec spec;
    util::CancelToken cancel;
    std::shared_ptr<Inflight> inflight;
  };

  void worker_loop();
  /// Runs the job's engine and builds the response body. `cacheable` is
  /// true only for successful, deterministic results.
  std::shared_ptr<const std::string> execute(const Job& job, bool& cacheable);
  std::shared_ptr<routing::RouteCache> warm_route_cache(
      const topo::NetworkSpec& topo);
  exp::Engine* engine_for(exp::EngineKind kind);
  void record_latency(double ms);
  static void fulfill(const std::shared_ptr<Inflight>& inflight,
                      std::shared_ptr<const std::string> body);
  /// Rejection of a spec exceeding the per-query resource caps, or empty.
  [[nodiscard]] std::string over_cap(const exp::ExperimentSpec& spec) const;

  ServiceOptions options_;
  telemetry::Registry registry_;
  ResultCache cache_;

  std::unique_ptr<exp::Engine> packet_engine_;
  std::unique_ptr<exp::Engine> fluid_engine_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<Job> queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Inflight>> inflight_;
  /// Cancel tokens of jobs currently executing, for the hard-stop path.
  std::list<util::CancelToken> active_tokens_;
  int active_ = 0;
  bool draining_ = false;
  bool stop_ = false;

  /// Warm route arenas: topology-spec hash -> shared cache, LRU order
  /// (front = most recent).
  std::list<std::pair<std::uint64_t,
                      std::shared_ptr<routing::RouteCache>>> route_caches_;

  std::mutex latency_mutex_;
  std::vector<double> latency_ms_;  // ring buffer
  std::size_t latency_next_ = 0;
  std::uint64_t latency_count_ = 0;

  telemetry::Registry::Counter queries_total_;
  telemetry::Registry::Counter queries_ok_;
  telemetry::Registry::Counter engine_runs_;
  telemetry::Registry::Counter dedup_joins_;
  telemetry::Registry::Counter errors_exception_;
  telemetry::Registry::Counter errors_timeout_;
  telemetry::Registry::Counter errors_cancelled_;
  telemetry::Registry::Counter rejected_parse_;
  telemetry::Registry::Counter rejected_invalid_;
  telemetry::Registry::Counter rejected_oversized_;
  telemetry::Registry::Counter rejected_overload_;
  telemetry::Registry::Counter rejected_draining_;
  telemetry::Registry::Counter route_cache_reuse_;
  telemetry::Registry::Gauge queue_depth_;
  telemetry::Registry::Gauge active_gauge_;

  std::vector<std::thread> workers_;
};

/// Response-body builders, shared with tests and the load harness.
[[nodiscard]] std::string make_error_body(const RequestError& error);
[[nodiscard]] std::string make_ok_body(std::uint64_t spec_hash,
                                       const std::string& canonical_spec,
                                       const exp::CellResult& cell);
/// 16 lowercase hex digits, the wire form of a spec hash.
[[nodiscard]] std::string hash_hex(std::uint64_t hash);

}  // namespace pnet::serve
