// Strict, bounded JSON parser for the pnet-serve request boundary.
//
// exp::JsonWriter covers the write side of the experiment stack; this is
// the read side, built for hostile input rather than for generality. The
// service accepts newline-delimited spec JSON from arbitrary clients, so
// every parse is bounded (payload bytes, nesting depth) and every
// deviation from the JSON grammar is a structured error, never a crash or
// a silent coercion:
//   * numbers must be finite — "NaN"/"Infinity" tokens are not JSON and
//     1e999-style overflows are rejected rather than becoming inf;
//   * duplicate object keys are rejected (last-wins would let a client
//     smuggle two values past a validator that saw only one);
//   * trailing garbage after the document is rejected (a framing bug on
//     the client would otherwise be half-accepted);
//   * \uXXXX escapes are decoded to UTF-8, with unpaired surrogates
//     rejected.
// The parser allocates proportionally to the input (which is capped), so a
// request can never balloon server memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pnet::serve {

struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;                                       // kString
  std::vector<JsonValue> items;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> members; // kObject, in
                                                          // document order

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup on an object; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

struct ParseLimits {
  /// Documents longer than this are rejected before parsing starts.
  std::size_t max_bytes = 1u << 20;
  /// Maximum container nesting. 32 is far above any spec shape and far
  /// below anything that could stress the recursive descent.
  int max_depth = 32;
};

/// Parses exactly one JSON document spanning all of `text` (trailing
/// whitespace allowed, trailing tokens not). On failure returns false and
/// fills `error` with a byte offset + description; `out` is unspecified.
[[nodiscard]] bool parse_json(std::string_view text, JsonValue& out,
                              std::string& error,
                              const ParseLimits& limits = {});

}  // namespace pnet::serve
