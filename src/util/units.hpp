// Time, rate and size units used across the library.
//
// Conventions (chosen to match the paper's setup, section 5):
//   * simulated time is an integer count of picoseconds (SimTime);
//   * link rates are bits per second (double);
//   * data sizes are bytes (uint64_t).
// A 1 GB flow at 100 Gb/s lasts 8e10 ps, far below the int64 range, so the
// picosecond clock never overflows in any experiment in this repository.
#pragma once

#include <cstdint>

namespace pnet {

/// Simulated time in picoseconds.
using SimTime = std::int64_t;

namespace units {

inline constexpr SimTime kPicosecond = 1;
inline constexpr SimTime kNanosecond = 1'000;
inline constexpr SimTime kMicrosecond = 1'000'000;
inline constexpr SimTime kMillisecond = 1'000'000'000;
inline constexpr SimTime kSecond = 1'000'000'000'000;

inline constexpr double kGbps = 1e9;   // bits per second
inline constexpr double kMbps = 1e6;

inline constexpr std::uint64_t kKB = 1'000;
inline constexpr std::uint64_t kMB = 1'000'000;
inline constexpr std::uint64_t kGB = 1'000'000'000;

/// Time to serialize `bytes` onto a link of `rate_bps` bits/second.
/// Rounded to the nearest picosecond (plain truncation would turn the
/// 120 ns MTU-at-100G example into 119999 ps).
constexpr SimTime serialization_delay(std::uint64_t bytes, double rate_bps) {
  return static_cast<SimTime>(static_cast<double>(bytes) * 8.0 / rate_bps *
                                  static_cast<double>(kSecond) +
                              0.5);
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr double to_microseconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

constexpr double to_milliseconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace units
}  // namespace pnet
