#include "util/stats.hpp"

#include <algorithm>
#include <cassert>

namespace pnet {

namespace {

double percentile_sorted(const std::vector<double>& sorted, double p) {
  assert(!sorted.empty());
  assert(p >= 0.0 && p <= 100.0);
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, p);
}

std::vector<double> percentiles(std::vector<double> samples,
                                const std::vector<double>& ps) {
  if (samples.empty()) return std::vector<double>(ps.size(), 0.0);
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(percentile_sorted(samples, p));
  return out;
}

Cdf Cdf::from_samples(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  Cdf cdf;
  cdf.points.reserve(samples.size());
  const auto n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Collapse runs of equal values into the highest cumulative probability.
    if (!cdf.points.empty() && cdf.points.back().first == samples[i]) {
      cdf.points.back().second = static_cast<double>(i + 1) / n;
    } else {
      cdf.points.emplace_back(samples[i], static_cast<double>(i + 1) / n);
    }
  }
  return cdf;
}

double Cdf::at(double x) const {
  if (points.empty() || x < points.front().first) return 0.0;
  auto it = std::upper_bound(
      points.begin(), points.end(), x,
      [](double value, const auto& pt) { return value < pt.first; });
  return std::prev(it)->second;
}

double Cdf::quantile(double q) const {
  if (points.empty()) return 0.0;
  auto it = std::lower_bound(
      points.begin(), points.end(), q,
      [](const auto& pt, double prob) { return pt.second < prob; });
  if (it == points.end()) return points.back().first;
  return it->first;
}

Cdf Cdf::resampled(std::size_t n) const {
  if (points.size() <= n || n < 2) return *this;
  Cdf out;
  out.points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(n - 1);
    const std::size_t idx = std::min(
        static_cast<std::size_t>(q * static_cast<double>(points.size() - 1)),
        points.size() - 1);
    if (out.points.empty() || out.points.back() != points[idx]) {
      out.points.push_back(points[idx]);
    }
  }
  return out;
}

}  // namespace pnet
