// Summary statistics, percentiles and empirical CDFs.
#pragma once

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

namespace pnet {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample, p in [0, 100], linear interpolation between
/// order statistics (the "linear" / type-7 estimator that numpy defaults to,
/// which is also what the paper's plotting scripts would have used).
/// An empty sample yields 0.0 (benches summarize runs that may produce no
/// completions, e.g. under total failure).
double percentile(std::vector<double> samples, double p);

/// Several percentiles of one sample; sorts once. Empty sample: all 0.0.
std::vector<double> percentiles(std::vector<double> samples,
                                const std::vector<double>& ps);

/// Empirical CDF: sorted (value, cumulative probability) points.
struct Cdf {
  std::vector<std::pair<double, double>> points;

  static Cdf from_samples(std::vector<double> samples);

  /// CDF value at x (fraction of samples <= x).
  [[nodiscard]] double at(double x) const;
  /// Inverse CDF (quantile), q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  /// Downsample to at most n evenly-spaced-in-probability points, for
  /// printing a figure's series compactly.
  [[nodiscard]] Cdf resampled(std::size_t n) const;
};

}  // namespace pnet
