// Single version string for every pnet binary (benches, pnet-serve,
// examples). Bumped when a release-worthy milestone lands; surfaced by the
// shared --version flag in util::Flags::handle_usage.
#pragma once

namespace pnet {

inline constexpr const char kVersion[] = "0.7.0";

}  // namespace pnet
