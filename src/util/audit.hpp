// Simulation invariant auditor: an opt-in collector of conservation-law
// violations, threaded through both engines.
//
// The simulators' hot paths are rewritten PR after PR (arena allocation,
// event batching, sharded loops are all on the roadmap); the auditor is
// the safety net that keeps those rewrites honest. When attached, the
// engines assert their conservation laws — packets received by a queue =
// forwarded + dropped + still buffered, queue occupancy within [0,
// capacity], event timestamps monotone, fluid link allocation <= capacity
// within epsilon, per-flow residual bytes never negative — and every
// breach lands here as a violation string instead of silent corruption.
//
// Two modes:
//  * collecting (default): `fail()` records; the engine checks `ok()` at
//    the end of the trial and raises one InvariantViolation carrying the
//    summary, which exp::Runner files as TrialError{kInvariant}.
//  * fail-fast: `fail()` throws immediately. Used by the PNET_AUDIT=1
//    environment opt-in, where code built without runner plumbing (unit
//    tests driving SimHarness directly) should abort the test on the spot.
//
// Detached (`Audit* == nullptr`) costs one predictable null test per
// check site — measured within the telemetry subsystem's <1% budget.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace pnet::util {

/// Raised for a broken simulation invariant; exp::Runner maps it to
/// TrialError{kInvariant}.
class InvariantViolation : public std::runtime_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::runtime_error(what) {}
};

class Audit {
 public:
  explicit Audit(bool fail_fast = false) : fail_fast_(fail_fast) {}

  /// True when the process opted in via PNET_AUDIT=1 (any value but "0" /
  /// "false" / empty counts). Cached after the first call.
  [[nodiscard]] static bool env_enabled();

  /// Records one violation; throws InvariantViolation instead when the
  /// auditor is fail-fast. Also bumps the attached telemetry counter.
  void fail(std::string what);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  /// "<n> invariant violation(s): first; second; ..." capped at
  /// `max_items` entries, for exception messages and error reports.
  [[nodiscard]] std::string summary(std::size_t max_items = 3) const;

  /// Throws InvariantViolation(summary()) when any violation is recorded.
  void check() const {
    if (!ok()) throw InvariantViolation(summary());
  }

  /// Counts checks audited (diagnostics: proves the audit actually ran).
  void note_check() { ++checks_; }
  [[nodiscard]] std::uint64_t checks() const { return checks_; }

  /// Violations also increment this telemetry counter when set, so audit
  /// breaches surface in the report's telemetry block alongside the
  /// TrialError.
  void set_counter(telemetry::Registry::Counter counter) {
    counter_ = counter;
  }

 private:
  bool fail_fast_;
  std::vector<std::string> violations_;
  std::uint64_t checks_ = 0;
  telemetry::Registry::Counter counter_{};
};

}  // namespace pnet::util
