// Minimal --key=value command-line parser for bench and example binaries.
//
// Every bench accepts the same knobs (hosts, planes, seed, scale...) so the
// parser lives here rather than being copy-pasted. Unknown flags abort with
// a usage message; experiments should fail loudly, not silently ignore a
// misspelled parameter.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pnet {

class Flags {
 public:
  /// Parses argv. Accepts "--key=value" and bare "--key" (value "1").
  Flags(int argc, char** argv);

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const;
  [[nodiscard]] int get_int(const std::string& key, int def) const;
  [[nodiscard]] std::int64_t get_i64(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// True when the run should use paper-scale parameters. Set either with
  /// --scale=paper or env PNET_SCALE=paper.
  [[nodiscard]] bool paper_scale() const;

  /// Name of the binary, for usage messages.
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace pnet
