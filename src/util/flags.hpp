// Minimal command-line parser for bench and example binaries.
//
// Every bench accepts the same knobs (hosts, planes, seed, scale, trials,
// threads, json...) so the parser lives here rather than being copy-pasted.
// Both "--key=value" and "--key value" spellings are accepted (benches
// historically mixed conventions). Unknown flags abort with a usage
// message; experiments should fail loudly, not silently ignore a
// misspelled parameter.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pnet {

class Flags {
 public:
  /// Parses argv. Accepts "--key=value", "--key value" (the next argv
  /// token, when it does not itself start with "--"), and bare "--key"
  /// (value "1"). A flag given more than once aborts with exit code 2
  /// naming the flag — last-wins would silently discard a value.
  Flags(int argc, char** argv);

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const;
  [[nodiscard]] int get_int(const std::string& key, int def) const;
  [[nodiscard]] std::int64_t get_i64(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// True when the run should use paper-scale parameters. Set either with
  /// --scale=paper or env PNET_SCALE=paper.
  [[nodiscard]] bool paper_scale() const;

  /// Flags that were parsed but appear neither as "--key" in `usage` nor in
  /// the common set every bench accepts (--help, --version, --scale, and the
  /// experiment-runner flags --trials/--threads/--sim-threads/--json/
  /// --json-timing/--require-complete/--engine/--trial-timeout/
  /// --run-deadline/--retries/--checkpoint/--audit). The testable core of
  /// handle_usage.
  [[nodiscard]] std::vector<std::string> unknown_flags(
      std::string_view usage) const;

  /// Shared --help / --version / typo handling, reached by every bench
  /// through bench::print_header (and by pnet-serve directly). If --version
  /// was passed: prints "<binary> <version>" (util/version.hpp) and exits 0.
  /// If --help was passed: prints a "usage: <binary>" header, `usage`, and
  /// the common-flag epilogue, then exits 0. Otherwise any flag
  /// unknown_flags() reports aborts with exit code 2 listing the offenders,
  /// so a misspelled parameter can never silently fall back to its default.
  void handle_usage(std::string_view usage) const;

  /// Basename of the binary (argv[0] stripped of its directory), for usage
  /// and error messages.
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace pnet
