// Deterministic fan-out of independent jobs over OS threads.
//
// This is the generalized form of the fsim sweep runner (PR 2): each job is
// self-contained (its own topology, simulator and Rng, seeded
// deterministically from the job index), workers pull jobs from a shared
// atomic cursor, and results land in a preallocated sink indexed by job
// order. The merged result vector is therefore bit-identical regardless of
// thread count or scheduling — the property the exp::Runner determinism
// tests lock in. fsim::run_sweep and exp::Runner are both thin layers over
// this.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/rng.hpp"

namespace pnet::util {

/// Deterministic per-job seed for job `index` of a fan-out: decorrelates
/// neighbouring jobs while keeping the whole run reproducible from one
/// base seed.
[[nodiscard]] constexpr std::uint64_t job_seed(std::uint64_t base_seed,
                                               std::uint64_t index) {
  return mix64(base_seed * 0x9E3779B97F4A7C15ULL + index + 1);
}

/// Number of workers a fan-out of `jobs` jobs will actually use for a
/// `--threads` value (0 = all hardware threads).
[[nodiscard]] inline unsigned worker_count(std::size_t jobs, int threads) {
  unsigned workers = threads > 0
                         ? static_cast<unsigned>(threads)
                         : std::max(1u, std::thread::hardware_concurrency());
  return std::min(workers, static_cast<unsigned>(jobs));
}

/// Runs `fn(job)` for every job on up to `threads` OS threads (0 = all
/// hardware threads) and returns the results in job order. `fn` must be
/// self-contained per job (no shared mutable state) and must not throw —
/// an escaping exception terminates the process, the honest outcome for a
/// fan-out worker with nowhere to report.
template <class Job, class Fn>
auto parallel_map(const std::vector<Job>& jobs, Fn fn, int threads = 0)
    -> std::vector<std::invoke_result_t<Fn&, const Job&>> {
  using Result = std::invoke_result_t<Fn&, const Job&>;
  std::vector<Result> results(jobs.size());
  if (jobs.empty()) return results;

  const unsigned workers = worker_count(jobs.size(), threads);
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = fn(jobs[i]);
    return results;
  }

  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      results[i] = fn(jobs[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return results;
}

}  // namespace pnet::util
