#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace pnet {

Flags::Flags(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "%s: expected --key=value, got '%s'\n",
                   program_.c_str(), argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "1";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

std::string Flags::get(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int Flags::get_int(const std::string& key, int def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::stoi(it->second);
}

std::int64_t Flags::get_i64(const std::string& key, std::int64_t def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::stoll(it->second);
}

double Flags::get_double(const std::string& key, double def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::stod(it->second);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second != "0" && it->second != "false";
}

bool Flags::has(const std::string& key) const { return values_.contains(key); }

bool Flags::paper_scale() const {
  if (get("scale", "") == "paper") return true;
  const char* env = std::getenv("PNET_SCALE");
  return env != nullptr && std::string_view(env) == "paper";
}

}  // namespace pnet
