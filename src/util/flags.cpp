#include "util/flags.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string_view>

#include "util/version.hpp"

namespace pnet {

namespace {

/// Every "--key" token mentioned in a usage text. A key is the maximal run
/// of [a-zA-Z0-9_-] after a "--" that follows whitespace or starts the
/// text, so prose em-dashes and "--key=value" examples both parse.
std::set<std::string, std::less<>> keys_in_usage(std::string_view text) {
  std::set<std::string, std::less<>> keys;
  for (std::size_t i = 0; i + 2 < text.size(); ++i) {
    if (text[i] != '-' || text[i + 1] != '-') continue;
    if (i > 0 && !std::isspace(static_cast<unsigned char>(text[i - 1]))) {
      continue;
    }
    std::size_t j = i + 2;
    while (j < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[j])) ||
            text[j] == '-' || text[j] == '_')) {
      ++j;
    }
    if (j > i + 2) keys.emplace(text.substr(i + 2, j - (i + 2)));
    i = j - 1;
  }
  return keys;
}

/// Flags every bench accepts regardless of its own usage text: the shared
/// knobs of bench::print_header and the experiment-runner adapters.
bool is_common_flag(std::string_view key) {
  return key == "help" || key == "version" || key == "scale" ||
         key == "trials" ||
         key == "threads" || key == "json" || key == "json-timing" ||
         key == "require-complete" || key == "engine" || key == "trace" ||
         key == "sample-every" || key == "trial-timeout" ||
         key == "run-deadline" || key == "retries" || key == "checkpoint" ||
         key == "audit" || key == "sim-threads" || key == "controller" ||
         key == "controller-cadence" || key == "controller-detect-delay";
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  if (argc > 0) {
    // Usage and error messages name the binary, not its build path —
    // "bench_fig9: unrecognized flag", not "/home/ci/build/bench/...".
    std::string_view path(argv[0]);
    const auto slash = path.find_last_of('/');
    program_ = std::string(
        slash == std::string_view::npos ? path : path.substr(slash + 1));
  }
  // A repeated flag is rejected, not last-wins: silently dropping the
  // first value turns an editing slip ("--trials=2 ... --trials=8" left in
  // a script) into a wrong experiment.
  const auto put = [this](std::string key, std::string value) {
    if (!values_.emplace(key, std::move(value)).second) {
      std::fprintf(stderr, "%s: duplicate flag --%s\n", program_.c_str(),
                   key.c_str());
      std::exit(2);
    }
  };
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "%s: expected --key=value or --key value, "
                   "got '%s'\n", program_.c_str(), argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      put(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    } else if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
      // "--key value": the next token is the value.
      put(std::string(arg), argv[i + 1]);
      ++i;
    } else {
      put(std::string(arg), "1");
    }
  }
}

std::string Flags::get(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int Flags::get_int(const std::string& key, int def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::stoi(it->second);
}

std::int64_t Flags::get_i64(const std::string& key, std::int64_t def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::stoll(it->second);
}

double Flags::get_double(const std::string& key, double def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::stod(it->second);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second != "0" && it->second != "false";
}

bool Flags::has(const std::string& key) const { return values_.contains(key); }

std::vector<std::string> Flags::unknown_flags(std::string_view usage) const {
  const auto known = keys_in_usage(usage);
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (is_common_flag(key) || known.contains(key)) continue;
    unknown.push_back(key);
  }
  return unknown;
}

void Flags::handle_usage(std::string_view usage) const {
  if (has("version")) {
    std::printf("%s %s\n", program_.c_str(), kVersion);
    std::exit(0);
  }
  if (has("help")) {
    std::printf("usage: %s [--flag[=value] ...]\n", program_.c_str());
    std::fwrite(usage.data(), 1, usage.size(), stdout);
    if (!usage.empty() && usage.back() != '\n') std::fputc('\n', stdout);
    std::printf(
        "  --help            print this usage text\n"
        "  --version         print the binary name and version, then exit\n"
        "  --scale=paper     paper-scale run (or env PNET_SCALE=paper)\n"
        "  --trials=N        trials per experiment cell (seeded per trial)\n"
        "  --threads=N       experiment-runner worker threads (0 = all "
        "cores)\n"
        "  --sim-threads=N   packet-engine shard worker threads per trial\n"
        "                    (0 = serial engine; reports are byte-identical\n"
        "                    across every value >= 1)\n"
        "  --json=PATH       write the structured JSON report to PATH\n"
        "  --json-timing=0   omit wall-clock fields from the JSON, making\n"
        "                    reports bit-identical across thread counts\n"
        "  --require-complete  exit 1 if any flows are left unfinished\n"
        "  --sample-every=MS telemetry sampling interval in simulated\n"
        "                    milliseconds (0 = off); series land in the\n"
        "                    report's telemetry block\n"
        "  --trace=PATH      export Chrome trace_event JSON of every trial\n"
        "                    (.bin suffix: compact binary format)\n"
        "  --trial-timeout=S per-trial wall-clock budget in seconds; a\n"
        "                    trial past it is cancelled and reported as a\n"
        "                    timeout error (0 = off)\n"
        "  --run-deadline=S  whole-run wall-clock deadline in seconds;\n"
        "                    remaining trials report as cancelled (0 = off)\n"
        "  --retries=N       re-run a thrown or timed-out trial up to N\n"
        "                    times with the same seed\n"
        "  --checkpoint=PATH journal finished trials to PATH and resume a\n"
        "                    killed sweep by skipping completed work\n"
        "  --audit           assert simulation conservation laws each\n"
        "                    trial (also env PNET_AUDIT=1); violations\n"
        "                    report as invariant errors\n"
        "  --controller=MODE control plane per cell: off (default),\n"
        "                    host-local (transport repath only), or\n"
        "                    centralized (global adaptive controller)\n"
        "  --controller-cadence=MS      control-loop period in simulated\n"
        "                    milliseconds (default 1)\n"
        "  --controller-detect-delay=MS fabric-event confirmation delay in\n"
        "                    simulated milliseconds (default 1)\n");
    std::exit(0);
  }
  const auto unknown = unknown_flags(usage);
  for (const auto& key : unknown) {
    std::fprintf(stderr, "%s: unrecognized flag --%s\n", program_.c_str(),
                 key.c_str());
  }
  if (!unknown.empty()) {
    std::fprintf(stderr, "%s: run with --help for the accepted flags\n",
                 program_.c_str());
    std::exit(2);
  }
}

bool Flags::paper_scale() const {
  if (get("scale", "") == "paper") return true;
  const char* env = std::getenv("PNET_SCALE");
  return env != nullptr && std::string_view(env) == "paper";
}

}  // namespace pnet
