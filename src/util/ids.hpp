// Strongly-typed integer identifiers.
//
// Topology code juggles node indices, link indices, host indices and plane
// indices; mixing them up is the classic off-by-one-dimension bug. Each id
// is a distinct type so the compiler rejects the mix-up.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace pnet {

template <class Tag>
struct Id {
  std::int32_t v = -1;

  constexpr Id() = default;
  constexpr explicit Id(std::int32_t value) : v(value) {}

  [[nodiscard]] constexpr bool valid() const { return v >= 0; }
  friend constexpr auto operator<=>(Id, Id) = default;
};

struct NodeTag {};
struct LinkTag {};
struct HostTag {};
struct FlowTag {};

/// A vertex (host or switch) within one dataplane's graph.
using NodeId = Id<NodeTag>;
/// A directed link within one dataplane's graph.
using LinkId = Id<LinkTag>;
/// A host's global index, shared across all dataplanes of a P-Net.
using HostId = Id<HostTag>;
/// A transport-level flow.
using FlowId = Id<FlowTag>;

}  // namespace pnet

namespace std {
template <class Tag>
struct hash<pnet::Id<Tag>> {
  size_t operator()(pnet::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.v);
  }
};
}  // namespace std
