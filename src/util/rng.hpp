// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible from a single seed, so everything random
// in the library flows through this xoshiro256** generator (public-domain
// algorithm by Blackman & Vigna) seeded via SplitMix64. It is much faster
// than std::mt19937_64 and its streams are stable across platforms and
// standard-library versions, unlike std::uniform_int_distribution.
#pragma once

#include <cstdint>
#include <vector>

namespace pnet {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's rejection method, so the
  /// result is exactly uniform for any bound.
  std::uint64_t next_below(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  int next_int(int lo, int hi_exclusive) {
    return lo + static_cast<int>(
                    next_below(static_cast<std::uint64_t>(hi_exclusive - lo)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<int> permutation(int n) {
    std::vector<int> p(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
    shuffle(p);
    return p;
  }

  /// A random derangement of [0, n): a permutation with no fixed point, used
  /// for permutation traffic so no host sends to itself. Rejection sampling;
  /// the acceptance probability converges to 1/e, so this terminates fast.
  std::vector<int> derangement(int n) {
    if (n < 2) return std::vector<int>(static_cast<std::size_t>(n), 0);
    while (true) {
      auto p = permutation(n);
      bool ok = true;
      for (int i = 0; i < n; ++i) {
        if (p[static_cast<std::size_t>(i)] == i) {
          ok = false;
          break;
        }
      }
      if (ok) return p;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

/// Stable 64-bit mix used for per-flow ECMP hashing. Distinct from Rng so a
/// flow's plane/path choice is a pure function of its identifiers, exactly
/// like a switch hashing the five-tuple.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace pnet
