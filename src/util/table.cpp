#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pnet {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  // Trim trailing zeros but keep at least one digit after the point.
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit(columns_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace pnet
