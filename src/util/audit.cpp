#include "util/audit.hpp"

#include <cstdlib>
#include <utility>

namespace pnet::util {

bool Audit::env_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("PNET_AUDIT");
    if (v == nullptr) return false;
    const std::string s(v);
    return !(s.empty() || s == "0" || s == "false");
  }();
  return enabled;
}

void Audit::fail(std::string what) {
  counter_.inc();
  if (fail_fast_) throw InvariantViolation(what);
  violations_.push_back(std::move(what));
}

std::string Audit::summary(std::size_t max_items) const {
  std::string out = std::to_string(violations_.size());
  out += violations_.size() == 1 ? " invariant violation: "
                                 : " invariant violations: ";
  const std::size_t shown =
      violations_.size() < max_items ? violations_.size() : max_items;
  for (std::size_t i = 0; i < shown; ++i) {
    if (i != 0) out += "; ";
    out += violations_[i];
  }
  if (shown < violations_.size()) out += "; ...";
  return out;
}

}  // namespace pnet::util
