// Cooperative cancellation for long-running simulation loops.
//
// A CancelToken is a copyable handle onto shared cancellation state: an
// atomic reason flag plus an optional wall-clock deadline. Producers
// (the experiment runner's per-trial watchdog, a future pnet-serve query
// front end) arm a token and hand copies down the stack; consumers (the
// packet sim's EventQueue, fsim's event loop, the max-min water-fill)
// poll `cancelled()` at an event-count stride and unwind cooperatively.
//
// Cost model: a default-constructed token is inert — `cancelled()` is a
// null-pointer test, so threading tokens through hot loops is free when
// nobody asked for cancellation. An armed token costs one relaxed atomic
// load per poll, plus a steady_clock read when a deadline is set; callers
// are expected to poll at a stride (e.g. every 1024 events, see
// sim::EventQueue::kCancelStride) so neither shows up in profiles.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace pnet::util {

class CancelToken {
 public:
  /// Why the token fired. kDeadline is a per-trial watchdog expiry (the
  /// runner maps it to a timeout error); kCancelled is an explicit cancel
  /// or a whole-run deadline.
  enum class Reason : std::uint8_t { kNone = 0, kCancelled = 1,
                                     kDeadline = 2 };

  using Clock = std::chrono::steady_clock;

  /// Inert token: never cancels, polls are a null test.
  CancelToken() = default;

  /// A live token that can be cancelled / given a deadline.
  [[nodiscard]] static CancelToken armed() {
    CancelToken token;
    token.state_ = std::make_shared<State>();
    return token;
  }

  [[nodiscard]] bool is_armed() const { return state_ != nullptr; }

  /// Requests cancellation. Thread-safe; no-op on an inert token.
  void cancel(Reason reason = Reason::kCancelled) const {
    if (state_ == nullptr) return;
    std::uint8_t expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(reason),
        std::memory_order_relaxed);
  }

  /// Arms a wall-clock deadline; when it passes, polls report `reason`.
  /// An earlier existing deadline wins (set-once-per-source semantics are
  /// the caller's job; the runner computes min(trial, run) up front).
  void set_deadline(Clock::time_point deadline,
                    Reason reason = Reason::kDeadline) {
    if (state_ == nullptr) return;
    if (state_->has_deadline && state_->deadline <= deadline) return;
    state_->deadline = deadline;
    state_->deadline_reason = reason;
    state_->has_deadline = true;
  }

  /// True once cancelled or past the deadline. The deadline transition is
  /// latched into the reason flag so later polls are atomic-load only.
  [[nodiscard]] bool cancelled() const {
    if (state_ == nullptr) return false;
    if (state_->reason.load(std::memory_order_relaxed) != 0) return true;
    if (state_->has_deadline && Clock::now() >= state_->deadline) {
      cancel(state_->deadline_reason);
      return true;
    }
    return false;
  }

  [[nodiscard]] Reason reason() const {
    if (state_ == nullptr) return Reason::kNone;
    return static_cast<Reason>(
        state_->reason.load(std::memory_order_relaxed));
  }

 private:
  struct State {
    std::atomic<std::uint8_t> reason{0};
    Clock::time_point deadline{};
    Reason deadline_reason = Reason::kDeadline;
    bool has_deadline = false;
  };

  std::shared_ptr<State> state_;
};

}  // namespace pnet::util
