// Aligned text tables: every bench prints the paper's figure/table as rows
// of one of these, so the output format is uniform across experiments.
#pragma once

#include <string>
#include <vector>

namespace pnet {

class TextTable {
 public:
  TextTable(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with `precision` significant decimals.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  /// Renders with a title line, a header, a rule and aligned cells.
  [[nodiscard]] std::string render() const;
  /// Renders to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly ("3", "3.1", "0.042").
std::string format_double(double v, int precision = 3);

}  // namespace pnet
