#include "core/harness.hpp"

#include <string>

namespace pnet::core {

SimHarness::SimHarness(const Options& options)
    : net_(topo::build_network(options.spec)),
      shards_(options.sim_threads >= 1
                  ? std::make_unique<sim::ShardSet>(net_.num_planes(),
                                                    options.sim_threads)
                  : nullptr),
      network_(events_, pool_, net_, options.sim_config, shards_.get()),
      factory_(events_, pool_, network_, logger_, shards_.get()),
      selector_(net_, options.policy, options.route_cache),
      starter_(selector_.make_starter(factory_)),
      telemetry_(options.telemetry) {
  // Reserve the event heap up front (links dominate the steady-state
  // pending set: one in-service completion per queue, one delivery wake-up
  // per pipe) and arm regrowth tracking; FlowFactory grows the reservation
  // as endpoints appear. audit_check() treats any regrowth as a violation.
  events_.reserve(2 * network_.total_links() +
                  static_cast<std::size_t>(net_.num_hosts()) + 64);
  if (shards_ != nullptr) {
    // Per-shard heaps get the same bound plus slack for arrival wakes
    // (Arrivals can park a few superseded wakes per shard; see shard.hpp).
    shards_->reserve_events(2 * network_.total_links() +
                            static_cast<std::size_t>(net_.num_hosts()) +
                            256);
  }
  if (telemetry_ != nullptr) wire_telemetry(options.sample_route_cache);
  if (options.cancel != nullptr) {
    events_.set_cancel(options.cancel);
    if (shards_ != nullptr) shards_->set_cancel(options.cancel);
  }
  audit_ = options.audit;
  if (audit_ == nullptr && util::Audit::env_enabled()) {
    // Env opt-in without runner plumbing (unit tests, examples): fail fast
    // so the breach aborts the test at the violation site.
    owned_audit_ = std::make_unique<util::Audit>(/*fail_fast=*/true);
    audit_ = owned_audit_.get();
  }
  if (audit_ != nullptr) {
    events_.set_audit(audit_);
    network_.set_audit(audit_);
    if (shards_ != nullptr) shards_->enable_audit();
  }
}

void SimHarness::wire_telemetry(bool sample_route_cache) {
  using telemetry::Sampler;
  network_.set_trace(&telemetry_->trace);
  factory_.set_telemetry(telemetry_);
  if (telemetry_->config.sample_every <= 0) return;

  Sampler& sampler = telemetry_->sampler;
  // Goodput as a rate of the cumulative acked-bytes counter — the exact
  // series analysis::GoodputProbe produces, now on the shared sample grid.
  sampler.add_series(
      "goodput_bps", Sampler::Kind::kRate,
      [this] {
        return static_cast<double>(factory_.total_delivered_bytes());
      },
      8.0);
  sampler.add_series("queue_bytes", Sampler::Kind::kGauge, [this] {
    return static_cast<double>(network_.total_queued_bytes());
  });
  sampler.add_series("queue_bytes_max", Sampler::Kind::kGauge, [this] {
    return static_cast<double>(network_.max_queued_bytes());
  });
  sampler.add_series("active_flows", Sampler::Kind::kGauge, [this] {
    return static_cast<double>(factory_.active_flows());
  });
  for (int p = 0; p < net_.num_planes(); ++p) {
    sampler.add_series(
        "plane" + std::to_string(p) + "_util_bps", Sampler::Kind::kRate,
        [this, p] {
          return static_cast<double>(network_.plane_forwarded_bytes(p));
        },
        8.0);
  }
  if (sample_route_cache) {
    sampler.add_series("route_cache_hit_rate", Sampler::Kind::kGauge,
                       [this] {
                         const auto stats = selector_.route_cache().stats();
                         const auto total = stats.hits + stats.misses;
                         return total == 0
                                    ? 0.0
                                    : static_cast<double>(stats.hits) /
                                          static_cast<double>(total);
                       });
  }
  driver_ = std::make_unique<sim::TelemetryDriver>(events_, sampler);
  if (shards_ != nullptr) {
    // The driver rides the control queue, which drains while shard heaps
    // still hold work — keep sampling as long as any shard is busy.
    driver_->set_more_work([this] { return shards_->busy(); });
  }
  driver_->start(events_.now());
}

}  // namespace pnet::core
